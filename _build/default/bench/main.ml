(** Benchmark harness: regenerates every table and figure of the
    paper's evaluation (Section 4).

    Sections (all run by default; select with [--only SECTION]):

    - [table1]  — Table 1: query blocks optimized across the state space
      of Q1, with and without cost-annotation reuse.
    - [table2]  — Table 2: optimization time and number of states for
      the heuristic / two-pass / linear / exhaustive strategies on a
      3-table query with four unnestable subqueries.
    - [figure2] — Figure 2: CBQT on vs. heuristic decisions over the
      full workload mix; relative improvement by top-N% buckets.
    - [figure3] — Figure 3: subquery unnesting disabled vs. cost-based,
      over a subquery-heavy slice.
    - [figure4] — Figure 4: join predicate pushdown disabled vs.
      cost-based, over a view-join slice.
    - [gbp]     — Section 4.3: group-by placement on vs. off.

    "Execution time" is metered work units (see {!Exec.Meter});
    "optimization time" is wall clock. Absolute values are not
    comparable with the paper's Oracle testbed; the reproduced artifact
    is the {e shape}: who wins, by roughly what factor, and where the
    crossovers fall. EXPERIMENTS.md records paper-vs-measured. *)

module QG = Workload.Query_gen
module SG = Workload.Schema_gen
module R = Workload.Runner
module D = Cbqt.Driver

let seed = ref 2006
let scale = ref 1.0
let only = ref ""

(* statistics sampling fraction: smaller samples mean noisier NDV and
   range estimates, hence more cost mis-estimation — the mechanism
   behind the paper's degraded queries (Section 4.2) *)
let sample = ref 0.05

let section name = Fmt.pr "@.========== %s ==========@." name

let run_section name f =
  if !only = "" || !only = name then (
    section name;
    f ())

(* ------------------------------------------------------------------ *)
(* Table 1: cost-annotation reuse                                       *)
(* ------------------------------------------------------------------ *)

let q1_sql =
  "SELECT e1.name, j.job_id FROM employees e1, job_history j WHERE e1.emp_id \
   = j.emp_id AND j.start_date > DATE 10400 AND e1.salary > (SELECT \
   AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e1.dept_id) AND \
   e1.dept_id IN (SELECT d.dept_id FROM departments d, locations l WHERE \
   d.loc_id = l.loc_id AND l.country_id = 'US')"

let table1 () =
  let db = Workload.Demo.hr_db ~size:4 () in
  let cat = db.Storage.Db.cat in
  let q1 = Sqlparse.Parser.parse_exn cat q1_sql in
  let states =
    [ [ false; false ]; [ true; false ]; [ false; true ]; [ true; true ] ]
  in
  Fmt.pr
    "Optimizing the four unnesting states of Q1 (two subqueries, three query \
     blocks per state).@.@.";
  let count ~reuse =
    let shared = Hashtbl.create 32 in
    List.fold_left
      (fun total mask ->
        let q = Transform.Unnest_view.apply_mask cat q1 mask in
        let opt =
          if reuse then Planner.Optimizer.create ~annot_cache:shared cat
          else Planner.Optimizer.create cat
        in
        ignore (Planner.Optimizer.optimize opt q);
        total + opt.Planner.Optimizer.blocks_optimized)
      0 states
  in
  let without_reuse = count ~reuse:false in
  let with_reuse = count ~reuse:true in
  Fmt.pr "%-28s %s@." "" "query blocks optimized";
  Fmt.pr "%-28s %d@." "without annotation reuse" without_reuse;
  Fmt.pr "%-28s %d@." "with annotation reuse" with_reuse;
  Fmt.pr "(paper, Table 1: 12 vs 8)@."

(* ------------------------------------------------------------------ *)
(* Table 2: search strategies                                           *)
(* ------------------------------------------------------------------ *)

(** The paper's Table 2 query: three base tables and four subqueries
    (NOT IN / EXISTS / NOT EXISTS / IN), each over three base tables,
    all valid for unnesting. *)
let table2_query (schema : SG.t) =
  let fams = schema.SG.families in
  let f0 = List.nth fams 0
  and f1 = List.nth fams (min 1 (List.length fams - 1)) in
  let fact0 = List.hd f0.SG.fam_facts in
  let mid0 = f0.SG.fam_mid in
  let dim0 = List.hd f0.SG.fam_dims in
  let open Sqlir.Ast in
  let sub i kind =
    let fact = List.hd f1.SG.fam_facts in
    let mid = f1.SG.fam_mid in
    let dim = List.hd f1.SG.fam_dims in
    let fa = Printf.sprintf "s%da" i
    and ma = Printf.sprintf "s%db" i
    and da = Printf.sprintf "s%dc" i in
    let mid_fk, _, _ = List.hd mid.SG.ti_fks in
    let body sel =
      Block
        {
          (empty_block (Printf.sprintf "t2s%d" i)) with
          select = sel;
          from =
            [
              { fe_alias = fa; fe_source = S_table fact.SG.ti_name; fe_kind = J_inner; fe_cond = [] };
              { fe_alias = ma; fe_source = S_table mid.SG.ti_name; fe_kind = J_inner; fe_cond = [] };
              { fe_alias = da; fe_source = S_table dim.SG.ti_name; fe_kind = J_inner; fe_cond = [] };
            ];
          where =
            [
              Cmp (Eq, col fa "mid_id", col ma "id");
              Cmp (Eq, col ma mid_fk, col da "id");
              Cmp (Eq, col fa "code", col "f" "code");
              Cmp
                ( Gt,
                  col da "rank_no",
                  Const (Sqlir.Value.Int (2000 + (i * 1500))) );
            ];
        }
    in
    match kind with
    | `In ->
        In_subq ([ col "f" "id" ], body [ { si_expr = col fa "id"; si_name = "x" } ])
    | `Not_in ->
        Not_in_subq
          ([ col "f" "id" ], body [ { si_expr = col fa "id"; si_name = "x" } ])
    | `Exists ->
        Exists (body [ { si_expr = Const (Sqlir.Value.Int 1); si_name = "x" } ])
    | `Not_exists ->
        Not_exists
          (body [ { si_expr = Const (Sqlir.Value.Int 1); si_name = "x" } ])
  in
  let mid_fk, _, _ = List.hd mid0.SG.ti_fks in
  Block
    {
      (empty_block "t2main") with
      select = [ { si_expr = col "f" "m1"; si_name = "o0" } ];
      from =
        [
          { fe_alias = "f"; fe_source = S_table fact0.SG.ti_name; fe_kind = J_inner; fe_cond = [] };
          { fe_alias = "m"; fe_source = S_table mid0.SG.ti_name; fe_kind = J_inner; fe_cond = [] };
          { fe_alias = "d"; fe_source = S_table dim0.SG.ti_name; fe_kind = J_inner; fe_cond = [] };
        ];
      where =
        [
          Cmp (Eq, col "f" "mid_id", col "m" "id");
          Cmp (Eq, col "m" mid_fk, col "d" "id");
          sub 0 `Not_in;
          sub 1 `Exists;
          sub 2 `Not_exists;
          sub 3 `In;
        ];
    }

let table2 () =
  let db, schema = SG.build ~families:2 ~sample_frac:0.3 ~seed:!seed () in
  let cat = db.Storage.Db.cat in
  let q = table2_query schema in
  let n_objects = List.length (Transform.Unnest_view.objects cat q) in
  Fmt.pr "query: 3 base tables, %d unnestable subqueries@.@." n_objects;
  let strategies =
    [
      ("heuristic", None);
      ("two-pass", Some Cbqt.Search.Two_pass);
      ("linear", Some Cbqt.Search.Linear);
      ("exhaustive", Some Cbqt.Search.Exhaustive);
    ]
  in
  let config_of force =
    match force with
    | None -> { D.heuristic_config with unnest = D.D_heuristic }
    | Some s ->
        {
          D.default_config with
          policy = { Cbqt.Policy.default with force = Some s };
          interleave = false;
          juxtapose = false;
        }
  in
  (* one Bechamel test per strategy; OLS on the monotonic clock gives a
     robust per-run optimization time *)
  let tests =
    List.map
      (fun (name, force) ->
        let config = config_of force in
        Bechamel.Test.make ~name
          (Bechamel.Staged.stage (fun () -> ignore (D.optimize ~config cat q))))
      strategies
  in
  let grouped = Bechamel.Test.make_grouped ~name:"table2" tests in
  let cfg_b =
    Bechamel.Benchmark.cfg ~limit:200
      ~quota:(Bechamel.Time.second 0.4) ~stabilize:false ()
  in
  let raw =
    Bechamel.Benchmark.all cfg_b
      [ Bechamel.Toolkit.Instance.monotonic_clock ]
      grouped
  in
  let ols =
    Bechamel.Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Bechamel.Measure.run |]
  in
  let results =
    Bechamel.Analyze.all ols Bechamel.Toolkit.Instance.monotonic_clock raw
  in
  Fmt.pr "%-12s %12s %8s@." "" "opt. time" "#states";
  List.iter
    (fun (name, force) ->
      let states =
        match force with
        | None -> 1
        | Some _ ->
            let res = D.optimize ~config:(config_of force) cat q in
            List.fold_left
              (fun acc st ->
                if st.D.sr_name = "unnest" then max acc st.sr_states else acc)
              1 res.D.res_report.rp_steps
      in
      let time_ns =
        match Hashtbl.find_opt results ("table2/" ^ name) with
        | Some est -> (
            match Bechamel.Analyze.OLS.estimates est with
            | Some (t :: _) -> t
            | _ -> nan)
        | None -> nan
      in
      Fmt.pr "%-12s %10.2fms %8d@." name (time_ns /. 1e6) states)
    strategies;
  Fmt.pr
    "(paper, Table 2: heuristic 0.24s/1, two-pass 0.33s/2, linear 0.61s/5, \
     exhaustive 0.97s/16)@."

(* ------------------------------------------------------------------ *)
(* Workload experiments (Figures 2-4, Section 4.3)                      *)
(* ------------------------------------------------------------------ *)

let scaled n = max 20 (int_of_float (float_of_int n *. !scale))

let run_experiment ~name ~paper ~n ~mix ~config_a ~config_b () =
  let db, schema = SG.build ~families:4 ~sample_frac:!sample ~seed:!seed () in
  let g = QG.create ~seed:(!seed lxor 0xBEEF) schema in
  let items = QG.workload ~mix g n in
  Fmt.pr "%d queries (%s)@." n name;
  let o = R.run_pair db ~a:config_a ~b:config_b items in
  if o.R.failures <> [] then (
    Fmt.pr "note: %d queries failed and were skipped:@."
      (List.length o.failures);
    List.iter
      (fun f ->
        Fmt.pr "  #%d %s: %s@." f.R.f_id (QG.class_name f.f_class) f.f_error)
      o.failures);
  let s = R.summarize o in
  Fmt.pr "%a" R.pp_summary s;
  Fmt.pr "(paper: %s)@." paper;
  s

let figure2 () =
  ignore
    (run_experiment ~name:"full mix; CBQT heuristic vs cost-based"
       ~paper:
         "2.45% of workload affected; avg +20%; top5 +27%, top25 +18%; 18% \
          of affected degraded ~40%; opt time +40%"
       ~n:(scaled 900) ~mix:QG.default_mix ~config_a:D.heuristic_config
       ~config_b:D.default_config ())

(* a subquery-heavy mix for the unnesting experiment *)
let unnest_mix =
  [
    (QG.C_spj, 0.25);
    (QG.C_exists, 0.17);
    (QG.C_not_exists, 0.1);
    (QG.C_in_multi, 0.16);
    (QG.C_not_in, 0.1);
    (QG.C_agg_subq, 0.22);
  ]

let figure3 () =
  let off = { D.default_config with unnest = D.D_off } in
  ignore
    (run_experiment ~name:"subquery slice; unnesting disabled vs cost-based"
       ~paper:
         "5% of workload affected; avg +387%; top5 +460%, top25 +350%; 15% \
          degraded ~50%; opt time +31%"
       ~n:(scaled 300) ~mix:unnest_mix ~config_a:off
       ~config_b:D.default_config ())

let jppd_mix =
  [ (QG.C_spj, 0.3); (QG.C_gb_view, 0.35); (QG.C_distinct_view, 0.35) ]

let figure4 () =
  let off = { D.default_config with jppd = D.D_off; gb_merge = D.D_off } in
  let on = { D.default_config with gb_merge = D.D_off } in
  ignore
    (run_experiment ~name:"view-join slice; JPPD disabled vs cost-based"
       ~paper:
         "0.75% of workload affected; avg +23%; top5 +15%, top25 +23% \
          (cheaper queries benefit more); 11% degraded ~15%; opt time +7%"
       ~n:(scaled 300) ~mix:jppd_mix ~config_a:off ~config_b:on ())

let gbp_mix = [ (QG.C_spj, 0.3); (QG.C_gbp, 0.7) ]

let gbp () =
  let off = { D.default_config with gbp = D.D_off } in
  ignore
    (run_experiment ~name:"aggregation slice; GBP off vs cost-based"
       ~paper:
         "~2000 queries affected; avg +21%; a few queries improved >200% / \
          >1000%"
       ~n:(scaled 250) ~mix:gbp_mix ~config_a:off ~config_b:D.default_config
       ())

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        parse rest
    | "--only" :: v :: rest ->
        only := v;
        parse rest
    | "--sample" :: v :: rest ->
        sample := float_of_string v;
        parse rest
    | _ :: rest -> parse rest
    | [] -> ()
  in
  parse (List.tl args);
  Fmt.pr
    "Cost-Based Query Transformation in Oracle (VLDB'06) — evaluation \
     reproduction@.seed=%d scale=%.2f sample=%.2f@."
    !seed !scale !sample;
  run_section "table1" table1;
  run_section "table2" table2;
  run_section "figure2" figure2;
  run_section "figure3" figure3;
  run_section "figure4" figure4;
  run_section "gbp" gbp;
  Fmt.pr "@.done.@."
