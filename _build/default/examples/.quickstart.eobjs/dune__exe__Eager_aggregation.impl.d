examples/eager_aggregation.ml: Cbqt Exec Fmt List Planner Printf Sqlir Sqlparse Storage Transform Workload
