examples/eager_aggregation.mli:
