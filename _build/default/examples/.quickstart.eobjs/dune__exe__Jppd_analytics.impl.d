examples/jppd_analytics.ml: Cbqt Exec Fmt List Planner Sqlir Sqlparse Storage Transform Workload
