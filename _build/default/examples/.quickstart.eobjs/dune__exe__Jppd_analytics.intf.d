examples/jppd_analytics.mli:
