examples/quickstart.ml: Array Cbqt Exec Fmt List Planner Sqlir Sqlparse Storage String Workload
