examples/quickstart.mli:
