examples/setops_and_or.ml: Cbqt Exec Fmt List Planner Sqlparse Storage Transform Workload
