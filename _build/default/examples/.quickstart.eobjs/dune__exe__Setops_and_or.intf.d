examples/setops_and_or.mli:
