examples/subquery_unnesting.ml: Cbqt Exec Fmt List Planner Sqlir Sqlparse Storage Transform Workload
