examples/subquery_unnesting.mli:
