(** Group-by placement / eager aggregation (paper Section 2.2.4).

    A report query — total salary per location region — is evaluated
    lazily (join first, aggregate last) and eagerly (pre-aggregate
    employees per department, then join). The better choice depends on
    how much the pre-aggregation shrinks the join input; the CBQT
    framework costs both.

    {v dune exec examples/eager_aggregation.exe v} *)

let sql =
  "SELECT l.country_id, SUM(e.salary) total, COUNT(*) cnt FROM employees e, \
   departments d, locations l WHERE e.dept_id = d.dept_id AND d.loc_id = \
   l.loc_id GROUP BY l.country_id"

let () =
  let db = Workload.Demo.hr_db ~size:16 () in
  let cat = db.Storage.Db.cat in
  let q = Sqlparse.Parser.parse_exn cat sql in
  Fmt.pr "lazy (original):@.  %s@.@." (Sqlir.Pp.query_to_string q);
  let objs = Transform.Gb_placement.objects cat q in
  Fmt.pr "group-by placement objects: %a@.@."
    Fmt.(list ~sep:comma string)
    objs;
  let measure label q =
    let opt = Planner.Optimizer.create cat in
    let ann = Planner.Optimizer.optimize opt q in
    let meter = Exec.Meter.create () in
    let _, rows, _ =
      Exec.Executor.execute ~meter db ann.Planner.Annotation.an_plan
    in
    Fmt.pr "%-28s est=%9.0f  work=%9.0f  rows=%d@." label ann.an_cost
      (Exec.Meter.work meter) (List.length rows)
  in
  measure "lazy aggregation" q;
  List.iteri
    (fun i _ ->
      let mask = List.mapi (fun j _ -> j = i) objs in
      let q' = Transform.Gb_placement.apply_mask cat q mask in
      measure (Printf.sprintf "eager on object %d" i) q')
    objs;
  Fmt.pr "@.framework decision:@.";
  let res = Cbqt.Driver.optimize cat q in
  Fmt.pr "%a@.chosen tree:@.  %s@." Cbqt.Driver.pp_report res.res_report
    (Sqlir.Pp.query_to_string res.Cbqt.Driver.res_query)
