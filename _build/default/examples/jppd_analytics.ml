(** Join predicate pushdown and its juxtaposition with view merging
    (paper Sections 2.2.3 / 3.3.2).

    Builds the paper's Q12 (a DISTINCT view of departments in selected
    countries joined to employees), then compares the three alternatives
    the optimizer must juxtapose: the original (Q12), join predicate
    pushdown with distinct removal and semijoin conversion (Q13), and
    distinct view merging (Q18).

    {v dune exec examples/jppd_analytics.exe v} *)

let q12_sql =
  "SELECT e1.name FROM employees e1, (SELECT DISTINCT d.dept_id FROM \
   departments d, locations l WHERE d.loc_id = l.loc_id AND l.country_id IN \
   ('UK','US')) v WHERE e1.dept_id = v.dept_id AND e1.salary > 4000"

let () =
  let db = Workload.Demo.hr_db ~size:8 () in
  let cat = db.Storage.Db.cat in
  let q12 = Sqlparse.Parser.parse_exn cat q12_sql in
  let q13 = Transform.Jppd.apply_all cat q12 in
  let q18 = Transform.Gb_view_merge.apply_all cat q12 in
  let measure label q =
    let opt = Planner.Optimizer.create cat in
    let ann = Planner.Optimizer.optimize opt q in
    let meter = Exec.Meter.create () in
    let _, rows, _ =
      Exec.Executor.execute ~meter db ann.Planner.Annotation.an_plan
    in
    Fmt.pr "%-34s est=%8.0f  work=%8.0f  rows=%d@." label ann.an_cost
      (Exec.Meter.work meter) (List.length rows);
    Fmt.pr "  %s@.@." (Sqlir.Pp.query_to_string q)
  in
  measure "Q12 (original, distinct view)" q12;
  measure "Q13 (JPPD, semijoin, no distinct)" q13;
  measure "Q18 (distinct view merged)" q18;
  Fmt.pr "=== juxtaposed decision by the framework ===@.";
  let res = Cbqt.Driver.optimize cat q12 in
  Fmt.pr "%a@.chosen tree:@.%s@." Cbqt.Driver.pp_report res.res_report
    (Sqlir.Pp.query_to_string res.Cbqt.Driver.res_query)
