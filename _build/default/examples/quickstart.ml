(** Quickstart: parse a SQL query, run it through cost-based query
    transformation, and execute the chosen plan.

    {v dune exec examples/quickstart.exe v} *)

let () =
  (* 1. a database: the paper's HR-style schema with demo data *)
  let db = Workload.Demo.hr_db ~size:4 () in
  let cat = db.Storage.Db.cat in

  (* 2. a query: the paper's Q1 — employees earning above their
     department average, with job history after a date, in US
     departments *)
  let sql =
    "SELECT e1.name, j.job_id FROM employees e1, job_history j WHERE \
     e1.emp_id = j.emp_id AND j.start_date > DATE 10400 AND e1.salary > \
     (SELECT AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e1.dept_id) \
     AND e1.dept_id IN (SELECT d.dept_id FROM departments d, locations l \
     WHERE d.loc_id = l.loc_id AND l.country_id = 'US')"
  in
  let query = Sqlparse.Parser.parse_exn cat sql in
  Fmt.pr "=== original query ===@.%s@.@." (Sqlir.Pp.query_to_string query);

  (* 3. cost-based transformation + physical optimization *)
  let res = Cbqt.Driver.optimize cat query in
  Fmt.pr "=== transformed query ===@.%s@.@."
    (Sqlir.Pp.query_to_string res.Cbqt.Driver.res_query);
  Fmt.pr "=== transformation report ===@.%a@." Cbqt.Driver.pp_report
    res.res_report;
  Fmt.pr "=== physical plan ===@.%s@."
    (Exec.Plan.to_string res.res_annotation.Planner.Annotation.an_plan);

  (* 4. execute *)
  let meter = Exec.Meter.create () in
  let _, rows, _ =
    Exec.Executor.execute ~meter db res.res_annotation.an_plan
  in
  Fmt.pr "=== results (%d rows) ===@." (List.length rows);
  List.iteri
    (fun i row ->
      if i < 10 then
        Fmt.pr "  %s@."
          (String.concat " | "
             (List.map Sqlir.Value.to_string (Array.to_list row))))
    rows;
  Fmt.pr "work: %a@." Exec.Meter.pp meter
