(** Set operators into joins, OR expansion, and join factorization
    (paper Sections 2.2.5 / 2.2.7 / 2.2.8).

    Three miniature scenarios, each comparing the untransformed and
    transformed evaluation:

    - a MINUS converted into a null-aware-style antijoin;
    - a disjunctive predicate expanded into UNION ALL with LNNVL
      branch guards;
    - a UNION ALL whose branches share a join with departments,
      factorized Q14 → Q15 style.

    {v dune exec examples/setops_and_or.exe v} *)

let () =
  let db = Workload.Demo.hr_db ~size:12 () in
  let cat = db.Storage.Db.cat in
  let measure label q =
    let opt = Planner.Optimizer.create cat in
    let ann = Planner.Optimizer.optimize opt q in
    let meter = Exec.Meter.create () in
    let _, rows, _ =
      Exec.Executor.execute ~meter db ann.Planner.Annotation.an_plan
    in
    Fmt.pr "  %-26s est=%9.0f  work=%9.0f  rows=%d@." label ann.an_cost
      (Exec.Meter.work meter) (List.length rows)
  in

  Fmt.pr "=== MINUS into antijoin (2.2.7) ===@.";
  let minus =
    Sqlparse.Parser.parse_exn cat
      "SELECT e.dept_id FROM employees e MINUS SELECT d.dept_id FROM \
       departments d WHERE d.loc_id = 102"
  in
  measure "MINUS (set operator)" minus;
  measure "antijoin + distinct" (Transform.Setop_to_join.apply_all cat minus);

  Fmt.pr "@.=== OR expansion (2.2.8) ===@.";
  let orq =
    Sqlparse.Parser.parse_exn cat
      "SELECT e.name FROM employees e, departments d WHERE e.dept_id = \
       d.dept_id AND (e.salary > 7800 OR d.loc_id = 102)"
  in
  measure "disjunction post-filter" orq;
  measure "UNION ALL + LNNVL" (Transform.Or_expansion.apply_all cat orq);

  Fmt.pr "@.=== join factorization (2.2.5) ===@.";
  let q14 =
    Sqlparse.Parser.parse_exn cat
      "SELECT e.name, d.dept_name FROM employees e, departments d WHERE \
       e.dept_id = d.dept_id AND e.salary > 7500 UNION ALL SELECT e.name, \
       d.dept_name FROM employees e, departments d WHERE e.dept_id = \
       d.dept_id AND e.salary < 3200"
  in
  measure "Q14 (two scans of dept)" q14;
  measure "Q15 (factored)" (Transform.Join_factor.apply_all cat q14);

  Fmt.pr "@.=== framework decisions ===@.";
  List.iter
    (fun (label, q) ->
      let res = Cbqt.Driver.optimize cat q in
      Fmt.pr "%s:@.%a@." label Cbqt.Driver.pp_report res.Cbqt.Driver.res_report)
    [ ("MINUS", minus); ("OR", orq); ("UNION ALL", q14) ]
