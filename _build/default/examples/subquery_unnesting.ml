(** Subquery unnesting, cost-based (paper Sections 2.2.1 / 3.3.1).

    Runs the paper's Q1 in all four unnesting states — (0,0), (1,0),
    (0,1), (1,1) — plus the interleaved merge of the generated view
    (Q11), estimates each with the physical optimizer, executes each
    with the work meter, and shows which state the CBQT framework picks.

    {v dune exec examples/subquery_unnesting.exe v} *)

module A = Sqlir.Ast

let q1_sql =
  "SELECT e1.name, j.job_id FROM employees e1, job_history j WHERE e1.emp_id \
   = j.emp_id AND j.start_date > DATE 10400 AND e1.salary > (SELECT \
   AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e1.dept_id) AND \
   e1.dept_id IN (SELECT d.dept_id FROM departments d, locations l WHERE \
   d.loc_id = l.loc_id AND l.country_id = 'US')"

let () =
  let db = Workload.Demo.hr_db ~size:8 () in
  let cat = db.Storage.Db.cat in
  let q1 = Sqlparse.Parser.parse_exn cat q1_sql in
  let objects = Transform.Unnest_view.objects cat q1 in
  Fmt.pr "Q1 unnesting objects: %a@.@."
    Fmt.(list ~sep:comma string)
    objects;

  let states =
    [
      ([ false; false ], "(0,0)  TIS for both subqueries");
      ([ true; false ], "(1,0)  unnest the aggregate subquery (Q10)");
      ([ false; true ], "(0,1)  unnest the IN subquery");
      ([ true; true ], "(1,1)  unnest both");
    ]
  in
  Fmt.pr "%-44s %12s %12s@." "state" "est. cost" "actual work";
  List.iter
    (fun (mask, label) ->
      let q = Transform.Unnest_view.apply_mask cat q1 mask in
      let opt = Planner.Optimizer.create cat in
      let ann = Planner.Optimizer.optimize opt q in
      let meter = Exec.Meter.create () in
      let _, _rows, _ =
        Exec.Executor.execute ~meter db ann.Planner.Annotation.an_plan
      in
      Fmt.pr "%-44s %12.0f %12.0f@." label ann.an_cost (Exec.Meter.work meter))
    states;

  (* the interleaved variant: unnest + merge the generated view (Q11) *)
  let q10 = Transform.Unnest_view.apply_mask cat q1 [ true; false ] in
  let q11 = Transform.Gb_view_merge.apply_all cat q10 in
  let opt = Planner.Optimizer.create cat in
  let ann = Planner.Optimizer.optimize opt q11 in
  let meter = Exec.Meter.create () in
  let _, _, _ = Exec.Executor.execute ~meter db ann.Planner.Annotation.an_plan in
  Fmt.pr "%-44s %12.0f %12.0f@." "(1,0)+merge  Q11: unnest then merge view"
    ann.an_cost (Exec.Meter.work meter);

  Fmt.pr "@.CBQT decision:@.";
  let res = Cbqt.Driver.optimize cat q1 in
  Fmt.pr "%a@." Cbqt.Driver.pp_report res.res_report
