lib/core/driver.ml: Ast Catalog Exec Float Fmt Fun Hashtbl List Planner Policy Pp Search Sqlir Transform Unix
