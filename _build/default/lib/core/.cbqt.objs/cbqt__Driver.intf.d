lib/core/driver.mli: Catalog Format Planner Policy Sqlir
