lib/core/policy.ml: Search
