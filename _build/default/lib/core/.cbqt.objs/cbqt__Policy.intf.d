lib/core/policy.mli: Search
