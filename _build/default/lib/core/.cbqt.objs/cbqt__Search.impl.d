lib/core/search.ml: Float Hashtbl List String
