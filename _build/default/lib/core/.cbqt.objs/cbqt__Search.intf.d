lib/core/search.mli:
