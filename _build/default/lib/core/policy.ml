(** Automatic choice of the state-space search strategy (Section 3.2).

    "The cost-based transformation framework automatically decides which
    search technique to use, based on the number of objects to be
    transformed in the query block, characteristics of the
    transformation, and the overall complexity of the query. For
    instance, if a query block contains a small number of subqueries, we
    use exhaustive search for subquery unnesting, but if the number
    exceeds a fixed threshold, we use linear search. If the total number
    of elements subject to transformation in a query exceeds a
    threshold, then we use two-pass search for all transformations." *)

type t = {
  exhaustive_max : int;
      (** use exhaustive search for at most this many objects *)
  iterative_max : int;
      (** above [exhaustive_max] and up to here, use iterative
          improvement *)
  two_pass_total : int;
      (** if the total number of transformation objects in the query
          exceeds this, use two-pass everywhere *)
  iterative_state_budget : int;
  force : Search.strategy option;  (** override, for experiments *)
}

let default =
  {
    exhaustive_max = 4;
    iterative_max = 8;
    two_pass_total = 12;
    iterative_state_budget = 32;
    force = None;
  }

let choose (t : t) ~(n_objects : int) ~(total_objects : int) : Search.strategy
    =
  match t.force with
  | Some s -> s
  | None ->
      if total_objects > t.two_pass_total then Search.Two_pass
      else if n_objects <= t.exhaustive_max then Search.Exhaustive
      else if n_objects <= t.iterative_max then Search.Iterative
      else Search.Linear
