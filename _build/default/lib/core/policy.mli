(** Automatic search-strategy selection (paper Section 3.2): exhaustive
    search for small object counts, iterative improvement then linear
    beyond per-transformation thresholds, and two-pass for every
    transformation once the query's total object count passes a global
    threshold. *)

type t = {
  exhaustive_max : int;
  iterative_max : int;
  two_pass_total : int;
  iterative_state_budget : int;
  force : Search.strategy option;  (** override, for experiments *)
}

val default : t

val choose : t -> n_objects:int -> total_objects:int -> Search.strategy
