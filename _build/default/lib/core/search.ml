(** State-space search strategies for cost-based transformation
    (Section 3.2).

    A {e state} is a bit vector over the N transformation objects: bit i
    set means object i is transformed. The four strategies of the paper
    are implemented over an abstract costing callback, which the driver
    wires to deep-copy + transform + physical optimization:

    - {b Exhaustive}: all 2{^N} states; guaranteed optimal.
    - {b Iterative}: iterative improvement — hill-climbing from several
      starting states, always taking the best downward one-bit move,
      stopping at a local minimum or a state budget; explores between
      N+1 and 2{^N} states.
    - {b Linear}: dynamic-programming flavour — decide each object in
      sequence, keeping a bit only if it lowers the cost; exactly N+1
      states. Optimal when objects are independent.
    - {b Two-pass}: just the all-zeros and all-ones states.

    Costs may be infinite ([infinity]) when the optimizer aborts a state
    through the cost cut-off (Section 3.4.1); such states lose every
    comparison. The evaluation callback is memoized, so re-visited
    states (possible under iterative improvement) are not re-costed —
    and not re-counted. *)

type strategy = Exhaustive | Iterative | Linear | Two_pass

let strategy_name = function
  | Exhaustive -> "exhaustive"
  | Iterative -> "iterative"
  | Linear -> "linear"
  | Two_pass -> "two-pass"

type result = {
  r_best : bool list;
  r_best_cost : float;
  r_states : int;  (** distinct states costed *)
  r_trace : (bool list * float) list;  (** evaluation order *)
}

let mask_to_string mask =
  "(" ^ String.concat "," (List.map (fun b -> if b then "1" else "0") mask) ^ ")"

(* memoizing wrapper around the costing callback *)
let memoized eval =
  let seen : (bool list, float) Hashtbl.t = Hashtbl.create 16 in
  let states = ref 0 in
  let trace = ref [] in
  let f mask =
    match Hashtbl.find_opt seen mask with
    | Some c -> c
    | None ->
        let c = eval mask in
        Hashtbl.replace seen mask c;
        incr states;
        trace := (mask, c) :: !trace;
        c
  in
  (f, states, trace)

let all_masks n =
  List.init (1 lsl n) (fun code ->
      List.init n (fun i -> code land (1 lsl i) <> 0))

let zeros n = List.init n (fun _ -> false)
let ones n = List.init n (fun _ -> true)

let flip mask i = List.mapi (fun j b -> if j = i then not b else b) mask

let run ?(iterative_max_states = 32) (strategy : strategy) (n : int)
    (eval : bool list -> float) : result =
  if n = 0 then
    { r_best = []; r_best_cost = eval []; r_states = 1; r_trace = [ ([], nan) ] }
  else
    let eval, states, trace = memoized eval in
    let best = ref (zeros n) in
    let best_cost = ref (eval (zeros n)) in
    let consider mask =
      let c = eval mask in
      if c < !best_cost then (
        best := mask;
        best_cost := c)
    in
    (match strategy with
    | Exhaustive -> List.iter consider (all_masks n)
    | Two_pass -> consider (ones n)
    | Linear ->
        (* extend the current decision one object at a time *)
        let current = ref (zeros n) in
        for i = 0 to n - 1 do
          let cand = flip !current i in
          if eval cand < eval !current then (
            current := cand;
            consider cand)
        done
    | Iterative ->
        (* hill-climb from all-zeros and all-ones; best downward
           neighbour until local minimum or state budget *)
        let climb start =
          let cur = ref start in
          let cur_cost = ref (eval start) in
          if !cur_cost < !best_cost then (
            best := !cur;
            best_cost := !cur_cost);
          let improved = ref true in
          while !improved && !states < iterative_max_states do
            improved := false;
            let neighbours = List.init n (fun i -> flip !cur i) in
            let candidates =
              List.filter_map
                (fun m ->
                  if !states >= iterative_max_states then None
                  else
                    let c = eval m in
                    if c < !cur_cost then Some (m, c) else None)
                neighbours
            in
            match
              List.sort (fun (_, a) (_, b) -> Float.compare a b) candidates
            with
            | (m, c) :: _ ->
                cur := m;
                cur_cost := c;
                improved := true;
                if c < !best_cost then (
                  best := m;
                  best_cost := c)
            | [] -> ()
          done
        in
        climb (zeros n);
        if !states < iterative_max_states then climb (ones n));
    { r_best = !best; r_best_cost = !best_cost; r_states = !states;
      r_trace = List.rev !trace }
