lib/cost/info.ml: Ast Catalog Float List Sqlir Value
