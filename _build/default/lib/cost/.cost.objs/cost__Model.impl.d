lib/cost/model.ml: Exec Float
