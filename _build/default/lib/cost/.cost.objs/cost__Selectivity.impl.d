lib/cost/selectivity.ml: Ast Exec Float Info List Option Sqlir Value
