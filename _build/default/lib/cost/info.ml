(** Optimizer-visible data properties: per-column info and per-relation
    info flowing through plan construction.

    [rel_info] describes any row source — a base table, an intermediate
    join result, or a view output — by its estimated cardinality and the
    statistics of each visible (alias, column). Derived from catalog
    statistics for base tables and propagated through operators by the
    estimator. *)

open Sqlir

type colinfo = {
  ci_ndv : float;  (** distinct non-null values *)
  ci_null_frac : float;  (** fraction of NULLs *)
  ci_min : Value.t;
  ci_max : Value.t;
}

let default_colinfo =
  { ci_ndv = 10.; ci_null_frac = 0.0; ci_min = Value.Null; ci_max = Value.Null }

type rel_info = {
  ri_rows : float;
  ri_cols : ((string * string) * colinfo) list;  (** keyed by (alias, col) *)
}

let empty = { ri_rows = 1.; ri_cols = [] }

let find_col info (c : Ast.col) =
  List.assoc_opt (c.Ast.c_alias, c.Ast.c_col) info.ri_cols

(** Column info of an expression, when it is a bare column with known
    statistics. *)
let expr_colinfo info = function Ast.Col c -> find_col info c | _ -> None

(** Build the [rel_info] of base table [table] bound to [alias], from
    catalog statistics; falls back to guesses when statistics are
    missing (the optimizer's classic failure mode). *)
let of_table (cat : Catalog.t) ~table ~alias : rel_info =
  let def = Catalog.find_table cat table in
  match Catalog.stats cat table with
  | None ->
      let rows = 1000. in
      {
        ri_rows = rows;
        ri_cols =
          List.map
            (fun c ->
              ((alias, c.Catalog.c_name), { default_colinfo with ci_ndv = 100. }))
            def.t_cols;
      }
  | Some s ->
      let rows = float_of_int (max 1 s.s_rows) in
      {
        ri_rows = rows;
        ri_cols =
          List.map
            (fun c ->
              let ci =
                match List.assoc_opt c.Catalog.c_name s.s_cols with
                | None -> default_colinfo
                | Some cs ->
                    {
                      ci_ndv = float_of_int (max 1 cs.s_ndv);
                      ci_null_frac =
                        (if s.s_rows = 0 then 0.
                         else float_of_int cs.s_nulls /. rows);
                      ci_min = cs.s_min;
                      ci_max = cs.s_max;
                    }
              in
              ((alias, c.Catalog.c_name), ci))
            def.t_cols;
      }

(** Combine two sides of a join into the info of the join result. *)
let join ~rows (a : rel_info) (b : rel_info) : rel_info =
  let cap ci = { ci with ci_ndv = Float.min ci.ci_ndv rows } in
  {
    ri_rows = rows;
    ri_cols = List.map (fun (k, ci) -> (k, cap ci)) (a.ri_cols @ b.ri_cols);
  }

(** Apply a filter factor to a relation, scaling NDVs down with the
    usual (1 - (1 - 1/ndv)^kept) ≈ min(ndv, rows) approximation. *)
let filter ~sel (info : rel_info) : rel_info =
  let rows = Float.max 1. (info.ri_rows *. sel) in
  {
    ri_rows = rows;
    ri_cols =
      List.map
        (fun (k, ci) -> (k, { ci with ci_ndv = Float.min ci.ci_ndv rows }))
        info.ri_cols;
  }

(** Info of a projection output: each item is (output name, info of the
    projected expression). Used for view outputs and aggregate results. *)
let project ~alias ~rows (items : (string * colinfo) list) : rel_info =
  {
    ri_rows = rows;
    ri_cols =
      List.map
        (fun (name, ci) ->
          ((alias, name), { ci with ci_ndv = Float.min ci.ci_ndv rows }))
        items;
  }
