(** The cost model.

    Costs are expressed in the same work units the executor's
    {!Exec.Meter} charges, with the same weights. Consequently the
    estimated cost of a plan equals the metered cost the executor would
    charge if every cardinality estimate were exact; estimation error —
    and with it the occasional regression of a cost-based decision — can
    come only from the statistics, which is exactly the situation the
    paper describes (Section 4.2). *)

module M = Exec.Meter

let w_page = M.w_page
let w_row = M.w_row
let w_probe = M.w_probe
let w_entry = M.w_entry
let w_join = M.w_join
let w_hash_build = M.w_hash_build
let w_hash_probe = M.w_hash_probe
let w_cmp = M.w_cmp
let w_agg = M.w_agg
let w_out = M.w_out
let w_expensive = M.w_expensive

let out_tax rows = w_out *. Float.max 0. rows

let table_scan ~pages ~rows ~out =
  (w_page *. pages) +. (w_row *. rows) +. out_tax out

(** One index probe returning [entries] index entries and fetching
    [rows] table rows. *)
let index_probe ~height ~entries ~rows ~out =
  (w_probe *. float_of_int height) +. (w_entry *. entries) +. (w_row *. rows)
  +. out_tax out

let sort ~rows =
  if rows <= 1. then 0. else w_cmp *. rows *. (Float.max 1. (log rows /. log 2.))

(** Nested loops: left cost, then one execution of the right side per
    left row, plus the pair-evaluation tax. *)
let nl_join ~lcost ~lrows ~rcost_per_probe ~pairs ~out =
  lcost +. (lrows *. rcost_per_probe) +. (w_join *. pairs) +. out_tax out

let hash_join ~lcost ~rcost ~lrows ~rrows ~pairs ~out =
  lcost +. rcost +. (w_hash_build *. rrows) +. (w_hash_probe *. lrows)
  +. (w_join *. pairs) +. out_tax out

let merge_join ~lcost ~rcost ~lrows ~rrows ~pairs ~out =
  lcost +. rcost +. sort ~rows:lrows +. sort ~rows:rrows +. (w_join *. pairs)
  +. out_tax out

let aggregate ~strategy ~rows ~groups =
  (match strategy with `Hash -> 0. | `Sort -> sort ~rows)
  +. (w_agg *. rows) +. out_tax groups

let distinct ~rows ~groups = (w_hash_build *. rows) +. out_tax groups

let filter ~rows ~out = (w_row *. rows *. 0.1) +. out_tax out

let project ~rows = out_tax rows

let window ~rows = sort ~rows +. (w_agg *. rows) +. out_tax rows

let setop ~lrows ~rrows ~out =
  (w_hash_build *. rrows) +. (w_hash_probe *. lrows) +. out_tax out

(** TIS subquery filter: [execs] cache misses each costing
    [subq_cost], over [rows] candidate rows. *)
let subq_filter ~rows ~execs ~subq_cost ~out =
  (execs *. subq_cost) +. (w_row *. rows *. 0.1) +. out_tax out

let expensive_calls ~calls = w_expensive *. calls

(** Cost of evaluating filter conjuncts over [rows] input rows, with
    short-circuit ordering: cheap conjuncts run first, and each
    expensive (procedural-function) conjunct is charged only for the
    rows surviving the conjuncts before it. The physical optimizer
    orders conjunct lists the same way, so this mirrors execution. *)
let pred_eval_cost ~(rows : float) ~(cheap_sel : float)
    ~(n_expensive : int) : float =
  let base = w_row *. rows *. 0.1 in
  if n_expensive = 0 then base
  else base +. (w_expensive *. rows *. Float.max cheap_sel 0.01
                *. float_of_int n_expensive)
