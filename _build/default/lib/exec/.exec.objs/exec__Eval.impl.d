lib/exec/eval.ml: Array Ast Funcs List Meter Option Sqlir String Value
