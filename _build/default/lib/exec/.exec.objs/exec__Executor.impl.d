lib/exec/executor.ml: Array Ast Eval List Map Meter Option Plan Sqlir Storage Value Walk
