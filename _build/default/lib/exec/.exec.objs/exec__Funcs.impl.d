lib/exec/funcs.ml: Float Hashtbl Sqlir String Value
