lib/exec/meter.ml: Fmt
