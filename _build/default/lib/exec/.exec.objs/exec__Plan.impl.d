lib/exec/plan.ml: Array Ast Catalog Digest Fmt Funcs List Pp Sqlir String Walk
