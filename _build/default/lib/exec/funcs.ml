(** Scalar-function registry.

    Functions are classified as cheap or expensive; the expensive ones
    model the "procedural language functions [and] user-defined
    operators" that predicate pullup (Section 2.2.6) reasons about. The
    executor charges [Meter.w_expensive] work units per expensive call,
    and the cost model charges the same constant per estimated call, so
    pullup decisions are genuinely cost-based. *)

open Sqlir

type def = {
  f_eval : Value.t list -> Value.t;
  f_expensive : bool;
  f_selectivity : float;  (** default selectivity when used as predicate *)
}

let registry : (string, def) Hashtbl.t = Hashtbl.create 16

let register name def = Hashtbl.replace registry (String.lowercase_ascii name) def

let find name = Hashtbl.find_opt registry (String.lowercase_ascii name)

exception Unknown_function of string

let find_exn name =
  match find name with Some d -> d | None -> raise (Unknown_function name)

let is_expensive name =
  match find name with Some d -> d.f_expensive | None -> false

let selectivity name =
  match find name with Some d -> d.f_selectivity | None -> 0.5

let cheap f = { f_eval = f; f_expensive = false; f_selectivity = 0.5 }

let () =
  register "abs"
    (cheap (function
      | [ Value.Int i ] -> Value.Int (abs i)
      | [ Value.Float f ] -> Value.Float (Float.abs f)
      | _ -> Value.Null));
  register "mod"
    (cheap (function
      | [ Value.Int a; Value.Int b ] when b <> 0 -> Value.Int (a mod b)
      | _ -> Value.Null));
  register "upper"
    (cheap (function
      | [ Value.Str s ] -> Value.Str (String.uppercase_ascii s)
      | _ -> Value.Null));
  register "lower"
    (cheap (function
      | [ Value.Str s ] -> Value.Str (String.lowercase_ascii s)
      | _ -> Value.Null));
  register "length"
    (cheap (function
      | [ Value.Str s ] -> Value.Int (String.length s)
      | _ -> Value.Null));
  register "substr"
    (cheap (function
      | [ Value.Str s; Value.Int pos; Value.Int len ] ->
          let pos = max 1 pos - 1 in
          if pos >= String.length s then Value.Str ""
          else Value.Str (String.sub s pos (min len (String.length s - pos)))
      | _ -> Value.Null));
  (* Expensive predicates used by the predicate-pullup experiments: a
     deterministic but non-trivial check standing in for a PL/SQL
     function. *)
  register "expensive_check"
    {
      f_eval =
        (function
        | [ v; Value.Int m ] -> (
            match v with
            | Value.Null -> Value.Null
            | Value.Int i -> Value.Bool (Hashtbl.hash (i, m) mod 97 < 97 * 3 / 10)
            | Value.Str s -> Value.Bool (Hashtbl.hash (s, m) mod 97 < 97 * 3 / 10)
            | _ -> Value.Bool false)
        | _ -> Value.Null);
      f_expensive = true;
      f_selectivity = 0.3;
    };
  register "expensive_score"
    {
      f_eval =
        (function
        | [ Value.Null ] -> Value.Null
        | [ v ] -> Value.Int (Hashtbl.hash v mod 1000)
        | _ -> Value.Null);
      f_expensive = true;
      f_selectivity = 0.5;
    }
