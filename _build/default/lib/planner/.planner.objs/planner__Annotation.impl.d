lib/planner/annotation.ml: Cost Exec Fmt
