lib/planner/optimizer.ml: Annotation Array Ast Catalog Cost Exec Float Hashtbl List Option Pp Printf Sqlir String Walk
