(** Cost annotations: the result of physically optimizing a query
    (sub-)tree.

    These are the objects the CBQT framework reuses across
    transformation states (Section 3.4.2): when two states share an
    untransformed subquery, its annotation — plan, cost, cardinality,
    output properties — is computed once and reused, which is what keeps
    exhaustive search affordable (Table 2). *)

type t = {
  an_plan : Exec.Plan.t;
  an_cost : float;  (** estimated total work units *)
  an_rows : float;  (** estimated output cardinality *)
  an_info : Cost.Info.rel_info;  (** output column properties *)
}

let pp ppf a =
  Fmt.pf ppf "cost=%.1f rows=%.1f@.%a" a.an_cost a.an_rows
    (Exec.Plan.pp ~indent:1) a.an_plan
