(** The physical optimizer.

    A System-R style per-query-block optimizer: it chooses access paths
    (full scan vs. B-tree index), join order (left-deep dynamic
    programming, greedy beyond a size threshold) and join methods
    (nested loops with or without index, hash, sort-merge), honouring
    the partial orders that semijoin, antijoin, outerjoin and
    correlated (join-predicate-pushed-down) views impose on the join
    sequence (Sections 2.1.1 and 2.2.3). Non-unnested subqueries are
    costed and executed with tuple iteration semantics, including the
    correlation-value cache.

    Within the CBQT framework this module plays the role of the "cost
    estimation technique (physical optimizer)" of Section 3.1: each
    transformation state is deep-copied, handed to [optimize_query], and
    the resulting {!Annotation} is compared across states. The
    [cost_cap] hook implements the cost cut-off of Section 3.4.1, and
    the annotation cache implements the sub-tree cost-annotation reuse
    of Section 3.4.2. *)

open Sqlir
module A = Ast
module Info = Cost.Info
module Sel = Cost.Selectivity
module Model = Cost.Model
module Plan = Exec.Plan
module Sset = Walk.Sset

exception Unsupported of string
exception Cost_cap_exceeded

type config = {
  dp_threshold : int;
      (** maximum number of FROM entries for exhaustive left-deep DP;
          larger blocks use a greedy ordering *)
  enable_merge_join : bool;
  enable_hash_join : bool;
}

let default_config =
  { dp_threshold = 9; enable_merge_join = true; enable_hash_join = true }

type t = {
  cat : Catalog.t;
  cfg : config;
  mutable blocks_optimized : int;
      (** number of query-block optimizations performed (cache misses),
          the unit of Table 1 / Table 2 accounting *)
  mutable cache_hits : int;
  annot_cache : (string, Annotation.t) Hashtbl.t option;
  mutable cost_cap : float option;
      (** abort optimization when a block's cost exceeds this (cost
          cut-off, Section 3.4.1) *)
  mutable fresh : int;
  info_cache : (string, (string * Cost.Info.colinfo) list) Hashtbl.t;
      (** per-table column properties, derived from catalog statistics
          once per optimizer and reused across every state of every
          transformation — the analogue of the paper's caching of
          expensive optimizer computations such as dynamic sampling
          (Section 3.4.4) *)
}

let create ?(cfg = default_config) ?annot_cache cat =
  {
    cat;
    cfg;
    blocks_optimized = 0;
    cache_hits = 0;
    annot_cache;
    cost_cap = None;
    fresh = 0;
    info_cache = Hashtbl.create 32;
  }

let gensym t base =
  t.fresh <- t.fresh + 1;
  Printf.sprintf "%s%d" base t.fresh

(** Table info with the Section 3.4.4 cache: the (alias-independent)
    per-column derivation happens once per optimizer instance. *)
let table_info t ~table ~alias : Info.rel_info =
  let cols =
    match Hashtbl.find_opt t.info_cache table with
    | Some cols -> cols
    | None ->
        let info = Info.of_table t.cat ~table ~alias:"$t" in
        let cols = List.map (fun ((_, c), ci) -> (c, ci)) info.Info.ri_cols in
        Hashtbl.replace t.info_cache table cols;
        cols
  in
  let rows =
    match Catalog.stats t.cat table with
    | Some s -> float_of_int (max 1 s.s_rows)
    | None -> 1000.
  in
  {
    Info.ri_rows = rows;
    ri_cols = List.map (fun (c, ci) -> ((alias, c), ci)) cols;
  }

let merge_env (infos : Info.rel_info list) : Info.rel_info =
  {
    Info.ri_rows = 1.;
    ri_cols = List.concat_map (fun i -> i.Info.ri_cols) infos;
  }

(** Filter-evaluation cost of [preds] over [rows] input rows, charging
    expensive procedural predicates per surviving row (cheap conjuncts
    are ordered first, both here and in the built plans). *)
let filter_cost env ~rows (preds : A.pred list) : float =
  let cheap = List.filter (fun p -> Plan.n_expensive_preds [ p ] = 0) preds in
  Model.pred_eval_cost ~rows
    ~cheap_sel:(Sel.conj_sel env cheap)
    ~n_expensive:(Plan.n_expensive_preds preds)

let default_expr_info env ~rows (e : A.expr) : Info.colinfo =
  match e with
  | A.Col c -> (
      match Info.find_col env c with
      | Some ci -> ci
      | None -> { Info.default_colinfo with ci_ndv = Float.max 1. rows })
  | A.Const v ->
      { Info.default_colinfo with ci_ndv = 1.; ci_min = v; ci_max = v }
  | A.Agg ((A.Count | A.Count_star), _, _) ->
      { Info.default_colinfo with ci_ndv = Float.max 1. (rows /. 2.) }
  | _ -> { Info.default_colinfo with ci_ndv = Float.max 1. (rows /. 3.) }

(* ------------------------------------------------------------------ *)
(* FROM-entry analysis                                                  *)
(* ------------------------------------------------------------------ *)

type entry = {
  e_idx : int;
  e_alias : string;
  e_kind : A.jkind;
  e_cond : A.pred list;  (* ON conjuncts for non-inner roles *)
  e_source : esource;
  e_info : Info.rel_info;  (* raw (pre-filter) info, bound to e_alias *)
  e_rows : float;
  e_single : A.pred list;  (* WHERE conjuncts local to this alias *)
  e_single_sel : float;
  e_prereq : Sset.t;  (* local aliases that must precede this entry *)
}

and esource =
  | E_table of string
  | E_view of Annotation.t * bool  (* annotation, correlated? *)

type partial = {
  p_set : int;
  p_aliases : Sset.t;
  p_plan : Plan.t;
  p_cost : float;
  p_rows : float;
  p_info : Info.rel_info;
}

let bit i = 1 lsl i

(* ------------------------------------------------------------------ *)
(* Main recursion                                                       *)
(* ------------------------------------------------------------------ *)

let rec optimize_query t ~(outer : Info.rel_info) ~(out_alias : string)
    (q : A.query) : Annotation.t =
  let key = out_alias ^ "|" ^ Pp.fingerprint q in
  let cached =
    match t.annot_cache with
    | Some c -> Hashtbl.find_opt c key
    | None -> None
  in
  match cached with
  | Some ann ->
      t.cache_hits <- t.cache_hits + 1;
      ann
  | None ->
      let ann =
        match q with
        | A.Block b -> optimize_block t ~outer ~out_alias b
        | A.Setop (op, l, r) -> optimize_setop t ~outer ~out_alias op l r
      in
      (match t.annot_cache with
      | Some c -> Hashtbl.replace c key ann
      | None -> ());
      (match t.cost_cap with
      | Some cap when ann.an_cost > cap -> raise Cost_cap_exceeded
      | _ -> ());
      ann

and optimize_setop t ~outer ~out_alias op l r : Annotation.t =
  let al = optimize_query t ~outer ~out_alias l in
  let ar = optimize_query t ~outer ~out_alias r in
  match op with
  | A.Union_all ->
      let rows = al.an_rows +. ar.an_rows in
      {
        an_plan = Plan.Union_all [ al.an_plan; ar.an_plan ];
        an_cost = al.an_cost +. ar.an_cost +. Model.out_tax rows;
        an_rows = rows;
        an_info = { al.an_info with ri_rows = rows };
      }
  | A.Union ->
      let rows = al.an_rows +. ar.an_rows in
      let groups = Float.max 1. (rows *. 0.7) in
      {
        an_plan = Plan.Distinct (Plan.Union_all [ al.an_plan; ar.an_plan ]);
        an_cost =
          al.an_cost +. ar.an_cost +. Model.distinct ~rows ~groups;
        an_rows = groups;
        an_info = { al.an_info with ri_rows = groups };
      }
  | A.Intersect | A.Minus ->
      let sop = match op with A.Intersect -> `Intersect | _ -> `Minus in
      let rows =
        match op with
        | A.Intersect -> Float.max 1. (Float.min al.an_rows ar.an_rows /. 2.)
        | _ -> Float.max 1. (al.an_rows /. 2.)
      in
      {
        an_plan = Plan.Setop_exec { op = sop; left = al.an_plan; right = ar.an_plan };
        an_cost =
          al.an_cost +. ar.an_cost
          +. Model.setop ~lrows:al.an_rows ~rrows:ar.an_rows ~out:rows;
        an_rows = rows;
        an_info = { al.an_info with ri_rows = rows };
      }

and optimize_block t ~outer ~out_alias (b : A.block) : Annotation.t =
  t.blocks_optimized <- t.blocks_optimized + 1;
  if b.from = [] then raise (Unsupported "empty FROM clause");
  match rownum_fusion t ~outer ~out_alias b with
  | Some ann -> ann
  | None -> optimize_block_general t ~outer ~out_alias b

(** ROWNUM short-circuit: a simple single-source block with a row limit
    and expensive predicates evaluates the predicates streaming, row by
    row, stopping when the quota fills (Section 2.2.6's pulled-up
    expensive predicates only pay for the rows actually examined). *)
and rownum_fusion t ~outer ~out_alias (b : A.block) : Annotation.t option =
  match (b.A.limit, b.A.from) with
  | Some k, [ fe ]
    when fe.A.fe_kind = A.J_inner && fe.A.fe_cond = []
         && b.A.group_by = [] && b.A.having = []
         && (not b.A.distinct)
         && b.A.order_by = []
         && (not (Walk.block_has_agg b))
         && (not (Walk.block_has_win b))
         && b.A.where <> []
         && List.for_all (fun p -> not (Walk.pred_has_subquery p)) b.A.where
         && Plan.n_expensive_preds b.A.where > 0 ->
      let child_ann =
        match fe.A.fe_source with
        | A.S_view vq -> optimize_query t ~outer ~out_alias:fe.A.fe_alias vq
        | A.S_table tbl ->
            let info = table_info t ~table:tbl ~alias:fe.A.fe_alias in
            let pages =
              match Catalog.stats t.cat tbl with
              | Some st -> float_of_int st.s_pages
              | None -> Float.max 1. (info.Info.ri_rows /. 64.)
            in
            {
              Annotation.an_plan =
                Plan.Table_scan { table = tbl; alias = fe.A.fe_alias; filter = [] };
              an_cost =
                Model.table_scan ~pages ~rows:info.Info.ri_rows
                  ~out:info.Info.ri_rows;
              an_rows = info.Info.ri_rows;
              an_info = info;
            }
      in
      let env = merge_env [ outer; child_ann.an_info ] in
      let preds =
        Plan.order_preds (List.concat_map A.conjuncts b.A.where)
      in
      let sel = Sel.conj_sel env preds in
      let examined =
        Float.min child_ann.an_rows (float_of_int k /. Float.max sel 1e-3)
      in
      let rows =
        Float.min (float_of_int k)
          (Float.max 0.5 (child_ann.an_rows *. sel))
      in
      let items =
        List.map (fun si -> (si.A.si_expr, si.A.si_name)) b.A.select
      in
      let out_info =
        Info.project ~alias:out_alias ~rows
          (List.map
             (fun (e, nm) -> (nm, default_expr_info env ~rows e))
             items)
      in
      Some
        {
          Annotation.an_plan =
            Plan.Project
              {
                child =
                  Plan.Limit_filter
                    { child = child_ann.an_plan; preds; n = k };
                alias = out_alias;
                items;
              };
          an_cost =
            child_ann.an_cost
            +. filter_cost env ~rows:examined preds
            +. Model.project ~rows;
          an_rows = rows;
          an_info = out_info;
        }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Semijoin -> distinct inner join (Section 2.1.1)                       *)
(* ------------------------------------------------------------------ *)

(* "We can convert this semijoin into an inner join by applying a sort
   distinct operator on the selected rows [of the right table] and by
   relaxing the partial join order restriction. This allows both the
   join orders ... to be considered by the optimizer. In Oracle, this
   transformation has been incorporated into the physical optimizer."

   Eligibility: a base-table semijoin entry whose ON condition is pure
   equality with separable sides and which the block references nowhere
   else. The entry becomes an inner join against SELECT DISTINCT of the
   table-side expressions (the table's single-table predicates move
   inside), which is commutative and can therefore lead the join
   order. *)
and semi_distinct_variants (b : A.block) : A.block list =
  let local = Walk.defined_aliases b in
  List.filter_map
    (fun fe ->
      match (fe.A.fe_kind, fe.A.fe_source) with
      | A.J_semi, A.S_table table ->
          let alias = fe.A.fe_alias in
          (* every ON conjunct must be an equality with the table on
             exactly one side *)
          let sides =
            List.map
              (fun p ->
                match p with
                | A.Cmp (A.Eq, x, y) ->
                    let xa = Walk.expr_aliases x and ya = Walk.expr_aliases y in
                    if
                      Sset.equal xa (Sset.singleton alias)
                      && not (Sset.mem alias ya)
                    then Some (x, y)
                    else if
                      Sset.equal ya (Sset.singleton alias)
                      && not (Sset.mem alias xa)
                    then Some (y, x)
                    else None
                | _ -> None)
              fe.A.fe_cond
          in
          if sides = [] || not (List.for_all Option.is_some sides) then None
          else
            let sides = List.map Option.get sides in
            (* single-table predicates on the entry move into the view *)
            let singles, rest_where =
              List.partition
                (fun p ->
                  (not (Walk.pred_has_subquery p))
                  && Sset.equal
                       (Sset.inter (Walk.pred_aliases ~deep:false p) local)
                       (Sset.singleton alias))
                b.A.where
            in
            (* no other references to the entry allowed *)
            let residual_block =
              { b with A.from =
                  List.filter (fun o -> not (String.equal o.A.fe_alias alias)) b.A.from;
                where = rest_where }
            in
            let still_referenced =
              Walk.fold_block_cols
                (fun acc c -> acc || String.equal c.A.c_alias alias)
                false residual_block
            in
            if still_referenced then None
            else
              let inner_alias = alias ^ "$sd" in
              let ren e =
                Walk.map_expr_cols
                  (fun c ->
                    if String.equal c.A.c_alias alias then
                      A.Col { c with A.c_alias = inner_alias }
                    else A.Col c)
                  e
              in
              let ren_p p =
                Walk.map_pred_cols
                  (fun c ->
                    if String.equal c.A.c_alias alias then
                      A.Col { c with A.c_alias = inner_alias }
                    else A.Col c)
                  p
              in
              let view =
                A.Block
                  {
                    (A.empty_block (b.A.qb_name ^ "_sd")) with
                    A.select =
                      List.mapi
                        (fun i (tside, _) ->
                          { A.si_expr = ren tside; si_name = Printf.sprintf "d%d" i })
                        sides;
                    distinct = true;
                    from =
                      [
                        {
                          A.fe_alias = inner_alias;
                          fe_source = A.S_table table;
                          fe_kind = A.J_inner;
                          fe_cond = [];
                        };
                      ];
                    where = List.map ren_p singles;
                  }
              in
              let new_entry =
                {
                  A.fe_alias = alias;
                  fe_source = A.S_view view;
                  fe_kind = A.J_inner;
                  fe_cond = [];
                }
              in
              let join_preds =
                List.mapi
                  (fun i (_, other) ->
                    A.Cmp (A.Eq, A.col alias (Printf.sprintf "d%d" i), other))
                  sides
              in
              Some
                {
                  b with
                  A.from =
                    List.map
                      (fun o ->
                        if String.equal o.A.fe_alias alias then new_entry else o)
                      b.A.from;
                  where = rest_where @ join_preds;
                }
      | _ -> None)
    b.A.from

and optimize_block_general t ~outer ~out_alias (b : A.block) : Annotation.t =
  match semi_distinct_variants b with
  | [] -> optimize_block_core t ~outer ~out_alias b
  | variants ->
      let base = optimize_block_core t ~outer ~out_alias b in
      List.fold_left
        (fun (best : Annotation.t) b' ->
          match optimize_block_core t ~outer ~out_alias b' with
          | ann when ann.an_cost < best.an_cost -> ann
          | _ -> best
          | exception (Unsupported _ | Cost_cap_exceeded) -> best)
        base variants

and optimize_block_core t ~outer ~out_alias (b : A.block) : Annotation.t =
  let local_aliases = Walk.defined_aliases b in
  (* --- classify WHERE conjuncts (flattening nested ANDs first) --- *)
  let where = List.concat_map A.conjuncts b.where in
  let subq_preds, plain = List.partition Walk.pred_has_subquery where in
  let local_of p = Sset.inter (Walk.pred_aliases ~deep:true p) local_aliases in
  let single_tbl : (string, A.pred list) Hashtbl.t = Hashtbl.create 8 in
  let join_preds = ref [] in
  let zero_preds = ref [] in
  List.iter
    (fun p ->
      let locs = local_of p in
      match Sset.cardinal locs with
      | 0 -> zero_preds := p :: !zero_preds
      | 1 ->
          let a = Sset.choose locs in
          Hashtbl.replace single_tbl a
            ((try Hashtbl.find single_tbl a with Not_found -> []) @ [ p ])
      | _ -> join_preds := p :: !join_preds)
    plain;
  let join_preds = List.rev !join_preds in
  let zero_preds = List.rev !zero_preds in
  (* --- build entries --- *)
  let base_infos =
    List.filter_map
      (fun fe ->
        match fe.A.fe_source with
        | A.S_table tbl ->
            Some (table_info t ~table:tbl ~alias:fe.A.fe_alias)
        | A.S_view _ -> None)
      b.from
  in
  let sibling_env = merge_env (outer :: base_infos) in
  let entries =
    List.mapi
      (fun i fe ->
        let singles =
          try Hashtbl.find single_tbl fe.A.fe_alias with Not_found -> []
        in
        let source, info, correlated_prereq =
          match fe.A.fe_source with
          | A.S_table tbl ->
              ( E_table tbl,
                table_info t ~table:tbl ~alias:fe.A.fe_alias,
                Sset.empty )
          | A.S_view vq ->
              let free = Sset.inter (Walk.free_aliases vq) local_aliases in
              let correlated = not (Sset.is_empty free) in
              let ann =
                optimize_query t ~outer:sibling_env ~out_alias:fe.A.fe_alias vq
              in
              (E_view (ann, correlated), ann.Annotation.an_info, free)
        in
        let cond_prereq =
          List.fold_left
            (fun s p -> Sset.union s (Sset.inter (Walk.pred_aliases ~deep:true p) local_aliases))
            Sset.empty fe.A.fe_cond
        in
        let prereq =
          Sset.remove fe.A.fe_alias (Sset.union correlated_prereq cond_prereq)
        in
        let env_for_sel = merge_env [ outer; sibling_env; info ] in
        let ssel = Sel.conj_sel env_for_sel singles in
        {
          e_idx = i;
          e_alias = fe.A.fe_alias;
          e_kind = fe.A.fe_kind;
          e_cond = fe.A.fe_cond;
          e_source = source;
          e_info = info;
          e_rows = info.Info.ri_rows;
          e_single = singles;
          e_single_sel = ssel;
          e_prereq = prereq;
        })
      b.from
  in
  let n = List.length entries in
  let entries_arr = Array.of_list entries in
  let full_env =
    merge_env (outer :: List.map (fun e -> e.e_info) entries)
  in
  (* --- join enumeration --- *)
  let joined =
    if n = 1 then
      initial_partial t ~outer ~env:full_env ~local:local_aliases
        (List.hd entries)
    else if n <= t.cfg.dp_threshold then
      dp_join t ~outer ~env:full_env ~local:local_aliases
        ~entries:entries_arr ~join_preds
    else
      greedy_join t ~outer ~env:full_env ~local:local_aliases
        ~entries:entries_arr ~join_preds
  in
  (* --- residual zero-alias predicates --- *)
  let joined =
    if zero_preds = [] then joined
    else
      let zero_preds = Plan.order_preds zero_preds in
      let sel = Sel.conj_sel full_env zero_preds in
      let rows = Float.max 1. (joined.p_rows *. sel) in
      {
        joined with
        p_plan = Plan.Filter { child = joined.p_plan; preds = zero_preds };
        p_cost =
          joined.p_cost
          +. filter_cost full_env ~rows:joined.p_rows zero_preds
          +. Model.out_tax rows;
        p_rows = rows;
        p_info = Info.filter ~sel joined.p_info;
      }
  in
  (* --- TIS subquery filters (non-unnested subqueries) --- *)
  let joined =
    if subq_preds = [] then joined
    else apply_subq_filters t ~outer ~env:full_env joined subq_preds
  in
  (* --- aggregation --- *)
  let has_agg = Walk.block_has_agg b in
  let post_agg, rewrite1 =
    if not has_agg then (joined, fun e -> e)
    else lower_aggregation t ~env:full_env joined b
  in
  (* --- window functions --- *)
  let post_win, rewrite2 =
    if not (Walk.block_has_win b) then (post_agg, rewrite1)
    else lower_windows t ~env:full_env post_agg b ~rewrite:rewrite1
  in
  (* --- ORDER BY (pre-projection; row order survives projection) --- *)
  let post_sort =
    match b.order_by with
    | [] -> post_win
    | keys ->
        let keys = List.map (fun (e, d) -> (rewrite2 e, d)) keys in
        {
          post_win with
          p_plan = Plan.Sort { child = post_win.p_plan; keys };
          p_cost = post_win.p_cost +. Model.sort ~rows:post_win.p_rows;
        }
  in
  (* --- projection --- *)
  let items =
    List.map (fun si -> (rewrite2 si.A.si_expr, si.A.si_name)) b.select
  in
  let out_info =
    Info.project ~alias:out_alias ~rows:post_sort.p_rows
      (List.map
         (fun (e, nm) ->
           (nm, default_expr_info (merge_env [ full_env; post_sort.p_info ]) ~rows:post_sort.p_rows e))
         items)
  in
  let projected =
    {
      post_sort with
      p_plan = Plan.Project { child = post_sort.p_plan; alias = out_alias; items };
      p_cost = post_sort.p_cost +. Model.project ~rows:post_sort.p_rows;
      p_info = out_info;
    }
  in
  (* --- DISTINCT --- *)
  let distincted =
    if not b.distinct then projected
    else
      let groups =
        Float.max 1.
          (Sel.distinct_count
             (merge_env [ projected.p_info ])
             ~rows:projected.p_rows
             (List.map (fun (_, nm) -> A.col out_alias nm) items))
      in
      {
        projected with
        p_plan = Plan.Distinct projected.p_plan;
        p_cost =
          projected.p_cost +. Model.distinct ~rows:projected.p_rows ~groups;
        p_rows = groups;
        p_info = { projected.p_info with ri_rows = groups };
      }
  in
  (* --- ROWNUM limit --- *)
  let limited =
    match b.limit with
    | None -> distincted
    | Some k ->
        let rows = Float.min distincted.p_rows (float_of_int k) in
        {
          distincted with
          p_plan = Plan.Limit { child = distincted.p_plan; n = k };
          p_rows = rows;
          p_info = { distincted.p_info with ri_rows = rows };
        }
  in
  {
    Annotation.an_plan = limited.p_plan;
    an_cost = limited.p_cost;
    an_rows = limited.p_rows;
    an_info = limited.p_info;
  }

(* ------------------------------------------------------------------ *)
(* Access paths                                                         *)
(* ------------------------------------------------------------------ *)

(** Equality bindings available for [e]: (column of e, binding expr)
    pairs where the binding does not reference [e] itself and references
    only aliases in [avail] (or outer scopes). *)
and eq_bindings ~(local : Sset.t) ~(avail : Sset.t) ~(alias : string)
    (preds : A.pred list) : (string * A.expr) list =
  List.filter_map
    (fun p ->
      match p with
      | A.Cmp (A.Eq, A.Col c, rhs)
        when String.equal c.A.c_alias alias
             && (not (Sset.mem alias (Walk.expr_aliases rhs)))
             && Sset.subset (Sset.inter (Walk.expr_aliases rhs) local) avail ->
          Some (c.A.c_col, rhs)
      | A.Cmp (A.Eq, rhs, A.Col c)
        when String.equal c.A.c_alias alias
             && (not (Sset.mem alias (Walk.expr_aliases rhs)))
             && Sset.subset (Sset.inter (Walk.expr_aliases rhs) local) avail ->
          Some (c.A.c_col, rhs)
      | _ -> None)
    preds

(** The predicates consumed by binding [cols] via [bindings]. *)
and consumed_preds ~alias (cols : string list) (preds : A.pred list) :
    A.pred list * A.pred list =
  List.partition
    (fun p ->
      match p with
      | A.Cmp (A.Eq, A.Col c, rhs) | A.Cmp (A.Eq, rhs, A.Col c) ->
          String.equal c.A.c_alias alias
          && List.mem c.A.c_col cols
          && not (Sset.mem alias (Walk.expr_aliases rhs))
      | _ -> false)
    preds

(** Best access path for table entry [e], given available bindings from
    [avail] aliases (join side) and its single-table predicates.
    Returns (plan, per-execution cost, output rows, consumed preds). *)
and table_access_path t ~env ~(local : Sset.t) ~(avail : Sset.t) (e : entry)
    ~table
    ~(extra_preds : A.pred list) : (Plan.t * float * float * A.pred list) list
    =
  let alias = e.e_alias in
  let all_preds = e.e_single @ extra_preds in
  let bindings = eq_bindings ~local ~avail ~alias all_preds in
  let pages =
    match Catalog.stats t.cat table with
    | Some s -> float_of_int s.s_pages
    | None -> Float.max 1. (e.e_rows /. float_of_int Catalog.rows_per_page)
  in
  let all_preds = Plan.order_preds all_preds in
  let full_sel = Sel.conj_sel env all_preds in
  let out_rows = Float.max 0.5 (e.e_rows *. full_sel) in
  let scan =
    ( Plan.Table_scan { table; alias; filter = all_preds },
      Model.table_scan ~pages ~rows:e.e_rows ~out:out_rows
      +. filter_cost env ~rows:e.e_rows all_preds,
      out_rows,
      all_preds )
  in
  let index_paths =
    List.filter_map
      (fun (ix : Catalog.index) ->
        (* longest binding prefix of the index columns *)
        let rec prefix cols =
          match cols with
          | [] -> []
          | c :: rest -> (
              match List.assoc_opt c bindings with
              | Some rhs -> (c, rhs) :: prefix rest
              | None -> [])
        in
        let pfx = prefix ix.ix_cols in
        if pfx = [] then None
        else
          let pfx_cols = List.map fst pfx in
          let consumed, residual = consumed_preds ~alias pfx_cols all_preds in
          let consumed_sel = Sel.conj_sel env consumed in
          let matched = Float.max 0.5 (e.e_rows *. consumed_sel) in
          let residual_sel = Sel.conj_sel env residual in
          let rows_out = Float.max 0.5 (matched *. residual_sel) in
          let height =
            max 1
              (int_of_float
                 (ceil (log (Float.max 2. e.e_rows) /. log 64.)))
          in
          let residual = Plan.order_preds residual in
          let cost =
            Model.index_probe ~height ~entries:matched ~rows:matched
              ~out:rows_out
            +. filter_cost env ~rows:matched residual
          in
          Some
            ( Plan.Index_scan
                {
                  table;
                  alias;
                  index = ix.ix_name;
                  prefix = List.map snd pfx;
                  lo = Plan.R_unbounded;
                  hi = Plan.R_unbounded;
                  filter = residual;
                },
              cost,
              rows_out,
              consumed @ residual ))
      (Catalog.indexes_on t.cat table)
  in
  scan :: index_paths

(** Initial partial plan over a single entry (no joins yet). *)
and initial_partial t ~outer ~env ~local (e : entry) : partial =
  ignore outer;
  let plan, cost, rows =
    match e.e_source with
    | E_table table ->
        let paths =
          table_access_path t ~env ~local ~avail:Sset.empty e ~table
            ~extra_preds:[]
        in
        let best =
          List.fold_left
            (fun acc (p, c, r, _) ->
              match acc with
              | Some (_, bc, _) when bc <= c -> acc
              | _ -> Some (p, c, r))
            None paths
        in
        Option.get best
    | E_view (ann, correlated) ->
        if correlated then
          raise (Unsupported "correlated view cannot lead the join order");
        let rows = Float.max 0.5 (ann.an_rows *. e.e_single_sel) in
        let singles = Plan.order_preds e.e_single in
        let plan =
          if singles = [] then ann.Annotation.an_plan
          else Plan.Filter { child = ann.Annotation.an_plan; preds = singles }
        in
        ( plan,
          ann.an_cost
          +. filter_cost env ~rows:ann.an_rows singles
          +. Model.out_tax rows,
          rows )
  in
  {
    p_set = bit e.e_idx;
    p_aliases = Sset.singleton e.e_alias;
    p_plan = plan;
    p_cost = cost;
    p_rows = rows;
    p_info = Info.filter ~sel:e.e_single_sel e.e_info;
  }

(* ------------------------------------------------------------------ *)
(* Extending a partial plan with one more entry                          *)
(* ------------------------------------------------------------------ *)

and extend t ~env ~local ~(join_preds : A.pred list) (lp : partial)
    (e : entry) : partial list =
  let avail = lp.p_aliases in
  let now_aliases = Sset.add e.e_alias avail in
  (* join conjuncts that become applicable when e joins *)
  let applicable, _remaining =
    List.partition
      (fun p ->
        let locs = Sset.inter (Walk.pred_aliases ~deep:true p) local in
        Sset.mem e.e_alias locs && Sset.subset locs now_aliases)
      join_preds
  in
  (* closing conjuncts: all aliases in lp but applicable only now?
     cannot happen: they were applied when their last alias joined. *)
  let conds =
    match e.e_kind with
    | A.J_inner -> applicable
    | _ -> e.e_cond @ applicable
  in
  let jsel = Sel.conj_sel env conds in
  let eff_rows = Float.max 0.5 (e.e_rows *. e.e_single_sel) in
  let inner_out = Float.max 0.5 (lp.p_rows *. eff_rows *. jsel) in
  let match_prob = Float.min 1. (eff_rows *. jsel) in
  let out_rows =
    match e.e_kind with
    | A.J_inner -> inner_out
    | A.J_semi -> Float.max 0.5 (lp.p_rows *. match_prob)
    | A.J_anti | A.J_anti_na ->
        Float.max 0.5 (lp.p_rows *. (1. -. match_prob))
    | A.J_left -> Float.max lp.p_rows inner_out
  in
  let role : Plan.jrole =
    match e.e_kind with
    | A.J_inner -> Plan.Inner
    | A.J_semi -> Plan.Semi
    | A.J_anti -> Plan.Anti
    | A.J_anti_na -> Plan.Anti_na
    | A.J_left -> Plan.Left_outer
  in
  let out_info =
    match role with
    | Plan.Semi | Plan.Anti | Plan.Anti_na ->
        { lp.p_info with ri_rows = out_rows }
    | _ ->
        Info.join ~rows:out_rows lp.p_info
          (Info.filter ~sel:e.e_single_sel e.e_info)
  in
  let mk plan cost =
    {
      p_set = lp.p_set lor bit e.e_idx;
      p_aliases = now_aliases;
      p_plan = plan;
      p_cost = cost;
      p_rows = out_rows;
      p_info = out_info;
    }
  in
  (* The executor caches the right side of a nested loop on the
     correlation values it reads from the left row; the number of right
     executions is therefore the number of distinct combinations of
     those values (capped by the left cardinality), not the left
     cardinality itself. *)
  let probes_for_plan rplan =
    let corr =
      List.filter
        (fun c -> Sset.mem c.A.c_alias avail)
        (Plan.all_cols rplan)
    in
    if corr = [] then 1.
    else
      Float.min lp.p_rows
        (Sel.distinct_count env ~rows:lp.p_rows
           (List.map (fun c -> A.Col c) corr))
  in
  let alternatives = ref [] in
  let add alt = alternatives := alt :: !alternatives in
  (match e.e_source with
  | E_table table ->
      (* nested loops over each access path of e *)
      let paths =
        table_access_path t ~env ~local ~avail e ~table ~extra_preds:conds
      in
      List.iter
        (fun (rplan, rcost, rrows_probe, consumed) ->
          let residual_conds =
            List.filter (fun p -> not (List.memq p consumed)) conds
          in
          let pairs =
            match role with
            | Plan.Semi | Plan.Anti | Plan.Anti_na ->
                lp.p_rows *. Float.max 1. (rrows_probe /. 2.)
            | _ -> lp.p_rows *. rrows_probe
          in
          let probes = probes_for_plan rplan in
          let cost =
            lp.p_cost
            +. (probes *. rcost)
            +. (Model.w_join *. pairs)
            +. Model.out_tax out_rows
          in
          add
            (mk
               (Plan.Join
                  {
                    meth = Plan.Nested_loop;
                    role;
                    left = lp.p_plan;
                    right = rplan;
                    cond = residual_conds;
                  })
               cost))
        paths;
      (* hash / merge require at least one local equi-conjunct *)
      let has_equi =
        List.exists
          (fun p ->
            match p with
            | A.Cmp (A.Eq, a, bb) ->
                let aa = Walk.expr_aliases a and ab = Walk.expr_aliases bb in
                let a_left = Sset.subset (Sset.inter aa now_aliases) avail
                and a_right = Sset.mem e.e_alias ab in
                let b_left = Sset.subset (Sset.inter ab now_aliases) avail
                and b_right = Sset.mem e.e_alias aa in
                (a_left && a_right && not (Sset.mem e.e_alias aa))
                || (b_left && b_right && not (Sset.mem e.e_alias ab))
            | _ -> false)
          conds
      in
      if has_equi then (
        let pages =
          match Catalog.stats t.cat table with
          | Some s -> float_of_int s.s_pages
          | None -> Float.max 1. (e.e_rows /. float_of_int Catalog.rows_per_page)
        in
        let rrows = Float.max 0.5 (e.e_rows *. e.e_single_sel) in
        let rcost =
          Model.table_scan ~pages ~rows:e.e_rows ~out:rrows
        in
        let rplan = Plan.Table_scan { table; alias = e.e_alias; filter = e.e_single } in
        if t.cfg.enable_hash_join then
          add
            (mk
               (Plan.Join
                  { meth = Plan.Hash; role; left = lp.p_plan; right = rplan; cond = conds })
               (Model.hash_join ~lcost:lp.p_cost ~rcost ~lrows:lp.p_rows
                  ~rrows ~pairs:inner_out ~out:out_rows));
        if
          t.cfg.enable_merge_join
          && match role with
             | Plan.Inner | Plan.Semi | Plan.Anti -> true
             | _ -> false
        then
          add
            (mk
               (Plan.Join
                  { meth = Plan.Merge; role; left = lp.p_plan; right = rplan; cond = conds })
               (Model.merge_join ~lcost:lp.p_cost ~rcost ~lrows:lp.p_rows
                  ~rrows ~pairs:inner_out ~out:out_rows)))
  | E_view (ann, correlated) ->
      let rrows = Float.max 0.5 (ann.an_rows *. e.e_single_sel) in
      let singles = Plan.order_preds e.e_single in
      let rplan =
        if singles = [] then ann.Annotation.an_plan
        else Plan.Filter { child = ann.Annotation.an_plan; preds = singles }
      in
      let rcost =
        ann.an_cost
        +. filter_cost env ~rows:ann.an_rows singles
        +. Model.out_tax rrows
      in
      (* nested loops: re-executes the view per probe (this is how a
         join-predicate-pushed-down view runs, with its correlations
         bound from the left row) *)
      let pairs = lp.p_rows *. rrows in
      let probes = probes_for_plan rplan in
      add
        (mk
           (Plan.Join
              {
                meth = Plan.Nested_loop;
                role;
                left = lp.p_plan;
                right = rplan;
                cond = conds;
              })
           (lp.p_cost +. (probes *. rcost) +. (Model.w_join *. pairs)
           +. Model.out_tax out_rows));
      if not correlated then (
        let has_equi =
          List.exists
            (fun p ->
              match p with A.Cmp (A.Eq, _, _) -> true | _ -> false)
            conds
        in
        if has_equi && t.cfg.enable_hash_join then
          add
            (mk
               (Plan.Join
                  { meth = Plan.Hash; role; left = lp.p_plan; right = rplan; cond = conds })
               (Model.hash_join ~lcost:lp.p_cost ~rcost ~lrows:lp.p_rows
                  ~rrows ~pairs:inner_out ~out:out_rows))));
  !alternatives

(* ------------------------------------------------------------------ *)
(* Join-order search                                                    *)
(* ------------------------------------------------------------------ *)

and can_follow (e : entry) (aliases : Sset.t) =
  Sset.subset e.e_prereq aliases

and can_start (e : entry) =
  e.e_kind = A.J_inner && Sset.is_empty e.e_prereq
  &&
  match e.e_source with E_view (_, correlated) -> not correlated | _ -> true

and dp_join t ~outer ~env ~local ~(entries : entry array) ~join_preds :
    partial =
  let n = Array.length entries in
  let full = (1 lsl n) - 1 in
  let best : (int, partial) Hashtbl.t = Hashtbl.create 64 in
  let consider (p : partial) =
    match Hashtbl.find_opt best p.p_set with
    | Some q when q.p_cost <= p.p_cost -> ()
    | _ -> Hashtbl.replace best p.p_set p
  in
  Array.iter
    (fun e ->
      if can_start e then consider (initial_partial t ~outer ~env ~local e))
    entries;
  (* iterate by subset size *)
  for _size = 1 to n - 1 do
    let snapshot = Hashtbl.fold (fun k v acc -> (k, v) :: acc) best [] in
    List.iter
      (fun (set, lp) ->
        Array.iter
          (fun e ->
            if set land bit e.e_idx = 0 && can_follow e lp.p_aliases then
              List.iter consider (extend t ~env ~local ~join_preds lp e))
          entries)
      snapshot
  done;
  match Hashtbl.find_opt best full with
  | Some p -> p
  | None -> raise (Unsupported "no valid join order (cyclic partial order?)")

and greedy_join t ~outer ~env ~local ~(entries : entry array) ~join_preds :
    partial =
  let n = Array.length entries in
  let start =
    Array.to_list entries
    |> List.filter can_start
    |> List.map (initial_partial t ~outer ~env ~local)
    |> List.sort (fun a b -> Float.compare a.p_cost b.p_cost)
  in
  match start with
  | [] -> raise (Unsupported "no startable FROM entry")
  | first :: _ ->
      let current = ref first in
      let remaining = ref (n - 1) in
      while !remaining > 0 do
        let lp = !current in
        let candidates =
          Array.to_list entries
          |> List.filter (fun e ->
                 lp.p_set land bit e.e_idx = 0 && can_follow e lp.p_aliases)
          |> List.concat_map (fun e -> extend t ~env ~local ~join_preds lp e)
        in
        match
          List.sort (fun a b -> Float.compare a.p_cost b.p_cost) candidates
        with
        | [] -> raise (Unsupported "greedy join ordering got stuck")
        | best :: _ ->
            current := best;
            decr remaining
      done;
      !current

(* ------------------------------------------------------------------ *)
(* TIS subquery filters                                                 *)
(* ------------------------------------------------------------------ *)

and apply_subq_filters t ~outer ~env (joined : partial)
    (preds : A.pred list) : partial =
  let sub_env = merge_env [ outer; env ] in
  let compiled, total_cost, sel =
    List.fold_left
      (fun (acc, cost, sel) p ->
        let mk_sub q = optimize_query t ~outer:sub_env ~out_alias:"" q in
        let sp, subq_cost =
          match p with
          | A.Exists q ->
              let ann = mk_sub q in
              (Plan.SP_exists { negated = false; plan = ann.an_plan }, ann.an_cost)
          | A.Not_exists q ->
              let ann = mk_sub q in
              (Plan.SP_exists { negated = true; plan = ann.an_plan }, ann.an_cost)
          | A.In_subq (es, q) ->
              let ann = mk_sub q in
              (Plan.SP_in { negated = false; lhs = es; plan = ann.an_plan }, ann.an_cost)
          | A.Not_in_subq (es, q) ->
              let ann = mk_sub q in
              (Plan.SP_in { negated = true; lhs = es; plan = ann.an_plan }, ann.an_cost)
          | A.Cmp_subq (op, lhs, quant, q) ->
              let ann = mk_sub q in
              (Plan.SP_cmp { op; lhs; quant; plan = ann.an_plan }, ann.an_cost)
          | _ ->
              raise
                (Unsupported
                   "subquery predicate under OR / NOT cannot be executed")
        in
        let q =
          match p with
          | A.Exists q | A.Not_exists q | A.In_subq (_, q) | A.Not_in_subq (_, q)
          | A.Cmp_subq (_, _, _, q) ->
              q
          | _ -> assert false
        in
        (* cache misses: distinct combinations of the correlation values
           drawn from the current block's stream *)
        let corr_cols =
          List.filter
            (fun c -> Info.find_col joined.p_info c <> None)
            (Walk.free_cols q)
        in
        let execs =
          if corr_cols = [] then 1.
          else
            Sel.distinct_count joined.p_info ~rows:joined.p_rows
              (List.map (fun c -> A.Col c) corr_cols)
        in
        let psel = Sel.pred_sel sub_env p in
        (acc @ [ sp ], cost +. (execs *. subq_cost), sel *. psel))
      ([], 0., 1.) preds
  in
  let rows = Float.max 0.5 (joined.p_rows *. sel) in
  {
    joined with
    p_plan = Plan.Subq_filter { child = joined.p_plan; preds = compiled };
    p_cost =
      joined.p_cost +. total_cost
      +. Model.subq_filter ~rows:joined.p_rows ~execs:0. ~subq_cost:0. ~out:rows;
    p_rows = rows;
    p_info = Info.filter ~sel joined.p_info;
  }

(* ------------------------------------------------------------------ *)
(* Aggregation lowering                                                 *)
(* ------------------------------------------------------------------ *)

(** Collect the distinct aggregate terms appearing in an expression. *)
and collect_aggs acc (e : A.expr) : A.expr list =
  match e with
  | A.Agg _ -> if List.mem e acc then acc else acc @ [ e ]
  | A.Const _ | A.Col _ -> acc
  | A.Binop (_, a, b) -> collect_aggs (collect_aggs acc a) b
  | A.Neg a -> collect_aggs acc a
  | A.Win (_, eo, _) -> (
      match eo with None -> acc | Some a -> collect_aggs acc a)
  | A.Fn (_, args) -> List.fold_left collect_aggs acc args
  | A.Case (arms, els) ->
      let acc = List.fold_left (fun acc (_, e) -> collect_aggs acc e) acc arms in
      (match els with None -> acc | Some e -> collect_aggs acc e)

and collect_aggs_pred acc (p : A.pred) : A.expr list =
  let r = ref acc in
  ignore
    (Walk.map_pred_exprs
       (fun e ->
         r := collect_aggs !r e;
         e)
       p);
  !r

and lower_aggregation t ~env (joined : partial) (b : A.block) :
    partial * (A.expr -> A.expr) =
  let agg_alias = gensym t "$agg" in
  let agg_terms =
    let acc = List.fold_left (fun acc si -> collect_aggs acc si.A.si_expr) [] b.select in
    let acc = List.fold_left collect_aggs_pred acc b.having in
    List.fold_left (fun acc (e, _) -> collect_aggs acc e) acc b.order_by
  in
  let keys = List.mapi (fun i e -> (e, Printf.sprintf "k%d" i)) b.group_by in
  let aggs =
    List.mapi
      (fun i e ->
        match e with
        | A.Agg (a, arg, dist) -> (Printf.sprintf "a%d" i, a, arg, dist)
        | _ -> assert false)
      agg_terms
  in
  let rewrite e =
    let rec go e =
      match List.find_opt (fun (k, _) -> k = e) keys with
      | Some (_, nm) -> A.col agg_alias nm
      | None -> (
          match e with
          | A.Agg _ -> (
              match
                List.find_opt
                  (fun (i, _) -> List.nth agg_terms i = e)
                  (List.mapi (fun i a -> (i, a)) agg_terms)
              with
              | Some (i, _) -> A.col agg_alias (Printf.sprintf "a%d" i)
              | None -> e)
          | A.Const _ | A.Col _ -> e
          | A.Binop (op, a, bb) -> A.Binop (op, go a, go bb)
          | A.Neg a -> A.Neg (go a)
          | A.Win (a, eo, w) -> A.Win (a, Option.map go eo, w)
          | A.Fn (n, args) -> A.Fn (n, List.map go args)
          | A.Case (arms, els) ->
              A.Case
                ( List.map (fun (p, e) -> (Walk.map_pred_exprs go p, go e)) arms,
                  Option.map go els ))
    in
    go e
  in
  let groups =
    if b.group_by = [] then 1.
    else Sel.distinct_count env ~rows:joined.p_rows b.group_by
  in
  let agg_plan =
    Plan.Aggregate
      { child = joined.p_plan; strategy = `Hash; alias = agg_alias; keys; aggs }
  in
  let agg_cost =
    joined.p_cost
    +. Model.aggregate ~strategy:`Hash ~rows:joined.p_rows ~groups
  in
  let agg_info =
    Info.project ~alias:agg_alias ~rows:groups
      (List.map
         (fun (e, nm) -> (nm, default_expr_info env ~rows:groups e))
         keys
      @ List.map
          (fun (nm, _, _, _) ->
            (nm, { Info.default_colinfo with ci_ndv = Float.max 1. (groups /. 2.) }))
          aggs)
  in
  let post =
    {
      joined with
      p_plan = agg_plan;
      p_cost = agg_cost;
      p_rows = groups;
      p_info = agg_info;
    }
  in
  (* HAVING: filter over the aggregate output *)
  let post =
    if b.having = [] then post
    else
      let having = List.map (Walk.map_pred_exprs rewrite) b.having in
      let sel = Sel.conj_sel agg_info having in
      let rows = Float.max 0.5 (post.p_rows *. sel) in
      {
        post with
        p_plan = Plan.Filter { child = post.p_plan; preds = having };
        p_cost = post.p_cost +. Model.filter ~rows:post.p_rows ~out:rows;
        p_rows = rows;
        p_info = Info.filter ~sel post.p_info;
      }
  in
  (post, rewrite)

(* ------------------------------------------------------------------ *)
(* Window lowering                                                      *)
(* ------------------------------------------------------------------ *)

and collect_wins acc (e : A.expr) : A.expr list =
  match e with
  | A.Win _ -> if List.mem e acc then acc else acc @ [ e ]
  | A.Const _ | A.Col _ | A.Agg _ -> acc
  | A.Binop (_, a, b) -> collect_wins (collect_wins acc a) b
  | A.Neg a -> collect_wins acc a
  | A.Fn (_, args) -> List.fold_left collect_wins acc args
  | A.Case (arms, els) ->
      let acc = List.fold_left (fun acc (_, e) -> collect_wins acc e) acc arms in
      (match els with None -> acc | Some e -> collect_wins acc e)

and lower_windows t ~env (input : partial) (b : A.block)
    ~(rewrite : A.expr -> A.expr) : partial * (A.expr -> A.expr) =
  let win_alias = gensym t "$win" in
  let win_terms =
    List.fold_left (fun acc si -> collect_wins acc si.A.si_expr) [] b.select
  in
  let wins =
    List.mapi
      (fun i e ->
        match e with
        | A.Win (a, arg, w) ->
            (Printf.sprintf "w%d" i, a, Option.map rewrite arg,
             {
               A.w_pby = List.map rewrite w.A.w_pby;
               w_oby = List.map (fun (e, d) -> (rewrite e, d)) w.A.w_oby;
             })
        | _ -> assert false)
      win_terms
  in
  let rewrite2 e =
    let rec go e =
      match e with
      | A.Win _ -> (
          match
            List.find_opt (fun (i, _) -> List.nth win_terms i = e)
              (List.mapi (fun i w -> (i, w)) win_terms)
          with
          | Some (i, _) -> A.col win_alias (Printf.sprintf "w%d" i)
          | None -> rewrite e)
      | A.Const _ | A.Col _ -> rewrite e
      | A.Agg _ -> rewrite e
      | A.Binop (op, a, bb) -> A.Binop (op, go a, go bb)
      | A.Neg a -> A.Neg (go a)
      | A.Fn (n, args) -> A.Fn (n, List.map go args)
      | A.Case (arms, els) ->
          A.Case
            ( List.map (fun (p, e) -> (Walk.map_pred_exprs go p, go e)) arms,
              Option.map go els )
    in
    go e
  in
  ignore env;
  let plan = Plan.Window { child = input.p_plan; alias = win_alias; wins } in
  let cost = input.p_cost +. Model.window ~rows:input.p_rows in
  let info =
    {
      input.p_info with
      Info.ri_cols =
        input.p_info.Info.ri_cols
        @ List.map
            (fun (nm, _, _, _) ->
              ((win_alias, nm),
               { Info.default_colinfo with ci_ndv = Float.max 1. input.p_rows }))
            wins;
    }
  in
  ({ input with p_plan = plan; p_cost = cost; p_info = info }, rewrite2)

(* ------------------------------------------------------------------ *)
(* Public entry point                                                   *)
(* ------------------------------------------------------------------ *)

(** Optimize a complete (top-level) query. *)
let optimize t (q : A.query) : Annotation.t =
  optimize_query t ~outer:Info.empty ~out_alias:"" q
