lib/sqlir/ast.ml: List Value
