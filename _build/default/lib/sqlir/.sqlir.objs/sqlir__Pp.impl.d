lib/sqlir/pp.ml: Ast Fmt Value
