lib/sqlir/value.ml: Fmt Stdlib
