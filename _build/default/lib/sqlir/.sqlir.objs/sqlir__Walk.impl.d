lib/sqlir/walk.ml: Ast List Option Printf Set Stdlib String
