lib/sqlparse/lexer.ml: Buffer List Printf String
