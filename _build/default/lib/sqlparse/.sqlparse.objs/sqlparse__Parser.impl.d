lib/sqlparse/parser.ml: Array Ast Catalog Hashtbl Lexer List Option Printf Sqlir String Value Walk
