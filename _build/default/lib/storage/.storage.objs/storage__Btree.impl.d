lib/storage/btree.ml: List Map Seq Sqlir Value
