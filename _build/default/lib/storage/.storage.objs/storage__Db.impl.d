lib/storage/db.ml: Array Btree Catalog Hashtbl List Printf Relation String
