lib/storage/relation.ml: Array Catalog Printf Sqlir String
