lib/storage/stats_gather.ml: Array Catalog Db Float Hashtbl List Relation Set Sqlir Value
