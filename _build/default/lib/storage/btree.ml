(** Ordered secondary indexes.

    A B-tree index maps a composite key (list of values, one per index
    column) to the row ids carrying that key. It supports exact lookup,
    prefix-equality scan, and range scans over the column following an
    equality-bound prefix — the access paths the physical optimizer
    costs for index scans and index nested-loop joins. Rows whose key
    contains NULL in the leading column are not indexed, matching the
    usual single-column B-tree behaviour. *)

open Sqlir

type key = Value.t list

module Kmap = Map.Make (struct
  type t = key

  let compare = List.compare Value.compare_total
end)

type t = {
  bt_cols : string list;
  bt_unique : bool;
  mutable bt_map : int list Kmap.t;
  mutable bt_entries : int;
}

let create ~cols ~unique =
  { bt_cols = cols; bt_unique = unique; bt_map = Kmap.empty; bt_entries = 0 }

let insert t key row =
  match key with
  | Value.Null :: _ -> ()  (* leading-NULL keys are not indexed *)
  | _ ->
      let prev = try Kmap.find key t.bt_map with Not_found -> [] in
      t.bt_map <- Kmap.add key (row :: prev) t.bt_map;
      t.bt_entries <- t.bt_entries + 1

let entries t = t.bt_entries

(** Height of an equivalent disk B-tree, used by the cost model to
    charge per-probe work. *)
let height t =
  let n = max 2 (Kmap.cardinal t.bt_map) in
  max 1 (int_of_float (ceil (log (float_of_int n) /. log 64.)))

let find_eq t key = try Kmap.find key t.bt_map with Not_found -> []

(** Rows whose key starts with [prefix] (equality on a prefix of the
    index columns). *)
let find_prefix t prefix =
  let n = List.length prefix in
  if n = List.length t.bt_cols then find_eq t prefix
  else
    let ge_prefix k =
      let rec cmp p k =
        match (p, k) with
        | [], _ -> 0
        | _, [] -> 1
        | pv :: p', kv :: k' ->
            let c = Value.compare_total pv kv in
            if c <> 0 then c else cmp p' k'
      in
      cmp prefix k
    in
    let seq = Kmap.to_seq t.bt_map in
    Seq.fold_left
      (fun acc (k, rows) -> if ge_prefix k = 0 then List.rev_append rows acc else acc)
      [] seq

type bound = Unbounded | Incl of Value.t | Excl of Value.t

(** Range scan: keys whose column [List.length prefix] falls within
    [(lo, hi)], with all earlier columns equal to [prefix]. Returns row
    ids and the number of index entries touched. *)
let range t ~prefix ~lo ~hi =
  let npfx = List.length prefix in
  let touched = ref 0 in
  let in_prefix k =
    let rec go i p k =
      match (p, k) with
      | [], _ -> true
      | _, [] -> false
      | pv :: p', kv :: k' ->
          Value.compare_total pv kv = 0 && go (i + 1) p' k'
    in
    go 0 prefix k
  in
  let key_col k = List.nth_opt k npfx in
  let lo_ok v =
    match lo with
    | Unbounded -> true
    | Incl b -> Value.compare_total v b >= 0 && not (Value.is_null v)
    | Excl b -> Value.compare_total v b > 0 && not (Value.is_null v)
  in
  let hi_ok v =
    match hi with
    | Unbounded -> not (Value.is_null v)
    | Incl b -> Value.compare_total v b <= 0
    | Excl b -> Value.compare_total v b < 0
  in
  let acc = ref [] in
  Kmap.iter
    (fun k rows ->
      if in_prefix k then (
        incr touched;
        match key_col k with
        | None -> acc := List.rev_append rows !acc
        | Some v -> if lo_ok v && hi_ok v then acc := List.rev_append rows !acc))
    t.bt_map;
  (!acc, !touched)

let distinct_keys t = Kmap.cardinal t.bt_map
