(** In-memory heap relations.

    A relation is a named array of tuples with a flat column schema.
    Page counts are derived from row counts with the catalog's
    rows-per-page constant so that the cost model can charge I/O-like
    units for full scans. *)

type tuple = Sqlir.Value.t array

type t = {
  r_name : string;
  r_schema : string array;
  mutable r_rows : tuple array;
}

let create ~name ~schema rows =
  { r_name = name; r_schema = Array.of_list schema; r_rows = Array.of_list rows }

let of_arrays ~name ~schema rows = { r_name = name; r_schema = schema; r_rows = rows }

let cardinality r = Array.length r.r_rows

let pages r =
  max 1
    ((cardinality r + Catalog.rows_per_page - 1) / Catalog.rows_per_page)

let col_index r col =
  let rec go i =
    if i >= Array.length r.r_schema then
      invalid_arg
        (Printf.sprintf "Relation.col_index: %s has no column %s" r.r_name col)
    else if String.equal r.r_schema.(i) col then i
    else go (i + 1)
  in
  go 0

let get r ~row ~col = r.r_rows.(row).(col_index r col)

let append r tup = r.r_rows <- Array.append r.r_rows [| tup |]

let iter f r = Array.iter f r.r_rows
let iteri f r = Array.iteri f r.r_rows
