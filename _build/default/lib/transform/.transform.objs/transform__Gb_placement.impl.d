lib/transform/gb_placement.ml: Ast Catalog Hashtbl List Option Pp Printf Sqlir String Tx Walk
