lib/transform/gb_view_merge.ml: Ast Catalog List Printf Sqlir String Tx Walk
