lib/transform/group_prune.ml: Ast Catalog Jppd List Sqlir Tx
