lib/transform/join_elim.ml: Ast Catalog List Sqlir String Tx Walk
