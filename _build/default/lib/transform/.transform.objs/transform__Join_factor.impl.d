lib/transform/join_factor.ml: Ast Catalog Jppd List Option Pp Printf Sqlir String Tx Walk
