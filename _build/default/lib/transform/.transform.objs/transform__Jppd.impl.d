lib/transform/jppd.ml: Ast Catalog List Printf Sqlir String Tx Value Walk
