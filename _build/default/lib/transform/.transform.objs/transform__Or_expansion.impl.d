lib/transform/or_expansion.ml: Ast Catalog List Option Pp Printf Sqlir String Tx Walk
