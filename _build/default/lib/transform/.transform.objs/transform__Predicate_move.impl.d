lib/transform/predicate_move.ml: Ast Catalog Jppd List Pp Predicate_pullup Sqlir String Tx Walk
