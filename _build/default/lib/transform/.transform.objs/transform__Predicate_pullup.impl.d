lib/transform/predicate_pullup.ml: Ast Catalog Exec List Pp Printf Sqlir String Tx Walk
