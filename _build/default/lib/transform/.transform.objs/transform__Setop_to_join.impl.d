lib/transform/setop_to_join.ml: Ast Catalog List Printf Sqlir Tx Walk
