lib/transform/tx.ml: Ast Catalog List Sqlir String Walk
