lib/transform/unnest_merge.ml: Ast Catalog List Sqlir String Tx Value Walk
