lib/transform/unnest_view.ml: Ast Catalog List Option Pp Printf Sqlir String Tx Walk
