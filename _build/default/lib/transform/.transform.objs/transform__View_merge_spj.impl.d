lib/transform/view_merge_spj.ml: Ast Catalog List Sqlir String Tx Walk
