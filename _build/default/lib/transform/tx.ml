(** Shared infrastructure for transformations.

    Every transformation is either {e heuristic} (imperative, in the
    paper's terms: applied wherever legal) or {e cost-based} (exposing a
    list of transformation objects for the CBQT framework to search
    over). The common traversals live here. *)

open Sqlir
module A = Ast

(** Apply [f] to every block of [q], bottom-up: nested views and
    subqueries are rewritten before the enclosing block. *)
let rec map_blocks_bottom_up (f : A.block -> A.block) (q : A.query) : A.query =
  match q with
  | A.Setop (op, l, r) ->
      A.Setop (op, map_blocks_bottom_up f l, map_blocks_bottom_up f r)
  | A.Block b ->
      let rewrite_pred p = map_pred_queries (map_blocks_bottom_up f) p in
      let b =
        {
          b with
          A.from =
            List.map
              (fun fe ->
                {
                  fe with
                  A.fe_source =
                    (match fe.A.fe_source with
                    | A.S_table t -> A.S_table t
                    | A.S_view v -> A.S_view (map_blocks_bottom_up f v));
                  fe_cond = List.map rewrite_pred fe.A.fe_cond;
                })
              b.A.from;
          where = List.map rewrite_pred b.A.where;
          having = List.map rewrite_pred b.A.having;
        }
      in
      A.Block (f b)

(** Rewrite the subqueries embedded in a predicate. *)
and map_pred_queries (f : A.query -> A.query) (p : A.pred) : A.pred =
  match p with
  | A.In_subq (es, q) -> A.In_subq (es, f q)
  | A.Not_in_subq (es, q) -> A.Not_in_subq (es, f q)
  | A.Exists q -> A.Exists (f q)
  | A.Not_exists q -> A.Not_exists (f q)
  | A.Cmp_subq (op, e, qt, q) -> A.Cmp_subq (op, e, qt, f q)
  | A.Not a -> A.Not (map_pred_queries f a)
  | A.Lnnvl a -> A.Lnnvl (map_pred_queries f a)
  | A.And (a, b) -> A.And (map_pred_queries f a, map_pred_queries f b)
  | A.Or (a, b) -> A.Or (map_pred_queries f a, map_pred_queries f b)
  | p -> p

(** Count the blocks that satisfy [pred]. *)
let count_blocks (f : A.block -> bool) (q : A.query) : int =
  let n = ref 0 in
  ignore
    (map_blocks_bottom_up
       (fun b ->
         if f b then incr n;
         b)
       q);
  !n

(** Is the query a single plain block (no set operators)? *)
let single_block = function A.Block b -> Some b | A.Setop _ -> None

(** Is [e] a simple SPJ block: no aggregation, no distinct, no window,
    no order/limit, all FROM entries inner? *)
let is_spj (b : A.block) =
  (not (Walk.block_has_agg b))
  && (not (Walk.block_has_win b))
  && (not b.A.distinct)
  && b.A.group_by = [] && b.A.having = [] && b.A.order_by = []
  && b.A.limit = None
  && List.for_all A.is_inner b.A.from

(** Predicates of [b] that reference any alias outside [b]'s own FROM:
    the correlation conjuncts. Returns (correlated, local). *)
let split_correlation (b : A.block) : A.pred list * A.pred list =
  let local = Walk.defined_aliases b in
  List.partition
    (fun p ->
      not (Walk.Sset.subset (Walk.pred_aliases ~deep:true p) local))
    b.A.where

(** The column names of an entry's source, given a catalog (for tables)
    or the view's select names. *)
let source_columns (cat : Catalog.t) (fe : A.from_entry) : string list =
  match fe.A.fe_source with
  | A.S_table t ->
      List.map (fun c -> c.Catalog.c_name) (Catalog.find_table cat t).t_cols
  | A.S_view v -> A.query_select_names v

(** Columns of alias [a] referenced anywhere in the block outside its
    own FROM entry definition (select, where, group by, having, order
    by, other entries' conditions and views). *)
let alias_refs_in_block (b : A.block) (a : string) : string list =
  let cols = ref [] in
  let record c =
    if String.equal c.A.c_alias a && not (List.mem c.A.c_col !cols) then
      cols := c.A.c_col :: !cols
  in
  let fold_pred p =
    ignore (Walk.fold_pred_cols ~deep:true (fun () c -> record c) () p)
  in
  let fold_expr e = ignore (Walk.fold_expr_cols (fun () c -> record c) () e) in
  List.iter (fun si -> fold_expr si.A.si_expr) b.A.select;
  List.iter fold_pred b.A.where;
  List.iter fold_expr b.A.group_by;
  List.iter fold_pred b.A.having;
  List.iter (fun (e, _) -> fold_expr e) b.A.order_by;
  List.iter
    (fun fe ->
      List.iter fold_pred fe.A.fe_cond;
      match fe.A.fe_source with
      | A.S_view v ->
          ignore
            (Walk.fold_query_cols (fun () c -> record c) () v)
      | A.S_table _ -> ())
    b.A.from;
  List.rev !cols

(** Substitute view-output columns by their defining expressions,
    everywhere in a block (deeply, including correlated references
    inside subqueries). *)
let substitute_view_cols ~(alias : string) ~(subst : (string * A.expr) list)
    (b : A.block) : A.block =
  let f c =
    if String.equal c.A.c_alias alias then
      match List.assoc_opt c.A.c_col subst with
      | Some e -> e
      | None -> A.Col c
    else A.Col c
  in
  Walk.map_block_cols f b

(** A deep copy of a query tree. The IR is immutable, so this is the
    identity — the paper's "capability for deep copying query blocks"
    (Section 3.1) comes for free; what matters is that transformed
    copies share no mutable state with the original, which immutability
    guarantees. *)
let deep_copy (q : A.query) : A.query = q

(** Primary-or-unique key of a base-table entry, if declared. *)
let entry_key (cat : Catalog.t) (fe : A.from_entry) : string list option =
  match fe.A.fe_source with
  | A.S_view _ -> None
  | A.S_table t ->
      let def = Catalog.find_table cat t in
      if def.t_pkey <> [] then Some def.t_pkey
      else (
        match def.t_uniques with key :: _ -> Some key | [] -> None)
