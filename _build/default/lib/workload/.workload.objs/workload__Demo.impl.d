lib/workload/demo.ml: Array Catalog List Printf Sqlir Storage Value
