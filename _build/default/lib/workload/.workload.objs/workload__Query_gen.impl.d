lib/workload/query_gen.ml: Ast List Printf Rng Schema_gen Sqlir String Value
