lib/workload/runner.ml: Ast Cbqt Exec Float Fmt List Planner Printexc Printf Query_gen Sqlir Storage String
