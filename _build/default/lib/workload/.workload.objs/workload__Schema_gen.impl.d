lib/workload/schema_gen.ml: Array Catalog List Printf Rng Sqlir Storage String Value
