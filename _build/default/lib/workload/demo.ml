(** The demo HR schema — the one the paper's running examples (Q1–Q18)
    are phrased against — with small deterministic data. Used by the
    examples, the CLI and the test suite. *)

open Sqlir
module V = Value

let hr_catalog () : Catalog.t =
  let cat = Catalog.create () in
  Catalog.add_table cat
    {
      t_name = "locations";
      t_cols =
        [
          { c_name = "loc_id"; c_ty = V.T_int; c_nullable = false };
          { c_name = "city"; c_ty = V.T_str; c_nullable = false };
          { c_name = "country_id"; c_ty = V.T_str; c_nullable = false };
        ];
      t_pkey = [ "loc_id" ];
      t_fkeys = [];
      t_uniques = [];
    };
  Catalog.add_table cat
    {
      t_name = "departments";
      t_cols =
        [
          { c_name = "dept_id"; c_ty = V.T_int; c_nullable = false };
          { c_name = "dept_name"; c_ty = V.T_str; c_nullable = false };
          { c_name = "loc_id"; c_ty = V.T_int; c_nullable = false };
        ];
      t_pkey = [ "dept_id" ];
      t_fkeys =
        [
          {
            fk_cols = [ "loc_id" ];
            fk_ref_table = "locations";
            fk_ref_cols = [ "loc_id" ];
          };
        ];
      t_uniques = [];
    };
  Catalog.add_table cat
    {
      t_name = "employees";
      t_cols =
        [
          { c_name = "emp_id"; c_ty = V.T_int; c_nullable = false };
          { c_name = "name"; c_ty = V.T_str; c_nullable = false };
          { c_name = "dept_id"; c_ty = V.T_int; c_nullable = true };
          { c_name = "mgr_id"; c_ty = V.T_int; c_nullable = true };
          { c_name = "salary"; c_ty = V.T_int; c_nullable = false };
          { c_name = "job_id"; c_ty = V.T_int; c_nullable = false };
        ];
      t_pkey = [ "emp_id" ];
      t_fkeys =
        [
          {
            fk_cols = [ "dept_id" ];
            fk_ref_table = "departments";
            fk_ref_cols = [ "dept_id" ];
          };
        ];
      t_uniques = [];
    };
  Catalog.add_table cat
    {
      t_name = "job_history";
      t_cols =
        [
          { c_name = "emp_id"; c_ty = V.T_int; c_nullable = false };
          { c_name = "job_id"; c_ty = V.T_int; c_nullable = false };
          { c_name = "start_date"; c_ty = V.T_date; c_nullable = false };
          { c_name = "dept_id"; c_ty = V.T_int; c_nullable = false };
        ];
      t_pkey = [ "emp_id"; "start_date" ];
      t_fkeys =
        [
          {
            fk_cols = [ "emp_id" ];
            fk_ref_table = "employees";
            fk_ref_cols = [ "emp_id" ];
          };
        ];
      t_uniques = [];
    };
  List.iter (Catalog.add_index cat)
    [
      { ix_name = "loc_pk"; ix_table = "locations"; ix_cols = [ "loc_id" ]; ix_unique = true };
      { ix_name = "dept_pk"; ix_table = "departments"; ix_cols = [ "dept_id" ]; ix_unique = true };
      { ix_name = "emp_pk"; ix_table = "employees"; ix_cols = [ "emp_id" ]; ix_unique = true };
      {
        ix_name = "emp_dept_idx";
        ix_table = "employees";
        ix_cols = [ "dept_id" ];
        ix_unique = false;
      };
      {
        ix_name = "jh_pk";
        ix_table = "job_history";
        ix_cols = [ "emp_id"; "start_date" ];
        ix_unique = true;
      };
      {
        ix_name = "jh_emp_idx";
        ix_table = "job_history";
        ix_cols = [ "emp_id" ];
        ix_unique = false;
      };
    ];
  cat

(** Deterministic data, scaled by [size] (default 1): [40*size]
    employees over 6 departments in 4 locations, [30*size] job-history
    rows; a couple of NULL [dept_id]s and periodic NULL [mgr_id]s. *)
let hr_db ?(size = 1) () : Storage.Db.t =
  let cat = hr_catalog () in
  let db = Storage.Db.create cat in
  let countries = [| "US"; "US"; "UK"; "DE" |] in
  let cities = [| "Seattle"; "Austin"; "London"; "Berlin" |] in
  Storage.Db.load db
    (Storage.Relation.create ~name:"locations"
       ~schema:[ "loc_id"; "city"; "country_id" ]
       (List.init 4 (fun i ->
            [| V.Int (100 + i); V.Str cities.(i); V.Str countries.(i) |])));
  let dept_names = [| "ENG"; "SALES"; "HR"; "OPS"; "FIN"; "LEGAL" |] in
  Storage.Db.load db
    (Storage.Relation.create ~name:"departments"
       ~schema:[ "dept_id"; "dept_name"; "loc_id" ]
       (List.init 6 (fun i ->
            [| V.Int (10 + i); V.Str dept_names.(i); V.Int (100 + (i mod 4)) |])));
  let n_emp = 40 * size in
  Storage.Db.load db
    (Storage.Relation.create ~name:"employees"
       ~schema:[ "emp_id"; "name"; "dept_id"; "mgr_id"; "salary"; "job_id" ]
       (List.init n_emp (fun i ->
            let dept =
              if i mod 20 = 7 then V.Null else V.Int (10 + (i mod 6))
            in
            let mgr = if i mod 5 = 0 then V.Null else V.Int (1000 + (i / 5)) in
            [|
              V.Int (1000 + i);
              V.Str (Printf.sprintf "emp%02d" i);
              dept;
              mgr;
              V.Int (3000 + (i * 137 mod 5000));
              V.Int (1 + (i mod 7));
            |])));
  let n_jh = 30 * size in
  Storage.Db.load db
    (Storage.Relation.create ~name:"job_history"
       ~schema:[ "emp_id"; "job_id"; "start_date"; "dept_id" ]
       (List.init n_jh (fun i ->
            [|
              V.Int (1000 + (i * 3 mod n_emp));
              V.Int (1 + (i mod 7));
              V.Date (10000 + (i * 97 mod 3000) + (i / 31));
              V.Int (10 + (i mod 6));
            |])));
  Storage.Stats_gather.analyze db;
  db
