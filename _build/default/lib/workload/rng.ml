(** Deterministic pseudo-random number generation for workload
    synthesis (splitmix64). Everything the workload produces — schema,
    data, queries — is a pure function of the seed, so experiments are
    exactly repeatable. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 (t : t) : int64 =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform integer in [0, bound). *)
let int (t : t) (bound : int) : int =
  if bound <= 1 then 0
  else
    let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    v mod bound

(** Uniform integer in [lo, hi] inclusive. *)
let range (t : t) lo hi = lo + int t (hi - lo + 1)

let float (t : t) : float =
  Stdlib.Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)
  /. 9007199254740992.0

let bool (t : t) ~(p : float) = float t < p

let pick (t : t) (xs : 'a list) : 'a = List.nth xs (int t (List.length xs))

let pick_arr (t : t) (xs : 'a array) : 'a = xs.(int t (Array.length xs))

(** Pick [k] distinct elements (k <= length). *)
let sample (t : t) (k : int) (xs : 'a list) : 'a list =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let k = min k n in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list (Array.sub arr 0 k)

(** Zipf-ish skewed integer in [0, bound): low values more frequent. *)
let skewed (t : t) (bound : int) : int =
  let u = float t in
  let v = int_of_float (float_of_int bound *. u *. u) in
  min (bound - 1) v
