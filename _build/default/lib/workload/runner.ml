(** A/B workload runner and top-N% reporting.

    Mirrors the paper's methodology (Section 4): every query is
    optimized under two configurations (e.g. CBQT off vs. on), the two
    plans are diffed by fingerprint, and both plans are executed with a
    work meter. "Execution time" is metered work units; "optimization
    time" is wall-clock plus the framework's state counters. Reports
    follow Figures 2–4: aggregate percentage improvement as a function
    of the top N% longest-running queries {e under configuration A}
    (the paper's "without cost-based transformation"), the fraction of
    affected queries that degraded, and the optimization-time increase. *)

open Sqlir
module A = Ast

type side = {
  s_cost : float;  (** optimizer's estimate *)
  s_work : float;  (** metered execution work *)
  s_opt_seconds : float;
  s_states : int;
  s_blocks : int;
  s_plan_fp : string;
}

type run = {
  rn_id : int;
  rn_class : Query_gen.qclass;
  rn_a : side;
  rn_b : side;
  rn_plan_changed : bool;
  rn_rows : int;
}

type failure = { f_id : int; f_class : Query_gen.qclass; f_error : string }

type outcome = { runs : run list; failures : failure list }

let run_side (db : Storage.Db.t) (config : Cbqt.Driver.config) (q : A.query) :
    side * Exec.Executor.row list =
  let res = Cbqt.Driver.optimize ~config db.Storage.Db.cat q in
  let plan = res.Cbqt.Driver.res_annotation.Planner.Annotation.an_plan in
  let meter = Exec.Meter.create () in
  let _, rows, _ = Exec.Executor.execute ~meter db plan in
  ( {
      s_cost = res.res_annotation.an_cost;
      s_work = Exec.Meter.work meter;
      s_opt_seconds = res.res_report.Cbqt.Driver.rp_opt_seconds;
      s_states = res.res_report.rp_states_total;
      s_blocks = res.res_report.rp_blocks_optimized;
      s_plan_fp = Exec.Plan.fingerprint plan;
    },
    rows )

(** Run the workload under configurations [a] and [b]. When [verify] is
    set, the two result sets are compared (multiset) and mismatches
    raise — used by the test suite; the benchmark harness trusts the
    transformation tests and skips verification for speed. *)
let run_pair ?(verify = false) (db : Storage.Db.t)
    ~(a : Cbqt.Driver.config) ~(b : Cbqt.Driver.config)
    (items : Query_gen.item list) : outcome =
  let runs = ref [] in
  let failures = ref [] in
  List.iter
    (fun (it : Query_gen.item) ->
      match
        let sa, rows_a = run_side db a it.Query_gen.it_query in
        let sb, rows_b = run_side db b it.it_query in
        if verify && not (Exec.Executor.rows_equal_multiset rows_a rows_b) then
          failwith
            (Printf.sprintf "result mismatch on query %d (%s)" it.it_id
               (Query_gen.class_name it.it_class));
        {
          rn_id = it.it_id;
          rn_class = it.it_class;
          rn_a = sa;
          rn_b = sb;
          rn_plan_changed = not (String.equal sa.s_plan_fp sb.s_plan_fp);
          rn_rows = List.length rows_a;
        }
      with
      | run -> runs := run :: !runs
      | exception e ->
          failures :=
            {
              f_id = it.it_id;
              f_class = it.it_class;
              f_error = Printexc.to_string e;
            }
            :: !failures)
    items;
  { runs = List.rev !runs; failures = List.rev !failures }

(* ------------------------------------------------------------------ *)
(* Top-N% reporting (Figures 2–4)                                       *)
(* ------------------------------------------------------------------ *)

type bucket = {
  bk_top_pct : int;
  bk_queries : int;
  bk_improvement_pct : float;
      (** (work_A − work_B) / work_B × 100 over the bucket *)
}

type summary = {
  sm_total : int;
  sm_affected : int;  (** plan changed *)
  sm_avg_improvement_pct : float;  (** aggregate over affected queries *)
  sm_degraded_frac : float;  (** of affected queries *)
  sm_degraded_avg_pct : float;  (** average slowdown of the degraded *)
  sm_buckets : bucket list;
  sm_opt_time_increase_pct : float;
  sm_states_a : int;
  sm_states_b : int;
}

let improvement ~work_a ~work_b =
  if work_b <= 0. then 0. else (work_a -. work_b) /. work_b *. 100.

(** Summarize the affected (plan-changed) queries, bucketed by the top
    N% most expensive under configuration A. *)
let summarize ?(tops = [ 5; 10; 25; 50; 80; 100 ]) (o : outcome) : summary =
  let affected = List.filter (fun r -> r.rn_plan_changed) o.runs in
  let sorted =
    List.sort
      (fun r1 r2 -> Float.compare r2.rn_a.s_work r1.rn_a.s_work)
      affected
  in
  let n = List.length sorted in
  let bucket pct =
    let k = max 1 (n * pct / 100) in
    let top = List.filteri (fun i _ -> i < k) sorted in
    let wa = List.fold_left (fun acc r -> acc +. r.rn_a.s_work) 0. top in
    let wb = List.fold_left (fun acc r -> acc +. r.rn_b.s_work) 0. top in
    {
      bk_top_pct = pct;
      bk_queries = k;
      bk_improvement_pct = improvement ~work_a:wa ~work_b:wb;
    }
  in
  let wa_all = List.fold_left (fun acc r -> acc +. r.rn_a.s_work) 0. affected in
  let wb_all = List.fold_left (fun acc r -> acc +. r.rn_b.s_work) 0. affected in
  let degraded =
    List.filter (fun r -> r.rn_b.s_work > r.rn_a.s_work *. 1.02) affected
  in
  let degraded_avg =
    match degraded with
    | [] -> 0.
    | _ ->
        List.fold_left
          (fun acc r ->
            acc +. ((r.rn_b.s_work -. r.rn_a.s_work) /. r.rn_a.s_work *. 100.))
          0. degraded
        /. float_of_int (List.length degraded)
  in
  (* optimization-time increase over the queries the searches actually
     touched (elsewhere both configurations do identical work and noise
     dominates) *)
  let touched =
    match List.filter (fun r -> r.rn_b.s_states > 0) o.runs with
    | [] -> o.runs
    | ts -> ts
  in
  let opt_a =
    List.fold_left (fun acc r -> acc +. r.rn_a.s_opt_seconds) 0. touched
  in
  let opt_b =
    List.fold_left (fun acc r -> acc +. r.rn_b.s_opt_seconds) 0. touched
  in
  {
    sm_total = List.length o.runs;
    sm_affected = n;
    sm_avg_improvement_pct = improvement ~work_a:wa_all ~work_b:wb_all;
    sm_degraded_frac =
      (if n = 0 then 0. else float_of_int (List.length degraded) /. float_of_int n);
    sm_degraded_avg_pct = degraded_avg;
    sm_buckets = (if n = 0 then [] else List.map bucket tops);
    sm_opt_time_increase_pct =
      (if opt_a <= 0. then 0. else (opt_b -. opt_a) /. opt_a *. 100.);
    sm_states_a = List.fold_left (fun acc r -> acc + r.rn_a.s_states) 0 o.runs;
    sm_states_b = List.fold_left (fun acc r -> acc + r.rn_b.s_states) 0 o.runs;
  }

let pp_summary ppf (s : summary) =
  Fmt.pf ppf
    "queries=%d affected=%d avg improvement=%.0f%% degraded=%.0f%% of \
     affected (avg %.0f%% slower) opt-time %+.0f%% states %d -> %d@."
    s.sm_total s.sm_affected s.sm_avg_improvement_pct
    (s.sm_degraded_frac *. 100.)
    s.sm_degraded_avg_pct s.sm_opt_time_increase_pct s.sm_states_a
    s.sm_states_b;
  List.iter
    (fun b ->
      Fmt.pf ppf "  top %3d%% (%4d queries): %+7.0f%%@." b.bk_top_pct
        b.bk_queries b.bk_improvement_pct)
    s.sm_buckets
