(** Shared test support: a miniature HR schema (the one the paper's
    running examples Q1–Q18 are written against), deterministic data,
    AST construction helpers, and result cross-checking between the
    physical optimizer + executor and the reference evaluator. *)

open Sqlir
module A = Ast
module V = Value

(* ------------------------------------------------------------------ *)
(* Mini HR schema                                                       *)
(* ------------------------------------------------------------------ *)

let hr_catalog () : Catalog.t =
  let cat = Catalog.create () in
  Catalog.add_table cat
    {
      t_name = "locations";
      t_cols =
        [
          { c_name = "loc_id"; c_ty = V.T_int; c_nullable = false };
          { c_name = "city"; c_ty = V.T_str; c_nullable = false };
          { c_name = "country_id"; c_ty = V.T_str; c_nullable = false };
        ];
      t_pkey = [ "loc_id" ];
      t_fkeys = [];
      t_uniques = [];
    };
  Catalog.add_table cat
    {
      t_name = "departments";
      t_cols =
        [
          { c_name = "dept_id"; c_ty = V.T_int; c_nullable = false };
          { c_name = "dept_name"; c_ty = V.T_str; c_nullable = false };
          { c_name = "loc_id"; c_ty = V.T_int; c_nullable = false };
        ];
      t_pkey = [ "dept_id" ];
      t_fkeys =
        [ { fk_cols = [ "loc_id" ]; fk_ref_table = "locations"; fk_ref_cols = [ "loc_id" ] } ];
      t_uniques = [];
    };
  Catalog.add_table cat
    {
      t_name = "employees";
      t_cols =
        [
          { c_name = "emp_id"; c_ty = V.T_int; c_nullable = false };
          { c_name = "name"; c_ty = V.T_str; c_nullable = false };
          { c_name = "dept_id"; c_ty = V.T_int; c_nullable = true };
          { c_name = "mgr_id"; c_ty = V.T_int; c_nullable = true };
          { c_name = "salary"; c_ty = V.T_int; c_nullable = false };
          { c_name = "job_id"; c_ty = V.T_int; c_nullable = false };
        ];
      t_pkey = [ "emp_id" ];
      t_fkeys =
        [
          {
            fk_cols = [ "dept_id" ];
            fk_ref_table = "departments";
            fk_ref_cols = [ "dept_id" ];
          };
        ];
      t_uniques = [];
    };
  Catalog.add_table cat
    {
      t_name = "job_history";
      t_cols =
        [
          { c_name = "emp_id"; c_ty = V.T_int; c_nullable = false };
          { c_name = "job_id"; c_ty = V.T_int; c_nullable = false };
          { c_name = "start_date"; c_ty = V.T_date; c_nullable = false };
          { c_name = "dept_id"; c_ty = V.T_int; c_nullable = false };
        ];
      t_pkey = [ "emp_id"; "start_date" ];
      t_fkeys =
        [
          {
            fk_cols = [ "emp_id" ];
            fk_ref_table = "employees";
            fk_ref_cols = [ "emp_id" ];
          };
        ];
      t_uniques = [];
    };
  Catalog.add_index cat
    { ix_name = "loc_pk"; ix_table = "locations"; ix_cols = [ "loc_id" ]; ix_unique = true };
  Catalog.add_index cat
    { ix_name = "dept_pk"; ix_table = "departments"; ix_cols = [ "dept_id" ]; ix_unique = true };
  Catalog.add_index cat
    { ix_name = "emp_pk"; ix_table = "employees"; ix_cols = [ "emp_id" ]; ix_unique = true };
  Catalog.add_index cat
    {
      ix_name = "emp_dept_idx";
      ix_table = "employees";
      ix_cols = [ "dept_id" ];
      ix_unique = false;
    };
  Catalog.add_index cat
    {
      ix_name = "jh_pk";
      ix_table = "job_history";
      ix_cols = [ "emp_id"; "start_date" ];
      ix_unique = true;
    };
  Catalog.add_index cat
    {
      ix_name = "jh_emp_idx";
      ix_table = "job_history";
      ix_cols = [ "emp_id" ];
      ix_unique = false;
    };
  cat

(** Deterministic data. 40 employees over 6 departments in 4 locations;
    two employees have NULL dept_id, several have NULL mgr_id; 30
    job-history rows. *)
let hr_db () : Storage.Db.t =
  let cat = hr_catalog () in
  let db = Storage.Db.create cat in
  let countries = [| "US"; "US"; "UK"; "DE" |] in
  let cities = [| "Seattle"; "Austin"; "London"; "Berlin" |] in
  let locations =
    List.init 4 (fun i ->
        [| V.Int (100 + i); V.Str cities.(i); V.Str countries.(i) |])
  in
  Storage.Db.load db
    (Storage.Relation.create ~name:"locations"
       ~schema:[ "loc_id"; "city"; "country_id" ]
       locations);
  let dept_names = [| "ENG"; "SALES"; "HR"; "OPS"; "FIN"; "LEGAL" |] in
  let departments =
    List.init 6 (fun i ->
        [| V.Int (10 + i); V.Str dept_names.(i); V.Int (100 + (i mod 4)) |])
  in
  Storage.Db.load db
    (Storage.Relation.create ~name:"departments"
       ~schema:[ "dept_id"; "dept_name"; "loc_id" ]
       departments);
  let employees =
    List.init 40 (fun i ->
        let dept =
          if i = 7 || i = 23 then V.Null else V.Int (10 + (i mod 6))
        in
        let mgr = if i mod 5 = 0 then V.Null else V.Int (1000 + (i / 5)) in
        [|
          V.Int (1000 + i);
          V.Str (Printf.sprintf "emp%02d" i);
          dept;
          mgr;
          V.Int (3000 + (i * 137 mod 5000));
          V.Int (1 + (i mod 7));
        |])
  in
  Storage.Db.load db
    (Storage.Relation.create ~name:"employees"
       ~schema:[ "emp_id"; "name"; "dept_id"; "mgr_id"; "salary"; "job_id" ]
       employees);
  let job_history =
    List.init 30 (fun i ->
        [|
          V.Int (1000 + (i * 3 mod 40));
          V.Int (1 + (i mod 7));
          V.Date (10000 + (i * 97));
          V.Int (10 + (i mod 6));
        |])
  in
  Storage.Db.load db
    (Storage.Relation.create ~name:"job_history"
       ~schema:[ "emp_id"; "job_id"; "start_date"; "dept_id" ]
       job_history);
  Storage.Stats_gather.analyze db;
  db

(* ------------------------------------------------------------------ *)
(* AST builders                                                         *)
(* ------------------------------------------------------------------ *)

let tbl ?(kind = A.J_inner) ?(cond = []) name alias =
  { A.fe_alias = alias; fe_source = A.S_table name; fe_kind = kind; fe_cond = cond }

let view ?(kind = A.J_inner) ?(cond = []) q alias =
  { A.fe_alias = alias; fe_source = A.S_view q; fe_kind = kind; fe_cond = cond }

let c a col = A.col a col
let i n = A.Const (V.Int n)
let s str = A.Const (V.Str str)
let d n = A.Const (V.Date n)
let ( =% ) a b = A.Cmp (A.Eq, a, b)
let ( <% ) a b = A.Cmp (A.Lt, a, b)
let ( >% ) a b = A.Cmp (A.Gt, a, b)
let ( <=% ) a b = A.Cmp (A.Le, a, b)
let ( >=% ) a b = A.Cmp (A.Ge, a, b)
let ( <>% ) a b = A.Cmp (A.Ne, a, b)
let si e name = { A.si_expr = e; si_name = name }

let block ?(name = "qb") ?(distinct = false) ?(where = []) ?(group_by = [])
    ?(having = []) ?(order_by = []) ?limit ~select ~from () =
  {
    A.qb_name = name;
    select;
    distinct;
    from;
    where;
    group_by;
    having;
    order_by;
    limit;
  }

let q ?name ?distinct ?where ?group_by ?having ?order_by ?limit ~select ~from
    () =
  A.Block
    (block ?name ?distinct ?where ?group_by ?having ?order_by ?limit ~select
       ~from ())

(* ------------------------------------------------------------------ *)
(* Cross-checking                                                       *)
(* ------------------------------------------------------------------ *)

let norm_rows (rows : V.t list list) =
  List.sort (List.compare V.compare_total) rows

let rows_of_exec (rows : Exec.Executor.row list) =
  List.map Array.to_list rows

let pp_rows rows =
  String.concat "\n"
    (List.map
       (fun row -> String.concat ", " (List.map V.to_string row))
       rows)

(** Optimize [query], execute the chosen plan, and compare the result
    with the reference evaluator; fails the alcotest assertion with a
    diff on mismatch. Returns (rows, annotation, meter) for further
    inspection. *)
let check_against_ref ?(msg = "optimizer+executor vs reference") db query =
  let opt = Planner.Optimizer.create db.Storage.Db.cat in
  let ann = Planner.Optimizer.optimize opt query in
  let _, rows, meter =
    Exec.Executor.execute db ann.Planner.Annotation.an_plan
  in
  let reference = Refeval.eval db query in
  let got = norm_rows (rows_of_exec rows) in
  let want = norm_rows reference.Refeval.rows in
  if List.compare (List.compare V.compare_total) got want <> 0 then
    Alcotest.failf "%s:@.plan:@.%s@.got:@.%s@.@.want:@.%s" msg
      (Exec.Plan.to_string ann.Planner.Annotation.an_plan)
      (pp_rows got) (pp_rows want);
  (rows, ann, meter)

(** Execute a raw plan and return rows as value lists. *)
let run_plan db plan =
  let _, rows, _ = Exec.Executor.execute db plan in
  rows_of_exec rows

let check_rows ?(msg = "rows") expected actual =
  let e = norm_rows expected and a = norm_rows actual in
  if List.compare (List.compare V.compare_total) e a <> 0 then
    Alcotest.failf "%s:@.expected:@.%s@.@.actual:@.%s" msg (pp_rows e)
      (pp_rows a)
