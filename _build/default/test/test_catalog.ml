(** Unit tests for the catalog: definitions, constraints, index lookup
    and the key/foreign-key queries transformation legality relies on. *)

open Sqlir
module V = Value

let mk () =
  let cat = Catalog.create () in
  Catalog.add_table cat
    {
      t_name = "parent";
      t_cols =
        [
          { Catalog.c_name = "id"; c_ty = V.T_int; c_nullable = false };
          { Catalog.c_name = "name"; c_ty = V.T_str; c_nullable = false };
        ];
      t_pkey = [ "id" ];
      t_fkeys = [];
      t_uniques = [ [ "name" ] ];
    };
  Catalog.add_table cat
    {
      t_name = "child";
      t_cols =
        [
          { Catalog.c_name = "id"; c_ty = V.T_int; c_nullable = false };
          { Catalog.c_name = "parent_id"; c_ty = V.T_int; c_nullable = true };
          { Catalog.c_name = "x"; c_ty = V.T_int; c_nullable = false };
        ];
      t_pkey = [ "id" ];
      t_fkeys =
        [
          {
            Catalog.fk_cols = [ "parent_id" ];
            fk_ref_table = "parent";
            fk_ref_cols = [ "id" ];
          };
        ];
      t_uniques = [];
    };
  Catalog.add_index cat
    {
      ix_name = "child_cmp";
      ix_table = "child";
      ix_cols = [ "parent_id"; "x" ];
      ix_unique = false;
    };
  cat

let test_lookup () =
  let cat = mk () in
  Alcotest.(check bool) "mem" true (Catalog.mem_table cat "parent");
  Alcotest.(check bool) "not mem" false (Catalog.mem_table cat "nope");
  Alcotest.(check int) "tables" 2 (List.length (Catalog.table_names cat));
  Alcotest.(check bool) "has column" true
    (Catalog.has_column cat ~table:"child" ~col:"x");
  Alcotest.(check bool) "no column" false
    (Catalog.has_column cat ~table:"child" ~col:"nope");
  Alcotest.check_raises "unknown table" (Catalog.Unknown_table "zzz")
    (fun () -> ignore (Catalog.find_table cat "zzz"));
  Alcotest.check_raises "unknown column"
    (Catalog.Unknown_column ("child", "zzz")) (fun () ->
      ignore (Catalog.col_def cat ~table:"child" ~col:"zzz"))

let test_nullability () =
  let cat = mk () in
  Alcotest.(check bool) "pk not nullable" false
    (Catalog.col_nullable cat ~table:"child" ~col:"id");
  Alcotest.(check bool) "fk nullable" true
    (Catalog.col_nullable cat ~table:"child" ~col:"parent_id")

let test_index_prefix () =
  let cat = mk () in
  Alcotest.(check bool) "leading column matches" true
    (Catalog.index_with_prefix cat ~table:"child" ~cols:[ "parent_id" ] <> None);
  Alcotest.(check bool) "both columns, any order" true
    (Catalog.index_with_prefix cat ~table:"child" ~cols:[ "x"; "parent_id" ]
    <> None);
  Alcotest.(check bool) "non-leading column alone" true
    (Catalog.index_with_prefix cat ~table:"child" ~cols:[ "x" ] = None)

let test_covers_key () =
  let cat = mk () in
  Alcotest.(check bool) "pk covers" true
    (Catalog.covers_key cat ~table:"parent" ~cols:[ "id" ]);
  Alcotest.(check bool) "unique constraint covers" true
    (Catalog.covers_key cat ~table:"parent" ~cols:[ "name"; "id" ]);
  Alcotest.(check bool) "non-key does not" false
    (Catalog.covers_key cat ~table:"child" ~cols:[ "x" ])

let test_fk_between () =
  let cat = mk () in
  Alcotest.(check bool) "declared fk found" true
    (Catalog.fk_between cat ~table:"child" ~cols:[ "parent_id" ]
       ~ref_table:"parent" ~ref_cols:[ "id" ]
    <> None);
  Alcotest.(check bool) "wrong pairing" true
    (Catalog.fk_between cat ~table:"child" ~cols:[ "x" ] ~ref_table:"parent"
       ~ref_cols:[ "id" ]
    = None)

let test_index_on_unknown_table () =
  let cat = mk () in
  Alcotest.check_raises "unknown table" (Catalog.Unknown_table "ghost")
    (fun () ->
      Catalog.add_index cat
        { ix_name = "g"; ix_table = "ghost"; ix_cols = [ "a" ]; ix_unique = false })

let test_default_stats_pages () =
  let s = Catalog.default_stats ~rows:129 [] in
  Alcotest.(check int) "rows" 129 s.Catalog.s_rows;
  Alcotest.(check int) "ceil pages" 3 s.s_pages;
  let s0 = Catalog.default_stats ~rows:0 [] in
  Alcotest.(check int) "at least one page" 1 s0.s_pages

let () =
  Alcotest.run "catalog"
    [
      ( "catalog",
        [
          Alcotest.test_case "lookup" `Quick test_lookup;
          Alcotest.test_case "nullability" `Quick test_nullability;
          Alcotest.test_case "index prefix" `Quick test_index_prefix;
          Alcotest.test_case "covers key" `Quick test_covers_key;
          Alcotest.test_case "fk between" `Quick test_fk_between;
          Alcotest.test_case "index unknown table" `Quick
            test_index_on_unknown_table;
          Alcotest.test_case "default stats" `Quick test_default_stats_pages;
        ] );
    ]
