(** Unit tests for the cost library: column info propagation,
    selectivity rules, and the cost model's relationship to the
    executor's meter weights. *)

open Sqlir
module A = Ast
module V = Value
module Info = Cost.Info
module Sel = Cost.Selectivity
open Tsupport

let db = lazy (hr_db ())
let env () =
  Info.of_table (Lazy.force db).Storage.Db.cat ~table:"employees" ~alias:"e"

let test_info_from_stats () =
  let info = env () in
  Alcotest.(check (float 0.01)) "rows" 40. info.Info.ri_rows;
  let ci = Option.get (Info.find_col info { A.c_alias = "e"; c_col = "dept_id" }) in
  Alcotest.(check (float 0.01)) "dept ndv" 6. ci.Info.ci_ndv;
  Alcotest.(check bool) "null fraction recorded" true (ci.ci_null_frac > 0.01);
  let pk = Option.get (Info.find_col info { A.c_alias = "e"; c_col = "emp_id" }) in
  Alcotest.(check (float 0.01)) "pk ndv = rows" 40. pk.Info.ci_ndv

let test_eq_selectivity () =
  let s = Sel.pred_sel (env ()) (c "e" "dept_id" =% i 12) in
  (* 6 distinct values, ~5% nulls: about 1/6 * 0.95 *)
  Alcotest.(check bool)
    (Printf.sprintf "eq sel ~ 1/6 (got %.3f)" s)
    true
    (s > 0.10 && s < 0.20)

let test_range_selectivity () =
  let info = env () in
  let lo = Sel.pred_sel info (c "e" "salary" >% i 7900) in
  let hi = Sel.pred_sel info (c "e" "salary" >% i 3100) in
  Alcotest.(check bool) "narrow < wide" true (lo < hi);
  Alcotest.(check bool) "bounded" true (lo > 0. && hi <= 1.)

let test_not_selectivity () =
  let info = env () in
  let p = c "e" "dept_id" =% i 12 in
  let s = Sel.pred_sel info p in
  let ns = Sel.pred_sel info (A.Not p) in
  Alcotest.(check (float 0.02)) "complement" (1. -. s) ns

let test_or_and_selectivity () =
  let info = env () in
  let a = c "e" "dept_id" =% i 12 in
  let b = c "e" "salary" >% i 5000 in
  let sa = Sel.pred_sel info a and sb = Sel.pred_sel info b in
  Alcotest.(check (float 1e-6)) "and = product" (sa *. sb)
    (Sel.pred_sel info (A.And (a, b)));
  Alcotest.(check (float 1e-6)) "or = inclusion-exclusion"
    (sa +. sb -. (sa *. sb))
    (Sel.pred_sel info (A.Or (a, b)))

let test_in_list_selectivity () =
  let info = env () in
  let one = Sel.pred_sel info (A.In_list (c "e" "dept_id", [ V.Int 12 ])) in
  let three =
    Sel.pred_sel info
      (A.In_list (c "e" "dept_id", [ V.Int 10; V.Int 11; V.Int 12 ]))
  in
  Alcotest.(check bool) "more values, higher sel" true (three > one)

let test_is_null_selectivity () =
  let info = env () in
  let s = Sel.pred_sel info (A.Is_null (c "e" "dept_id")) in
  (* 2 of 40 rows are NULL *)
  Alcotest.(check bool)
    (Printf.sprintf "null frac ~ 0.05 (got %.3f)" s)
    true
    (s > 0.03 && s < 0.08)

let test_distinct_count () =
  let info = env () in
  let g = Sel.distinct_count info ~rows:40. [ c "e" "dept_id" ] in
  Alcotest.(check (float 0.5)) "6 groups" 6. g;
  let capped = Sel.distinct_count info ~rows:3. [ c "e" "emp_id" ] in
  Alcotest.(check bool) "capped by rows" true (capped <= 3.);
  Alcotest.(check (float 0.01)) "no keys -> one group" 1.
    (Sel.distinct_count info ~rows:40. [])

let test_cost_weights_match_meter () =
  (* the cost model must price exactly what the meter charges *)
  Alcotest.(check (float 1e-9)) "page weight" Exec.Meter.w_page Cost.Model.w_page;
  Alcotest.(check (float 1e-9)) "expensive weight" Exec.Meter.w_expensive
    Cost.Model.w_expensive;
  let scan = Cost.Model.table_scan ~pages:10. ~rows:640. ~out:100. in
  Alcotest.(check bool) "scan cost positive, page-dominated" true
    (scan > 10. *. Cost.Model.w_page)

let test_pred_eval_cost_expensive () =
  let cheap = Cost.Model.pred_eval_cost ~rows:1000. ~cheap_sel:0.1 ~n_expensive:0 in
  let exp1 = Cost.Model.pred_eval_cost ~rows:1000. ~cheap_sel:0.1 ~n_expensive:1 in
  Alcotest.(check bool) "expensive predicates dominate" true
    (exp1 > 10. *. cheap);
  let exp_late = Cost.Model.pred_eval_cost ~rows:1000. ~cheap_sel:0.01 ~n_expensive:1 in
  Alcotest.(check bool) "selective cheap conjuncts shield expensive ones" true
    (exp_late < exp1)

let test_model_estimates_track_meter () =
  (* estimated scan cost equals the metered work of that exact scan *)
  let db = Lazy.force db in
  let plan = Exec.Plan.Table_scan { table = "employees"; alias = "e"; filter = [] } in
  let meter = Exec.Meter.create () in
  let _, _, _ = Exec.Executor.execute ~meter db plan in
  let est =
    Cost.Model.table_scan ~pages:1. ~rows:40. ~out:40.
  in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.1f within 25%% of metered %.1f" est
       (Exec.Meter.work meter))
    true
    (Float.abs (est -. Exec.Meter.work meter) /. Exec.Meter.work meter < 0.25)

let () =
  Alcotest.run "cost"
    [
      ( "info",
        [
          Alcotest.test_case "from stats" `Quick test_info_from_stats;
          Alcotest.test_case "distinct count" `Quick test_distinct_count;
        ] );
      ( "selectivity",
        [
          Alcotest.test_case "equality" `Quick test_eq_selectivity;
          Alcotest.test_case "range" `Quick test_range_selectivity;
          Alcotest.test_case "negation" `Quick test_not_selectivity;
          Alcotest.test_case "and/or" `Quick test_or_and_selectivity;
          Alcotest.test_case "in-list" `Quick test_in_list_selectivity;
          Alcotest.test_case "is null" `Quick test_is_null_selectivity;
        ] );
      ( "model",
        [
          Alcotest.test_case "weights = meter" `Quick test_cost_weights_match_meter;
          Alcotest.test_case "expensive predicates" `Quick
            test_pred_eval_cost_expensive;
          Alcotest.test_case "estimate tracks meter" `Quick
            test_model_estimates_track_meter;
        ] );
    ]
