(** Error-path tests: unsupported constructs fail loudly and precisely,
    and the framework degrades gracefully (a state that cannot be
    optimized loses the search instead of crashing the driver). *)

open Sqlir
module A = Ast
module V = Value
module Opt = Planner.Optimizer
open Tsupport

let db = lazy (hr_db ())
let cat () = (Lazy.force db).Storage.Db.cat
let parse sql = Sqlparse.Parser.parse_exn (cat ()) sql

let test_empty_from_unsupported () =
  let opt = Opt.create (cat ()) in
  let q =
    A.Block
      {
        (A.empty_block "x") with
        A.select = [ { A.si_expr = A.Const (V.Int 1); si_name = "one" } ];
      }
  in
  Alcotest.check_raises "empty FROM" (Opt.Unsupported "empty FROM clause")
    (fun () -> ignore (Opt.optimize opt q))

let test_subquery_under_or_unsupported () =
  (* not unnestable (the paper: correlations in disjunction cannot be
     unnested) and not executable as a TIS conjunct either *)
  let q =
    parse
      "SELECT d.dept_name FROM departments d WHERE d.dept_id = 10 OR EXISTS \
       (SELECT 1 one FROM employees e WHERE e.dept_id = d.dept_id)"
  in
  let opt = Opt.create (cat ()) in
  Alcotest.check_raises "OR-subquery"
    (Opt.Unsupported "subquery predicate under OR / NOT cannot be executed")
    (fun () -> ignore (Opt.optimize opt q))

let test_scalar_subquery_multirow () =
  (* scalar subquery returning several rows must raise at runtime *)
  let db = Lazy.force db in
  let q =
    parse
      "SELECT d.dept_name FROM departments d WHERE d.dept_id = (SELECT \
       e.dept_id FROM employees e WHERE e.dept_id IS NOT NULL)"
  in
  let opt = Opt.create db.Storage.Db.cat in
  let ann = Opt.optimize opt q in
  Alcotest.check_raises "multirow scalar"
    (Exec.Executor.Runtime_error "scalar subquery returned more than one row")
    (fun () ->
      ignore (Exec.Executor.execute db ann.Planner.Annotation.an_plan))

let test_unknown_function () =
  let db = Lazy.force db in
  let q = parse "SELECT no_such_fn(e.salary) x FROM employees e" in
  let opt = Opt.create db.Storage.Db.cat in
  let ann = Opt.optimize opt q in
  Alcotest.check_raises "unknown function"
    (Exec.Funcs.Unknown_function "no_such_fn") (fun () ->
      ignore (Exec.Executor.execute db ann.Planner.Annotation.an_plan))

let test_driver_survives_unsupported_state () =
  (* the driver must not crash when a query contains an OR-subquery: the
     construct defeats every state including the baseline, so optimize
     raises — but only the clean Unsupported, never an assert *)
  let q =
    parse
      "SELECT d.dept_name FROM departments d WHERE d.dept_id = 10 OR EXISTS \
       (SELECT 1 one FROM employees e WHERE e.dept_id = d.dept_id)"
  in
  (match Cbqt.Driver.optimize (cat ()) q with
  | _ -> Alcotest.fail "expected Unsupported"
  | exception Opt.Unsupported _ -> ())

let test_missing_data () =
  (* catalog knows the table but no relation is loaded *)
  let cat = cat () in
  Catalog.add_table cat
    {
      t_name = "ghost";
      t_cols = [ { Catalog.c_name = "a"; c_ty = V.T_int; c_nullable = false } ];
      t_pkey = [ "a" ];
      t_fkeys = [];
      t_uniques = [];
    };
  let db = Lazy.force db in
  let opt = Opt.create cat in
  let ann =
    Opt.optimize opt
      (q
         ~select:[ si (c "g" "a") "a" ]
         ~from:[ tbl "ghost" "g" ]
         ())
  in
  Alcotest.check_raises "no data" (Storage.Db.No_data "ghost") (fun () ->
      ignore (Exec.Executor.execute db ann.Planner.Annotation.an_plan))

let test_runner_records_failures () =
  (* the workload runner skips failing queries and records them *)
  let db = Lazy.force db in
  let bad =
    parse
      "SELECT d.dept_name FROM departments d WHERE d.dept_id = 10 OR EXISTS \
       (SELECT 1 one FROM employees e WHERE e.dept_id = d.dept_id)"
  in
  let items =
    [ { Workload.Query_gen.it_id = 0; it_class = Workload.Query_gen.C_spj; it_query = bad } ]
  in
  let o =
    Workload.Runner.run_pair db ~a:Cbqt.Driver.heuristic_config
      ~b:Cbqt.Driver.default_config items
  in
  Alcotest.(check int) "no runs" 0 (List.length o.Workload.Runner.runs);
  Alcotest.(check int) "one failure" 1 (List.length o.failures)

let () =
  Alcotest.run "errors"
    [
      ( "errors",
        [
          Alcotest.test_case "empty FROM" `Quick test_empty_from_unsupported;
          Alcotest.test_case "subquery under OR" `Quick
            test_subquery_under_or_unsupported;
          Alcotest.test_case "multirow scalar" `Quick test_scalar_subquery_multirow;
          Alcotest.test_case "unknown function" `Quick test_unknown_function;
          Alcotest.test_case "driver clean failure" `Quick
            test_driver_survives_unsupported_state;
          Alcotest.test_case "missing data" `Quick test_missing_data;
          Alcotest.test_case "runner records failures" `Quick
            test_runner_records_failures;
        ] );
    ]
