(** Integration tests: the paper's numbered queries (Q1–Q18, adapted to
    the demo HR schema) run end-to-end through the full CBQT pipeline —
    both the cost-based and the heuristic configuration — and must
    return exactly what the reference evaluator returns. Where the paper
    pairs an original with its transformed form (Q1/Q10/Q11, Q12/Q13/Q18,
    Q14/Q15, Q16/Q17), both sides are checked for mutual equivalence. *)

open Sqlir
module A = Ast
module D = Cbqt.Driver

let db = lazy (Workload.Demo.hr_db ~size:6 ())
let cat () = (Lazy.force db).Storage.Db.cat
let parse sql = Sqlparse.Parser.parse_exn (cat ()) sql

let check_both ?(msg = "paper query") sql =
  let db = Lazy.force db in
  let q = parse sql in
  let reference = Refeval.eval db q in
  List.iter
    (fun (mode, config) ->
      let res = D.optimize ~config db.Storage.Db.cat q in
      let _, rows, _ =
        Exec.Executor.execute db res.D.res_annotation.Planner.Annotation.an_plan
      in
      let norm r = List.sort (List.compare Value.compare_total) r in
      if
        norm (List.map Array.to_list rows) <> norm reference.Refeval.rows
      then
        Alcotest.failf "%s (%s): %d rows vs reference %d@.tree: %s" msg mode
          (List.length rows)
          (List.length reference.Refeval.rows)
          (Pp.query_to_string res.res_query))
    [ ("cost-based", D.default_config); ("heuristic", D.heuristic_config) ]

(* Q1: the running example — two unnestable subqueries *)
let q1 () =
  check_both ~msg:"Q1"
    "SELECT e1.name, j.job_id FROM employees e1, job_history j WHERE \
     e1.emp_id = j.emp_id AND j.start_date > DATE 10400 AND e1.salary > \
     (SELECT AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = \
     e1.dept_id) AND e1.dept_id IN (SELECT d.dept_id FROM departments d, \
     locations l WHERE d.loc_id = l.loc_id AND l.country_id = 'US')"

(* Q2/Q3: EXISTS unnested into a semijoin *)
let q2 () =
  check_both ~msg:"Q2"
    "SELECT d.dept_name, d.loc_id FROM departments d WHERE EXISTS (SELECT \
     e.emp_id FROM employees e WHERE e.dept_id = d.dept_id AND e.salary > \
     7000)"

(* Q4/Q6: FK join elimination *)
let q4 () =
  check_both ~msg:"Q4"
    "SELECT e.name, e.salary FROM employees e, departments d WHERE \
     e.dept_id = d.dept_id"

(* Q5/Q6: unique-key outer join elimination *)
let q5 () =
  check_both ~msg:"Q5"
    "SELECT e.name, e.salary FROM employees e LEFT OUTER JOIN departments d \
     ON e.dept_id = d.dept_id"

(* Q7/Q8: predicate pushed through the window PARTITION BY *)
let q7 () =
  check_both ~msg:"Q7"
    "SELECT v.emp_id, v.ravg FROM (SELECT j.emp_id, j.dept_id, \
     AVG(j.job_id) OVER (PARTITION BY j.dept_id ORDER BY j.start_date) ravg \
     FROM job_history j) v WHERE v.dept_id = 12"

(* Q9 flavour: group pruning via constant-bound keys + projection pruning *)
let q9 () =
  check_both ~msg:"Q9"
    "SELECT v.dept_id, v.cnt FROM (SELECT jh.dept_id, jh.job_id, COUNT(*) \
     cnt, MAX(jh.emp_id) mx FROM job_history jh WHERE jh.job_id = 3 GROUP \
     BY jh.dept_id, jh.job_id) v WHERE v.dept_id >= 10"

(* Q10/Q11: unnest into a group-by view, then merge it *)
let q10_q11 () =
  let db = Lazy.force db in
  let cat = cat () in
  let q1 =
    parse
      "SELECT e1.name FROM employees e1 WHERE e1.salary > (SELECT \
       AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e1.dept_id)"
  in
  let q10 = Transform.Unnest_view.apply_all cat q1 in
  let q11 = Transform.Gb_view_merge.apply_all cat q10 in
  let r1 = Refeval.eval db q1 in
  Alcotest.(check bool) "Q1 = Q10" true (Refeval.rows_equal r1 (Refeval.eval db q10));
  Alcotest.(check bool) "Q1 = Q11" true (Refeval.rows_equal r1 (Refeval.eval db q11));
  (* Q11 must really be a single merged block with HAVING *)
  match q11 with
  | A.Block b ->
      Alcotest.(check bool) "merged with having" true (b.A.having <> [])
  | _ -> Alcotest.fail "Q11 should be one block"

(* Q12/Q13/Q18: the juxtaposition triangle *)
let q12_triangle () =
  let db = Lazy.force db in
  let cat = cat () in
  let q12 =
    parse
      "SELECT e1.name FROM employees e1, (SELECT DISTINCT d.dept_id FROM \
       departments d, locations l WHERE d.loc_id = l.loc_id AND \
       l.country_id IN ('UK','US')) v WHERE e1.dept_id = v.dept_id AND \
       e1.salary > 4000"
  in
  let q13 = Transform.Jppd.apply_all cat q12 in
  let q18 = Transform.Gb_view_merge.apply_all cat q12 in
  let r = Refeval.eval db q12 in
  Alcotest.(check bool) "Q12 = Q13" true (Refeval.rows_equal r (Refeval.eval db q13));
  Alcotest.(check bool) "Q12 = Q18" true (Refeval.rows_equal r (Refeval.eval db q18));
  check_both ~msg:"Q12 through driver"
    "SELECT e1.name FROM employees e1, (SELECT DISTINCT d.dept_id FROM \
     departments d, locations l WHERE d.loc_id = l.loc_id AND l.country_id \
     IN ('UK','US')) v WHERE e1.dept_id = v.dept_id AND e1.salary > 4000"

(* Q14/Q15: join factorization *)
let q14 () =
  check_both ~msg:"Q14"
    "SELECT e.name, d.dept_name, l.city FROM employees e, departments d, \
     locations l WHERE e.dept_id = d.dept_id AND d.loc_id = l.loc_id AND \
     e.salary > 6800 UNION ALL SELECT e.name, d.dept_name, l.city FROM \
     employees e, departments d, locations l WHERE e.dept_id = d.dept_id \
     AND d.loc_id = l.loc_id AND e.salary < 3300"

(* Q16/Q17: predicate pullup under ROWNUM; the paper's two-expensive-
   predicate case has three pull-up variants — check all four states *)
let q16_variants () =
  let db = Lazy.force db in
  let cat = cat () in
  let q16 =
    parse
      "SELECT v.name FROM (SELECT e.name, e.emp_id, e.salary FROM employees \
       e WHERE expensive_check(e.emp_id, 1) AND expensive_check(e.salary, \
       2) ORDER BY e.salary DESC) v WHERE ROWNUM <= 10"
  in
  let objs = Transform.Predicate_pullup.objects cat q16 in
  Alcotest.(check int) "two pull-up objects" 2 (List.length objs);
  let reference = Refeval.eval db q16 in
  List.iter
    (fun mask ->
      let q' = Transform.Predicate_pullup.apply_mask cat q16 mask in
      (* ordering inside ROWNUM matters; compare row multisets of the
         same size — both orders rank by salary, so sets agree *)
      Alcotest.(check bool)
        (Printf.sprintf "state %s"
           (String.concat "" (List.map (fun b -> if b then "1" else "0") mask)))
        true
        (Refeval.rows_equal reference (Refeval.eval db q')))
    [ [ false; false ]; [ true; false ]; [ false; true ]; [ true; true ] ]

(* set operators through the driver *)
let setops () =
  check_both ~msg:"MINUS"
    "SELECT e.dept_id FROM employees e MINUS SELECT d.dept_id FROM \
     departments d WHERE d.loc_id = 102";
  check_both ~msg:"INTERSECT"
    "SELECT e.dept_id FROM employees e INTERSECT SELECT d.dept_id FROM \
     departments d"

(* disjunction through the driver *)
let disjunction () =
  check_both ~msg:"OR"
    "SELECT e.name FROM employees e, departments d WHERE e.dept_id = \
     d.dept_id AND (e.salary > 7500 OR d.loc_id = 102)"

let () =
  Alcotest.run "paper-queries"
    [
      ( "heuristic examples",
        [
          Alcotest.test_case "Q2 exists" `Quick q2;
          Alcotest.test_case "Q4 fk elimination" `Quick q4;
          Alcotest.test_case "Q5 outer elimination" `Quick q5;
          Alcotest.test_case "Q7 window pushdown" `Quick q7;
          Alcotest.test_case "Q9 group pruning" `Quick q9;
        ] );
      ( "cost-based examples",
        [
          Alcotest.test_case "Q1 running example" `Quick q1;
          Alcotest.test_case "Q10/Q11 unnest+merge" `Quick q10_q11;
          Alcotest.test_case "Q12/Q13/Q18 triangle" `Quick q12_triangle;
          Alcotest.test_case "Q14/Q15 factorization" `Quick q14;
          Alcotest.test_case "Q16 pullup variants" `Quick q16_variants;
          Alcotest.test_case "setops" `Quick setops;
          Alcotest.test_case "disjunction" `Quick disjunction;
        ] );
    ]
