(** Parser tests: the paper's running queries (adapted to the mini HR
    schema) must parse, and parse → optimize → execute must agree with
    the reference evaluator. *)

open Sqlir
module A = Ast
open Tsupport

let db = lazy (hr_db ())

let parse sql =
  let db = Lazy.force db in
  Sqlparse.Parser.parse_exn db.Storage.Db.cat sql

let check_sql ?msg sql =
  let db = Lazy.force db in
  let q = parse sql in
  ignore (check_against_ref ?msg db q)

let test_simple () =
  check_sql "SELECT e.name, e.salary FROM employees e WHERE e.salary > 6000"

let test_unqualified_and_star () =
  let q1 = parse "SELECT name FROM employees" in
  let q2 = parse "SELECT e.name FROM employees e" in
  Alcotest.(check int) "same select arity"
    (List.length (A.query_select_names q1))
    (List.length (A.query_select_names q2));
  let qs = parse "SELECT * FROM departments" in
  Alcotest.(check (list string)) "star expansion"
    [ "dept_id"; "dept_name"; "loc_id" ]
    (A.query_select_names qs);
  let qs2 = parse "SELECT d.* FROM departments d, locations l" in
  Alcotest.(check int) "alias star" 3 (List.length (A.query_select_names qs2))

let test_join_syntax () =
  check_sql
    "SELECT e.name, d.dept_name FROM employees e JOIN departments d ON \
     e.dept_id = d.dept_id WHERE e.salary > 5000";
  check_sql
    "SELECT e.name, d.dept_name FROM employees e LEFT OUTER JOIN departments \
     d ON e.dept_id = d.dept_id"

let test_q1_paper () =
  (* the paper's Q1, adapted: employees above department-average salary
     in US departments, with job history after a date *)
  check_sql ~msg:"paper Q1"
    "SELECT e1.name, j.job_id FROM employees e1, job_history j WHERE \
     e1.emp_id = j.emp_id AND j.start_date > DATE 10400 AND e1.salary > \
     (SELECT AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e1.dept_id) \
     AND e1.dept_id IN (SELECT d.dept_id FROM departments d, locations l \
     WHERE d.loc_id = l.loc_id AND l.country_id = 'US')"

let test_q2_exists () =
  check_sql ~msg:"paper Q2"
    "SELECT d.dept_name FROM departments d WHERE EXISTS (SELECT e.emp_id \
     FROM employees e WHERE e.dept_id = d.dept_id AND e.salary > 7000)"

let test_q4_fk_join () =
  check_sql ~msg:"paper Q4"
    "SELECT e.name, e.salary FROM employees e, departments d WHERE e.dept_id \
     = d.dept_id"

let test_q12_distinct_view () =
  (* paper Q12 shape: distinct view over a join, joined to outer tables *)
  check_sql ~msg:"paper Q12"
    "SELECT e1.name, v.dept_id FROM employees e1, (SELECT DISTINCT d.dept_id \
     FROM departments d, locations l WHERE d.loc_id = l.loc_id AND \
     l.country_id IN ('UK', 'US')) v WHERE e1.dept_id = v.dept_id AND \
     e1.salary > 4000"

let test_q14_union_all_join () =
  (* paper Q14 shape: UNION ALL branches sharing join tables *)
  check_sql ~msg:"paper Q14"
    "SELECT e.name, d.dept_name, l.city FROM employees e, departments d, \
     locations l WHERE e.dept_id = d.dept_id AND d.loc_id = l.loc_id AND \
     e.salary > 6500 UNION ALL SELECT e.name, d.dept_name, l.city FROM \
     employees e, departments d, locations l WHERE e.dept_id = d.dept_id AND \
     d.loc_id = l.loc_id AND e.salary < 3400"

let test_rownum () =
  let db = Lazy.force db in
  let q =
    parse
      "SELECT e.name FROM employees e WHERE e.salary > 3000 AND ROWNUM <= 7 \
       ORDER BY e.salary"
  in
  (match q with
  | A.Block b -> Alcotest.(check (option int)) "limit" (Some 7) b.A.limit
  | _ -> Alcotest.fail "expected block");
  let opt = Planner.Optimizer.create db.Storage.Db.cat in
  let ann = Planner.Optimizer.optimize opt q in
  let _, rows, _ = Exec.Executor.execute db ann.Planner.Annotation.an_plan in
  Alcotest.(check int) "7 rows" 7 (List.length rows)

let test_not_in_any_all () =
  check_sql
    "SELECT d.dept_name FROM departments d WHERE d.dept_id NOT IN (SELECT \
     e.dept_id FROM employees e WHERE e.dept_id IS NOT NULL AND e.salary > \
     7900)";
  check_sql
    "SELECT d.dept_name FROM departments d WHERE d.dept_id < ALL (SELECT \
     e.job_id * 10 FROM employees e)";
  check_sql
    "SELECT d.dept_name FROM departments d WHERE d.dept_id >= ANY (SELECT \
     e.job_id + 9 FROM employees e)"

let test_group_by_having () =
  check_sql
    "SELECT e.dept_id, COUNT(*) cnt, AVG(e.salary) avg_sal FROM employees e \
     GROUP BY e.dept_id HAVING COUNT(*) > 4"

let test_window_function () =
  check_sql
    "SELECT j.emp_id, COUNT(*) OVER (PARTITION BY j.dept_id ORDER BY \
     j.start_date) rc FROM job_history j"

let test_setops () =
  check_sql
    "SELECT e.dept_id FROM employees e MINUS SELECT d.dept_id FROM \
     departments d WHERE d.dept_id < 13";
  check_sql
    "SELECT e.dept_id FROM employees e INTERSECT SELECT d.dept_id FROM \
     departments d";
  check_sql
    "SELECT e.dept_id FROM employees e UNION SELECT d.dept_id FROM \
     departments d"

let test_case_in_list_between () =
  check_sql
    "SELECT e.name, CASE WHEN e.salary > 6000 THEN 'high' ELSE 'low' END \
     band FROM employees e WHERE e.job_id IN (1, 3, 5) AND e.salary BETWEEN \
     3000 AND 7500"

let test_duplicate_alias_renamed () =
  (* the same alias e in outer and inner blocks must not collide *)
  let q =
    parse
      "SELECT e.name FROM employees e WHERE EXISTS (SELECT 1 one FROM \
       employees e WHERE e.salary > 7900)"
  in
  let aliases = Walk.all_aliases_query Walk.Sset.empty q in
  Alcotest.(check int) "two distinct aliases" 2 (Walk.Sset.cardinal aliases);
  (* NB: inner e shadows outer e, so the subquery is uncorrelated here —
     exactly like SQL scoping *)
  ignore (check_against_ref (Lazy.force db) q)

let test_multi_item_in () =
  check_sql
    "SELECT e.name FROM employees e WHERE (e.dept_id, e.job_id) IN (SELECT \
     j.dept_id, j.job_id FROM job_history j)"

let test_parse_errors () =
  let db = Lazy.force db in
  let bad sql =
    match Sqlparse.Parser.parse db.Storage.Db.cat sql with
    | Ok _ -> Alcotest.failf "expected parse error for %s" sql
    | Error _ -> ()
  in
  bad "SELECT FROM employees";
  bad "SELECT e.name FROM";
  bad "SELECT e.name FROM no_such_table e";
  bad "SELECT e.no_such_col FROM employees e";
  bad "SELECT e.name FROM employees e WHERE";
  bad "SELECT e.name FROM employees e WHERE e.salary >";
  bad "SELECT e.name FROM employees e ORDER";
  bad "SELECT e.name employees e"

let test_pretty_print_reparse () =
  (* print ∘ parse is stable: the printed tree re-parses to an
     equivalent query (same reference results) *)
  let db = Lazy.force db in
  let sqls =
    [
      "SELECT e.name, e.salary FROM employees e WHERE e.salary > 6000";
      "SELECT e.dept_id, COUNT(*) cnt FROM employees e GROUP BY e.dept_id";
      "SELECT d.dept_name FROM departments d WHERE EXISTS (SELECT 1 one FROM \
       employees e WHERE e.dept_id = d.dept_id)";
    ]
  in
  List.iter
    (fun sql ->
      let q = parse sql in
      let r1 = Refeval.eval db q in
      let printed = Pp.query_to_string q in
      let q2 = Sqlparse.Parser.parse_exn db.Storage.Db.cat printed in
      let r2 = Refeval.eval db q2 in
      Alcotest.(check bool)
        (Printf.sprintf "round trip: %s" sql)
        true
        (Refeval.rows_equal r1 r2))
    sqls

let () =
  Alcotest.run "parser"
    [
      ( "basics",
        [
          Alcotest.test_case "simple" `Quick test_simple;
          Alcotest.test_case "unqualified + star" `Quick test_unqualified_and_star;
          Alcotest.test_case "join syntax" `Quick test_join_syntax;
          Alcotest.test_case "rownum" `Quick test_rownum;
          Alcotest.test_case "case/in/between" `Quick test_case_in_list_between;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "paper queries",
        [
          Alcotest.test_case "Q1" `Quick test_q1_paper;
          Alcotest.test_case "Q2" `Quick test_q2_exists;
          Alcotest.test_case "Q4" `Quick test_q4_fk_join;
          Alcotest.test_case "Q12" `Quick test_q12_distinct_view;
          Alcotest.test_case "Q14" `Quick test_q14_union_all_join;
        ] );
      ( "subqueries and setops",
        [
          Alcotest.test_case "NOT IN / ANY / ALL" `Quick test_not_in_any_all;
          Alcotest.test_case "multi-item IN" `Quick test_multi_item_in;
          Alcotest.test_case "setops" `Quick test_setops;
          Alcotest.test_case "duplicate alias" `Quick test_duplicate_alias_renamed;
        ] );
      ( "features",
        [
          Alcotest.test_case "group by having" `Quick test_group_by_having;
          Alcotest.test_case "window" `Quick test_window_function;
          Alcotest.test_case "print-reparse" `Quick test_pretty_print_reparse;
        ] );
    ]
