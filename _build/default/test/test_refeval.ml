(** Direct tests of the reference evaluator against hand-computed
    results on a three-row database. Everything else in the repository
    is validated against [Refeval], so [Refeval] itself is validated
    here against results computed by hand. *)

open Sqlir
module A = Ast
module V = Value

let db =
  let cat = Catalog.create () in
  Catalog.add_table cat
    {
      t_name = "t";
      t_cols =
        [
          { Catalog.c_name = "id"; c_ty = V.T_int; c_nullable = false };
          { Catalog.c_name = "g"; c_ty = V.T_int; c_nullable = true };
          { Catalog.c_name = "v"; c_ty = V.T_int; c_nullable = false };
        ];
      t_pkey = [ "id" ];
      t_fkeys = [];
      t_uniques = [];
    };
  Catalog.add_table cat
    {
      t_name = "s";
      t_cols =
        [
          { Catalog.c_name = "g"; c_ty = V.T_int; c_nullable = true };
          { Catalog.c_name = "w"; c_ty = V.T_int; c_nullable = false };
        ];
      t_pkey = [];
      t_fkeys = [];
      t_uniques = [];
    };
  let db = Storage.Db.create cat in
  Storage.Db.load db
    (Storage.Relation.create ~name:"t" ~schema:[ "id"; "g"; "v" ]
       [
         [| V.Int 1; V.Int 10; V.Int 100 |];
         [| V.Int 2; V.Int 10; V.Int 200 |];
         [| V.Int 3; V.Null; V.Int 300 |];
       ]);
  Storage.Db.load db
    (Storage.Relation.create ~name:"s" ~schema:[ "g"; "w" ]
       [
         [| V.Int 10; V.Int 7 |];
         [| V.Int 20; V.Int 8 |];
         [| V.Null; V.Int 9 |];
       ]);
  db

let tbl name alias =
  { A.fe_alias = alias; fe_source = A.S_table name; fe_kind = A.J_inner; fe_cond = [] }

let eval q = (Refeval.eval db q).Refeval.rows

let sorted rows = List.sort (List.compare V.compare_total) rows

let check name expected q =
  Alcotest.(check bool)
    name true
    (sorted (eval q) = sorted expected)

let test_scan_and_filter () =
  check "v > 150 keeps rows 2,3"
    [ [ V.Int 2 ]; [ V.Int 3 ] ]
    (A.Block
       {
         (A.empty_block "q") with
         A.select = [ { A.si_expr = A.col "t" "id"; si_name = "id" } ];
         from = [ tbl "t" "t" ];
         where = [ A.Cmp (A.Gt, A.col "t" "v", A.Const (V.Int 150)) ];
       })

let test_join_null_never_matches () =
  (* t.g = s.g: rows 1,2 match s row 1; the NULLs never match *)
  check "inner join on g"
    [ [ V.Int 1; V.Int 7 ]; [ V.Int 2; V.Int 7 ] ]
    (A.Block
       {
         (A.empty_block "q") with
         A.select =
           [
             { A.si_expr = A.col "t" "id"; si_name = "id" };
             { A.si_expr = A.col "s" "w"; si_name = "w" };
           ];
         from = [ tbl "t" "t"; tbl "s" "s" ];
         where = [ A.Cmp (A.Eq, A.col "t" "g", A.col "s" "g") ];
       })

let test_left_join_pads () =
  check "left join pads row 3"
    [ [ V.Int 1; V.Int 7 ]; [ V.Int 2; V.Int 7 ]; [ V.Int 3; V.Null ] ]
    (A.Block
       {
         (A.empty_block "q") with
         A.select =
           [
             { A.si_expr = A.col "t" "id"; si_name = "id" };
             { A.si_expr = A.col "s" "w"; si_name = "w" };
           ];
         from =
           [
             tbl "t" "t";
             {
               A.fe_alias = "s";
               fe_source = A.S_table "s";
               fe_kind = A.J_left;
               fe_cond = [ A.Cmp (A.Eq, A.col "t" "g", A.col "s" "g") ];
             };
           ];
       })

let test_group_by_nulls_group () =
  (* groups: {10 -> sum 300}, {NULL -> sum 300} *)
  check "group by with NULL group"
    [ [ V.Int 10; V.Int 300 ]; [ V.Null; V.Int 300 ] ]
    (A.Block
       {
         (A.empty_block "q") with
         A.select =
           [
             { A.si_expr = A.col "t" "g"; si_name = "g" };
             { A.si_expr = A.Agg (A.Sum, Some (A.col "t" "v"), false); si_name = "s" };
           ];
         from = [ tbl "t" "t" ];
         group_by = [ A.col "t" "g" ];
       })

let test_scalar_agg_ignores_nulls () =
  (* AVG over s.g = (10+20)/2 = 15, NULL ignored *)
  check "avg ignores nulls"
    [ [ V.Float 15. ] ]
    (A.Block
       {
         (A.empty_block "q") with
         A.select =
           [ { A.si_expr = A.Agg (A.Avg, Some (A.col "s" "g"), false); si_name = "a" } ];
         from = [ tbl "s" "s" ];
       })

let test_not_in_null_poisons () =
  (* t.g NOT IN (s.g): s.g contains NULL -> nothing qualifies *)
  check "NOT IN with null set" []
    (A.Block
       {
         (A.empty_block "q") with
         A.select = [ { A.si_expr = A.col "t" "id"; si_name = "id" } ];
         from = [ tbl "t" "t" ];
         where =
           [
             A.Not_in_subq
               ( [ A.col "t" "g" ],
                 A.Block
                   {
                     (A.empty_block "sub") with
                     A.select = [ { A.si_expr = A.col "s" "g"; si_name = "g" } ];
                     from = [ tbl "s" "s" ];
                   } );
           ];
       })

let test_exists_correlated () =
  check "correlated exists"
    [ [ V.Int 1 ]; [ V.Int 2 ] ]
    (A.Block
       {
         (A.empty_block "q") with
         A.select = [ { A.si_expr = A.col "t" "id"; si_name = "id" } ];
         from = [ tbl "t" "t" ];
         where =
           [
             A.Exists
               (A.Block
                  {
                    (A.empty_block "sub") with
                    A.select = [ { A.si_expr = A.Const (V.Int 1); si_name = "one" } ];
                    from = [ tbl "s" "s" ];
                    where = [ A.Cmp (A.Eq, A.col "s" "g", A.col "t" "g") ];
                  });
           ];
       })

let test_minus_nulls_match () =
  (* t.g MINUS s.g: t values {10, 10, NULL}; s has {10, 20, NULL};
     NULL matches NULL in MINUS -> result empty *)
  check "minus: null matches null" []
    (A.Setop
       ( A.Minus,
         A.Block
           {
             (A.empty_block "l") with
             A.select = [ { A.si_expr = A.col "t" "g"; si_name = "g" } ];
             from = [ tbl "t" "t" ];
           },
         A.Block
           {
             (A.empty_block "r") with
             A.select = [ { A.si_expr = A.col "s" "g"; si_name = "g" } ];
             from = [ tbl "s" "s" ];
           } ))

let test_intersect_distinct () =
  check "intersect distinct result"
    [ [ V.Int 10 ]; [ V.Null ] ]
    (A.Setop
       ( A.Intersect,
         A.Block
           {
             (A.empty_block "l") with
             A.select = [ { A.si_expr = A.col "t" "g"; si_name = "g" } ];
             from = [ tbl "t" "t" ];
           },
         A.Block
           {
             (A.empty_block "r") with
             A.select = [ { A.si_expr = A.col "s" "g"; si_name = "g" } ];
             from = [ tbl "s" "s" ];
           } ))

let test_order_limit () =
  let q =
    A.Block
      {
        (A.empty_block "q") with
        A.select = [ { A.si_expr = A.col "t" "v"; si_name = "v" } ];
        from = [ tbl "t" "t" ];
        order_by = [ (A.col "t" "v", A.Desc) ];
        limit = Some 2;
      }
  in
  Alcotest.(check bool) "top-2 by v desc" true
    (eval q = [ [ V.Int 300 ]; [ V.Int 200 ] ])

let test_window_running_count () =
  let q =
    A.Block
      {
        (A.empty_block "q") with
        A.select =
          [
            { A.si_expr = A.col "t" "id"; si_name = "id" };
            {
              A.si_expr =
                A.Win
                  ( A.Count_star,
                    None,
                    { A.w_pby = [ A.col "t" "g" ]; w_oby = [ (A.col "t" "v", A.Asc) ] } );
              si_name = "rc";
            };
          ];
        from = [ tbl "t" "t" ];
      }
  in
  check "running count per g partition"
    [ [ V.Int 1; V.Int 1 ]; [ V.Int 2; V.Int 2 ]; [ V.Int 3; V.Int 1 ] ]
    q

let test_case_and_three_valued_logic () =
  (* CASE on a NULL comparison falls through to ELSE *)
  check "case with unknown condition"
    [ [ V.Int 1; V.Str "big" ]; [ V.Int 2; V.Str "big" ]; [ V.Int 3; V.Str "?" ] ]
    (A.Block
       {
         (A.empty_block "q") with
         A.select =
           [
             { A.si_expr = A.col "t" "id"; si_name = "id" };
             {
               A.si_expr =
                 A.Case
                   ( [ (A.Cmp (A.Gt, A.col "t" "g", A.Const (V.Int 5)), A.Const (V.Str "big")) ],
                     Some (A.Const (V.Str "?")) );
               si_name = "c";
             };
           ];
         from = [ tbl "t" "t" ];
       })

let () =
  Alcotest.run "refeval"
    [
      ( "refeval",
        [
          Alcotest.test_case "scan+filter" `Quick test_scan_and_filter;
          Alcotest.test_case "join null semantics" `Quick test_join_null_never_matches;
          Alcotest.test_case "left join" `Quick test_left_join_pads;
          Alcotest.test_case "group by nulls" `Quick test_group_by_nulls_group;
          Alcotest.test_case "avg ignores nulls" `Quick test_scalar_agg_ignores_nulls;
          Alcotest.test_case "NOT IN poison" `Quick test_not_in_null_poisons;
          Alcotest.test_case "correlated exists" `Quick test_exists_correlated;
          Alcotest.test_case "minus null matching" `Quick test_minus_nulls_match;
          Alcotest.test_case "intersect" `Quick test_intersect_distinct;
          Alcotest.test_case "order+limit" `Quick test_order_limit;
          Alcotest.test_case "window" `Quick test_window_running_count;
          Alcotest.test_case "case / 3VL" `Quick test_case_and_three_valued_logic;
        ] );
    ]
