(** Unit tests for the IR foundation: value semantics, tree traversals,
    correlation analysis, pretty-printing / fingerprints. *)

open Sqlir
module A = Ast
module V = Value

(* ------------------------------------------------------------------ *)
(* Values                                                               *)
(* ------------------------------------------------------------------ *)

let test_compare_total () =
  Alcotest.(check bool) "int vs float" true
    (V.compare_total (V.Int 1) (V.Float 1.0) = 0);
  Alcotest.(check bool) "int < float" true
    (V.compare_total (V.Int 1) (V.Float 1.5) < 0);
  Alcotest.(check bool) "nulls sort last" true
    (V.compare_total (V.Str "zzz") V.Null < 0);
  Alcotest.(check bool) "null = null (grouping)" true
    (V.equal_grouping V.Null V.Null)

let test_compare_sql () =
  Alcotest.(check bool) "null incomparable" true
    (V.compare_sql V.Null (V.Int 1) = None);
  Alcotest.(check bool) "5 > 3" true (V.compare_sql (V.Int 5) (V.Int 3) = Some 2 || V.compare_sql (V.Int 5) (V.Int 3) = Some 1);
  Alcotest.(check bool) "dates compare" true
    (V.compare_sql (V.Date 10) (V.Date 20) < Some 0)

let test_arith () =
  Alcotest.(check bool) "int add" true (V.arith `Add (V.Int 2) (V.Int 3) = V.Int 5);
  Alcotest.(check bool) "div promotes" true
    (V.arith `Div (V.Int 7) (V.Int 2) = V.Float 3.5);
  Alcotest.(check bool) "div by zero is null" true
    (V.is_null (V.arith `Div (V.Int 7) (V.Int 0)));
  Alcotest.(check bool) "mixed" true
    (V.arith `Mul (V.Int 2) (V.Float 1.5) = V.Float 3.0)

(* ------------------------------------------------------------------ *)
(* Conjunct / disjunct normalisation                                    *)
(* ------------------------------------------------------------------ *)

let p1 = A.Cmp (A.Eq, A.col "a" "x", A.Const (V.Int 1))
let p2 = A.Cmp (A.Gt, A.col "a" "y", A.Const (V.Int 2))
let p3 = A.Is_null (A.col "b" "z")

let test_conjuncts () =
  Alcotest.(check int) "flattens nested ANDs" 3
    (List.length (A.conjuncts (A.And (A.And (p1, p2), p3))));
  Alcotest.(check int) "true vanishes" 0 (List.length (A.conjuncts A.True));
  let round = A.conjuncts (A.conj [ p1; p2; p3 ]) in
  Alcotest.(check int) "conj/conjuncts round trip" 3 (List.length round)

let test_disjuncts () =
  Alcotest.(check int) "flattens ORs" 3
    (List.length (A.disjuncts (A.Or (p1, A.Or (p2, p3)))))

(* ------------------------------------------------------------------ *)
(* Walk: correlation and scoping                                        *)
(* ------------------------------------------------------------------ *)

let subq_correlated =
  (* SELECT 1 FROM t inner WHERE inner.k = outer.k *)
  A.Block
    {
      (A.empty_block "s") with
      A.select = [ { A.si_expr = A.Const (V.Int 1); si_name = "one" } ];
      from =
        [ { A.fe_alias = "inner"; fe_source = A.S_table "t"; fe_kind = A.J_inner; fe_cond = [] } ];
      where = [ A.Cmp (A.Eq, A.col "inner" "k", A.col "outer" "k") ];
    }

let test_free_aliases () =
  let free = Walk.free_aliases subq_correlated in
  Alcotest.(check (list string)) "outer is free" [ "outer" ]
    (Walk.Sset.elements free);
  Alcotest.(check bool) "correlated" true (Walk.is_correlated subq_correlated)

let test_free_cols () =
  let cols = Walk.free_cols subq_correlated in
  Alcotest.(check int) "one free col" 1 (List.length cols);
  Alcotest.(check string) "outer.k" "k" (List.hd cols).A.c_col

let test_substitute () =
  let p = A.Cmp (A.Gt, A.col "v" "total", A.Const (V.Int 5)) in
  let p' =
    Walk.substitute_alias ~alias:"v"
      ~subst:[ ("total", A.Agg (A.Sum, Some (A.col "e" "sal"), false)) ]
      p
  in
  Alcotest.(check string) "substituted"
    "SUM(e.sal) > 5" (Pp.pred_to_string p')

let test_rename_aliases () =
  let q = subq_correlated in
  let q' = Walk.rename_aliases (fun a -> if a = "inner" then "i2" else a) q in
  match q' with
  | A.Block b ->
      Alcotest.(check string) "entry renamed" "i2" (List.hd b.A.from).A.fe_alias;
      Alcotest.(check bool) "refs renamed" true
        (String.length (Pp.query_to_string q') > 0
        && not (String.length (Pp.query_to_string q') = 0));
      Alcotest.(check bool) "inner gone" true
        (not (Walk.Sset.mem "inner" (Walk.all_aliases_query Walk.Sset.empty q')))
  | _ -> Alcotest.fail "expected block"

let test_fresh_alias_gen () =
  let gen = Walk.fresh_alias_gen [ subq_correlated ] in
  let a = gen "inner" in
  Alcotest.(check bool) "avoids collision" true (a <> "inner");
  let b = gen "v" in
  let c = gen "v" in
  Alcotest.(check bool) "fresh each time" true (b <> c)

let test_shape_predicates () =
  let agg_block =
    {
      (A.empty_block "g") with
      A.select =
        [ { A.si_expr = A.Agg (A.Count_star, None, false); si_name = "c" } ];
      from =
        [ { A.fe_alias = "t"; fe_source = A.S_table "t"; fe_kind = A.J_inner; fe_cond = [] } ];
    }
  in
  Alcotest.(check bool) "has agg" true (Walk.block_has_agg agg_block);
  Alcotest.(check bool) "agg blocks" true (Walk.block_is_blocking agg_block);
  Alcotest.(check bool) "plain doesn't" false
    (Walk.block_has_agg (A.empty_block "x"))

(* ------------------------------------------------------------------ *)
(* Pretty printer / fingerprints                                        *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_stable () =
  let f1 = Pp.fingerprint subq_correlated in
  let f2 = Pp.fingerprint subq_correlated in
  Alcotest.(check string) "deterministic" f1 f2;
  let other =
    A.Block
      {
        (A.empty_block "s") with
        A.select = [ { A.si_expr = A.Const (V.Int 2); si_name = "one" } ];
        from =
          [ { A.fe_alias = "inner"; fe_source = A.S_table "t"; fe_kind = A.J_inner; fe_cond = [] } ];
      }
  in
  Alcotest.(check bool) "distinguishes" true (f1 <> Pp.fingerprint other)

let test_pp_not_null () =
  Alcotest.(check string) "IS NOT NULL sugar" "a.x IS NOT NULL"
    (Pp.pred_to_string (A.Not (A.Is_null (A.col "a" "x"))));
  Alcotest.(check string) "LNNVL" "LNNVL(a.x = 1)"
    (Pp.pred_to_string (A.Lnnvl p1))

let () =
  Alcotest.run "sqlir"
    [
      ( "values",
        [
          Alcotest.test_case "compare_total" `Quick test_compare_total;
          Alcotest.test_case "compare_sql" `Quick test_compare_sql;
          Alcotest.test_case "arith" `Quick test_arith;
        ] );
      ( "ast",
        [
          Alcotest.test_case "conjuncts" `Quick test_conjuncts;
          Alcotest.test_case "disjuncts" `Quick test_disjuncts;
        ] );
      ( "walk",
        [
          Alcotest.test_case "free aliases" `Quick test_free_aliases;
          Alcotest.test_case "free cols" `Quick test_free_cols;
          Alcotest.test_case "substitute" `Quick test_substitute;
          Alcotest.test_case "rename" `Quick test_rename_aliases;
          Alcotest.test_case "fresh aliases" `Quick test_fresh_alias_gen;
          Alcotest.test_case "shape predicates" `Quick test_shape_predicates;
        ] );
      ( "pp",
        [
          Alcotest.test_case "fingerprint" `Quick test_fingerprint_stable;
          Alcotest.test_case "sugar" `Quick test_pp_not_null;
        ] );
    ]
