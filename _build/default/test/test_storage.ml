(** Unit tests for the storage substrate: relations, B-trees, database
    loading, and statistics gathering (exact and sampled). *)

open Sqlir
module V = Value
module Rel = Storage.Relation
module Bt = Storage.Btree

let mk_rel () =
  Rel.create ~name:"t" ~schema:[ "k"; "v" ]
    (List.init 100 (fun i -> [| V.Int (i mod 10); V.Int i |]))

let test_relation_basics () =
  let r = mk_rel () in
  Alcotest.(check int) "cardinality" 100 (Rel.cardinality r);
  Alcotest.(check int) "pages" 2 (Rel.pages r);
  Alcotest.(check int) "col index" 1 (Rel.col_index r "v");
  Alcotest.(check bool) "get" true (Rel.get r ~row:42 ~col:"v" = V.Int 42);
  Alcotest.check_raises "unknown column"
    (Invalid_argument "Relation.col_index: t has no column nope") (fun () ->
      ignore (Rel.col_index r "nope"))

let test_btree_insert_find () =
  let bt = Bt.create ~cols:[ "k" ] ~unique:false in
  let r = mk_rel () in
  Rel.iteri (fun i tup -> Bt.insert bt [ tup.(0) ] i) r;
  Alcotest.(check int) "entries" 100 (Bt.entries bt);
  Alcotest.(check int) "distinct keys" 10 (Bt.distinct_keys bt);
  Alcotest.(check int) "10 rows per key" 10
    (List.length (Bt.find_eq bt [ V.Int 3 ]));
  Alcotest.(check int) "missing key" 0 (List.length (Bt.find_eq bt [ V.Int 99 ]))

let test_btree_null_keys_not_indexed () =
  let bt = Bt.create ~cols:[ "k" ] ~unique:false in
  Bt.insert bt [ V.Null ] 0;
  Bt.insert bt [ V.Int 1 ] 1;
  Alcotest.(check int) "null not indexed" 1 (Bt.entries bt);
  Alcotest.(check int) "null probe finds nothing" 0
    (List.length (Bt.find_eq bt [ V.Null ]))

let test_btree_composite_prefix () =
  let bt = Bt.create ~cols:[ "a"; "b" ] ~unique:false in
  List.iteri
    (fun i (a, b) -> Bt.insert bt [ V.Int a; V.Int b ] i)
    [ (1, 1); (1, 2); (2, 1); (2, 2); (2, 3) ];
  Alcotest.(check int) "full key" 1 (List.length (Bt.find_eq bt [ V.Int 2; V.Int 3 ]));
  Alcotest.(check int) "prefix" 3 (List.length (Bt.find_prefix bt [ V.Int 2 ]));
  let rows, _ =
    Bt.range bt ~prefix:[ V.Int 2 ] ~lo:(Bt.Incl (V.Int 2)) ~hi:Bt.Unbounded
  in
  Alcotest.(check int) "prefix + range" 2 (List.length rows)

let test_btree_height () =
  let small = Bt.create ~cols:[ "k" ] ~unique:false in
  Bt.insert small [ V.Int 1 ] 0;
  Alcotest.(check int) "tiny tree height 1" 1 (Bt.height small);
  let big = Bt.create ~cols:[ "k" ] ~unique:false in
  for i = 0 to 9999 do
    Bt.insert big [ V.Int i ] i
  done;
  Alcotest.(check bool) "10k keys -> height >= 2" true (Bt.height big >= 2)

let test_db_load_schema_mismatch () =
  let cat = Catalog.create () in
  Catalog.add_table cat
    {
      t_name = "t";
      t_cols = [ { Catalog.c_name = "a"; c_ty = V.T_int; c_nullable = false } ];
      t_pkey = [ "a" ];
      t_fkeys = [];
      t_uniques = [];
    };
  let db = Storage.Db.create cat in
  Alcotest.check_raises "schema mismatch"
    (Invalid_argument "Db.load: schema mismatch for t (catalog: a, data: b)")
    (fun () ->
      Storage.Db.load db (Rel.create ~name:"t" ~schema:[ "b" ] []))

let test_stats_exact () =
  let r = mk_rel () in
  let stats = Storage.Stats_gather.exact r in
  Alcotest.(check int) "rows" 100 stats.Catalog.s_rows;
  let k = List.assoc "k" stats.s_cols in
  Alcotest.(check int) "k ndv" 10 k.Catalog.s_ndv;
  Alcotest.(check bool) "k range" true
    (k.s_min = V.Int 0 && k.s_max = V.Int 9);
  let v = List.assoc "v" stats.s_cols in
  Alcotest.(check int) "v ndv" 100 v.Catalog.s_ndv

let test_stats_nulls () =
  let r =
    Rel.create ~name:"t" ~schema:[ "x" ]
      [ [| V.Null |]; [| V.Int 1 |]; [| V.Null |]; [| V.Int 2 |] ]
  in
  let stats = Storage.Stats_gather.exact r in
  let x = List.assoc "x" stats.Catalog.s_cols in
  Alcotest.(check int) "nulls counted" 2 x.Catalog.s_nulls;
  Alcotest.(check int) "ndv excludes nulls" 2 x.s_ndv

let test_stats_sampled_close () =
  let r =
    Rel.create ~name:"t" ~schema:[ "k" ]
      (List.init 2000 (fun i -> [| V.Int (i mod 50) |]))
  in
  let s = Storage.Stats_gather.sampled ~seed:7 ~fraction:0.3 r in
  Alcotest.(check int) "row count exact" 2000 s.Catalog.s_rows;
  let k = List.assoc "k" s.s_cols in
  Alcotest.(check bool)
    (Printf.sprintf "sampled ndv %d within 2x of 50" k.Catalog.s_ndv)
    true
    (k.s_ndv >= 25 && k.s_ndv <= 100)

let test_stats_sampled_deterministic () =
  let r = mk_rel () in
  let s1 = Storage.Stats_gather.sampled ~seed:42 ~fraction:0.5 r in
  let s2 = Storage.Stats_gather.sampled ~seed:42 ~fraction:0.5 r in
  Alcotest.(check bool) "same seed, same stats" true (s1 = s2)

let () =
  Alcotest.run "storage"
    [
      ( "relation",
        [ Alcotest.test_case "basics" `Quick test_relation_basics ] );
      ( "btree",
        [
          Alcotest.test_case "insert/find" `Quick test_btree_insert_find;
          Alcotest.test_case "null keys" `Quick test_btree_null_keys_not_indexed;
          Alcotest.test_case "composite prefix" `Quick test_btree_composite_prefix;
          Alcotest.test_case "height" `Quick test_btree_height;
        ] );
      ( "db",
        [ Alcotest.test_case "schema mismatch" `Quick test_db_load_schema_mismatch ] );
      ( "stats",
        [
          Alcotest.test_case "exact" `Quick test_stats_exact;
          Alcotest.test_case "nulls" `Quick test_stats_nulls;
          Alcotest.test_case "sampled close" `Quick test_stats_sampled_close;
          Alcotest.test_case "sampled deterministic" `Quick
            test_stats_sampled_deterministic;
        ] );
    ]
