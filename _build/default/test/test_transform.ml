(** Transformation tests.

    Every transformation must preserve semantics: the reference
    evaluator must return the same multiset for the original and the
    transformed query, and the transformed query must also optimize and
    execute to the same result. Shape assertions check that each
    transformation actually did what the paper describes. *)

open Sqlir
module A = Ast
module V = Value
open Tsupport

let db = lazy (hr_db ())
let cat () = (Lazy.force db).Storage.Db.cat

let parse sql = Sqlparse.Parser.parse_exn (cat ()) sql

(** Transformed and original queries agree under the reference
    evaluator AND under optimize+execute. *)
let check_equiv ?(msg = "equivalence") (q : A.query) (q' : A.query) =
  let db = Lazy.force db in
  let r = Refeval.eval db q in
  let r' = Refeval.eval db q' in
  if not (Refeval.rows_equal r r') then
    Alcotest.failf "%s (refeval):@.original: %s@.transformed: %s@.got %d vs %d rows"
      msg (Pp.query_to_string q) (Pp.query_to_string q')
      (List.length r.Refeval.rows) (List.length r'.Refeval.rows);
  ignore (check_against_ref ~msg:(msg ^ " (exec)") db q')

let blocks_of q =
  let n = ref 0 in
  ignore (Transform.Tx.map_blocks_bottom_up (fun b -> incr n; b) q);
  !n

(* ------------------------------------------------------------------ *)
(* Heuristic: subquery merge                                            *)
(* ------------------------------------------------------------------ *)

let test_merge_exists_semijoin () =
  let q =
    parse
      "SELECT d.dept_name FROM departments d WHERE EXISTS (SELECT e.emp_id \
       FROM employees e WHERE e.dept_id = d.dept_id AND e.salary > 7000)"
  in
  let q' = Transform.Unnest_merge.apply (cat ()) q in
  (match q' with
  | A.Block b ->
      Alcotest.(check int) "two FROM entries" 2 (List.length b.A.from);
      Alcotest.(check bool) "semijoin entry" true
        (List.exists (fun fe -> fe.A.fe_kind = A.J_semi) b.A.from)
  | _ -> Alcotest.fail "expected block");
  check_equiv ~msg:"EXISTS merge" q q'

let test_merge_not_in_null_aware () =
  let q =
    parse
      "SELECT d.dept_name FROM departments d WHERE d.dept_id NOT IN (SELECT \
       e.dept_id FROM employees e WHERE e.salary > 7900)"
  in
  let q' = Transform.Unnest_merge.apply (cat ()) q in
  (match q' with
  | A.Block b ->
      Alcotest.(check bool) "null-aware antijoin (dept_id nullable)" true
        (List.exists (fun fe -> fe.A.fe_kind = A.J_anti_na) b.A.from)
  | _ -> Alcotest.fail "expected block");
  check_equiv ~msg:"NOT IN merge" q q'

let test_merge_not_in_non_null_plain_anti () =
  (* emp_id is non-nullable on both sides: plain antijoin suffices *)
  let q =
    parse
      "SELECT e.name FROM employees e WHERE e.emp_id NOT IN (SELECT j.emp_id \
       FROM job_history j WHERE j.start_date > DATE 11000)"
  in
  let q' = Transform.Unnest_merge.apply (cat ()) q in
  (match q' with
  | A.Block b ->
      Alcotest.(check bool) "plain antijoin" true
        (List.exists (fun fe -> fe.A.fe_kind = A.J_anti) b.A.from)
  | _ -> Alcotest.fail "expected block");
  check_equiv ~msg:"NOT IN non-null merge" q q'

let test_merge_any_all () =
  let q_any =
    parse
      "SELECT d.dept_name FROM departments d WHERE d.dept_id >= ANY (SELECT \
       e.job_id + 9 FROM employees e WHERE e.salary > 5000)"
  in
  check_equiv ~msg:"ANY merge" q_any
    (Transform.Unnest_merge.apply (cat ()) q_any);
  let q_all =
    parse
      "SELECT d.dept_name FROM departments d WHERE d.dept_id < ALL (SELECT \
       e.job_id * 10 FROM employees e)"
  in
  check_equiv ~msg:"ALL merge" q_all
    (Transform.Unnest_merge.apply (cat ()) q_all)

let test_merge_skips_or () =
  (* subqueries under OR must not be touched *)
  let q =
    parse
      "SELECT d.dept_name FROM departments d WHERE d.dept_id = 10 OR EXISTS \
       (SELECT e.emp_id FROM employees e WHERE e.dept_id = d.dept_id)"
  in
  Alcotest.(check int) "no merge" 0 (Transform.Unnest_merge.count (cat ()) q)

(* ------------------------------------------------------------------ *)
(* Cost-based: unnesting with inline views                              *)
(* ------------------------------------------------------------------ *)

let q1_sql =
  "SELECT e1.name, j.job_id FROM employees e1, job_history j WHERE e1.emp_id \
   = j.emp_id AND j.start_date > DATE 10400 AND e1.salary > (SELECT \
   AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e1.dept_id) AND \
   e1.dept_id IN (SELECT d.dept_id FROM departments d, locations l WHERE \
   d.loc_id = l.loc_id AND l.country_id = 'US')"

let test_unnest_view_objects () =
  let q = parse q1_sql in
  let objs = Transform.Unnest_view.objects (cat ()) q in
  Alcotest.(check int) "Q1 has two unnestable subqueries" 2 (List.length objs)

let test_unnest_view_states () =
  (* all four states of Q1 must be semantically equal (Table 1's state
     space) *)
  let q = parse q1_sql in
  List.iter
    (fun mask ->
      let q' = Transform.Unnest_view.apply_mask (cat ()) q mask in
      check_equiv
        ~msg:
          (Printf.sprintf "Q1 state (%s)"
             (String.concat ","
                (List.map (fun b -> if b then "1" else "0") mask)))
        q q')
    [ [ false; false ]; [ true; false ]; [ false; true ]; [ true; true ] ]

let test_unnest_agg_generates_gb_view () =
  let q = parse q1_sql in
  let q' = Transform.Unnest_view.apply_mask (cat ()) q [ true; false ] in
  match q' with
  | A.Block b ->
      let views =
        List.filter
          (fun fe ->
            match fe.A.fe_source with A.S_view _ -> true | _ -> false)
          b.A.from
      in
      Alcotest.(check int) "one inline view" 1 (List.length views);
      (match (List.hd views).A.fe_source with
      | A.S_view (A.Block vb) ->
          Alcotest.(check bool) "view groups by correlation column" true
            (vb.A.group_by <> [])
      | _ -> Alcotest.fail "expected block view")
  | _ -> Alcotest.fail "expected block"

let test_unnest_multitable_exists () =
  let q =
    parse
      "SELECT e.name FROM employees e WHERE EXISTS (SELECT 1 one FROM \
       departments d, locations l WHERE d.loc_id = l.loc_id AND l.country_id \
       = 'US' AND d.dept_id = e.dept_id)"
  in
  Alcotest.(check int) "one object" 1
    (List.length (Transform.Unnest_view.objects (cat ()) q));
  let q' = Transform.Unnest_view.apply_all (cat ()) q in
  (match q' with
  | A.Block b ->
      Alcotest.(check bool) "semi-joined view" true
        (List.exists
           (fun fe ->
             fe.A.fe_kind = A.J_semi
             && match fe.A.fe_source with A.S_view _ -> true | _ -> false)
           b.A.from)
  | _ -> Alcotest.fail "expected block");
  check_equiv ~msg:"multi-table EXISTS" q q'

let test_unnest_multitable_not_in () =
  let q =
    parse
      "SELECT e.name FROM employees e WHERE e.dept_id NOT IN (SELECT \
       d.dept_id FROM departments d, locations l WHERE d.loc_id = l.loc_id \
       AND l.country_id = 'DE')"
  in
  let q' = Transform.Unnest_view.apply_all (cat ()) q in
  check_equiv ~msg:"multi-table NOT IN" q q'

let test_unnest_count_bug_excluded () =
  (* COUNT scalar subqueries must not be unnested (count bug) *)
  let q =
    parse
      "SELECT d.dept_name FROM departments d WHERE 3 > (SELECT COUNT(*) FROM \
       employees e WHERE e.dept_id = d.dept_id AND e.salary > 7500)"
  in
  Alcotest.(check int) "no objects" 0
    (List.length (Transform.Unnest_view.objects (cat ()) q))

(* ------------------------------------------------------------------ *)
(* Cost-based: group-by / distinct view merging                         *)
(* ------------------------------------------------------------------ *)

let test_gb_view_merge_q10_q11 () =
  (* Q10 shape: unnest Q1's aggregate subquery, then merge the view *)
  let q10 = Transform.Unnest_view.apply_mask (cat ()) (parse q1_sql) [ true; false ] in
  let objs = Transform.Gb_view_merge.objects (cat ()) q10 in
  Alcotest.(check int) "one mergeable view" 1 (List.length objs);
  let q11 = Transform.Gb_view_merge.apply_all (cat ()) q10 in
  (match q11 with
  | A.Block b ->
      Alcotest.(check bool) "merged block has group by" true (b.A.group_by <> []);
      Alcotest.(check bool) "merged block has having" true (b.A.having <> []);
      Alcotest.(check bool) "no view left" true
        (List.for_all
           (fun fe ->
             match fe.A.fe_source with A.S_table _ -> true | _ -> false)
           b.A.from)
  | _ -> Alcotest.fail "expected block");
  check_equiv ~msg:"Q10 -> Q11" q10 q11

let test_distinct_view_merge_q18 () =
  let q12 =
    parse
      "SELECT e1.name, v.dept_id FROM employees e1, (SELECT DISTINCT \
       d.dept_id FROM departments d, locations l WHERE d.loc_id = l.loc_id \
       AND l.country_id IN ('UK','US')) v WHERE e1.dept_id = v.dept_id AND \
       e1.salary > 4000"
  in
  let objs = Transform.Gb_view_merge.objects (cat ()) q12 in
  Alcotest.(check int) "distinct view object" 1 (List.length objs);
  let q18 = Transform.Gb_view_merge.apply_all (cat ()) q12 in
  check_equiv ~msg:"Q12 -> Q18 (distinct merge)" q12 q18

(* ------------------------------------------------------------------ *)
(* Cost-based: join predicate pushdown                                  *)
(* ------------------------------------------------------------------ *)

let test_jppd_distinct_to_semi_q13 () =
  let q12 =
    parse
      "SELECT e1.name FROM employees e1, (SELECT DISTINCT d.dept_id FROM \
       departments d, locations l WHERE d.loc_id = l.loc_id AND l.country_id \
       IN ('UK','US')) v WHERE e1.dept_id = v.dept_id AND e1.salary > 4000"
  in
  Alcotest.(check int) "jppd object" 1
    (List.length (Transform.Jppd.objects (cat ()) q12));
  let q13 = Transform.Jppd.apply_all (cat ()) q12 in
  (match q13 with
  | A.Block b ->
      let v =
        List.find
          (fun fe ->
            match fe.A.fe_source with A.S_view _ -> true | _ -> false)
          b.A.from
      in
      Alcotest.(check bool) "semijoin conversion" true (v.A.fe_kind = A.J_semi);
      (match v.A.fe_source with
      | A.S_view (A.Block vb) ->
          Alcotest.(check bool) "distinct removed" false vb.A.distinct;
          Alcotest.(check bool) "view now correlated" true
            (Walk.is_correlated (A.Block vb))
      | _ -> Alcotest.fail "expected view")
  | _ -> Alcotest.fail "expected block");
  check_equiv ~msg:"Q12 -> Q13 (jppd)" q12 q13

let test_jppd_groupby_removal () =
  let q =
    parse
      "SELECT d.dept_name, v.avg_sal FROM departments d, (SELECT e.dept_id, \
       AVG(e.salary) avg_sal FROM employees e GROUP BY e.dept_id) v WHERE \
       d.dept_id = v.dept_id AND d.loc_id = 100"
  in
  let q' = Transform.Jppd.apply_all (cat ()) q in
  (match q' with
  | A.Block b -> (
      let v =
        List.find
          (fun fe ->
            match fe.A.fe_source with A.S_view _ -> true | _ -> false)
          b.A.from
      in
      match v.A.fe_source with
      | A.S_view (A.Block vb) ->
          Alcotest.(check bool) "group by removed" true (vb.A.group_by = []);
          Alcotest.(check bool) "correlation pushed" true
            (Walk.is_correlated (A.Block vb))
      | _ -> Alcotest.fail "expected view")
  | _ -> Alcotest.fail "expected block");
  check_equiv ~msg:"jppd group-by removal" q q'

let test_jppd_union_all_view () =
  let q =
    parse
      "SELECT d.dept_name, v.emp_id FROM departments d, (SELECT e.emp_id, \
       e.dept_id FROM employees e WHERE e.salary > 7000 UNION ALL SELECT \
       j.emp_id, j.dept_id FROM job_history j WHERE j.start_date > DATE \
       11000) v WHERE d.dept_id = v.dept_id AND d.loc_id = 101"
  in
  Alcotest.(check int) "union-all view is a jppd object" 1
    (List.length (Transform.Jppd.objects (cat ()) q));
  check_equiv ~msg:"jppd into union all" q
    (Transform.Jppd.apply_all (cat ()) q)

(* ------------------------------------------------------------------ *)
(* Cost-based: group-by placement                                       *)
(* ------------------------------------------------------------------ *)

let test_gbp_eager_aggregation () =
  let q =
    parse
      "SELECT d.dept_name, SUM(e.salary) total, COUNT(*) cnt FROM employees \
       e, departments d WHERE e.dept_id = d.dept_id GROUP BY d.dept_name"
  in
  let objs = Transform.Gb_placement.objects (cat ()) q in
  Alcotest.(check bool) "at least one gbp target" true (List.length objs >= 1);
  let q' = Transform.Gb_placement.apply_all (cat ()) q in
  (match q' with
  | A.Block b ->
      Alcotest.(check bool) "contains pre-aggregating view" true
        (List.exists
           (fun fe ->
             match fe.A.fe_source with
             | A.S_view (A.Block vb) -> vb.A.group_by <> []
             | _ -> false)
           b.A.from)
  | _ -> Alcotest.fail "expected block");
  check_equiv ~msg:"eager aggregation" q q'

let test_gbp_avg_decomposition () =
  let q =
    parse
      "SELECT d.loc_id, AVG(e.salary) a, MIN(e.salary) mn, MAX(e.salary) mx, \
       COUNT(e.mgr_id) c FROM employees e, departments d WHERE e.dept_id = \
       d.dept_id GROUP BY d.loc_id"
  in
  check_equiv ~msg:"AVG/MIN/MAX/COUNT decomposition" q
    (Transform.Gb_placement.apply_all (cat ()) q)

let test_gbp_skips_distinct_agg () =
  let q =
    parse
      "SELECT d.dept_name, COUNT(DISTINCT e.job_id) c FROM employees e, \
       departments d WHERE e.dept_id = d.dept_id GROUP BY d.dept_name"
  in
  Alcotest.(check int) "distinct agg not decomposable" 0
    (List.length (Transform.Gb_placement.objects (cat ()) q))

(* ------------------------------------------------------------------ *)
(* Cost-based: join factorization                                       *)
(* ------------------------------------------------------------------ *)

let test_join_factorization_q15 () =
  let q14 =
    parse
      "SELECT e.name, d.dept_name FROM employees e, departments d WHERE \
       e.dept_id = d.dept_id AND e.salary > 7000 UNION ALL SELECT e.name, \
       d.dept_name FROM employees e, departments d WHERE e.dept_id = \
       d.dept_id AND e.salary < 3400"
  in
  let objs = Transform.Join_factor.objects (cat ()) q14 in
  Alcotest.(check bool) "departments is factorable" true
    (List.mem "factor(departments)" objs);
  let idx =
    match List.mapi (fun i o -> (o, i)) objs |> List.assoc_opt "factor(departments)" with
    | Some i -> i
    | None -> Alcotest.fail "missing object"
  in
  let mask = List.mapi (fun i _ -> i = idx) objs in
  let q15 = Transform.Join_factor.apply_mask (cat ()) q14 mask in
  (match q15 with
  | A.Block b ->
      Alcotest.(check int) "table + union-all view" 2 (List.length b.A.from)
  | _ -> Alcotest.fail "expected factored block");
  check_equiv ~msg:"Q14 -> Q15" q14 q15

let test_join_factorization_correlated_variant () =
  (* different single-table predicates on the common table: the paper's
     "next release" variant factors it with the predicates left inside
     the (now correlated) UNION ALL view *)
  let q =
    parse
      "SELECT e.name FROM employees e, departments d WHERE e.dept_id = \
       d.dept_id AND d.loc_id = 100 UNION ALL SELECT e.name FROM employees \
       e, departments d WHERE e.dept_id = d.dept_id AND d.loc_id = 101"
  in
  let objs = Transform.Join_factor.objects (cat ()) q in
  Alcotest.(check bool) "departments factorable (correlated)" true
    (List.mem "factor(departments)" objs);
  let mask = List.map (fun o -> o = "factor(departments)") objs in
  let q' = Transform.Join_factor.apply_mask (cat ()) q mask in
  (match q' with
  | A.Block b -> (
      Alcotest.(check int) "table + view" 2 (List.length b.A.from);
      match
        List.find_map
          (fun fe ->
            match fe.A.fe_source with A.S_view v -> Some v | _ -> None)
          b.A.from
      with
      | Some v -> Alcotest.(check bool) "view correlated" true (Walk.is_correlated v)
      | None -> Alcotest.fail "no view")
  | _ -> Alcotest.fail "expected factored block");
  check_equiv ~msg:"correlated factorization" q q'

let test_join_factorization_opaque_preds () =
  (* a non-separable predicate (mixing both tables inside one side)
     blocks pullout but not the correlated variant *)
  let q =
    parse
      "SELECT e.name FROM employees e, departments d WHERE e.dept_id + \
       d.loc_id > 110 AND e.salary > 7000 UNION ALL SELECT e.name FROM \
       employees e, departments d WHERE e.dept_id + d.loc_id > 110 AND \
       e.salary < 3400"
  in
  let objs = Transform.Join_factor.objects (cat ()) q in
  Alcotest.(check bool) "factorable via correlated" true
    (List.mem "factor(departments)" objs);
  let mask = List.map (fun o -> o = "factor(departments)") objs in
  check_equiv ~msg:"opaque-pred factorization" q
    (Transform.Join_factor.apply_mask (cat ()) q mask)

(* ------------------------------------------------------------------ *)
(* Cost-based: predicate pullup                                         *)
(* ------------------------------------------------------------------ *)

let test_predicate_pullup () =
  let q =
    parse
      "SELECT v.name FROM (SELECT e.name, e.emp_id FROM employees e WHERE \
       expensive_check(e.emp_id, 1) ORDER BY e.salary DESC) v WHERE ROWNUM \
       <= 5"
  in
  let objs = Transform.Predicate_pullup.objects (cat ()) q in
  Alcotest.(check int) "one expensive predicate" 1 (List.length objs);
  let q' = Transform.Predicate_pullup.apply_all (cat ()) q in
  (match q' with
  | A.Block b ->
      Alcotest.(check bool) "predicate now in parent" true
        (List.exists Transform.Predicate_pullup.pred_expensive b.A.where)
  | _ -> Alcotest.fail "expected block");
  check_equiv ~msg:"predicate pullup" q q'

let test_pullup_needs_rownum () =
  let q =
    parse
      "SELECT v.name FROM (SELECT e.name FROM employees e WHERE \
       expensive_check(e.emp_id, 1) ORDER BY e.salary DESC) v"
  in
  Alcotest.(check int) "no rownum, no object" 0
    (List.length (Transform.Predicate_pullup.objects (cat ()) q))

(* ------------------------------------------------------------------ *)
(* Cost-based: set operators into joins                                 *)
(* ------------------------------------------------------------------ *)

let test_setop_to_join () =
  let minus =
    parse
      "SELECT e.dept_id FROM employees e MINUS SELECT d.dept_id FROM \
       departments d WHERE d.dept_id < 13"
  in
  Alcotest.(check int) "minus object" 1
    (List.length (Transform.Setop_to_join.objects (cat ()) minus));
  check_equiv ~msg:"MINUS -> antijoin" minus
    (Transform.Setop_to_join.apply_all (cat ()) minus);
  let inter =
    parse
      "SELECT e.dept_id FROM employees e INTERSECT SELECT d.dept_id FROM \
       departments d"
  in
  check_equiv ~msg:"INTERSECT -> semijoin" inter
    (Transform.Setop_to_join.apply_all (cat ()) inter)

let test_setop_null_matching () =
  (* employees.dept_id contains NULLs; MINUS/INTERSECT treat NULL = NULL *)
  let inter =
    parse
      "SELECT e.dept_id FROM employees e INTERSECT SELECT e2.dept_id FROM \
       employees e2 WHERE e2.salary > 7000"
  in
  check_equiv ~msg:"INTERSECT with NULLs" inter
    (Transform.Setop_to_join.apply_all (cat ()) inter);
  let minus =
    parse
      "SELECT e.dept_id FROM employees e MINUS SELECT e2.dept_id FROM \
       employees e2 WHERE e2.salary > 3500"
  in
  check_equiv ~msg:"MINUS with NULLs" minus
    (Transform.Setop_to_join.apply_all (cat ()) minus)

(* ------------------------------------------------------------------ *)
(* Cost-based: OR expansion                                             *)
(* ------------------------------------------------------------------ *)

let test_or_expansion () =
  let q =
    parse
      "SELECT e.name FROM employees e, departments d WHERE e.dept_id = \
       d.dept_id AND (e.salary > 7500 OR d.loc_id = 102)"
  in
  Alcotest.(check int) "one disjunction" 1
    (List.length (Transform.Or_expansion.objects (cat ()) q));
  let q' = Transform.Or_expansion.apply_all (cat ()) q in
  (match q' with
  | A.Setop (A.Union_all, _, _) -> ()
  | _ -> Alcotest.fail "expected union all");
  check_equiv ~msg:"OR expansion" q q'

let test_or_expansion_unknown_disjunct () =
  (* mgr_id IS NULL for some rows: the first disjunct evaluates to
     UNKNOWN there, and LNNVL must keep such rows in the second branch *)
  let q =
    parse
      "SELECT e.name FROM employees e WHERE e.mgr_id > 1003 OR e.salary > \
       7000"
  in
  check_equiv ~msg:"OR expansion with UNKNOWN" q
    (Transform.Or_expansion.apply_all (cat ()) q)

let test_or_expansion_preserves_duplicates () =
  (* overlapping disjuncts: rows satisfying both must appear once *)
  let q =
    parse
      "SELECT e.name FROM employees e WHERE e.salary > 4000 OR e.job_id = 3"
  in
  check_equiv ~msg:"OR expansion duplicates" q
    (Transform.Or_expansion.apply_all (cat ()) q)

(* ------------------------------------------------------------------ *)
(* Heuristic: join elimination                                          *)
(* ------------------------------------------------------------------ *)

let test_join_elim_fk () =
  let q =
    parse
      "SELECT e.name, e.salary FROM employees e, departments d WHERE \
       e.dept_id = d.dept_id"
  in
  let q' = Transform.Join_elim.apply (cat ()) q in
  (match q' with
  | A.Block b ->
      Alcotest.(check int) "departments eliminated" 1 (List.length b.A.from);
      (* dept_id is nullable: IS NOT NULL must have been added *)
      Alcotest.(check bool) "not-null guard added" true
        (List.exists
           (fun p -> match p with A.Not (A.Is_null _) -> true | _ -> false)
           b.A.where)
  | _ -> Alcotest.fail "expected block");
  check_equiv ~msg:"Q4 -> Q6" q q'

let test_join_elim_outer_unique () =
  let q =
    parse
      "SELECT e.name, e.salary FROM employees e LEFT OUTER JOIN departments \
       d ON e.dept_id = d.dept_id"
  in
  let q' = Transform.Join_elim.apply (cat ()) q in
  (match q' with
  | A.Block b -> Alcotest.(check int) "departments eliminated" 1 (List.length b.A.from)
  | _ -> Alcotest.fail "expected block");
  check_equiv ~msg:"Q5 -> Q6" q q'

let test_join_elim_blocked_by_reference () =
  (* d.dept_name is selected: join cannot be eliminated *)
  let q =
    parse
      "SELECT e.name, d.dept_name FROM employees e, departments d WHERE \
       e.dept_id = d.dept_id"
  in
  let q' = Transform.Join_elim.apply (cat ()) q in
  match q' with
  | A.Block b -> Alcotest.(check int) "no elimination" 2 (List.length b.A.from)
  | _ -> Alcotest.fail "expected block"

(* ------------------------------------------------------------------ *)
(* Heuristic: predicate move-around / group pruning                     *)
(* ------------------------------------------------------------------ *)

let test_predicate_pushdown_into_view () =
  let q =
    parse
      "SELECT v.dept_id, v.avg_sal FROM (SELECT e.dept_id, AVG(e.salary) \
       avg_sal FROM employees e GROUP BY e.dept_id) v WHERE v.dept_id = 12 \
       AND v.avg_sal > 4000"
  in
  let q' = Transform.Predicate_move.apply (cat ()) q in
  (match q' with
  | A.Block b -> (
      match (List.hd b.A.from).A.fe_source with
      | A.S_view (A.Block vb) ->
          Alcotest.(check bool) "group-key pred pushed to WHERE" true
            (vb.A.where <> []);
          Alcotest.(check bool) "agg pred pushed to HAVING" true
            (vb.A.having <> [])
      | _ -> Alcotest.fail "expected view")
  | _ -> Alcotest.fail "expected block");
  check_equiv ~msg:"predicate pushdown" q q'

let test_predicate_push_through_window_pby () =
  (* Q7 -> Q8: predicate on the PARTITION BY column pushes below the
     window function *)
  let q =
    parse
      "SELECT v.emp_id, v.rc FROM (SELECT j.emp_id, j.dept_id, COUNT(*) OVER \
       (PARTITION BY j.dept_id ORDER BY j.start_date) rc FROM job_history j) \
       v WHERE v.dept_id = 12"
  in
  let q' = Transform.Predicate_move.apply (cat ()) q in
  (match q' with
  | A.Block b -> (
      match (List.hd b.A.from).A.fe_source with
      | A.S_view (A.Block vb) ->
          Alcotest.(check bool) "pushed below window" true (vb.A.where <> [])
      | _ -> Alcotest.fail "expected view")
  | _ -> Alcotest.fail "expected block");
  check_equiv ~msg:"Q7 -> Q8" q q'

let test_predicate_not_pushed_through_window_oby () =
  (* predicate on a non-PBY column must NOT be pushed below the window *)
  let q =
    parse
      "SELECT v.emp_id, v.rc FROM (SELECT j.emp_id, j.dept_id, COUNT(*) OVER \
       (PARTITION BY j.dept_id ORDER BY j.start_date) rc FROM job_history j) \
       v WHERE v.emp_id = 1003"
  in
  let q' = Transform.Predicate_move.apply (cat ()) q in
  (match q' with
  | A.Block b -> (
      match (List.hd b.A.from).A.fe_source with
      | A.S_view (A.Block vb) ->
          Alcotest.(check bool) "not pushed" true (vb.A.where = [])
      | _ -> Alcotest.fail "expected view")
  | _ -> Alcotest.fail "expected block");
  check_equiv ~msg:"window oby barrier" q q'

let test_transitive_predicates () =
  let q =
    parse
      "SELECT e.name FROM employees e, departments d WHERE e.dept_id = \
       d.dept_id AND d.dept_id = 12"
  in
  let q' = Transform.Predicate_move.apply (cat ()) q in
  (match q' with
  | A.Block b ->
      Alcotest.(check bool) "derived e.dept_id = 12" true
        (List.exists
           (fun p ->
             match p with
             | A.Cmp (A.Eq, A.Col { A.c_alias = "e"; c_col = "dept_id" }, A.Const _) ->
                 true
             | _ -> false)
           b.A.where)
  | _ -> Alcotest.fail "expected block");
  check_equiv ~msg:"transitive" q q'

let test_group_prune () =
  let q =
    parse
      "SELECT v.dept_id, v.cnt FROM (SELECT e.dept_id, e.job_id, COUNT(*) \
       cnt, MAX(e.salary) mx FROM employees e WHERE e.job_id = 3 GROUP BY \
       e.dept_id, e.job_id) v WHERE v.dept_id > 10"
  in
  let q' = Transform.Group_prune.apply (cat ()) q in
  (match q' with
  | A.Block b -> (
      match (List.hd b.A.from).A.fe_source with
      | A.S_view (A.Block vb) ->
          Alcotest.(check int) "constant group key pruned" 1
            (List.length vb.A.group_by);
          Alcotest.(check bool) "unreferenced mx pruned" true
            (not
               (List.exists
                  (fun si -> String.equal si.A.si_name "mx")
                  vb.A.select))
      | _ -> Alcotest.fail "expected view")
  | _ -> Alcotest.fail "expected block");
  check_equiv ~msg:"group pruning" q q'

(* ------------------------------------------------------------------ *)
(* Heuristic: SPJ view merging                                          *)
(* ------------------------------------------------------------------ *)

let test_spj_view_merge () =
  let q =
    parse
      "SELECT v.name, d.dept_name FROM (SELECT e.name, e.dept_id FROM \
       employees e WHERE e.salary > 5000) v, departments d WHERE v.dept_id = \
       d.dept_id"
  in
  let q' = Transform.View_merge_spj.apply (cat ()) q in
  Alcotest.(check int) "one block after merge" 1 (blocks_of q');
  check_equiv ~msg:"SPJ merge" q q'

let test_spj_merge_single_table_semi () =
  (* heuristic subquery merge produces a single-table semi view shape *)
  let q =
    parse
      "SELECT e.name FROM employees e SEMI JOIN (SELECT d.dept_id FROM \
       departments d WHERE d.loc_id = 100) v ON e.dept_id = v.dept_id"
  in
  let q' = Transform.View_merge_spj.apply (cat ()) q in
  (match q' with
  | A.Block b ->
      Alcotest.(check bool) "view replaced by table" true
        (List.for_all
           (fun fe ->
             match fe.A.fe_source with A.S_table _ -> true | _ -> false)
           b.A.from)
  | _ -> Alcotest.fail "expected block");
  check_equiv ~msg:"single-table semi merge" q q'

let () =
  Alcotest.run "transform"
    [
      ( "unnest-merge",
        [
          Alcotest.test_case "EXISTS -> semijoin" `Quick test_merge_exists_semijoin;
          Alcotest.test_case "NOT IN null-aware" `Quick test_merge_not_in_null_aware;
          Alcotest.test_case "NOT IN plain anti" `Quick
            test_merge_not_in_non_null_plain_anti;
          Alcotest.test_case "ANY/ALL" `Quick test_merge_any_all;
          Alcotest.test_case "skips OR" `Quick test_merge_skips_or;
        ] );
      ( "unnest-view",
        [
          Alcotest.test_case "Q1 objects" `Quick test_unnest_view_objects;
          Alcotest.test_case "Q1 all states" `Quick test_unnest_view_states;
          Alcotest.test_case "agg -> gb view" `Quick test_unnest_agg_generates_gb_view;
          Alcotest.test_case "multi-table EXISTS" `Quick test_unnest_multitable_exists;
          Alcotest.test_case "multi-table NOT IN" `Quick test_unnest_multitable_not_in;
          Alcotest.test_case "count bug excluded" `Quick test_unnest_count_bug_excluded;
        ] );
      ( "gb-view-merge",
        [
          Alcotest.test_case "Q10 -> Q11" `Quick test_gb_view_merge_q10_q11;
          Alcotest.test_case "Q12 -> Q18 distinct" `Quick test_distinct_view_merge_q18;
        ] );
      ( "jppd",
        [
          Alcotest.test_case "Q12 -> Q13" `Quick test_jppd_distinct_to_semi_q13;
          Alcotest.test_case "group-by removal" `Quick test_jppd_groupby_removal;
          Alcotest.test_case "union-all view" `Quick test_jppd_union_all_view;
        ] );
      ( "gb-placement",
        [
          Alcotest.test_case "eager aggregation" `Quick test_gbp_eager_aggregation;
          Alcotest.test_case "AVG decomposition" `Quick test_gbp_avg_decomposition;
          Alcotest.test_case "distinct agg skipped" `Quick test_gbp_skips_distinct_agg;
        ] );
      ( "join-factorization",
        [
          Alcotest.test_case "Q14 -> Q15" `Quick test_join_factorization_q15;
          Alcotest.test_case "correlated variant" `Quick
            test_join_factorization_correlated_variant;
          Alcotest.test_case "opaque predicates" `Quick
            test_join_factorization_opaque_preds;
        ] );
      ( "predicate-pullup",
        [
          Alcotest.test_case "pullup under rownum" `Quick test_predicate_pullup;
          Alcotest.test_case "needs rownum" `Quick test_pullup_needs_rownum;
        ] );
      ( "setop-to-join",
        [
          Alcotest.test_case "minus/intersect" `Quick test_setop_to_join;
          Alcotest.test_case "null matching" `Quick test_setop_null_matching;
        ] );
      ( "or-expansion",
        [
          Alcotest.test_case "basic" `Quick test_or_expansion;
          Alcotest.test_case "unknown disjunct" `Quick test_or_expansion_unknown_disjunct;
          Alcotest.test_case "duplicates" `Quick test_or_expansion_preserves_duplicates;
        ] );
      ( "join-elimination",
        [
          Alcotest.test_case "FK join" `Quick test_join_elim_fk;
          Alcotest.test_case "outer unique" `Quick test_join_elim_outer_unique;
          Alcotest.test_case "blocked by reference" `Quick
            test_join_elim_blocked_by_reference;
        ] );
      ( "predicate-move / pruning",
        [
          Alcotest.test_case "pushdown into view" `Quick test_predicate_pushdown_into_view;
          Alcotest.test_case "through window PBY" `Quick
            test_predicate_push_through_window_pby;
          Alcotest.test_case "window OBY barrier" `Quick
            test_predicate_not_pushed_through_window_oby;
          Alcotest.test_case "transitive" `Quick test_transitive_predicates;
          Alcotest.test_case "group pruning" `Quick test_group_prune;
        ] );
      ( "spj-view-merge",
        [
          Alcotest.test_case "inner merge" `Quick test_spj_view_merge;
          Alcotest.test_case "single-table semi" `Quick test_spj_merge_single_table_semi;
        ] );
    ]
