(** Workload generator and runner tests: determinism, class mix, and —
    most importantly — end-to-end verification that for every generated
    query the CBQT-on and CBQT-off plans return identical results. *)

module QG = Workload.Query_gen
module SG = Workload.Schema_gen
module R = Workload.Runner

let build () = SG.build ~families:2 ~sample_frac:0.5 ~seed:42 ()

let test_schema_deterministic () =
  let _, s1 = build () in
  let _, s2 = build () in
  let names s =
    List.map (fun ti -> (ti.SG.ti_name, ti.SG.ti_rows)) s.SG.all_tables
  in
  Alcotest.(check (list (pair string int))) "same schema" (names s1) (names s2)

let test_data_deterministic () =
  let db1, _ = build () in
  let db2, _ = build () in
  Hashtbl.iter
    (fun name rel1 ->
      let rel2 = Storage.Db.relation db2 name in
      Alcotest.(check int)
        (name ^ " cardinality")
        (Storage.Relation.cardinality rel1)
        (Storage.Relation.cardinality rel2);
      Alcotest.(check bool) (name ^ " rows equal") true
        (rel1.Storage.Relation.r_rows = rel2.Storage.Relation.r_rows))
    db1.Storage.Db.rels

let test_queries_deterministic () =
  let _, schema = build () in
  let mk () =
    let g = QG.create ~seed:7 schema in
    List.map
      (fun it -> Sqlir.Pp.fingerprint it.QG.it_query)
      (QG.workload g 40)
  in
  Alcotest.(check (list string)) "same queries" (mk ()) (mk ())

let test_mix_fractions () =
  let _, schema = build () in
  let g = QG.create ~seed:11 schema in
  let items = QG.workload g 800 in
  let transformable =
    List.length
      (List.filter (fun it -> it.QG.it_class <> QG.C_spj) items)
  in
  let frac = float_of_int transformable /. 800. in
  Alcotest.(check bool)
    (Printf.sprintf "~8%% transformable (got %.1f%%)" (frac *. 100.))
    true
    (frac > 0.04 && frac < 0.14)

let test_all_classes_parse_and_run () =
  (* one query of every class: optimize under CBQT on and off; verify
     result equality *)
  let db, schema = build () in
  let g = QG.create ~seed:3 schema in
  let classes =
    [
      QG.C_spj; QG.C_exists; QG.C_not_exists; QG.C_in_multi; QG.C_not_in;
      QG.C_agg_subq; QG.C_gb_view; QG.C_distinct_view; QG.C_union_factor;
      QG.C_gbp; QG.C_or; QG.C_setop; QG.C_pullup;
    ]
  in
  let items =
    List.mapi
      (fun i cls ->
        g.QG.g_alias <- 0;
        { QG.it_id = i; it_class = cls; it_query = QG.generate g cls })
      classes
  in
  let o =
    R.run_pair ~verify:true db ~a:Cbqt.Driver.heuristic_config
      ~b:Cbqt.Driver.default_config items
  in
  List.iter
    (fun f ->
      Alcotest.failf "query %d (%s) failed: %s" f.R.f_id
        (QG.class_name f.f_class) f.f_error)
    o.R.failures;
  Alcotest.(check int) "all classes ran" (List.length classes)
    (List.length o.R.runs)

let test_small_workload_verified () =
  let db, schema = build () in
  let g = QG.create ~seed:5 schema in
  (* boost the transformable fraction so the verification covers them *)
  let mix =
    [
      (QG.C_spj, 0.4); (QG.C_exists, 0.07); (QG.C_not_exists, 0.05);
      (QG.C_in_multi, 0.06); (QG.C_not_in, 0.05); (QG.C_agg_subq, 0.07);
      (QG.C_gb_view, 0.06); (QG.C_distinct_view, 0.06);
      (QG.C_union_factor, 0.05); (QG.C_gbp, 0.05); (QG.C_or, 0.04);
      (QG.C_setop, 0.02); (QG.C_pullup, 0.02);
    ]
  in
  let items = QG.workload ~mix g 60 in
  let o =
    R.run_pair ~verify:true db ~a:Cbqt.Driver.heuristic_config
      ~b:Cbqt.Driver.default_config items
  in
  List.iter
    (fun f ->
      Alcotest.failf "query %d (%s) failed: %s" f.R.f_id
        (QG.class_name f.f_class) f.f_error)
    o.R.failures;
  let s = R.summarize o in
  Alcotest.(check int) "all ran" 60 s.R.sm_total

let test_summary_math () =
  (* synthetic runs: check bucket and degradation arithmetic *)
  let mk id wa wb changed =
    {
      R.rn_id = id;
      rn_class = QG.C_spj;
      rn_a =
        {
          R.s_cost = wa; s_work = wa; s_opt_seconds = 0.001; s_states = 1;
          s_blocks = 1; s_plan_fp = "a";
        };
      rn_b =
        {
          R.s_cost = wb; s_work = wb; s_opt_seconds = 0.002; s_states = 2;
          s_blocks = 1; s_plan_fp = (if changed then "b" else "a");
        };
      rn_plan_changed = changed;
      rn_rows = 0;
    }
  in
  let o =
    {
      R.runs =
        [ mk 0 100. 50. true; mk 1 10. 20. true; mk 2 1000. 1000. false ];
      failures = [];
    }
  in
  let s = R.summarize ~tops:[ 50; 100 ] o in
  Alcotest.(check int) "affected" 2 s.R.sm_affected;
  (* total affected: A=110, B=70 -> improvement (110-70)/70 = 57% *)
  Alcotest.(check bool)
    (Printf.sprintf "avg improvement %.1f" s.sm_avg_improvement_pct)
    true
    (abs_float (s.sm_avg_improvement_pct -. 57.14) < 0.1);
  Alcotest.(check (float 0.001)) "half degraded" 0.5 s.sm_degraded_frac;
  (* top 50% = 1 query (the 100-unit one): improvement 100% *)
  (match s.sm_buckets with
  | b :: _ ->
      Alcotest.(check int) "top bucket size" 1 b.R.bk_queries;
      Alcotest.(check (float 0.1)) "top bucket improvement" 100.
        b.bk_improvement_pct
  | [] -> Alcotest.fail "no buckets");
  Alcotest.(check bool) "opt time increased" true
    (s.sm_opt_time_increase_pct > 0.)

let () =
  Alcotest.run "workload"
    [
      ( "generation",
        [
          Alcotest.test_case "schema deterministic" `Quick test_schema_deterministic;
          Alcotest.test_case "data deterministic" `Quick test_data_deterministic;
          Alcotest.test_case "queries deterministic" `Quick test_queries_deterministic;
          Alcotest.test_case "mix fractions" `Quick test_mix_fractions;
        ] );
      ( "running",
        [
          Alcotest.test_case "all classes verified" `Slow
            test_all_classes_parse_and_run;
          Alcotest.test_case "small workload verified" `Slow
            test_small_workload_verified;
          Alcotest.test_case "summary math" `Quick test_summary_math;
        ] );
    ]
