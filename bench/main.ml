(** Benchmark harness: regenerates every table and figure of the
    paper's evaluation (Section 4).

    Sections (all run by default; select with [--only SECTION]):

    - [table1]  — Table 1: query blocks optimized across the state space
      of Q1, with and without cost-annotation reuse.
    - [table2]  — Table 2: optimization time and number of states for
      the heuristic / two-pass / linear / exhaustive strategies on a
      3-table query with four unnestable subqueries.
    - [figure2] — Figure 2: CBQT on vs. heuristic decisions over the
      full workload mix; relative improvement by top-N% buckets.
    - [figure3] — Figure 3: subquery unnesting disabled vs. cost-based,
      over a subquery-heavy slice.
    - [figure4] — Figure 4: join predicate pushdown disabled vs.
      cost-based, over a view-join slice.
    - [gbp]     — Section 4.3: group-by placement on vs. off.
    - [cache]   — plan-cache throughput: warm (soft parse) vs cold
      (full CBQT compile) over repeated parameterized statements, plus
      the stats-epoch invalidation path and the metrics-registry
      on/off overhead on the warm path (CI gates it at <= 5%;
      the domain-safe registry costs ~1 point over the old
      single-threaded one).
    - [observability] — trace aggregates (states/sec, cut-off share,
      span coverage), the Q-error distribution over every executed
      operator, and the wall-clock cost of leaving tracing on.
    - [query_store] — AWR-style per-fingerprint workload repository:
      shapes tracked, execution/row/meter totals, transformation
      accept counts, and per-operator Q-error aggregates from
      EXPLAIN-ANALYZE feedback.
    - [server] — concurrent-server QPS scaling over the domain worker
      pool (1/2/4(/8) workers, fresh pool each, warm passes), with
      per-count order-insensitive result digests checked against the
      1-worker run and the reported core count so CI can gate the
      4-worker speedup only on multi-core runners.
    - [parallel] — intra-query parallelism over partitioned fact
      tables: warm rows/sec at DOP 1/2/4(/8) vs the serial plans on a
      10x-scaled dataset, with rows and merged meters checked
      bit-identical at every DOP, plus the costed-pruning scan ratio
      (partition-key-selective scan with the prune spec on vs off).

    "Execution time" is metered work units (see {!Exec.Meter});
    "optimization time" is wall clock. Absolute values are not
    comparable with the paper's Oracle testbed; the reproduced artifact
    is the {e shape}: who wins, by roughly what factor, and where the
    crossovers fall. EXPERIMENTS.md records paper-vs-measured. *)

module QG = Workload.Query_gen
module SG = Workload.Schema_gen
module R = Workload.Runner
module D = Cbqt.Driver

let seed = ref 2006
let scale = ref 1.0
let only = ref ""
let json = ref false

(* statistics sampling fraction: smaller samples mean noisier NDV and
   range estimates, hence more cost mis-estimation — the mechanism
   behind the paper's degraded queries (Section 4.2) *)
let sample = ref 0.05

let section name = Fmt.pr "@.========== %s ==========@." name

(* ------------------------------------------------------------------ *)
(* JSON output (--json writes BENCH_cbqt.json)                          *)
(* ------------------------------------------------------------------ *)

(* one object per section; values are pre-rendered JSON literals *)
let json_sections : (string * (string * string) list) list ref = ref []

(* fields the currently running section wants in its JSON object *)
let section_fields : (string * string) list ref = ref []

let jadd key value = section_fields := !section_fields @ [ (key, value) ]
let jint n = string_of_int n
let jfloat f = if Float.is_finite f then Printf.sprintf "%.3f" f else "null"
let jbool b = if b then "true" else "false"
let jobj fields =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields)
  ^ "}"

let write_json path =
  let oc = open_out path in
  output_string oc
    (jobj
       (List.map (fun (name, fields) -> (name, jobj fields)) !json_sections));
  output_string oc "\n";
  close_out oc;
  Fmt.pr "@.wrote %s@." path

(** [--only] takes a comma-separated list of section names. *)
let selected name =
  !only = ""
  || List.exists (String.equal name) (String.split_on_char ',' !only)

let run_section name f =
  if selected name then (
    section name;
    section_fields := [];
    let t0 = Unix.gettimeofday () in
    f ();
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    json_sections :=
      !json_sections
      @ [ (name, !section_fields @ [ ("wall_ms", jfloat wall_ms) ]) ])

(* ------------------------------------------------------------------ *)
(* Table 1: cost-annotation reuse                                       *)
(* ------------------------------------------------------------------ *)

let q1_sql =
  "SELECT e1.name, j.job_id FROM employees e1, job_history j WHERE e1.emp_id \
   = j.emp_id AND j.start_date > DATE 10400 AND e1.salary > (SELECT \
   AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e1.dept_id) AND \
   e1.dept_id IN (SELECT d.dept_id FROM departments d, locations l WHERE \
   d.loc_id = l.loc_id AND l.country_id = 'US')"

let table1 () =
  let module Opt = Planner.Optimizer in
  let db = Workload.Demo.hr_db ~size:4 () in
  let cat = db.Storage.Db.cat in
  let q1 = Sqlparse.Parser.parse_exn cat q1_sql in
  let states =
    [ [ false; false ]; [ true; false ]; [ false; true ]; [ true; true ] ]
  in
  Fmt.pr
    "Optimizing the four unnesting states of Q1 (two subqueries, three query \
     blocks per state).@.@.";
  let plan_str (ann : Planner.Annotation.t) =
    Fmt.str "%a" (Exec.Plan.pp ~indent:0) ann.Planner.Annotation.an_plan
  in
  (* separate optimizer per state; optionally a shared fingerprint
     cache across states (the pre-incremental Section 3.4.2 device) *)
  let count ~reuse =
    let shared = Hashtbl.create 32 in
    List.fold_left
      (fun (total, best) mask ->
        let q = Transform.Unnest_view.apply_mask cat q1 mask in
        let opt =
          if reuse then Opt.create ~annot_cache:shared cat else Opt.create cat
        in
        let ann = Opt.optimize opt q in
        let best =
          match best with
          | Some (c, _) when c <= ann.Planner.Annotation.an_cost -> best
          | _ -> Some (ann.Planner.Annotation.an_cost, plan_str ann)
        in
        (total + Opt.blocks_optimized opt, best))
      (0, None) states
  in
  (* incremental costing: ONE optimizer across the whole state space —
     identity-cache reuse for untouched blocks plus the cost cut-off
     aborting hopeless states mid-block *)
  let count_incremental () =
    let opt = Opt.create ~annot_cache:(Hashtbl.create 32) cat in
    let best = ref None in
    List.iter
      (fun mask ->
        let touched = ref Sqlir.Walk.Sset.empty in
        let q = Transform.Unnest_view.apply_mask ~touched cat q1 mask in
        let is_base = not (List.exists Fun.id mask) in
        Opt.set_dirty opt (if is_base then None else Some !touched);
        Opt.set_cost_cap opt
          (match !best with Some (c, _) -> Some c | None -> None);
        (match Opt.optimize opt q with
        | ann -> (
            match !best with
            | Some (c, _) when c <= ann.Planner.Annotation.an_cost -> ()
            | _ -> best := Some (ann.Planner.Annotation.an_cost, plan_str ann))
        | exception Opt.Cost_cap_exceeded -> ()
        | exception Opt.Unsupported _ -> ());
        Opt.set_cost_cap opt None;
        Opt.set_dirty opt None)
      states;
    (opt, !best)
  in
  let without_reuse, best_plain = count ~reuse:false in
  let with_reuse, best_reuse = count ~reuse:true in
  let opt_inc, best_inc = count_incremental () in
  let incremental = Opt.blocks_optimized opt_inc in
  let st = Opt.stats opt_inc in
  Fmt.pr "%-28s %s@." "" "query blocks optimized";
  Fmt.pr "%-28s %d@." "without annotation reuse" without_reuse;
  Fmt.pr "%-28s %d@." "with annotation reuse" with_reuse;
  Fmt.pr "%-28s %d  (+%d reused by identity, %d by fingerprint, %d states \
          aborted mid-block)@."
    "incremental costing" incremental
    st.Planner.Opt_stats.ident_hits st.Planner.Opt_stats.fp_hits
    (Planner.Opt_stats.blocks_aborted st);
  Fmt.pr "(paper, Table 1: 12 vs 8)@.";
  (* all three accountings must elect the same winner *)
  let cost_of = function Some (c, _) -> c | None -> nan in
  let plans_identical =
    match (best_plain, best_reuse, best_inc) with
    | Some (c1, p1), Some (c2, p2), Some (c3, p3) ->
        c1 = c2 && c2 = c3 && String.equal p1 p2 && String.equal p2 p3
    | _ -> false
  in
  if not plans_identical then
    Fmt.pr
      "WARNING: winners differ across accounting modes (%.3f / %.3f / %.3f)@."
      (cost_of best_plain) (cost_of best_reuse) (cost_of best_inc)
  else Fmt.pr "winning plan and cost identical across all three modes@.";
  if not (incremental < with_reuse) then
    Fmt.pr "WARNING: incremental costing (%d) not below annotation reuse (%d)@."
      incremental with_reuse;
  jadd "states" (jint (List.length states));
  jadd "blocks_without_reuse" (jint without_reuse);
  jadd "blocks_with_reuse" (jint with_reuse);
  jadd "blocks_incremental" (jint incremental);
  jadd "ident_hits" (jint st.Planner.Opt_stats.ident_hits);
  jadd "fp_hits" (jint st.Planner.Opt_stats.fp_hits);
  jadd "blocks_aborted" (jint (Planner.Opt_stats.blocks_aborted st));
  jadd "best_cost" (jfloat (cost_of best_inc));
  jadd "plans_identical" (jbool plans_identical)

(* ------------------------------------------------------------------ *)
(* Table 2: search strategies                                           *)
(* ------------------------------------------------------------------ *)

(** The paper's Table 2 query: three base tables and four subqueries
    (NOT IN / EXISTS / NOT EXISTS / IN), each over three base tables,
    all valid for unnesting. *)
let table2_query (schema : SG.t) =
  let fams = schema.SG.families in
  let f0 = List.nth fams 0
  and f1 = List.nth fams (min 1 (List.length fams - 1)) in
  let fact0 = List.hd f0.SG.fam_facts in
  let mid0 = f0.SG.fam_mid in
  let dim0 = List.hd f0.SG.fam_dims in
  let open Sqlir.Ast in
  let sub i kind =
    let fact = List.hd f1.SG.fam_facts in
    let mid = f1.SG.fam_mid in
    let dim = List.hd f1.SG.fam_dims in
    let fa = Printf.sprintf "s%da" i
    and ma = Printf.sprintf "s%db" i
    and da = Printf.sprintf "s%dc" i in
    let mid_fk, _, _ = List.hd mid.SG.ti_fks in
    let body sel =
      Block
        {
          (empty_block (Printf.sprintf "t2s%d" i)) with
          select = sel;
          from =
            [
              { fe_alias = fa; fe_source = S_table fact.SG.ti_name; fe_kind = J_inner; fe_cond = [] };
              { fe_alias = ma; fe_source = S_table mid.SG.ti_name; fe_kind = J_inner; fe_cond = [] };
              { fe_alias = da; fe_source = S_table dim.SG.ti_name; fe_kind = J_inner; fe_cond = [] };
            ];
          where =
            [
              Cmp (Eq, col fa "mid_id", col ma "id");
              Cmp (Eq, col ma mid_fk, col da "id");
              Cmp (Eq, col fa "code", col "f" "code");
              Cmp
                ( Gt,
                  col da "rank_no",
                  Const (Sqlir.Value.Int (2000 + (i * 1500))) );
            ];
        }
    in
    match kind with
    | `In ->
        In_subq ([ col "f" "id" ], body [ { si_expr = col fa "id"; si_name = "x" } ])
    | `Not_in ->
        Not_in_subq
          ([ col "f" "id" ], body [ { si_expr = col fa "id"; si_name = "x" } ])
    | `Exists ->
        Exists (body [ { si_expr = Const (Sqlir.Value.Int 1); si_name = "x" } ])
    | `Not_exists ->
        Not_exists
          (body [ { si_expr = Const (Sqlir.Value.Int 1); si_name = "x" } ])
  in
  let mid_fk, _, _ = List.hd mid0.SG.ti_fks in
  Block
    {
      (empty_block "t2main") with
      select = [ { si_expr = col "f" "m1"; si_name = "o0" } ];
      from =
        [
          { fe_alias = "f"; fe_source = S_table fact0.SG.ti_name; fe_kind = J_inner; fe_cond = [] };
          { fe_alias = "m"; fe_source = S_table mid0.SG.ti_name; fe_kind = J_inner; fe_cond = [] };
          { fe_alias = "d"; fe_source = S_table dim0.SG.ti_name; fe_kind = J_inner; fe_cond = [] };
        ];
      where =
        [
          Cmp (Eq, col "f" "mid_id", col "m" "id");
          Cmp (Eq, col "m" mid_fk, col "d" "id");
          sub 0 `Not_in;
          sub 1 `Exists;
          sub 2 `Not_exists;
          sub 3 `In;
        ];
    }

let table2 () =
  let db, schema = SG.build ~families:2 ~sample_frac:0.3 ~seed:!seed () in
  let cat = db.Storage.Db.cat in
  let q = table2_query schema in
  let n_objects = List.length (Transform.Unnest_view.objects cat q) in
  Fmt.pr "query: 3 base tables, %d unnestable subqueries@.@." n_objects;
  let strategies =
    [
      ("heuristic", None, true);
      ("two-pass", Some Cbqt.Search.Two_pass, true);
      ("linear", Some Cbqt.Search.Linear, true);
      ("exhaustive", Some Cbqt.Search.Exhaustive, true);
      (* same search, annotation reuse disabled: what the Section 3.4.2
         caches buy on the exhaustive state space *)
      ("exhaustive-nomemo", Some Cbqt.Search.Exhaustive, false);
    ]
  in
  let config_of force memo =
    match force with
    | None -> { D.heuristic_config with unnest = D.D_heuristic; memo }
    | Some s ->
        {
          D.default_config with
          policy = { Cbqt.Policy.default with force = Some s };
          interleave = false;
          juxtapose = false;
          memo;
        }
  in
  (* one Bechamel test per strategy; OLS on the monotonic clock gives a
     robust per-run optimization time *)
  let tests =
    List.map
      (fun (name, force, memo) ->
        let config = config_of force memo in
        Bechamel.Test.make ~name
          (Bechamel.Staged.stage (fun () -> ignore (D.optimize ~config cat q))))
      strategies
  in
  let grouped = Bechamel.Test.make_grouped ~name:"table2" tests in
  let cfg_b =
    Bechamel.Benchmark.cfg ~limit:200
      ~quota:(Bechamel.Time.second 0.4) ~stabilize:false ()
  in
  let raw =
    Bechamel.Benchmark.all cfg_b
      [ Bechamel.Toolkit.Instance.monotonic_clock ]
      grouped
  in
  let ols =
    Bechamel.Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Bechamel.Measure.run |]
  in
  let results =
    Bechamel.Analyze.all ols Bechamel.Toolkit.Instance.monotonic_clock raw
  in
  Fmt.pr "%-18s %12s %8s %8s %8s@." "" "opt. time" "#states" "#blocks"
    "#reused";
  let exh_ms = ref nan and nomemo_ms = ref nan in
  List.iter
    (fun (name, force, memo) ->
      let rp =
        (D.optimize ~config:(config_of force memo) cat q).D.res_report
      in
      let states =
        match force with
        | None -> 1
        | Some _ ->
            List.fold_left
              (fun acc st ->
                if st.D.sr_name = "unnest" then max acc st.sr_states else acc)
              1 rp.D.rp_steps
      in
      let time_ns =
        match Hashtbl.find_opt results ("table2/" ^ name) with
        | Some est -> (
            match Bechamel.Analyze.OLS.estimates est with
            | Some (t :: _) -> t
            | _ -> nan)
        | None -> nan
      in
      let time_ms = time_ns /. 1e6 in
      if name = "exhaustive" then exh_ms := time_ms;
      if name = "exhaustive-nomemo" then nomemo_ms := time_ms;
      Fmt.pr "%-18s %10.2fms %8d %8d %8d@." name time_ms states
        rp.D.rp_blocks_optimized rp.D.rp_cache_hits;
      jadd name
        (jobj
           [
             ("time_ms", jfloat time_ms);
             ("states", jint states);
             ("blocks_optimized", jint rp.D.rp_blocks_optimized);
             ("ident_hits", jint rp.D.rp_ident_hits);
             ("fp_hits", jint rp.D.rp_fp_hits);
             ("states_cutoff", jint rp.D.rp_states_cutoff);
             ("dp_pruned", jint rp.D.rp_dp_pruned);
           ]))
    strategies;
  if Float.is_finite !exh_ms && Float.is_finite !nomemo_ms then
    if !exh_ms < !nomemo_ms then
      Fmt.pr "annotation reuse saves %.0f%% of exhaustive optimization time@."
        (100. *. (1. -. (!exh_ms /. !nomemo_ms)))
    else
      Fmt.pr "WARNING: exhaustive with reuse (%.2fms) not faster than \
              without (%.2fms)@."
        !exh_ms !nomemo_ms;
  Fmt.pr
    "(paper, Table 2: heuristic 0.24s/1, two-pass 0.33s/2, linear 0.61s/5, \
     exhaustive 0.97s/16)@."

(* ------------------------------------------------------------------ *)
(* Workload experiments (Figures 2-4, Section 4.3)                      *)
(* ------------------------------------------------------------------ *)

let scaled n = max 20 (int_of_float (float_of_int n *. !scale))

let run_experiment ~name ~paper ~n ~mix ~config_a ~config_b () =
  let db, schema = SG.build ~families:4 ~sample_frac:!sample ~seed:!seed () in
  let g = QG.create ~seed:(!seed lxor 0xBEEF) schema in
  let items = QG.workload ~mix g n in
  Fmt.pr "%d queries (%s)@." n name;
  let o = R.run_pair db ~a:config_a ~b:config_b items in
  if o.R.failures <> [] then (
    Fmt.pr "note: %d queries failed and were skipped:@."
      (List.length o.failures);
    List.iter
      (fun f ->
        Fmt.pr "  #%d %s: %s@." f.R.f_id (QG.class_name f.f_class) f.f_error)
      o.failures);
  let s = R.summarize o in
  Fmt.pr "%a" R.pp_summary s;
  Fmt.pr "(paper: %s)@." paper;
  jadd "queries" (jint n);
  jadd "failures" (jint (List.length o.R.failures));
  s

let figure2 () =
  ignore
    (run_experiment ~name:"full mix; CBQT heuristic vs cost-based"
       ~paper:
         "2.45% of workload affected; avg +20%; top5 +27%, top25 +18%; 18% \
          of affected degraded ~40%; opt time +40%"
       ~n:(scaled 900) ~mix:QG.default_mix ~config_a:D.heuristic_config
       ~config_b:D.default_config ())

(* a subquery-heavy mix for the unnesting experiment *)
let unnest_mix =
  [
    (QG.C_spj, 0.25);
    (QG.C_exists, 0.17);
    (QG.C_not_exists, 0.1);
    (QG.C_in_multi, 0.16);
    (QG.C_not_in, 0.1);
    (QG.C_agg_subq, 0.22);
  ]

let figure3 () =
  let off = { D.default_config with unnest = D.D_off } in
  ignore
    (run_experiment ~name:"subquery slice; unnesting disabled vs cost-based"
       ~paper:
         "5% of workload affected; avg +387%; top5 +460%, top25 +350%; 15% \
          degraded ~50%; opt time +31%"
       ~n:(scaled 300) ~mix:unnest_mix ~config_a:off
       ~config_b:D.default_config ())

let jppd_mix =
  [ (QG.C_spj, 0.3); (QG.C_gb_view, 0.35); (QG.C_distinct_view, 0.35) ]

let figure4 () =
  let off = { D.default_config with jppd = D.D_off; gb_merge = D.D_off } in
  let on = { D.default_config with gb_merge = D.D_off } in
  ignore
    (run_experiment ~name:"view-join slice; JPPD disabled vs cost-based"
       ~paper:
         "0.75% of workload affected; avg +23%; top5 +15%, top25 +23% \
          (cheaper queries benefit more); 11% degraded ~15%; opt time +7%"
       ~n:(scaled 300) ~mix:jppd_mix ~config_a:off ~config_b:on ())

let gbp_mix = [ (QG.C_spj, 0.3); (QG.C_gbp, 0.7) ]

let gbp () =
  let off = { D.default_config with gbp = D.D_off } in
  ignore
    (run_experiment ~name:"aggregation slice; GBP off vs cost-based"
       ~paper:
         "~2000 queries affected; avg +21%; a few queries improved >200% / \
          >1000%"
       ~n:(scaled 250) ~mix:gbp_mix ~config_a:off ~config_b:D.default_config
       ())

(* ------------------------------------------------------------------ *)
(* Plan cache: soft- vs hard-parse throughput                           *)
(* ------------------------------------------------------------------ *)

(* optimizer-heavy classes, so compile time (what the cache removes)
   dominates over execution *)
let cache_mix =
  [
    (QG.C_spj, 0.2);
    (QG.C_exists, 0.2);
    (QG.C_in_multi, 0.2);
    (QG.C_agg_subq, 0.2);
    (QG.C_gb_view, 0.2);
  ]

(** Warm-cache vs cold-compile throughput over repeated parameterized
    statements: [shapes] query shapes, each instantiated as several
    literal variants (same structural fingerprint, different
    constants). Cold runs every statement through the full CBQT
    pipeline; warm runs them through {!Service} with a populated plan
    cache, so every statement soft-parses. A statistics refresh at the
    end exercises the epoch-based invalidation path. *)
let cache () =
  let module Fp = Sqlir.Fingerprint in
  let module V = Sqlir.Value in
  (* small rows: this section measures the parse path, not execution *)
  let db, schema =
    SG.build ~families:2 ~sample_frac:!sample ~row_scale:0.04 ~seed:!seed ()
  in
  let g = QG.create ~seed:(!seed lxor 0xCAFE) schema in
  let shapes = scaled 40 in
  let variants = 5 in
  let items = QG.workload ~mix:cache_mix g shapes in
  let all_queries =
    List.concat_map
      (fun it ->
        let pq, extracted = Fp.parameterize it.QG.it_query in
        List.init variants (fun j ->
            let binds =
              Array.of_list
                (List.map
                   (function V.Int n -> V.Int (n + j) | v -> v)
                   extracted)
            in
            Fp.instantiate pq binds))
      items
  in
  let config =
    { Service.default_config with Service.capacity = 4 * shapes }
  in
  let svc = Service.create ~config db in
  (* warm-up pass: populates the cache (one miss per shape) and drops
     the few shapes the pipeline cannot compile, identically for both
     measured paths *)
  let queries =
    List.filter
      (fun q ->
        match Service.exec_ir svc q [] with
        | _ -> true
        | exception _ -> false)
      all_queries
  in
  let n = List.length queries in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun q ->
      let res = D.optimize db.Storage.Db.cat q in
      ignore
        (Exec.Executor.execute db
           res.D.res_annotation.Planner.Annotation.an_plan))
    queries;
  let cold_s = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  List.iter (fun q -> ignore (Service.exec_ir svc q [])) queries;
  let warm_s = Unix.gettimeofday () -. t0 in
  (* metrics-registry overhead on the warm path: interleaved best-of-5
     measurements with the process-wide gate off vs on, each
     calibrated to >= 100ms of work so the delta sits above timer
     noise (same methodology as the trace-overhead measurement) *)
  let module Mx = Obs.Metrics in
  let pass () =
    List.iter (fun q -> ignore (Service.exec_ir svc q [])) queries
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  (* fine-grained interleaving: one pass with the gate off, one with
     it on, repeated until each side accumulates ~1s of work. Adjacent
     passes see near-identical CPU/GC conditions, so slow drift
     cancels. The gated figure is the MEDIAN of the per-pair on/off
     ratios: a scheduler or GC burst lands inside individual passes
     and skews only the pairs it straddles — those become outliers the
     median discards, where a ratio of sums (or best-of-N blocks)
     absorbs them at full weight. *)
  ignore (timed pass);
  let pairs =
    let t1 = timed pass in
    max 25 (min 20_000 (int_of_float (1.0 /. Float.max 1e-6 t1)))
  in
  let ratios = Array.make pairs 1. in
  let total_off = ref 0. and total_on = ref 0. in
  for i = 0 to pairs - 1 do
    Mx.enabled := false;
    let off = timed pass in
    Mx.enabled := true;
    let on = timed pass in
    total_off := !total_off +. off;
    total_on := !total_on +. on;
    ratios.(i) <- on /. Float.max 1e-9 off
  done;
  Mx.enabled := true;
  let stmts = float_of_int (n * pairs) in
  let metrics_off_qps = stmts /. Float.max 1e-9 !total_off in
  let metrics_on_qps = stmts /. Float.max 1e-9 !total_on in
  let metrics_overhead =
    Array.sort compare ratios;
    ratios.(pairs / 2) -. 1.
  in
  (* statistics refresh: every table's stats epoch bumps, so each shape
     recompiles once (the cost-delta guard may keep the old plan) *)
  Storage.Stats_gather.analyze db;
  let reval = ref 0 and inval = ref 0 in
  List.iter
    (fun q ->
      match (Service.exec_ir svc q []).Service.r_outcome with
      | Service.Revalidated -> incr reval
      | Service.Invalidated -> incr inval
      | Service.Hit | Service.Miss -> ())
    queries;
  let rp = Service.report svc in
  let cold_qps = float_of_int n /. Float.max 1e-9 cold_s in
  let warm_qps = float_of_int n /. Float.max 1e-9 warm_s in
  let speedup = warm_qps /. Float.max 1e-9 cold_qps in
  Fmt.pr
    "%d statements (%d shapes x %d literal variants, %d compilable)@.@."
    (List.length all_queries) shapes variants n;
  Fmt.pr "cold (full CBQT each):  %8.1f qps (%.1f ms)@." cold_qps
    (1000. *. cold_s);
  Fmt.pr "warm (plan cache):      %8.1f qps (%.1f ms)  -> %.1fx@." warm_qps
    (1000. *. warm_s) speedup;
  Fmt.pr "metrics overhead (warm): off %8.1f qps, on %8.1f qps -> %+.2f%%@."
    metrics_off_qps metrics_on_qps
    (100. *. metrics_overhead);
  if metrics_overhead > 0.05 then
    Fmt.pr "WARNING: metrics overhead %.2f%% above the 5%% gate@."
      (100. *. metrics_overhead);
  Fmt.pr
    "soft parse avg %.1f us (%d), hard parse avg %.1f us (%d), hit rate \
     %.2f@."
    rp.Service.sv_soft_avg_us rp.Service.sv_soft_parses
    rp.Service.sv_hard_avg_us rp.Service.sv_hard_parses rp.Service.sv_hit_rate;
  Fmt.pr
    "stats refresh: %d invalidations (%d plans replaced, %d kept by the \
     cost-delta guard)@."
    rp.Service.sv_invalidations !inval !reval;
  Fmt.pr "%a" Service.pp_report rp;
  if speedup < 5. then
    Fmt.pr "WARNING: warm-cache speedup %.1fx below the 5x target@." speedup;
  jadd "statements" (jint n);
  jadd "shapes" (jint shapes);
  jadd "variants" (jint variants);
  jadd "cold_qps" (jfloat cold_qps);
  jadd "warm_qps" (jfloat warm_qps);
  jadd "speedup" (jfloat speedup);
  jadd "hit_rate" (jfloat rp.Service.sv_hit_rate);
  jadd "soft_parse_avg_us" (jfloat rp.Service.sv_soft_avg_us);
  jadd "hard_parse_avg_us" (jfloat rp.Service.sv_hard_avg_us);
  jadd "soft_parses" (jint rp.Service.sv_soft_parses);
  jadd "hard_parses" (jint rp.Service.sv_hard_parses);
  jadd "invalidations" (jint rp.Service.sv_invalidations);
  jadd "plans_replaced" (jint !inval);
  jadd "plans_kept_by_guard" (jint !reval);
  jadd "evictions" (jint rp.Service.sv_evictions);
  jadd "fp_collisions" (jint rp.Service.sv_collisions);
  jadd "cache_entries" (jint rp.Service.sv_entries);
  jadd "cache_memory_words" (jint rp.Service.sv_memory_words);
  jadd "metrics_off_qps" (jfloat metrics_off_qps);
  jadd "metrics_on_qps" (jfloat metrics_on_qps);
  jadd "metrics_overhead" (jfloat metrics_overhead)

(* ------------------------------------------------------------------ *)
(* Query store: AWR-style per-fingerprint workload repository           *)
(* ------------------------------------------------------------------ *)

(** A mixed workload run twice through {!Service} with analyze
    feedback on, then a dump of what the per-fingerprint store
    accumulated: shapes tracked, execution and row totals, the
    transformation accept counts from hard parses, and the Q-error
    aggregates that single out mis-estimated shapes. Every emitted key
    is wall-clock free, so for a fixed seed and scale the section is a
    committed, bit-stable baseline. *)
let query_store () =
  let module Mx = Obs.Metrics in
  let module Qs = Obs.Query_store in
  Mx.reset Mx.default;
  let db, schema = SG.build ~families:2 ~sample_frac:0.3 ~seed:!seed () in
  let g = QG.create ~seed:(!seed lxor 0x51C2) schema in
  let items = QG.workload g (scaled 60) in
  let config = { Service.default_config with Service.feedback = true } in
  let svc = Service.create ~config db in
  let passes = 2 in
  for _ = 1 to passes do
    List.iter
      (fun it ->
        try ignore (Service.exec_ir svc it.QG.it_query []) with _ -> ())
      items
  done;
  let st = Service.query_store svc in
  let es = Qs.entries st in
  let sum f = List.fold_left (fun acc e -> acc + f e) 0 es in
  let execs = sum (fun e -> e.Qs.qe_execs) in
  let rows = sum (fun e -> e.Qs.qe_rows) in
  let tx_attempts = ref 0 and tx_accepts = ref 0 in
  List.iter
    (fun e ->
      Hashtbl.iter
        (fun _ (att, acc) ->
          tx_attempts := !tx_attempts + att;
          tx_accepts := !tx_accepts + acc)
        e.Qs.qe_tx)
    es;
  let qerr_entries = List.filter (fun e -> e.Qs.qe_qerr_n > 0) es in
  let qerr_max =
    List.fold_left
      (fun acc e -> Float.max acc e.Qs.qe_qerr_max)
      0. qerr_entries
  in
  Fmt.pr "%s@." (Qs.report_string ~top_n:5 st);
  Fmt.pr "workload: %d shapes x %d passes -> %d executions, %d rows@."
    (List.length items) passes execs rows;
  Fmt.pr
    "transformations: %d attempts, %d accepted; worst q-error %.2f over %d \
     shapes with feedback@."
    !tx_attempts !tx_accepts qerr_max
    (List.length qerr_entries);
  jadd "fingerprints" (jint (Qs.length st));
  jadd "store_evictions" (jint (Qs.evictions st));
  jadd "executions" (jint execs);
  jadd "rows" (jint rows);
  jadd "soft_parses" (jint (sum (fun e -> e.Qs.qe_soft)));
  jadd "hard_parses" (jint (sum (fun e -> e.Qs.qe_hard)));
  jadd "vec_pipelines" (jint (sum (fun e -> e.Qs.qe_vec_pipelines)));
  jadd "row_pipelines" (jint (sum (fun e -> e.Qs.qe_row_pipelines)));
  jadd "tx_attempts" (jint !tx_attempts);
  jadd "tx_accepts" (jint !tx_accepts);
  jadd "qerr_shapes" (jint (List.length qerr_entries));
  jadd "qerr_max" (jfloat qerr_max)

(* ------------------------------------------------------------------ *)
(* Observability: trace aggregates + Q-error distribution               *)
(* ------------------------------------------------------------------ *)

(** Aggregate view of what {!Obs.Trace} and {!Cbqt.Explain} report over
    a workload: search throughput (states/sec), the cut-off share, span
    coverage of the optimization wall clock, the cardinality-estimation
    Q-error distribution over every executed operator, and the cost of
    leaving tracing enabled (Full vs Off wall clock). *)
let observability () =
  let db, schema = SG.build ~families:2 ~sample_frac:0.3 ~seed:!seed () in
  let cat = db.Storage.Db.cat in
  let g = QG.create ~seed:!seed schema in
  let n = scaled 60 in
  let items = QG.workload g n in
  let full_config = { D.default_config with trace = Obs.Trace.Full } in
  let states = ref 0
  and cut = ref 0
  and errored = ref 0
  and mismatches = ref 0 in
  let wall = ref 0.
  and covs = ref [] in
  let results =
    List.filter_map
      (fun it ->
        match
          let t0 = Unix.gettimeofday () in
          let res = D.optimize ~config:full_config cat it.QG.it_query in
          (res, Unix.gettimeofday () -. t0)
        with
        | res, w ->
            let rp = res.D.res_report in
            states := !states + rp.D.rp_states_total;
            cut := !cut + rp.D.rp_states_cutoff;
            errored := !errored + rp.D.rp_states_errored;
            wall := !wall +. w;
            covs := Obs.Trace.root_coverage res.D.res_trace :: !covs;
            (match D.report_consistent rp res.D.res_trace with
            | Ok () -> ()
            | Error e ->
                incr mismatches;
                Fmt.pr "WARNING: q%d trace/report mismatch: %s@."
                  it.QG.it_id e);
            Some res
        | exception _ -> None)
      items
  in
  let mean_cov =
    List.fold_left ( +. ) 0. !covs /. float_of_int (max 1 (List.length !covs))
  in
  let states_per_sec = float_of_int !states /. Float.max 1e-9 !wall in
  let cutoff_share = float_of_int !cut /. float_of_int (max 1 !states) in
  Fmt.pr
    "%d/%d queries traced: %d states in %.1f ms (%.0f states/sec), cut-off \
     share %.1f%%, %d errored, mean span coverage %.1f%%, %d trace/report \
     mismatches@."
    (List.length results) n !states (1000. *. !wall) states_per_sec
    (100. *. cutoff_share) !errored (100. *. mean_cov) !mismatches;
  (* Q-error over every executed operator of every final plan *)
  let qes =
    List.concat_map
      (fun res ->
        match
          Cbqt.Explain.analyze db
            res.D.res_annotation.Planner.Annotation.an_plan
        with
        | ex ->
            List.filter_map
              (fun o ->
                if Float.is_nan o.Cbqt.Explain.op_q_error then None
                else Some o.Cbqt.Explain.op_q_error)
              ex.Cbqt.Explain.ex_ops
        | exception _ -> [])
      results
  in
  let sorted = Array.of_list (List.sort compare qes) in
  let pct p =
    let n = Array.length sorted in
    if n = 0 then nan
    else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let p50 = pct 0.5 and p90 = pct 0.9 in
  let qmax = if sorted = [||] then nan else sorted.(Array.length sorted - 1) in
  Fmt.pr
    "cardinality accuracy over %d operators: q-error p50 %.2f, p90 %.2f, \
     max %.1f@."
    (Array.length sorted) p50 p90 qmax;
  (* what does leaving tracing on cost? *)
  let time config =
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun it -> try ignore (D.optimize ~config cat it.QG.it_query) with _ -> ())
      items;
    Unix.gettimeofday () -. t0
  in
  let t_off = time { D.default_config with trace = Obs.Trace.Off } in
  let t_full = time full_config in
  Fmt.pr "tracing overhead: off %.1f ms, full %.1f ms (+%.1f%%)@."
    (1000. *. t_off) (1000. *. t_full)
    (100. *. ((t_full /. Float.max 1e-9 t_off) -. 1.));
  jadd "queries" (jint n);
  jadd "traced" (jint (List.length results));
  jadd "states" (jint !states);
  jadd "states_per_sec" (jfloat states_per_sec);
  jadd "cutoff_share" (jfloat cutoff_share);
  jadd "states_errored" (jint !errored);
  jadd "mean_span_coverage" (jfloat mean_cov);
  jadd "report_trace_mismatches" (jint !mismatches);
  jadd "qerr_operators" (jint (Array.length sorted));
  jadd "qerr_p50" (jfloat p50);
  jadd "qerr_p90" (jfloat p90);
  jadd "qerr_max" (jfloat qmax);
  jadd "trace_off_ms" (jfloat (1000. *. t_off));
  jadd "trace_full_ms" (jfloat (1000. *. t_full))

(* ------------------------------------------------------------------ *)
(* Executor: block-at-a-time vs list-at-a-time throughput               *)
(* ------------------------------------------------------------------ *)

(** Execution throughput of the batch engine against {!Exec.Baseline},
    the list-at-a-time interpreter it replaced. Both engines charge the
    same meter (differentially tested), so [rows_out] — the total rows
    flowing out of operators — is identical by construction and serves
    as the workload size: rows/sec cold (first pass) and warm (best of
    three), bytes allocated per row via [Gc.allocated_bytes] deltas,
    and a batch-size sweep showing throughput as blocks grow from
    tuple-at-a-time (1) to cache-friendly sizes. *)
let executor () =
  let db, schema = SG.build ~families:2 ~sample_frac:!sample ~seed:!seed () in
  let cat = db.Storage.Db.cat in
  let g = QG.create ~seed:(!seed lxor 0xBA7C) schema in
  (* the headline workload is pure scan/filter/join — the shapes the
     streaming engine targets *)
  let mix = [ (QG.C_spj, 1.0) ] in
  let items = QG.workload ~mix g (scaled 30) in
  let plans =
    List.filter_map
      (fun it ->
        match D.optimize cat it.QG.it_query with
        | res -> Some res.D.res_annotation.Planner.Annotation.an_plan
        | exception _ -> None)
      items
  in
  let pass exec =
    let meter = Exec.Meter.create () in
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    List.iter (fun p -> exec meter p) plans;
    let t = Unix.gettimeofday () -. t0 in
    let bytes = Gc.allocated_bytes () -. a0 in
    (meter.Exec.Meter.rows_out, t, bytes)
  in
  let measure exec =
    let rows, cold_s, _ = pass exec in
    (rows, cold_s)
  in
  let batch m p = ignore (Exec.Executor.execute ~meter:m db p) in
  let base m p = ignore (Exec.Baseline.execute ~meter:m db p) in
  (* start from a compacted heap so earlier sections' garbage doesn't
     skew the GC costs being compared *)
  Gc.compact ();
  let brows, bcold = measure batch in
  let lrows, lcold = measure base in
  (* warm passes alternate between the engines so load drift on the
     host penalizes both equally; best-of-5 per engine *)
  let bwarm = ref Float.infinity
  and bbytes = ref Float.infinity
  and lwarm = ref Float.infinity
  and lbytes = ref Float.infinity in
  for _ = 1 to 5 do
    let _, t, by = pass batch in
    if t < !bwarm then bwarm := t;
    if by < !bbytes then bbytes := by;
    let _, t, by = pass base in
    if t < !lwarm then lwarm := t;
    if by < !lbytes then lbytes := by
  done;
  let bwarm = !bwarm
  and bbytes = !bbytes
  and lwarm = !lwarm
  and lbytes = !lbytes in
  let rps rows s = float_of_int rows /. Float.max 1e-9 s in
  let bpr rows bytes = bytes /. Float.max 1. (float_of_int rows) in
  let speedup = rps brows bwarm /. Float.max 1e-9 (rps lrows lwarm) in
  (* warm best-of-3 per size: a single pass is dominated by GC phase
     noise and misreported the large sizes badly. The row path favors
     small-to-mid blocks (row-pointer working sets fall out of L1/L2 as
     blocks grow); the vectorized path is insensitive, its segments
     being typed arrays. 256 is the default as the flattest compromise. *)
  let sweep =
    List.map
      (fun batch_size ->
        let one () =
          let _, t, _ =
            pass (fun m p ->
                ignore (Exec.Executor.execute ~meter:m ~batch_size db p))
          in
          t
        in
        let best = ref (one ()) in
        for _ = 1 to 2 do
          let t = one () in
          if t < !best then best := t
        done;
        (batch_size, rps brows !best))
      [ 1; 16; 256; 1024 ]
  in
  Fmt.pr "%d plans; %d operator rows out per pass (engines agree: %b)@.@."
    (List.length plans) brows (brows = lrows);
  Fmt.pr "baseline (row lists):  cold %10.0f rows/s, warm %10.0f rows/s, \
          %6.1f bytes/row@."
    (rps lrows lcold) (rps lrows lwarm) (bpr lrows lbytes);
  Fmt.pr "batch (blocks of 256): cold %10.0f rows/s, warm %10.0f rows/s, \
          %6.1f bytes/row@."
    (rps brows bcold) (rps brows bwarm) (bpr brows bbytes);
  Fmt.pr "warm speedup: %.2fx@." speedup;
  List.iter
    (fun (s, r) -> Fmt.pr "  batch size %4d: %10.0f rows/s@." s r)
    sweep;
  if brows <> lrows then
    Fmt.pr "WARNING: engines disagree on rows_out (%d vs %d)@." brows lrows;
  if speedup < 2. then
    Fmt.pr "WARNING: batch executor speedup %.2fx below the 2x target@."
      speedup;
  jadd "plans" (jint (List.length plans));
  jadd "rows_out_per_pass" (jint brows);
  jadd "engines_agree" (jbool (brows = lrows));
  jadd "baseline_cold_rows_per_sec" (jfloat (rps lrows lcold));
  jadd "baseline_warm_rows_per_sec" (jfloat (rps lrows lwarm));
  jadd "baseline_bytes_per_row" (jfloat (bpr lrows lbytes));
  jadd "batch_cold_rows_per_sec" (jfloat (rps brows bcold));
  jadd "batch_warm_rows_per_sec" (jfloat (rps brows bwarm));
  jadd "batch_bytes_per_row" (jfloat (bpr brows bbytes));
  jadd "warm_speedup" (jfloat speedup);
  jadd "batch_size_sweep"
    (jobj
       (List.map (fun (s, r) -> (string_of_int s, jfloat r)) sweep));
  (* -- scan/filter/aggregate: the vectorized engine's headline -------
     Single-table pipelines (filter, project, ungrouped aggregate) over
     every large table, run through all four engine configurations.
     These are exactly the shapes the columnar engine claims; joins and
     grouped aggregation stay on the row path and are covered by the
     headline workload above. *)
  let module P = Exec.Plan in
  let module A = Sqlir.Ast in
  let module Val = Sqlir.Value in
  let col a c = { A.c_alias = a; A.c_col = c } in
  let sfa_plans =
    Hashtbl.fold
      (fun _ r acc ->
        let n = Storage.Relation.cardinality r in
        if n < 1000 then acc
        else
          let name = r.Storage.Relation.r_name in
          let sch = r.Storage.Relation.r_schema in
          let rows = r.Storage.Relation.r_rows in
          (* a numeric column with a mid-table cutoff: ~half the rows
             survive, so the selection vector is genuinely sparse *)
          let j =
            let rec go j =
              if j >= Array.length sch then 0
              else
                match rows.(0).(j) with
                | Val.Int _ | Val.Float _ -> j
                | _ -> go (j + 1)
            in
            go 0
          in
          let cutoff = rows.(n / 2).(j) in
          let cn = col name sch.(j) in
          let scan = P.Table_scan { table = name; alias = name; filter = [] } in
          let filt =
            P.Filter
              { child = scan; preds = [ A.Cmp (A.Gt, A.Col cn, A.Const cutoff) ] }
          in
          let proj =
            P.Project { child = filt; alias = name; items = [ (A.Col cn, "v") ] }
          in
          let agg =
            P.Aggregate
              {
                child = filt;
                strategy = `Hash;
                alias = name;
                keys = [];
                aggs =
                  [
                    ("s", A.Sum, Some (A.Col cn), false);
                    ("n", A.Count_star, None, false);
                  ];
              }
          in
          filt :: proj :: agg :: acc)
      db.Storage.Db.rels []
  in
  let hints =
    (* each per-plan estimate answers only for its own nodes (physical
       identity), so probing them in turn composes into one [card_of] *)
    let fns = List.map (Planner.Plan_est.pipeline_hints cat) sfa_plans in
    fun p -> List.find_map (fun h -> h p) fns
  in
  let sfa_pass exec =
    let meter = Exec.Meter.create () in
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    List.iter (fun p -> exec meter p) sfa_plans;
    let t = Unix.gettimeofday () -. t0 in
    (meter, t, Gc.allocated_bytes () -. a0)
  in
  let engines =
    [
      ("baseline", fun m p -> ignore (Exec.Baseline.execute ~meter:m db p));
      ( "row",
        fun m p ->
          ignore (Exec.Executor.execute ~meter:m ~engine:Exec.Executor.Row db p) );
      ( "vector",
        fun m p ->
          ignore
            (Exec.Executor.execute ~meter:m ~engine:Exec.Executor.Vector db p) );
      ( "auto",
        fun m p ->
          ignore
            (Exec.Executor.execute ~meter:m ~engine:Exec.Executor.Auto
               ~card_of:hints db p) );
    ]
  in
  let va0 = Exec.Meter.vec_alloc_bytes () in
  (* agreement first (also warms the columnar image cache): every
     engine must produce the same meter, field by field *)
  let meters = List.map (fun (n, e) -> (n, sfa_pass e)) engines in
  let ref_fields =
    match meters with (_, (m, _, _)) :: _ -> Exec.Meter.to_fields m | [] -> []
  in
  let sfa_agree =
    List.for_all (fun (_, (m, _, _)) -> Exec.Meter.to_fields m = ref_fields) meters
  in
  let sfa_rows =
    match meters with (_, (m, _, _)) :: _ -> m.Exec.Meter.rows_out | [] -> 0
  in
  Gc.compact ();
  let warm =
    let best = List.map (fun (n, _) -> (n, ref (Float.infinity, Float.infinity))) engines in
    for _ = 1 to 5 do
      List.iter
        (fun (n, e) ->
          let _, t, by = sfa_pass e in
          let bt, bb = !(List.assoc n best) in
          List.assoc n best := (Float.min bt t, Float.min bb by))
        engines
    done;
    List.map (fun (n, r) -> (n, !r)) best
  in
  let wrps n = rps sfa_rows (fst (List.assoc n warm)) in
  let wbpr n = bpr sfa_rows (snd (List.assoc n warm)) in
  let sfa_speedup = wrps "vector" /. Float.max 1e-9 (wrps "row") in
  let auto_vs_best =
    wrps "auto" /. Float.max 1e-9 (Float.max (wrps "row") (wrps "vector"))
  in
  Fmt.pr
    "@.scan/filter/aggregate (%d plans, %d rows out; engines agree: %b)@."
    (List.length sfa_plans) sfa_rows sfa_agree;
  List.iter
    (fun (n, _) ->
      Fmt.pr "  %-8s warm %10.0f rows/s, %6.1f bytes/row@." n (wrps n) (wbpr n))
    engines;
  Fmt.pr "  vector/row speedup %.2fx (target >= 2x); auto/best %.2f@."
    sfa_speedup auto_vs_best;
  if sfa_speedup < 2. then
    Fmt.pr "WARNING: vectorized sfa speedup %.2fx below the 2x target@."
      sfa_speedup;
  jadd "sfa_plans" (jint (List.length sfa_plans));
  jadd "sfa_rows_out_per_pass" (jint sfa_rows);
  jadd "sfa_engines_agree" (jbool sfa_agree);
  List.iter
    (fun (n, _) ->
      jadd ("sfa_" ^ n ^ "_warm_rows_per_sec") (jfloat (wrps n));
      jadd ("sfa_" ^ n ^ "_bytes_per_row") (jfloat (wbpr n)))
    engines;
  jadd "sfa_vector_speedup" (jfloat sfa_speedup);
  jadd "sfa_auto_vs_best" (jfloat auto_vs_best);
  jadd "sfa_vec_alloc_bytes" (jint (Exec.Meter.vec_alloc_bytes () - va0))

(* ------------------------------------------------------------------ *)
(* Server: QPS scaling over the domain worker pool                      *)
(* ------------------------------------------------------------------ *)

(** Warm-cache throughput of the concurrent server as the worker count
    grows. Each worker count gets a fresh pool (its own shared cache
    and store) over the same database and statement list: a warm-up
    pass populates the cache, then several timed passes of blocking
    submits measure steady-state QPS. Correctness rides along: the
    order-insensitive digest of every pass must match the 1-worker
    digest, and with blocking admission nothing may be rejected or
    timed out. Scaling beyond 1x needs actual cores — the emitted
    [cores] field lets downstream gates (CI) skip the speedup check on
    starved runners. *)
let server () =
  let module Sv = Server in
  let module Pc = Service.Plan_cache in
  let db, schema =
    SG.build ~families:2 ~sample_frac:!sample ~row_scale:0.04 ~seed:!seed ()
  in
  let g = QG.create ~seed:(!seed lxor 0x5E4E) schema in
  let items = QG.workload ~mix:cache_mix g (scaled 30) in
  (* drop the few shapes the pipeline cannot compile, identically for
     every worker count *)
  let svc = Service.create db in
  let stmts =
    List.filter_map
      (fun it ->
        match Service.exec_ir svc it.QG.it_query [] with
        | _ -> Some (Sv.Ir it.QG.it_query)
        | exception _ -> None)
      items
  in
  let n = List.length stmts in
  let cores = Domain.recommended_domain_count () in
  let counts = [ 1; 2; 4 ] @ (if cores >= 8 then [ 8 ] else []) in
  let passes = 5 in
  let runs =
    List.map
      (fun workers ->
        let pool =
          Sv.create ~config:{ Sv.default_config with Sv.workers } db
        in
        let se = Sv.session pool in
        let digest = Sv.outcomes_digest (Sv.run_batch pool se stmts) in
        (* warm now: every timed pass soft-parses *)
        let t0 = Unix.gettimeofday () in
        let digests_ok = ref true in
        for _ = 1 to passes do
          let os = Sv.run_batch pool se stmts in
          if Sv.outcomes_digest os <> digest then digests_ok := false
        done;
        let wall = Unix.gettimeofday () -. t0 in
        Sv.shutdown pool;
        let rp = Sv.report pool in
        let qps = float_of_int (passes * n) /. Float.max 1e-9 wall in
        (workers, qps, digest, !digests_ok, rp))
      counts
  in
  let qps_of w =
    List.find_map
      (fun (w', qps, _, _, _) -> if w = w' then Some qps else None)
      runs
    |> Option.value ~default:nan
  in
  let speedup_4w = qps_of 4 /. Float.max 1e-9 (qps_of 1) in
  let digests_equal =
    match runs with
    | (_, _, d0, ok0, _) :: rest ->
        ok0 && List.for_all (fun (_, _, d, ok, _) -> ok && d = d0) rest
    | [] -> true
  in
  let lost =
    List.fold_left
      (fun acc (_, _, _, _, rp) ->
        acc + rp.Sv.rp_failed + rp.Sv.rp_rejected + rp.Sv.rp_timed_out)
      0 runs
  in
  Fmt.pr "%d statements, %d passes per worker count, %d cores@.@." n passes
    cores;
  List.iter
    (fun (w, qps, digest, _, rp) ->
      Fmt.pr
        "  %d worker%s: %8.1f qps (%.2fx), digest %016x, hit rate %.2f@." w
        (if w = 1 then " " else "s")
        qps
        (qps /. Float.max 1e-9 (qps_of 1))
        digest rp.Sv.rp_hit_rate)
    runs;
  Fmt.pr "4-worker speedup: %.2fx; digests equal: %b; lost requests: %d@."
    speedup_4w digests_equal lost;
  if (not digests_equal) || lost > 0 then
    Fmt.pr "WARNING: multi-worker runs are not result-identical@."
  else if cores >= 4 && speedup_4w < 2.5 then
    Fmt.pr "WARNING: 4-worker speedup %.2fx below the 2.5x target@."
      speedup_4w
  else if cores < 4 then
    Fmt.pr "(single-core host: speedup target not applicable)@.";
  jadd "statements" (jint n);
  jadd "passes" (jint passes);
  jadd "cores" (jint cores);
  List.iter
    (fun (w, qps, _, _, _) ->
      jadd (Printf.sprintf "qps_%dw" w) (jfloat qps))
    runs;
  jadd "speedup_4w" (jfloat speedup_4w);
  jadd "digests_equal" (jbool digests_equal);
  jadd "lost_requests" (jint lost)

(* ------------------------------------------------------------------ *)
(* Parallel: partition-parallel execution and costed pruning            *)
(* ------------------------------------------------------------------ *)

(** Intra-query parallelism over partitioned fact tables: the DOP
    post-pass wraps scan / two-phase-aggregation / co-located-join
    regions in exchanges, and the same statement list runs at DOP
    1/2/4(/8) against the serial plans. Correctness is the headline:
    rows must be bit-identical to the serial plans at every DOP, and
    the merged meters must not depend on the DOP at all (the plan
    determines the metered work; domains only split it). Throughput is
    warm best-of-3 rows/sec per DOP; [Domain.recommended_domain_count]
    clamps the degree, so on starved runners every DOP collapses to 1
    and the emitted [cores] field lets CI skip the speedup gate.
    Pruning rides along: the same partition-key-selective scan with and
    without its prune spec, gated on identical rows and on scanning
    under half the partitions' rows. *)
let parallel () =
  let module P = Exec.Plan in
  let module A = Sqlir.Ast in
  let module Par = Planner.Parallel in
  let module Val = Sqlir.Value in
  (* 10x at full scale; floored well above the base size so the CI
     smoke still gives each domain real scan work *)
  let row_scale = Float.max 8.0 (10. *. !scale) in
  let db, _ =
    SG.build ~families:2 ~sample_frac:!sample ~row_scale ~partitions:8
      ~seed:!seed ()
  in
  let cat = db.Storage.Db.cat in
  (* fixed statements over the always-present f0 family: a plain
     filtered scan, two group-bys (two-phase split), and a fact-mid
     join on the co-location keys *)
  let sqls =
    [
      "SELECT f.id, f.m1 FROM f0_fact0 f WHERE f.m1 > 2000";
      "SELECT f.status_c, SUM(f.m1), COUNT(f.id) FROM f0_fact0 f GROUP BY \
       f.status_c";
      "SELECT f.region, SUM(f.m2), COUNT(f.id) FROM f0_fact0 f WHERE f.m1 > \
       500 GROUP BY f.region";
      "SELECT f.id, m.status FROM f0_fact0 f, f0_mid m WHERE f.mid_id = m.id \
       AND f.m2 < 8000";
    ]
  in
  let plans =
    List.filter_map
      (fun sql ->
        match D.optimize cat (Sqlparse.Parser.parse_exn cat sql) with
        | res -> Some res.D.res_annotation.Planner.Annotation.an_plan
        | exception _ -> None)
      sqls
  in
  let pass plans =
    let meter = Exec.Meter.create () in
    let es = Exec.Executor.engine_stats_create () in
    let t0 = Unix.gettimeofday () in
    let rowss =
      List.map
        (fun p ->
          let _, rows, _ =
            Exec.Executor.execute ~meter ~engine_stats:es db p
          in
          rows)
        plans
    in
    let t = Unix.gettimeofday () -. t0 in
    (rowss, meter, es, t)
  in
  let warm plans =
    let rowss, meter, es, t0 = pass plans in
    let best = ref t0 in
    for _ = 1 to 2 do
      let _, _, _, t = pass plans in
      if t < !best then best := t
    done;
    (rowss, meter, es, !best)
  in
  let cores = Domain.recommended_domain_count () in
  let dops = [ 1; 2; 4 ] @ (if cores >= 8 then [ 8 ] else []) in
  let ser_rowss, ser_meter, _, ser_t = warm plans in
  let runs =
    List.map
      (fun d ->
        let plans_d =
          List.map (Par.apply cat ~dop:(Par.Fixed d)) plans
        in
        let rowss, meter, es, t = warm plans_d in
        (d, rowss, meter, es, t))
      dops
  in
  let rows_out = ser_meter.Exec.Meter.rows_out in
  let rps t = float_of_int rows_out /. Float.max 1e-9 t in
  let results_agree =
    List.for_all (fun (_, rowss, _, _, _) -> rowss = ser_rowss) runs
  in
  let meters_agree =
    match runs with
    | (_, _, m0, _, _) :: rest ->
        List.for_all (fun (_, _, m, _, _) -> m = m0) rest
    | [] -> true
  in
  let t_of d =
    List.find_map
      (fun (d', _, _, _, t) -> if d = d' then Some t else None)
      runs
    |> Option.value ~default:nan
  in
  let speedup = rps (t_of 4) /. Float.max 1e-9 (rps (t_of 1)) in
  let observed_dop =
    List.fold_left
      (fun acc (_, _, _, es, _) -> max acc es.Exec.Executor.es_dop)
      0 runs
  in
  (* -- costed partition pruning: hash-eq on the partition key --------
     Same scan, same filter, prune spec on vs off: rows must match,
     and the pruned scan reads only the key's own partition. *)
  let fact = "f0_fact0" in
  let key = A.Col { A.c_alias = "f"; A.c_col = "mid_id" } in
  let v = A.Const (Val.Int 5) in
  let mk prune =
    P.Part_scan
      { table = fact; alias = "f"; filter = [ A.Cmp (A.Eq, key, v) ]; prune }
  in
  let run1 p =
    let meter = Exec.Meter.create () in
    let es = Exec.Executor.engine_stats_create () in
    let _, rows, _ = Exec.Executor.execute ~meter ~engine_stats:es db p in
    (rows, meter, es)
  in
  let rows_p, m_p, es_p = run1 (mk (P.Pr_eq v)) in
  let rows_u, m_u, _ = run1 (mk P.Pr_none) in
  let prune_agree = rows_p = rows_u in
  let prune_scan_ratio =
    float_of_int m_p.Exec.Meter.rows_scanned
    /. Float.max 1. (float_of_int m_u.Exec.Meter.rows_scanned)
  in
  let parts_total =
    es_p.Exec.Executor.es_parts_scanned + es_p.Exec.Executor.es_parts_pruned
  in
  Fmt.pr "%d plans; %d operator rows out per pass; %d cores@.@."
    (List.length plans) rows_out cores;
  Fmt.pr "  serial: %10.0f rows/s@." (rps ser_t);
  List.iter
    (fun (d, _, _, _, t) ->
      Fmt.pr "  dop %d:  %10.0f rows/s (%.2fx)@." d (rps t)
        (rps t /. Float.max 1e-9 (rps (t_of 1))))
    runs;
  Fmt.pr
    "dop-4 speedup: %.2fx (target >= 2x on >= 4 cores); rows agree: %b; \
     meters dop-invariant: %b@."
    speedup results_agree meters_agree;
  Fmt.pr
    "pruning: %d/%d partitions scanned, %.1f%% of rows, results agree: %b@."
    es_p.Exec.Executor.es_parts_scanned parts_total
    (100. *. prune_scan_ratio) prune_agree;
  if (not results_agree) || not meters_agree then
    Fmt.pr "WARNING: parallel execution is not bit-identical to serial@."
  else if cores >= 4 && speedup < 2. then
    Fmt.pr "WARNING: dop-4 speedup %.2fx below the 2x target@." speedup
  else if cores < 4 then
    Fmt.pr "(single-core host: speedup target not applicable)@.";
  jadd "plans" (jint (List.length plans));
  jadd "rows_out_per_pass" (jint rows_out);
  jadd "cores" (jint cores);
  jadd "serial_rows_per_sec" (jfloat (rps ser_t));
  List.iter
    (fun (d, _, _, _, t) ->
      jadd (Printf.sprintf "rows_per_sec_dop%d" d) (jfloat (rps t)))
    runs;
  jadd "parallel_speedup" (jfloat speedup);
  jadd "parallel_results_agree" (jbool results_agree);
  jadd "meters_dop_invariant" (jbool meters_agree);
  jadd "observed_dop" (jint observed_dop);
  jadd "prune_parts_scanned" (jint es_p.Exec.Executor.es_parts_scanned);
  jadd "prune_parts_total" (jint parts_total);
  jadd "prune_scan_ratio" (jfloat prune_scan_ratio);
  jadd "prune_results_agree" (jbool prune_agree)

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        parse rest
    | "--only" :: v :: rest ->
        only := v;
        parse rest
    | "--sample" :: v :: rest ->
        sample := float_of_string v;
        parse rest
    | "--json" :: rest ->
        json := true;
        parse rest
    | _ :: rest -> parse rest
    | [] -> ()
  in
  parse (List.tl args);
  Fmt.pr
    "Cost-Based Query Transformation in Oracle (VLDB'06) — evaluation \
     reproduction@.seed=%d scale=%.2f sample=%.2f@."
    !seed !scale !sample;
  run_section "table1" table1;
  run_section "table2" table2;
  run_section "figure2" figure2;
  run_section "figure3" figure3;
  run_section "figure4" figure4;
  run_section "gbp" gbp;
  run_section "cache" cache;
  run_section "query_store" query_store;
  run_section "observability" observability;
  run_section "executor" executor;
  run_section "server" server;
  run_section "parallel" parallel;
  if !json then write_json "BENCH_cbqt.json";
  Fmt.pr "@.done.@."
