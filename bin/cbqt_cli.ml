(** Command-line front end: parse a SQL query against the demo HR-like
    schema (or a generated workload schema), run it through the CBQT
    pipeline, and show the transformed query tree, the chosen physical
    plan, the transformation report, and optionally the results.

    Examples:

    {v
    dune exec bin/cbqt_cli.exe -- explain "SELECT ..."
    dune exec bin/cbqt_cli.exe -- run --mode heuristic "SELECT ..."
    dune exec bin/cbqt_cli.exe -- schema
    v} *)

open Cmdliner
module A = Sqlir.Ast
module V = Sqlir.Value

(* ------------------------------------------------------------------ *)
(* Demo database: the paper's HR-style schema, generated rows          *)
(* ------------------------------------------------------------------ *)

(* mid and fact tables are partitioned (8 ways) so [--dop] has a real
   surface: pruning and Exchange plans are visible out of the box *)
let demo_db () : Storage.Db.t =
  let db, _ =
    Workload.Schema_gen.build ~families:2 ~sample_frac:0.3 ~partitions:8
      ~seed:2006 ()
  in
  db

let mode_conv =
  Arg.enum
    [
      ("cost", `Cost);
      ("heuristic", `Heuristic);
      ("none", `None);
    ]

let engine_conv =
  Arg.enum
    [
      ("auto", Exec.Executor.Auto);
      ("row", Exec.Executor.Row);
      ("vector", Exec.Executor.Vector);
    ]

let engine_arg =
  Arg.(
    value
    & opt engine_conv Exec.Executor.Auto
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "execution engine: $(b,auto) picks row or vectorized per pipeline \
           from the planner's cardinality estimates, $(b,row) and \
           $(b,vector) force one path (results do not depend on it)")

let dop_conv =
  let parse s =
    match Planner.Parallel.dop_of_string s with
    | Some d -> Ok d
    | None ->
        Error (`Msg (Printf.sprintf "invalid dop %S (serial | auto | N)" s))
  in
  Arg.conv
    (parse, fun ppf d -> Fmt.string ppf (Planner.Parallel.dop_to_string d))

let dop_arg =
  Arg.(
    value
    & opt dop_conv Planner.Parallel.Serial
    & info [ "dop" ] ~docv:"DOP"
        ~doc:
          "degree of parallelism: $(b,serial) leaves plans untouched, a \
           number $(b,N) wraps eligible partitioned regions in exchange \
           operators running $(docv) OCaml domains, $(b,auto) sizes the \
           degree from estimated scan volume and the machine's core count \
           (results and work meters do not depend on it)")

let config_of_mode ?(check = false) mode =
  let base =
    match mode with
    | `Cost -> Some Cbqt.Driver.default_config
    | `Heuristic -> Some Cbqt.Driver.heuristic_config
    | `None -> None
  in
  Option.map
    (fun c -> { c with Cbqt.Driver.check = c.Cbqt.Driver.check || check })
    base

let check_flag =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Sanitizer mode: re-run the IR well-formedness checker after \
           every transformation and every search state, and lint the final \
           plan (same as CBQT_CHECK=1).")

(** Static IR findings for the untransformed tree (used by $(b,--check)
    with $(b,--mode none) and by the $(b,check) subcommand). *)
let report_ir_findings cat q : int =
  let ds = Analysis.Ir_check.check cat q in
  List.iter (fun d -> Fmt.epr "%s@." (Analysis.Diagnostics.to_string d)) ds;
  List.length (Analysis.Diagnostics.errors ds)

let with_query sql f =
  let db = demo_db () in
  match Sqlparse.Parser.parse db.Storage.Db.cat sql with
  | Error msg ->
      Fmt.epr "parse error: %s@." msg;
      1
  | Ok q -> f db q

let explain_cmd =
  let sql = Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL") in
  let mode =
    Arg.(value & opt mode_conv `Cost & info [ "mode" ] ~doc:"cost | heuristic | none")
  in
  let no_exec =
    Arg.(
      value & flag
      & info [ "no-exec" ]
          ~doc:
            "Skip execution: show only the transformed query and the plan, \
             without the per-operator actual rows / Q-error table.")
  in
  let run sql mode check no_exec engine dop =
    with_query sql (fun db q ->
        let plan =
          match config_of_mode ~check mode with
          | Some config ->
              let res = Cbqt.Driver.optimize ~config db.Storage.Db.cat q in
              Fmt.pr "-- transformed query tree --@.%s@.@."
                (Sqlir.Pp.query_to_string res.Cbqt.Driver.res_query);
              Fmt.pr "-- transformation report --@.%a@." Cbqt.Driver.pp_report
                res.res_report;
              Fmt.pr "-- physical plan (cost %.1f, est. rows %.1f) --@.%s@."
                res.res_annotation.Planner.Annotation.an_cost
                res.res_annotation.an_rows
                (Exec.Plan.to_string res.res_annotation.an_plan);
              res.res_annotation.an_plan
          | None ->
              if check then
                ignore (report_ir_findings db.Storage.Db.cat q);
              let opt = Planner.Optimizer.create db.Storage.Db.cat in
              let ann = Planner.Optimizer.optimize opt q in
              Fmt.pr "-- physical plan (no transformation; cost %.1f) --@.%s@."
                ann.Planner.Annotation.an_cost
                (Exec.Plan.to_string ann.an_plan);
              ann.an_plan
        in
        let plan =
          let p = Planner.Parallel.apply db.Storage.Db.cat ~dop plan in
          if p != plan then
            Fmt.pr "@.-- parallel plan (dop %s) --@.%s@."
              (Planner.Parallel.dop_to_string dop)
              (Exec.Plan.to_string p);
          p
        in
        if not no_exec then (
          let ex = Cbqt.Explain.analyze ~engine db plan in
          Fmt.pr "@.-- explain analyze --@.%a" Cbqt.Explain.pp ex);
        0)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the transformed query and its plan, then execute it and \
          report estimated vs. actual rows and Q-error per operator")
    Term.(
      const run $ sql $ mode $ check_flag $ no_exec $ engine_arg $ dop_arg)

let trace_cmd =
  let sql = Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL") in
  let mode =
    Arg.(value & opt mode_conv `Cost & info [ "mode" ] ~doc:"cost | heuristic")
  in
  let level_conv =
    Arg.enum [ ("steps", Obs.Trace.Steps); ("full", Obs.Trace.Full) ]
  in
  let level =
    Arg.(
      value
      & opt level_conv Obs.Trace.Full
      & info [ "level" ]
          ~doc:
            "steps (one span per transformation attempt) | full (adds \
             per-state, per-costing and per-block spans)")
  in
  let sink_conv =
    Arg.enum [ ("pretty", `Pretty); ("jsonl", `Jsonl); ("chrome", `Chrome) ]
  in
  let sink =
    Arg.(
      value & opt sink_conv `Pretty
      & info [ "sink" ]
          ~doc:
            "pretty (console span tree) | jsonl (one JSON object per span) \
             | chrome (chrome://tracing / Perfetto trace-event JSON)")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"write the sink output to $(docv)")
  in
  let validate =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "check the span-tree invariants (and, with --sink jsonl, the \
             emitted document against the schema); exit non-zero on any \
             violation")
  in
  let workload =
    Arg.(
      value
      & opt (some int) None
      & info [ "workload" ] ~docv:"N"
          ~doc:"trace $(docv) generated workload queries instead of SQL")
  in
  let seed =
    Arg.(value & opt int 2006 & info [ "seed" ] ~doc:"workload seed")
  in
  let run sql mode level sink out validate workload seed check =
    let config =
      match config_of_mode ~check mode with
      | Some c -> { c with Cbqt.Driver.trace = level }
      | None ->
          Fmt.epr "trace: --mode none has nothing to trace@.";
          exit 2
    in
    let traced name cat q =
      let t0 = Unix.gettimeofday () in
      let res = Cbqt.Driver.optimize ~config cat q in
      let wall = Unix.gettimeofday () -. t0 in
      (name, res, wall)
    in
    let runs =
      match (workload, sql) with
      | Some n, _ ->
          let db, schema =
            Workload.Schema_gen.build ~families:2 ~sample_frac:0.3 ~seed ()
          in
          let g = Workload.Query_gen.create ~seed schema in
          List.map
            (fun it ->
              traced
                (Fmt.str "q%d[%s]" it.Workload.Query_gen.it_id
                   (Workload.Query_gen.class_name it.Workload.Query_gen.it_class))
                db.Storage.Db.cat it.Workload.Query_gen.it_query)
            (Workload.Query_gen.workload g n)
      | None, Some sql ->
          let db = demo_db () in
          (match Sqlparse.Parser.parse db.Storage.Db.cat sql with
          | Error msg ->
              Fmt.epr "parse error: %s@." msg;
              exit 1
          | Ok q -> [ traced "query" db.Storage.Db.cat q ])
      | None, None ->
          Fmt.epr "trace: need SQL or --workload N@.";
          exit 2
    in
    let traces = List.map (fun (_, r, _) -> r.Cbqt.Driver.res_trace) runs in
    let emit doc =
      match out with
      | None -> print_string doc
      | Some f ->
          let oc = open_out f in
          output_string oc doc;
          close_out oc;
          Fmt.epr "wrote %s (%d bytes)@." f (String.length doc)
    in
    let jsonl_doc () =
      String.concat "" (List.map Obs.Trace.to_jsonl traces)
    in
    (match sink with
    | `Pretty ->
        List.iter
          (fun (name, res, _) ->
            Fmt.pr "== %s ==@.%a" name Obs.Trace.pp_tree
              res.Cbqt.Driver.res_trace)
          runs
    | `Jsonl -> emit (jsonl_doc ())
    | `Chrome -> emit (Obs.Trace.to_chrome_many traces));
    (* per-run summary + aggregates, to stderr so sinks stay clean *)
    let tot_states = ref 0 and tot_attempts = ref 0 in
    let tot_wall = ref 0. and tot_cut = ref 0 and tot_cost = ref 0 in
    let coverages =
      List.map
        (fun (name, res, wall) ->
          let tr = res.Cbqt.Driver.res_trace in
          let cov = Obs.Trace.root_coverage tr in
          let rp = res.Cbqt.Driver.res_report in
          tot_states := !tot_states + rp.Cbqt.Driver.rp_states_total;
          tot_attempts :=
            !tot_attempts + Obs.Trace.count_kind tr Obs.Trace.Attempt;
          tot_wall := !tot_wall +. wall;
          tot_cut := !tot_cut + rp.Cbqt.Driver.rp_states_cutoff;
          tot_cost := !tot_cost + Obs.Trace.count_kind tr Obs.Trace.Cost;
          Fmt.epr
            "%-14s %4d spans  %3d attempts  %3d states  coverage %5.1f%%  \
             %.2f ms@."
            name
            (List.length (Obs.Trace.spans tr))
            (Obs.Trace.count_kind tr Obs.Trace.Attempt)
            rp.Cbqt.Driver.rp_states_total (100. *. cov) (1000. *. wall);
          cov)
        runs
    in
    let mean_cov =
      List.fold_left ( +. ) 0. coverages
      /. float_of_int (max 1 (List.length coverages))
    in
    Fmt.epr
      "total: %d runs, %d attempts, %d states in %.1f ms (%.0f states/sec), \
       cut-off share %.1f%%, mean span coverage %.1f%%@."
      (List.length runs) !tot_attempts !tot_states (1000. *. !tot_wall)
      (float_of_int !tot_states /. Float.max 1e-9 !tot_wall)
      (100.
      *. float_of_int !tot_cut
      /. float_of_int (max 1 !tot_states))
      (100. *. mean_cov);
    if validate then (
      let errs =
        List.concat_map
          (fun (name, res, _) ->
            List.map
              (fun e -> name ^ ": " ^ e)
              (Obs.Trace.validate res.Cbqt.Driver.res_trace))
          runs
        @
        match sink with
        | `Jsonl ->
            List.map
              (fun e -> "jsonl: " ^ e)
              (Obs.Trace.validate_jsonl (jsonl_doc ()))
        | _ -> []
      in
      List.iter (fun e -> Fmt.epr "invalid: %s@." e) errs;
      if errs <> [] then 1 else (Fmt.epr "validate: ok@."; 0))
    else 0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Optimize with search-space tracing on and emit the span tree \
          (pretty console, JSON-Lines, or Chrome trace-event format)")
    Term.(
      const run $ sql $ mode $ level $ sink $ out $ validate $ workload $ seed
      $ check_flag)

let run_cmd =
  let sql = Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL") in
  let mode =
    Arg.(value & opt mode_conv `Cost & info [ "mode" ] ~doc:"cost | heuristic | none")
  in
  let limit =
    Arg.(value & opt int 25 & info [ "limit" ] ~doc:"max rows to print")
  in
  let batch_size =
    Arg.(
      value
      & opt int Exec.Executor.default_batch_size
      & info [ "batch-size" ] ~docv:"N"
          ~doc:"executor rows per block (results do not depend on it)")
  in
  let run sql mode limit batch_size check engine dop =
    with_query sql (fun db q ->
        let plan =
          match config_of_mode ~check mode with
          | Some config ->
              (Cbqt.Driver.optimize ~config db.Storage.Db.cat q)
                .res_annotation
                .an_plan
          | None ->
              (Planner.Optimizer.optimize
                 (Planner.Optimizer.create db.Storage.Db.cat)
                 q)
                .an_plan
        in
        let plan = Planner.Parallel.apply db.Storage.Db.cat ~dop plan in
        let meter = Exec.Meter.create () in
        let card_of = Planner.Plan_est.pipeline_hints db.Storage.Db.cat plan in
        let es = Exec.Executor.engine_stats_create () in
        let _, rows, _ =
          Exec.Executor.execute ~meter ~batch_size ~engine ~engine_stats:es
            ~card_of db plan
        in
        List.iteri
          (fun i row ->
            if i < limit then
              Fmt.pr "%s@."
                (String.concat " | "
                   (List.map V.to_string (Array.to_list row))))
          rows;
        Fmt.pr "-- %d rows; %a@." (List.length rows) Exec.Meter.pp meter;
        if
          es.Exec.Executor.es_parts_scanned > 0
          || es.Exec.Executor.es_parts_pruned > 0
        then
          Fmt.pr "-- partitions: %d scanned, %d pruned%s@."
            es.Exec.Executor.es_parts_scanned es.Exec.Executor.es_parts_pruned
            (if es.Exec.Executor.es_dop > 0 then
               Printf.sprintf "; exchange dop %d" es.Exec.Executor.es_dop
             else "");
        0)
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a query and print results + work meter")
    Term.(
      const run $ sql $ mode $ limit $ batch_size $ check_flag $ engine_arg
      $ dop_arg)

let serve_cmd =
  let file =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"SQL file, one statement per line ($(b,-) = stdin)")
  in
  let workload =
    Arg.(
      value
      & opt (some int) None
      & info [ "workload" ] ~docv:"N"
          ~doc:"serve $(docv) generated workload queries instead of a file")
  in
  let repeat =
    Arg.(
      value & opt int 2
      & info [ "repeat" ] ~docv:"R"
          ~doc:
            "run the batch $(docv) times through one service (later passes \
             exercise the warm plan cache)")
  in
  let seed =
    Arg.(value & opt int 2006 & info [ "seed" ] ~doc:"workload seed")
  in
  let capacity =
    Arg.(
      value & opt int 128
      & info [ "cache-capacity" ] ~docv:"N" ~doc:"plan-cache entry bound")
  in
  let batch_size =
    Arg.(
      value
      & opt int Exec.Executor.default_batch_size
      & info [ "batch-size" ] ~docv:"N"
          ~doc:"executor rows per block (results do not depend on it)")
  in
  let min_hit_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-hit-rate" ] ~docv:"F"
          ~doc:
            "exit non-zero unless the final pass's cache hit rate is at \
             least $(docv)")
  in
  let validate_trace =
    Arg.(
      value & flag
      & info [ "validate-trace" ]
          ~doc:
            "check the service's cache-span tree and its JSON-Lines \
             rendering; exit non-zero on any violation")
  in
  let binds =
    Arg.(
      value & opt_all string []
      & info [ "bind" ] ~docv:"VALUE"
          ~doc:
            "bind value for the explicit :n markers of every statement \
             (repeatable, in marker order; int / float / string)")
  in
  let bind_value s =
    match int_of_string_opt s with
    | Some n -> V.Int n
    | None -> (
        match float_of_string_opt s with
        | Some f -> V.Float f
        | None -> V.Str s)
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "on exit, write a JSON snapshot of the metrics registry and the \
             per-fingerprint query store to $(docv)")
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:"domain workers serving the request queue")
  in
  let queue_depth =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"D"
          ~doc:
            "request-queue bound: submissions beyond $(docv) queued requests \
             block the batch driver (admission control)")
  in
  let deadline_ms =
    Arg.(
      value & opt float 0.
      & info [ "deadline-ms" ] ~docv:"T"
          ~doc:
            "per-request deadline: requests still queued after $(docv) ms \
             are timed out without executing (0 = none)")
  in
  let run file workload repeat seed capacity batch_size min_hit_rate
      validate_trace binds engine dop metrics_out workers queue_depth
      deadline_ms check =
    let module Svc = Service in
    let module Pc = Service.Plan_cache in
    let module Sv = Server in
    let bvs = List.map bind_value binds in
    let db, stmts =
      match (workload, file) with
      | Some n, _ ->
          let db, schema =
            Workload.Schema_gen.build ~families:2 ~sample_frac:0.3
              ~partitions:8 ~seed ()
          in
          let g = Workload.Query_gen.create ~seed schema in
          ( db,
            List.map
              (fun it -> `Ir it.Workload.Query_gen.it_query)
              (Workload.Query_gen.workload g n) )
      | None, Some f ->
          let ic = if f = "-" then stdin else open_in f in
          let lines = ref [] in
          (try
             while true do
               let l = String.trim (input_line ic) in
               if l <> "" && not (String.length l >= 2 && String.sub l 0 2 = "--")
               then lines := l :: !lines
             done
           with End_of_file -> ());
          if f <> "-" then close_in ic;
          (demo_db (), List.rev_map (fun l -> `Sql l) !lines)
      | None, None ->
          Fmt.epr "serve: need FILE or --workload N@.";
          exit 2
    in
    if stmts = [] then (
      Fmt.epr "serve: no statements@.";
      exit 2);
    (* parse up front (and filter each statement's binds to the markers
       it references) so a malformed file fails before any domain spawns *)
    let items =
      List.map
        (fun stmt ->
          let q =
            match stmt with
            | `Sql sql -> (
                match Sqlparse.Parser.parse db.Storage.Db.cat sql with
                | Ok q -> q
                | Error msg ->
                    Fmt.epr "serve: parse error: %s@." msg;
                    exit 1)
            | `Ir q -> q
          in
          let need = Sqlir.Fingerprint.binds_count q in
          if List.length bvs < need then (
            Fmt.epr "serve: statement references %d bind(s), %d given@." need
              (List.length bvs);
            exit 1);
          (Sv.Ir q, List.filteri (fun i _ -> i < need) bvs))
        stmts
    in
    let config =
      {
        Svc.default_config with
        Svc.capacity;
        trace = Obs.Trace.Steps;
        batch_size;
        engine;
        dop;
        driver =
          (if check then
             { Cbqt.Driver.default_config with Cbqt.Driver.check = true }
           else Cbqt.Driver.default_config);
      }
    in
    let pool_cfg =
      {
        Sv.default_config with
        Sv.workers;
        queue_depth;
        deadline_s = deadline_ms /. 1000.;
        svc = config;
      }
    in
    let pool = Sv.create ~config:pool_cfg db in
    let se = Sv.session pool in
    let n = List.length items in
    let last_rate = ref 0. in
    let failures = ref 0 in
    for pass = 1 to max 1 repeat do
      let hits0 = (Pc.stats (Sv.cache pool)).Pc.hits in
      let t0 = Unix.gettimeofday () in
      let handles =
        List.map (fun (stmt, b) -> Sv.submit_wait ~binds:b pool se stmt) items
      in
      let outcomes = List.map Sv.await handles in
      let dt = Unix.gettimeofday () -. t0 in
      let rows = ref 0 and failed = ref 0 and rej = ref 0 and timed = ref 0 in
      List.iter
        (fun o ->
          match o with
          | Sv.Done r -> rows := !rows + r.Svc.r_nrows
          | Sv.Failed msg ->
              incr failed;
              if !failed <= 3 then Fmt.epr "serve: request failed: %s@." msg
          | Sv.Rejected -> incr rej
          | Sv.Timed_out -> incr timed)
        outcomes;
      failures := !failures + !failed;
      let hits = (Pc.stats (Sv.cache pool)).Pc.hits - hits0 in
      last_rate := float_of_int hits /. float_of_int n;
      Fmt.pr
        "pass %d: %d stmts, %d rows in %.1f ms (%.0f qps), %d cache hits \
         (rate %.2f), digest %016x%s@."
        pass n !rows (1000. *. dt)
        (float_of_int n /. Float.max 1e-9 dt)
        hits !last_rate
        (Sv.outcomes_digest outcomes)
        (if !failed + !rej + !timed = 0 then ""
         else
           Fmt.str ", %d failed, %d rejected, %d timed out" !failed !rej
             !timed)
    done;
    Sv.shutdown pool;
    Sv.publish_metrics pool;
    Fmt.pr "%a" Sv.pp_report (Sv.report pool);
    (match metrics_out with
    | None -> ()
    | Some f ->
        let doc =
          Obs.Json.to_string
            (Obs.Json.Obj
               [
                 ("registry", Obs.Metrics.to_json Obs.Metrics.default);
                 ( "query_store",
                   Obs.Query_store.to_json (Sv.query_store pool) );
               ])
        in
        let oc = open_out f in
        output_string oc doc;
        output_char oc '\n';
        close_out oc;
        Fmt.epr "wrote %s (%d bytes)@." f (String.length doc));
    let bad_rate =
      match min_hit_rate with
      | Some m when !last_rate < m ->
          Fmt.epr "serve: final-pass hit rate %.2f below required %.2f@."
            !last_rate m;
          true
      | _ -> false
    in
    let bad_trace =
      if not validate_trace then false
      else (
        (* one tracer per worker service: validate each span tree *)
        let errs, spans =
          List.fold_left
            (fun (errs, spans) svc ->
              let tr = Svc.tracer svc in
              ( errs @ Obs.Trace.validate tr
                @ List.map
                    (fun e -> "jsonl: " ^ e)
                    (Obs.Trace.validate_jsonl (Obs.Trace.to_jsonl tr)),
                spans + Obs.Trace.count_kind tr Obs.Trace.Cache ))
            ([], 0) (Sv.services pool)
        in
        List.iter (fun e -> Fmt.epr "invalid: %s@." e) errs;
        if errs = [] then
          Fmt.epr "validate: ok (%d cache spans over %d workers)@." spans
            workers;
        errs <> [])
    in
    let bad_check =
      if check && !failures > 0 then (
        Fmt.epr "serve: %d requests failed under --check@." !failures;
        true)
      else false
    in
    if bad_rate || bad_trace || bad_check then 1 else 0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Batch-execute statements through a domain worker pool sharing one \
          plan cache (soft parse / bind parameterization) and report hit \
          rates, QPS and pool outcomes")
    Term.(
      const run $ file $ workload $ repeat $ seed $ capacity $ batch_size
      $ min_hit_rate $ validate_trace $ binds $ engine_arg $ dop_arg
      $ metrics_out $ workers $ queue_depth $ deadline_ms $ check_flag)

let stats_cmd =
  let workload =
    Arg.(
      value & opt int 60
      & info [ "workload" ] ~docv:"N" ~doc:"generated workload queries to run")
  in
  let seed =
    Arg.(value & opt int 2006 & info [ "seed" ] ~doc:"workload seed")
  in
  let repeat =
    Arg.(
      value & opt int 2
      & info [ "repeat" ] ~docv:"R"
          ~doc:
            "passes over the workload (later passes soft-parse against the \
             warm plan cache)")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"rows per query-store top-N table")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "emit the registry + query-store snapshot as JSON instead of \
             the console tables")
  in
  let prom =
    Arg.(
      value & flag
      & info [ "prom" ]
          ~doc:
            "emit the registry in Prometheus text exposition format instead \
             of the console tables")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"write the output to $(docv)")
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:"domain workers serving the workload")
  in
  let run workload seed repeat top json prom out engine dop workers =
    let module Svc = Service in
    let module Sv = Server in
    let module Mx = Obs.Metrics in
    (* a fresh run: the default registry is process-wide, so zero it *)
    Mx.reset Mx.default;
    let db, schema =
      Workload.Schema_gen.build ~families:2 ~sample_frac:0.3 ~partitions:8
        ~seed ()
    in
    let g = Workload.Query_gen.create ~seed schema in
    let items = Workload.Query_gen.workload g workload in
    let config =
      {
        Svc.default_config with
        Svc.engine;
        dop;
        metrics = true;
        (* analyze-mode execution feeds per-operator Q-error into the
           query store — the point of the stats report *)
        feedback = true;
      }
    in
    let pool_cfg = { Sv.default_config with Sv.workers; svc = config } in
    let pool = Sv.create ~config:pool_cfg db in
    let se = Sv.session pool in
    let stmts =
      List.map (fun it -> Sv.Ir it.Workload.Query_gen.it_query) items
    in
    for _pass = 1 to max 1 repeat do
      ignore (Sv.run_batch pool se stmts)
    done;
    Sv.shutdown pool;
    (* refreshes the cache gauges, meter counters and pool gauges *)
    ignore (Sv.report pool);
    Sv.publish_metrics pool;
    let emit doc =
      match out with
      | None -> print_string doc
      | Some f ->
          let oc = open_out f in
          output_string oc doc;
          close_out oc;
          Fmt.epr "wrote %s (%d bytes)@." f (String.length doc)
    in
    (match (json, prom) with
    | true, _ ->
        emit
          (Obs.Json.to_string
             (Obs.Json.Obj
                [
                  ("registry", Mx.to_json Mx.default);
                  ( "query_store",
                    Obs.Query_store.to_json (Sv.query_store pool) );
                ])
          ^ "\n")
    | false, true -> emit (Mx.to_prometheus Mx.default)
    | false, false ->
        Fmt.pr "-- metrics registry --@.%s@." (Mx.to_text Mx.default);
        Fmt.pr "-- query store --@.%s@."
          (Obs.Query_store.report_string ~top_n:top (Sv.query_store pool));
        Fmt.pr "%a" Sv.pp_report (Sv.report pool));
    0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a generated workload through the server with metrics and \
          EXPLAIN-ANALYZE feedback on, then print the metrics registry, the \
          per-fingerprint query-store top-N tables (by total time, by \
          Q-error, by executions) and the pool gauges (queued, in-flight, \
          rejected, timed-out); $(b,--json) / $(b,--prom) emit \
          machine-readable snapshots")
    Term.(
      const run $ workload $ seed $ repeat $ top $ json $ prom $ out
      $ engine_arg $ dop_arg $ workers)

let schema_cmd =
  let run () =
    let db = demo_db () in
    let cat = db.Storage.Db.cat in
    List.iter
      (fun name ->
        let def = Catalog.find_table cat name in
        let rel = Storage.Db.relation db name in
        Fmt.pr "%s (%d rows)@." name (Storage.Relation.cardinality rel);
        List.iter
          (fun c ->
            Fmt.pr "  %-12s %-8s%s@." c.Catalog.c_name
              (V.ty_name c.c_ty)
              (if c.c_nullable then " NULL" else ""))
          def.t_cols;
        List.iter
          (fun ix ->
            Fmt.pr "  index %s (%s)%s@." ix.Catalog.ix_name
              (String.concat "," ix.ix_cols)
              (if ix.ix_unique then " unique" else ""))
          (Catalog.indexes_on cat name))
      (List.sort compare (Catalog.table_names cat));
    0
  in
  Cmd.v (Cmd.info "schema" ~doc:"Print the demo schema") Term.(const run $ const ())

let check_cmd =
  let seed =
    Arg.(value & opt int 2006 & info [ "seed" ] ~doc:"workload seed")
  in
  let families =
    Arg.(value & opt int 2 & info [ "families" ] ~doc:"schema families")
  in
  let count =
    Arg.(value & opt int 30 & info [ "queries" ] ~doc:"queries to generate")
  in
  let sem =
    Arg.(
      value & flag
      & info [ "sem" ]
          ~doc:
            "Semantic-verifier summary mode: run every query in \
             diagnostic-collection mode (no fail-fast), re-deriving the \
             inferred properties around every transformation attempt, and \
             print a per-rule table of the SEM/CB rule registry — rule ID, \
             number of firings, distinct blocks affected. Exits non-zero \
             if any rule fired.")
  in
  let run seed families count sem =
    let db, schema =
      Workload.Schema_gen.build ~families ~sample_frac:0.3 ~seed ()
    in
    let cat = db.Storage.Db.cat in
    let g = Workload.Query_gen.create ~seed schema in
    let items = Workload.Query_gen.workload g count in
    let configs =
      [
        ("cost", Cbqt.Driver.default_config);
        ("heuristic", Cbqt.Driver.heuristic_config);
      ]
    in
    if sem then (
      (* collection mode: every diagnostic of every query/mode is
         tallied per rule instead of failing the first run *)
      let fires : (string, int) Hashtbl.t = Hashtbl.create 16 in
      let blocks : (string, (string, unit) Hashtbl.t) Hashtbl.t =
        Hashtbl.create 16
      in
      let record qname tx (d : Analysis.Diagnostics.t) =
        let r = d.Analysis.Diagnostics.d_rule in
        Hashtbl.replace fires r
          (1 + Option.value ~default:0 (Hashtbl.find_opt fires r));
        let bs =
          match Hashtbl.find_opt blocks r with
          | Some bs -> bs
          | None ->
              let bs = Hashtbl.create 8 in
              Hashtbl.replace blocks r bs;
              bs
        in
        Hashtbl.replace bs
          (Fmt.str "%s/%s" qname d.Analysis.Diagnostics.d_path)
          ();
        Fmt.epr "%s %s (%s): %s@." r qname tx
          d.Analysis.Diagnostics.d_message
      in
      List.iter
        (fun it ->
          let qname =
            Fmt.str "q%d[%s]" it.Workload.Query_gen.it_id
              (Workload.Query_gen.class_name it.Workload.Query_gen.it_class)
          in
          List.iter
            (fun d -> record qname "input" d)
            (Analysis.Diagnostics.errors
               (Analysis.Ir_check.check cat it.Workload.Query_gen.it_query));
          List.iter
            (fun (_, config) ->
              let config =
                {
                  config with
                  Cbqt.Driver.check = true;
                  on_diag =
                    Some (fun tx errs -> List.iter (record qname tx) errs);
                }
              in
              ignore
                (Cbqt.Driver.optimize ~config cat
                   it.Workload.Query_gen.it_query))
            configs)
        items;
      let rules =
        Analysis.Rules.of_namespace "SEM" @ Analysis.Rules.of_namespace "CB"
      in
      let other_fired =
        Hashtbl.fold
          (fun r _ acc ->
            if List.exists (fun ru -> ru.Analysis.Rules.r_id = r) rules then
              acc
            else r :: acc)
          fires []
        |> List.sort compare
        |> List.filter_map Analysis.Rules.find
      in
      let total = Hashtbl.fold (fun _ n acc -> acc + n) fires 0 in
      Fmt.pr "semantic verifier: %d queries x %d modes@." (List.length items)
        (List.length configs);
      Fmt.pr "%-8s %6s %7s  %s@." "rule" "fires" "blocks" "summary";
      List.iter
        (fun ru ->
          let r = ru.Analysis.Rules.r_id in
          let n = Option.value ~default:0 (Hashtbl.find_opt fires r) in
          let b =
            match Hashtbl.find_opt blocks r with
            | Some bs -> Hashtbl.length bs
            | None -> 0
          in
          Fmt.pr "%-8s %6d %7d  %s@." r n b ru.Analysis.Rules.r_summary)
        (rules @ other_fired);
      if total = 0 then 0
      else (
        Fmt.epr "check --sem: %d diagnostics@." total;
        1))
    else
      let failures = ref 0 in
      List.iter
        (fun it ->
          let qname =
            Fmt.str "q%d[%s]" it.Workload.Query_gen.it_id
              (Workload.Query_gen.class_name it.Workload.Query_gen.it_class)
          in
          let n_errs = report_ir_findings cat it.Workload.Query_gen.it_query in
          if n_errs > 0 then (
            Fmt.epr "FAIL %s: %d static IR errors@." qname n_errs;
            incr failures);
          List.iter
            (fun (mode_name, config) ->
              let config = { config with Cbqt.Driver.check = true } in
              match
                Cbqt.Driver.optimize ~config cat it.Workload.Query_gen.it_query
              with
              | _ -> ()
              | exception Analysis.Diagnostics.Check_failed (tx, errs) ->
                  Fmt.epr "FAIL %s (mode %s): %s@." qname mode_name
                    (Analysis.Diagnostics.check_failed_message tx errs);
                  incr failures)
            configs)
        items;
      if !failures = 0 then (
        Fmt.pr "check: %d queries x %d modes clean@." (List.length items)
          (List.length configs);
        0)
      else (
        Fmt.epr "check: %d failures@." !failures;
        1)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the IR checker and transformation sanitizer over a generated \
          workload; exit non-zero on any finding. With $(b,--sem), collect \
          semantic-legality (SEM) and cost cross-check (CB) diagnostics \
          across the whole workload and print a per-rule summary table.")
    Term.(const run $ seed $ families $ count $ sem)

let () =
  let doc = "Cost-based query transformation (VLDB'06 reproduction)" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "cbqt" ~doc)
          [
            explain_cmd;
            run_cmd;
            serve_cmd;
            stats_cmd;
            trace_cmd;
            schema_cmd;
            check_cmd;
          ]))
