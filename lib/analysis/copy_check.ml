(** Over-copying detector (rule [TX001]).

    The IR is immutable and transformations are expected to preserve
    sharing ({!Transform.Tx.map_sharing}): a block a transformation did
    not change must be the {e same} node — physically — in the output
    tree. A freshly allocated block that is structurally identical to a
    block of the input tree is a {e deep copy}: semantically harmless,
    but it defeats the identity-keyed annotation reuse in
    {!Planner.Optimizer} and silently reintroduces the per-state
    copying cost the planner split removed (the deprecated
    [Tx.deep_copy] identity was deleted for the same reason).

    [check ~before ~after] flags every block of [after] that is absent
    from [before] by physical identity yet structurally equal to some
    [before] block. Findings are error-severity so sanitizer mode
    ({!Cbqt.Driver}) fails loudly — over-copying is a transformation
    bug, not an input property. *)

open Sqlir
module A = Ast
module D = Diagnostics

(** Physical identity table over query-block nodes. [Hashtbl.hash] is
    depth-bounded, so hashing is O(1); [( == )] makes structural
    collisions harmless. *)
module Btbl = Hashtbl.Make (struct
  type t = A.block

  let equal = ( == )
  let hash = Hashtbl.hash
end)

(** Every block of [q], including view bodies and subqueries of WHERE,
    HAVING and join conditions. *)
let rec fold_blocks acc (q : A.query) : A.block list =
  match q with
  | A.Setop (_, l, r) -> fold_blocks (fold_blocks acc l) r
  | A.Block b ->
      let fold_pred acc p =
        List.fold_left fold_blocks acc (Walk.pred_subqueries p)
      in
      let acc = b :: acc in
      let acc =
        List.fold_left
          (fun acc fe ->
            let acc =
              match fe.A.fe_source with
              | A.S_table _ -> acc
              | A.S_view v -> fold_blocks acc v
            in
            List.fold_left fold_pred acc fe.A.fe_cond)
          acc b.A.from
      in
      let acc = List.fold_left fold_pred acc b.A.where in
      List.fold_left fold_pred acc b.A.having

let check ~(before : A.query) ~(after : A.query) : D.t list =
  let old_blocks = fold_blocks [] before in
  let ident = Btbl.create 64 in
  List.iter (fun b -> Btbl.replace ident b ()) old_blocks;
  (* structural lookup buckets on the qb_name-insensitive fingerprint,
     verified by full structural equality *)
  let structural : (int, A.block list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun b ->
      let h = Fingerprint.hash_block ~mode:Fingerprint.With_peeks b in
      let bucket =
        match Hashtbl.find_opt structural h with None -> [] | Some bs -> bs
      in
      Hashtbl.replace structural h (b :: bucket))
    old_blocks;
  let c = D.collector () in
  List.iter
    (fun b ->
      if not (Btbl.mem ident b) then
        let h =
          Fingerprint.hash_block ~mode:Fingerprint.With_peeks b
        in
        let copied =
          match Hashtbl.find_opt structural h with
          | None -> false
          | Some bucket -> List.exists (fun b' -> b' = b) bucket
        in
        if copied then
          D.report c ~rule:"TX001" ~severity:D.Error ~path:D.root
            "block %s rebuilt identically: over-copying defeats \
             identity-keyed annotation reuse"
            b.A.qb_name)
    (fold_blocks [] after);
  D.result c

(** Error-severity findings only (currently all of them). *)
let errors ~before ~after = D.errors (check ~before ~after)
