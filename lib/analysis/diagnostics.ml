(** Diagnostics for the static checkers.

    Every finding carries a {e stable rule ID} (documented in DESIGN.md;
    tests assert on them), a severity, a {e tree path} locating the
    offending construct inside the query tree or physical plan, and a
    human-readable message (offending fragments are pretty-printed via
    {!Sqlir.Pp}).

    Rule-ID namespaces: [IRxxx] — query-tree well-formedness
    ({!Ir_check}); [PLxxx] — physical-plan lint ({!Plan_check}). *)

type severity = Error | Warning

type t = {
  d_rule : string;  (** stable rule ID, e.g. ["IR002"] *)
  d_severity : severity;
  d_path : string;  (** tree-path location, e.g. ["w1/from[2]/view/w3/where[0]"] *)
  d_message : string;
}

(** Raised by sanitizer mode ({!Cbqt.Driver}) when a transformation
    produces an ill-formed tree: names the offending transformation and
    carries the error diagnostics. *)
exception Check_failed of string * t list

let severity_str = function Error -> "error" | Warning -> "warning"

let make ~rule ~severity ~path fmt =
  Format.kasprintf
    (fun msg -> { d_rule = rule; d_severity = severity; d_path = path; d_message = msg })
    fmt

let error ~rule ~path fmt = make ~rule ~severity:Error ~path fmt
let warning ~rule ~path fmt = make ~rule ~severity:Warning ~path fmt

let is_error d = d.d_severity = Error
let errors ds = List.filter is_error ds
let has_rule rule ds = List.exists (fun d -> String.equal d.d_rule rule) ds

let pp ppf d =
  Fmt.pf ppf "%s %s at %s: %s" d.d_rule (severity_str d.d_severity) d.d_path
    d.d_message

let pp_list ppf ds = Fmt.pf ppf "%a" (Fmt.list ~sep:Fmt.cut pp) ds

let to_string d = Fmt.str "%a" pp d

(** Render a [Check_failed] payload for reports and CLI output. *)
let check_failed_message (tx : string) (ds : t list) : string =
  Fmt.str "transformation %s produced an ill-formed tree:@.%a" tx pp_list ds

let () =
  Printexc.register_printer (function
    | Check_failed (tx, ds) -> Some (check_failed_message tx ds)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Tree paths                                                           *)
(* ------------------------------------------------------------------ *)

(** Paths are built root-down as ['/']-separated segments; collectors
    thread the current path as a string. *)
let root = ""

let push path seg = if String.equal path "" then seg else path ^ "/" ^ seg
let pushf path fmt = Format.kasprintf (push path) fmt

(* ------------------------------------------------------------------ *)
(* Collector                                                            *)
(* ------------------------------------------------------------------ *)

type collector = { mutable diags : t list }

let collector () = { diags = [] }

let report (c : collector) ~rule ~severity ~path fmt =
  Format.kasprintf
    (fun msg ->
      c.diags <-
        { d_rule = rule; d_severity = severity; d_path = path; d_message = msg }
        :: c.diags)
    fmt

let result (c : collector) : t list = List.rev c.diags
