(** Query-tree well-formedness checker.

    A rule-based static semantic checker over the {!Sqlir.Ast} query-tree
    IR. The CBQT driver applies fourteen different rewrites to query
    trees; a bug in any of them surfaces either as a crash deep inside
    the physical optimizer / executor or — far worse — as silently wrong
    rows. This module is the correctness backstop: it validates every
    invariant the downstream layers rely on, with stable rule IDs so the
    sanitizer ({!Cbqt.Driver}) and the mutation tests can name exactly
    what broke.

    Rule catalog (severity [E]rror / [W]arning):

    - [IR001 E] FROM entry references a table absent from the catalog
    - [IR002 E] column reference resolves to no in-scope FROM alias
      (neither the enclosing block nor any outer correlation level)
    - [IR003 E] column reference resolves to an alias, but the named
      column does not exist on that alias's table / view select list
    - [IR004 E] two FROM entries of one block share an alias
    - [IR005 E] aggregate in an illegal clause (WHERE, GROUP BY, or a
      FROM entry's ON condition)
    - [IR006 E] in an aggregated block, a SELECT / HAVING / ORDER BY
      expression is not functionally covered by the GROUP BY keys
      (syntactic key match, constants, aggregates, outer references, and
      primary-key functional dependency all count as covered)
    - [IR007 E] non-inner FROM entry ([J_semi] / [J_anti] / [J_anti_na]
      / [J_left]) with an empty ON condition ([fe_cond]) and no
      correlation inside the view to make up for it (JPPD legally pushes
      the entire ON list into the view as correlation)
    - [IR008 E] the leading FROM entry of a block is non-inner (the
      partial orders of Section 2.1.1 require a join to its left)
    - [IR009 E] set-operation branches disagree on select-list arity
    - [IR010 E] ROWNUM limit is not positive
    - [IR011 W] duplicate output column name in a block's select list
    - [IR012 E] window function in an illegal clause (anywhere but
      SELECT or ORDER BY)
    - [IR013 E] empty select list
    - [IR014 W] empty FROM clause (the physical optimizer rejects such
      blocks as unsupported rather than crashing, hence only a warning)

    The checker never raises; it returns the full list of findings. *)

open Sqlir
module A = Ast
module D = Diagnostics
module Sset = Walk.Sset

(* ------------------------------------------------------------------ *)
(* Scopes                                                               *)
(* ------------------------------------------------------------------ *)

(** One FROM alias in scope: its output column names, or [None] when
    they are unknowable because the table itself is unknown (IR001
    already fired; avoid cascading IR003 noise). *)
type binding = { b_alias : string; b_cols : string list option }

(** Innermost scope first; each scope is one block's FROM bindings. *)
type scopes = binding list list

let lookup (scopes : scopes) (alias : string) : binding option =
  List.find_map
    (fun bindings ->
      List.find_opt (fun b -> String.equal b.b_alias alias) bindings)
    scopes

let source_cols (cat : Catalog.t) (fe : A.from_entry) : string list option =
  match fe.A.fe_source with
  | A.S_table t -> (
      match Catalog.find_table_opt cat t with
      | Some def -> Some (List.map (fun c -> c.Catalog.c_name) def.Catalog.t_cols)
      | None -> None)
  | A.S_view v -> Some (A.query_select_names v)

(* ------------------------------------------------------------------ *)
(* Column resolution (IR002 / IR003)                                    *)
(* ------------------------------------------------------------------ *)

let check_col (c : D.collector) (scopes : scopes) ~path (col : A.col) =
  match lookup scopes col.A.c_alias with
  | None ->
      D.report c ~rule:"IR002" ~severity:D.Error ~path
        "column %s.%s: alias %s is not in scope" col.A.c_alias col.A.c_col
        col.A.c_alias
  | Some { b_cols = None; _ } -> ()
  | Some { b_cols = Some cols; _ } ->
      if not (List.mem col.A.c_col cols) then
        D.report c ~rule:"IR003" ~severity:D.Error ~path
          "column %s.%s: alias %s has no column %s" col.A.c_alias col.A.c_col
          col.A.c_alias col.A.c_col

(* ------------------------------------------------------------------ *)
(* Expression-shape checks: aggregate / window placement                *)
(* ------------------------------------------------------------------ *)

type clause = C_select | C_where | C_group_by | C_having | C_order_by | C_on

let clause_str = function
  | C_select -> "SELECT"
  | C_where -> "WHERE"
  | C_group_by -> "GROUP BY"
  | C_having -> "HAVING"
  | C_order_by -> "ORDER BY"
  | C_on -> "ON"

let agg_allowed = function C_select | C_having | C_order_by -> true | _ -> false
let win_allowed = function C_select | C_order_by -> true | _ -> false

(** Walk an expression shallowly (no subquery descent — expressions
    cannot contain subqueries), resolving columns and flagging agg /
    window placement. [in_agg] guards against nested aggregates. *)
let rec check_expr (c : D.collector) (scopes : scopes) ~clause ~path
    ?(in_agg = false) (e : A.expr) : unit =
  let self = check_expr c scopes ~clause ~path ~in_agg in
  match e with
  | A.Const _ -> ()
  | A.Bind (i, _) ->
      if i < 0 then
        D.report c ~rule:"IR015" ~severity:D.Error ~path
          "negative bind index :%d" (i + 1)
  | A.Col col -> check_col c scopes ~path col
  | A.Binop (_, a, b) ->
      self a;
      self b
  | A.Neg a -> self a
  | A.Agg (_, eo, _) ->
      if not (agg_allowed clause) then
        D.report c ~rule:"IR005" ~severity:D.Error ~path
          "aggregate %s in %s clause" (Pp.expr_to_string e) (clause_str clause);
      if in_agg then
        D.report c ~rule:"IR005" ~severity:D.Error ~path
          "nested aggregate %s" (Pp.expr_to_string e);
      Option.iter (check_expr c scopes ~clause ~path ~in_agg:true) eo
  | A.Win (_, eo, w) ->
      if not (win_allowed clause) then
        D.report c ~rule:"IR012" ~severity:D.Error ~path
          "window function %s in %s clause" (Pp.expr_to_string e)
          (clause_str clause);
      Option.iter self eo;
      List.iter self w.A.w_pby;
      List.iter (fun (e, _) -> self e) w.A.w_oby
  | A.Fn (_, args) -> List.iter self args
  | A.Case (arms, els) ->
      List.iter
        (fun (p, e) ->
          check_pred_shallow c scopes ~clause ~path p;
          self e)
        arms;
      Option.iter self els

(** Predicate check without subquery recursion (CASE arms may embed
    predicates; their subqueries are handled by the caller's deep
    walk). *)
and check_pred_shallow c scopes ~clause ~path (p : A.pred) : unit =
  let pe = check_expr c scopes ~clause ~path in
  match p with
  | A.True | A.False -> ()
  | A.Cmp (_, a, b) ->
      pe a;
      pe b
  | A.Between (a, lo, hi) ->
      pe a;
      pe lo;
      pe hi
  | A.Is_null a -> pe a
  | A.Not a | A.Lnnvl a -> check_pred_shallow c scopes ~clause ~path a
  | A.And (a, b) | A.Or (a, b) ->
      check_pred_shallow c scopes ~clause ~path a;
      check_pred_shallow c scopes ~clause ~path b
  | A.In_list (a, _) -> pe a
  | A.In_subq (es, _) | A.Not_in_subq (es, _) -> List.iter pe es
  | A.Exists _ | A.Not_exists _ -> ()
  | A.Cmp_subq (_, a, _, _) -> pe a
  | A.Pred_fn (_, args) -> List.iter pe args

(* ------------------------------------------------------------------ *)
(* GROUP BY functional coverage (IR006)                                 *)
(* ------------------------------------------------------------------ *)

(** Aliases all of whose columns are functionally determined by the
    GROUP BY keys: the alias is bound to a base table whose primary key
    columns all appear (as plain columns of that alias) among the
    keys. *)
let fd_covered_aliases (cat : Catalog.t) (b : A.block) : Sset.t =
  let key_cols =
    List.filter_map (function A.Col c -> Some c | _ -> None) b.A.group_by
  in
  List.fold_left
    (fun acc fe ->
      match fe.A.fe_source with
      | A.S_view _ -> acc
      | A.S_table t -> (
          match Catalog.find_table_opt cat t with
          | Some def when def.Catalog.t_pkey <> [] ->
              let covered =
                List.for_all
                  (fun pk_col ->
                    List.exists
                      (fun c ->
                        String.equal c.A.c_alias fe.A.fe_alias
                        && String.equal c.A.c_col pk_col)
                      key_cols)
                  def.Catalog.t_pkey
              in
              if covered then Sset.add fe.A.fe_alias acc else acc
          | _ -> acc))
    Sset.empty b.A.from

(** Is [e] functionally covered by the GROUP BY keys of [b]?
    Covered: a syntactic match of a key; constants; aggregates (their
    arguments range over the pre-aggregation rows by construction);
    columns of outer (correlation) aliases — constant per invocation;
    columns of FD-covered aliases; compounds all of whose children are
    covered. *)
let rec covered ~(keys : A.expr list) ~(local : Sset.t) ~(fd : Sset.t)
    (e : A.expr) : bool =
  List.mem e keys
  ||
  match e with
  | A.Const _ -> true
  (* a bind is constant within one execution, so it is covered *)
  | A.Bind _ -> true
  | A.Agg _ -> true
  | A.Col c -> (not (Sset.mem c.A.c_alias local)) || Sset.mem c.A.c_alias fd
  | A.Binop (_, a, b) -> covered ~keys ~local ~fd a && covered ~keys ~local ~fd b
  | A.Neg a -> covered ~keys ~local ~fd a
  | A.Win (_, eo, w) ->
      (match eo with None -> true | Some a -> covered ~keys ~local ~fd a)
      && List.for_all (covered ~keys ~local ~fd) w.A.w_pby
      && List.for_all (fun (e, _) -> covered ~keys ~local ~fd e) w.A.w_oby
  | A.Fn (_, args) -> List.for_all (covered ~keys ~local ~fd) args
  | A.Case (arms, els) ->
      List.for_all
        (fun (p, e) -> covered_pred ~keys ~local ~fd p && covered ~keys ~local ~fd e)
        arms
      && (match els with None -> true | Some e -> covered ~keys ~local ~fd e)

and covered_pred ~keys ~local ~fd (p : A.pred) : bool =
  match p with
  | A.True | A.False -> true
  | A.Cmp (_, a, b) -> covered ~keys ~local ~fd a && covered ~keys ~local ~fd b
  | A.Between (a, lo, hi) ->
      covered ~keys ~local ~fd a && covered ~keys ~local ~fd lo
      && covered ~keys ~local ~fd hi
  | A.Is_null a -> covered ~keys ~local ~fd a
  | A.Not a | A.Lnnvl a -> covered_pred ~keys ~local ~fd a
  | A.And (a, b) | A.Or (a, b) ->
      covered_pred ~keys ~local ~fd a && covered_pred ~keys ~local ~fd b
  | A.In_list (a, _) -> covered ~keys ~local ~fd a
  | A.Pred_fn (_, args) -> List.for_all (covered ~keys ~local ~fd) args
  (* subquery predicates cannot appear in expression position clauses;
     treat conservatively as covered — the subquery itself is checked in
     its own scope *)
  | A.In_subq _ | A.Not_in_subq _ | A.Exists _ | A.Not_exists _
  | A.Cmp_subq _ ->
      true

let check_coverage (c : D.collector) (cat : Catalog.t) (b : A.block) ~path
    ~(what : string) ~loc_path (e : A.expr) : unit =
  ignore path;
  let keys = b.A.group_by in
  let local = Walk.defined_aliases b in
  let fd = fd_covered_aliases cat b in
  if not (covered ~keys ~local ~fd e) then
    D.report c ~rule:"IR006" ~severity:D.Error ~path:loc_path
      "%s expression %s is not functionally covered by the GROUP BY keys"
      what (Pp.expr_to_string e)

(* ------------------------------------------------------------------ *)
(* Blocks and queries                                                   *)
(* ------------------------------------------------------------------ *)

(** Deep predicate check: shallow shape checks plus recursion into
    subqueries with the current block's scope pushed. *)
let rec check_pred (c : D.collector) (cat : Catalog.t) (scopes : scopes)
    ~clause ~path (p : A.pred) : unit =
  check_pred_shallow c scopes ~clause ~path p;
  List.iteri
    (fun i sq ->
      check_query c cat scopes ~path:(D.pushf path "subq[%d]" i) sq)
    (Walk.pred_subqueries p)

and check_block (c : D.collector) (cat : Catalog.t) (outer : scopes) ~path
    (b : A.block) : unit =
  let path = D.push path b.A.qb_name in
  (* --- FROM: alias uniqueness, table existence, jkind invariants --- *)
  List.iteri
    (fun i fe ->
      let epath = D.pushf path "from[%d:%s]" i fe.A.fe_alias in
      (match fe.A.fe_source with
      | A.S_table t ->
          if Catalog.find_table_opt cat t = None then
            D.report c ~rule:"IR001" ~severity:D.Error ~path:epath
              "unknown table %s" t
      | A.S_view _ -> ());
      (* report at each repeat occurrence of an alias seen earlier *)
      if
        List.filteri (fun j _ -> j < i) b.A.from
        |> List.exists (fun fe' -> String.equal fe'.A.fe_alias fe.A.fe_alias)
      then
        D.report c ~rule:"IR004" ~severity:D.Error ~path:epath
          "duplicate FROM alias %s" fe.A.fe_alias;
      (match fe.A.fe_kind with
      | A.J_inner -> ()
      | A.J_left | A.J_semi | A.J_anti | A.J_anti_na ->
          (* JPPD legally empties the ON list after pushing the join
             predicate inside the view, where it survives as
             correlation — so a correlated view needs no ON. *)
          let correlated_view =
            match fe.A.fe_source with
            | A.S_table _ -> false
            | A.S_view v -> not (Walk.Sset.is_empty (Walk.free_aliases v))
          in
          if fe.A.fe_cond = [] && not correlated_view then
            D.report c ~rule:"IR007" ~severity:D.Error ~path:epath
              "non-inner FROM entry %s has neither an ON condition nor \
               correlation"
              fe.A.fe_alias;
          if i = 0 then
            D.report c ~rule:"IR008" ~severity:D.Error ~path:epath
              "leading FROM entry %s is non-inner (%s)" fe.A.fe_alias
              (match fe.A.fe_kind with
              | A.J_left -> "left outer"
              | A.J_semi -> "semi"
              | A.J_anti -> "anti"
              | A.J_anti_na -> "anti-na"
              | A.J_inner -> assert false)))
    b.A.from;
  (* --- scope for everything inside this block --- *)
  let bindings =
    List.map
      (fun fe -> { b_alias = fe.A.fe_alias; b_cols = source_cols cat fe })
      b.A.from
  in
  let scopes = bindings :: outer in
  (* --- views: checked laterally (siblings visible, self excluded) --- *)
  List.iteri
    (fun i fe ->
      match fe.A.fe_source with
      | A.S_table _ -> ()
      | A.S_view v ->
          let sibling_bindings =
            List.filter
              (fun bd -> not (String.equal bd.b_alias fe.A.fe_alias))
              bindings
          in
          check_query c cat (sibling_bindings :: outer)
            ~path:(D.pushf path "from[%d:%s]/view" i fe.A.fe_alias)
            v)
    b.A.from;
  (* --- ON conditions --- *)
  List.iteri
    (fun i fe ->
      List.iteri
        (fun j p ->
          check_pred c cat scopes ~clause:C_on
            ~path:(D.pushf path "from[%d:%s]/on[%d]" i fe.A.fe_alias j)
            p)
        fe.A.fe_cond)
    b.A.from;
  (* --- select list --- *)
  if b.A.select = [] then
    D.report c ~rule:"IR013" ~severity:D.Error ~path "empty select list";
  if b.A.from = [] then
    D.report c ~rule:"IR014" ~severity:D.Warning ~path "empty FROM clause";
  let seen_names = Hashtbl.create 8 in
  List.iteri
    (fun i si ->
      let spath = D.pushf path "select[%d:%s]" i si.A.si_name in
      if Hashtbl.mem seen_names si.A.si_name then
        D.report c ~rule:"IR011" ~severity:D.Warning ~path:spath
          "duplicate select-list name %s" si.A.si_name;
      Hashtbl.replace seen_names si.A.si_name ();
      check_expr c scopes ~clause:C_select ~path:spath si.A.si_expr)
    b.A.select;
  (* --- where --- *)
  List.iteri
    (fun i p ->
      check_pred c cat scopes ~clause:C_where ~path:(D.pushf path "where[%d]" i) p)
    b.A.where;
  (* --- group by --- *)
  List.iteri
    (fun i e ->
      check_expr c scopes ~clause:C_group_by
        ~path:(D.pushf path "group_by[%d]" i)
        e)
    b.A.group_by;
  (* --- having --- *)
  List.iteri
    (fun i p ->
      check_pred c cat scopes ~clause:C_having
        ~path:(D.pushf path "having[%d]" i)
        p)
    b.A.having;
  (* --- order by --- *)
  List.iteri
    (fun i (e, _) ->
      check_expr c scopes ~clause:C_order_by
        ~path:(D.pushf path "order_by[%d]" i)
        e)
    b.A.order_by;
  (* --- aggregate coverage (IR006) --- *)
  if Walk.block_has_agg b then (
    List.iteri
      (fun i si ->
        check_coverage c cat b ~path ~what:"select"
          ~loc_path:(D.pushf path "select[%d:%s]" i si.A.si_name)
          si.A.si_expr)
      b.A.select;
    List.iteri
      (fun i p ->
        let exprs = ref [] in
        ignore
          (Walk.map_pred_exprs
             (fun e ->
               exprs := e :: !exprs;
               e)
             p);
        List.iter
          (check_coverage c cat b ~path ~what:"having"
             ~loc_path:(D.pushf path "having[%d]" i))
          !exprs)
      b.A.having;
    List.iteri
      (fun i (e, _) ->
        check_coverage c cat b ~path ~what:"order-by"
          ~loc_path:(D.pushf path "order_by[%d]" i)
          e)
      b.A.order_by);
  (* --- rownum --- *)
  match b.A.limit with
  | Some n when n < 1 ->
      D.report c ~rule:"IR010" ~severity:D.Error ~path
        "ROWNUM limit %d is not positive" n
  | _ -> ()

and check_query (c : D.collector) (cat : Catalog.t) (outer : scopes) ~path
    (q : A.query) : unit =
  (match q with
  | A.Block _ -> ()
  | A.Setop _ ->
      (* all leaves of a setop tree must agree on select-list arity *)
      let leaves = A.leaves q in
      let arities = List.map (fun b -> List.length b.A.select) leaves in
      match arities with
      | [] -> ()
      | first :: _ ->
          List.iteri
            (fun i n ->
              if n <> first then
                D.report c ~rule:"IR009" ~severity:D.Error
                  ~path:(D.pushf path "branch[%d]" i)
                  "set-operation branch has %d select items, expected %d" n
                  first)
            arities);
  let rec go path = function
    | A.Block b -> check_block c cat outer ~path b
    | A.Setop (_, l, r) ->
        go (D.push path "setop.l") l;
        go (D.push path "setop.r") r
  in
  go path q

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)
(* ------------------------------------------------------------------ *)

(** Run all rules over [q]; returns every finding (errors and
    warnings), in tree order. *)
let check (cat : Catalog.t) (q : A.query) : D.t list =
  let c = D.collector () in
  check_query c cat [] ~path:D.root q;
  D.result c

(** Errors only — what sanitizer mode gates on. *)
let errors (cat : Catalog.t) (q : A.query) : D.t list =
  D.errors (check cat q)
