(** Physical-plan lint.

    Post-optimization checks over {!Exec.Plan} operator trees: data-flow
    (every column an operator consumes must be produced below it or be a
    legal correlation binding into an enclosing scope) and the
    partial-order constraints the physical optimizer
    ([lib/planner/optimizer.ml]) is supposed to respect when placing
    semi / anti / outer joins.

    Rule catalog (severity [E]rror / [W]arning):

    - [PL001 E] an operator consumes a column that is neither produced
      by its input nor bound in an enclosing correlation scope (also
      covers index probe expressions referencing the scanned table
      itself)
    - [PL002 E] join partial-order / method violation: a hash or merge
      join whose right side is correlated to the left side (only nested
      loops can supply per-row bindings), or a merge join with a
      [Left_outer] / [Anti_na] role (the optimizer never builds those)
    - [PL003 E] cost annotation is NaN, infinite or negative
    - [PL004 E] cardinality annotation is NaN, infinite or negative
    - [PL005 E] a subquery predicate embedded in a plain filter, scan
      filter or join condition — subqueries must be evaluated via
      [Subq_filter] (tuple-iteration semantics), never inline
    - [PL006 E] branches of a [Union_all] / [Setop_exec] disagree on
      output width
    - [PL007 E] scan of a table absent from the catalog
    - [PL008 E] unsound partition pruning: a partitioned scan of a
      table with no partition spec, or a prune specification not
      implied by any retained filter conjunct on the partition key —
      the pruned partitions must be {e provably disjoint} from the
      predicate, which holds exactly when the bound that drove the
      pruning is still applied to every surviving row
    - [PL009 E/W] exchange shape: partitioned scans under one exchange
      disagree on partition count (task indices are not co-located), a
      partitioned scan hides inside a subquery plan beneath an exchange
      (it would be wrongly restricted to the enclosing task's
      partition), or — warning — an exchange with no partitioned scan
      below it (serial pass-through)

    The checker never raises; it returns the full list of findings. *)

open Sqlir
module A = Ast
module P = Exec.Plan
module D = Diagnostics

module Pset = Set.Make (struct
  type t = string * string

  let compare = compare
end)

let set_of_layout (l : (string * string) array) : Pset.t =
  Array.fold_left (fun s ac -> Pset.add ac s) Pset.empty l

(** [layout] raises on unknown tables; degrade to [None] so one bad
    scan does not cascade into spurious PL001s everywhere above it. *)
let layout_opt (cat : Catalog.t) (p : P.t) : Pset.t option =
  match P.layout p cat with
  | l -> Some (set_of_layout l)
  | exception Catalog.Unknown_table _ -> None

(* ------------------------------------------------------------------ *)
(* Column consumption                                                   *)
(* ------------------------------------------------------------------ *)

let expr_cols (e : A.expr) : A.col list =
  List.rev (Walk.fold_expr_cols (fun acc c -> c :: acc) [] e)

let pred_cols (p : A.pred) : A.col list =
  List.rev (Walk.fold_pred_cols ~deep:false (fun acc c -> c :: acc) [] p)

(** Report every column of [cols] not visible in [visible]. [ctx] names
    the consuming clause. When [visible] is [None] the producer below is
    already broken (PL007 fired); stay silent. *)
let check_cols (c : D.collector) ~path ~ctx (visible : Pset.t option)
    (cols : A.col list) : unit =
  match visible with
  | None -> ()
  | Some vis ->
      List.iter
        (fun col ->
          if not (Pset.mem (col.A.c_alias, col.A.c_col) vis) then
            D.report c ~rule:"PL001" ~severity:D.Error ~path
              "%s references column %s.%s, which is not produced below this \
               operator nor bound in an enclosing scope"
              ctx col.A.c_alias col.A.c_col)
        cols

let check_no_subquery (c : D.collector) ~path ~ctx (preds : A.pred list) : unit
    =
  List.iter
    (fun p ->
      if Walk.pred_has_subquery p then
        D.report c ~rule:"PL005" ~severity:D.Error ~path
          "%s embeds a subquery predicate %s — subqueries must go through a \
           SUBQUERY FILTER operator"
          ctx
          (Pp.pred_to_string p))
    preds

let union_opt a b =
  match (a, b) with Some x, Some y -> Some (Pset.union x y) | _ -> None

(* ------------------------------------------------------------------ *)
(* Partition pruning legality                                           *)
(* ------------------------------------------------------------------ *)

(** Does [e] name the partition key [alias.key] (and nothing else)? *)
let is_key ~alias ~key (e : A.expr) : bool =
  match e with
  | A.Col { A.c_alias; c_col } ->
      String.equal c_alias alias && String.equal c_col key
  | _ -> false

(** Is there a conjunct in [filter] that implies [key cmp-class bound]?
    [cls] is [`Eq], [`Lo] (key >= / > bound) or [`Hi] (key <= / <
    bound); a strict conjunct justifies a non-strict prune bound. *)
let conjunct_implies ~alias ~key (filter : A.pred list)
    (cls : [ `Eq of A.expr | `Lo of A.expr | `Hi of A.expr ]) : bool =
  let implies pr =
    match (cls, pr) with
    | `Eq b, A.Cmp (A.Eq, l, r) ->
        (* the conjunct must pin the key to the {e same} operand the
           prune routes on — an equality on some other value justifies
           nothing *)
        (is_key ~alias ~key l && r = b) || (is_key ~alias ~key r && l = b)
    | `Lo b, A.Cmp ((A.Ge | A.Gt), l, r) -> is_key ~alias ~key l && r = b
    | `Lo b, A.Cmp ((A.Le | A.Lt), l, r) -> is_key ~alias ~key r && l = b
    | `Lo b, A.Between (e, lo, _) -> is_key ~alias ~key e && lo = b
    | `Hi b, A.Cmp ((A.Le | A.Lt), l, r) -> is_key ~alias ~key l && r = b
    | `Hi b, A.Cmp ((A.Ge | A.Gt), l, r) -> is_key ~alias ~key r && l = b
    | `Hi b, A.Between (e, _, hi) -> is_key ~alias ~key e && hi = b
    | _ -> false
  in
  List.exists implies filter

(** A prune spec is justified iff every bound it prunes on is still
    enforced by a retained filter conjunct on the partition key — then
    rows living in pruned partitions cannot satisfy the filter, i.e.
    the pruned partitions are provably predicate-disjoint. *)
let prune_justified ~alias ~key (filter : A.pred list) (prune : P.prune) :
    bool =
  match prune with
  | P.Pr_none -> true
  | P.Pr_eq e -> conjunct_implies ~alias ~key filter (`Eq e)
  | P.Pr_range (lo, hi) ->
      (* [key = e] implies both [key >= e] and [key <= e], so an
         equality on the bound's own operand justifies either side *)
      let lo_ok =
        match lo with
        | P.R_unbounded -> true
        | P.R_incl e | P.R_excl e ->
            conjunct_implies ~alias ~key filter (`Lo e)
            || conjunct_implies ~alias ~key filter (`Eq e)
      in
      let hi_ok =
        match hi with
        | P.R_unbounded -> true
        | P.R_incl e | P.R_excl e ->
            conjunct_implies ~alias ~key filter (`Hi e)
            || conjunct_implies ~alias ~key filter (`Eq e)
      in
      lo_ok && hi_ok

(** Partitioned scans reachable only through subquery plans embedded in
    [Subq_filter] predicates — [P.part_scans] walks structural children
    only, so these are exactly the scans an [Exchange] task restriction
    would hit {e incorrectly}. *)
let rec subq_part_scans (p : P.t) : (string * P.prune) list =
  (match p with
  | P.Subq_filter { preds; _ } ->
      List.concat_map
        (fun sp ->
          let plan =
            match sp with
            | P.SP_exists { plan; _ }
            | P.SP_in { plan; _ }
            | P.SP_cmp { plan; _ } ->
                plan
          in
          P.part_scans plan @ subq_part_scans plan)
        preds
  | _ -> [])
  @ List.concat_map subq_part_scans (P.children p)

(* ------------------------------------------------------------------ *)
(* The walk                                                             *)
(* ------------------------------------------------------------------ *)

(** [go c cat env path p] checks [p] under correlation environment
    [env] (columns supplied per-row by enclosing operators) and returns
    [p]'s own output column set (or [None] when unknowable). *)
let rec go (c : D.collector) (cat : Catalog.t) (env : Pset.t option) path
    (p : P.t) : Pset.t option =
  match p with
  | P.Table_scan { table; alias; filter } ->
      let path = D.pushf path "scan[%s:%s]" table alias in
      let own =
        match Catalog.find_table_opt cat table with
        | Some _ -> layout_opt cat p
        | None ->
            D.report c ~rule:"PL007" ~severity:D.Error ~path
              "scan of unknown table %s" table;
            None
      in
      let vis = union_opt own env in
      check_no_subquery c ~path ~ctx:"scan filter" filter;
      List.iter
        (fun pr -> check_cols c ~path ~ctx:"scan filter" vis (pred_cols pr))
        filter;
      own
  | P.Part_scan { table; alias; filter; prune } ->
      let path = D.pushf path "pscan[%s:%s]" table alias in
      let own =
        match Catalog.find_table_opt cat table with
        | Some _ -> layout_opt cat p
        | None ->
            D.report c ~rule:"PL007" ~severity:D.Error ~path
              "scan of unknown table %s" table;
            None
      in
      let vis = union_opt own env in
      check_no_subquery c ~path ~ctx:"scan filter" filter;
      List.iter
        (fun pr -> check_cols c ~path ~ctx:"scan filter" vis (pred_cols pr))
        filter;
      (match Catalog.part_spec cat table with
      | None ->
          if Catalog.find_table_opt cat table <> None then
            D.report c ~rule:"PL008" ~severity:D.Error ~path
              "partitioned scan of %s, which has no partition spec" table
      | Some ps ->
          if not (prune_justified ~alias ~key:ps.Catalog.ps_col filter prune)
          then
            D.report c ~rule:"PL008" ~severity:D.Error ~path
              "partition pruning is not provably disjoint: no retained \
               filter conjunct on partition key %s.%s implies the prune \
               bounds"
              alias ps.Catalog.ps_col);
      own
  | P.Exchange { child; dop } ->
      let path = D.pushf path "exchange[dop=%d]" dop in
      if dop < 1 then
        D.report c ~rule:"PL009" ~severity:D.Error ~path
          "exchange degree of parallelism %d is not positive" dop;
      (match P.part_scans child with
      | [] ->
          D.report c ~rule:"PL009" ~severity:D.Warning ~path
            "exchange over a subtree with no partitioned scan — executes \
             as a serial pass-through"
      | (t0, _) :: rest -> (
          match Catalog.part_spec cat t0 with
          | None -> () (* PL008 fires at the scan itself *)
          | Some ps0 ->
              List.iter
                (fun (t, _) ->
                  match Catalog.part_spec cat t with
                  | Some ps when ps.Catalog.ps_n <> ps0.Catalog.ps_n ->
                      D.report c ~rule:"PL009" ~severity:D.Error ~path
                        "partitioned scans under one exchange disagree on \
                         partition count (%s: %d, %s: %d) — task indices \
                         are not co-located"
                        t0 ps0.Catalog.ps_n t ps.Catalog.ps_n
                  | _ -> ())
                rest));
      List.iter
        (fun (t, _) ->
          D.report c ~rule:"PL009" ~severity:D.Error ~path
            "partitioned scan of %s inside a subquery plan beneath an \
             exchange — it would be restricted to the enclosing task's \
             partition"
            t)
        (subq_part_scans child);
      go c cat env path child
  | P.Partial_agg { child; alias; keys; aggs } ->
      let path = D.pushf path "partial_agg[%s]" alias in
      let cout = go c cat env path child in
      let vis = union_opt cout env in
      List.iter
        (fun (e, _) ->
          check_cols c ~path ~ctx:"group-by key" vis (expr_cols e))
        keys;
      List.iter
        (fun (_, _, eo) ->
          Option.iter
            (fun e ->
              check_cols c ~path ~ctx:"aggregate argument" vis (expr_cols e))
            eo)
        aggs;
      layout_opt cat p
  | P.Final_agg { child; alias; keys; _ } ->
      let path = D.pushf path "final_agg[%s]" alias in
      let cout = go c cat env path child in
      (* the final side consumes its child's state columns by name *)
      (match cout with
      | None -> ()
      | Some vis ->
          List.iter
            (fun k ->
              if not (Pset.mem (alias, k) vis) then
                D.report c ~rule:"PL001" ~severity:D.Error ~path
                  "final aggregation key %s.%s is not produced by its \
                   partial side"
                  alias k)
            keys);
      layout_opt cat p
  | P.Index_scan { table; alias; index; prefix; lo; hi; filter } ->
      let path = D.pushf path "iscan[%s(%s):%s]" table index alias in
      let own =
        match Catalog.find_table_opt cat table with
        | Some _ -> layout_opt cat p
        | None ->
            D.report c ~rule:"PL007" ~severity:D.Error ~path
              "scan of unknown table %s" table;
            None
      in
      (* probe expressions are evaluated before a row of this table
         exists: they may use only the enclosing scopes *)
      let probe_exprs =
        prefix
        @ (match lo with P.R_unbounded -> [] | P.R_incl e | P.R_excl e -> [ e ])
        @ match hi with P.R_unbounded -> [] | P.R_incl e | P.R_excl e -> [ e ]
      in
      List.iter
        (fun e ->
          let cols = expr_cols e in
          List.iter
            (fun col ->
              if String.equal col.A.c_alias alias then
                D.report c ~rule:"PL001" ~severity:D.Error ~path
                  "index probe expression references the scanned table's own \
                   column %s.%s"
                  col.A.c_alias col.A.c_col)
            cols;
          check_cols c ~path ~ctx:"index probe" env
            (List.filter
               (fun col -> not (String.equal col.A.c_alias alias))
               cols))
        probe_exprs;
      let vis = union_opt own env in
      check_no_subquery c ~path ~ctx:"scan filter" filter;
      List.iter
        (fun pr -> check_cols c ~path ~ctx:"scan filter" vis (pred_cols pr))
        filter;
      own
  | P.Join { meth; role; left; right; cond } ->
      let path =
        D.pushf path "join[%s%s]"
          (match meth with
          | P.Nested_loop -> "nl"
          | P.Hash -> "hash"
          | P.Merge -> "merge")
          (match role with
          | P.Inner -> ""
          | P.Semi -> ",semi"
          | P.Anti -> ",anti"
          | P.Anti_na -> ",anti-na"
          | P.Left_outer -> ",outer")
      in
      (match (meth, role) with
      | P.Merge, (P.Left_outer | P.Anti_na) ->
          D.report c ~rule:"PL002" ~severity:D.Error ~path
            "merge join with role %s — the optimizer's partial order never \
             builds this shape"
            (String.trim (P.jrole_str role))
      | _ -> ());
      let lout = go c cat env path left in
      let right_env =
        match meth with
        | P.Nested_loop ->
            (* nested loops re-evaluate the right side per left row: the
               left layout is a legal correlation scope *)
            union_opt lout env
        | P.Hash | P.Merge -> env
      in
      let rout = go c cat right_env path right in
      (* a hash/merge right side correlated to the left is a
         partial-order violation, not merely a dangling column *)
      (match (meth, lout, rout, env) with
      | (P.Hash | P.Merge), Some l, Some r, Some e ->
          let visible = Pset.union r e in
          List.iter
            (fun col ->
              let k = (col.A.c_alias, col.A.c_col) in
              if (not (Pset.mem k visible)) && Pset.mem k l then
                D.report c ~rule:"PL002" ~severity:D.Error ~path
                  "%s-join right side is correlated to the left side via \
                   %s.%s — only nested loops can supply per-row bindings"
                  (match meth with P.Hash -> "hash" | _ -> "merge")
                  col.A.c_alias col.A.c_col)
            (P.all_cols right)
      | _ -> ());
      check_no_subquery c ~path ~ctx:"join condition" cond;
      let cond_vis = union_opt (union_opt lout rout) env in
      List.iter
        (fun pr ->
          check_cols c ~path ~ctx:"join condition" cond_vis (pred_cols pr))
        cond;
      (match role with
      | P.Semi | P.Anti | P.Anti_na -> lout
      | P.Inner | P.Left_outer -> union_opt lout rout)
  | P.Filter { child; preds } ->
      let path = D.push path "filter" in
      let own = go c cat env path child in
      check_no_subquery c ~path ~ctx:"filter" preds;
      let vis = union_opt own env in
      List.iter
        (fun pr -> check_cols c ~path ~ctx:"filter" vis (pred_cols pr))
        preds;
      own
  | P.Subq_filter { child; preds } ->
      let path = D.push path "subq_filter" in
      let own = go c cat env path child in
      let vis = union_opt own env in
      List.iteri
        (fun i sp ->
          let spath = D.pushf path "subq[%d]" i in
          match sp with
          | P.SP_exists { plan; _ } -> ignore (go c cat vis spath plan)
          | P.SP_in { lhs; plan; _ } ->
              List.iter
                (fun e ->
                  check_cols c ~path:spath ~ctx:"IN left-hand side" vis
                    (expr_cols e))
                lhs;
              ignore (go c cat vis spath plan)
          | P.SP_cmp { lhs; plan; _ } ->
              check_cols c ~path:spath ~ctx:"comparison left-hand side" vis
                (expr_cols lhs);
              ignore (go c cat vis spath plan))
        preds;
      own
  | P.Project { child; alias; items } ->
      let path = D.pushf path "project[%s]" alias in
      let cout = go c cat env path child in
      let vis = union_opt cout env in
      List.iter
        (fun (e, _) -> check_cols c ~path ~ctx:"projection" vis (expr_cols e))
        items;
      layout_opt cat p
  | P.Aggregate { child; alias; keys; aggs; _ } ->
      let path = D.pushf path "aggregate[%s]" alias in
      let cout = go c cat env path child in
      let vis = union_opt cout env in
      List.iter
        (fun (e, _) ->
          check_cols c ~path ~ctx:"group-by key" vis (expr_cols e))
        keys;
      List.iter
        (fun (_, _, eo, _) ->
          Option.iter
            (fun e ->
              check_cols c ~path ~ctx:"aggregate argument" vis (expr_cols e))
            eo)
        aggs;
      layout_opt cat p
  | P.Window { child; alias; wins } ->
      let path = D.pushf path "window[%s]" alias in
      let cout = go c cat env path child in
      let vis = union_opt cout env in
      List.iter
        (fun (_, _, eo, w) ->
          Option.iter
            (fun e ->
              check_cols c ~path ~ctx:"window argument" vis (expr_cols e))
            eo;
          List.iter
            (fun e ->
              check_cols c ~path ~ctx:"window partition key" vis (expr_cols e))
            w.A.w_pby;
          List.iter
            (fun (e, _) ->
              check_cols c ~path ~ctx:"window order key" vis (expr_cols e))
            w.A.w_oby)
        wins;
      union_opt cout (layout_opt cat p)
  | P.Distinct child -> go c cat env (D.push path "distinct") child
  | P.Sort { child; keys } ->
      let path = D.push path "sort" in
      let own = go c cat env path child in
      let vis = union_opt own env in
      List.iter
        (fun (e, _) -> check_cols c ~path ~ctx:"sort key" vis (expr_cols e))
        keys;
      own
  | P.Limit { child; n } ->
      let path = D.push path "limit" in
      if n < 1 then
        D.report c ~rule:"PL004" ~severity:D.Error ~path
          "ROWNUM limit %d is not positive" n;
      go c cat env path child
  | P.Limit_filter { child; preds; n } ->
      let path = D.push path "limit_filter" in
      if n < 1 then
        D.report c ~rule:"PL004" ~severity:D.Error ~path
          "ROWNUM limit %d is not positive" n;
      let own = go c cat env path child in
      check_no_subquery c ~path ~ctx:"filter" preds;
      let vis = union_opt own env in
      List.iter
        (fun pr -> check_cols c ~path ~ctx:"filter" vis (pred_cols pr))
        preds;
      own
  | P.Union_all children ->
      let path = D.push path "union_all" in
      let outs =
        List.mapi (fun i ch -> go c cat env (D.pushf path "branch[%d]" i) ch)
          children
      in
      let widths =
        List.filter_map
          (fun ch ->
            match P.layout ch cat with
            | l -> Some (Array.length l)
            | exception Catalog.Unknown_table _ -> None)
          children
      in
      (match widths with
      | first :: rest ->
          List.iteri
            (fun i w ->
              if w <> first then
                D.report c ~rule:"PL006" ~severity:D.Error
                  ~path:(D.pushf path "branch[%d]" (i + 1))
                  "UNION ALL branch has width %d, expected %d" w first)
            rest
      | [] -> ());
      (match outs with o :: _ -> o | [] -> Some Pset.empty)
  | P.Setop_exec { op; left; right } ->
      let path =
        D.pushf path "setop[%s]"
          (match op with `Intersect -> "intersect" | `Minus -> "minus")
      in
      let lo = go c cat env (D.push path "l") left in
      let ro = go c cat env (D.push path "r") right in
      (match
         ( (match P.layout left cat with
           | l -> Some (Array.length l)
           | exception Catalog.Unknown_table _ -> None),
           match P.layout right cat with
           | l -> Some (Array.length l)
           | exception Catalog.Unknown_table _ -> None )
       with
      | Some lw, Some rw when lw <> rw ->
          D.report c ~rule:"PL006" ~severity:D.Error ~path
            "set-operation branches have widths %d and %d" lw rw
      | _ -> ());
      ignore ro;
      lo

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)
(* ------------------------------------------------------------------ *)

(** Data-flow and partial-order lint over a plan. *)
let check (cat : Catalog.t) (p : P.t) : D.t list =
  let c = D.collector () in
  ignore (go c cat (Some Pset.empty) D.root p);
  D.result c

(** [check] plus validation of the cost / cardinality annotations
    (PL003 / PL004). *)
let check_annotated (cat : Catalog.t) ~(cost : float) ~(rows : float)
    (p : P.t) : D.t list =
  let c = D.collector () in
  let finite_nonneg v = Float.is_finite v && v >= 0.0 in
  if not (finite_nonneg cost) then
    D.report c ~rule:"PL003" ~severity:D.Error ~path:D.root
      "plan cost %g is not finite and non-negative" cost;
  if not (finite_nonneg rows) then
    D.report c ~rule:"PL004" ~severity:D.Error ~path:D.root
      "plan cardinality %g is not finite and non-negative" rows;
  ignore (go c cat (Some Pset.empty) D.root p);
  D.result c

let errors (cat : Catalog.t) (p : P.t) : D.t list = D.errors (check cat p)
