(** Bottom-up semantic property inference over the query-tree IR.

    Derives, per query block (and per set-operation node), the semantic
    properties that gate the paper's transformations:

    - {b candidate keys / uniqueness} ([rp_keys], [rp_card1]) — from
      declared primary keys and unique constraints, absorbed through
      equi-joins by a key-absorption fixpoint, through GROUP BY keys and
      DISTINCT;
    - {b functional dependencies} ([rp_fds]) — key → row and select-item
      equivalences induced by conjunctive equality predicates;
    - {b nullability} ([rp_not_null]) — a per-output-column non-null
      lattice combining declared NOT NULL constraints, null-rejecting
      WHERE conjuncts, and outer-join null-extension (a [J_left] entry
      contributes nothing: all its columns may be null-padded);
    - {b equivalence classes} ({!Eqc}) — constant/column classes from
      conjunctive equality predicates, shared with {!Sem_check}'s
      predicate-derivability rules;
    - {b provable cardinality bounds} ([bound_query]) — an
      estimator-conformant upper bound on the true output cardinality
      (key ⇒ |out| ≤ |in|), used by the CB002 cost cross-check.

    Everything here is deliberately conservative: a property is reported
    only when provable from declared constraints and the tree's own
    conjuncts, so a missing property never indicts a legal rewrite. *)

open Sqlir
module A = Ast
module Sset = Walk.Sset

type rel_props = {
  rp_cols : string list;  (** output column names, in select order *)
  rp_keys : Sset.t list;  (** candidate keys over output column names *)
  rp_not_null : Sset.t;  (** output columns provably never null *)
  rp_fds : (Sset.t * string) list;  (** determinant set → dependent column *)
  rp_max_rows : float option;  (** provable output-cardinality bound *)
  rp_card1 : bool;  (** at most one output row *)
}

let no_props cols =
  {
    rp_cols = cols;
    rp_keys = [];
    rp_not_null = Sset.empty;
    rp_fds = [];
    rp_max_rows = None;
    rp_card1 = false;
  }

(* ------------------------------------------------------------------ *)
(* Equivalence classes from conjunctive equality predicates             *)
(* ------------------------------------------------------------------ *)

(** Union-find over expressions keyed by their printed form. *)
module Eqc = struct
  type t = (string, string) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let rec find (t : t) (x : string) : string =
    match Hashtbl.find_opt t x with
    | None | Some "" -> x
    | Some p when p = x -> x
    | Some p ->
        let r = find t p in
        Hashtbl.replace t x r;
        r

  let union (t : t) (a : string) (b : string) =
    let ra = find t a and rb = find t b in
    if ra <> rb then Hashtbl.replace t ra rb

  let same (t : t) (a : string) (b : string) = find t a = find t b

  let key_of_expr (e : A.expr) = Pp.expr_to_string e

  (** Record the [a = b] equalities of a conjunct list. *)
  let add_conjuncts (t : t) (ps : A.pred list) =
    List.iter
      (function
        | A.Cmp (A.Eq, a, b) -> union t (key_of_expr a) (key_of_expr b)
        | _ -> ())
      ps

  let of_conjuncts ps =
    let t = create () in
    add_conjuncts t ps;
    t

  let same_expr (t : t) (a : A.expr) (b : A.expr) =
    same t (key_of_expr a) (key_of_expr b)
end

(* ------------------------------------------------------------------ *)
(* Null-rejection of predicates                                         *)
(* ------------------------------------------------------------------ *)

(** Columns a conjunct provably null-rejects: rows where any of these
    columns is NULL cannot satisfy the conjunct. Comparisons and ranges
    evaluate to UNKNOWN on NULL inputs and UNKNOWN rows are filtered;
    [Lnnvl] deliberately keeps UNKNOWN rows, so it rejects nothing. *)
let rec null_rejected_cols (p : A.pred) : A.col list =
  match p with
  | A.Cmp (_, a, b) -> Walk.expr_cols a @ Walk.expr_cols b
  | A.Between (e, lo, hi) ->
      Walk.expr_cols e @ Walk.expr_cols lo @ Walk.expr_cols hi
  | A.In_list (e, _) -> Walk.expr_cols e
  | A.In_subq (es, _) -> List.concat_map Walk.expr_cols es
  | A.Not (A.Is_null e) -> Walk.expr_cols e
  | A.Not ((A.Cmp _ | A.Between _ | A.In_list _) as inner) ->
      null_rejected_cols inner
  | A.Or (a, b) ->
      (* a column is rejected by a disjunction iff both branches reject it *)
      let cb = null_rejected_cols b in
      List.filter (fun c -> List.mem c cb) (null_rejected_cols a)
  | _ -> []

(** Does conjunct [p] null-reject FROM entry [alias] — i.e. can no row
    in which every column of [alias] is NULL satisfy it? Used as the
    outer-join → inner-join simplification witness (SEM007). *)
let null_rejecting_for_alias ~(alias : string) (p : A.pred) : bool =
  List.exists (fun c -> c.A.c_alias = alias) (null_rejected_cols p)

(* ------------------------------------------------------------------ *)
(* Block environment                                                    *)
(* ------------------------------------------------------------------ *)

type benv = {
  be_block : A.block;
  be_entries : (string * A.from_entry * rel_props) list;
      (** alias, entry, properties of the entry's row source *)
  be_eq : Eqc.t;  (** equalities of WHERE plus all ON conjuncts *)
  be_nn : Sset.t;  (** ["alias.col"] provably non-null after FROM/WHERE *)
}

let qcol (a : string) (c : string) = a ^ "." ^ c

(* ------------------------------------------------------------------ *)
(* Property inference                                                   *)
(* ------------------------------------------------------------------ *)

let table_rows (cat : Catalog.t) (t : string) : float =
  match Catalog.stats cat t with
  | Some s -> float_of_int (max 1 s.Catalog.s_rows)
  | None -> 1000.

(** Keys of a base table, as column-name sets: primary key plus unique
    constraints (declared or enforced by a unique index), straight off
    the catalog's first-class constraint surface. *)
let table_keys (cat : Catalog.t) (t : string) : Sset.t list =
  match Catalog.find_table_opt cat t with
  | None -> []
  | Some _ ->
      let tc = Catalog.constraints cat t in
      let declared =
        (if tc.Catalog.tc_pkey = [] then [] else [ tc.Catalog.tc_pkey ])
        @ tc.Catalog.tc_uniques
      in
      List.sort_uniq compare (List.map Sset.of_list declared)

let table_props (cat : Catalog.t) (t : string) : rel_props =
  match Catalog.find_table_opt cat t with
  | None -> no_props []
  | Some def ->
      let cols = List.map (fun c -> c.Catalog.c_name) def.Catalog.t_cols in
      {
        rp_cols = cols;
        rp_keys = table_keys cat t;
        rp_not_null = Sset.of_list (Catalog.not_null_cols cat t);
        rp_fds = [];
        rp_max_rows = Some (table_rows cat t);
        rp_card1 = false;
      }

let rec entry_props (cat : Catalog.t) (fe : A.from_entry) : rel_props =
  match fe.A.fe_source with
  | A.S_table t -> table_props cat t
  | A.S_view vq ->
      let p = query_props cat vq in
      if Walk.is_correlated vq then
        (* a lateral (correlated) view repeats its per-invocation output
           across outer rows: uniqueness and cardinality bounds do not
           survive, nullability does *)
        { p with rp_keys = []; rp_card1 = false; rp_max_rows = None }
      else p

and block_env (cat : Catalog.t) (b : A.block) : benv =
  let entries =
    List.map (fun fe -> (fe.A.fe_alias, fe, entry_props cat fe)) b.A.from
  in
  let eq = Eqc.create () in
  Eqc.add_conjuncts eq b.A.where;
  List.iter (fun fe -> Eqc.add_conjuncts eq fe.A.fe_cond) b.A.from;
  (* base non-null facts: declared NOT NULL columns of every entry that
     is not null-extended by an outer join *)
  let nn = ref Sset.empty in
  List.iter
    (fun (alias, fe, p) ->
      if fe.A.fe_kind <> A.J_left then
        Sset.iter (fun c -> nn := Sset.add (qcol alias c) !nn) p.rp_not_null)
    entries;
  (* null-rejecting conjuncts: WHERE, plus the ON conditions of inner
     and semijoin entries (a left row whose join column is NULL finds no
     match and is filtered / not emitted); anti and outer ON conditions
     keep their non-matching rows, so they reject nothing *)
  let reject_preds =
    b.A.where
    @ List.concat_map
        (fun fe ->
          match fe.A.fe_kind with
          | A.J_inner | A.J_semi -> fe.A.fe_cond
          | _ -> [])
        b.A.from
  in
  List.iter
    (fun p ->
      List.iter
        (fun c -> nn := Sset.add (qcol c.A.c_alias c.A.c_col) !nn)
        (null_rejected_cols p))
    reject_preds;
  { be_block = b; be_entries = entries; be_eq = eq; be_nn = !nn }

and col_non_null (env : benv) (c : A.col) : bool =
  Sset.mem (qcol c.A.c_alias c.A.c_col) env.be_nn

(** Is [e] provably non-null on every row the block's FROM/WHERE
    produces? (Binds are excluded by design: a later execution may
    supply NULL, and the peeked value never drives legality.) *)
and expr_non_null (env : benv) (e : A.expr) : bool =
  match e with
  | A.Const v -> not (Value.is_null v)
  | A.Col c -> col_non_null env c
  | A.Binop (_, a, b) -> expr_non_null env a && expr_non_null env b
  | A.Neg a -> expr_non_null env a
  | A.Agg ((A.Count_star | A.Count), _, _) -> true
  | A.Agg ((A.Sum | A.Avg | A.Min | A.Max), Some a, _) ->
      (* with GROUP BY every group is non-empty, so an aggregate over a
         non-null argument is non-null; a scalar aggregate over an empty
         input is NULL *)
      env.be_block.A.group_by <> [] && expr_non_null env a
  | _ -> false

(* --- key absorption ------------------------------------------------ *)

(** Column [col] of entry [alias] is bound w.r.t. the remaining alias
    set [r]: equated (transitively) to a constant, a column of another
    remaining entry, or a correlation column (constant per invocation). *)
and col_bound (env : benv) ~(r : Sset.t) ~(alias : string) (col : string) :
    bool =
  let me = Eqc.key_of_expr (A.col alias col) in
  let local_aliases =
    List.fold_left (fun s (a, _, _) -> Sset.add a s) Sset.empty env.be_entries
  in
  (* scan every expression string that appears in the conjuncts for a
     class-mate usable as a binding *)
  let candidates = ref [] in
  let add_exprs e = candidates := e :: !candidates in
  let rec scan_pred = function
    | A.Cmp (A.Eq, a, b) ->
        add_exprs a;
        add_exprs b
    | A.And (a, b) ->
        scan_pred a;
        scan_pred b
    | _ -> ()
  in
  List.iter scan_pred env.be_block.A.where;
  List.iter (fun fe -> List.iter scan_pred fe.A.fe_cond) env.be_block.A.from;
  List.exists
    (fun e ->
      Eqc.same env.be_eq me (Eqc.key_of_expr e)
      &&
      match e with
      | A.Const v -> not (Value.is_null v)
      | A.Col c ->
          (not (c.A.c_alias = alias && c.A.c_col = col))
          && (Sset.mem c.A.c_alias (Sset.remove alias r)
             || not (Sset.mem c.A.c_alias local_aliases))
      | _ ->
          (* a compound expression binds if all its inputs come from
             other remaining entries or outside the block *)
          let cols = Walk.expr_cols e in
          cols <> []
          && List.for_all
               (fun c ->
                 Sset.mem c.A.c_alias (Sset.remove alias r)
                 || not (Sset.mem c.A.c_alias local_aliases))
               cols)
    !candidates

(** One key of [alias] is fully bound w.r.t. remaining set [r]. *)
and entry_absorbed (env : benv) ~(r : Sset.t) (alias : string)
    (p : rel_props) : bool =
  p.rp_card1
  || List.exists
       (fun key ->
         (not (Sset.is_empty key))
         && Sset.for_all (col_bound env ~r ~alias) key)
       p.rp_keys

(** Fixpoint: drop multiplier entries whose key is bound by the rest.
    Returns the aliases that still multiply the output cardinality. *)
and absorb_fixpoint (env : benv) : Sset.t =
  let multipliers =
    List.filter_map
      (fun (a, fe, _) ->
        match fe.A.fe_kind with
        | A.J_inner | A.J_left -> Some a
        | A.J_semi | A.J_anti | A.J_anti_na -> None)
      env.be_entries
  in
  let r = ref (Sset.of_list multipliers) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (a, _, p) ->
        if Sset.mem a !r && entry_absorbed env ~r:!r a p then (
          r := Sset.remove a !r;
          changed := true))
      env.be_entries
  done;
  !r

(* --- block output properties --------------------------------------- *)

and block_props (cat : Catalog.t) (b : A.block) : rel_props =
  let env = block_env cat b in
  let names = List.map (fun si -> si.A.si_name) b.A.select in
  let has_agg =
    List.exists (fun si -> Walk.expr_has_agg si.A.si_expr) b.A.select
    || b.A.group_by <> []
  in
  (* the select name of an expression, when exposed *)
  let exposed_name (e : A.expr) : string option =
    let pe = Pp.expr_to_string e in
    List.find_map
      (fun si ->
        if Pp.expr_to_string si.A.si_expr = pe then Some si.A.si_name
        else None)
      b.A.select
  in
  (* non-null lattice of the output *)
  let not_null =
    List.fold_left
      (fun acc si ->
        if expr_non_null env si.A.si_expr then Sset.add si.A.si_name acc
        else acc)
      Sset.empty b.A.select
  in
  (* cardinality-one detection *)
  let scalar_agg = b.A.group_by = [] && has_agg in
  let card1 = scalar_agg || b.A.limit = Some 1 in
  (* candidate keys *)
  let keys = ref [] in
  let add_key k = if not (List.exists (Sset.equal k) !keys) then keys := k :: !keys in
  if not card1 then (
    if b.A.distinct && names <> [] then add_key (Sset.of_list names);
    if b.A.group_by <> [] then (
      let exposed = List.map exposed_name b.A.group_by in
      if List.for_all Option.is_some exposed then
        add_key (Sset.of_list (List.map Option.get exposed)));
    if not has_agg then (
      (* compose a relation key from one key per remaining multiplier
         entry; absorbed and semi/anti entries contribute nothing *)
      let remaining = absorb_fixpoint env in
      let entry_key_choices =
        List.filter_map
          (fun (a, _, p) ->
            if Sset.mem a remaining then
              match p.rp_keys with
              | [] -> Some None (* keyless entry: no relation key *)
              | ks -> Some (Some (a, ks))
            else None)
          env.be_entries
      in
      if not (List.exists (( = ) None) entry_key_choices) then
        let choices = List.filter_map Fun.id entry_key_choices in
        (* keep the expansion small: first two keys per entry *)
        let rec combos = function
          | [] -> [ [] ]
          | (a, ks) :: rest ->
              let tails = combos rest in
              List.concat_map
                (fun k ->
                  List.map (fun tl -> (a, k) :: tl)
                    tails)
                (match ks with x :: y :: _ -> [ x; y ] | l -> l)
        in
        List.iter
          (fun combo ->
            let cols =
              List.concat_map
                (fun (a, k) ->
                  List.map (fun c -> A.col a c) (Sset.elements k))
                combo
            in
            let names' = List.map exposed_name cols in
            if cols <> [] && List.for_all Option.is_some names' then
              add_key (Sset.of_list (List.map Option.get names')))
          (combos choices)));
  (* functional dependencies: key → every other column, plus pairwise
     select-item equivalences *)
  let fds = ref [] in
  List.iter
    (fun k ->
      List.iter
        (fun n -> if not (Sset.mem n k) then fds := (k, n) :: !fds)
        names)
    !keys;
  List.iter
    (fun si1 ->
      List.iter
        (fun si2 ->
          if
            si1.A.si_name <> si2.A.si_name
            && (not (Walk.expr_has_agg si1.A.si_expr))
            && Eqc.same_expr env.be_eq si1.A.si_expr si2.A.si_expr
          then fds := (Sset.singleton si1.A.si_name, si2.A.si_name) :: !fds)
        b.A.select)
    b.A.select;
  (* provable cardinality bound *)
  let max_rows = bound_block cat b in
  {
    rp_cols = names;
    rp_keys = !keys;
    rp_not_null = not_null;
    rp_fds = !fds;
    rp_max_rows = max_rows;
    rp_card1 = card1;
  }

and query_props (cat : Catalog.t) (q : A.query) : rel_props =
  match q with
  | A.Block b -> block_props cat b
  | A.Setop (op, l, r) -> (
      let pl = query_props cat l and pr = query_props cat r in
      let pos_nn =
        (* positional intersection of branch non-null sets, named by the
           left branch (the output naming convention) *)
        let rnames = pr.rp_cols in
        Sset.of_list
          (List.filteri
             (fun i n ->
               Sset.mem n pl.rp_not_null
               && match List.nth_opt rnames i with
                  | Some rn -> Sset.mem rn pr.rp_not_null
                  | None -> false)
             pl.rp_cols)
      in
      let add f a b =
        match (a, b) with Some x, Some y -> Some (f x y) | _ -> None
      in
      let all_cols_key =
        if pl.rp_cols = [] then [] else [ Sset.of_list pl.rp_cols ]
      in
      match op with
      | A.Union_all ->
          {
            (no_props pl.rp_cols) with
            rp_not_null = pos_nn;
            rp_max_rows = add ( +. ) pl.rp_max_rows pr.rp_max_rows;
          }
      | A.Union ->
          {
            (no_props pl.rp_cols) with
            rp_not_null = pos_nn;
            rp_keys = all_cols_key;
            rp_max_rows = add ( +. ) pl.rp_max_rows pr.rp_max_rows;
          }
      | A.Intersect ->
          {
            (no_props pl.rp_cols) with
            rp_not_null = Sset.union pl.rp_not_null pos_nn;
            rp_keys = all_cols_key;
            rp_max_rows = add Float.min pl.rp_max_rows pr.rp_max_rows;
          }
      | A.Minus ->
          {
            (no_props pl.rp_cols) with
            rp_not_null = pl.rp_not_null;
            rp_keys = all_cols_key;
            rp_max_rows = pl.rp_max_rows;
          })

(* ------------------------------------------------------------------ *)
(* Estimator-conformant cardinality bounds (CB002)                      *)
(* ------------------------------------------------------------------ *)

(** Key absorption for the {e cost} cross-check is stricter than for
    uniqueness: the bound must hold for the cost model's own arithmetic,
    so an entry only stops multiplying the estimate when the estimator
    provably applies a selectivity ≤ 1/rows for it — a single-column
    key whose catalog NDV is at least the table's row count (exact for
    unique columns even under sampled statistics), equated by a
    conjunct whose other references are all inner entries (a conjunct
    consumed at an outer-join extension disappears into
    [max(left, inner)] and reduces nothing). *)
and bound_block (cat : Catalog.t) (b : A.block) : float option =
  let inner_aliases =
    List.filter_map
      (fun fe ->
        if fe.A.fe_kind = A.J_inner then Some fe.A.fe_alias else None)
      b.A.from
    |> Sset.of_list
  in
  let local_aliases =
    List.fold_left
      (fun s fe -> Sset.add fe.A.fe_alias s)
      Sset.empty b.A.from
  in
  (* strict single-column keys of a base-table entry: NDV ≥ rows in the
     very statistics the estimator reads *)
  let strict_keys (t : string) : Sset.t =
    match Catalog.stats cat t with
    | None -> Sset.empty
    | Some s ->
        let rows = max 1 s.Catalog.s_rows in
        List.fold_left
          (fun acc key ->
            match Sset.elements key with
            | [ c ] -> (
                match List.assoc_opt c s.Catalog.s_cols with
                | Some cs when cs.Catalog.s_ndv >= rows -> Sset.add c acc
                | _ -> acc)
            | _ -> acc)
          Sset.empty (table_keys cat t)
  in
  let entry_table fe =
    match fe.A.fe_source with A.S_table t -> Some t | A.S_view _ -> None
  in
  (* the witnessing side of an equality conjunct: Col of a strict key *)
  let key_side (fe : A.from_entry) (e : A.expr) : bool =
    match (e, entry_table fe) with
    | A.Col c, Some t ->
        c.A.c_alias = fe.A.fe_alias && Sset.mem c.A.c_col (strict_keys t)
    | _ -> false
  in
  (* conjuncts usable as absorption witnesses for entry [fe]: every
     referenced local alias is an inner entry or [fe] itself when [fe]
     is the outer-join entry the conjunct comes from *)
  let witnesses (fe : A.from_entry) : A.pred list =
    let ok_aliases allowed p =
      Sset.for_all
        (fun a -> Sset.mem a allowed || not (Sset.mem a local_aliases))
        (Walk.pred_aliases p)
    in
    match fe.A.fe_kind with
    | A.J_inner -> List.filter (ok_aliases inner_aliases) b.A.where
    | A.J_left ->
        List.filter
          (ok_aliases (Sset.add fe.A.fe_alias inner_aliases))
          fe.A.fe_cond
    | _ -> []
  in
  let absorbed = Hashtbl.create 8 in
  let try_absorb (fe : A.from_entry) =
    if not (Hashtbl.mem absorbed fe.A.fe_alias) then
      let found =
        List.exists
          (function
            | A.Cmp (A.Eq, l, r) -> key_side fe l || key_side fe r
            | _ -> false)
          (witnesses fe)
      in
      if found then Hashtbl.replace absorbed fe.A.fe_alias ()
  in
  List.iter try_absorb b.A.from;
  let factor fe =
    match fe.A.fe_kind with
    | A.J_semi | A.J_anti | A.J_anti_na -> Some 1.
    | A.J_inner | A.J_left ->
        let base =
          if Hashtbl.mem absorbed fe.A.fe_alias then Some 1.
          else
            match fe.A.fe_source with
            | A.S_table t -> Some (table_rows cat t)
            | A.S_view vq -> bound_query cat vq
        in
        if fe.A.fe_kind = A.J_left then
          Option.map (fun f -> Float.max 1. f) base
        else base
  in
  let raw =
    List.fold_left
      (fun acc fe ->
        match (acc, factor fe) with
        | Some a, Some f -> Some (a *. f)
        | _ -> None)
      (Some 1.) b.A.from
  in
  let scalar_agg =
    b.A.group_by = []
    && List.exists (fun si -> Walk.expr_has_agg si.A.si_expr) b.A.select
  in
  let bounded = if scalar_agg then Some 1. else raw in
  match (bounded, b.A.limit) with
  | Some r, Some k -> Some (Float.min r (float_of_int k))
  | Some r, None -> Some r
  | None, Some k -> Some (float_of_int k)
  | None, None -> None

and bound_query (cat : Catalog.t) (q : A.query) : float option =
  match q with
  | A.Block b -> bound_block cat b
  | A.Setop (op, l, r) -> (
      let bl = bound_query cat l and br = bound_query cat r in
      match op with
      | A.Union_all | A.Union -> (
          match (bl, br) with
          | Some a, Some b -> Some (a +. b)
          | _ -> None)
      | A.Intersect -> (
          match (bl, br) with
          | Some a, Some b -> Some (Float.min a b)
          | Some a, None -> Some a
          | None, b -> b)
      | A.Minus -> bl)
