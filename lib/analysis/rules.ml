(** The stable diagnostic-rule registry.

    Every rule the analysis layer (or the driver's sanitizer) can emit
    is declared here, once, with a frozen identifier. Identifiers are
    append-only: a retired rule keeps its row (flagged [r_retired]) so
    its number is never reused, and renumbering is forbidden — external
    tooling, CI baselines and the DESIGN.md catalog all key on these
    strings. [test/test_analysis.ml] pins the full table.

    Namespaces:
    - [IR]  — structural well-formedness of a query tree ({!Ir_check})
    - [PL]  — physical-plan lint ({!Plan_check})
    - [TX]  — transformation mechanics (sharing / over-copying,
              {!Copy_check})
    - [SEM] — transformation legality: semantic properties re-derived
              before/after a rewrite ({!Sem_check})
    - [CB]  — cost-model cross-checks (driver + {!Sem_check} bounds) *)

type rule = {
  r_id : string;
  r_summary : string;
  r_retired : bool;
}

let r id summary = { r_id = id; r_summary = summary; r_retired = false }

let all : rule list =
  [
    (* --- IR: structural checks over the query tree --- *)
    r "IR001" "FROM references a table the catalog does not know";
    r "IR002" "column references an alias not in scope";
    r "IR003" "column does not exist on the referenced source";
    r "IR004" "duplicate alias in one FROM clause";
    r "IR005" "aggregate in WHERE or ON";
    r "IR006" "selected expression not covered by GROUP BY";
    r "IR007" "non-inner FROM entry with an empty ON condition";
    r "IR008" "leading FROM entry has a non-inner join role";
    r "IR009" "set-operation branches of different arity";
    r "IR010" "non-positive ROWNUM limit";
    r "IR011" "duplicate output column name in a select list";
    r "IR012" "window function outside SELECT/ORDER BY";
    r "IR013" "empty select list";
    r "IR014" "empty FROM clause";
    r "IR015" "negative bind index";
    (* --- PL: physical-plan lint --- *)
    r "PL001" "operator consumes a column no child produces";
    r "PL002" "hash/merge join with a correlated right side";
    r "PL003" "non-finite plan cost annotation";
    r "PL004" "negative or NaN cardinality annotation";
    r "PL005" "subquery predicate inside a plain filter";
    r "PL006" "UNION ALL branches of different width";
    r "PL007" "plan scans a table the catalog does not know";
    (* --- TX: transformation mechanics --- *)
    r "TX001" "transformation copied blocks it did not change";
    (* --- SEM: transformation legality --- *)
    r "SEM001" "subquery unnested without duplicate-safety";
    r "SEM002" "null-aware (anti)join downgraded without a non-null proof";
    r "SEM003" "join eliminated without a witnessing key/FK";
    r "SEM004" "scalar COUNT subquery unnested as an inner join (COUNT bug)";
    r "SEM005" "GROUP BY changed in violation of FD closure";
    r "SEM006" "added WHERE conjunct not derivable from the original tree";
    r "SEM007" "join role changed without the required witness";
    (* --- CB: cost-model cross-checks --- *)
    r "CB001" "search state fails to optimize although its base state does";
    r "CB002" "cardinality estimate exceeds a provable key-derived bound";
    r "CB003" "column NDV estimate exceeds the block's cardinality estimate";
    r "CB004" "search result inconsistent with the states it evaluated";
  ]

let find id = List.find_opt (fun rl -> rl.r_id = id) all
let is_registered id = find id <> None

(** Rules of one namespace prefix, e.g. ["SEM"]. *)
let of_namespace prefix =
  List.filter
    (fun rl ->
      String.length rl.r_id >= String.length prefix
      && String.sub rl.r_id 0 (String.length prefix) = prefix)
    all
