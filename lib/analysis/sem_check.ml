(** Transformation-legality verification: the SEM rule family.

    {!Props} infers semantic properties (keys, nullability, functional
    dependencies, equivalence classes); this module re-derives them on
    the {e before} and {e after} trees of every transformation attempt
    and demands the witness each structural change requires:

    - {b SEM001} — a subquery was unnested into a join whose role does
      not preserve duplicates (semi/anti vs inner distinctness);
    - {b SEM002} — a null-aware antijoin was downgraded to a plain
      antijoin without a proof that the compared sides are non-null;
    - {b SEM003} — a join was eliminated without a witnessing key/FK;
    - {b SEM004} — a scalar [COUNT] subquery was unnested as an inner
      join (the classic {e count bug}: unmatched outer rows must still
      see [COUNT() = 0]);
    - {b SEM005} — GROUP BY keys changed in violation of FD closure;
    - {b SEM006} — a WHERE conjunct appeared out of thin air: it is not
      derivable from the original tree by equivalence-class closure,
      view substitution, or pull-up;
    - {b SEM007} — a join role changed (outer → inner, …) without the
      required null-rejection / uniqueness witness.

    The unit of verification is {!Transform.Tx.block_delta}: blocks are
    paired by [qb_name] and each rule looks for its characteristic
    delta. The design bias is {e zero false positives}: a rule stays
    silent unless the delta unambiguously matches the rewrite shape it
    polices, so unknown rewrites are never indicted — they are caught
    dynamically by the refeval oracle instead.

    The CB cross-checks ({!check_annotation}) compare the cost model's
    estimates against {!Props.bound_query}'s provable cardinality
    bounds: an estimate above a provable bound (CB002), or a column NDV
    above the block's own cardinality estimate (CB003), indicts the
    estimator arithmetic, not the tree. *)

open Sqlir
module A = Ast
module D = Diagnostics
module Tx = Transform.Tx
module Sset = Walk.Sset

let pp_p = Pp.pred_to_string
let pp_e = Pp.expr_to_string

let jkind_str = function
  | A.J_inner -> "inner"
  | A.J_left -> "left-outer"
  | A.J_semi -> "semi"
  | A.J_anti -> "anti"
  | A.J_anti_na -> "anti-na"

let mirror_cmp = function
  | A.Eq -> A.Eq
  | A.Ne -> A.Ne
  | A.Lt -> A.Gt
  | A.Gt -> A.Lt
  | A.Le -> A.Ge
  | A.Ge -> A.Le

(** Orientation-insensitive rendering: [a = b] and [b = a] (and the
    mirrored inequalities) canonicalize to the same string, so
    predicate-identity comparisons don't depend on which side a
    transformation happened to write first. *)
let canon_p (p : A.pred) : string =
  match p with
  | A.Cmp (op, a, b) ->
      let s1 = pp_p p and s2 = pp_p (A.Cmp (mirror_cmp op, b, a)) in
      if String.compare s1 s2 <= 0 then s1 else s2
  | _ -> pp_p p

(* ------------------------------------------------------------------ *)
(* Small helpers                                                        *)
(* ------------------------------------------------------------------ *)

let subq_pred = function
  | A.In_subq _ | A.Not_in_subq _ | A.Exists _ | A.Not_exists _
  | A.Cmp_subq _ ->
      true
  | _ -> false

(** Every WHERE / HAVING / ON conjunct of every block of a tree. *)
let tree_conjuncts (q : A.query) : A.pred list =
  let acc = ref [] in
  Tx.iter_blocks
    (fun b ->
      acc :=
        b.A.where @ b.A.having
        @ List.concat_map (fun fe -> fe.A.fe_cond) b.A.from
        @ !acc)
    q;
  !acc

(** Entry [alias] of block [b] contributes at most one row per
    combination of the other entries: one of its keys is fully bound by
    equalities to the rest of the block (or to constants / correlation
    columns). The duplicate-safety witness for SEM001/SEM007. *)
let entry_unique (cat : Catalog.t) (b : A.block) (alias : string) : bool =
  let env = Props.block_env cat b in
  match List.find_opt (fun (a, _, _) -> a = alias) env.Props.be_entries with
  | None -> false
  | Some (_, _, p) ->
      let r =
        List.fold_left
          (fun s (a, _, _) -> Sset.add a s)
          Sset.empty env.Props.be_entries
      in
      Props.entry_absorbed env ~r alias p

(** Non-null proof for antijoin downgrades: the outer-side expressions
    in the block that owned the subquery predicate, and the subquery's
    select items in the subquery's own scope. *)
let anti_nonnull (cat : Catalog.t) (outer : A.block) (es : A.expr list)
    (sq : A.query) : bool =
  let oenv = Props.block_env cat outer in
  List.for_all (Props.expr_non_null oenv) es
  &&
  match sq with
  | A.Setop _ -> false
  | A.Block sb ->
      let senv = Props.block_env cat sb in
      List.for_all
        (fun si -> Props.expr_non_null senv si.A.si_expr)
        sb.A.select

(** Does the (single-block) subquery compute a [COUNT]? *)
let count_subquery = function
  | A.Block sb ->
      List.exists
        (fun si ->
          match si.A.si_expr with
          | A.Agg ((A.Count | A.Count_star), _, _) -> true
          | _ -> false)
        sb.A.select
  | A.Setop _ -> false

(* ------------------------------------------------------------------ *)
(* SEM001 / SEM002 / SEM004 — subquery unnesting                        *)
(* ------------------------------------------------------------------ *)

(** A removed subquery predicate paired (positionally) with the FROM
    entry that replaced it. *)
let check_unnest (c : D.collector) (cat : Catalog.t) (d : Tx.block_delta)
    (p : A.pred) (fe : A.from_entry) =
  let path = d.Tx.bd_name in
  let fire rule fmt = D.report c ~rule ~severity:D.Error ~path fmt in
  let kind = fe.A.fe_kind in
  let alias = fe.A.fe_alias in
  (* [semi_family]: EXISTS / IN / = ANY — an inner join is only safe
     when the new entry provably cannot duplicate outer rows *)
  let semi_family () =
    match kind with
    | A.J_semi -> ()
    | A.J_inner when entry_unique cat d.Tx.bd_after alias -> ()
    | _ ->
        fire "SEM001"
          "subquery predicate %s unnested as a %s entry %s without a \
           duplicate-safety witness"
          (pp_p p)
          (jkind_str kind)
          alias
  in
  (* [anti_family]: NOT IN / <> ALL — null-aware unless proven safe *)
  let anti_family es sq =
    match kind with
    | A.J_anti_na -> ()
    | A.J_anti ->
        if not (anti_nonnull cat d.Tx.bd_before es sq) then
          fire "SEM002"
            "null-aware predicate %s unnested as a plain antijoin %s \
             without a non-null proof for the compared sides"
            (pp_p p) alias
    | _ ->
        fire "SEM001" "predicate %s unnested as a %s entry %s" (pp_p p)
          (jkind_str kind)
          alias
  in
  (* scalar subquery: the unnested view must yield at most one row per
     outer row — cardinality-one, or grouped by keys all equi-joined
     back to the outer block *)
  let scalar sq =
    if count_subquery sq && kind = A.J_inner then
      fire "SEM004"
        "scalar COUNT subquery unnested as an inner join %s: unmatched \
         outer rows must still observe COUNT() = 0"
        alias
    else
      let grouped_witness () =
        match fe.A.fe_source with
        | A.S_view (A.Block vb) when vb.A.group_by <> [] ->
            let exposed =
              List.map
                (fun g ->
                  List.find_opt
                    (fun si -> pp_e si.A.si_expr = pp_e g)
                    vb.A.select)
                vb.A.group_by
            in
            let conjs = d.Tx.bd_after.A.where @ fe.A.fe_cond in
            List.for_all Option.is_some exposed
            && List.for_all
                 (fun si_opt ->
                   let n = (Option.get si_opt).A.si_name in
                   let no_self e =
                     not
                       (List.exists
                          (fun cl -> cl.A.c_alias = alias)
                          (Walk.expr_cols e))
                   in
                   List.exists
                     (function
                       | A.Cmp (A.Eq, A.Col cl, e)
                         when cl.A.c_alias = alias && cl.A.c_col = n ->
                           no_self e
                       | A.Cmp (A.Eq, e, A.Col cl)
                         when cl.A.c_alias = alias && cl.A.c_col = n ->
                           no_self e
                       | _ -> false)
                     conjs)
                 exposed
        | _ -> false
      in
      let card1 () =
        match fe.A.fe_source with
        | A.S_view vq -> (Props.query_props cat vq).Props.rp_card1
        | A.S_table _ -> false
      in
      match kind with
      | (A.J_inner | A.J_left) when card1 () || grouped_witness () -> ()
      | _ ->
          fire "SEM001"
            "scalar subquery %s unnested as entry %s without a \
             single-row-per-outer-row witness"
            (pp_p p) alias
  in
  match p with
  | A.Exists _ | A.In_subq _ | A.Cmp_subq (_, _, Some A.Q_any, _) ->
      semi_family ()
  | A.Not_exists _ ->
      if kind <> A.J_anti then
        fire "SEM001" "NOT EXISTS %s unnested as a %s entry %s" (pp_p p)
          (jkind_str kind)
          alias
  | A.Not_in_subq (es, sq) -> anti_family es sq
  | A.Cmp_subq (_, lhs, Some A.Q_all, sq) -> anti_family [ lhs ] sq
  | A.Cmp_subq (_, _, None, sq) -> scalar sq
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* SEM003 — join elimination                                            *)
(* ------------------------------------------------------------------ *)

let check_removed_entry (c : D.collector) (cat : Catalog.t)
    (d : Tx.block_delta) (fe : A.from_entry) =
  let path = d.Tx.bd_name in
  let fire fmt = D.report c ~rule:"SEM003" ~severity:D.Error ~path fmt in
  let alias = fe.A.fe_alias in
  match fe.A.fe_source with
  | A.S_view _ -> () (* view elimination is view merging's business *)
  | A.S_table t -> (
      match (fe.A.fe_kind, Catalog.find_table_opt cat t) with
      | _, None -> ()
      | A.J_inner, Some def ->
          (* FK inner-join elimination: the removed table's full primary
             key equated to the FK columns of a single surviving inner
             base table, with IS NOT NULL guards for nullable FK cols *)
          let pk = def.Catalog.t_pkey in
          let pairings = ref [] in
          List.iter
            (fun p ->
              match p with
              | A.Cmp (A.Eq, A.Col c1, A.Col c2) ->
                  if
                    c1.A.c_alias = alias
                    && List.mem c1.A.c_col pk
                    && c2.A.c_alias <> alias
                  then pairings := (c1.A.c_col, c2) :: !pairings
                  else if
                    c2.A.c_alias = alias
                    && List.mem c2.A.c_col pk
                    && c1.A.c_alias <> alias
                  then pairings := (c2.A.c_col, c1) :: !pairings
              | _ -> ())
            d.Tx.bd_before.A.where;
          let witnessed =
            pk <> []
            && List.for_all (fun k -> List.mem_assoc k !pairings) pk
            &&
            match !pairings with
            | [] -> false
            | (_, c0) :: _ -> (
                let r = c0.A.c_alias in
                List.for_all (fun (_, cl) -> cl.A.c_alias = r) !pairings
                &&
                match
                  List.find_opt
                    (fun o -> o.A.fe_alias = r)
                    d.Tx.bd_before.A.from
                with
                | Some
                    { A.fe_source = A.S_table rt; fe_kind = A.J_inner; _ }
                  ->
                    let fk_pairs =
                      List.filter_map
                        (fun k ->
                          Option.map
                            (fun cl -> (cl.A.c_col, k))
                            (List.assoc_opt k !pairings))
                        pk
                    in
                    Catalog.fk_between cat ~table:rt
                      ~cols:(List.map fst fk_pairs)
                      ~ref_table:t ~ref_cols:(List.map snd fk_pairs)
                    <> None
                    && List.for_all
                         (fun (fk_col, _) ->
                           (not
                              (Catalog.col_nullable cat ~table:rt
                                 ~col:fk_col))
                           || List.exists
                                (fun g ->
                                  pp_p g
                                  = pp_p
                                      (A.Not
                                         (A.Is_null (A.col r fk_col))))
                                d.Tx.bd_after.A.where)
                         fk_pairs
                | _ -> false)
          in
          if not witnessed then
            fire
              "inner join to %s (%s) eliminated without a witnessing \
               foreign key onto its primary key"
              alias t
      | A.J_left, Some _ ->
          (* unique-key outer-join elimination: every ON conjunct is an
             equality on a column set covering a key of the entry *)
          let eq_cols =
            List.filter_map
              (fun p ->
                match p with
                | A.Cmp (A.Eq, A.Col c1, A.Col c2) ->
                    if c1.A.c_alias = alias && c2.A.c_alias <> alias then
                      Some c1.A.c_col
                    else if c2.A.c_alias = alias && c1.A.c_alias <> alias
                    then Some c2.A.c_col
                    else None
                | _ -> None)
              fe.A.fe_cond
          in
          if
            not
              (List.length eq_cols = List.length fe.A.fe_cond
              && Catalog.covers_key cat ~table:t ~cols:eq_cols)
          then
            fire
              "left-outer join to %s (%s) eliminated without a unique-key \
               witness on its ON condition"
              alias t
      | (A.J_semi | A.J_anti | A.J_anti_na), Some _ ->
          fire "filtering %s entry %s removed outright"
            (jkind_str fe.A.fe_kind)
            alias)

(* ------------------------------------------------------------------ *)
(* SEM005 — GROUP BY vs FD closure                                      *)
(* ------------------------------------------------------------------ *)

let check_group (c : D.collector) (cat : Catalog.t) (d : Tx.block_delta) =
  let b = d.Tx.bd_before and a = d.Tx.bd_after in
  let path = d.Tx.bd_name in
  let fire fmt = D.report c ~rule:"SEM005" ~severity:D.Error ~path fmt in
  let removed = Tx.multiset_diff pp_e b.A.group_by a.A.group_by in
  let added = Tx.multiset_diff pp_e a.A.group_by b.A.group_by in
  let local_aliases =
    List.fold_left
      (fun s fe -> Sset.add fe.A.fe_alias s)
      Sset.empty (b.A.from @ a.A.from)
  in
  let conjs =
    b.A.where @ a.A.where
    @ List.concat_map (fun fe -> fe.A.fe_cond) (b.A.from @ a.A.from)
  in
  let eq = Props.Eqc.of_conjuncts conjs in
  let eq_sides =
    List.concat_map
      (function A.Cmp (A.Eq, x, y) -> [ x; y ] | _ -> [])
      conjs
  in
  (* an expression over constants / correlation columns only: grouping
     by it neither splits nor merges groups *)
  let alias_free e =
    List.for_all
      (fun cl -> not (Sset.mem cl.A.c_alias local_aliases))
      (Walk.expr_cols e)
  in
  let equated_external g =
    alias_free g
    || List.exists
         (fun e -> alias_free e && Props.Eqc.same_expr eq g e)
         eq_sides
  in
  (* the group-by placement mapping: a removed key reappears as an
     output of an added (grouped) view — and vice versa *)
  let added_view_selects =
    List.filter_map
      (fun fe ->
        match fe.A.fe_source with
        | A.S_view (A.Block vb) -> Some (fe.A.fe_alias, vb.A.select)
        | _ -> None)
      d.Tx.bd_added_entries
  in
  let mapped_through_view g_removed g_added =
    match g_added with
    | A.Col cl -> (
        match List.assoc_opt cl.A.c_alias added_view_selects with
        | None -> false
        | Some sel ->
            List.exists
              (fun si ->
                si.A.si_name = cl.A.c_col
                && pp_e si.A.si_expr = pp_e g_removed)
              sel)
    | _ -> false
  in
  if b.A.group_by <> [] then (
    List.iter
      (fun g ->
        let ok =
          equated_external g
          || List.exists (mapped_through_view g) added
        in
        if not ok then
          fire "group-by key %s dropped without an FD witness" (pp_e g))
      removed;
    List.iter
      (fun k ->
        let ok =
          equated_external k
          || List.exists (fun g -> mapped_through_view g k) removed
          || List.exists (fun g -> Props.Eqc.same_expr eq g k) removed
        in
        if not ok then
          fire "group-by key %s added without an FD witness" (pp_e k))
      added;
    if
      a.A.group_by = []
      && List.exists (fun si -> Walk.expr_has_agg si.A.si_expr) a.A.select
    then
      (* collapsing to a scalar aggregate fabricates a row for empty
         input unless guarded (the JPPD group-removal guard) *)
      let guard =
        A.Cmp
          (A.Gt, A.Agg (A.Count_star, None, false), A.Const (Value.Int 0))
      in
      if not (List.exists (fun h -> pp_p h = pp_p guard) a.A.having) then
        fire
          "GROUP BY removed under aggregates without an empty-group \
           guard (COUNT(*) > 0)")
  else if a.A.group_by <> [] then (
    (* grouping appeared on an ungrouped block: legal only as group-by
       view merging — a grouped view was inlined and every surviving
       multiplying entry's key joined the new GROUP BY *)
    let merged_grouped_view =
      List.exists
        (fun fe ->
          match fe.A.fe_source with
          | A.S_view (A.Block vb) ->
              vb.A.group_by <> [] || Walk.block_has_agg vb
          | _ -> false)
        d.Tx.bd_removed_entries
    in
    if not merged_grouped_view then
      fire "GROUP BY introduced on a previously ungrouped block"
    else
      let group_strs = List.map pp_e a.A.group_by in
      List.iter
        (fun fe ->
          let survives =
            List.exists
              (fun o -> o.A.fe_alias = fe.A.fe_alias)
              a.A.from
          in
          match fe.A.fe_kind with
          | A.J_semi | A.J_anti | A.J_anti_na -> ()
          | A.J_inner | A.J_left ->
              if survives then (
                match Tx.entry_key cat fe with
                | Some key
                  when List.for_all
                         (fun kc ->
                           List.mem
                             (pp_e (A.col fe.A.fe_alias kc))
                             group_strs)
                         key ->
                    ()
                | _ ->
                    fire
                      "group-by view merge leaves surviving entry %s \
                       without its key in the new GROUP BY"
                      fe.A.fe_alias))
        b.A.from)

(* ------------------------------------------------------------------ *)
(* SEM006 — added WHERE conjuncts must be derivable                     *)
(* ------------------------------------------------------------------ *)

let check_added_where (c : D.collector) (d : Tx.block_delta)
    (before_conjs : A.pred list) =
  let path = d.Tx.bd_name in
  let before_strs = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace before_strs (canon_p p) ()) before_conjs;
  let added_aliases =
    List.map (fun fe -> fe.A.fe_alias) d.Tx.bd_added_entries
  in
  let block_conjs =
    d.Tx.bd_before.A.where @ d.Tx.bd_after.A.where
    @ List.concat_map
        (fun fe -> fe.A.fe_cond)
        (d.Tx.bd_before.A.from @ d.Tx.bd_after.A.from)
  in
  let eq = Props.Eqc.of_conjuncts block_conjs in
  let select_map sel = List.map (fun si -> (si.A.si_name, si.A.si_expr)) sel in
  (* substitution sources: the paired block's own output (predicates
     pushed through this block's select) … *)
  let own_maps =
    [ select_map d.Tx.bd_before.A.select; select_map d.Tx.bd_after.A.select ]
  in
  (* … and the after-tree views of this block (predicates pulled up
     through a view's — possibly freshly widened — select) *)
  let view_maps =
    List.filter_map
      (fun fe ->
        match fe.A.fe_source with
        | A.S_view vq -> (
            match A.leaves vq with
            | lb :: _ -> Some (fe.A.fe_alias, select_map lb.A.select)
            | [] -> None)
        | A.S_table _ -> None)
      d.Tx.bd_after.A.from
  in
  let subst_matches (p : A.pred) : bool =
    (* pushdown: some original conjunct, rewritten through a select map
       of this block, yields [p] *)
    List.exists
      (fun q ->
        Sset.exists
          (fun al ->
            List.exists
              (fun m ->
                match Walk.substitute_alias ~alias:al ~subst:m q with
                | q' -> canon_p q' = canon_p p
                | exception Not_found -> false)
              own_maps)
          (Walk.pred_aliases q))
      before_conjs
    || (* pull-up: [p], rewritten through one of this block's view
          selects, is an original conjunct *)
    List.exists
      (fun (v, m) ->
        Sset.mem v (Walk.pred_aliases p)
        &&
        match Walk.substitute_alias ~alias:v ~subst:m p with
        | p' -> Hashtbl.mem before_strs (canon_p p')
        | exception Not_found -> false)
      view_maps
  in
  let transitive_match (p : A.pred) : bool =
    List.exists
      (fun q ->
        match (p, q) with
        | A.Cmp (op1, l1, r1), A.Cmp (op2, l2, r2) ->
            (op1 = op2
             && Props.Eqc.same_expr eq l1 l2
             && Props.Eqc.same_expr eq r1 r2)
            || (op1 = mirror_cmp op2
                && Props.Eqc.same_expr eq l1 r2
                && Props.Eqc.same_expr eq r1 l2)
        | A.In_list (e1, vs1), A.In_list (e2, vs2) ->
            Props.Eqc.same_expr eq e1 e2
            && List.length vs1 = List.length vs2
            && List.for_all2 (fun a b -> Value.compare_total a b = 0) vs1 vs2
        | A.Between (e1, lo1, hi1), A.Between (e2, lo2, hi2) ->
            Props.Eqc.same_expr eq e1 e2
            && Props.Eqc.same_expr eq lo1 lo2
            && Props.Eqc.same_expr eq hi1 hi2
        | _ -> false)
      before_conjs
  in
  List.iter
    (fun p ->
      let skip =
        Walk.pred_has_subquery p
        || Sset.exists
             (fun al -> List.mem al added_aliases)
             (Walk.pred_aliases p)
        || (match p with
           | A.Not (A.Is_null _) -> d.Tx.bd_removed_entries <> []
           | _ -> false)
        || Hashtbl.mem before_strs (canon_p p)
        || transitive_match p || subst_matches p
      in
      if not skip then
        D.report c ~rule:"SEM006" ~severity:D.Error ~path
          "added WHERE conjunct %s is not derivable from the original tree"
          (pp_p p))
    d.Tx.bd_added_where

(* ------------------------------------------------------------------ *)
(* SEM007 — join-role changes                                           *)
(* ------------------------------------------------------------------ *)

let check_kind (c : D.collector) (cat : Catalog.t) (d : Tx.block_delta)
    ((bfe, afe) : A.from_entry * A.from_entry) =
  let path = d.Tx.bd_name in
  let alias = afe.A.fe_alias in
  let fire rule fmt = D.report c ~rule ~severity:D.Error ~path fmt in
  let outer_inner_ok () =
    (* a null-rejecting WHERE conjunct on the entry filters the padded
       rows an outer join would add, collapsing it to inner — and
       conversely licenses padding an inner join *)
    List.exists
      (Props.null_rejecting_for_alias ~alias)
      d.Tx.bd_after.A.where
  in
  let anti_na_ok () =
    (* the sides actually compared across the antijoin must be provably
       non-null; entry-local filter conjuncts don't null-extend *)
    let env = Props.block_env cat d.Tx.bd_after in
    let crossing p =
      let als = Walk.pred_aliases p in
      Sset.mem alias als && not (Sset.equal als (Sset.singleton alias))
    in
    List.for_all
      (fun p ->
        (not (crossing p))
        ||
        match p with
        | A.Cmp (_, x, y) ->
            Props.expr_non_null env x && Props.expr_non_null env y
        | _ -> false)
      afe.A.fe_cond
  in
  match (bfe.A.fe_kind, afe.A.fe_kind) with
  | A.J_left, A.J_inner ->
      if not (outer_inner_ok ()) then
        fire "SEM007"
          "outer join %s simplified to inner without a null-rejecting \
           WHERE conjunct"
          alias
  | A.J_inner, A.J_left ->
      if not (outer_inner_ok ()) then
        fire "SEM007"
          "inner join %s generalized to outer without a null-rejecting \
           WHERE conjunct"
          alias
  | (A.J_anti_na, A.J_anti | A.J_anti, A.J_anti_na) ->
      if not (anti_na_ok ()) then
        fire "SEM002"
          "antijoin %s changed null-awareness without a non-null proof \
           for the compared sides"
          alias
  | A.J_inner, A.J_semi ->
      if not (entry_unique cat d.Tx.bd_before bfe.A.fe_alias) then
        fire "SEM001"
          "inner join %s narrowed to semijoin without a uniqueness \
           witness"
          alias
  | A.J_semi, A.J_inner ->
      if not (entry_unique cat d.Tx.bd_after alias) then
        fire "SEM001"
          "semijoin %s widened to inner join without a uniqueness witness"
          alias
  | bk, ak ->
      fire "SEM007" "entry %s changed join role %s -> %s without a witness"
        alias
        (jkind_str bk)
        (jkind_str ak)

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)
(* ------------------------------------------------------------------ *)

let block_errors (c : D.collector) (cat : Catalog.t)
    (before_conjs : A.pred list) (d : Tx.block_delta) =
  (* subquery unnesting: k removed subquery predicates replaced by k new
     FROM entries, paired positionally (both sides keep source order) *)
  let removed_sq = List.filter subq_pred d.Tx.bd_removed_where in
  if
    removed_sq <> []
    && List.length removed_sq = List.length d.Tx.bd_added_entries
  then List.iter2 (check_unnest c cat d) removed_sq d.Tx.bd_added_entries;
  (* join elimination: entries vanished, nothing appeared, the output
     shape survived, and no new correlation was introduced *)
  let new_free =
    not
      (Sset.subset
         (Walk.free_aliases (A.Block d.Tx.bd_after))
         (Walk.free_aliases (A.Block d.Tx.bd_before)))
  in
  if
    d.Tx.bd_removed_entries <> []
    && d.Tx.bd_added_entries = []
    && (not d.Tx.bd_select_names_changed)
    && not new_free
  then List.iter (check_removed_entry c cat d) d.Tx.bd_removed_entries;
  if d.Tx.bd_group_changed then check_group c cat d;
  check_added_where c d before_conjs;
  List.iter (check_kind c cat d) d.Tx.bd_kind_changes

(** SEM-verify a transformation attempt: pair the blocks of [before] and
    [after] by name and demand the legality witness of every structural
    delta. Returns error diagnostics (empty = no objection). *)
let errors (cat : Catalog.t) ~(before : A.query) ~(after : A.query) :
    D.t list =
  let deltas = Tx.query_deltas ~base:before ~out:after in
  if deltas = [] then []
  else begin
    let c = D.collector () in
    let before_conjs = tree_conjuncts before in
    List.iter (block_errors c cat before_conjs) deltas;
    D.result c
  end

(** Cost-model cross-check for one optimized query block: the estimate
    must not exceed the provable key-derived cardinality bound (CB002),
    and no column NDV estimate may exceed the block's own cardinality
    estimate (CB003). Slack absorbs the estimator's 0.5-row floors. *)
let check_annotation (cat : Catalog.t) (q : A.query) ~(rows : float)
    ~(info : Cost.Info.rel_info) : D.t list =
  if Walk.is_correlated q then []
  else
    let c = D.collector () in
    (match q with
    | A.Setop _ -> ()
    | A.Block b ->
        (match Props.bound_block cat b with
        | Some bound when rows > (bound *. 1.1) +. 1. ->
            D.report c ~rule:"CB002" ~severity:D.Error ~path:b.A.qb_name
              "cardinality estimate %.1f exceeds the provable bound %.1f"
              rows bound
        | _ -> ());
        if b.A.limit = None then
          List.iter
            (fun ((al, col), ci) ->
              if ci.Cost.Info.ci_ndv > (rows *. 1.05) +. 1. then
                D.report c ~rule:"CB003" ~severity:D.Error ~path:b.A.qb_name
                  "NDV estimate %.1f for %s.%s exceeds the block's \
                   cardinality estimate %.1f"
                  ci.Cost.Info.ci_ndv al col rows)
            info.Cost.Info.ri_cols);
    D.result c
