(** The catalog: table definitions, integrity constraints, indexes and
    optimizer statistics.

    Constraints drive transformation legality: join elimination (Section
    2.1.2) needs foreign-key and uniqueness metadata; null-awareness of
    NOT IN unnesting needs nullability; group-by removal under join
    predicate pushdown (Section 2.2.3) needs key information. Statistics
    feed the cardinality estimator of the physical optimizer. *)

type col_def = {
  c_name : string;
  c_ty : Sqlir.Value.ty;
  c_nullable : bool;
}

type fk = {
  fk_cols : string list;  (** referencing columns, in order *)
  fk_ref_table : string;
  fk_ref_cols : string list;  (** referenced columns, in order *)
}

type index = {
  ix_name : string;
  ix_table : string;
  ix_cols : string list;  (** key columns, significant order *)
  ix_unique : bool;
}

type table_def = {
  t_name : string;
  t_cols : col_def list;
  t_pkey : string list;  (** empty if no primary key *)
  t_fkeys : fk list;
  t_uniques : string list list;  (** unique constraints other than the PK *)
}

(** Per-column statistics, as gathered by [Stats_gather] (exact or
    sampled — sampling introduces the estimation error that produces the
    plan regressions discussed in Section 4.2). *)
type col_stats = {
  s_ndv : int;  (** number of distinct non-null values *)
  s_nulls : int;  (** number of NULLs *)
  s_min : Sqlir.Value.t;
  s_max : Sqlir.Value.t;
}

type table_stats = {
  s_rows : int;
  s_pages : int;
  s_cols : (string * col_stats) list;
}

(* ------------------------------------------------------------------ *)
(* Partitioning                                                         *)
(* ------------------------------------------------------------------ *)

(** How a partitioned table routes a partition-key value to a partition.

    [`Hash] spreads by {!Sqlir.Value.hash_total} modulo the partition
    count. [`Range] keeps [ps_n - 1] ascending split points: partition
    [i] holds keys [< ps_bounds.(i)], the last partition holds the rest
    (and NULLs, which sort last under {!Sqlir.Value.compare_total}). *)
type part_scheme = [ `Hash | `Range ]

type part_spec = {
  ps_col : string;  (** the single partition-key column *)
  ps_scheme : part_scheme;
  ps_n : int;  (** number of partitions, >= 1 *)
  ps_bounds : Sqlir.Value.t array;
      (** [`Range]: [ps_n - 1] ascending split points; [`Hash]: empty *)
}

(** Per-partition statistics of the partition-key column, gathered by
    [Stats_gather] alongside the table stats. Pruning selectivity and
    the parallel scan's cost both read these. *)
type part_stats = {
  pp_rows : int;
  pp_min : Sqlir.Value.t;  (** key min within the partition; Null if empty *)
  pp_max : Sqlir.Value.t;
  pp_ndv : int;  (** distinct non-null key values within the partition *)
}

(** The partition a key value belongs to — the {e single} routing
    definition shared by storage (placement), the planner (pruning) and
    the executor (partitioned joins), so they can never disagree. *)
let part_route (ps : part_spec) (v : Sqlir.Value.t) : int =
  match ps.ps_scheme with
  | `Hash ->
      if Sqlir.Value.is_null v then 0
      else Sqlir.Value.hash_total v mod ps.ps_n
  | `Range ->
      (* first split point strictly greater than [v]; NULL sorts last,
         so it lands in the final partition *)
      let n = Array.length ps.ps_bounds in
      let rec bsearch lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if Sqlir.Value.compare_total v ps.ps_bounds.(mid) < 0 then
            bsearch lo mid
          else bsearch (mid + 1) hi
      in
      bsearch 0 n

module Smap = Map.Make (String)

type t = {
  tables : (string, table_def) Hashtbl.t;
  indexes : (string, index list) Hashtbl.t;  (** keyed by table name *)
  stats : (string, table_stats) Hashtbl.t;
  parts : (string, part_spec) Hashtbl.t;
      (** partition spec per partitioned table; absent = unpartitioned *)
  pstats : (string, part_stats array) Hashtbl.t;
      (** per-partition key stats, [ps_n] entries, set by [Stats_gather] *)
  epochs : int Smap.t Atomic.t;
      (** per-table stats epoch: bumped by every statistics refresh and
          by DDL (table/index creation). Plan caches snapshot the epochs
          of the tables a plan reads and treat any later bump as an
          invalidation signal.

          The whole epoch map lives in one [Atomic.t] so it doubles as
          the cross-domain {e publication} point: a stats refresh first
          writes the new [table_stats] into [stats] and only then bumps
          the epoch (an atomic release store), so any worker that
          observes the new epoch (an acquire load) also observes the
          stats that justified it. Concurrent stats writes are
          replace-only on an existing key — no Hashtbl resize — which
          the OCaml memory model keeps memory-safe; DDL (new tables or
          indexes, which do resize) is not supported concurrently with
          traffic. *)
}

let create () =
  {
    tables = Hashtbl.create 64;
    indexes = Hashtbl.create 64;
    stats = Hashtbl.create 64;
    parts = Hashtbl.create 8;
    pstats = Hashtbl.create 8;
    epochs = Atomic.make Smap.empty;
  }

(** Current stats epoch of [name] (0 for a table never analyzed). *)
let epoch t name =
  Option.value ~default:0 (Smap.find_opt name (Atomic.get t.epochs))

let bump_epoch t name =
  let rec loop () =
    let m = Atomic.get t.epochs in
    let e = Option.value ~default:0 (Smap.find_opt name m) in
    if not (Atomic.compare_and_set t.epochs m (Smap.add name (e + 1) m)) then
      loop ()
  in
  loop ()

(** One consistent point-in-time view of every table's epoch: the
    returned lookup never mixes epochs from two different bumps, which
    is what lets a plan-cache probe validate a multi-table plan against
    a single moment of the catalog. *)
let epochs_snapshot t : string -> int =
  let m = Atomic.get t.epochs in
  fun name -> Option.value ~default:0 (Smap.find_opt name m)

exception Unknown_table of string
exception Unknown_column of string * string

let add_table t (def : table_def) =
  Hashtbl.replace t.tables def.t_name def;
  if not (Hashtbl.mem t.indexes def.t_name) then
    Hashtbl.replace t.indexes def.t_name [];
  bump_epoch t def.t_name

let add_index t (ix : index) =
  if not (Hashtbl.mem t.tables ix.ix_table) then raise (Unknown_table ix.ix_table);
  let existing = try Hashtbl.find t.indexes ix.ix_table with Not_found -> [] in
  Hashtbl.replace t.indexes ix.ix_table (existing @ [ ix ]);
  bump_epoch t ix.ix_table

let find_table t name =
  match Hashtbl.find_opt t.tables name with
  | Some def -> def
  | None -> raise (Unknown_table name)

let find_table_opt t name = Hashtbl.find_opt t.tables name
let mem_table t name = Hashtbl.mem t.tables name
let table_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.tables []

let col_def t ~table ~col =
  let def = find_table t table in
  match List.find_opt (fun c -> String.equal c.c_name col) def.t_cols with
  | Some c -> c
  | None -> raise (Unknown_column (table, col))

let has_column t ~table ~col =
  match Hashtbl.find_opt t.tables table with
  | None -> false
  | Some def -> List.exists (fun c -> String.equal c.c_name col) def.t_cols

let indexes_on t name =
  try Hashtbl.find t.indexes name with Not_found -> []

(** The index, if any, whose leading column(s) match [cols] as a prefix
    (order-insensitive within the prefix, as a composite equality lookup
    can bind prefix columns in any order). *)
let index_with_prefix t ~table ~cols =
  let matches ix =
    let n = List.length cols in
    List.length ix.ix_cols >= n
    && List.for_all
         (fun c -> List.mem c cols)
         (List.filteri (fun i _ -> i < n) ix.ix_cols)
  in
  List.find_opt matches (indexes_on t table)

(** Is [cols] a superset of some key (primary or unique constraint) of
    [table]? Duplicate-freeness arguments (Sections 2.1.2 and 2.2.3)
    rely on this. *)
let covers_key t ~table ~cols =
  let def = find_table t table in
  let keys =
    (if def.t_pkey = [] then [] else [ def.t_pkey ])
    @ def.t_uniques
    @ List.filter_map
        (fun ix -> if ix.ix_unique then Some ix.ix_cols else None)
        (indexes_on t table)
  in
  List.exists (fun key -> List.for_all (fun k -> List.mem k cols) key) keys

(** Foreign key of [table] referencing [ref_table] on exactly the given
    column pairing, if declared. *)
let fk_between t ~table ~cols ~ref_table ~ref_cols =
  let def = find_table t table in
  List.find_opt
    (fun fk ->
      String.equal fk.fk_ref_table ref_table
      && fk.fk_cols = cols && fk.fk_ref_cols = ref_cols)
    def.t_fkeys

let col_nullable t ~table ~col = (col_def t ~table ~col).c_nullable

(* ------------------------------------------------------------------ *)
(* First-class constraint surface                                       *)
(* ------------------------------------------------------------------ *)

(** The declared integrity constraints of one table in one record: the
    surface {!Analysis.Props} (inference) and the workload generator
    consume. Unique {e indexes} are folded into [tc_uniques] — an
    enforced unique index is a uniqueness constraint in all but name. *)
type table_constraints = {
  tc_pkey : string list;
  tc_uniques : string list list;
  tc_fkeys : fk list;
  tc_not_null : string list;
}

let constraints t name : table_constraints =
  let def = find_table t name in
  let index_uniques =
    List.filter_map
      (fun ix -> if ix.ix_unique then Some ix.ix_cols else None)
      (indexes_on t name)
  in
  {
    tc_pkey = def.t_pkey;
    tc_uniques = List.sort_uniq compare (def.t_uniques @ index_uniques);
    tc_fkeys = def.t_fkeys;
    tc_not_null =
      List.filter_map
        (fun c -> if c.c_nullable then None else Some c.c_name)
        def.t_cols;
  }

(** Columns of [name] declared NOT NULL. *)
let not_null_cols t name = (constraints t name).tc_not_null

(** Declare an additional unique constraint on an existing table,
    together with the index that would enforce it. *)
let add_unique t ~table ~(cols : string list) =
  let def = find_table t table in
  if not (List.mem cols def.t_uniques) then (
    add_table t { def with t_uniques = def.t_uniques @ [ cols ] };
    add_index t
      {
        ix_name = Printf.sprintf "%s_uq_%s" table (String.concat "_" cols);
        ix_table = table;
        ix_cols = cols;
        ix_unique = true;
      })

(** Tighten a column to NOT NULL (the data is the caller's problem). *)
let set_not_null t ~table ~col =
  let def = find_table t table in
  if (col_def t ~table ~col).c_nullable then
    add_table t
      {
        def with
        t_cols =
          List.map
            (fun c ->
              if String.equal c.c_name col then { c with c_nullable = false }
              else c)
            def.t_cols;
      }

let set_stats t name (s : table_stats) =
  Hashtbl.replace t.stats name s;
  bump_epoch t name

let stats t name = Hashtbl.find_opt t.stats name

(** Declare [name] partitioned. DDL, like [add_table]: bumps the epoch
    so cached plans built against the unpartitioned layout die. *)
let set_part_spec t name (ps : part_spec) =
  if not (Hashtbl.mem t.tables name) then raise (Unknown_table name);
  if ps.ps_n < 1 then invalid_arg "Catalog.set_part_spec: ps_n < 1";
  (match ps.ps_scheme with
  | `Hash ->
      if Array.length ps.ps_bounds <> 0 then
        invalid_arg "Catalog.set_part_spec: hash scheme takes no bounds"
  | `Range ->
      if Array.length ps.ps_bounds <> ps.ps_n - 1 then
        invalid_arg "Catalog.set_part_spec: range scheme needs ps_n - 1 bounds");
  ignore (col_def t ~table:name ~col:ps.ps_col);
  Hashtbl.replace t.parts name ps;
  Hashtbl.remove t.pstats name;
  bump_epoch t name

let part_spec t name : part_spec option = Hashtbl.find_opt t.parts name

(** Install per-partition key statistics ([ps_n] entries). Written
    before the epoch bump, like [set_stats], so the epoch publication
    covers both. *)
let set_part_stats t name (pp : part_stats array) =
  if not (Hashtbl.mem t.parts name) then raise (Unknown_table name);
  Hashtbl.replace t.pstats name pp;
  bump_epoch t name

let part_stats t name : part_stats array option = Hashtbl.find_opt t.pstats name

let col_stats t ~table ~col =
  match stats t table with
  | None -> None
  | Some s -> List.assoc_opt col s.s_cols

(** Rows per page used to derive page counts from row counts; a crude
    stand-in for Oracle block accounting. *)
let rows_per_page = 64

let default_stats ~rows cols =
  {
    s_rows = rows;
    s_pages = max 1 ((rows + rows_per_page - 1) / rows_per_page);
    s_cols = cols;
  }
