(** Bounded multi-producer multi-consumer channel: the server's request
    queue.

    A fixed-capacity ring buffer behind one mutex and two condition
    variables ([nonempty] for consumers, [nonfull] for producers). The
    queue is deliberately {e not} lock-free: a request's payload is a
    whole query execution, so the microseconds a contended mutex costs
    are noise next to the work each slot hands over, and a mutex keeps
    the invariants (no lost or duplicated element, exact [length])
    trivially auditable.

    The bounded capacity is the server's admission control: [try_push]
    refuses immediately when the ring is full, which the server turns
    into an explicit [Rejected] outcome instead of unbounded queueing;
    [push] blocks, which batch drivers use as backpressure.

    [close] wakes everyone: producers fail fast, consumers drain what
    was accepted and then see [None] — so every element pushed before
    the close is still consumed exactly once. *)

type 'a t = {
  buf : 'a option array;  (** ring storage; [None] = empty slot *)
  cap : int;
  mutable head : int;  (** index of the next element to pop *)
  mutable len : int;
  mutable closed : bool;
  mu : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
}

let create ~capacity =
  let cap = max 1 capacity in
  {
    buf = Array.make cap None;
    cap;
    head = 0;
    len = 0;
    closed = false;
    mu = Mutex.create ();
    nonempty = Condition.create ();
    nonfull = Condition.create ();
  }

let capacity t = t.cap

let length t =
  Mutex.lock t.mu;
  let n = t.len in
  Mutex.unlock t.mu;
  n

(* caller holds [t.mu] and has checked there is room *)
let push_locked t v =
  t.buf.((t.head + t.len) mod t.cap) <- Some v;
  t.len <- t.len + 1;
  Condition.signal t.nonempty

(** Non-blocking push: [false] when the ring is full or the channel is
    closed — the admission-control path. *)
let try_push t v : bool =
  Mutex.lock t.mu;
  let ok = (not t.closed) && t.len < t.cap in
  if ok then push_locked t v;
  Mutex.unlock t.mu;
  ok

(** Blocking push: waits for room (backpressure). [false] iff the
    channel is (or becomes) closed. *)
let push t v : bool =
  Mutex.lock t.mu;
  while (not t.closed) && t.len >= t.cap do
    Condition.wait t.nonfull t.mu
  done;
  let ok = not t.closed in
  if ok then push_locked t v;
  Mutex.unlock t.mu;
  ok

(** Blocking pop: waits for an element. [None] iff the channel is
    closed {e and} drained — elements accepted before a close are still
    delivered. *)
let pop t : 'a option =
  Mutex.lock t.mu;
  while t.len = 0 && not t.closed do
    Condition.wait t.nonempty t.mu
  done;
  let r =
    if t.len = 0 then None
    else begin
      let v = t.buf.(t.head) in
      t.buf.(t.head) <- None;
      t.head <- (t.head + 1) mod t.cap;
      t.len <- t.len - 1;
      Condition.signal t.nonfull;
      v
    end
  in
  Mutex.unlock t.mu;
  r

(** Close the channel: producers fail from now on, consumers drain the
    remaining elements and then receive [None]. Idempotent. *)
let close t =
  Mutex.lock t.mu;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Condition.broadcast t.nonfull;
  Mutex.unlock t.mu

let closed t =
  Mutex.lock t.mu;
  let c = t.closed in
  Mutex.unlock t.mu;
  c
