(** The cost-based query transformation driver (Sections 3.1–3.4).

    Transformations are applied sequentially, in the paper's order:
    SPJ view merging, join elimination, subquery unnesting, group-by
    (distinct) view merging, group pruning, predicate move-around, set
    operator into join conversion, group-by placement, predicate pullup,
    join factorization, disjunction into union-all expansion, and join
    predicate pushdown. Heuristic transformations are imperative;
    cost-based ones run a state-space search ({!Search}) whose states
    are costed by applying the state's mask to the (immutable, shared)
    query tree and invoking the physical optimizer. No copying is
    involved: transformations preserve sharing, so each state's tree
    physically shares every untouched block with the input.

    The engineering devices of Section 3.4 are all wired in:

    - {b cost cut-off}: once a state has been fully costed, subsequent
      states run with the optimizer's [cost_cap] set, so hopeless states
      abort early — pushed into the join enumeration itself as
      branch-and-bound pruning ({!Planner.Join_enum});
    - {b cost-annotation reuse}: two annotation caches (physical
      identity and query-block fingerprint) are shared across all states
      of all transformations of one driver run, so an untransformed
      subquery is optimized once no matter how many states contain it.
      Each state's set of rebuilt blocks (reported by the
      transformation's [?touched] accumulator) is handed to the
      optimizer as the {e dirty set} for incremental costing
      diagnostics;
    - {b interleaving} (Section 3.3.1): when costing an unnesting state,
      the generated group-by view is also costed in merged form, so
      unnesting is not rejected merely because the unmerged view is
      expensive;
    - {b juxtaposition} (Section 3.3.2): a view eligible for both
      group-by view merging and join predicate pushdown is costed under
      no-change, merge, and pushdown, and merging is applied only if it
      beats both.

    The CBQT-off baseline ([`Heuristic]) replaces each search by the
    corresponding heuristic rule (the pre-10g unnesting rule, merge-
    always, index-driven JPPD, and no group-by placement), reproducing
    the paper's comparison baseline. *)

open Sqlir
module A = Ast
module Opt = Planner.Optimizer
module T = Transform

type decision = D_off | D_heuristic | D_cost

type config = {
  unnest : decision;
  gb_merge : decision;
  jppd : decision;
  gbp : decision;
  setop_to_join : decision;
  or_expansion : decision;
  join_factor : decision;
  pred_pullup : decision;
  heuristic_phase : bool;
      (** run the imperative transformations (SPJ merge, join
          elimination, predicate move-around, group pruning) *)
  interleave : bool;
  juxtapose : bool;
  check : bool;
      (** sanitizer mode: re-run {!Analysis.Ir_check} after every
          transformation application and every CBQT search state, and
          {!Analysis.Plan_check} on the final plan; raise
          {!Analysis.Diagnostics.Check_failed} naming the offending
          transformation on the first ill-formed tree. Also fails the
          run (rule [CB001]) when a transformed search state cannot be
          optimized although the untransformed state could — such a
          state silently costs [infinity] otherwise, masking
          transformation bugs *)
  memo : bool;
      (** cost-annotation reuse (Section 3.4.2): share the identity and
          fingerprint annotation caches across all states of all
          transformations of the run. [false] re-optimizes every block
          of every state from scratch — only useful for measuring what
          the caches buy (Table 2) and for differential testing *)
  policy : Policy.t;
}

(** [CBQT_CHECK=1] (or [true] / [on]) turns sanitizer mode on
    process-wide, without touching call sites — the env-var override the
    issue tracker asked for. *)
let env_check =
  match Sys.getenv_opt "CBQT_CHECK" with
  | Some v -> (
      match String.lowercase_ascii (String.trim v) with
      | "1" | "true" | "on" | "yes" -> true
      | _ -> false)
  | None -> false

let default_config =
  {
    unnest = D_cost;
    gb_merge = D_cost;
    jppd = D_cost;
    gbp = D_cost;
    setop_to_join = D_cost;
    or_expansion = D_cost;
    join_factor = D_cost;
    pred_pullup = D_cost;
    heuristic_phase = true;
    interleave = true;
    juxtapose = true;
    check = env_check;
    memo = true;
    policy = Policy.default;
  }

(** The paper's CBQT-off baseline: heuristic decisions everywhere,
    searches disabled. *)
let heuristic_config =
  {
    default_config with
    unnest = D_heuristic;
    gb_merge = D_heuristic;
    jppd = D_heuristic;
    gbp = D_off;
    setop_to_join = D_off;
    or_expansion = D_off;
    join_factor = D_off;
    pred_pullup = D_off;
    interleave = false;
    juxtapose = false;
  }

type step_report = {
  sr_name : string;
  sr_objects : int;
  sr_strategy : string;
  sr_states : int;
  sr_chosen : bool list;
  sr_base_cost : float;  (** cost of the untransformed state *)
  sr_best_cost : float;
}

type report = {
  rp_steps : step_report list;
  rp_states_total : int;
  rp_states_cutoff : int;
      (** search states abandoned by the cost cut-off (Section 3.4.1) *)
  rp_states_errored : int;
      (** search states that failed to optimize (unsupported shape or
          unbound column) — distinct from a legitimate cut-off *)
  rp_blocks_started : int;
  rp_blocks_optimized : int;
  rp_ident_hits : int;
      (** annotations reused by physical identity of the block *)
  rp_fp_hits : int;  (** annotations reused by fingerprint *)
  rp_cache_hits : int;  (** [rp_ident_hits + rp_fp_hits] *)
  rp_dp_pruned : int;
      (** partial join orders discarded by branch-and-bound against the
          state cost cap *)
  rp_dirty_misses : int;
      (** blocks reported clean by a transformation's dirty set that
          nevertheless missed the identity cache *)
  rp_final_cost : float;
  rp_opt_seconds : float;
}

type result = {
  res_query : A.query;  (** the transformed query tree *)
  res_annotation : Planner.Annotation.t;  (** final physical plan *)
  res_report : report;
}

(* ------------------------------------------------------------------ *)
(* Costing                                                              *)
(* ------------------------------------------------------------------ *)

type ctx = {
  cat : Catalog.t;
  opt : Opt.t;
  cfg : config;
  mutable steps : step_report list;
  mutable total_objects : int;  (** for the two-pass policy rule *)
  mutable states_cutoff : int;
  mutable states_errored : int;
}

(* ------------------------------------------------------------------ *)
(* Sanitizer mode                                                       *)
(* ------------------------------------------------------------------ *)

(** In sanitizer mode, run {!Analysis.Ir_check} over [q] and raise
    {!Analysis.Diagnostics.Check_failed} — naming the transformation
    [tx] that produced the tree — on any error-severity finding.
    Returns [q] unchanged so it chains inside pipelines. *)
let sanitize (ctx : ctx) ~(tx : string) (q : A.query) : A.query =
  (if ctx.cfg.check then
     match Analysis.Ir_check.errors ctx.cat q with
     | [] -> ()
     | errs -> raise (Analysis.Diagnostics.Check_failed (tx, errs)));
  q

(** How costing a search state ended: a real cost, a legitimate
    abandonment by the cost cut-off, or an error (a tree shape the
    optimizer cannot cost — suspicious when the untransformed state
    could). *)
type outcome = O_cost of float | O_cutoff | O_error of string

(** Cost a candidate query under the cost cut-off. *)
let cost_of (ctx : ctx) ~(cap : float option) (q : A.query) : outcome =
  Opt.set_cost_cap ctx.opt cap;
  let r =
    match Opt.optimize ctx.opt q with
    | ann -> O_cost ann.Planner.Annotation.an_cost
    | exception Opt.Cost_cap_exceeded -> O_cutoff
    | exception Opt.Unsupported msg -> O_error ("unsupported: " ^ msg)
    | exception Exec.Eval.Unbound_column (a, c) ->
        O_error (Printf.sprintf "unbound column %s.%s" a c)
  in
  Opt.set_cost_cap ctx.opt None;
  r

(** Cost one search state and fold the outcome into the run counters:
    cut-offs and errors both score [infinity] for the search, but are
    counted separately, and an error on a {e transformed} state whose
    base state costed fine fails the run under sanitizer mode (a
    transformation produced a tree the optimizer cannot cost — rule
    [CB001]). [dirty] is the set of blocks this state rebuilt, handed to
    the optimizer for incremental-costing diagnostics ([None] = no
    information, e.g. the first time the tree is costed). *)
let score (ctx : ctx) ~(tx : string) ~(is_base : bool) ~(base_ok : bool ref)
    ~(cap : float option) ~(dirty : Walk.Sset.t option) (q : A.query) : float =
  Opt.set_dirty ctx.opt dirty;
  let outcome = cost_of ctx ~cap q in
  Opt.set_dirty ctx.opt None;
  match outcome with
  | O_cost c ->
      if is_base then base_ok := true;
      c
  | O_cutoff ->
      ctx.states_cutoff <- ctx.states_cutoff + 1;
      infinity
  | O_error msg ->
      ctx.states_errored <- ctx.states_errored + 1;
      if ctx.cfg.check && (not is_base) && !base_ok then
        raise
          (Analysis.Diagnostics.Check_failed
             ( tx,
               [
                 Analysis.Diagnostics.error ~rule:"CB001"
                   ~path:Analysis.Diagnostics.root
                   "search state fails to optimize (%s) although the \
                    untransformed state optimizes fine"
                   msg;
               ] ));
      infinity

(* ------------------------------------------------------------------ *)
(* Generic cost-based step                                              *)
(* ------------------------------------------------------------------ *)

let record ctx name ~objects ~strategy ~states ~chosen ~base ~best =
  ctx.steps <-
    {
      sr_name = name;
      sr_objects = objects;
      sr_strategy = strategy;
      sr_states = states;
      sr_chosen = chosen;
      sr_base_cost = base;
      sr_best_cost = best;
    }
    :: ctx.steps

(** One cost-based transformation step: search the state space of
    [objects]/[apply_mask] and apply the winning mask. [interleave_with]
    optionally posts-processes each candidate with a follow-on
    transformation for costing purposes only (Section 3.3.1). *)
let cost_step (ctx : ctx) (name : string)
    ~(objects : Catalog.t -> A.query -> string list)
    ~(apply_mask :
       ?touched:Walk.Sset.t ref -> Catalog.t -> A.query -> bool list -> A.query)
    ?(interleave_with : (Catalog.t -> A.query -> A.query) option)
    ?(heuristic_mask : (Catalog.t -> A.query -> bool list) option)
    (decision : decision) (q : A.query) : A.query =
  match decision with
  | D_off -> q
  | D_heuristic -> (
      match heuristic_mask with
      | None -> q
      | Some h ->
          let mask = h ctx.cat q in
          if List.exists Fun.id mask then
            sanitize ctx ~tx:(name ^ " (heuristic)")
              (apply_mask ctx.cat q mask)
          else q)
  | D_cost ->
      let objs = objects ctx.cat q in
      let n = List.length objs in
      if n = 0 then q
      else (
        ctx.total_objects <- ctx.total_objects + n;
        let strategy =
          Policy.choose ctx.cfg.policy ~n_objects:n
            ~total_objects:ctx.total_objects
        in
        let best_seen = ref infinity in
        let base_ok = ref false in
        let eval mask =
          let is_base = not (List.exists Fun.id mask) in
          let touched = ref Walk.Sset.empty in
          let q' =
            sanitize ctx
              ~tx:(name ^ " (search state)")
              (apply_mask ~touched ctx.cat q mask)
          in
          let cap = if !best_seen < infinity then Some !best_seen else None in
          (* the base state is the first time this tree is costed in
             this step; later states are dirty exactly where the
             transformation reports it rebuilt blocks *)
          let dirty = if is_base then None else Some !touched in
          let c = score ctx ~tx:name ~is_base ~base_ok ~cap ~dirty q' in
          let c =
            match interleave_with with
            | Some follow when ctx.cfg.interleave && List.exists Fun.id mask ->
                let q'' =
                  sanitize ctx
                    ~tx:(name ^ " (interleaved search state)")
                    (follow ctx.cat q')
                in
                if q'' == q' || Pp.fingerprint q'' = Pp.fingerprint q' then c
                else
                  let dirty =
                    Some (Walk.Sset.union !touched (T.Tx.dirty_blocks q' q''))
                  in
                  Float.min c
                    (score ctx
                       ~tx:(name ^ " (interleaved)")
                       ~is_base:false ~base_ok ~cap ~dirty q'')
            | _ -> c
          in
          if c < !best_seen then best_seen := c;
          c
        in
        let res =
          Search.run
            ~iterative_max_states:ctx.cfg.policy.Policy.iterative_state_budget
            strategy n eval
        in
        let base =
          match res.Search.r_trace with (_, c) :: _ -> c | [] -> nan
        in
        record ctx name ~objects:n
          ~strategy:(Search.strategy_name strategy)
          ~states:res.Search.r_states ~chosen:res.Search.r_best ~base
          ~best:res.Search.r_best_cost;
        if List.exists Fun.id res.Search.r_best then
          sanitize ctx ~tx:name (apply_mask ctx.cat q res.Search.r_best)
        else q)

(* ------------------------------------------------------------------ *)
(* Group-by view merging with juxtaposition against JPPD                *)
(* ------------------------------------------------------------------ *)

(** Per-object three-way comparison (Section 3.3.2): no change vs. view
    merging vs. join predicate pushdown, walked linearly over the merge
    objects. Merging is applied only when it beats both rivals; a
    pushdown winner is left untransformed here and picked up by the
    sequential JPPD step later (the paper's mitigation in 3.3.3). *)
let gb_merge_juxtaposed (ctx : ctx) (q : A.query) : A.query =
  let merge_objs = T.Gb_view_merge.discover ctx.cat q in
  let n = List.length merge_objs in
  if n = 0 then q
  else (
    ctx.total_objects <- ctx.total_objects + n;
    let states = ref 0 in
    let best_seen = ref infinity in
    let base_ok = ref false in
    let eval ~is_base ~dirty q' =
      incr states;
      ignore (sanitize ctx ~tx:"gb-view-merge (search state)" q');
      let cap = if !best_seen < infinity then Some !best_seen else None in
      let c = score ctx ~tx:"gb-view-merge" ~is_base ~base_ok ~cap ~dirty q' in
      if c < !best_seen then best_seen := c;
      c
    in
    let chosen = ref [] in
    let current = ref q in
    let base = eval ~is_base:true ~dirty:None q in
    List.iteri
      (fun _i (qb, alias) ->
        (* [!current] was fully costed when it was accepted, so nothing
           in it is dirty *)
        let cost_none = eval ~is_base:false ~dirty:(Some Walk.Sset.empty) !current in
        (* merging exactly this object on the current tree *)
        let cur_objs = T.Gb_view_merge.discover ctx.cat !current in
        let mask =
          List.map (fun (qb', a') -> qb' = qb && a' = alias) cur_objs
        in
        let merge_touched = ref Walk.Sset.empty in
        let merged =
          if List.exists Fun.id mask then
            T.Gb_view_merge.apply_mask ~touched:merge_touched ctx.cat !current
              mask
          else !current
        in
        let cost_merge =
          if merged == !current then infinity
          else eval ~is_base:false ~dirty:(Some !merge_touched) merged
        in
        (* the JPPD rival on the same view, if applicable *)
        let jppd_objs = T.Jppd.discover ctx.cat !current in
        let jppd_mask =
          List.map (fun (qb', a') -> qb' = qb && a' = alias) jppd_objs
        in
        let cost_jppd =
          if ctx.cfg.juxtapose && List.exists Fun.id jppd_mask then (
            let touched = ref Walk.Sset.empty in
            let q'' = T.Jppd.apply_mask ~touched ctx.cat !current jppd_mask in
            eval ~is_base:false ~dirty:(Some !touched) q'')
          else infinity
        in
        if cost_merge < cost_none && cost_merge <= cost_jppd then (
          current := merged;
          chosen := true :: !chosen)
        else chosen := false :: !chosen)
      merge_objs;
    record ctx "gb-view-merge" ~objects:n ~strategy:"juxtaposed-linear"
      ~states:!states ~chosen:(List.rev !chosen) ~base ~best:!best_seen;
    !current)

(* ------------------------------------------------------------------ *)
(* The pipeline                                                         *)
(* ------------------------------------------------------------------ *)

let heuristics (ctx : ctx) (q : A.query) : A.query =
  if not ctx.cfg.heuristic_phase then q
  else
    q
    |> T.View_merge_spj.apply ctx.cat
    |> sanitize ctx ~tx:"view-merge-spj"
    |> T.Join_elim.apply ctx.cat
    |> sanitize ctx ~tx:"join-elim"
    |> T.Predicate_move.apply ctx.cat
    |> sanitize ctx ~tx:"predicate-move"
    |> T.Group_prune.apply ctx.cat
    |> sanitize ctx ~tx:"group-prune"

let transform (ctx : ctx) (q : A.query) : A.query =
  (* 1. imperative phase: SPJ view merging, join elimination,
     predicate move-around, group pruning *)
  let q = heuristics ctx q in
  (* 2. subquery unnesting: imperative single-table merges, then the
     cost-based view-generating unnesting, interleaved with group-by
     view merging *)
  let q =
    match ctx.cfg.unnest with
    | D_off -> q
    | D_heuristic | D_cost ->
        let q = sanitize ctx ~tx:"unnest-merge" (T.Unnest_merge.apply ctx.cat q) in
        cost_step ctx "unnest" ~objects:T.Unnest_view.objects
          ~apply_mask:T.Unnest_view.apply_mask
          ~interleave_with:T.Gb_view_merge.apply_all
          ~heuristic_mask:T.Unnest_view.heuristic_mask ctx.cfg.unnest q
  in
  (* 3. group-by / distinct view merging, juxtaposed with JPPD *)
  let q =
    match ctx.cfg.gb_merge with
    | D_off -> q
    | D_heuristic ->
        (* pre-10g behaviour: always merge when legal *)
        sanitize ctx ~tx:"gb-view-merge (heuristic)"
          (T.Gb_view_merge.apply_all ctx.cat q)
    | D_cost -> gb_merge_juxtaposed ctx q
  in
  (* 4. re-run pruning / predicate motion over the rewritten tree *)
  let q = heuristics ctx q in
  (* 5. set operators into joins; the conversion manufactures SPJ
     views, so the imperative phase runs again afterwards *)
  let q =
    cost_step ctx "setop-to-join" ~objects:T.Setop_to_join.objects
      ~apply_mask:T.Setop_to_join.apply_mask ctx.cfg.setop_to_join q
  in
  let q = heuristics ctx q in
  (* 6. group-by placement (never heuristic, as in Oracle) *)
  let q =
    cost_step ctx "gb-placement" ~objects:T.Gb_placement.objects
      ~apply_mask:T.Gb_placement.apply_mask ctx.cfg.gbp q
  in
  (* 7. predicate pullup *)
  let q =
    cost_step ctx "predicate-pullup" ~objects:T.Predicate_pullup.objects
      ~apply_mask:T.Predicate_pullup.apply_mask ctx.cfg.pred_pullup q
  in
  (* 8. join factorization *)
  let q =
    cost_step ctx "join-factorization" ~objects:T.Join_factor.objects
      ~apply_mask:T.Join_factor.apply_mask ctx.cfg.join_factor q
  in
  (* 9. disjunction into UNION ALL *)
  let q =
    cost_step ctx "or-expansion" ~objects:T.Or_expansion.objects
      ~apply_mask:T.Or_expansion.apply_mask ctx.cfg.or_expansion q
  in
  let q = heuristics ctx q in
  (* 10. join predicate pushdown *)
  let q =
    cost_step ctx "jppd" ~objects:T.Jppd.objects
      ~apply_mask:T.Jppd.apply_mask ~heuristic_mask:T.Jppd.heuristic_mask
      ctx.cfg.jppd q
  in
  q

(** Transform and physically optimize [q]. *)
let optimize ?(config = default_config) (cat : Catalog.t) (q : A.query) :
    result =
  let t0 = Unix.gettimeofday () in
  let opt =
    if config.memo then Opt.create ~annot_cache:(Hashtbl.create 64) cat
    else Opt.create cat
  in
  let ctx =
    {
      cat;
      opt;
      cfg = config;
      steps = [];
      total_objects = 0;
      states_cutoff = 0;
      states_errored = 0;
    }
  in
  ignore (sanitize ctx ~tx:"input" q);
  let q' = transform ctx q in
  let ann = Opt.optimize opt q' in
  (if config.check then
     let diags =
       Analysis.Plan_check.check_annotated cat
         ~cost:ann.Planner.Annotation.an_cost
         ~rows:ann.Planner.Annotation.an_rows ann.Planner.Annotation.an_plan
     in
     match Analysis.Diagnostics.errors diags with
     | [] -> ()
     | errs -> raise (Analysis.Diagnostics.Check_failed ("physical-plan", errs)));
  let t1 = Unix.gettimeofday () in
  let states_total =
    List.fold_left (fun acc s -> acc + s.sr_states) 0 ctx.steps
  in
  let st = Opt.stats opt in
  {
    res_query = q';
    res_annotation = ann;
    res_report =
      {
        rp_steps = List.rev ctx.steps;
        rp_states_total = states_total;
        rp_states_cutoff = ctx.states_cutoff;
        rp_states_errored = ctx.states_errored;
        rp_blocks_started = st.Planner.Opt_stats.blocks_started;
        rp_blocks_optimized = st.Planner.Opt_stats.blocks_optimized;
        rp_ident_hits = st.Planner.Opt_stats.ident_hits;
        rp_fp_hits = st.Planner.Opt_stats.fp_hits;
        rp_cache_hits = Planner.Opt_stats.cache_hits st;
        rp_dp_pruned = st.Planner.Opt_stats.dp_pruned;
        rp_dirty_misses = st.Planner.Opt_stats.dirty_misses;
        rp_final_cost = ann.Planner.Annotation.an_cost;
        rp_opt_seconds = t1 -. t0;
      };
  }

let pp_report ppf (r : report) =
  Fmt.pf ppf
    "optimization: %.3fms, %d states (%d cut off, %d errored), %d blocks \
     optimized, %d reused (%d ident + %d fp), %d join orders pruned, final \
     cost %.1f@."
    (r.rp_opt_seconds *. 1000.)
    r.rp_states_total r.rp_states_cutoff r.rp_states_errored
    r.rp_blocks_optimized r.rp_cache_hits r.rp_ident_hits r.rp_fp_hits
    r.rp_dp_pruned r.rp_final_cost;
  List.iter
    (fun s ->
      Fmt.pf ppf "  %-20s objects=%d strategy=%-12s states=%-3d chosen=%s (%.1f -> %.1f)@."
        s.sr_name s.sr_objects s.sr_strategy s.sr_states
        (Search.mask_to_string s.sr_chosen)
        s.sr_base_cost s.sr_best_cost)
    r.rp_steps
