(** The cost-based query transformation driver (Sections 3.1–3.4).

    Transformations are applied sequentially, in the paper's order:
    SPJ view merging, join elimination, subquery unnesting, group-by
    (distinct) view merging, group pruning, predicate move-around, set
    operator into join conversion, group-by placement, predicate pullup,
    join factorization, disjunction into union-all expansion, and join
    predicate pushdown. Heuristic transformations are imperative;
    cost-based ones run a state-space search ({!Search}) whose states
    are costed by applying the state's mask to the (immutable, shared)
    query tree and invoking the physical optimizer. No copying is
    involved: transformations preserve sharing, so each state's tree
    physically shares every untouched block with the input.

    The engineering devices of Section 3.4 are all wired in:

    - {b cost cut-off}: once a state has been fully costed, subsequent
      states run with the optimizer's [cost_cap] set, so hopeless states
      abort early — pushed into the join enumeration itself as
      branch-and-bound pruning ({!Planner.Join_enum});
    - {b cost-annotation reuse}: two annotation caches (physical
      identity and query-block fingerprint) are shared across all states
      of all transformations of one driver run, so an untransformed
      subquery is optimized once no matter how many states contain it.
      Each state's set of rebuilt blocks (reported by the
      transformation's [?touched] accumulator) is handed to the
      optimizer as the {e dirty set} for incremental costing
      diagnostics;
    - {b interleaving} (Section 3.3.1): when costing an unnesting state,
      the generated group-by view is also costed in merged form, so
      unnesting is not rejected merely because the unmerged view is
      expensive;
    - {b juxtaposition} (Section 3.3.2): a view eligible for both
      group-by view merging and join predicate pushdown is costed under
      no-change, merge, and pushdown, and merging is applied only if it
      beats both.

    The CBQT-off baseline ([`Heuristic]) replaces each search by the
    corresponding heuristic rule (the pre-10g unnesting rule, merge-
    always, index-driven JPPD, and no group-by placement), reproducing
    the paper's comparison baseline. *)

open Sqlir
module A = Ast
module Opt = Planner.Optimizer
module T = Transform
module Tr = Obs.Trace
module Mx = Obs.Metrics

type decision = D_off | D_heuristic | D_cost

type config = {
  unnest : decision;
  gb_merge : decision;
  jppd : decision;
  gbp : decision;
  setop_to_join : decision;
  or_expansion : decision;
  join_factor : decision;
  pred_pullup : decision;
  heuristic_phase : bool;
      (** run the imperative transformations (SPJ merge, join
          elimination, predicate move-around, group pruning) *)
  interleave : bool;
  juxtapose : bool;
  check : bool;
      (** sanitizer mode: re-run {!Analysis.Ir_check} after every
          transformation application and every CBQT search state, and
          {!Analysis.Plan_check} on the final plan; raise
          {!Analysis.Diagnostics.Check_failed} naming the offending
          transformation on the first ill-formed tree. Also fails the
          run (rule [CB001]) when a transformed search state cannot be
          optimized although the untransformed state could — such a
          state silently costs [infinity] otherwise, masking
          transformation bugs *)
  on_diag : (string -> Analysis.Diagnostics.t list -> unit) option;
      (** diagnostic collection mode: when set, every finding the
          sanitizer would raise as {!Analysis.Diagnostics.Check_failed}
          is handed to this callback (with the offending transformation
          name) and the run {e continues} — the CLI's [check --sem]
          summary table is built this way. [None] (the default) keeps
          fail-fast raising behaviour *)
  memo : bool;
      (** cost-annotation reuse (Section 3.4.2): share the identity and
          fingerprint annotation caches across all states of all
          transformations of the run. [false] re-optimizes every block
          of every state from scratch — only useful for measuring what
          the caches buy (Table 2) and for differential testing *)
  trace : Obs.Trace.level;
      (** observability spans ({!Obs.Trace}): [Off] records nothing,
          [Steps] one span per transformation attempt, [Full] adds
          per-state, per-costing and per-block spans with
          {!Planner.Opt_stats} counter deltas. Defaults to the
          [CBQT_TRACE] env var ([0]/[off], [1]/[steps], [2]/[full]) *)
  policy : Policy.t;
}

(** [CBQT_CHECK=1] (or [true] / [on]) turns sanitizer mode on
    process-wide, without touching call sites — the env-var override the
    issue tracker asked for. *)
let env_check =
  match Sys.getenv_opt "CBQT_CHECK" with
  | Some v -> (
      match String.lowercase_ascii (String.trim v) with
      | "1" | "true" | "on" | "yes" -> true
      | _ -> false)
  | None -> false

(** [CBQT_TRACE=steps|full] (or [1]/[2]) turns tracing on process-wide,
    mirroring [CBQT_CHECK]. *)
let env_trace = Tr.level_of_env ()

let default_config =
  {
    unnest = D_cost;
    gb_merge = D_cost;
    jppd = D_cost;
    gbp = D_cost;
    setop_to_join = D_cost;
    or_expansion = D_cost;
    join_factor = D_cost;
    pred_pullup = D_cost;
    heuristic_phase = true;
    interleave = true;
    juxtapose = true;
    check = env_check;
    on_diag = None;
    memo = true;
    trace = env_trace;
    policy = Policy.default;
  }

(** The paper's CBQT-off baseline: heuristic decisions everywhere,
    searches disabled. *)
let heuristic_config =
  {
    default_config with
    unnest = D_heuristic;
    gb_merge = D_heuristic;
    jppd = D_heuristic;
    gbp = D_off;
    setop_to_join = D_off;
    or_expansion = D_off;
    join_factor = D_off;
    pred_pullup = D_off;
    interleave = false;
    juxtapose = false;
  }

type step_report = {
  sr_name : string;
  sr_objects : int;
  sr_strategy : string;
  sr_states : int;
  sr_chosen : bool list;
  sr_base_cost : float;  (** cost of the untransformed state *)
  sr_best_cost : float;
}

type report = {
  rp_steps : step_report list;
  rp_states_total : int;
  rp_states_cutoff : int;
      (** search states abandoned by the cost cut-off (Section 3.4.1) *)
  rp_states_errored : int;
      (** search states that failed to optimize (unsupported shape or
          unbound column) — distinct from a legitimate cut-off *)
  rp_blocks_started : int;
  rp_blocks_optimized : int;
  rp_ident_hits : int;
      (** annotations reused by physical identity of the block *)
  rp_fp_hits : int;  (** annotations reused by fingerprint *)
  rp_cache_hits : int;  (** [rp_ident_hits + rp_fp_hits] *)
  rp_dp_pruned : int;
      (** partial join orders discarded by branch-and-bound against the
          state cost cap *)
  rp_dirty_misses : int;
      (** blocks reported clean by a transformation's dirty set that
          nevertheless missed the identity cache *)
  rp_fp_collisions : int;
      (** fingerprint-hash bucket entries that failed the full
          structural comparison on probe (true hash collisions) *)
  rp_final_cost : float;
  rp_opt_seconds : float;
}

type result = {
  res_query : A.query;  (** the transformed query tree *)
  res_annotation : Planner.Annotation.t;  (** final physical plan *)
  res_report : report;
  res_trace : Tr.t;
      (** the run's span tree ({!Obs.Trace.disabled} when
          [config.trace = Off]) *)
}

(* ------------------------------------------------------------------ *)
(* Costing                                                              *)
(* ------------------------------------------------------------------ *)

type ctx = {
  cat : Catalog.t;
  opt : Opt.t;
  cfg : config;
  tr : Tr.t;
  mutable steps : step_report list;
  mutable total_objects : int;  (** for the two-pass policy rule *)
  mutable states_cutoff : int;
  mutable states_errored : int;
}

(* ------------------------------------------------------------------ *)
(* Sanitizer mode                                                       *)
(* ------------------------------------------------------------------ *)

(** Deliver error diagnostics: raise {!Analysis.Diagnostics.Check_failed}
    (fail-fast sanitizer), or hand them to [config.on_diag] and keep
    going (collection mode). *)
let emit (ctx : ctx) ~(tx : string) (errs : Analysis.Diagnostics.t list) =
  match errs with
  | [] -> ()
  | errs -> (
      match ctx.cfg.on_diag with
      | Some f -> f tx errs
      | None -> raise (Analysis.Diagnostics.Check_failed (tx, errs)))

(** In sanitizer mode, run {!Analysis.Ir_check} over [q] and raise
    {!Analysis.Diagnostics.Check_failed} — naming the transformation
    [tx] that produced the tree — on any error-severity finding. When
    [base] (the tree the transformation started from) is supplied, also
    run the {!Analysis.Copy_check} over-copying detector (rule TX001)
    and the {!Analysis.Sem_check} transformation-legality verifier
    (rules SEM001–SEM007) over the before/after pair. Returns [q]
    unchanged so it chains inside pipelines. *)
let sanitize (ctx : ctx) ~(tx : string) ?base (q : A.query) : A.query =
  (if ctx.cfg.check then (
     emit ctx ~tx (Analysis.Ir_check.errors ctx.cat q);
     match base with
     | Some b when b != q ->
         emit ctx ~tx (Analysis.Copy_check.errors ~before:b ~after:q);
         emit ctx ~tx (Analysis.Sem_check.errors ctx.cat ~before:b ~after:q)
     | _ -> ()));
  q

(** How costing a search state ended: a real cost, a legitimate
    abandonment by the cost cut-off, or an error (a tree shape the
    optimizer cannot cost — suspicious when the untransformed state
    could). *)
type outcome = O_cost of float | O_cutoff | O_error of string

(** Attributes of one costing: how it ended, the cap it ran under and
    the {!Planner.Opt_stats} increments it earned — the trace's unit of
    attribution for annotation reuse and cut-off savings. *)
let cost_attrs ~(cap : float option) ~before ~after (outcome : outcome) :
    (string * Tr.value) list =
  (match outcome with
  | O_cost c -> [ ("outcome", Tr.S "cost"); ("cost", Tr.F c) ]
  | O_cutoff -> [ ("outcome", Tr.S "cutoff") ]
  | O_error msg -> [ ("outcome", Tr.S "error"); ("error", Tr.S msg) ])
  @ (match cap with Some c -> [ ("cap", Tr.F c) ] | None -> [])
  @ List.map
      (fun (k, v) -> (k, Tr.I v))
      (Planner.Opt_stats.delta ~before ~after)

(** Cost a candidate query under the cost cut-off. *)
let cost_of (ctx : ctx) ~(cap : float option) (q : A.query) : outcome =
  Tr.wrap_with ctx.tr Tr.Cost "cost" (fun sp ->
      let before =
        match sp with
        | None -> None
        | Some _ -> Some (Planner.Opt_stats.copy (Opt.stats ctx.opt))
      in
      Opt.set_cost_cap ctx.opt cap;
      let r =
        match Opt.optimize ctx.opt q with
        | ann -> O_cost ann.Planner.Annotation.an_cost
        | exception Opt.Cost_cap_exceeded -> O_cutoff
        | exception Opt.Unsupported msg -> O_error ("unsupported: " ^ msg)
        | exception Exec.Eval.Unbound_column (a, c) ->
            O_error (Printf.sprintf "unbound column %s.%s" a c)
      in
      Opt.set_cost_cap ctx.opt None;
      (match before with
      | None -> ()
      | Some before ->
          Tr.add_attrs sp
            (cost_attrs ~cap ~before ~after:(Opt.stats ctx.opt) r));
      r)

(** Cost one search state and fold the outcome into the run counters:
    cut-offs and errors both score [infinity] for the search, but are
    counted separately, and an error on a {e transformed} state whose
    base state costed fine fails the run under sanitizer mode (a
    transformation produced a tree the optimizer cannot cost — rule
    [CB001]). [dirty] is the set of blocks this state rebuilt, handed to
    the optimizer for incremental-costing diagnostics ([None] = no
    information, e.g. the first time the tree is costed). *)
let score (ctx : ctx) ~(tx : string) ~(is_base : bool) ~(base_ok : bool ref)
    ~(cap : float option) ~(dirty : Walk.Sset.t option) (q : A.query) : float =
  Opt.set_dirty ctx.opt dirty;
  let outcome = cost_of ctx ~cap q in
  Opt.set_dirty ctx.opt None;
  match outcome with
  | O_cost c ->
      if is_base then base_ok := true;
      c
  | O_cutoff ->
      ctx.states_cutoff <- ctx.states_cutoff + 1;
      infinity
  | O_error msg ->
      ctx.states_errored <- ctx.states_errored + 1;
      if ctx.cfg.check && (not is_base) && !base_ok then
        emit ctx ~tx
          [
            Analysis.Diagnostics.error ~rule:"CB001"
              ~path:Analysis.Diagnostics.root
              "search state fails to optimize (%s) although the \
               untransformed state optimizes fine"
              msg;
          ];
      infinity

(* ------------------------------------------------------------------ *)
(* Generic cost-based step                                              *)
(* ------------------------------------------------------------------ *)

let record ctx name ~objects ~strategy ~states ~chosen ~base ~best =
  ctx.steps <-
    {
      sr_name = name;
      sr_objects = objects;
      sr_strategy = strategy;
      sr_states = states;
      sr_chosen = chosen;
      sr_base_cost = base;
      sr_best_cost = best;
    }
    :: ctx.steps

(** One cost-based transformation step: search the state space of
    [objects]/[apply_mask] and apply the winning mask. [interleave_with]
    optionally posts-processes each candidate with a follow-on
    transformation for costing purposes only (Section 3.3.1). *)
let cost_step (ctx : ctx) (name : string)
    ~(objects : Catalog.t -> A.query -> string list)
    ~(apply_mask :
       ?touched:Walk.Sset.t ref -> Catalog.t -> A.query -> bool list -> A.query)
    ?(interleave_with : (Catalog.t -> A.query -> A.query) option)
    ?(heuristic_mask : (Catalog.t -> A.query -> bool list) option)
    (decision : decision) (q : A.query) : A.query =
  match decision with
  | D_off -> q
  | D_heuristic -> (
      match heuristic_mask with
      | None -> q
      | Some h ->
          Tr.wrap_with ctx.tr Tr.Attempt name (fun sp ->
              let mask = h ctx.cat q in
              if List.exists Fun.id mask then (
                Tr.add_attrs sp [ ("outcome", Tr.S "heuristic-applied") ];
                sanitize ctx ~tx:(name ^ " (heuristic)") ~base:q
                  (apply_mask ctx.cat q mask))
              else (
                Tr.add_attrs sp [ ("outcome", Tr.S "heuristic-skip") ];
                q)))
  | D_cost ->
      Tr.wrap_with ctx.tr Tr.Attempt name (fun sp ->
      let objs = objects ctx.cat q in
      let n = List.length objs in
      if n = 0 then (
        Tr.add_attrs sp [ ("outcome", Tr.S "not-applicable") ];
        q)
      else (
        ctx.total_objects <- ctx.total_objects + n;
        let strategy =
          Policy.choose ctx.cfg.policy ~n_objects:n
            ~total_objects:ctx.total_objects
        in
        let best_seen = ref infinity in
        let base_ok = ref false in
        let eval mask =
          Tr.wrap ctx.tr Tr.State (Search.mask_to_string mask) (fun () ->
          let is_base = not (List.exists Fun.id mask) in
          let touched = ref Walk.Sset.empty in
          let q' =
            sanitize ctx
              ~tx:(name ^ " (search state)")
              ~base:q
              (apply_mask ~touched ctx.cat q mask)
          in
          let cap = if !best_seen < infinity then Some !best_seen else None in
          (* the base state is the first time this tree is costed in
             this step; later states are dirty exactly where the
             transformation reports it rebuilt blocks *)
          let dirty = if is_base then None else Some !touched in
          let c = score ctx ~tx:name ~is_base ~base_ok ~cap ~dirty q' in
          let c =
            match interleave_with with
            | Some follow when ctx.cfg.interleave && List.exists Fun.id mask ->
                let q'' =
                  sanitize ctx
                    ~tx:(name ^ " (interleaved search state)")
                    ~base:q' (follow ctx.cat q')
                in
                if q'' == q' || Pp.fingerprint q'' = Pp.fingerprint q' then c
                else
                  let dirty =
                    Some (Walk.Sset.union !touched (T.Tx.dirty_blocks q' q''))
                  in
                  Float.min c
                    (score ctx
                       ~tx:(name ^ " (interleaved)")
                       ~is_base:false ~base_ok ~cap ~dirty q'')
            | _ -> c
          in
          if c < !best_seen then best_seen := c;
          c)
        in
        let run_search ~check =
          Search.run
            ~iterative_max_states:ctx.cfg.policy.Policy.iterative_state_budget
            ~check strategy n eval
        in
        let res =
          (* in collection mode a CB004 search-invariant violation is
             recorded and the search result recomputed unvalidated (the
             memoized costs make the re-run cheap) *)
          match run_search ~check:ctx.cfg.check with
          | res -> res
          | exception Analysis.Diagnostics.Check_failed (txn, errs)
            when ctx.cfg.on_diag <> None ->
              emit ctx ~tx:txn errs;
              run_search ~check:false
        in
        let base =
          match res.Search.r_trace with (_, c) :: _ -> c | [] -> nan
        in
        record ctx name ~objects:n
          ~strategy:(Search.strategy_name strategy)
          ~states:res.Search.r_states ~chosen:res.Search.r_best ~base
          ~best:res.Search.r_best_cost;
        let applied = List.exists Fun.id res.Search.r_best in
        Tr.add_attrs sp
          [
            ("outcome", Tr.S (if applied then "applied" else "cost-rejected"));
            ("objects", Tr.I n);
            ("strategy", Tr.S (Search.strategy_name strategy));
            ("states", Tr.I res.Search.r_states);
            ("mask", Tr.S (Search.mask_to_string res.Search.r_best));
            ("base_cost", Tr.F base);
            ("best_cost", Tr.F res.Search.r_best_cost);
          ];
        if applied then
          sanitize ctx ~tx:name ~base:q
            (apply_mask ctx.cat q res.Search.r_best)
        else q))

(* ------------------------------------------------------------------ *)
(* Group-by view merging with juxtaposition against JPPD                *)
(* ------------------------------------------------------------------ *)

(** Per-object three-way comparison (Section 3.3.2): no change vs. view
    merging vs. join predicate pushdown, walked linearly over the merge
    objects. Merging is applied only when it beats both rivals; a
    pushdown winner is left untransformed here and picked up by the
    sequential JPPD step later (the paper's mitigation in 3.3.3). *)
let gb_merge_juxtaposed (ctx : ctx) (q : A.query) : A.query =
  Tr.wrap_with ctx.tr Tr.Attempt "gb-view-merge" (fun sp ->
  let merge_objs = T.Gb_view_merge.discover ctx.cat q in
  let n = List.length merge_objs in
  if n = 0 then (
    Tr.add_attrs sp [ ("outcome", Tr.S "not-applicable") ];
    q)
  else (
    ctx.total_objects <- ctx.total_objects + n;
    let states = ref 0 in
    let best_seen = ref infinity in
    let base_ok = ref false in
    let eval ~label ~is_base ~dirty q' =
      Tr.wrap ctx.tr Tr.State label (fun () ->
          incr states;
          ignore (sanitize ctx ~tx:"gb-view-merge (search state)" ~base:q q');
          let cap = if !best_seen < infinity then Some !best_seen else None in
          let c =
            score ctx ~tx:"gb-view-merge" ~is_base ~base_ok ~cap ~dirty q'
          in
          if c < !best_seen then best_seen := c;
          c)
    in
    let chosen = ref [] in
    let current = ref q in
    let base = eval ~label:"base" ~is_base:true ~dirty:None q in
    List.iteri
      (fun i (qb, alias) ->
        (* [!current] was fully costed when it was accepted, so nothing
           in it is dirty *)
        let cost_none =
          eval
            ~label:(Printf.sprintf "%d:none" i)
            ~is_base:false ~dirty:(Some Walk.Sset.empty) !current
        in
        (* merging exactly this object on the current tree *)
        let cur_objs = T.Gb_view_merge.discover ctx.cat !current in
        let mask =
          List.map (fun (qb', a') -> qb' = qb && a' = alias) cur_objs
        in
        let merge_touched = ref Walk.Sset.empty in
        let merged =
          if List.exists Fun.id mask then
            T.Gb_view_merge.apply_mask ~touched:merge_touched ctx.cat !current
              mask
          else !current
        in
        let cost_merge =
          if merged == !current then infinity
          else
            eval
              ~label:(Printf.sprintf "%d:merge" i)
              ~is_base:false ~dirty:(Some !merge_touched) merged
        in
        (* the JPPD rival on the same view, if applicable *)
        let jppd_objs = T.Jppd.discover ctx.cat !current in
        let jppd_mask =
          List.map (fun (qb', a') -> qb' = qb && a' = alias) jppd_objs
        in
        let cost_jppd =
          if ctx.cfg.juxtapose && List.exists Fun.id jppd_mask then (
            let touched = ref Walk.Sset.empty in
            let q'' = T.Jppd.apply_mask ~touched ctx.cat !current jppd_mask in
            eval
              ~label:(Printf.sprintf "%d:jppd" i)
              ~is_base:false ~dirty:(Some !touched) q'')
          else infinity
        in
        if cost_merge < cost_none && cost_merge <= cost_jppd then (
          current := merged;
          chosen := true :: !chosen)
        else chosen := false :: !chosen)
      merge_objs;
    record ctx "gb-view-merge" ~objects:n ~strategy:"juxtaposed-linear"
      ~states:!states ~chosen:(List.rev !chosen) ~base ~best:!best_seen;
    let applied = List.exists Fun.id !chosen in
    Tr.add_attrs sp
      [
        ("outcome", Tr.S (if applied then "applied" else "cost-rejected"));
        ("objects", Tr.I n);
        ("strategy", Tr.S "juxtaposed-linear");
        ("states", Tr.I !states);
        ("mask", Tr.S (Search.mask_to_string (List.rev !chosen)));
        ("base_cost", Tr.F base);
        ("best_cost", Tr.F !best_seen);
      ];
    !current))

(* ------------------------------------------------------------------ *)
(* The pipeline                                                         *)
(* ------------------------------------------------------------------ *)

(** One imperative (heuristic) transformation, traced as an attempt
    whose outcome is [applied] or [no-change] (transformations return
    the input tree physically unchanged when they do nothing). *)
let imperative (ctx : ctx) (name : string) (f : Catalog.t -> A.query -> A.query)
    (q : A.query) : A.query =
  Tr.wrap_with ctx.tr Tr.Attempt name (fun sp ->
      let q' = sanitize ctx ~tx:name ~base:q (f ctx.cat q) in
      Tr.add_attrs sp
        [ ("outcome", Tr.S (if q' == q then "no-change" else "applied")) ];
      q')

let heuristics (ctx : ctx) (q : A.query) : A.query =
  if not ctx.cfg.heuristic_phase then q
  else
    q
    |> imperative ctx "view-merge-spj" T.View_merge_spj.apply
    |> imperative ctx "join-elim" T.Join_elim.apply
    |> imperative ctx "predicate-move" T.Predicate_move.apply
    |> imperative ctx "group-prune" T.Group_prune.apply

let transform (ctx : ctx) (q : A.query) : A.query =
  (* 1. imperative phase: SPJ view merging, join elimination,
     predicate move-around, group pruning *)
  let q = heuristics ctx q in
  (* 2. subquery unnesting: imperative single-table merges, then the
     cost-based view-generating unnesting, interleaved with group-by
     view merging *)
  let q =
    match ctx.cfg.unnest with
    | D_off -> q
    | D_heuristic | D_cost ->
        let q = imperative ctx "unnest-merge" T.Unnest_merge.apply q in
        cost_step ctx "unnest" ~objects:T.Unnest_view.objects
          ~apply_mask:T.Unnest_view.apply_mask
          ~interleave_with:T.Gb_view_merge.apply_all
          ~heuristic_mask:T.Unnest_view.heuristic_mask ctx.cfg.unnest q
  in
  (* 3. group-by / distinct view merging, juxtaposed with JPPD *)
  let q =
    match ctx.cfg.gb_merge with
    | D_off -> q
    | D_heuristic ->
        (* pre-10g behaviour: always merge when legal *)
        imperative ctx "gb-view-merge (heuristic)" T.Gb_view_merge.apply_all q
    | D_cost -> gb_merge_juxtaposed ctx q
  in
  (* 4. re-run pruning / predicate motion over the rewritten tree *)
  let q = heuristics ctx q in
  (* 5. set operators into joins; the conversion manufactures SPJ
     views, so the imperative phase runs again afterwards *)
  let q =
    cost_step ctx "setop-to-join" ~objects:T.Setop_to_join.objects
      ~apply_mask:T.Setop_to_join.apply_mask ctx.cfg.setop_to_join q
  in
  let q = heuristics ctx q in
  (* 6. group-by placement (never heuristic, as in Oracle) *)
  let q =
    cost_step ctx "gb-placement" ~objects:T.Gb_placement.objects
      ~apply_mask:T.Gb_placement.apply_mask ctx.cfg.gbp q
  in
  (* 7. predicate pullup *)
  let q =
    cost_step ctx "predicate-pullup" ~objects:T.Predicate_pullup.objects
      ~apply_mask:T.Predicate_pullup.apply_mask ctx.cfg.pred_pullup q
  in
  (* 8. join factorization *)
  let q =
    cost_step ctx "join-factorization" ~objects:T.Join_factor.objects
      ~apply_mask:T.Join_factor.apply_mask ctx.cfg.join_factor q
  in
  (* 9. disjunction into UNION ALL *)
  let q =
    cost_step ctx "or-expansion" ~objects:T.Or_expansion.objects
      ~apply_mask:T.Or_expansion.apply_mask ctx.cfg.or_expansion q
  in
  let q = heuristics ctx q in
  (* 10. join predicate pushdown *)
  let q =
    cost_step ctx "jppd" ~objects:T.Jppd.objects
      ~apply_mask:T.Jppd.apply_mask ~heuristic_mask:T.Jppd.heuristic_mask
      ctx.cfg.jppd q
  in
  q

(** Transform and physically optimize [q]. *)
let optimize ?(config = default_config) (cat : Catalog.t) (q : A.query) :
    result =
  let t0 = Unix.gettimeofday () in
  let tr =
    if config.trace = Tr.Off then Tr.disabled else Tr.create config.trace
  in
  let opt =
    if config.memo then Opt.create ~annot_cache:(Hashtbl.create 64) ~tracer:tr cat
    else Opt.create ~tracer:tr cat
  in
  let ctx =
    {
      cat;
      opt;
      cfg = config;
      tr;
      steps = [];
      total_objects = 0;
      states_cutoff = 0;
      states_errored = 0;
    }
  in
  if config.check then
    (* cross-check every freshly costed block annotation against the
       key-derived cardinality bounds (CB002/CB003) *)
    Opt.set_block_hook opt
      (Some
         (fun bq ann ->
           emit ctx ~tx:"cost-model"
             (Analysis.Sem_check.check_annotation cat bq
                ~rows:ann.Planner.Annotation.an_rows
                ~info:ann.Planner.Annotation.an_info)));
  let root = Tr.enter tr Tr.Driver "cbqt" in
  ignore (sanitize ctx ~tx:"input" q);
  let q' = transform ctx q in
  (* the final plan optimization is traced like a costing so the
     counter deltas it earns (often all identity hits) stay attributed *)
  let ann =
    Tr.wrap_with tr Tr.Cost "final-plan" (fun sp ->
        let before =
          match sp with
          | None -> None
          | Some _ -> Some (Planner.Opt_stats.copy (Opt.stats opt))
        in
        let ann = Opt.optimize opt q' in
        (match before with
        | None -> ()
        | Some before ->
            Tr.add_attrs sp
              (cost_attrs ~cap:None ~before ~after:(Opt.stats opt)
                 (O_cost ann.Planner.Annotation.an_cost)));
        ann)
  in
  (if config.check then
     let diags =
       Analysis.Plan_check.check_annotated cat
         ~cost:ann.Planner.Annotation.an_cost
         ~rows:ann.Planner.Annotation.an_rows ann.Planner.Annotation.an_plan
     in
     emit ctx ~tx:"physical-plan" (Analysis.Diagnostics.errors diags));
  Tr.add_attrs root
    [ ("final_cost", Tr.F ann.Planner.Annotation.an_cost) ];
  Tr.exit_ tr root;
  let t1 = Unix.gettimeofday () in
  let states_total =
    List.fold_left (fun acc s -> acc + s.sr_states) 0 ctx.steps
  in
  let st = Opt.stats opt in
  let report =
    {
      rp_steps = List.rev ctx.steps;
      rp_states_total = states_total;
      rp_states_cutoff = ctx.states_cutoff;
      rp_states_errored = ctx.states_errored;
      rp_blocks_started = st.Planner.Opt_stats.blocks_started;
      rp_blocks_optimized = st.Planner.Opt_stats.blocks_optimized;
      rp_ident_hits = st.Planner.Opt_stats.ident_hits;
      rp_fp_hits = st.Planner.Opt_stats.fp_hits;
      rp_cache_hits = Planner.Opt_stats.cache_hits st;
      rp_dp_pruned = st.Planner.Opt_stats.dp_pruned;
      rp_dirty_misses = st.Planner.Opt_stats.dirty_misses;
      rp_fp_collisions = st.Planner.Opt_stats.fp_collisions;
      rp_final_cost = ann.Planner.Annotation.an_cost;
      rp_opt_seconds = t1 -. t0;
    }
  in
  (* publish the run's totals to the process-wide metrics registry:
     every hard parse contributes, so the registry accumulates what a
     single report only shows per run *)
  (if !Mx.enabled then begin
     let c name = Mx.counter Mx.default name in
     Mx.add (c "cbqt_states_total") report.rp_states_total;
     Mx.add (c "cbqt_states_cutoff_total") report.rp_states_cutoff;
     Mx.add (c "cbqt_states_errored_total") report.rp_states_errored;
     Mx.add (c "cbqt_blocks_optimized_total") report.rp_blocks_optimized;
     Mx.add (c "cbqt_annot_reuse_total") report.rp_cache_hits;
     Mx.add (c "cbqt_dp_pruned_total") report.rp_dp_pruned;
     Mx.observe
       (Mx.histogram Mx.default "cbqt_optimize_seconds")
       report.rp_opt_seconds;
     List.iter
       (fun s ->
         let labels = [ ("tx", s.sr_name) ] in
         Mx.inc (Mx.counter ~labels Mx.default "cbqt_tx_attempts_total");
         if List.exists Fun.id s.sr_chosen then
           Mx.inc (Mx.counter ~labels Mx.default "cbqt_tx_accepts_total"))
       report.rp_steps
   end);
  { res_query = q'; res_annotation = ann; res_report = report; res_trace = tr }

(** Stable, aligned report format: one [label value] line per counter
    (fixed label column, counters in a fixed order), then one aligned
    line per transformation step. Tooling that scrapes the output can
    rely on the label text and ordering. *)
let pp_report ppf (r : report) =
  let line label pp_v = Fmt.pf ppf "  %-18s %t@." label pp_v in
  Fmt.pf ppf "optimization report@.";
  line "wall clock" (fun ppf -> Fmt.pf ppf "%.3f ms" (r.rp_opt_seconds *. 1000.));
  line "states total" (fun ppf -> Fmt.pf ppf "%d" r.rp_states_total);
  line "states cutoff" (fun ppf -> Fmt.pf ppf "%d" r.rp_states_cutoff);
  line "states errored" (fun ppf -> Fmt.pf ppf "%d" r.rp_states_errored);
  line "blocks started" (fun ppf -> Fmt.pf ppf "%d" r.rp_blocks_started);
  line "blocks optimized" (fun ppf -> Fmt.pf ppf "%d" r.rp_blocks_optimized);
  line "reuse ident" (fun ppf -> Fmt.pf ppf "%d" r.rp_ident_hits);
  line "reuse fp" (fun ppf -> Fmt.pf ppf "%d" r.rp_fp_hits);
  line "reuse total" (fun ppf -> Fmt.pf ppf "%d" r.rp_cache_hits);
  line "dp pruned" (fun ppf -> Fmt.pf ppf "%d" r.rp_dp_pruned);
  line "dirty misses" (fun ppf -> Fmt.pf ppf "%d" r.rp_dirty_misses);
  line "fp collisions" (fun ppf -> Fmt.pf ppf "%d" r.rp_fp_collisions);
  line "final cost" (fun ppf -> Fmt.pf ppf "%.1f" r.rp_final_cost);
  Fmt.pf ppf "  steps@.";
  List.iter
    (fun s ->
      Fmt.pf ppf
        "    %-20s objects=%-2d strategy=%-18s states=%-3d chosen=%s \
         (%.1f -> %.1f)@."
        s.sr_name s.sr_objects s.sr_strategy s.sr_states
        (Search.mask_to_string s.sr_chosen)
        s.sr_base_cost s.sr_best_cost)
    r.rp_steps

(* ------------------------------------------------------------------ *)
(* Report / trace consistency                                           *)
(* ------------------------------------------------------------------ *)

(** The report counters re-derived from a [Full]-level trace: states
    from the State spans, cut-offs and errors from the Cost spans'
    [outcome] attribute, and every {!Planner.Opt_stats} counter by
    summing the [d_]-prefixed deltas over the Cost spans (which include
    the final-plan costing). Returned in [report] shape with the fields
    a trace does not carry ([rp_steps], costs, wall clock) zeroed. *)
let counts_of_trace (tr : Tr.t) : report =
  let cost_attr key = Tr.sum_int_attr tr Tr.Cost key in
  let ident = cost_attr "d_ident_hits" and fp = cost_attr "d_fp_hits" in
  {
    rp_steps = [];
    rp_states_total = Tr.count_kind tr Tr.State;
    rp_states_cutoff = Tr.count_kind_attr tr Tr.Cost "outcome" "cutoff";
    rp_states_errored = Tr.count_kind_attr tr Tr.Cost "outcome" "error";
    rp_blocks_started = cost_attr "d_blocks_started";
    rp_blocks_optimized = cost_attr "d_blocks_optimized";
    rp_ident_hits = ident;
    rp_fp_hits = fp;
    rp_cache_hits = ident + fp;
    rp_dp_pruned = cost_attr "d_dp_pruned";
    rp_dirty_misses = cost_attr "d_dirty_misses";
    rp_fp_collisions = cost_attr "d_fp_collisions";
    rp_final_cost = 0.;
    rp_opt_seconds = 0.;
  }

(** Check that a report and the trace of the same run can never
    disagree: every counter the trace can derive must match the report
    exactly. Only meaningful for a [Full]-level trace ([Error] explains
    which counter diverged). *)
let report_consistent (r : report) (tr : Tr.t) : (unit, string) Stdlib.result =
  if Tr.level tr <> Tr.Full then
    Error "report_consistent requires a Full-level trace"
  else
    let d = counts_of_trace tr in
    let checks =
      [
        ("states_total", r.rp_states_total, d.rp_states_total);
        ("states_cutoff", r.rp_states_cutoff, d.rp_states_cutoff);
        ("states_errored", r.rp_states_errored, d.rp_states_errored);
        ("blocks_started", r.rp_blocks_started, d.rp_blocks_started);
        ("blocks_optimized", r.rp_blocks_optimized, d.rp_blocks_optimized);
        ("ident_hits", r.rp_ident_hits, d.rp_ident_hits);
        ("fp_hits", r.rp_fp_hits, d.rp_fp_hits);
        ("cache_hits", r.rp_cache_hits, d.rp_cache_hits);
        ("dp_pruned", r.rp_dp_pruned, d.rp_dp_pruned);
        ("dirty_misses", r.rp_dirty_misses, d.rp_dirty_misses);
        ("fp_collisions", r.rp_fp_collisions, d.rp_fp_collisions);
      ]
    in
    match
      List.find_opt (fun (_, rep, derived) -> rep <> derived) checks
    with
    | None -> Ok ()
    | Some (name, rep, derived) ->
        Error
          (Printf.sprintf "%s: report says %d, trace derives %d" name rep
             derived)
