(** The cost-based query transformation driver — the paper's framework
    (Sections 3.1–3.4) assembled: an imperative heuristic phase, then
    the cost-based transformations in the paper's sequential order, each
    searching its state space with costs from the physical optimizer,
    with interleaving, juxtaposition, cost cut-off and cost-annotation
    reuse wired in. *)

(** How one transformation's decision is made. *)
type decision =
  | D_off  (** transformation disabled entirely *)
  | D_heuristic  (** rule-based decision (the CBQT-off baseline) *)
  | D_cost  (** state-space search costed by the physical optimizer *)

type config = {
  unnest : decision;
  gb_merge : decision;
  jppd : decision;
  gbp : decision;
  setop_to_join : decision;
  or_expansion : decision;
  join_factor : decision;
  pred_pullup : decision;
  heuristic_phase : bool;
      (** run the imperative transformations (SPJ view merging, join
          elimination, predicate move-around, group pruning) *)
  interleave : bool;  (** Section 3.3.1: unnesting ⋈ view merging *)
  juxtapose : bool;  (** Section 3.3.2: view merging vs JPPD *)
  check : bool;
      (** sanitizer mode: re-run {!Analysis.Ir_check} after every
          transformation application and every CBQT search state, and
          {!Analysis.Plan_check} on the final plan. On the first
          error-severity finding, {!optimize} raises
          {!Analysis.Diagnostics.Check_failed} naming the offending
          transformation. Also fails the run (rule [CB001]) when a
          transformed search state cannot be optimized although the
          untransformed state could. Defaults to the [CBQT_CHECK] env
          var ([1] / [true] / [on] / [yes]). *)
  on_diag : (string -> Analysis.Diagnostics.t list -> unit) option;
      (** collection mode for the sanitizer: when set, error-severity
          findings are passed to this callback (with the offending
          transformation's name) instead of raising [Check_failed], and
          the run continues — the CLI's [check --sem] summary uses this
          to count every rule firing across a workload. [None] (the
          default) keeps the fail-fast raising behaviour. *)
  memo : bool;
      (** cost-annotation reuse (Section 3.4.2): share the identity and
          fingerprint annotation caches across all states of all
          transformations of the run. [false] re-optimizes every block
          of every state from scratch — for measuring what the caches
          buy (Table 2) and for differential testing. Default [true]. *)
  trace : Obs.Trace.level;
      (** observability spans ({!Obs.Trace}): [Off] records nothing
          (and costs nothing), [Steps] one span per transformation
          attempt, [Full] adds per-state, per-costing and per-block
          spans carrying {!Planner.Opt_stats} counter deltas. Defaults
          to the [CBQT_TRACE] env var ([0]/[off], [1]/[steps],
          [2]/[full]). *)
  policy : Policy.t;
}

val default_config : config
(** Everything cost-based — the CBQT-on configuration. *)

val heuristic_config : config
(** The paper's CBQT-off baseline: the pre-10g unnesting rule,
    merge-always group-by view merging, index-driven JPPD, no group-by
    placement, no searches. *)

type step_report = {
  sr_name : string;
  sr_objects : int;
  sr_strategy : string;
  sr_states : int;
  sr_chosen : bool list;
  sr_base_cost : float;  (** cost of the untransformed state *)
  sr_best_cost : float;
}

type report = {
  rp_steps : step_report list;
  rp_states_total : int;
  rp_states_cutoff : int;
      (** search states abandoned by the cost cut-off (Section 3.4.1) —
          a legitimate saving, not a failure *)
  rp_states_errored : int;
      (** search states the optimizer could not cost (unsupported shape
          or unbound column); in sanitizer mode a transformed state
          erroring while its base state succeeded fails the run *)
  rp_blocks_started : int;
      (** query-block optimizations entered (cache misses); the
          difference to [rp_blocks_optimized] is aborted mid-block by
          the cut-off *)
  rp_blocks_optimized : int;  (** Table 1 / Table 2 accounting unit *)
  rp_ident_hits : int;
      (** annotations reused by physical identity of the block —
          untouched blocks of a search state cost O(1) to look up *)
  rp_fp_hits : int;
      (** annotations reused by block fingerprint (structurally equal
          but freshly allocated trees) *)
  rp_cache_hits : int;
      (** [rp_ident_hits + rp_fp_hits] — annotation reuse total
          (Section 3.4.2) *)
  rp_dp_pruned : int;
      (** partial join orders discarded by branch-and-bound against the
          state cost cap inside the join enumeration *)
  rp_dirty_misses : int;
      (** blocks a transformation's dirty set reported clean that
          nevertheless missed the identity cache (advisory: indicates a
          transformation over-copying untouched blocks) *)
  rp_fp_collisions : int;
      (** fingerprint-hash bucket entries that failed the full
          structural comparison on probe (true hash collisions) *)
  rp_final_cost : float;
  rp_opt_seconds : float;
}

type result = {
  res_query : Sqlir.Ast.query;  (** the transformed query tree *)
  res_annotation : Planner.Annotation.t;  (** final physical plan *)
  res_report : report;
  res_trace : Obs.Trace.t;
      (** the run's span tree ({!Obs.Trace.disabled} when
          [config.trace = Off]); render with {!Obs.Trace.pp_tree},
          {!Obs.Trace.to_jsonl} or {!Obs.Trace.to_chrome} *)
}

val optimize : ?config:config -> Catalog.t -> Sqlir.Ast.query -> result
(** Transform and physically optimize a query. The returned plan is
    executable with {!Exec.Executor.execute}.

    @raise Analysis.Diagnostics.Check_failed in sanitizer mode
    ([config.check]) when any transformation — or the final physical
    plan — fails its static checks. *)

val pp_report : Format.formatter -> report -> unit
(** Stable, aligned rendering: one [label value] line per counter in a
    fixed order, then one aligned line per transformation step. *)

val counts_of_trace : Obs.Trace.t -> report
(** The report counters re-derived from a [Full]-level trace (states
    from State spans, cut-offs/errors from Cost-span outcomes, the
    {!Planner.Opt_stats} counters by summing [d_]-prefixed deltas over
    Cost spans). Fields a trace does not carry ([rp_steps], costs, wall
    clock) are zeroed. *)

val report_consistent : report -> Obs.Trace.t -> (unit, string) Stdlib.result
(** [report_consistent res_report res_trace] checks that the report and
    the trace of the same run agree on every counter the trace can
    derive — the two are produced from the same underlying events, so
    any disagreement is a tracing bug. Requires a [Full]-level trace;
    [Error] names the diverging counter. *)
