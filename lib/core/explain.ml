(** EXPLAIN ANALYZE: estimated vs. actual per-operator cardinalities.

    Executes a physical plan with {!Exec.Executor.execute_analyzed} and
    joins the per-operator actuals (calls, rows, {!Exec.Meter} deltas)
    against the cost model's estimates ({!Planner.Plan_est}), reporting
    the Q-error — [max(est/act, act/est)], the standard multiplicative
    misestimation factor — per operator and for the whole query.

    Actual rows are normalized {e per invocation} before comparison:
    nested-loop inner sides and TIS subquery plans run once per outer
    row, and their estimates are per execution, so comparing against
    the accumulated total would misreport exactly the operators whose
    cardinality matters most.

    Per-operator meter charges are {e self} charges: the node's
    accumulated meter minus its direct children's, so the self columns
    sum to the whole-query meter (tested in [test_obs]). *)

module Plan = Exec.Plan
module Meter = Exec.Meter
module Executor = Exec.Executor
module Db = Storage.Db

(** One operator row of the report, in pre-order. *)
type op = {
  op_plan : Plan.t;
  op_depth : int;
  op_label : string;
  op_est_rows : float;  (** estimated output rows per invocation *)
  op_calls : int;  (** closure invocations (0 = never executed) *)
  op_total_rows : int;  (** rows produced, summed over invocations *)
  op_act_rows : float;  (** actual rows per invocation *)
  op_self : Meter.t;  (** meter charges net of children *)
  op_q_error : float;  (** [nan] when the operator never executed *)
  op_engine : string;  (** which engine interpreted the node *)
  op_sel_density : float;
      (** vectorized operators: fraction of entering rows surviving the
          selection vector ([nan] for row-engine nodes) *)
  op_shared : bool;
      (** repeat occurrence of a physically shared node: actuals and
          self charges are reported at its first occurrence only *)
}

type t = {
  ex_ops : op list;  (** pre-order over the plan *)
  ex_rows : int;  (** result rows *)
  ex_meter : Meter.t;  (** whole-query meter *)
  ex_root_q_error : float;
  ex_max_q_error : float;  (** worst executed operator *)
  ex_median_q_error : float;
  ex_parts_scanned : int;  (** partitions actually read *)
  ex_parts_pruned : int;  (** partitions skipped by runtime pruning *)
  ex_dop : int;  (** max effective exchange worker count; 0 = serial *)
}

(** [q_error ~est ~act] = [max(est/act, act/est)] with both sides
    clamped to at least one row, so "estimated 0.3, got 0" counts as
    perfect rather than dividing by zero — the convention of the
    cardinality-estimation literature. Always >= 1. *)
let q_error ~est ~act =
  let est = Float.max 1. est and act = Float.max 1. act in
  Float.max (est /. act) (act /. est)

module Ptbl = Hashtbl.Make (struct
  type t = Plan.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

(** Execute [plan] against [db] and build the per-operator report. The
    planner's cardinality estimates double as the executor's [card_of]
    hints, so the hybrid engine choice reported here is the one a
    served query would make; [engine] forces one path. *)
let analyze ?meter ?engine (db : Db.t) (plan : Plan.t) : t =
  let est_root, est_of = Planner.Plan_est.estimate db.Db.cat plan in
  ignore est_root;
  let es = Executor.engine_stats_create () in
  let _, rows, whole, stat_of =
    Executor.execute_analyzed ?meter ?engine ~engine_stats:es ~card_of:est_of
      db plan
  in
  let visited : unit Ptbl.t = Ptbl.create 64 in
  let ops = ref [] in
  (* partitioned scans carry the costed pruning decision in the label:
     statically estimated surviving partitions over the total *)
  let label_of p =
    let base = Plan.node_label p in
    match p with
    | Plan.Part_scan { table; prune; _ } -> (
        match Catalog.part_spec db.Db.cat table with
        | Some ps ->
            let est =
              List.length
                (Exec.Prune.survivors
                   ~value_of:(Exec.Prune.value_of ~binds:[||])
                   ps prune)
            in
            Printf.sprintf "%s [parts %d/%d est]" base est ps.Catalog.ps_n
        | None -> base)
    | _ -> base
  in
  let rec walk depth p =
    let first = not (Ptbl.mem visited p) in
    if first then Ptbl.add visited p ();
    let stat = stat_of p in
    let calls, total_rows =
      if not first then (0, 0)
      else
        match stat with
        | None -> (0, 0)
        | Some st -> (st.Executor.ns_calls, st.Executor.ns_rows)
    in
    let self =
      if not first then Meter.create ()
      else
        match stat with
        | None -> Meter.create ()
        | Some st ->
            let m = Meter.copy st.Executor.ns_meter in
            (* subtract each direct child's accumulated total; children
               are unvisited here (pre-order), so a shared child is
               consumed by its first parent only *)
            List.iter
              (fun c ->
                if not (Ptbl.mem visited c) then
                  match stat_of c with
                  | Some cst ->
                      Meter.add m
                        (Meter.diff (Meter.create ()) cst.Executor.ns_meter)
                  | None -> ())
              (Plan.children p);
            m
    in
    let act_rows = float_of_int total_rows /. float_of_int (max 1 calls) in
    let est_rows = match est_of p with Some e -> e | None -> nan in
    let qe = if calls = 0 then nan else q_error ~est:est_rows ~act:act_rows in
    let engine, density =
      match stat with
      | Some st when first ->
          ( st.Executor.ns_engine,
            if st.Executor.ns_sel_in > 0 then
              float_of_int st.Executor.ns_rows
              /. float_of_int st.Executor.ns_sel_in
            else nan )
      | _ -> ("row", nan)
    in
    ops :=
      {
        op_plan = p;
        op_depth = depth;
        op_label = label_of p;
        op_est_rows = est_rows;
        op_calls = calls;
        op_total_rows = total_rows;
        op_act_rows = act_rows;
        op_self = self;
        op_q_error = qe;
        op_engine = engine;
        op_sel_density = density;
        op_shared = not first;
      }
      :: !ops;
    List.iter (walk (depth + 1)) (Plan.children p)
  in
  walk 0 plan;
  let ops = List.rev !ops in
  let executed_qes =
    List.filter_map
      (fun o -> if Float.is_nan o.op_q_error then None else Some o.op_q_error)
      ops
  in
  let root_qe =
    match ops with
    | o :: _ when not (Float.is_nan o.op_q_error) -> o.op_q_error
    | _ -> nan
  in
  let max_qe = List.fold_left Float.max 1. executed_qes in
  let median_qe =
    match List.sort compare executed_qes with
    | [] -> nan
    | sorted -> List.nth sorted (List.length sorted / 2)
  in
  {
    ex_ops = ops;
    ex_rows = List.length rows;
    ex_meter = whole;
    ex_root_q_error = root_qe;
    ex_max_q_error = max_qe;
    ex_median_q_error = median_qe;
    ex_parts_scanned = es.Executor.es_parts_scanned;
    ex_parts_pruned = es.Executor.es_parts_pruned;
    ex_dop = es.Executor.es_dop;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let fmt_rows f =
  if Float.is_nan f then "-"
  else if Float.is_integer f && Float.abs f < 1e7 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.1f" f

let pp ppf (t : t) =
  let width =
    List.fold_left
      (fun w o -> max w ((o.op_depth * 2) + String.length o.op_label))
      4 t.ex_ops
  in
  Fmt.pf ppf "%-*s %10s %10s %7s %8s %12s %7s %6s@." width "PLAN" "est.rows"
    "act.rows" "calls" "q-err" "self-work" "engine" "sel%";
  List.iter
    (fun o ->
      let label = String.make (o.op_depth * 2) ' ' ^ o.op_label in
      if o.op_shared then
        Fmt.pf ppf "%-*s %10s %10s %7s %8s %12s %7s %6s@." width label
          "(shared)" "" "" "" "" "" ""
      else
        Fmt.pf ppf "%-*s %10s %10s %7d %8s %12.1f %7s %6s@." width label
          (fmt_rows o.op_est_rows)
          (if o.op_calls = 0 then "-" else fmt_rows o.op_act_rows)
          o.op_calls
          (if Float.is_nan o.op_q_error then "-"
           else Printf.sprintf "%.2f" o.op_q_error)
          (Meter.work o.op_self) o.op_engine
          (if Float.is_nan o.op_sel_density then "-"
           else Printf.sprintf "%.0f%%" (100. *. o.op_sel_density)))
    t.ex_ops;
  Fmt.pf ppf "@.%d rows; total work %.1f@." t.ex_rows (Meter.work t.ex_meter);
  (* cache key-build cost of the TIS / NL-inner result caches: values
     copied into lookup keys, traded against re-executing sub-plans *)
  if
    t.ex_meter.Meter.key_build > 0
    || t.ex_meter.Meter.subq_cache_hits > 0
    || t.ex_meter.Meter.subq_execs > 0
  then
    Fmt.pf ppf "subquery caches: %d execs, %d hits, %d key values built@."
      t.ex_meter.Meter.subq_execs t.ex_meter.Meter.subq_cache_hits
      t.ex_meter.Meter.key_build;
  if t.ex_parts_scanned > 0 || t.ex_parts_pruned > 0 then
    Fmt.pf ppf "partitions: %d scanned, %d pruned%s@." t.ex_parts_scanned
      t.ex_parts_pruned
      (if t.ex_dop > 0 then Printf.sprintf "; exchange dop %d" t.ex_dop
       else "");
  Fmt.pf ppf "q-error: root %s, median %s, max %s@."
    (if Float.is_nan t.ex_root_q_error then "-"
     else Printf.sprintf "%.2f" t.ex_root_q_error)
    (if Float.is_nan t.ex_median_q_error then "-"
     else Printf.sprintf "%.2f" t.ex_median_q_error)
    (Printf.sprintf "%.2f" t.ex_max_q_error)
