(** State-space search strategies for cost-based transformation
    (Section 3.2).

    A {e state} is a bit vector over the N transformation objects: bit i
    set means object i is transformed. The four strategies of the paper
    are implemented over an abstract costing callback, which the driver
    wires to deep-copy + transform + physical optimization:

    - {b Exhaustive}: all 2{^N} states; guaranteed optimal.
    - {b Iterative}: iterative improvement — hill-climbing from several
      starting states, always taking the best downward one-bit move,
      stopping at a local minimum or a state budget; explores between
      N+1 and 2{^N} states.
    - {b Linear}: dynamic-programming flavour — decide each object in
      sequence, keeping a bit only if it lowers the cost; exactly N+1
      states. Optimal when objects are independent.
    - {b Two-pass}: just the all-zeros and all-ones states.

    Costs may be infinite ([infinity]) when the optimizer aborts a state
    through the cost cut-off (Section 3.4.1); such states lose every
    comparison. The evaluation callback is memoized, so re-visited
    states (possible under iterative improvement) are not re-costed —
    and not re-counted. *)

type strategy = Exhaustive | Iterative | Linear | Two_pass

let strategy_name = function
  | Exhaustive -> "exhaustive"
  | Iterative -> "iterative"
  | Linear -> "linear"
  | Two_pass -> "two-pass"

type result = {
  r_best : bool list;
  r_best_cost : float;
  r_states : int;  (** distinct states costed *)
  r_trace : (bool list * float) list;  (** evaluation order *)
}

let mask_to_string mask =
  "(" ^ String.concat "," (List.map (fun b -> if b then "1" else "0") mask) ^ ")"

(* memoizing wrapper around the costing callback *)
let memoized eval =
  let seen : (bool list, float) Hashtbl.t = Hashtbl.create 16 in
  let states = ref 0 in
  let trace = ref [] in
  let f mask =
    match Hashtbl.find_opt seen mask with
    | Some c -> c
    | None ->
        let c = eval mask in
        Hashtbl.replace seen mask c;
        incr states;
        trace := (mask, c) :: !trace;
        c
  in
  (f, states, trace)

let all_masks n =
  List.init (1 lsl n) (fun code ->
      List.init n (fun i -> code land (1 lsl i) <> 0))

let zeros n = List.init n (fun _ -> false)
let ones n = List.init n (fun _ -> true)

let flip mask i = List.mapi (fun j b -> if j = i then not b else b) mask

(** CB004 invariant over a finished search: the winner must be one of
    the states actually evaluated, at exactly the cost the evaluation
    recorded, and no evaluated state may beat it. Raised as
    [Check_failed ("search", [CB004 ...])] in sanitizer mode. *)
let validate_result (r : result) : unit =
  let module D = Analysis.Diagnostics in
  let fail fmt =
    Format.kasprintf
      (fun msg ->
        raise
          (D.Check_failed
             ("search", [ D.error ~rule:"CB004" ~path:"search" "%s" msg ])))
      fmt
  in
  (match List.assoc_opt r.r_best r.r_trace with
  | None ->
      fail "winning state %s was never evaluated" (mask_to_string r.r_best)
  | Some c ->
      if
        not
          (Float.equal c r.r_best_cost || (Float.is_nan c && Float.is_nan r.r_best_cost))
      then
        fail "winning state %s reported cost %g but was evaluated at %g"
          (mask_to_string r.r_best) r.r_best_cost c);
  List.iter
    (fun (mask, c) ->
      if c < r.r_best_cost then
        fail "evaluated state %s (cost %g) beats the reported winner %s (%g)"
          (mask_to_string mask) c (mask_to_string r.r_best) r.r_best_cost)
    r.r_trace

let run ?(iterative_max_states = 32) ?(check = false) (strategy : strategy)
    (n : int) (eval : bool list -> float) : result =
  if n = 0 then
    { r_best = []; r_best_cost = eval []; r_states = 1; r_trace = [ ([], nan) ] }
  else
    let eval, states, trace = memoized eval in
    let best = ref (zeros n) in
    let best_cost = ref (eval (zeros n)) in
    let consider mask =
      let c = eval mask in
      if c < !best_cost then (
        best := mask;
        best_cost := c)
    in
    (match strategy with
    | Exhaustive -> List.iter consider (all_masks n)
    | Two_pass -> consider (ones n)
    | Linear ->
        (* extend the current decision one object at a time *)
        let current = ref (zeros n) in
        for i = 0 to n - 1 do
          let cand = flip !current i in
          if eval cand < eval !current then (
            current := cand;
            consider cand)
        done
    | Iterative ->
        (* hill-climb from all-zeros and all-ones; best downward
           neighbour until local minimum or state budget *)
        let climb start =
          let cur = ref start in
          let cur_cost = ref (eval start) in
          if !cur_cost < !best_cost then (
            best := !cur;
            best_cost := !cur_cost);
          let improved = ref true in
          while !improved && !states < iterative_max_states do
            improved := false;
            let neighbours = List.init n (fun i -> flip !cur i) in
            let candidates =
              List.filter_map
                (fun m ->
                  if !states >= iterative_max_states then None
                  else
                    let c = eval m in
                    if c < !cur_cost then Some (m, c) else None)
                neighbours
            in
            match
              List.sort (fun (_, a) (_, b) -> Float.compare a b) candidates
            with
            | (m, c) :: _ ->
                cur := m;
                cur_cost := c;
                improved := true;
                if c < !best_cost then (
                  best := m;
                  best_cost := c)
            | [] -> ()
          done
        in
        climb (zeros n);
        if !states < iterative_max_states then climb (ones n));
    let result =
      { r_best = !best; r_best_cost = !best_cost; r_states = !states;
        r_trace = List.rev !trace }
    in
    if check then validate_result result;
    result
