(** State-space search strategies for cost-based transformation
    (paper Section 3.2).

    A {e state} is a bit vector over the N transformation objects of one
    transformation: bit [i] set means object [i] is transformed. Costing
    is abstracted behind a callback (the driver wires it to deep-copy →
    transform → physical optimization); evaluations are memoized, so a
    state revisited by a strategy is neither re-costed nor re-counted. *)

type strategy =
  | Exhaustive  (** all 2{^N} states; guaranteed optimal *)
  | Iterative
      (** iterative improvement: best-downhill hill climbing from the
          all-zeros and all-ones states, bounded by a state budget *)
  | Linear  (** decide objects one at a time; exactly N+1 states *)
  | Two_pass  (** only the all-zeros and all-ones states *)

val strategy_name : strategy -> string

type result = {
  r_best : bool list;  (** the winning state *)
  r_best_cost : float;
  r_states : int;  (** distinct states costed *)
  r_trace : (bool list * float) list;  (** evaluation order *)
}

val mask_to_string : bool list -> string
(** [(0,1,…)] rendering, as in the paper's state notation. *)

val all_masks : int -> bool list list
(** Every state over [n] objects, in binary-counter order. *)

val zeros : int -> bool list
val ones : int -> bool list

val validate_result : result -> unit
(** CB004 invariant over a finished search: the winner must be one of
    the states actually evaluated, at exactly the cost the evaluation
    recorded, and no evaluated state may beat it. Raises
    {!Analysis.Diagnostics.Check_failed} (rule [CB004]) on violation. *)

val run :
  ?iterative_max_states:int ->
  ?check:bool ->
  strategy ->
  int ->
  (bool list -> float) ->
  result
(** [run strategy n eval] searches the 2{^n} state space. [eval] may
    return [infinity] for states aborted by the cost cut-off (Section
    3.4.1); such states lose every comparison. The all-zeros state is
    always evaluated first, so the returned best is never worse than
    the untransformed query. With [~check:true] the result is passed
    through {!validate_result} before being returned. *)
