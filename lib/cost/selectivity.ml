(** Selectivity estimation.

    Classic System-R style rules over {!Info.rel_info}: equality against
    a constant is 1/NDV, ranges interpolate against column min/max,
    conjunctions multiply (independence assumption), disjunctions use
    inclusion–exclusion. The environment passed in covers all visible
    columns, including outer-scope columns for correlated predicates, so
    the same rules estimate correlation predicates inside subqueries. *)

open Sqlir
module A = Ast

let default_eq = 0.01
let default_range = 0.05
let default_other = 0.34

let clamp s = Float.max 1e-6 (Float.min 1.0 s)

let frac_of_range (ci : Info.colinfo) ~(lo : Value.t option)
    ~(hi : Value.t option) =
  match (Value.to_float ci.ci_min, Value.to_float ci.ci_max) with
  | Some mn, Some mx when mx > mn ->
      let width = mx -. mn in
      let lo_f = match lo with Some v -> Value.to_float v | None -> Some mn in
      let hi_f = match hi with Some v -> Value.to_float v | None -> Some mx in
      (match (lo_f, hi_f) with
      | Some l, Some h ->
          let l = Float.max mn l and h = Float.min mx h in
          if h < l then 1e-6 else clamp ((h -. l) /. width)
      | _ -> default_range)
  | _ -> default_range

(** Selectivity of comparing column-with-info against a constant. *)
let cmp_const_sel (ci : Info.colinfo) (op : A.cmp) (v : Value.t) =
  let not_null = 1. -. ci.ci_null_frac in
  match op with
  | A.Eq -> clamp (not_null /. Float.max 1. ci.ci_ndv)
  | A.Ne -> clamp (not_null *. (1. -. (1. /. Float.max 1. ci.ci_ndv)))
  | A.Lt | A.Le ->
      clamp (not_null *. frac_of_range ci ~lo:None ~hi:(Some v))
  | A.Gt | A.Ge ->
      clamp (not_null *. frac_of_range ci ~lo:(Some v) ~hi:None)

(** Equi-join selectivity between two columns. *)
let eq_join_sel (c1 : Info.colinfo) (c2 : Info.colinfo) =
  clamp
    ((1. -. c1.ci_null_frac) *. (1. -. c2.ci_null_frac)
    /. Float.max 1. (Float.max c1.ci_ndv c2.ci_ndv))

(** Constant value usable for estimation: a literal, or the peeked
    value of a bind marker ({e bind peeking} — the peek steers the
    estimate only, never plan legality). *)
let peek_const = function
  | A.Const v -> Some v
  | A.Bind (_, v) when not (Value.is_null v) -> Some v
  | _ -> None

(** Estimate the selectivity of [p] against environment [env]. Subquery
    predicates get a fixed default (they are costed separately by the
    TIS machinery, but their filtering effect on the stream still needs
    a guess). *)
let rec pred_sel (env : Info.rel_info) (p : A.pred) : float =
  match p with
  | A.True -> 1.0
  | A.False -> 1e-6
  | A.Cmp (op, A.Col c, rhs)
    when Info.find_col env c <> None && peek_const rhs <> None ->
      cmp_const_sel
        (Option.get (Info.find_col env c))
        op
        (Option.get (peek_const rhs))
  | A.Cmp (op, lhs, A.Col c)
    when Info.find_col env c <> None && peek_const lhs <> None ->
      cmp_const_sel
        (Option.get (Info.find_col env c))
        (flip op)
        (Option.get (peek_const lhs))
  | A.Cmp (op, a, b) -> (
      match (Info.expr_colinfo env a, Info.expr_colinfo env b) with
      | Some c1, Some c2 when op = A.Eq -> eq_join_sel c1 c2
      | Some c1, Some c2 when op = A.Ne -> clamp (1. -. eq_join_sel c1 c2)
      | Some _, Some _ -> default_other
      | Some ci, None | None, Some ci -> (
          match op with
          | A.Eq -> clamp (1. /. Float.max 1. ci.ci_ndv)
          | A.Ne -> clamp (1. -. (1. /. Float.max 1. ci.ci_ndv))
          | _ -> default_range *. 4.)
      | None, None -> (
          match op with A.Eq -> default_eq | _ -> default_other))
  | A.Between (a, lo, hi) -> (
      match Info.expr_colinfo env a with
      | Some ci -> (
          match (peek_const lo, peek_const hi) with
          | Some l, Some h ->
              clamp
                ((1. -. ci.ci_null_frac)
                *. frac_of_range ci ~lo:(Some l) ~hi:(Some h))
          | _ -> default_range)
      | None -> default_range)
  | A.Is_null a -> (
      match Info.expr_colinfo env a with
      | Some ci -> clamp ci.ci_null_frac
      | None -> 0.02)
  | A.Not a -> clamp (1. -. pred_sel env a)
  | A.Lnnvl a -> clamp (1. -. pred_sel env a)
  | A.And (a, b) -> clamp (pred_sel env a *. pred_sel env b)
  | A.Or (a, b) ->
      let sa = pred_sel env a and sb = pred_sel env b in
      clamp (sa +. sb -. (sa *. sb))
  | A.In_list (a, vs) -> (
      match Info.expr_colinfo env a with
      | Some ci ->
          clamp
            ((1. -. ci.ci_null_frac)
            *. Float.min 1.
                 (float_of_int (List.length vs) /. Float.max 1. ci.ci_ndv))
      | None -> clamp (default_eq *. float_of_int (List.length vs)))
  | A.In_subq _ | A.Exists _ -> 0.5
  | A.Not_in_subq _ | A.Not_exists _ -> 0.5
  | A.Cmp_subq (_, _, None, _) -> default_other
  | A.Cmp_subq (_, _, Some _, _) -> 0.5
  | A.Pred_fn (name, _) -> Exec.Funcs.selectivity name

and flip : A.cmp -> A.cmp = function
  | A.Lt -> A.Gt
  | A.Le -> A.Ge
  | A.Gt -> A.Lt
  | A.Ge -> A.Le
  | (A.Eq | A.Ne) as op -> op

let conj_sel env ps =
  List.fold_left (fun acc p -> acc *. pred_sel env p) 1.0 ps

(** Estimated number of distinct value combinations of [exprs] in a
    stream described by [env] with [rows] rows — the group count
    estimator, also used for TIS cache-miss estimation. *)
let distinct_count (env : Info.rel_info) ~rows (exprs : A.expr list) =
  if exprs = [] then 1.
  else
    let ndvs =
      List.map
        (fun e ->
          match Info.expr_colinfo env e with
          | Some ci -> Float.max 1. ci.ci_ndv
          | None -> Float.max 1. (rows /. 10.))
        exprs
    in
    let product = List.fold_left ( *. ) 1. ndvs in
    (* cap by row count: can't have more groups than rows *)
    Float.max 1. (Float.min product rows)
