(** Reference list-at-a-time plan interpreter (the pre-batch executor).

    This is the materialize-everything row-list engine the batch
    executor ({!Executor}) replaced: every operator closure consumes and
    produces a complete [row list]. It is retained verbatim — minus the
    analyze instrumentation — as

    + the {e differential oracle} for the batch engine: on any plan both
      executors must produce identical rows {e and} identical meter
      totals (up to the documented sort-key divergence), which the test
      suite checks on fixed plans and generated workloads; and
    + the {e baseline} of the executor benchmark section, where the
      throughput and allocation gains of block-at-a-time execution are
      measured against it.

    Semantics and meter charges are unchanged from the original, except
    that cache keys are built (and charged) through {!Keys} so the two
    engines account key-build work identically. *)

open Sqlir
module A = Ast
module Db = Storage.Db
module Relation = Storage.Relation
module Btree = Storage.Btree

type row = Eval.row
type layout = Eval.layout

type ctx = {
  db : Db.t;
  meter : Meter.t;
  binds : Value.t array;  (** values for the plan's [Bind] markers *)
  mutable restrict : int option;
      (** partition restriction of the currently running [Exchange]
          task: closures read it at {e run} time, so the serial task
          loop just mutates it between runs. [None] outside an
          exchange. *)
}

exception Runtime_error of string

module Vkey = Map.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare_total
end)

let out ctx rows =
  ctx.meter.rows_out <- ctx.meter.rows_out + List.length rows;
  rows

let charge_sort ctx n =
  if n > 1 then
    ctx.meter.sort_compares <-
      ctx.meter.sort_compares
      + int_of_float (float_of_int n *. (log (float_of_int n) /. log 2.))

(* Sort rows by compiled keys with direction; nulls last ascending. *)
let sort_rows ctx (keyfs : (row -> Value.t) list) (dirs : A.dir list) rows =
  charge_sort ctx (List.length rows);
  let cmp r1 r2 =
    let rec go ks ds =
      match (ks, ds) with
      | [], _ -> 0
      | k :: ks', d :: ds' ->
          let c = Value.compare_total (k r1) (k r2) in
          let c = match d with A.Asc -> c | A.Desc -> -c in
          if c <> 0 then c else go ks' ds'
      | k :: ks', [] ->
          let c = Value.compare_total (k r1) (k r2) in
          if c <> 0 then c else go ks' []
    in
    go keyfs dirs
  in
  List.stable_sort cmp rows

(* --------------------------------------------------------------- *)
(* Aggregation accumulators                                          *)
(* --------------------------------------------------------------- *)

type acc = {
  mutable a_count : int;
  mutable a_sum : Value.t;  (* running sum; Null until first value *)
  mutable a_min : Value.t;
  mutable a_max : Value.t;
  mutable a_seen : unit Vkey.t;  (* for DISTINCT aggregates *)
}

let acc_create () =
  {
    a_count = 0;
    a_sum = Value.Null;
    a_min = Value.Null;
    a_max = Value.Null;
    a_seen = Vkey.empty;
  }

let acc_add distinct acc (v : Value.t) =
  let proceed =
    if not distinct then true
    else if Vkey.mem [ v ] acc.a_seen then false
    else (
      acc.a_seen <- Vkey.add [ v ] () acc.a_seen;
      true)
  in
  if proceed && not (Value.is_null v) then (
    acc.a_count <- acc.a_count + 1;
    acc.a_sum <-
      (if Value.is_null acc.a_sum then v else Value.arith `Add acc.a_sum v);
    acc.a_min <-
      (if Value.is_null acc.a_min || Value.compare_total v acc.a_min < 0 then v
       else acc.a_min);
    acc.a_max <-
      (if Value.is_null acc.a_max || Value.compare_total v acc.a_max > 0 then v
       else acc.a_max))

let acc_result (a : A.agg) acc ~rows_in_group =
  match a with
  | A.Count_star -> Value.Int rows_in_group
  | A.Count -> Value.Int acc.a_count
  | A.Sum -> acc.a_sum
  | A.Min -> acc.a_min
  | A.Max -> acc.a_max
  | A.Avg ->
      if acc.a_count = 0 then Value.Null
      else Value.arith `Div acc.a_sum (Value.Int acc.a_count)

(* --------------------------------------------------------------- *)
(* The interpreter                                                   *)
(* --------------------------------------------------------------- *)

(** Compile [p] under correlation scopes [scopes]. The returned closure
    takes the rows for those scopes and yields the operator's output. *)
let rec prepare (ctx : ctx) (scopes : layout list) (p : Plan.t) :
    row list -> row list =
  let cat = ctx.db.Db.cat in
  let meter = ctx.meter in
  let binds = ctx.binds in
  let self_layout = Plan.layout p cat in
  match p with
  | Plan.Table_scan { table; alias = _; filter } ->
      let rel = Db.relation ctx.db table in
      let fs = List.map (Eval.compile_pred ~meter ~binds (self_layout :: scopes)) filter in
      fun orows ->
        meter.pages_read <- meter.pages_read + Relation.pages rel;
        let acc = ref [] in
        Relation.iter
          (fun tup ->
            meter.rows_scanned <- meter.rows_scanned + 1;
            if Eval.passes fs (tup :: orows) then acc := tup :: !acc)
          rel;
        out ctx (List.rev !acc)
  | Plan.Part_scan { table; alias = _; filter; prune } ->
      (* identical charging contract to the batch engine's PART SCAN:
         pages = sum of per-partition ceilings of the partitions read,
         rows_scanned per row of those partitions, in ascending
         partition order. Pruning is evaluated per run against the
         actual binds through the shared {!Prune} module. *)
      let rel = Db.relation ctx.db table in
      let spec =
        match Relation.part rel with
        | Some pt -> pt.Relation.p_spec
        | None ->
            invalid_arg
              (Printf.sprintf "Baseline: PART SCAN over unpartitioned %s"
                 table)
      in
      let fs =
        List.map
          (Eval.compile_pred ~meter ~binds (self_layout :: scopes))
          filter
      in
      fun orows ->
        let surv = Prune.survivors_runtime ~binds spec prune in
        let surv =
          match ctx.restrict with
          | None -> surv
          | Some i -> if List.mem i surv then [ i ] else []
        in
        List.iter
          (fun i ->
            meter.pages_read <- meter.pages_read + Relation.part_pages rel i)
          surv;
        let acc = ref [] in
        List.iter
          (fun i ->
            let lo, hi = Relation.part_bounds rel i in
            for r = lo to hi - 1 do
              let tup = rel.Relation.r_rows.(r) in
              meter.rows_scanned <- meter.rows_scanned + 1;
              if Eval.passes fs (tup :: orows) then acc := tup :: !acc
            done)
          surv;
        out ctx (List.rev !acc)
  | Plan.Exchange { child; dop = _ } -> (
      (* the reference engine has no domains: an exchange is its
         serial-loop interpretation — the same task list (ascending
         union of the child's pruning survivors), each task re-prepared
         (fresh per-task caches, as the batch engine's per-task prepare)
         and run with [ctx.restrict] set, results concatenated in task
         order. Charges land directly in the shared meter; merging
         per-task meters would sum to the same integers. *)
      match Plan.part_scans child with
      | [] ->
          let fchild = prepare ctx scopes child in
          fun orows -> out ctx (fchild orows)
      | scans ->
          let specs =
            List.map
              (fun (table, pr) ->
                let rel = Db.relation ctx.db table in
                match Relation.part rel with
                | Some pt -> (pt.Relation.p_spec, pr)
                | None ->
                    invalid_arg
                      (Printf.sprintf
                         "Baseline: EXCHANGE over unpartitioned PART SCAN \
                          of %s"
                         table))
              scans
          in
          fun orows ->
            let module Iset = Set.Make (Int) in
            let tasks =
              Iset.elements
                (List.fold_left
                   (fun acc (ps, pr) ->
                     List.fold_left
                       (fun acc i -> Iset.add i acc)
                       acc
                       (Prune.survivors_runtime ~binds ps pr))
                   Iset.empty specs)
            in
            let acc = ref [] in
            List.iter
              (fun t ->
                let saved = ctx.restrict in
                ctx.restrict <- Some t;
                Fun.protect
                  ~finally:(fun () -> ctx.restrict <- saved)
                  (fun () ->
                    let f = prepare ctx scopes child in
                    List.iter (fun r -> acc := r :: !acc) (f orows)))
              tasks;
            out ctx (List.rev !acc))
  | Plan.Partial_agg { child; alias = _; keys; aggs } ->
      prepare_partial_agg ctx scopes child keys aggs
  | Plan.Final_agg { child; alias = _; keys; aggs } ->
      prepare_final_agg ctx scopes child keys aggs
  | Plan.Index_scan { table; alias = _; index; prefix; lo; hi; filter } ->
      let rel = Db.relation ctx.db table in
      let bt = Db.index ctx.db ~table ~name:index in
      let fprefix = List.map (Eval.compile_expr ~meter ~binds scopes) prefix in
      let bound = function
        | Plan.R_unbounded -> fun _ -> Btree.Unbounded
        | Plan.R_incl e ->
            let f = Eval.compile_expr ~meter ~binds scopes e in
            fun orows -> Btree.Incl (f orows)
        | Plan.R_excl e ->
            let f = Eval.compile_expr ~meter ~binds scopes e in
            fun orows -> Btree.Excl (f orows)
      in
      let flo = bound lo and fhi = bound hi in
      let fs = List.map (Eval.compile_pred ~meter ~binds (self_layout :: scopes)) filter in
      let full_key_eq =
        List.length prefix = List.length bt.Btree.bt_cols
      in
      fun orows ->
        let pvals = List.map (fun f -> f orows) fprefix in
        meter.idx_probes <- meter.idx_probes + Btree.height bt;
        let rowids =
          if List.exists Value.is_null pvals && pvals <> [] then []
          else if full_key_eq then Btree.find_eq bt pvals
          else
            match (flo orows, fhi orows) with
            | Btree.Unbounded, Btree.Unbounded when pvals <> [] ->
                Btree.find_prefix bt pvals
            | lo, hi ->
                let ids, touched = Btree.range bt ~prefix:pvals ~lo ~hi in
                meter.idx_entries <- meter.idx_entries + touched;
                ids
        in
        meter.idx_entries <- meter.idx_entries + List.length rowids;
        let acc = ref [] in
        List.iter
          (fun rid ->
            meter.rows_scanned <- meter.rows_scanned + 1;
            let tup = rel.Relation.r_rows.(rid) in
            if Eval.passes fs (tup :: orows) then acc := tup :: !acc)
          rowids;
        out ctx (List.rev !acc)
  | Plan.Filter { child; preds } ->
      let fchild = prepare ctx scopes child in
      let fs = List.map (Eval.compile_pred ~meter ~binds (self_layout :: scopes)) preds in
      fun orows ->
        out ctx
          (List.filter (fun r -> Eval.passes fs (r :: orows)) (fchild orows))
  | Plan.Project { child; alias = _; items } ->
      let child_layout = Plan.layout child cat in
      let fchild = prepare ctx scopes child in
      let fitems =
        List.map
          (fun (e, _) -> Eval.compile_expr ~meter ~binds (child_layout :: scopes) e)
          items
      in
      fun orows ->
        out ctx
          (List.map
             (fun r ->
               Array.of_list (List.map (fun f -> f (r :: orows)) fitems))
             (fchild orows))
  | Plan.Join { meth; role; left; right; cond } ->
      prepare_join ctx scopes ~meth ~role ~left ~right ~cond
  | Plan.Subq_filter { child; preds } -> prepare_subq_filter ctx scopes child preds
  | Plan.Aggregate { child; strategy; alias = _; keys; aggs } ->
      prepare_aggregate ctx scopes child strategy keys aggs
  | Plan.Window { child; alias = _; wins } -> prepare_window ctx scopes child wins
  | Plan.Distinct child ->
      let fchild = prepare ctx scopes child in
      fun orows ->
        let seen = ref Vkey.empty in
        let acc = ref [] in
        List.iter
          (fun r ->
            meter.hash_build <- meter.hash_build + 1;
            let k = Array.to_list r in
            if not (Vkey.mem k !seen) then (
              seen := Vkey.add k () !seen;
              acc := r :: !acc))
          (fchild orows);
        out ctx (List.rev !acc)
  | Plan.Sort { child; keys } ->
      let child_layout = Plan.layout child cat in
      let fchild = prepare ctx scopes child in
      let kfs =
        List.map
          (fun (e, _) ->
            let f = Eval.compile_expr ~meter ~binds (child_layout :: scopes) e in
            f)
          keys
      in
      let dirs = List.map snd keys in
      fun orows ->
        let rows = fchild orows in
        let kfs = List.map (fun f r -> f (r :: orows)) kfs in
        out ctx (sort_rows ctx kfs dirs rows)
  | Plan.Limit { child; n } ->
      let fchild = prepare ctx scopes child in
      fun orows ->
        let rows = fchild orows in
        out ctx (List.filteri (fun i _ -> i < n) rows)
  | Plan.Limit_filter { child; preds; n } ->
      let fchild = prepare ctx scopes child in
      let fs =
        List.map (Eval.compile_pred ~meter ~binds (self_layout :: scopes)) preds
      in
      fun orows ->
        (* streaming: stop evaluating predicates once the quota fills *)
        let rec take acc k = function
          | [] -> List.rev acc
          | _ when k = 0 -> List.rev acc
          | r :: rest ->
              if Eval.passes fs (r :: orows) then take (r :: acc) (k - 1) rest
              else take acc k rest
        in
        out ctx (take [] n (fchild orows))
  | Plan.Union_all children ->
      let fs = List.map (prepare ctx scopes) children in
      fun orows -> out ctx (List.concat_map (fun f -> f orows) fs)
  | Plan.Setop_exec { op; left; right } ->
      let fleft = prepare ctx scopes left in
      let fright = prepare ctx scopes right in
      fun orows ->
        let rrows = fright orows in
        let rset =
          List.fold_left
            (fun m r ->
              meter.hash_build <- meter.hash_build + 1;
              Vkey.add (Array.to_list r) () m)
            Vkey.empty rrows
        in
        let seen = ref Vkey.empty in
        let acc = ref [] in
        List.iter
          (fun r ->
            meter.hash_probe <- meter.hash_probe + 1;
            let k = Array.to_list r in
            let in_right = Vkey.mem k rset in
            let keep =
              match op with `Intersect -> in_right | `Minus -> not in_right
            in
            if keep && not (Vkey.mem k !seen) then (
              seen := Vkey.add k () !seen;
              acc := r :: !acc))
          (fleft orows);
        out ctx (List.rev !acc)

(* --------------------------------------------------------------- *)
(* Joins                                                             *)
(* --------------------------------------------------------------- *)

(* Split join conjuncts into equi-conjuncts usable as hash/merge keys
   (left expr, right expr) and residual conjuncts. *)
and equi_split left_aliases right_aliases cond =
  let module S = Walk.Sset in
  let aliases_of e = Walk.expr_aliases e in
  List.fold_left
    (fun (keys, residual) c ->
      match c with
      | A.Cmp (A.Eq, a, b) ->
          let aa = aliases_of a and ab = aliases_of b in
          if S.subset aa left_aliases && S.subset ab right_aliases then
            (keys @ [ (a, b) ], residual)
          else if S.subset ab left_aliases && S.subset aa right_aliases then
            (keys @ [ (b, a) ], residual)
          else (keys, residual @ [ c ])
      | _ -> (keys, residual @ [ c ]))
    ([], []) cond

and prepare_join ctx scopes ~meth ~role ~left ~right ~cond =
  let cat = ctx.db.Db.cat in
  let meter = ctx.meter in
  let binds = ctx.binds in
  let left_layout = Plan.layout left cat in
  let right_layout = Plan.layout right cat in
  let combined = Array.append left_layout right_layout in
  let right_width = Array.length right_layout in
  let fleft = prepare ctx scopes left in
  let aliases_of_layout l =
    Array.fold_left (fun s (a, _) -> Walk.Sset.add a s) Walk.Sset.empty l
  in
  let join3 v1 v2 = Value.compare_sql v1 v2 in
  (* componentwise 3VL equality of key value lists *)
  let _match3 (ks1 : Value.t list) (ks2 : Value.t list) : bool option =
    let rec go l r =
      match (l, r) with
      | [], [] -> Some true
      | v1 :: l', v2 :: r' -> (
          match join3 v1 v2 with
          | Some 0 -> go l' r'
          | Some _ -> Some false
          | None -> ( match go l' r' with Some false -> Some false | _ -> None))
      | _ -> Some false
    in
    go ks1 ks2
  in
  match meth with
  | Plan.Nested_loop ->
      (* The right side may be correlated to the left row (index probes,
         pushed-down join predicates, TIS-style views). Its result is a
         deterministic function of the correlation values it reads from
         the left row, so it is executed once per distinct combination
         and cached — this models the semijoin/antijoin and subquery
         caching the paper describes (Section 2.1.1). *)
      let fright = prepare ctx (left_layout :: scopes) right in
      let right_corr = Plan.corr_positions right left_layout in
      let fcond =
        List.map (Eval.compile_pred ~meter ~binds (combined :: scopes)) cond
      in
      let fconds3 = fcond in
      let right_cache : row list Vkey.t ref = ref Vkey.empty in
      let cached_right l orows =
        let key = Keys.corr ctx.meter right_corr l orows in
        match Vkey.find_opt key !right_cache with
        | Some rows ->
            meter.subq_cache_hits <- meter.subq_cache_hits + 1;
            rows
        | None ->
            let rows = fright (l :: orows) in
            right_cache := Vkey.add key rows !right_cache;
            rows
      in
      fun orows ->
        let lrows = fleft orows in
        let result = ref [] in
        List.iter
          (fun l ->
            let rrows = cached_right l orows in
            match role with
            | Plan.Inner ->
                List.iter
                  (fun r ->
                    meter.rows_joined <- meter.rows_joined + 1;
                    let j = Array.append l r in
                    if Eval.passes fcond (j :: orows) then result := j :: !result)
                  rrows
            | Plan.Left_outer ->
                let matched = ref false in
                List.iter
                  (fun r ->
                    meter.rows_joined <- meter.rows_joined + 1;
                    let j = Array.append l r in
                    if Eval.passes fcond (j :: orows) then (
                      matched := true;
                      result := j :: !result))
                  rrows;
                if not !matched then
                  result := Array.append l (Array.make right_width Value.Null) :: !result
            | Plan.Semi ->
                (* stop at first match *)
                let rec go = function
                  | [] -> false
                  | r :: rest ->
                      meter.rows_joined <- meter.rows_joined + 1;
                      if Eval.passes fcond (Array.append l r :: orows) then true
                      else go rest
                in
                if go rrows then result := l :: !result
            | Plan.Anti ->
                let rec go = function
                  | [] -> true
                  | r :: rest ->
                      meter.rows_joined <- meter.rows_joined + 1;
                      if Eval.passes fcond (Array.append l r :: orows) then
                        false
                      else go rest
                in
                if go rrows then result := l :: !result
            | Plan.Anti_na ->
                (* NOT IN semantics: qualify only if every right row
                   definitely mismatches *)
                let rec go = function
                  | [] -> true
                  | r :: rest ->
                      meter.rows_joined <- meter.rows_joined + 1;
                      let j = Array.append l r in
                      if
                        List.exists
                          (fun f -> f (j :: orows) = Some false)
                          fconds3
                      then go rest
                      else false
                in
                if go rrows then result := l :: !result)
          lrows;
        out ctx (List.rev !result)
  | Plan.Hash ->
      let fright = prepare ctx scopes right in
      let lal = aliases_of_layout left_layout
      and ral = aliases_of_layout right_layout in
      let keys, residual = equi_split lal ral cond in
      if keys = [] then
        invalid_arg "Executor: hash join requires at least one equi-conjunct";
      let flk =
        List.map (fun (a, _) -> Eval.compile_expr ~meter ~binds (left_layout :: scopes) a) keys
      in
      let frk =
        List.map (fun (_, b) -> Eval.compile_expr ~meter ~binds (right_layout :: scopes) b) keys
      in
      let fres =
        List.map (Eval.compile_pred ~meter ~binds (combined :: scopes)) residual
      in
      (* 3VL per-conjunct evaluation of the full condition, used by the
         null-aware antijoin's possible-match check *)
      let fconds3 =
        List.map (Eval.compile_pred ~meter ~binds (combined :: scopes)) cond
      in
      fun orows ->
        let rrows = fright orows in
        let table = ref Vkey.empty in
        let right_with_null = ref [] in
        let right_all = ref [] in
        List.iter
          (fun r ->
            meter.hash_build <- meter.hash_build + 1;
            let kv = List.map (fun f -> f (r :: orows)) frk in
            right_all := (kv, r) :: !right_all;
            if List.exists Value.is_null kv then
              right_with_null := (kv, r) :: !right_with_null
            else
              let cur = try Vkey.find kv !table with Not_found -> [] in
              table := Vkey.add kv (r :: cur) !table)
          rrows;
        let lrows = fleft orows in
        let result = ref [] in
        List.iter
          (fun l ->
            meter.hash_probe <- meter.hash_probe + 1;
            let kv = List.map (fun f -> f (l :: orows)) flk in
            let has_null = List.exists Value.is_null kv in
            let matches =
              if has_null then []
              else
                List.filter
                  (fun r ->
                    meter.rows_joined <- meter.rows_joined + 1;
                    Eval.passes fres (Array.append l r :: orows))
                  (try Vkey.find kv !table with Not_found -> [])
            in
            match role with
            | Plan.Inner ->
                List.iter (fun r -> result := Array.append l r :: !result) matches
            | Plan.Left_outer ->
                if matches = [] then
                  result :=
                    Array.append l (Array.make right_width Value.Null) :: !result
                else
                  List.iter (fun r -> result := Array.append l r :: !result) matches
            | Plan.Semi -> if matches <> [] then result := l :: !result
            | Plan.Anti -> if matches = [] then result := l :: !result
            | Plan.Anti_na ->
                if rrows = [] then result := l :: !result
                else if matches <> [] then ()
                else
                  (* NOT IN semantics: the left row is dropped unless
                     every right row definitely mismatches. Candidate
                     possible-matches: rows in the probe bucket (residual
                     may have been UNKNOWN), null-key rows, and — when
                     the probe key itself has NULLs — every right row.
                     A candidate is a possible match if no conjunct of
                     the full condition evaluates to definitely-false. *)
                  let candidates =
                    if has_null then List.map snd !right_all
                    else
                      (try Vkey.find kv !table with Not_found -> [])
                      @ List.map snd !right_with_null
                  in
                  let possible =
                    List.exists
                      (fun r ->
                        meter.rows_joined <- meter.rows_joined + 1;
                        let j = Array.append l r in
                        not
                          (List.exists
                             (fun f -> f (j :: orows) = Some false)
                             fconds3))
                      candidates
                  in
                  if not possible then result := l :: !result)
          lrows;
        out ctx (List.rev !result)
  | Plan.Merge ->
      let fright = prepare ctx scopes right in
      let lal = aliases_of_layout left_layout
      and ral = aliases_of_layout right_layout in
      let keys, residual = equi_split lal ral cond in
      if keys = [] then
        invalid_arg "Executor: merge join requires at least one equi-conjunct";
      let flk =
        List.map (fun (a, _) -> Eval.compile_expr ~meter ~binds (left_layout :: scopes) a) keys
      in
      let frk =
        List.map (fun (_, b) -> Eval.compile_expr ~meter ~binds (right_layout :: scopes) b) keys
      in
      let fres =
        List.map (Eval.compile_pred ~meter ~binds (combined :: scopes)) residual
      in
      fun orows ->
        let lkeyed =
          List.map (fun l -> (List.map (fun f -> f (l :: orows)) flk, l)) (fleft orows)
        in
        let rkeyed =
          List.map (fun r -> (List.map (fun f -> f (r :: orows)) frk, r)) (fright orows)
        in
        charge_sort ctx (List.length lkeyed);
        charge_sort ctx (List.length rkeyed);
        let cmpk (k1, _) (k2, _) = List.compare Value.compare_total k1 k2 in
        let ls = List.stable_sort cmpk lkeyed in
        let rs = List.stable_sort cmpk rkeyed in
        let result = ref [] in
        (* two-pointer merge over sorted runs *)
        let rec merge ls rs =
          match (ls, rs) with
          | [], _ -> ()
          | (lk, l) :: ls', _ when List.exists Value.is_null lk ->
              (* null keys never match *)
              (match role with
              | Plan.Anti -> result := l :: !result
              | _ -> ());
              merge ls' rs
          | _ :: _, [] ->
              (match role with
              | Plan.Anti ->
                  List.iter (fun (_, l) -> result := l :: !result) ls
              | _ -> ())
          | (lk, l) :: ls', (rk, _) :: rs' -> (
              let c = List.compare Value.compare_total lk rk in
              if c < 0 then (
                (match role with
                | Plan.Anti -> result := l :: !result
                | _ -> ());
                merge ls' rs)
              else if c > 0 then merge ls rs'
              else
                (* gather the right group with this key *)
                let group, rest =
                  let rec split acc = function
                    | (rk', r) :: t when List.compare Value.compare_total rk' rk = 0 ->
                        split (r :: acc) t
                    | t -> (List.rev acc, t)
                  in
                  split [] rs
                in
                ignore rest;
                let consume_left (lk', l') =
                  if List.compare Value.compare_total lk' rk = 0 then (
                    let matches =
                      List.filter
                        (fun r ->
                          meter.rows_joined <- meter.rows_joined + 1;
                          Eval.passes fres (Array.append l' r :: orows))
                        group
                    in
                    (match role with
                    | Plan.Inner ->
                        List.iter
                          (fun r -> result := Array.append l' r :: !result)
                          matches
                    | Plan.Semi -> if matches <> [] then result := l' :: !result
                    | Plan.Anti -> if matches = [] then result := l' :: !result
                    | _ ->
                        invalid_arg
                          "Executor: merge join supports inner/semi/anti only");
                    true)
                  else false
                in
                let rec eat = function
                  | lh :: lt when consume_left lh -> eat lt
                  | lt -> merge lt rs'
                in
                eat ((lk, l) :: ls'))
        in
        merge ls rs;
        out ctx (List.rev !result)

and prepare_subq_filter ctx scopes child preds =
  let cat = ctx.db.Db.cat in
  let meter = ctx.meter in
  let binds = ctx.binds in
  let child_layout = Plan.layout child cat in
  let fchild = prepare ctx scopes child in
  let inner_scopes = child_layout :: scopes in
  (* Each subquery plan is a deterministic function of its correlation
     columns (the child-row positions it reads) and the outer scopes;
     its result rows are computed once per distinct combination and
     cached — the subquery-filter caching of Section 2.1.1. The
     predicate itself (EXISTS / IN / comparison) is then evaluated per
     candidate row against the cached result. *)
  let cached_rows plan =
    let fplan = prepare ctx inner_scopes plan in
    let positions = Plan.corr_positions plan child_layout in
    let cache : row list Vkey.t ref = ref Vkey.empty in
    fun (r : row) (orows : row list) ->
      let key = Keys.corr meter positions r orows in
      match Vkey.find_opt key !cache with
      | Some rows ->
          meter.subq_cache_hits <- meter.subq_cache_hits + 1;
          rows
      | None ->
          meter.subq_execs <- meter.subq_execs + 1;
          let rows = fplan (r :: orows) in
          cache := Vkey.add key rows !cache;
          rows
  in
  let compiled =
    List.map
      (fun sp ->
        match sp with
        | Plan.SP_exists { negated; plan } ->
            let rows_of = cached_rows plan in
            fun (r : row) orows ->
              let non_empty = rows_of r orows <> [] in
              Some (if negated then not non_empty else non_empty)
        | Plan.SP_in { negated; lhs; plan } ->
            let flhs = List.map (Eval.compile_expr ~meter ~binds inner_scopes) lhs in
            let rows_of = cached_rows plan in
            let width = List.length lhs in
            (* per inner-result index: hash set of null-free keys plus
               the rows containing NULLs (checked with 3VL) *)
            let index_cache :
                (unit Vkey.t * row list * bool) Vkey.t ref =
              ref Vkey.empty
            in
            let index_of key inner =
              match Vkey.find_opt key !index_cache with
              | Some ix -> ix
              | None ->
                  let set = ref Vkey.empty in
                  let nulls = ref [] in
                  List.iter
                    (fun (ir : row) ->
                      meter.hash_build <- meter.hash_build + 1;
                      let kv = List.init width (fun i -> ir.(i)) in
                      if List.exists Value.is_null kv then
                        nulls := ir :: !nulls
                      else set := Vkey.add kv () !set)
                    inner;
                  let ix = (!set, !nulls, inner <> []) in
                  index_cache := Vkey.add key ix !index_cache;
                  ix
            in
            let positions = Plan.corr_positions plan child_layout in
            fun r orows ->
              let lvals = List.map (fun f -> f (r :: orows)) flhs in
              let inner = rows_of r orows in
              let key = Keys.corr meter positions r orows in
              let set, null_rows, non_empty = index_of key inner in
              meter.hash_probe <- meter.hash_probe + 1;
              let lhs_has_null = List.exists Value.is_null lvals in
              let truth =
                if not non_empty then Some false
                else if (not lhs_has_null) && Vkey.mem lvals set then Some true
                else
                  (* possible UNKNOWN matches: rows with NULL components,
                     or (when the probe itself has NULLs) any row whose
                     other components do not definitely mismatch *)
                  let possible_unknown (ir : row) =
                    let rec go i = function
                      | [] -> true
                      | v :: rest -> (
                          match Value.compare_sql v ir.(i) with
                          | Some c when c <> 0 -> false
                          | _ -> go (i + 1) rest)
                    in
                    meter.rows_joined <- meter.rows_joined + 1;
                    go 0 lvals
                  in
                  if lhs_has_null then
                    if width = 1 then None
                    else if
                      List.exists possible_unknown null_rows
                      || Vkey.exists
                           (fun kv () ->
                             meter.rows_joined <- meter.rows_joined + 1;
                             let rec go ls ks =
                               match (ls, ks) with
                               | [], [] -> true
                               | l :: ls', k :: ks' -> (
                                   match Value.compare_sql l k with
                                   | Some c when c <> 0 -> false
                                   | _ -> go ls' ks')
                               | _ -> false
                             in
                             go lvals kv)
                           set
                    then None
                    else Some false
                  else if List.exists possible_unknown null_rows then None
                  else Some false
              in
              (match truth with
              | Some b -> Some (if negated then not b else b)
              | None -> None)
        | Plan.SP_cmp { op; lhs; quant; plan } ->
            let flhs = Eval.compile_expr ~meter ~binds inner_scopes lhs in
            let rows_of = cached_rows plan in
            let test = Eval.cmp_test op in
            let positions = Plan.corr_positions plan child_layout in
            (* per inner-result statistics for quantified comparisons:
               min / max / null presence / distinct-value set of the
               first output column *)
            let stats_cache :
                (Value.t * Value.t * bool * unit Vkey.t) Vkey.t ref =
              ref Vkey.empty
            in
            let stats_of key inner =
              match Vkey.find_opt key !stats_cache with
              | Some st -> st
              | None ->
                  let mn = ref Value.Null
                  and mx = ref Value.Null
                  and has_null = ref false
                  and set = ref Vkey.empty in
                  List.iter
                    (fun (ir : row) ->
                      meter.hash_build <- meter.hash_build + 1;
                      let v = ir.(0) in
                      if Value.is_null v then has_null := true
                      else (
                        set := Vkey.add [ v ] () !set;
                        if
                          Value.is_null !mn
                          || Value.compare_total v !mn < 0
                        then mn := v;
                        if
                          Value.is_null !mx
                          || Value.compare_total v !mx > 0
                        then mx := v))
                    inner;
                  let st = (!mn, !mx, !has_null, !set) in
                  stats_cache := Vkey.add key st !stats_cache;
                  st
            in
            fun r orows ->
              let lval = flhs (r :: orows) in
              let inner = rows_of r orows in
              match quant with
              | None -> (
                  match inner with
                  | [] -> None  (* scalar subquery over empty input: NULL *)
                  | [ ir ] -> Option.map test (Value.compare_sql lval ir.(0))
                  | _ ->
                      raise
                        (Runtime_error
                           "scalar subquery returned more than one row"))
              | Some q ->
                  let key = Keys.corr meter positions r orows in
                  let mn, mx, has_null, set = stats_of key inner in
                  meter.hash_probe <- meter.hash_probe + 1;
                  let n_distinct = Vkey.cardinal set in
                  if inner = [] then
                    Some (match q with A.Q_any -> false | A.Q_all -> true)
                  else if Value.is_null lval then None
                  else
                    let some_true, some_false =
                      (* does lval op s hold for some / fail for some
                         non-null s? derived from min/max/set *)
                      match op with
                      | A.Eq ->
                          let m = Vkey.mem [ lval ] set in
                          (m, n_distinct > 1 || not m)
                      | A.Ne ->
                          let m = Vkey.mem [ lval ] set in
                          (n_distinct > 1 || not m, m)
                      | A.Lt ->
                          ( (n_distinct > 0 && Value.compare_total lval mx < 0),
                            n_distinct > 0 && Value.compare_total lval mn >= 0 )
                      | A.Le ->
                          ( (n_distinct > 0 && Value.compare_total lval mx <= 0),
                            n_distinct > 0 && Value.compare_total lval mn > 0 )
                      | A.Gt ->
                          ( (n_distinct > 0 && Value.compare_total lval mn > 0),
                            n_distinct > 0 && Value.compare_total lval mx <= 0 )
                      | A.Ge ->
                          ( (n_distinct > 0 && Value.compare_total lval mn >= 0),
                            n_distinct > 0 && Value.compare_total lval mx < 0 )
                    in
                    (match q with
                    | A.Q_any ->
                        if some_true then Some true
                        else if has_null then None
                        else Some false
                    | A.Q_all ->
                        if some_false then Some false
                        else if has_null then None
                        else Some true))
      preds
  in
  fun orows ->
    let rows = fchild orows in
    out ctx
      (List.filter
         (fun r -> List.for_all (fun f -> f r orows = Some true) compiled)
         rows)

and prepare_aggregate ctx scopes child strategy keys aggs =
  let cat = ctx.db.Db.cat in
  let meter = ctx.meter in
  let binds = ctx.binds in
  let child_layout = Plan.layout child cat in
  let inner = child_layout :: scopes in
  let fchild = prepare ctx scopes child in
  let fkeys = List.map (fun (e, _) -> Eval.compile_expr ~meter ~binds inner e) keys in
  let faggs =
    List.map
      (fun (_, a, eo, dist) ->
        (a, Option.map (Eval.compile_expr ~meter ~binds inner) eo, dist))
      aggs
  in
  fun orows ->
    let rows = fchild orows in
    (match strategy with `Sort -> charge_sort ctx (List.length rows) | `Hash -> ());
    let groups = ref Vkey.empty in
    let order = ref [] in
    List.iter
      (fun r ->
        meter.agg_rows <- meter.agg_rows + 1;
        let kv = List.map (fun f -> f (r :: orows)) fkeys in
        let entry =
          match Vkey.find_opt kv !groups with
          | Some e -> e
          | None ->
              let e = (ref 0, List.map (fun _ -> acc_create ()) faggs) in
              groups := Vkey.add kv e !groups;
              order := kv :: !order;
              e
        in
        let nrows, accs = entry in
        incr nrows;
        List.iter2
          (fun (_, feo, dist) acc ->
            match feo with
            | None -> ()
            | Some f -> acc_add dist acc (f (r :: orows)))
          faggs accs)
      rows;
    let emit kv =
      let nrows, accs = Vkey.find kv !groups in
      let aggvals =
        List.map2
          (fun (a, _, _) acc -> acc_result a acc ~rows_in_group:!nrows)
          faggs accs
      in
      Array.of_list (kv @ aggvals)
    in
    let result =
      if keys = [] && rows = [] then
        (* scalar aggregate over empty input: one row *)
        [ Array.of_list
            (List.map
               (fun (a, _, _) ->
                 match a with
                 | A.Count_star | A.Count -> Value.Int 0
                 | _ -> Value.Null)
               faggs) ]
      else List.rev_map emit !order
    in
    out ctx result

(* Per-partition aggregation emitting accumulator-state rows; the
   list-engine mirror of the batch executor's [Partial_agg], charging
   [agg_rows] per input row and emitting groups in first-seen order
   (one state row always for the scalar form). *)
and prepare_partial_agg ctx scopes child keys aggs =
  let cat = ctx.db.Db.cat in
  let meter = ctx.meter in
  let binds = ctx.binds in
  let child_layout = Plan.layout child cat in
  let inner = child_layout :: scopes in
  let fchild = prepare ctx scopes child in
  let fkeys =
    List.map (fun (e, _) -> Eval.compile_expr ~meter ~binds inner e) keys
  in
  let faggs =
    List.map
      (fun (_, a, eo) ->
        (a, Option.map (Eval.compile_expr ~meter ~binds inner) eo))
      aggs
  in
  let states_of nrows accs =
    List.concat
      (List.map2
         (fun (a, _) acc ->
           match a with
           | A.Count_star -> [ Value.Int nrows ]
           | A.Count -> [ Value.Int acc.a_count ]
           | A.Sum -> [ acc.a_sum ]
           | A.Min -> [ acc.a_min ]
           | A.Max -> [ acc.a_max ]
           | A.Avg -> [ acc.a_sum; Value.Int acc.a_count ])
         faggs accs)
  in
  fun orows ->
    let rows = fchild orows in
    if keys = [] then begin
      let accs = List.map (fun _ -> acc_create ()) faggs in
      let n = ref 0 in
      List.iter
        (fun r ->
          incr n;
          meter.agg_rows <- meter.agg_rows + 1;
          List.iter2
            (fun (_, feo) acc ->
              match feo with
              | None -> ()
              | Some f -> acc_add false acc (f (r :: orows)))
            faggs accs)
        rows;
      out ctx [ Array.of_list (states_of !n accs) ]
    end
    else begin
      let groups = ref Vkey.empty in
      let order = ref [] in
      List.iter
        (fun r ->
          meter.agg_rows <- meter.agg_rows + 1;
          let kv = List.map (fun f -> f (r :: orows)) fkeys in
          let entry =
            match Vkey.find_opt kv !groups with
            | Some e -> e
            | None ->
                let e = (ref 0, List.map (fun _ -> acc_create ()) faggs) in
                groups := Vkey.add kv e !groups;
                order := kv :: !order;
                e
          in
          let nrows, accs = entry in
          incr nrows;
          List.iter2
            (fun (_, feo) acc ->
              match feo with
              | None -> ()
              | Some f -> acc_add false acc (f (r :: orows)))
            faggs accs)
        rows;
      let emit kv =
        let nrows, accs = Vkey.find kv !groups in
        Array.of_list (kv @ states_of !nrows accs)
      in
      out ctx (List.rev_map emit !order)
    end

(* Combine partial-agg state rows into final values; the list-engine
   mirror of the batch executor's [Final_agg]. *)
and prepare_final_agg ctx scopes child keys aggs =
  let meter = ctx.meter in
  let fchild = prepare ctx scopes child in
  let nkeys = List.length keys in
  let readers =
    let pos = ref nkeys in
    List.map
      (fun (_, a) ->
        let p = !pos in
        (pos := !pos + (match a with A.Avg -> 2 | _ -> 1));
        (a, p))
      aggs
  in
  let int_of = function Value.Int n -> n | _ -> 0 in
  let merge_sum acc v =
    if not (Value.is_null v) then
      acc.a_sum <-
        (if Value.is_null acc.a_sum then v else Value.arith `Add acc.a_sum v)
  in
  let combine acc (a : A.agg) (r : row) (p : int) =
    match a with
    | A.Count_star | A.Count -> acc.a_count <- acc.a_count + int_of r.(p)
    | A.Sum -> merge_sum acc r.(p)
    | A.Min ->
        let v = r.(p) in
        if not (Value.is_null v) then
          acc.a_min <-
            (if Value.is_null acc.a_min || Value.compare_total v acc.a_min < 0
             then v
             else acc.a_min)
    | A.Max ->
        let v = r.(p) in
        if not (Value.is_null v) then
          acc.a_max <-
            (if Value.is_null acc.a_max || Value.compare_total v acc.a_max > 0
             then v
             else acc.a_max)
    | A.Avg ->
        merge_sum acc r.(p);
        acc.a_count <- acc.a_count + int_of r.(p + 1)
  in
  let final_of (a : A.agg) acc =
    match a with
    | A.Count_star | A.Count -> Value.Int acc.a_count
    | A.Sum -> acc.a_sum
    | A.Min -> acc.a_min
    | A.Max -> acc.a_max
    | A.Avg ->
        if acc.a_count = 0 then Value.Null
        else Value.arith `Div acc.a_sum (Value.Int acc.a_count)
  in
  fun orows ->
    let rows = fchild orows in
    if nkeys = 0 then begin
      let accs = List.map (fun _ -> acc_create ()) readers in
      List.iter
        (fun r ->
          meter.agg_rows <- meter.agg_rows + 1;
          List.iter2 (fun (a, p) acc -> combine acc a r p) readers accs)
        rows;
      out ctx
        [ Array.of_list
            (List.map2 (fun (a, _) acc -> final_of a acc) readers accs) ]
    end
    else begin
      let groups = ref Vkey.empty in
      let order = ref [] in
      List.iter
        (fun r ->
          meter.agg_rows <- meter.agg_rows + 1;
          let kv = List.init nkeys (fun i -> r.(i)) in
          let accs =
            match Vkey.find_opt kv !groups with
            | Some accs -> accs
            | None ->
                let accs = List.map (fun _ -> acc_create ()) readers in
                groups := Vkey.add kv accs !groups;
                order := kv :: !order;
                accs
          in
          List.iter2 (fun (a, p) acc -> combine acc a r p) readers accs)
        rows;
      let emit kv =
        let accs = Vkey.find kv !groups in
        Array.of_list
          (kv @ List.map2 (fun (a, _) acc -> final_of a acc) readers accs)
      in
      out ctx (List.rev_map emit !order)
    end

and prepare_window ctx scopes child wins =
  let cat = ctx.db.Db.cat in
  let meter = ctx.meter in
  let binds = ctx.binds in
  let child_layout = Plan.layout child cat in
  let inner = child_layout :: scopes in
  let fchild = prepare ctx scopes child in
  let fwins =
    List.map
      (fun (_, a, eo, (w : A.win)) ->
        ( a,
          Option.map (Eval.compile_expr ~meter ~binds inner) eo,
          List.map (Eval.compile_expr ~meter ~binds inner) w.w_pby,
          List.map (fun (e, _) -> Eval.compile_expr ~meter ~binds inner e) w.w_oby,
          List.map snd w.w_oby ))
      wins
  in
  fun orows ->
    let rows = fchild orows in
    (* For each window function, compute per-row values; RANGE UNBOUNDED
       PRECEDING .. CURRENT ROW cumulative semantics with peer rows
       (equal ORDER BY keys) sharing the same result. *)
    let n = List.length rows in
    let indexed = List.mapi (fun i r -> (i, r)) rows in
    let results = List.map (fun _ -> Array.make n Value.Null) fwins in
    List.iteri
      (fun wi (a, feo, fpby, foby, dirs) ->
        let store = List.nth results wi in
        (* partition *)
        let parts = ref Vkey.empty in
        List.iter
          (fun (i, r) ->
            meter.agg_rows <- meter.agg_rows + 1;
            let pk = List.map (fun f -> f (r :: orows)) fpby in
            let cur = try Vkey.find pk !parts with Not_found -> [] in
            parts := Vkey.add pk ((i, r) :: cur) !parts)
          indexed;
        Vkey.iter
          (fun _ members ->
            let members = List.rev members in
            let okeys (_, r) = List.map (fun f -> f (r :: orows)) foby in
            charge_sort ctx (List.length members);
            let sorted =
              List.stable_sort
                (fun m1 m2 ->
                  let rec go ks1 ks2 ds =
                    match (ks1, ks2, ds) with
                    | [], [], _ -> 0
                    | k1 :: t1, k2 :: t2, d :: ds' ->
                        let c = Value.compare_total k1 k2 in
                        let c = match d with A.Asc -> c | A.Desc -> -c in
                        if c <> 0 then c else go t1 t2 ds'
                    | k1 :: t1, k2 :: t2, [] ->
                        let c = Value.compare_total k1 k2 in
                        if c <> 0 then c else go t1 t2 []
                    | _ -> 0
                  in
                  go (okeys m1) (okeys m2) dirs)
                members
            in
            (* walk peer groups cumulatively *)
            let acc = acc_create () in
            let rows_so_far = ref 0 in
            let rec walk = function
              | [] -> ()
              | ((_, r1) :: _ as rest) ->
                  let k1 = okeys (0, r1) in
                  let peers, others =
                    List.partition
                      (fun m -> List.compare Value.compare_total (okeys m) k1 = 0)
                      rest
                  in
                  List.iter
                    (fun (_, r) ->
                      incr rows_so_far;
                      match feo with
                      | None -> ()
                      | Some f -> acc_add false acc (f (r :: orows)))
                    peers;
                  let v = acc_result a acc ~rows_in_group:!rows_so_far in
                  List.iter (fun (i, _) -> store.(i) <- v) peers;
                  walk others
            in
            walk sorted)
          !parts)
      fwins;
    out ctx
      (List.mapi
         (fun i r ->
           Array.append r
             (Array.of_list (List.map (fun store -> store.(i)) results)))
         rows)

(* --------------------------------------------------------------- *)
(* Entry points                                                      *)
(* --------------------------------------------------------------- *)

(** Execute a complete (uncorrelated) plan against [db]. Returns the
    output layout and rows; work is charged to [meter]. *)
let execute ?meter ?(binds = [||]) (db : Db.t) (plan : Plan.t) :
    layout * row list * Meter.t =
  let meter = match meter with Some m -> m | None -> Meter.create () in
  let ctx = { db; meter; binds; restrict = None } in
  let f = prepare ctx [] plan in
  let rows = f [] in
  (Plan.layout plan db.Db.cat, rows, meter)
