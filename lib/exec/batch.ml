(** Row batches and growable row vectors for the block-at-a-time
    executor.

    A {!t} is a block of rows exchanged between operator cursors: the
    producing cursor owns the container and reuses it on every [next]
    call, so a consumer must copy out any row pointers it wants to keep
    before pulling again. The rows themselves ([Value.t array]s) are
    immutable once produced and safe to retain — only the batch
    container is ephemeral. Blocks are {e not} fixed-size: operators
    that already hold their output materialized (pipeline breakers,
    join spill buffers) emit it as a single {!Vec.to_batch} view
    rather than copying it out in capacity-sized chunks, so a block may
    be larger than the pipeline's nominal batch size and consumers must
    size by [len], never by capacity.

    {!Vec} is a growable array of rows used by pipeline breakers (sort,
    group-by, hash-join build sides, limit) and by join output spill
    buffers, replacing the cons lists the previous executor materialized
    at every operator boundary. *)

type row = Sqlir.Value.t array

type t = {
  data : row array;  (** capacity-sized backing store *)
  mutable len : int;  (** number of valid rows, [0 .. Array.length data] *)
}

let create capacity =
  if capacity < 1 then invalid_arg "Batch.create: capacity must be >= 1";
  { data = Array.make capacity [||]; len = 0 }

let capacity b = Array.length b.data
let clear b = b.len <- 0
let is_full b = b.len = Array.length b.data

let add b r =
  b.data.(b.len) <- r;
  b.len <- b.len + 1

let iter f b =
  for i = 0 to b.len - 1 do
    f b.data.(i)
  done

module Vec = struct
  type vec = { mutable vdata : row array; mutable vlen : int }
  type t = vec

  let create ?(cap = 16) () = { vdata = Array.make (max 1 cap) [||]; vlen = 0 }
  let length v = v.vlen
  let get v i = v.vdata.(i)
  let clear v = v.vlen <- 0

  let push v r =
    if v.vlen = Array.length v.vdata then begin
      let grown = Array.make (2 * Array.length v.vdata) [||] in
      Array.blit v.vdata 0 grown 0 v.vlen;
      v.vdata <- grown
    end;
    v.vdata.(v.vlen) <- r;
    v.vlen <- v.vlen + 1

  (** Keep only the first [n] rows (no-op when already shorter). *)
  let truncate v n = if n < v.vlen then v.vlen <- n

  let iter f v =
    for i = 0 to v.vlen - 1 do
      f v.vdata.(i)
    done

  let to_array v = Array.sub v.vdata 0 v.vlen

  let of_array a = { vdata = Array.copy a; vlen = Array.length a }

  (** A batch aliasing the vector's buffer — no copy. The batch shares
      the vector's storage, so it is invalidated by the producer's next
      mutation of the vector; consumers already may not retain a batch
      container across pulls. View batches carry however many rows the
      vector holds, independent of any nominal pipeline capacity —
      consumers only ever read [len]. *)
  let to_batch v = { data = v.vdata; len = v.vlen }
end
