(** Struct-of-arrays columnar images of row sets, for the vectorized
    engine ({!Vector}).

    A {!t} decomposes an array of rows into one typed vector per
    column — unboxed [int]/[float]/[int] (dates) arrays where the
    column is monomorphic, pointer arrays for strings, and a generic
    [Value.t] fallback for mixed columns — each paired with a null
    bitmap (bit set = NULL; the typed slot then holds a don't-care
    default). Predicates over a typed column run as tight monomorphic
    loops with no per-row closure dispatch or value boxing; anything
    the typed loops cannot express falls back to the retained [base]
    rows, which also serve pipeline-edge materialization: a selection
    over the columnar image converts back to rows by handing out the
    original row pointers, allocation-free.

    Images are cached per relation, keyed by the {e physical identity}
    of the row array: {!Storage.Relation.append} installs a fresh
    array, so a stale image can never be observed. The cache amortizes
    the row→column conversion across warm executions and across the
    per-outer-row re-opens of nested-loop inner sides.

    All buffer allocations are charged to {!Meter.vec_alloc_words} so
    the bench can report honest bytes/row under the SoA layout. *)

open Sqlir

type row = Value.t array

type vec =
  | V_int of int array
  | V_float of float array
  | V_str of string array
  | V_bool of bool array
  | V_date of int array  (** day numbers, as in {!Value.Date} *)
  | V_mixed of Value.t array
      (** column with more than one runtime type: values as-is *)

type col = {
  c_vec : vec;
  c_nulls : Bytes.t;  (** null bitmap: bit [i] set = row [i] is NULL *)
}

type t = {
  n_rows : int;
  cols : col array;
  base : row array;  (** the source rows; edge materialization reuses them *)
}

(* The bitmap is indexed by absolute row id; a byte covers 8 rows. *)
let bitmap_get nb i =
  Char.code (Bytes.unsafe_get nb (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bitmap_set nb i =
  let byte = i lsr 3 in
  Bytes.unsafe_set nb byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get nb byte) lor (1 lsl (i land 7))))

let words_of_bytes b = (b + (Sys.word_size / 8) - 1) / (Sys.word_size / 8)

type cls = K_unknown | K_int | K_float | K_str | K_bool | K_date | K_mixed

let of_rows (rows : row array) ~(width : int) : t =
  let n = Array.length rows in
  let nb_bytes = (n + 7) / 8 in
  let build_col j =
    let nulls = Bytes.make nb_bytes '\000' in
    (* one classification pass: a column is typed when every non-null
       value shares one constructor; Int-vs-Float mixes are generic
       (they compare numerically, which the monomorphic loops cannot) *)
    let cls = ref K_unknown in
    for i = 0 to n - 1 do
      let k =
        match Array.unsafe_get (Array.unsafe_get rows i) j with
        | Value.Null -> K_unknown
        | Value.Int _ -> K_int
        | Value.Float _ -> K_float
        | Value.Str _ -> K_str
        | Value.Bool _ -> K_bool
        | Value.Date _ -> K_date
      in
      if k <> K_unknown then
        match !cls with
        | K_unknown -> cls := k
        | c when c = k -> ()
        | _ -> cls := K_mixed
    done;
    let vec =
      match !cls with
      | K_int | K_unknown ->
          (* an all-null column lands here: every bit set, zero slots *)
          let a = Array.make n 0 in
          for i = 0 to n - 1 do
            match rows.(i).(j) with
            | Value.Int x -> Array.unsafe_set a i x
            | _ -> bitmap_set nulls i
          done;
          V_int a
      | K_float ->
          let a = Array.make n 0. in
          for i = 0 to n - 1 do
            match rows.(i).(j) with
            | Value.Float x -> Array.unsafe_set a i x
            | _ -> bitmap_set nulls i
          done;
          V_float a
      | K_str ->
          let a = Array.make n "" in
          for i = 0 to n - 1 do
            match rows.(i).(j) with
            | Value.Str x -> Array.unsafe_set a i x
            | _ -> bitmap_set nulls i
          done;
          V_str a
      | K_bool ->
          let a = Array.make n false in
          for i = 0 to n - 1 do
            match rows.(i).(j) with
            | Value.Bool x -> Array.unsafe_set a i x
            | _ -> bitmap_set nulls i
          done;
          V_bool a
      | K_date ->
          let a = Array.make n 0 in
          for i = 0 to n - 1 do
            match rows.(i).(j) with
            | Value.Date x -> Array.unsafe_set a i x
            | _ -> bitmap_set nulls i
          done;
          V_date a
      | K_mixed ->
          let a = Array.init n (fun i -> rows.(i).(j)) in
          for i = 0 to n - 1 do
            if Value.is_null a.(i) then bitmap_set nulls i
          done;
          V_mixed a
    in
    { c_vec = vec; c_nulls = nulls }
  in
  (* payload words: one word per slot per column (bool and string
     arrays are word-per-element in the OCaml heap; string payloads are
     shared with the base rows, not copied) plus the bitmaps *)
  Meter.charge_vec_alloc ((width * n) + (width * words_of_bytes nb_bytes));
  { n_rows = n; cols = Array.init width build_col; base = rows }

let is_null t ~row ~col = bitmap_get t.cols.(col).c_nulls row

(** Reconstruct the [Value.t] at (row, col) — the roundtrip inverse of
    {!of_rows}, used by tests and slow paths. *)
let get t ~row ~col : Value.t =
  let c = t.cols.(col) in
  if bitmap_get c.c_nulls row then Value.Null
  else
    match c.c_vec with
    | V_int a -> Value.Int a.(row)
    | V_float a -> Value.Float a.(row)
    | V_str a -> Value.Str a.(row)
    | V_bool a -> Value.Bool a.(row)
    | V_date a -> Value.Date a.(row)
    | V_mixed a -> a.(row)

(* ------------------------------------------------------------------ *)
(* Per-relation image cache                                             *)
(* ------------------------------------------------------------------ *)

let cache_cap = 16
let cache : (row array * t) list ref = ref []

(** Columnar image of [rows], converted at most once per physical row
    array (bounded MRU list; eviction only matters across databases in
    one process, e.g. long test runs). *)
let of_rows_cached (rows : row array) ~(width : int) : t =
  match List.find_opt (fun (r, _) -> r == rows) !cache with
  | Some (_, cb) -> cb
  | None ->
      let cb = of_rows rows ~width in
      let kept =
        if List.length !cache >= cache_cap then
          List.filteri (fun i _ -> i < cache_cap - 1) !cache
        else !cache
      in
      cache := (rows, cb) :: kept;
      cb
