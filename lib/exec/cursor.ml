(** Shared execution substrate for the row ({!Executor}) and columnar
    ({!Vector}) engines: the cursor protocol, block combinators, the
    execution context with the hybrid engine choice, analyze-mode
    statistics, and the aggregation accumulators.

    Both engines compile plans into trees of {!cursor}s exchanging
    {!Batch.t} blocks, charge work to the same {!Meter}, and must stay
    meter-equal field by field — everything here is engine-neutral so
    neither side can drift. *)

open Sqlir
module A = Ast
module Db = Storage.Db
module B = Batch
module Vec = Batch.Vec

type row = Eval.row
type layout = Eval.layout

(* ------------------------------------------------------------------ *)
(* Engine choice                                                        *)
(* ------------------------------------------------------------------ *)

(** Which interpretation the executor uses for eligible pipelines.
    [Auto] consults the planner's cardinality estimate per pipeline
    (vectorized for high-cardinality scans, row for tiny ones); [Row]
    and [Vector] force one path, for differential testing and
    benchmarking. Operators outside the vectorizable grammar always run
    on the row path, whatever the mode. *)
type engine = Auto | Row | Vector

let engine_name = function Auto -> "auto" | Row -> "row" | Vector -> "vector"

let engine_of_string = function
  | "auto" -> Some Auto
  | "row" -> Some Row
  | "vector" | "vectorized" -> Some Vector
  | _ -> None

(** Per-execution counters of engine choices, one count per pipeline
    source (scan) prepared, plus the partition-execution counters of
    this run: partitions scanned / pruned by [Part_scan]s and
    [Exchange]s, and the widest effective exchange DOP. Surfaced in
    trace spans, the service report and the query store. *)
type engine_stats = {
  mutable es_vector : int;
  mutable es_row : int;
  mutable es_parts_scanned : int;
  mutable es_parts_pruned : int;
  mutable es_dop : int;  (** max effective [Exchange] worker count; 0 = serial *)
}

let engine_stats_create () =
  { es_vector = 0; es_row = 0; es_parts_scanned = 0; es_parts_pruned = 0; es_dop = 0 }

(* process-wide metrics riding along the per-execution counters: engine
   dispatch totals and the batch-fill histogram. Handles are lazy so the
   registry entries only exist once an executor actually runs, and
   cached so the hot path is one bool check plus a field bump. *)
module Mx = Obs.Metrics

let m_dispatch_row =
  lazy
    (Mx.counter
       ~labels:[ ("engine", "row") ]
       Mx.default "exec_pipeline_dispatch_total")

let m_dispatch_vector =
  lazy
    (Mx.counter
       ~labels:[ ("engine", "vector") ]
       Mx.default "exec_pipeline_dispatch_total")

let m_batch_fill = lazy (Mx.histogram Mx.default "exec_batch_fill_rows")

(* partition-execution metrics: process-wide totals of partitions
   scanned vs pruned away, the effective DOP of every exchange, and the
   task-queue depth observed by exchange workers as they claim work *)
let m_parts_scanned =
  lazy (Mx.counter Mx.default "exec_partitions_scanned_total")

let m_parts_pruned =
  lazy (Mx.counter Mx.default "exec_partitions_pruned_total")

let m_exchange_dop = lazy (Mx.gauge Mx.default "exec_exchange_dop")

let m_exchange_queue =
  lazy (Mx.histogram Mx.default "exec_exchange_queue_depth")

(** Force the cached registry handles. [Lazy.force] of one suspension
    from two domains at once can raise [Lazy.Undefined], so a server —
    and the exchange operator — prewarms every executor handle before
    spawning workers. *)
let prewarm_metrics () =
  ignore (Lazy.force m_dispatch_row);
  ignore (Lazy.force m_dispatch_vector);
  ignore (Lazy.force m_batch_fill);
  ignore (Lazy.force m_parts_scanned);
  ignore (Lazy.force m_parts_pruned);
  ignore (Lazy.force m_exchange_dop);
  ignore (Lazy.force m_exchange_queue)

(** Count a pruning outcome: [scanned] surviving partitions read,
    [pruned] skipped. Feeds both the per-execution stats and the
    process-wide counters. *)
let count_parts (es : engine_stats option) ~scanned ~pruned =
  (match es with
  | Some es ->
      es.es_parts_scanned <- es.es_parts_scanned + scanned;
      es.es_parts_pruned <- es.es_parts_pruned + pruned
  | None -> ());
  if !Mx.enabled then begin
    if scanned > 0 then Mx.add (Lazy.force m_parts_scanned) scanned;
    if pruned > 0 then Mx.add (Lazy.force m_parts_pruned) pruned
  end

(** Record the effective worker count of one exchange execution. *)
let observe_dop (es : engine_stats option) dop =
  (match es with
  | Some es -> if dop > es.es_dop then es.es_dop <- dop
  | None -> ());
  if !Mx.enabled then Mx.set (Lazy.force m_exchange_dop) (float_of_int dop)

(** Record the task-queue depth seen by a worker claiming a task. *)
let observe_exchange_queue depth =
  if !Mx.enabled then Mx.observe_int (Lazy.force m_exchange_queue) depth

(** Count one pipeline dispatched to the row engine (per-execution
    stats plus the process-wide counter). *)
let dispatch_row (es : engine_stats option) =
  (match es with Some es -> es.es_row <- es.es_row + 1 | None -> ());
  if !Mx.enabled then Mx.inc (Lazy.force m_dispatch_row)

(** Count one pipeline dispatched to the vectorized engine. *)
let dispatch_vector (es : engine_stats option) =
  (match es with Some es -> es.es_vector <- es.es_vector + 1 | None -> ());
  if !Mx.enabled then Mx.inc (Lazy.force m_dispatch_vector)

let observe_batch_fill (b : B.t) =
  if !Mx.enabled then Mx.observe_int (Lazy.force m_batch_fill) b.B.len

(* ------------------------------------------------------------------ *)
(* Analyze-mode statistics                                              *)
(* ------------------------------------------------------------------ *)

(** Per-operator runtime statistics collected in analyze mode. Rows and
    meter charges accumulate over {e all} executions of the node
    (nested-loop inner sides and TIS subquery plans run once per outer
    row), and the meter includes the node's children — the self-only
    share is recovered at report time by subtracting the children's
    totals. [ns_engine] records which engine interpreted the node;
    [ns_sel_in] counts the rows entering a vectorized operator (its
    selection-vector capacity), so [ns_rows /. ns_sel_in] is the
    operator's selection density; it stays 0 for row-engine nodes. *)
type node_stat = {
  mutable ns_calls : int;
  mutable ns_rows : int;
  ns_meter : Meter.t;
  mutable ns_engine : string;  (** "row" or "vector" *)
  mutable ns_sel_in : int;
}

(* plan nodes keyed by physical identity: annotation reuse can share
   subtrees, and a shared node must accumulate into one stat record *)
module Ptbl = Hashtbl.Make (struct
  type t = Plan.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let node_stat_of (tbl : node_stat Ptbl.t) (p : Plan.t) : node_stat =
  match Ptbl.find_opt tbl p with
  | Some st -> st
  | None ->
      let st =
        {
          ns_calls = 0;
          ns_rows = 0;
          ns_meter = Meter.create ();
          ns_engine = "row";
          ns_sel_in = 0;
        }
      in
      Ptbl.add tbl p st;
      st

(* ------------------------------------------------------------------ *)
(* Execution context                                                    *)
(* ------------------------------------------------------------------ *)

type ctx = {
  db : Db.t;
  meter : Meter.t;
  analyze : node_stat Ptbl.t option;
  binds : Value.t array;  (** values for the plan's [Bind] markers *)
  size : int;  (** batch capacity, rows per block / vector segment *)
  engine : engine;
  card_of : Plan.t -> float option;
      (** planner cardinality hint per plan node (physical identity);
          [None] falls back to the table's actual cardinality *)
  vector_threshold : float;
      (** [Auto] vectorizes a pipeline whose source-scan cardinality
          estimate reaches this *)
  estats : engine_stats option;
  restrict : int option;
      (** partition restriction installed by an {!Plan.Exchange} task:
          [Some i] makes every [Part_scan] in the (sub)plan read only
          partition [i] (when [i] survives its pruning), [None] reads
          every surviving partition. Top-level executions always start
          at [None]. *)
}

let charge_sort ctx n =
  if n > 1 then
    ctx.meter.Meter.sort_compares <-
      ctx.meter.Meter.sort_compares
      + int_of_float (float_of_int n *. (log (float_of_int n) /. log 2.))

(* ------------------------------------------------------------------ *)
(* Aggregation accumulators                                             *)
(* ------------------------------------------------------------------ *)

module Vkey = Map.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare_total
end)

type acc = {
  mutable a_count : int;
  mutable a_sum : Value.t;  (* running sum; Null until first value *)
  mutable a_min : Value.t;
  mutable a_max : Value.t;
  mutable a_seen : unit Vkey.t;  (* for DISTINCT aggregates *)
}

let acc_create () =
  {
    a_count = 0;
    a_sum = Value.Null;
    a_min = Value.Null;
    a_max = Value.Null;
    a_seen = Vkey.empty;
  }

let acc_add distinct acc (v : Value.t) =
  let proceed =
    if not distinct then true
    else if Vkey.mem [ v ] acc.a_seen then false
    else (
      acc.a_seen <- Vkey.add [ v ] () acc.a_seen;
      true)
  in
  if proceed && not (Value.is_null v) then (
    acc.a_count <- acc.a_count + 1;
    acc.a_sum <-
      (if Value.is_null acc.a_sum then v else Value.arith `Add acc.a_sum v);
    acc.a_min <-
      (if Value.is_null acc.a_min || Value.compare_total v acc.a_min < 0 then v
       else acc.a_min);
    acc.a_max <-
      (if Value.is_null acc.a_max || Value.compare_total v acc.a_max > 0 then v
       else acc.a_max))

let acc_result (a : A.agg) acc ~rows_in_group =
  match a with
  | A.Count_star -> Value.Int rows_in_group
  | A.Count -> Value.Int acc.a_count
  | A.Sum -> acc.a_sum
  | A.Min -> acc.a_min
  | A.Max -> acc.a_max
  | A.Avg ->
      if acc.a_count = 0 then Value.Null
      else Value.arith `Div acc.a_sum (Value.Int acc.a_count)

(* ------------------------------------------------------------------ *)
(* Cursors                                                              *)
(* ------------------------------------------------------------------ *)

(** The operator interface. [c_open] (re)binds the correlation rows and
    resets per-execution state; [c_next] yields the next block, [None]
    at end of stream. The returned batch belongs to the cursor and is
    reused by the following [c_next] — row pointers may be retained,
    the container may not. Cursors are re-openable: nested-loop inner
    sides and TIS sub-plans are opened once per (uncached) outer row.
    Prepare-time state (result caches) survives re-opens; per-execution
    state does not. *)
type cursor = {
  c_open : row list -> unit;
  c_next : unit -> B.t option;
  c_close : unit -> unit;
}

(** Open [c] under [orows], stream every row through [f], close it.
    For consumers that fold over the stream once (hash builds,
    aggregation, the root result), this avoids materializing — and
    repeatedly regrowing — an intermediate vector. *)
let iter_rows (c : cursor) (orows : row list) (f : row -> unit) : unit =
  c.c_open orows;
  let rec go () =
    match c.c_next () with
    | Some b ->
        observe_batch_fill b;
        B.iter f b;
        go ()
    | None -> ()
  in
  go ();
  c.c_close ()

(** Open [c] under [orows], pull it dry into a row vector, close it. *)
let drain (c : cursor) (orows : row list) : Vec.t =
  c.c_open orows;
  let v = Vec.create () in
  let rec go () =
    match c.c_next () with
    | Some b ->
        observe_batch_fill b;
        B.iter (Vec.push v) b;
        go ()
    | None -> ()
  in
  go ();
  c.c_close ();
  v

(** Streaming (non-expanding) operator: each input row contributes at
    most one output row, pushed by the per-open step function. Input
    blocks are consumed whole (they may be larger than [size] — view
    batches carry a breaker's entire result) and each non-empty
    survivor set is emitted as one view batch, so rows are never copied
    out in capacity-sized chunks. *)
let streaming ?(on_open = fun (_ : row list) -> ()) ~size (child : cursor)
    (step : row list -> row -> Vec.t -> unit) : cursor =
  let out = Vec.create ~cap:size () in
  let orows_r = ref [] in
  let c_open orows =
    on_open orows;
    orows_r := orows;
    child.c_open orows
  in
  let rec fill () =
    match child.c_next () with
    | None -> if Vec.length out = 0 then None else Some (Vec.to_batch out)
    | Some b ->
        let orows = !orows_r in
        B.iter (fun r -> step orows r out) b;
        if Vec.length out > 0 then Some (Vec.to_batch out) else fill ()
  in
  let c_next () =
    Vec.clear out;
    fill ()
  in
  { c_open; c_next; c_close = child.c_close }

(** Expanding operator (joins): each input row may contribute any number
    of output rows, pushed into a pending vector that is emitted as one
    view batch per consumed input block. *)
let expanding ?(on_open = fun (_ : row list) -> ()) ~size (child : cursor)
    (step : row list -> row -> Vec.t -> unit) : cursor =
  let pending = Vec.create ~cap:size () in
  let orows_r = ref [] in
  let c_open orows =
    on_open orows;
    orows_r := orows;
    Vec.clear pending;
    child.c_open orows
  in
  let rec c_next () =
    match child.c_next () with
    | None -> None
    | Some b ->
        Vec.clear pending;
        let orows = !orows_r in
        B.iter (fun r -> step orows r pending) b;
        if Vec.length pending > 0 then Some (Vec.to_batch pending)
        else c_next ()
  in
  { c_open; c_next; c_close = child.c_close }

(** Pipeline breaker: [build] opens and drains its input(s) itself and
    returns the complete materialized result, which is then emitted as
    a single view batch. *)
let breaker (build : row list -> Vec.t) : cursor =
  let result : Vec.t option ref = ref None in
  let emitted = ref false in
  let orows_r = ref [] in
  let c_open orows =
    orows_r := orows;
    result := None;
    emitted := false
  in
  let c_next () =
    let v =
      match !result with
      | Some v -> v
      | None ->
          let v = build !orows_r in
          result := Some v;
          v
    in
    if !emitted || Vec.length v = 0 then None
    else begin
      emitted := true;
      Some (Vec.to_batch v)
    end
  in
  { c_open; c_next; c_close = (fun () -> result := None) }
