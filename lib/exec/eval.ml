(** Compilation of IR expressions and predicates into row-level
    closures.

    Column references are resolved to (scope depth, position) pairs at
    compile time against a stack of layouts: the head layout is the
    operator's own input; the tail holds correlation scopes (outer rows
    of index nested-loop probes and TIS subquery filters). At run time
    the closure receives the matching stack of rows.

    Predicate evaluation follows SQL three-valued logic; [None] is the
    UNKNOWN truth value. Aggregates, window functions and subqueries
    must have been lowered away by the physical optimizer before
    compilation; encountering one raises. *)

open Sqlir

type layout = (string * string) array
type row = Value.t array

exception Unbound_column of string * string
exception Unlowered of string

(** Resolve a column against a layout stack. *)
let resolve (scopes : layout list) (c : Ast.col) : int * int =
  let rec go depth = function
    | [] -> raise (Unbound_column (c.Ast.c_alias, c.Ast.c_col))
    | layout :: rest ->
        let n = Array.length layout in
        let rec find i =
          if i >= n then go (depth + 1) rest
          else
            let a, col = layout.(i) in
            if String.equal a c.Ast.c_alias && String.equal col c.Ast.c_col
            then (depth, i)
            else find (i + 1)
        in
        find 0
  in
  go 0 scopes

let fetch (rows : row list) depth i = (List.nth rows depth).(i)

let arith_op : Ast.arith -> _ = function
  | Ast.Add -> `Add
  | Ast.Sub -> `Sub
  | Ast.Mul -> `Mul
  | Ast.Div -> `Div

let rec compile_expr ~(meter : Meter.t) ?(binds = [||]) (scopes : layout list)
    (e : Ast.expr) : row list -> Value.t =
  match e with
  | Ast.Const v -> fun _ -> v
  | Ast.Bind (i, peek) ->
      (* Bind values are fixed for one execution, so the lookup happens
         at compile (prepare) time. A plan executed without the bind
         vector it references falls back to the peeked value the plan
         was compiled under. *)
      let v = if i >= 0 && i < Array.length binds then binds.(i) else peek in
      fun _ -> v
  | Ast.Col c ->
      let depth, i = resolve scopes c in
      fun rows -> fetch rows depth i
  | Ast.Binop (op, a, b) ->
      let fa = compile_expr ~meter ~binds scopes a
      and fb = compile_expr ~meter ~binds scopes b
      and op = arith_op op in
      fun rows -> Value.arith op (fa rows) (fb rows)
  | Ast.Neg a ->
      let fa = compile_expr ~meter ~binds scopes a in
      fun rows -> Value.neg (fa rows)
  | Ast.Agg _ -> raise (Unlowered "aggregate in scalar position")
  | Ast.Win _ -> raise (Unlowered "window function in scalar position")
  | Ast.Fn (name, args) ->
      let def = Funcs.find_exn name in
      let fargs = List.map (compile_expr ~meter ~binds scopes) args in
      fun rows ->
        if def.f_expensive then meter.expensive_calls <- meter.expensive_calls + 1;
        def.f_eval (List.map (fun f -> f rows) fargs)
  | Ast.Case (arms, els) ->
      let farms =
        List.map
          (fun (p, e) ->
            (compile_pred ~meter ~binds scopes p, compile_expr ~meter ~binds scopes e))
          arms
      in
      let fels = Option.map (compile_expr ~meter ~binds scopes) els in
      fun rows ->
        let rec go = function
          | [] -> ( match fels with None -> Value.Null | Some f -> f rows)
          | (fp, fe) :: rest -> (
              match fp rows with Some true -> fe rows | _ -> go rest)
        in
        go farms

and compile_pred ~(meter : Meter.t) ?(binds = [||]) (scopes : layout list)
    (p : Ast.pred) : row list -> bool option =
  let not3 = function None -> None | Some b -> Some (not b) in
  let and3 a b =
    match (a, b) with
    | Some false, _ | _, Some false -> Some false
    | Some true, x | x, Some true -> x
    | None, None -> None
  in
  let or3 a b =
    match (a, b) with
    | Some true, _ | _, Some true -> Some true
    | Some false, x | x, Some false -> x
    | None, None -> None
  in
  match p with
  | Ast.True -> fun _ -> Some true
  | Ast.False -> fun _ -> Some false
  | Ast.Cmp (op, a, b) ->
      let fa = compile_expr ~meter ~binds scopes a
      and fb = compile_expr ~meter ~binds scopes b in
      let test = cmp_test op in
      fun rows -> Option.map test (Value.compare_sql (fa rows) (fb rows))
  | Ast.Between (a, lo, hi) ->
      let fa = compile_expr ~meter ~binds scopes a
      and flo = compile_expr ~meter ~binds scopes lo
      and fhi = compile_expr ~meter ~binds scopes hi in
      fun rows ->
        let v = fa rows in
        and3
          (Option.map (fun c -> c >= 0) (Value.compare_sql v (flo rows)))
          (Option.map (fun c -> c <= 0) (Value.compare_sql v (fhi rows)))
  | Ast.Is_null a ->
      let fa = compile_expr ~meter ~binds scopes a in
      fun rows -> Some (Value.is_null (fa rows))
  | Ast.Not a ->
      let fa = compile_pred ~meter ~binds scopes a in
      fun rows -> not3 (fa rows)
  | Ast.Lnnvl a ->
      let fa = compile_pred ~meter ~binds scopes a in
      fun rows -> Some (fa rows <> Some true)
  | Ast.And (a, b) ->
      let fa = compile_pred ~meter ~binds scopes a
      and fb = compile_pred ~meter ~binds scopes b in
      fun rows -> and3 (fa rows) (fb rows)
  | Ast.Or (a, b) ->
      let fa = compile_pred ~meter ~binds scopes a
      and fb = compile_pred ~meter ~binds scopes b in
      fun rows -> or3 (fa rows) (fb rows)
  | Ast.In_list (e, vs) ->
      let fe = compile_expr ~meter ~binds scopes e in
      fun rows ->
        let v = fe rows in
        if Value.is_null v then None
        else if List.exists (fun w -> Value.compare_sql v w = Some 0) vs then
          Some true
        else if List.exists Value.is_null vs then None
        else Some false
  | Ast.Pred_fn (name, args) ->
      let def = Funcs.find_exn name in
      let fargs = List.map (compile_expr ~meter ~binds scopes) args in
      fun rows ->
        if def.f_expensive then meter.expensive_calls <- meter.expensive_calls + 1;
        (match def.f_eval (List.map (fun f -> f rows) fargs) with
        | Value.Bool b -> Some b
        | Value.Null -> None
        | _ -> Some false)
  | Ast.In_subq _ | Ast.Not_in_subq _ | Ast.Exists _ | Ast.Not_exists _
  | Ast.Cmp_subq _ ->
      raise (Unlowered "subquery predicate reached scalar compilation")

and cmp_test : Ast.cmp -> int -> bool = function
  | Ast.Eq -> fun c -> c = 0
  | Ast.Ne -> fun c -> c <> 0
  | Ast.Lt -> fun c -> c < 0
  | Ast.Le -> fun c -> c <= 0
  | Ast.Gt -> fun c -> c > 0
  | Ast.Ge -> fun c -> c >= 0

(** Evaluate compiled filter conjuncts: a row passes if every conjunct
    is [Some true]. *)
let passes fs rows = List.for_all (fun f -> f rows = Some true) fs

(* ------------------------------------------------------------------ *)
(* Single-layout specialization helpers                                 *)
(* ------------------------------------------------------------------ *)

(** Position of [c] in a single layout (no scope stack), if present. *)
let find_col (layout : layout) (c : Ast.col) : int option =
  let n = Array.length layout in
  let rec go i =
    if i >= n then None
    else
      let a, col = layout.(i) in
      if String.equal a c.Ast.c_alias && String.equal col c.Ast.c_col then
        Some i
      else go (i + 1)
  in
  go 0

(** An operand evaluable from the node's own row alone: a column of
    [layout], a constant, or a bind marker (fixed for one execution).
    A column that resolves only in an outer scope is not simple. Both
    engines build their specialized (charge-free) predicate and
    projection paths on this. *)
let simple_arg ~binds (layout : layout) : Ast.expr -> (row -> Value.t) option =
  function
  | Ast.Const v -> Some (fun _ -> v)
  | Ast.Bind (i, peek) ->
      let v = if i >= 0 && i < Array.length binds then binds.(i) else peek in
      Some (fun _ -> v)
  | Ast.Col c -> (
      match find_col layout c with
      | Some i -> Some (fun r -> Array.unsafe_get r i)
      | None -> None)
  | _ -> None
