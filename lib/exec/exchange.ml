(** The parallel substrate of the {!Plan.Exchange} operator: a
    partition-task fan-out across OCaml domains.

    Tasks (surviving partition indices) are pre-loaded into a bounded
    {!Concur.Chan} ring, [min dop tasks] worker domains claim them
    dynamically — so a skewed partition does not idle the other
    workers — and push their results into a second ring. The
    coordinator joins the workers, drains the results and returns them
    sorted by task index. Dynamic claiming makes the {e assignment} of
    tasks to domains racy, but nothing observable depends on it: the
    caller merges in ascending task order, and every per-task artifact
    (rows, meter, node stats) is a pure function of the task alone.
    That is the exchange determinism contract — rows {e and} merged
    meters are bit-identical to running the tasks sequentially,
    whatever the dop.

    A worker exception is captured, carried through the result ring and
    re-raised in the coordinator (first failing task in task order)
    after every domain is joined, so no domain is leaked.

    The caller must {!Cursor.prewarm_metrics} (done by the executor's
    exchange operator) before fanning out: forcing one lazy metric
    handle from two domains at once can raise [Lazy.Undefined]. *)

module Chan = Concur.Chan

(** [run_tasks ~dop ~tasks ~f] evaluates [f t] for every [t] in
    [tasks] on up to [dop] domains and returns the [(t, f t)] pairs
    sorted by task. [f] must be safe to call from a fresh domain
    (the executor gives each task its own meter and mutable state).
    With [dop <= 1] or a single task, [f] runs on the calling domain —
    same results, no spawn. *)
let run_tasks ~(dop : int) ~(tasks : int list) ~(f : int -> 'a) :
    (int * 'a) list =
  let n = List.length tasks in
  let w = max 1 (min dop n) in
  if n = 0 then []
  else if w <= 1 then List.map (fun t -> (t, f t)) tasks
  else begin
    let tq = Chan.create ~capacity:n in
    List.iter (fun t -> ignore (Chan.try_push tq t)) tasks;
    Chan.close tq;
    (* capacity [n]: result pushes can never block, so a worker that
       finishes last cannot deadlock against a coordinator that only
       drains after joining *)
    let rq = Chan.create ~capacity:n in
    let worker () =
      let rec loop () =
        match Chan.pop tq with
        | None -> ()
        | Some t ->
            Cursor.observe_exchange_queue (Chan.length tq);
            let r = try Ok (f t) with e -> Error e in
            ignore (Chan.push rq (t, r));
            loop ()
      in
      loop ()
    in
    let doms = List.init w (fun _ -> Domain.spawn worker) in
    List.iter Domain.join doms;
    let out = ref [] in
    for _ = 1 to n do
      match Chan.pop rq with
      | Some r -> out := r :: !out
      | None -> ()
    done;
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) !out in
    List.map
      (fun (t, r) -> match r with Ok v -> (t, v) | Error e -> raise e)
      sorted
  end
