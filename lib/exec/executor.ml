(** Pull-based, block-at-a-time plan executor: the row engine, and the
    dispatcher of the hybrid row/vectorized execution.

    [prepare] compiles a plan into a tree of {e cursors} (the protocol
    and block combinators live in {!Cursor}). A cursor is opened with
    the rows of its correlation scopes, then pulled with [c_next],
    which yields {!Batch.t} blocks of rows until exhaustion. Scans,
    filters, projections and the probe sides of hash joins stream
    block-at-a-time without materializing intermediates; pipeline
    breakers (sort, group-by, hash-join build sides, distinct, set ops,
    limit) collect their input into growable {!Batch.Vec} row vectors
    and then emit the whole result as a single view batch.

    At every pipeline that fits the columnar grammar (scan → filters →
    optional projection or scalar aggregation), [prepare] first offers
    the node to {!Vector.try_root}: under the [Auto] engine the choice
    is cost-driven — the planner's cardinality estimate for the
    pipeline's source scan (threaded through {!Cursor.ctx.card_of})
    must reach [vector_threshold] — while [Row]/[Vector] force one path
    for differential testing and benchmarking. Vectorized pipelines
    process segments through typed column vectors and a selection
    vector ({!Colbatch}, {!Vector}); everything else runs the row path
    below. Both paths are {e meter-equal field by field} and return
    identical rows — the test suite checks this differentially against
    {!Baseline} as well.

    Inner sides of nested-loop joins and TIS subquery plans are
    re-opened per outer row — exactly the tuple-iteration semantics the
    paper describes — with result caching keyed on the outer values
    (through {!Keys}, which meters the key-build cost), modelling
    Oracle's semijoin/antijoin and subquery-filter caches
    (Section 2.1.1).

    All data movement is charged to the context's {!Meter}; the meter's
    weighted total is the reproduction's notion of execution time.
    Charges are accounted {e identically} to the list-at-a-time
    {!Baseline} engine (checked differentially by the test suite), and
    neither results nor meter totals depend on the batch size:
    operators that could otherwise observe block boundaries (LIMIT,
    ROWNUM filters) drain their child fully, as the baseline did.

    In analyze mode every cursor's open/next/close is wrapped to
    accumulate per-node calls / rows / meter deltas into a {!node_stat}
    keyed by the plan node's physical identity; [ns_calls] counts opens
    (= executions, as before), [ns_rows] sums emitted block lengths, and
    [ns_meter] includes the node's children — the self-only share is
    recovered at report time by subtracting the children's totals.
    Vectorized nodes additionally record the engine and their
    selection-vector density inputs. *)

open Sqlir
module A = Ast
module Db = Storage.Db
module Relation = Storage.Relation
module Btree = Storage.Btree
module B = Batch
module Vec = Batch.Vec
open Cursor

type row = Eval.row
type layout = Eval.layout

(* Re-exported from {!Cursor} so existing callers keep their paths
   (tests and EXPLAIN access [st.Executor.ns_calls] etc.). *)

type engine = Cursor.engine = Auto | Row | Vector

type engine_stats = Cursor.engine_stats = {
  mutable es_vector : int;
  mutable es_row : int;
  mutable es_parts_scanned : int;
  mutable es_parts_pruned : int;
  mutable es_dop : int;
}

let engine_name = Cursor.engine_name
let engine_of_string = Cursor.engine_of_string
let engine_stats_create = Cursor.engine_stats_create

type node_stat = Cursor.node_stat = {
  mutable ns_calls : int;
  mutable ns_rows : int;
  ns_meter : Meter.t;
  mutable ns_engine : string;
  mutable ns_sel_in : int;
}

module Ptbl = Cursor.Ptbl

exception Runtime_error of string

(* Hash table over value-list keys with the same equality as {!Vkey}
   (Int and Float compare numerically under [Value.compare_total], so
   numeric values hash through their float image). Used for the hot
   per-row lookups — join buckets, group tables, distinct/set-op sets,
   TIS and NL result caches — where iteration order is unobservable;
   {!Vkey} remains wherever an iteration order could leak into meter
   charges (the SP_in null-probe scan) or where sorted order is
   convenient (window partitions). *)
let hash_value = Value.hash_total

module Hkey = Hashtbl.Make (struct
  type t = Value.t list

  let equal a b = List.compare Value.compare_total a b = 0
  let hash k = List.fold_left (fun acc v -> (acc * 31) + hash_value v) 17 k
end)

(* Single-value keys: fk equi-joins are overwhelmingly one-column, and
   a [Value.t]-keyed table skips the per-row key-list allocation and
   the list fold of {!Hkey}. Same equality as {!Hkey} on singletons. *)
module Hval = Hashtbl.Make (struct
  type t = Value.t

  let equal a b = Value.compare_total a b = 0
  let hash = hash_value
end)

(* Lexicographic comparison of precomputed key tuples (equal widths). *)
let cmp_keys (k1 : Value.t array) (k2 : Value.t array) =
  let n = Array.length k1 in
  let rec go i =
    if i >= n then 0
    else
      let c = Value.compare_total k1.(i) k2.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* Direction-aware comparison; missing directions default to ascending
   and surplus directions are ignored, as in the AST. *)
let cmp_keys_dirs (dirs : A.dir array) (k1 : Value.t array)
    (k2 : Value.t array) =
  let n = Array.length k1 in
  let nd = Array.length dirs in
  let rec go i =
    if i >= n then 0
    else
      let c = Value.compare_total k1.(i) k2.(i) in
      let c =
        if i < nd then match dirs.(i) with A.Asc -> c | A.Desc -> -c else c
      in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* --------------------------------------------------------------- *)
(* Cursor-layer specialization                                       *)
(* --------------------------------------------------------------- *)

(* Compiling to cursors makes it worthwhile to specialize the hot
   per-row paths that the generic closure compiler ({!Eval}) cannot: a
   predicate whose operands are columns of the node's own row (or
   constants) evaluates by direct array indexing — no scope stack is
   consed and no 3VL option is boxed — and a join residual over single
   columns is tested without materializing the combined row first.
   Specialization is invisible to the meter: simple comparisons charge
   nothing in either engine, and mixed conjunct lists keep the
   original left-to-right evaluation order, so expensive-function
   short-circuit counts are preserved. The resolution helpers
   ({!Eval.find_col}, {!Eval.simple_arg}) are shared with the
   vectorized engine's conjunct compiler. *)

let find_col = Eval.find_col
let simple_arg = Eval.simple_arg

type fpred = F_fast of (row -> bool) | F_slow of (row list -> bool option)

(* Compile filter conjuncts into a row test equivalent to
   [Eval.passes] over [layout :: scopes]: every conjunct must be
   [Some true], UNKNOWN folds to false. *)
let compile_filter ~meter ~binds (layout : layout) scopes
    (preds : A.pred list) : row -> row list -> bool =
  let conjunct p =
    match p with
    | A.Cmp (op, a, b) -> (
        match (simple_arg ~binds layout a, simple_arg ~binds layout b) with
        | Some fa, Some fb ->
            let test = Eval.cmp_test op in
            F_fast
              (fun r ->
                let va = fa r and vb = fb r in
                (not (Value.is_null va || Value.is_null vb))
                && test (Value.compare_total va vb))
        | _ -> F_slow (Eval.compile_pred ~meter ~binds (layout :: scopes) p))
    | _ -> F_slow (Eval.compile_pred ~meter ~binds (layout :: scopes) p)
  in
  let fps = List.map conjunct preds in
  if List.for_all (function F_fast _ -> true | F_slow _ -> false) fps then
    let fa =
      Array.of_list
        (List.filter_map (function F_fast f -> Some f | F_slow _ -> None) fps)
    in
    match fa with
    | [||] -> fun _ _ -> true
    | [| f |] -> fun r _ -> f r
    | _ ->
        let n = Array.length fa in
        fun r _ ->
          let rec go i = i >= n || ((Array.unsafe_get fa i) r && go (i + 1)) in
          go 0
  else
    fun r orows ->
      let rows = r :: orows in
      List.for_all
        (function F_fast f -> f r | F_slow g -> g rows = Some true)
        fps

(* A scalar evaluated per row (aggregate arguments, key expressions). *)
let compile_scalar ~meter ~binds (layout : layout) scopes (e : A.expr) :
    row -> row list -> Value.t =
  match simple_arg ~binds layout e with
  | Some f -> fun r _ -> f r
  | None ->
      let g = Eval.compile_expr ~meter ~binds (layout :: scopes) e in
      fun r orows -> g (r :: orows)

(* Key tuples (join / group / sort keys) built per row. Key building
   charges nothing in either engine, so specialization cannot skew the
   meter. *)
let compile_keys_list ~meter ~binds (layout : layout) scopes exprs :
    row -> row list -> Value.t list =
  let fast = List.map (simple_arg ~binds layout) exprs in
  if List.for_all Option.is_some fast then
    let fs = List.map Option.get fast in
    fun r _ -> List.map (fun f -> f r) fs
  else
    let fs =
      List.map (Eval.compile_expr ~meter ~binds (layout :: scopes)) exprs
    in
    fun r orows ->
      let rows = r :: orows in
      List.map (fun f -> f rows) fs

let compile_keys_arr ~meter ~binds (layout : layout) scopes exprs :
    row -> row list -> Value.t array =
  let fast = List.map (simple_arg ~binds layout) exprs in
  if List.for_all Option.is_some fast then
    let fa = Array.of_list (List.map Option.get fast) in
    fun r _ -> Array.map (fun f -> f r) fa
  else
    let fs =
      List.map (Eval.compile_expr ~meter ~binds (layout :: scopes)) exprs
    in
    fun r orows ->
      let rows = r :: orows in
      Array.of_list (List.map (fun f -> f rows) fs)

(* Join condition / residual test over (left row, right row) pairs.
   [J_pair] reads single columns of either side directly, so no
   combined row is needed for the test; [J_gen] additionally receives
   the combined row, built once by the caller and reusable for
   output. *)
type jtest =
  | J_triv  (** no conjuncts: always true *)
  | J_pair of (row -> row -> bool)
  | J_gen of (row -> row -> row -> row list -> bool)
      (** left, right, combined, correlation scopes *)

type fpred2 =
  | F_fast2 of (row -> row -> bool)
  | F_slow2 of (row list -> bool option)

let compile_jtest ~meter ~binds ~(left : layout) ~(right : layout) scopes
    (preds : A.pred list) : jtest =
  match preds with
  | [] -> J_triv
  | _ ->
      let combined = Array.append left right in
      (* left side first: matches resolution order against the
         combined layout *)
      let arg e =
        match simple_arg ~binds left e with
        | Some f -> Some (fun l _ -> f l)
        | None -> (
            match simple_arg ~binds right e with
            | Some f -> Some (fun _ r -> f r)
            | None -> None)
      in
      let step p =
        match p with
        | A.Cmp (op, a, b) -> (
            match (arg a, arg b) with
            | Some fa, Some fb ->
                let test = Eval.cmp_test op in
                F_fast2
                  (fun l r ->
                    let va = fa l r and vb = fb l r in
                    (not (Value.is_null va || Value.is_null vb))
                    && test (Value.compare_total va vb))
            | _ ->
                F_slow2 (Eval.compile_pred ~meter ~binds (combined :: scopes) p)
            )
        | _ -> F_slow2 (Eval.compile_pred ~meter ~binds (combined :: scopes) p)
      in
      let steps = List.map step preds in
      if List.for_all (function F_fast2 _ -> true | F_slow2 _ -> false) steps
      then
        let fa =
          Array.of_list
            (List.filter_map
               (function F_fast2 f -> Some f | F_slow2 _ -> None)
               steps)
        in
        let n = Array.length fa in
        J_pair
          (fun l r ->
            let rec go i =
              i >= n || ((Array.unsafe_get fa i) l r && go (i + 1))
            in
            go 0)
      else
        J_gen
          (fun l r j orows ->
            let rows = j :: orows in
            List.for_all
              (function F_fast2 f -> f l r | F_slow2 g -> g rows = Some true)
              steps)

(* --------------------------------------------------------------- *)
(* The interpreter                                                   *)
(* --------------------------------------------------------------- *)

(* Direct evaluator for a leaf plan (bare table or index scan),
   yielding the scan's surviving rows as one array. Nested-loop inner
   sides re-open their cursor once per uncached outer row; when the
   inner side is a leaf, the block machinery (batch fills, the pending
   vector of [drain], the final copy to an array) is pure overhead on
   a result that is materialized into the cache anyway. The charges
   are exactly those of the cursor path: pages / probes / entries per
   open, [rows_scanned] per row read, [rows_out] per row surviving.
   Analyze mode keeps the generic path so the leaf node still records
   its own per-node calls and rows. *)
let leaf_rows (ctx : ctx) (scopes : layout list) (p : Plan.t) :
    (row list -> row array) option =
  let meter = ctx.meter in
  let binds = ctx.binds in
  match (ctx.analyze, p) with
  | Some _, _ -> None
  | None, Plan.Table_scan { table; alias = _; filter } ->
      let rel = Db.relation ctx.db table in
      let self_layout = Plan.layout p ctx.db.Db.cat in
      let ftest = compile_filter ~meter ~binds self_layout scopes filter in
      Some
        (fun orows ->
          meter.pages_read <- meter.pages_read + Relation.pages rel;
          let rows = rel.Relation.r_rows in
          let n = Array.length rows in
          meter.rows_scanned <- meter.rows_scanned + n;
          if n = 0 then [||]
          else begin
            let buf = Array.make n (Array.unsafe_get rows 0) in
            let k = ref 0 in
            for i = 0 to n - 1 do
              let tup = Array.unsafe_get rows i in
              if ftest tup orows then begin
                Array.unsafe_set buf !k tup;
                incr k
              end
            done;
            meter.rows_out <- meter.rows_out + !k;
            if !k = n then buf else Array.sub buf 0 !k
          end)
  | None, Plan.Index_scan { table; alias = _; index; prefix; lo; hi; filter }
    ->
      let rel = Db.relation ctx.db table in
      let bt = Db.index ctx.db ~table ~name:index in
      let fprefix = List.map (Eval.compile_expr ~meter ~binds scopes) prefix in
      let bound = function
        | Plan.R_unbounded -> fun _ -> Btree.Unbounded
        | Plan.R_incl e ->
            let f = Eval.compile_expr ~meter ~binds scopes e in
            fun orows -> Btree.Incl (f orows)
        | Plan.R_excl e ->
            let f = Eval.compile_expr ~meter ~binds scopes e in
            fun orows -> Btree.Excl (f orows)
      in
      let flo = bound lo and fhi = bound hi in
      let self_layout = Plan.layout p ctx.db.Db.cat in
      let ftest = compile_filter ~meter ~binds self_layout scopes filter in
      let full_key_eq = List.length prefix = List.length bt.Btree.bt_cols in
      Some
        (fun orows ->
          let pvals = List.map (fun f -> f orows) fprefix in
          meter.idx_probes <- meter.idx_probes + Btree.height bt;
          let ids =
            if List.exists Value.is_null pvals && pvals <> [] then []
            else if full_key_eq then Btree.find_eq bt pvals
            else
              match (flo orows, fhi orows) with
              | Btree.Unbounded, Btree.Unbounded when pvals <> [] ->
                  Btree.find_prefix bt pvals
              | lo, hi ->
                  let ids, touched = Btree.range bt ~prefix:pvals ~lo ~hi in
                  meter.idx_entries <- meter.idx_entries + touched;
                  ids
          in
          let n = List.length ids in
          meter.idx_entries <- meter.idx_entries + n;
          meter.rows_scanned <- meter.rows_scanned + n;
          if n = 0 then [||]
          else begin
            let buf = Array.make n rel.Relation.r_rows.(List.hd ids) in
            let k = ref 0 in
            List.iter
              (fun rid ->
                let tup = Array.unsafe_get rel.Relation.r_rows rid in
                if ftest tup orows then begin
                  Array.unsafe_set buf !k tup;
                  incr k
                end)
              ids;
            meter.rows_out <- meter.rows_out + !k;
            if !k = n then buf else Array.sub buf 0 !k
          end)
  | None, _ -> None

(** Compile [p] under correlation scopes [scopes] into a cursor. Every
    cursor is wrapped to charge emitted block lengths to [rows_out] —
    the batch-layer replacement for the per-operator
    [List.length]-walking `out` of the list engine — and, in analyze
    mode, to accumulate per-node calls / rows / meter deltas. The node
    is first offered to the vectorized engine; a pipeline it accepts
    comes back as a single chain cursor whose root is wrapped here like
    any row cursor (the chain charges its interior nodes itself). *)
let rec prepare (ctx : ctx) (scopes : layout list) (p : Plan.t) : cursor =
  let raw =
    match Vector.try_root ctx scopes p with
    | Some c -> c
    | None -> prepare_node ctx scopes p
  in
  match ctx.analyze with
  | None ->
      let m = ctx.meter in
      {
        raw with
        c_next =
          (fun () ->
            match raw.c_next () with
            | Some b as r ->
                m.rows_out <- m.rows_out + b.B.len;
                r
            | None -> None);
      }
  | Some tbl ->
      let st = node_stat_of tbl p in
      let m = ctx.meter in
      let measure f =
        let before = Meter.copy m in
        let r = f () in
        Meter.add st.ns_meter (Meter.diff m before);
        r
      in
      {
        c_open =
          (fun orows ->
            measure (fun () ->
                st.ns_calls <- st.ns_calls + 1;
                raw.c_open orows));
        c_next =
          (fun () ->
            measure (fun () ->
                match raw.c_next () with
                | Some b as r ->
                    m.rows_out <- m.rows_out + b.B.len;
                    st.ns_rows <- st.ns_rows + b.B.len;
                    r
                | None -> None));
        c_close = (fun () -> measure raw.c_close);
      }

and prepare_node (ctx : ctx) (scopes : layout list) (p : Plan.t) : cursor =
  let cat = ctx.db.Db.cat in
  let meter = ctx.meter in
  let binds = ctx.binds in
  let size = ctx.size in
  let self_layout = Plan.layout p cat in
  match p with
  | Plan.Table_scan { table; alias = _; filter } ->
      (* reaching this branch means the vectorized engine declined the
         pipeline above this scan (or mode Row): one row choice *)
      dispatch_row ctx.estats;
      let rel = Db.relation ctx.db table in
      let ftest = compile_filter ~meter ~binds self_layout scopes filter in
      let out = B.create size in
      let pos = ref 0 in
      let orows_r = ref [] in
      let c_open orows =
        orows_r := orows;
        pos := 0;
        meter.pages_read <- meter.pages_read + Relation.pages rel
      in
      let c_next () =
        let rows = rel.Relation.r_rows in
        let n = Array.length rows in
        if !pos >= n then None
        else begin
          B.clear out;
          let orows = !orows_r in
          while (not (B.is_full out)) && !pos < n do
            let tup = rows.(!pos) in
            incr pos;
            meter.rows_scanned <- meter.rows_scanned + 1;
            if ftest tup orows then B.add out tup
          done;
          if out.B.len = 0 then None else Some out
        end
      in
      { c_open; c_next; c_close = (fun () -> ()) }
  | Plan.Part_scan { table; alias = _; filter; prune } ->
      (* partitioned full scan: ascending partition order over the
         surviving partitions — which, partitions being contiguous
         ascending slices of [r_rows], is the heap's physical order, so
         an unpruned PART SCAN emits exactly the rows a TABLE SCAN
         would, in the same order. Pages are charged as the sum of
         per-partition ceilings of the partitions actually read. *)
      dispatch_row ctx.estats;
      let rel = Db.relation ctx.db table in
      let spec =
        match Relation.part rel with
        | Some pt -> pt.Relation.p_spec
        | None ->
            invalid_arg
              (Printf.sprintf "Executor: PART SCAN over unpartitioned %s"
                 table)
      in
      let ftest = compile_filter ~meter ~binds self_layout scopes filter in
      let out = B.create size in
      let slices = ref [||] in
      let si = ref 0 in
      let pos = ref 0 in
      let orows_r = ref [] in
      let c_open orows =
        orows_r := orows;
        (* pruning happens here, against the actual binds of this
           execution — never against plan-time values *)
        let surv = Prune.survivors_runtime ~binds spec prune in
        let surv =
          match ctx.restrict with
          | None ->
              (* a top-level (non-exchange) scan accounts its pruning
                 outcome; under an exchange the Exchange node accounts
                 it once per execution, not once per task *)
              count_parts ctx.estats ~scanned:(List.length surv)
                ~pruned:(spec.Catalog.ps_n - List.length surv);
              surv
          | Some i -> if List.mem i surv then [ i ] else []
        in
        List.iter
          (fun i ->
            meter.pages_read <- meter.pages_read + Relation.part_pages rel i)
          surv;
        slices := Array.of_list (List.map (Relation.part_bounds rel) surv);
        si := 0;
        pos := (if Array.length !slices > 0 then fst !slices.(0) else 0)
      in
      let c_next () =
        let rows = rel.Relation.r_rows in
        let sl = !slices in
        let ns = Array.length sl in
        if !si >= ns then None
        else begin
          B.clear out;
          let orows = !orows_r in
          let continue = ref true in
          while !continue && not (B.is_full out) do
            if !si >= ns then continue := false
            else begin
              let _, hi = sl.(!si) in
              if !pos >= hi then begin
                incr si;
                if !si < ns then pos := fst sl.(!si) else continue := false
              end
              else begin
                let tup = rows.(!pos) in
                incr pos;
                meter.rows_scanned <- meter.rows_scanned + 1;
                if ftest tup orows then B.add out tup
              end
            end
          done;
          if out.B.len = 0 then None else Some out
        end
      in
      { c_open; c_next; c_close = (fun () -> ()) }
  | Plan.Exchange { child; dop } -> prepare_exchange ctx scopes child dop
  | Plan.Partial_agg { child; alias = _; keys; aggs } ->
      prepare_partial_agg ctx scopes child keys aggs
  | Plan.Final_agg { child; alias = _; keys; aggs } ->
      prepare_final_agg ctx scopes child keys aggs
  | Plan.Index_scan { table; alias = _; index; prefix; lo; hi; filter } ->
      (* index scans always run the row path: one row choice *)
      dispatch_row ctx.estats;
      let rel = Db.relation ctx.db table in
      let bt = Db.index ctx.db ~table ~name:index in
      let fprefix = List.map (Eval.compile_expr ~meter ~binds scopes) prefix in
      let bound = function
        | Plan.R_unbounded -> fun _ -> Btree.Unbounded
        | Plan.R_incl e ->
            let f = Eval.compile_expr ~meter ~binds scopes e in
            fun orows -> Btree.Incl (f orows)
        | Plan.R_excl e ->
            let f = Eval.compile_expr ~meter ~binds scopes e in
            fun orows -> Btree.Excl (f orows)
      in
      let flo = bound lo and fhi = bound hi in
      let ftest = compile_filter ~meter ~binds self_layout scopes filter in
      let full_key_eq = List.length prefix = List.length bt.Btree.bt_cols in
      let out = B.create size in
      let rowids = ref [||] in
      let pos = ref 0 in
      let orows_r = ref [] in
      let c_open orows =
        orows_r := orows;
        pos := 0;
        let pvals = List.map (fun f -> f orows) fprefix in
        meter.idx_probes <- meter.idx_probes + Btree.height bt;
        let ids =
          if List.exists Value.is_null pvals && pvals <> [] then []
          else if full_key_eq then Btree.find_eq bt pvals
          else
            match (flo orows, fhi orows) with
            | Btree.Unbounded, Btree.Unbounded when pvals <> [] ->
                Btree.find_prefix bt pvals
            | lo, hi ->
                let ids, touched = Btree.range bt ~prefix:pvals ~lo ~hi in
                meter.idx_entries <- meter.idx_entries + touched;
                ids
        in
        meter.idx_entries <- meter.idx_entries + List.length ids;
        rowids := Array.of_list ids
      in
      let c_next () =
        let ids = !rowids in
        let n = Array.length ids in
        if !pos >= n then None
        else begin
          B.clear out;
          let orows = !orows_r in
          while (not (B.is_full out)) && !pos < n do
            let rid = ids.(!pos) in
            incr pos;
            meter.rows_scanned <- meter.rows_scanned + 1;
            let tup = rel.Relation.r_rows.(rid) in
            if ftest tup orows then B.add out tup
          done;
          if out.B.len = 0 then None else Some out
        end
      in
      { c_open; c_next; c_close = (fun () -> rowids := [||]) }
  | Plan.Filter { child; preds } ->
      let cchild = prepare ctx scopes child in
      let ftest = compile_filter ~meter ~binds self_layout scopes preds in
      streaming ~size cchild (fun orows r out ->
          if ftest r orows then Vec.push out r)
  | Plan.Project { child; alias = _; items } ->
      let child_layout = Plan.layout child cat in
      let cchild = prepare ctx scopes child in
      let fast = List.map (fun (e, _) -> simple_arg ~binds child_layout e) items in
      if List.for_all Option.is_some fast then
        (* simple projection: copy by position, no scope stack *)
        match Array.of_list (List.map Option.get fast) with
        | [| f |] ->
            streaming ~size cchild (fun _orows r out -> Vec.push out [| f r |])
        | fa ->
            let n = Array.length fa in
            streaming ~size cchild (fun _orows r out ->
                let o = Array.make n Value.Null in
                for k = 0 to n - 1 do
                  Array.unsafe_set o k ((Array.unsafe_get fa k) r)
                done;
                Vec.push out o)
      else
        let fitems =
          List.map
            (fun (e, _) ->
              Eval.compile_expr ~meter ~binds (child_layout :: scopes) e)
            items
        in
        streaming ~size cchild (fun orows r out ->
            Vec.push out
              (Array.of_list (List.map (fun f -> f (r :: orows)) fitems)))
  | Plan.Join { meth; role; left; right; cond } ->
      prepare_join ctx scopes ~meth ~role ~left ~right ~cond
  | Plan.Subq_filter { child; preds } ->
      prepare_subq_filter ctx scopes child preds
  | Plan.Aggregate { child; strategy; alias = _; keys; aggs } ->
      prepare_aggregate ctx scopes child strategy keys aggs
  | Plan.Window { child; alias = _; wins } -> prepare_window ctx scopes child wins
  | Plan.Distinct child ->
      let cchild = prepare ctx scopes child in
      let seen : unit Hkey.t = Hkey.create 64 in
      streaming ~size
        ~on_open:(fun _ -> Hkey.reset seen)
        cchild
        (fun _orows r out ->
          meter.hash_build <- meter.hash_build + 1;
          let k = Array.to_list r in
          if not (Hkey.mem seen k) then begin
            Hkey.add seen k ();
            Vec.push out r
          end)
  | Plan.Sort { child; keys } ->
      let child_layout = Plan.layout child cat in
      let cchild = prepare ctx scopes child in
      let fkey =
        compile_keys_arr ~meter ~binds child_layout scopes (List.map fst keys)
      in
      let dirs = Array.of_list (List.map snd keys) in
      (* decorate-sort-undecorate: keys are computed once per row, not
         once per comparison *)
      breaker (fun orows ->
          let v = drain cchild orows in
          let n = Vec.length v in
          charge_sort ctx n;
          let deco =
            Array.init n (fun i ->
                let r = Vec.get v i in
                (fkey r orows, r))
          in
          Array.stable_sort
            (fun (k1, _) (k2, _) -> cmp_keys_dirs dirs k1 k2)
            deco;
          let result = Vec.create ~cap:(max 1 n) () in
          Array.iter (fun (_, r) -> Vec.push result r) deco;
          result)
  | Plan.Limit { child; n } ->
      let cchild = prepare ctx scopes child in
      (* the child is drained fully — as the list engine materialized it
         — so meter totals cannot depend on the batch size *)
      breaker (fun orows ->
          let v = drain cchild orows in
          Vec.truncate v n;
          v)
  | Plan.Limit_filter { child; preds; n } ->
      let cchild = prepare ctx scopes child in
      let ftest = compile_filter ~meter ~binds self_layout scopes preds in
      breaker (fun orows ->
          let v = drain cchild orows in
          let result = Vec.create () in
          let quota = ref n in
          (* stop evaluating predicates once the quota fills; the child
             is still drained, as above *)
          Vec.iter
            (fun r ->
              if !quota > 0 && ftest r orows then begin
                Vec.push result r;
                decr quota
              end)
            v;
          result)
  | Plan.Union_all children ->
      let cs = Array.of_list (List.map (prepare ctx scopes) children) in
      let idx = ref 0 in
      let orows_r = ref [] in
      let c_open orows =
        orows_r := orows;
        idx := 0;
        if Array.length cs > 0 then cs.(0).c_open orows
      in
      let rec c_next () =
        if !idx >= Array.length cs then None
        else
          match cs.(!idx).c_next () with
          | Some b -> Some b
          | None ->
              cs.(!idx).c_close ();
              incr idx;
              if !idx < Array.length cs then begin
                cs.(!idx).c_open !orows_r;
                c_next ()
              end
              else None
      in
      { c_open; c_next; c_close = (fun () -> ()) }
  | Plan.Setop_exec { op; left; right } ->
      let cleft = prepare ctx scopes left in
      let cright = prepare ctx scopes right in
      let rset : unit Hkey.t = Hkey.create 64 in
      let seen : unit Hkey.t = Hkey.create 64 in
      let build orows =
        Hkey.reset rset;
        Hkey.reset seen;
        iter_rows cright orows (fun r ->
            meter.hash_build <- meter.hash_build + 1;
            Hkey.replace rset (Array.to_list r) ())
      in
      streaming ~size ~on_open:build cleft (fun _orows r out ->
          meter.hash_probe <- meter.hash_probe + 1;
          let k = Array.to_list r in
          let in_right = Hkey.mem rset k in
          let keep =
            match op with `Intersect -> in_right | `Minus -> not in_right
          in
          if keep && not (Hkey.mem seen k) then begin
            Hkey.add seen k ();
            Vec.push out r
          end)

(* --------------------------------------------------------------- *)
(* Joins                                                             *)
(* --------------------------------------------------------------- *)

(* Split join conjuncts into equi-conjuncts usable as hash/merge keys
   (left expr, right expr) and residual conjuncts. *)
and equi_split left_aliases right_aliases cond =
  let module S = Walk.Sset in
  let aliases_of e = Walk.expr_aliases e in
  List.fold_left
    (fun (keys, residual) c ->
      match c with
      | A.Cmp (A.Eq, a, b) ->
          let aa = aliases_of a and ab = aliases_of b in
          if S.subset aa left_aliases && S.subset ab right_aliases then
            (keys @ [ (a, b) ], residual)
          else if S.subset ab left_aliases && S.subset aa right_aliases then
            (keys @ [ (b, a) ], residual)
          else (keys, residual @ [ c ])
      | _ -> (keys, residual @ [ c ]))
    ([], []) cond

and prepare_join ctx scopes ~meth ~role ~left ~right ~cond =
  let cat = ctx.db.Db.cat in
  let meter = ctx.meter in
  let binds = ctx.binds in
  let size = ctx.size in
  let left_layout = Plan.layout left cat in
  let right_layout = Plan.layout right cat in
  let combined = Array.append left_layout right_layout in
  let right_width = Array.length right_layout in
  let cleft = prepare ctx scopes left in
  let aliases_of_layout l =
    Array.fold_left (fun s (a, _) -> Walk.Sset.add a s) Walk.Sset.empty l
  in
  match meth with
  | Plan.Nested_loop ->
      (* The right side may be correlated to the left row (index probes,
         pushed-down join predicates, TIS-style views). Its result is a
         deterministic function of the correlation values it reads from
         the left row, so it is executed once per distinct combination
         and cached — this models the semijoin/antijoin and subquery
         caching the paper describes (Section 2.1.1). *)
      let run_right =
        match leaf_rows ctx (left_layout :: scopes) right with
        | Some f -> f
        | None ->
            let cright = prepare ctx (left_layout :: scopes) right in
            fun orows -> Vec.to_array (drain cright orows)
      in
      let right_corr = Plan.corr_positions right left_layout in
      let jcond =
        compile_jtest ~meter ~binds ~left:left_layout ~right:right_layout
          scopes cond
      in
      (* 3VL per-conjunct evaluation of the condition, for the
         null-aware antijoin's possible-match check *)
      let fconds3 =
        List.map (Eval.compile_pred ~meter ~binds (combined :: scopes)) cond
      in
      let right_cache : row array Hkey.t = Hkey.create 64 in
      let cached_right l orows =
        let key = Keys.corr meter right_corr l orows in
        match Hkey.find_opt right_cache key with
        | Some rows ->
            meter.subq_cache_hits <- meter.subq_cache_hits + 1;
            rows
        | None ->
            let rows = run_right (l :: orows) in
            Hkey.add right_cache key rows;
            rows
      in
      expanding ~size cleft (fun orows l pending ->
          let rrows = cached_right l orows in
          let nr = Array.length rrows in
          (* per candidate: charge, test the condition — via the
             specialized pair test when no combined row is needed —
             and, for inner/outer roles, append once per match *)
          let joins r =
            match jcond with
            | J_triv -> true
            | J_pair f -> f l r
            | J_gen f ->
                let j = Array.append l r in
                f l r j orows
          in
          match role with
          | Plan.Inner ->
              Array.iter
                (fun r ->
                  meter.rows_joined <- meter.rows_joined + 1;
                  match jcond with
                  | J_triv -> Vec.push pending (Array.append l r)
                  | J_pair f ->
                      if f l r then Vec.push pending (Array.append l r)
                  | J_gen f ->
                      let j = Array.append l r in
                      if f l r j orows then Vec.push pending j)
                rrows
          | Plan.Left_outer ->
              let matched = ref false in
              Array.iter
                (fun r ->
                  meter.rows_joined <- meter.rows_joined + 1;
                  match jcond with
                  | J_triv ->
                      matched := true;
                      Vec.push pending (Array.append l r)
                  | J_pair f ->
                      if f l r then begin
                        matched := true;
                        Vec.push pending (Array.append l r)
                      end
                  | J_gen f ->
                      let j = Array.append l r in
                      if f l r j orows then begin
                        matched := true;
                        Vec.push pending j
                      end)
                rrows;
              if not !matched then
                Vec.push pending
                  (Array.append l (Array.make right_width Value.Null))
          | Plan.Semi ->
              (* stop at first match *)
              let rec go i =
                if i >= nr then false
                else begin
                  meter.rows_joined <- meter.rows_joined + 1;
                  if joins rrows.(i) then true else go (i + 1)
                end
              in
              if go 0 then Vec.push pending l
          | Plan.Anti ->
              let rec go i =
                if i >= nr then true
                else begin
                  meter.rows_joined <- meter.rows_joined + 1;
                  if joins rrows.(i) then false else go (i + 1)
                end
              in
              if go 0 then Vec.push pending l
          | Plan.Anti_na ->
              (* NOT IN semantics: qualify only if every right row
                 definitely mismatches *)
              let rec go i =
                if i >= nr then true
                else begin
                  meter.rows_joined <- meter.rows_joined + 1;
                  let j = Array.append l rrows.(i) in
                  if
                    List.exists (fun f -> f (j :: orows) = Some false) fconds3
                  then go (i + 1)
                  else false
                end
              in
              if go 0 then Vec.push pending l)
  | Plan.Hash ->
      let cright = prepare ctx scopes right in
      let lal = aliases_of_layout left_layout
      and ral = aliases_of_layout right_layout in
      let keys, residual = equi_split lal ral cond in
      if keys = [] then
        invalid_arg "Executor: hash join requires at least one equi-conjunct";
      let flk =
        compile_keys_list ~meter ~binds left_layout scopes (List.map fst keys)
      in
      let frk =
        compile_keys_list ~meter ~binds right_layout scopes (List.map snd keys)
      in
      let jres =
        compile_jtest ~meter ~binds ~left:left_layout ~right:right_layout
          scopes residual
      in
      (* 3VL per-conjunct evaluation of the full condition, used by the
         null-aware antijoin's possible-match check *)
      let fconds3 =
        List.map (Eval.compile_pred ~meter ~binds (combined :: scopes)) cond
      in
      (* Combined output rows of [l] joined to each candidate, residual
         applied; the append happens once per surviving row, and not at
         all when the specialized test rejects. Charges [rows_joined]
         per candidate, exactly as the list engine's filter did. *)
      let combine l orows cands =
        match jres with
        | J_triv ->
            List.map
              (fun r ->
                meter.rows_joined <- meter.rows_joined + 1;
                Array.append l r)
              cands
        | J_pair f ->
            List.filter_map
              (fun r ->
                meter.rows_joined <- meter.rows_joined + 1;
                if f l r then Some (Array.append l r) else None)
              cands
        | J_gen f ->
            List.filter_map
              (fun r ->
                meter.rows_joined <- meter.rows_joined + 1;
                let j = Array.append l r in
                if f l r j orows then Some j else None)
              cands
      (* match existence for semi/anti roles: every candidate is still
         charged and (for generic residuals, which may call expensive
         functions) evaluated, as the list engine's filter did *)
      and any_match l orows cands =
        match jres with
        | J_triv ->
            List.iter
              (fun _ -> meter.rows_joined <- meter.rows_joined + 1)
              cands;
            cands <> []
        | J_pair f ->
            List.fold_left
              (fun acc r ->
                meter.rows_joined <- meter.rows_joined + 1;
                acc || f l r)
              false cands
        | J_gen f ->
            List.fold_left
              (fun acc r ->
                meter.rows_joined <- meter.rows_joined + 1;
                let j = Array.append l r in
                let m = f l r j orows in
                acc || m)
              false cands
      in
      (* Bucketed build table. Single-column keys — the overwhelmingly
         common fk equi-join — go through the [Value.t]-keyed table;
         wider keys through the generic list-keyed one. Buckets are
         mutable cells so the build does one lookup per row; candidate
         lists keep the reverse-build order of the list engine. [p_add]
         returns whether the build key contains NULL (such rows are not
         bucketed); [p_find] returns the candidates and whether the
         probe key contains NULL. *)
      let p_reset, p_add, p_find =
        match keys with
        | [ (le, re) ] ->
            let flk1 = compile_scalar ~meter ~binds left_layout scopes le in
            let frk1 = compile_scalar ~meter ~binds right_layout scopes re in
            let tbl : row list ref Hval.t = Hval.create 256 in
            ( (fun () -> Hval.reset tbl),
              (fun r orows ->
                let k = frk1 r orows in
                if Value.is_null k then true
                else begin
                  (match Hval.find_opt tbl k with
                  | Some cell -> cell := r :: !cell
                  | None -> Hval.add tbl k (ref [ r ]));
                  false
                end),
              fun l orows ->
                let k = flk1 l orows in
                if Value.is_null k then ([], true)
                else
                  ( (match Hval.find_opt tbl k with
                    | Some cell -> !cell
                    | None -> []),
                    false ) )
        | _ ->
            let tbl : row list ref Hkey.t = Hkey.create 256 in
            ( (fun () -> Hkey.reset tbl),
              (fun r orows ->
                let kv = frk r orows in
                if List.exists Value.is_null kv then true
                else begin
                  (match Hkey.find_opt tbl kv with
                  | Some cell -> cell := r :: !cell
                  | None -> Hkey.add tbl kv (ref [ r ]));
                  false
                end),
              fun l orows ->
                let kv = flk l orows in
                if List.exists Value.is_null kv then ([], true)
                else
                  ( (match Hkey.find_opt tbl kv with
                    | Some cell -> !cell
                    | None -> []),
                    false ) )
      in
      let right_with_null = ref [] in
      let right_all = ref [] in
      let right_count = ref 0 in
      (* only the null-aware antijoin re-reads build rows outside the
         buckets; other roles skip tracking them *)
      let track_all = match role with Plan.Anti_na -> true | _ -> false in
      (* build side: streamed straight into the buckets *)
      let build orows =
        p_reset ();
        right_with_null := [];
        right_all := [];
        right_count := 0;
        iter_rows cright orows (fun r ->
            incr right_count;
            meter.hash_build <- meter.hash_build + 1;
            if track_all then right_all := r :: !right_all;
            let null_key = p_add r orows in
            if null_key && track_all then
              right_with_null := r :: !right_with_null)
      in
      expanding ~size ~on_open:build cleft (fun orows l pending ->
          meter.hash_probe <- meter.hash_probe + 1;
          let cands, has_null = p_find l orows in
          match role with
          | Plan.Inner ->
              List.iter (fun j -> Vec.push pending j) (combine l orows cands)
          | Plan.Left_outer -> (
              match combine l orows cands with
              | [] ->
                  Vec.push pending
                    (Array.append l (Array.make right_width Value.Null))
              | ms -> List.iter (fun j -> Vec.push pending j) ms)
          | Plan.Semi -> if any_match l orows cands then Vec.push pending l
          | Plan.Anti ->
              if not (any_match l orows cands) then Vec.push pending l
          | Plan.Anti_na ->
              if !right_count = 0 then Vec.push pending l
              else if any_match l orows cands then ()
              else
                (* NOT IN semantics: the left row is dropped unless
                   every right row definitely mismatches. Candidate
                   possible-matches: rows in the probe bucket (residual
                   may have been UNKNOWN), null-key rows, and — when
                   the probe key itself has NULLs — every right row.
                   A candidate is a possible match if no conjunct of
                   the full condition evaluates to definitely-false. *)
                let candidates =
                  if has_null then !right_all else cands @ !right_with_null
                in
                let possible =
                  List.exists
                    (fun r ->
                      meter.rows_joined <- meter.rows_joined + 1;
                      let j = Array.append l r in
                      not
                        (List.exists
                           (fun f -> f (j :: orows) = Some false)
                           fconds3))
                    candidates
                in
                if not possible then Vec.push pending l)
  | Plan.Merge ->
      let cright = prepare ctx scopes right in
      let lal = aliases_of_layout left_layout
      and ral = aliases_of_layout right_layout in
      let keys, residual = equi_split lal ral cond in
      if keys = [] then
        invalid_arg "Executor: merge join requires at least one equi-conjunct";
      let flk =
        compile_keys_arr ~meter ~binds left_layout scopes (List.map fst keys)
      in
      let frk =
        compile_keys_arr ~meter ~binds right_layout scopes (List.map snd keys)
      in
      let jres =
        compile_jtest ~meter ~binds ~left:left_layout ~right:right_layout
          scopes residual
      in
      breaker (fun orows ->
          (* both inputs are pipeline breakers: materialize, decorate
             with key tuples computed once per row, sort, merge *)
          let lv = drain cleft orows in
          let rv = drain cright orows in
          let deco v fk =
            Array.init (Vec.length v) (fun i ->
                let r = Vec.get v i in
                (fk r orows, r))
          in
          let la = deco lv flk and ra = deco rv frk in
          charge_sort ctx (Array.length la);
          charge_sort ctx (Array.length ra);
          let cmpk (k1, _) (k2, _) = cmp_keys k1 k2 in
          Array.stable_sort cmpk la;
          Array.stable_sort cmpk ra;
          let result = Vec.create () in
          let nl = Array.length la and nr = Array.length ra in
          let i = ref 0 and j = ref 0 in
          (* two-pointer merge over the sorted runs *)
          while !i < nl do
            let lk, l = la.(!i) in
            if Array.exists Value.is_null lk then begin
              (* null keys never match *)
              (match role with Plan.Anti -> Vec.push result l | _ -> ());
              incr i
            end
            else if !j >= nr then begin
              (match role with Plan.Anti -> Vec.push result l | _ -> ());
              incr i
            end
            else begin
              let rk, _ = ra.(!j) in
              let c = cmp_keys lk rk in
              if c < 0 then begin
                (match role with Plan.Anti -> Vec.push result l | _ -> ());
                incr i
              end
              else if c > 0 then incr j
              else begin
                (* gather the right group with this key, then consume
                   the run of left rows sharing it *)
                let g_end = ref (!j + 1) in
                while !g_end < nr && cmp_keys (fst ra.(!g_end)) rk = 0 do
                  incr g_end
                done;
                let continue_left = ref true in
                while !continue_left && !i < nl do
                  let lk', l' = la.(!i) in
                  if cmp_keys lk' rk = 0 then begin
                    (match role with
                    | Plan.Inner ->
                        (* combined rows consed in descending group
                           order, so the output comes out ascending;
                           one append per surviving row *)
                        let matches = ref [] in
                        for g = !g_end - 1 downto !j do
                          let _, r = ra.(g) in
                          meter.rows_joined <- meter.rows_joined + 1;
                          match jres with
                          | J_triv -> matches := Array.append l' r :: !matches
                          | J_pair f ->
                              if f l' r then
                                matches := Array.append l' r :: !matches
                          | J_gen f ->
                              let jr = Array.append l' r in
                              if f l' r jr orows then matches := jr :: !matches
                        done;
                        List.iter (Vec.push result) !matches
                    | Plan.Semi | Plan.Anti ->
                        (* every candidate is charged and (for generic
                           residuals) evaluated, as before *)
                        let matched = ref false in
                        for g = !g_end - 1 downto !j do
                          let _, r = ra.(g) in
                          meter.rows_joined <- meter.rows_joined + 1;
                          let m =
                            match jres with
                            | J_triv -> true
                            | J_pair f -> f l' r
                            | J_gen f ->
                                let jr = Array.append l' r in
                                f l' r jr orows
                          in
                          if m then matched := true
                        done;
                        let keep =
                          match role with Plan.Semi -> !matched | _ -> not !matched
                        in
                        if keep then Vec.push result l'
                    | _ ->
                        invalid_arg
                          "Executor: merge join supports inner/semi/anti only");
                    incr i
                  end
                  else continue_left := false
                done;
                incr j
              end
            end
          done;
          result)

and prepare_subq_filter ctx scopes child preds =
  let cat = ctx.db.Db.cat in
  let meter = ctx.meter in
  let binds = ctx.binds in
  let child_layout = Plan.layout child cat in
  let cchild = prepare ctx scopes child in
  let inner_scopes = child_layout :: scopes in
  (* Each subquery plan is a deterministic function of its correlation
     columns (the child-row positions it reads) and the outer scopes;
     its result rows are computed once per distinct combination and
     cached — the subquery-filter caching of Section 2.1.1. The
     predicate itself (EXISTS / IN / comparison) is then evaluated per
     candidate row against the cached result. Caches live at prepare
     time, so they persist across re-executions of this node. *)
  let cached_rows plan =
    let cplan = prepare ctx inner_scopes plan in
    let positions = Plan.corr_positions plan child_layout in
    let cache : row array Hkey.t = Hkey.create 64 in
    fun (r : row) (orows : row list) ->
      let key = Keys.corr meter positions r orows in
      match Hkey.find_opt cache key with
      | Some rows ->
          meter.subq_cache_hits <- meter.subq_cache_hits + 1;
          rows
      | None ->
          meter.subq_execs <- meter.subq_execs + 1;
          let rows = Vec.to_array (drain cplan (r :: orows)) in
          Hkey.add cache key rows;
          rows
  in
  let compiled =
    List.map
      (fun sp ->
        match sp with
        | Plan.SP_exists { negated; plan } ->
            let rows_of = cached_rows plan in
            fun (r : row) orows ->
              let non_empty = Array.length (rows_of r orows) > 0 in
              Some (if negated then not non_empty else non_empty)
        | Plan.SP_in { negated; lhs; plan } ->
            let flhs =
              List.map (Eval.compile_expr ~meter ~binds inner_scopes) lhs
            in
            let rows_of = cached_rows plan in
            let width = List.length lhs in
            (* per inner-result index: hash set of null-free keys plus
               the rows containing NULLs (checked with 3VL) *)
            let index_cache : (unit Vkey.t * row list * bool) Hkey.t =
              Hkey.create 16
            in
            let index_of key inner =
              match Hkey.find_opt index_cache key with
              | Some ix -> ix
              | None ->
                  let set = ref Vkey.empty in
                  let nulls = ref [] in
                  Array.iter
                    (fun (ir : row) ->
                      meter.hash_build <- meter.hash_build + 1;
                      let kv = List.init width (fun i -> ir.(i)) in
                      if List.exists Value.is_null kv then nulls := ir :: !nulls
                      else set := Vkey.add kv () !set)
                    inner;
                  let ix = (!set, !nulls, Array.length inner > 0) in
                  Hkey.add index_cache key ix;
                  ix
            in
            let positions = Plan.corr_positions plan child_layout in
            fun r orows ->
              let lvals = List.map (fun f -> f (r :: orows)) flhs in
              let inner = rows_of r orows in
              let key = Keys.corr meter positions r orows in
              let set, null_rows, non_empty = index_of key inner in
              meter.hash_probe <- meter.hash_probe + 1;
              let lhs_has_null = List.exists Value.is_null lvals in
              let truth =
                if not non_empty then Some false
                else if (not lhs_has_null) && Vkey.mem lvals set then Some true
                else
                  (* possible UNKNOWN matches: rows with NULL components,
                     or (when the probe itself has NULLs) any row whose
                     other components do not definitely mismatch *)
                  let possible_unknown (ir : row) =
                    let rec go i = function
                      | [] -> true
                      | v :: rest -> (
                          match Value.compare_sql v ir.(i) with
                          | Some c when c <> 0 -> false
                          | _ -> go (i + 1) rest)
                    in
                    meter.rows_joined <- meter.rows_joined + 1;
                    go 0 lvals
                  in
                  if lhs_has_null then
                    if width = 1 then None
                    else if
                      List.exists possible_unknown null_rows
                      || Vkey.exists
                           (fun kv () ->
                             meter.rows_joined <- meter.rows_joined + 1;
                             let rec go ls ks =
                               match (ls, ks) with
                               | [], [] -> true
                               | l :: ls', k :: ks' -> (
                                   match Value.compare_sql l k with
                                   | Some c when c <> 0 -> false
                                   | _ -> go ls' ks')
                               | _ -> false
                             in
                             go lvals kv)
                           set
                    then None
                    else Some false
                  else if List.exists possible_unknown null_rows then None
                  else Some false
              in
              (match truth with
              | Some b -> Some (if negated then not b else b)
              | None -> None)
        | Plan.SP_cmp { op; lhs; quant; plan } ->
            let flhs = Eval.compile_expr ~meter ~binds inner_scopes lhs in
            let rows_of = cached_rows plan in
            let test = Eval.cmp_test op in
            let positions = Plan.corr_positions plan child_layout in
            (* per inner-result statistics for quantified comparisons:
               min / max / null presence / distinct-value set of the
               first output column *)
            let stats_cache :
                (Value.t * Value.t * bool * unit Vkey.t) Hkey.t =
              Hkey.create 16
            in
            let stats_of key inner =
              match Hkey.find_opt stats_cache key with
              | Some st -> st
              | None ->
                  let mn = ref Value.Null
                  and mx = ref Value.Null
                  and has_null = ref false
                  and set = ref Vkey.empty in
                  Array.iter
                    (fun (ir : row) ->
                      meter.hash_build <- meter.hash_build + 1;
                      let v = ir.(0) in
                      if Value.is_null v then has_null := true
                      else (
                        set := Vkey.add [ v ] () !set;
                        if Value.is_null !mn || Value.compare_total v !mn < 0
                        then mn := v;
                        if Value.is_null !mx || Value.compare_total v !mx > 0
                        then mx := v))
                    inner;
                  let st = (!mn, !mx, !has_null, !set) in
                  Hkey.add stats_cache key st;
                  st
            in
            fun r orows ->
              let lval = flhs (r :: orows) in
              let inner = rows_of r orows in
              match quant with
              | None -> (
                  match Array.length inner with
                  | 0 -> None (* scalar subquery over empty input: NULL *)
                  | 1 ->
                      Option.map test (Value.compare_sql lval inner.(0).(0))
                  | _ ->
                      raise
                        (Runtime_error
                           "scalar subquery returned more than one row"))
              | Some q ->
                  let key = Keys.corr meter positions r orows in
                  let mn, mx, has_null, set = stats_of key inner in
                  meter.hash_probe <- meter.hash_probe + 1;
                  let n_distinct = Vkey.cardinal set in
                  if Array.length inner = 0 then
                    Some (match q with A.Q_any -> false | A.Q_all -> true)
                  else if Value.is_null lval then None
                  else
                    let some_true, some_false =
                      (* does lval op s hold for some / fail for some
                         non-null s? derived from min/max/set *)
                      match op with
                      | A.Eq ->
                          let m = Vkey.mem [ lval ] set in
                          (m, n_distinct > 1 || not m)
                      | A.Ne ->
                          let m = Vkey.mem [ lval ] set in
                          (n_distinct > 1 || not m, m)
                      | A.Lt ->
                          ( (n_distinct > 0 && Value.compare_total lval mx < 0),
                            n_distinct > 0 && Value.compare_total lval mn >= 0
                          )
                      | A.Le ->
                          ( (n_distinct > 0 && Value.compare_total lval mx <= 0),
                            n_distinct > 0 && Value.compare_total lval mn > 0 )
                      | A.Gt ->
                          ( (n_distinct > 0 && Value.compare_total lval mn > 0),
                            n_distinct > 0 && Value.compare_total lval mx <= 0
                          )
                      | A.Ge ->
                          ( (n_distinct > 0 && Value.compare_total lval mn >= 0),
                            n_distinct > 0 && Value.compare_total lval mx < 0 )
                    in
                    (match q with
                    | A.Q_any ->
                        if some_true then Some true
                        else if has_null then None
                        else Some false
                    | A.Q_all ->
                        if some_false then Some false
                        else if has_null then None
                        else Some true))
      preds
  in
  streaming ~size:ctx.size cchild (fun orows r out ->
      if List.for_all (fun f -> f r orows = Some true) compiled then
        Vec.push out r)

and prepare_aggregate ctx scopes child strategy keys aggs =
  let cat = ctx.db.Db.cat in
  let meter = ctx.meter in
  let binds = ctx.binds in
  let child_layout = Plan.layout child cat in
  let cchild = prepare ctx scopes child in
  let fkeys =
    compile_keys_list ~meter ~binds child_layout scopes (List.map fst keys)
  in
  let faggs =
    List.map
      (fun (_, a, eo, dist) ->
        ( a,
          Option.map (compile_scalar ~meter ~binds child_layout scopes) eo,
          dist ))
      aggs
  in
  if keys = [] then
    (* Scalar aggregate: exactly one output row, no group table.
       Aggregates on nested-loop inner sides and in TIS subquery plans
       run once per outer row with tiny inputs, so the per-execution
       constant matters; charges (agg_rows, sort) are identical to the
       grouped path over an empty key. *)
    breaker (fun orows ->
        let accs = List.map (fun _ -> acc_create ()) faggs in
        let n = ref 0 in
        iter_rows cchild orows (fun r ->
            incr n;
            meter.agg_rows <- meter.agg_rows + 1;
            List.iter2
              (fun (_, feo, dist) acc ->
                match feo with
                | None -> ()
                | Some f -> acc_add dist acc (f r orows))
              faggs accs);
        (match strategy with
        | `Sort -> charge_sort ctx !n
        | `Hash -> ());
        let result = Vec.create ~cap:1 () in
        (if !n = 0 then
           (* scalar aggregate over empty input: one row *)
           Vec.push result
             (Array.of_list
                (List.map
                   (fun (a, _, _) ->
                     match a with
                     | A.Count_star | A.Count -> Value.Int 0
                     | _ -> Value.Null)
                   faggs))
         else
           Vec.push result
             (Array.of_list
                (List.map2
                   (fun (a, _, _) acc -> acc_result a acc ~rows_in_group:!n)
                   faggs accs)));
        result)
  else begin
  (* the group table lives at prepare time and is cleared per
     execution: aggregates on nested-loop inner sides run once per
     outer row, and a fresh table per run would dominate them *)
  let groups = Hkey.create 16 in
  breaker (fun orows ->
      Hkey.reset groups;
      let order = ref [] in
      let nin = ref 0 in
      iter_rows cchild orows (fun r ->
          incr nin;
          meter.agg_rows <- meter.agg_rows + 1;
          let kv = fkeys r orows in
          let entry =
            match Hkey.find_opt groups kv with
            | Some e -> e
            | None ->
                let e = (ref 0, List.map (fun _ -> acc_create ()) faggs) in
                Hkey.add groups kv e;
                order := kv :: !order;
                e
          in
          let nrows, accs = entry in
          incr nrows;
          List.iter2
            (fun (_, feo, dist) acc ->
              match feo with
              | None -> ()
              | Some f -> acc_add dist acc (f r orows))
            faggs accs);
      (match strategy with
      | `Sort -> charge_sort ctx !nin
      | `Hash -> ());
      let emit kv =
        let nrows, accs = Hkey.find groups kv in
        let aggvals =
          List.map2
            (fun (a, _, _) acc -> acc_result a acc ~rows_in_group:!nrows)
            faggs accs
        in
        Array.of_list (kv @ aggvals)
      in
      let result = Vec.create () in
      List.iter (fun kv -> Vec.push result (emit kv)) (List.rev !order);
      result)
  end

(* Per-partition aggregation: the same fold as {!prepare_aggregate}
   (hash strategy, no DISTINCT), but emitting accumulator-{e state}
   rows instead of final values — group keys followed by one state
   column per aggregate (Avg decomposes into running sum + non-null
   count, the only decomposition that recombines exactly; see
   {!Plan.partial_state_cols}). Charges [agg_rows] per input row,
   exactly like [Aggregate]. A scalar (keyless) partial emits its one
   state row even over empty input, so every exchange task contributes
   exactly one row to the final combine. *)
and prepare_partial_agg ctx scopes child keys aggs =
  let cat = ctx.db.Db.cat in
  let meter = ctx.meter in
  let binds = ctx.binds in
  let child_layout = Plan.layout child cat in
  let cchild = prepare ctx scopes child in
  let fkeys =
    compile_keys_list ~meter ~binds child_layout scopes (List.map fst keys)
  in
  let faggs =
    List.map
      (fun (_, a, eo) ->
        (a, Option.map (compile_scalar ~meter ~binds child_layout scopes) eo))
      aggs
  in
  let fold_row orows faggs accs r =
    List.iter2
      (fun (_, feo) acc ->
        match feo with
        | None -> ()
        | Some f -> acc_add false acc (f r orows))
      faggs accs
  in
  let states_of nrows accs =
    List.concat
      (List.map2
         (fun (a, _) acc ->
           match a with
           | A.Count_star -> [ Value.Int nrows ]
           | A.Count -> [ Value.Int acc.a_count ]
           | A.Sum -> [ acc.a_sum ]
           | A.Min -> [ acc.a_min ]
           | A.Max -> [ acc.a_max ]
           | A.Avg -> [ acc.a_sum; Value.Int acc.a_count ])
         faggs accs)
  in
  if keys = [] then
    breaker (fun orows ->
        let accs = List.map (fun _ -> acc_create ()) faggs in
        let n = ref 0 in
        iter_rows cchild orows (fun r ->
            incr n;
            meter.agg_rows <- meter.agg_rows + 1;
            fold_row orows faggs accs r);
        let result = Vec.create ~cap:1 () in
        Vec.push result (Array.of_list (states_of !n accs));
        result)
  else begin
    let groups = Hkey.create 16 in
    breaker (fun orows ->
        Hkey.reset groups;
        let order = ref [] in
        iter_rows cchild orows (fun r ->
            meter.agg_rows <- meter.agg_rows + 1;
            let kv = fkeys r orows in
            let entry =
              match Hkey.find_opt groups kv with
              | Some e -> e
              | None ->
                  let e = (ref 0, List.map (fun _ -> acc_create ()) faggs) in
                  Hkey.add groups kv e;
                  order := kv :: !order;
                  e
            in
            let nrows, accs = entry in
            incr nrows;
            fold_row orows faggs accs r);
        let result = Vec.create () in
        List.iter
          (fun kv ->
            let nrows, accs = Hkey.find groups kv in
            Vec.push result (Array.of_list (kv @ states_of !nrows accs)))
          (List.rev !order);
        result)
  end

(* Combine {!Plan.Partial_agg} state rows into final aggregate values.
   Groups by the first [nkeys] positions of the state layout (the keys
   come through the partials verbatim), folds each aggregate's state
   column(s) with the null-aware machinery, and emits groups in
   first-seen order over the input stream — which, partials arriving in
   ascending partition order, is deterministic at every dop. Charges
   [agg_rows] per state row. *)
and prepare_final_agg ctx scopes child keys aggs =
  let meter = ctx.meter in
  let cchild = prepare ctx scopes child in
  let nkeys = List.length keys in
  (* reader position of each aggregate's state in the child layout *)
  let readers =
    let pos = ref nkeys in
    List.map
      (fun (_, a) ->
        let p = !pos in
        (pos := !pos + (match a with A.Avg -> 2 | _ -> 1));
        (a, p))
      aggs
  in
  let int_of = function Value.Int n -> n | _ -> 0 in
  let merge_sum acc v =
    if not (Value.is_null v) then
      acc.a_sum <-
        (if Value.is_null acc.a_sum then v else Value.arith `Add acc.a_sum v)
  in
  let combine acc (a : A.agg) (r : row) (p : int) =
    match a with
    | A.Count_star | A.Count -> acc.a_count <- acc.a_count + int_of r.(p)
    | A.Sum -> merge_sum acc r.(p)
    | A.Min ->
        let v = r.(p) in
        if not (Value.is_null v) then
          acc.a_min <-
            (if Value.is_null acc.a_min || Value.compare_total v acc.a_min < 0
             then v
             else acc.a_min)
    | A.Max ->
        let v = r.(p) in
        if not (Value.is_null v) then
          acc.a_max <-
            (if Value.is_null acc.a_max || Value.compare_total v acc.a_max > 0
             then v
             else acc.a_max)
    | A.Avg ->
        merge_sum acc r.(p);
        acc.a_count <- acc.a_count + int_of r.(p + 1)
  in
  let final_of (a : A.agg) acc =
    match a with
    | A.Count_star | A.Count -> Value.Int acc.a_count
    | A.Sum -> acc.a_sum
    | A.Min -> acc.a_min
    | A.Max -> acc.a_max
    | A.Avg ->
        if acc.a_count = 0 then Value.Null
        else Value.arith `Div acc.a_sum (Value.Int acc.a_count)
  in
  if nkeys = 0 then
    (* scalar combine: empty input (an exchange whose every partition
       was pruned) falls out naturally — COUNT 0, other aggregates
       NULL, the scalar-aggregate convention *)
    breaker (fun orows ->
        let accs = List.map (fun _ -> acc_create ()) readers in
        iter_rows cchild orows (fun r ->
            meter.agg_rows <- meter.agg_rows + 1;
            List.iter2 (fun (a, p) acc -> combine acc a r p) readers accs);
        let result = Vec.create ~cap:1 () in
        Vec.push result
          (Array.of_list
             (List.map2 (fun (a, _) acc -> final_of a acc) readers accs));
        result)
  else begin
    let groups = Hkey.create 16 in
    breaker (fun orows ->
        Hkey.reset groups;
        let order = ref [] in
        iter_rows cchild orows (fun r ->
            meter.agg_rows <- meter.agg_rows + 1;
            let kv = List.init nkeys (fun i -> r.(i)) in
            let accs =
              match Hkey.find_opt groups kv with
              | Some accs -> accs
              | None ->
                  let accs = List.map (fun _ -> acc_create ()) readers in
                  Hkey.add groups kv accs;
                  order := kv :: !order;
                  accs
            in
            List.iter2 (fun (a, p) acc -> combine acc a r p) readers accs);
        let result = Vec.create () in
        List.iter
          (fun kv ->
            let accs = Hkey.find groups kv in
            Vec.push result
              (Array.of_list
                 (kv
                 @ List.map2 (fun (a, _) acc -> final_of a acc) readers accs)))
          (List.rev !order);
        result)
  end

(* Partition-parallel execution of [child]. The task list is the
   ascending union of the pruning survivors of every [Part_scan] in the
   subtree — a pure function of the prune specs and the bind vector,
   identical at every dop. Each task re-prepares the child with a fresh
   context: its own meter, its own analyze table, [restrict = Some t]
   so every partitioned scan reads only partition [t], and the row
   engine forced (the columnar image cache is not domain-safe; row and
   vector are meter-equal, so the choice is unobservable). The
   coordinator merges in ascending task order: rows concatenate, task
   meters [Meter.add] into the parent (commutative integer sums), task
   node stats fold into the parent's analyze table keyed by the shared
   plan-node identity. With [dop <= 1] {!Exchange.run_tasks} runs the
   same per-task closures on the calling domain — same code path, so
   rows and merged meters are bit-identical to any parallel dop. *)
and prepare_exchange ctx scopes child dop =
  match Plan.part_scans child with
  | [] ->
      (* no partitioned scan below: nothing to fan out over *)
      prepare ctx scopes child
  | scans ->
      Cursor.prewarm_metrics ();
      let specs =
        List.map
          (fun (table, pr) ->
            let rel = Db.relation ctx.db table in
            match Relation.part rel with
            | Some pt -> (pt.Relation.p_spec, pr)
            | None ->
                invalid_arg
                  (Printf.sprintf
                     "Executor: EXCHANGE over unpartitioned PART SCAN of %s"
                     table))
          scans
      in
      (* freeze the planner's cardinality hints for the subtree before
         any domain is spawned: the hint source may memoize internally
         and must not be raced *)
      let frozen = Ptbl.create 32 in
      let rec freeze p =
        if not (Ptbl.mem frozen p) then begin
          Ptbl.replace frozen p (ctx.card_of p);
          List.iter freeze (Plan.children p)
        end
      in
      freeze child;
      let fcard p = Option.join (Ptbl.find_opt frozen p) in
      let binds = ctx.binds in
      let run_task orows t =
        let m = Meter.create () in
        let tbl =
          match ctx.analyze with
          | None -> None
          | Some _ -> Some (Ptbl.create 16)
        in
        let tctx =
          {
            ctx with
            meter = m;
            analyze = tbl;
            card_of = fcard;
            engine = Row;
            estats = None;
            restrict = Some t;
          }
        in
        let rows = drain (prepare tctx scopes child) orows in
        (rows, m, tbl)
      in
      breaker (fun orows ->
          let module Iset = Set.Make (Int) in
          let tasks =
            Iset.elements
              (List.fold_left
                 (fun acc (ps, pr) ->
                   List.fold_left
                     (fun acc i -> Iset.add i acc)
                     acc
                     (Prune.survivors_runtime ~binds ps pr))
                 Iset.empty specs)
          in
          (* pruning accounted once per execution, per scan *)
          List.iter
            (fun (ps, pr) ->
              let s = List.length (Prune.survivors_runtime ~binds ps pr) in
              count_parts ctx.estats ~scanned:s
                ~pruned:(ps.Catalog.ps_n - s))
            specs;
          if tasks <> [] then
            observe_dop ctx.estats (max 1 (min dop (List.length tasks)));
          let results = Exchange.run_tasks ~dop ~tasks ~f:(run_task orows) in
          let out = Vec.create () in
          List.iter
            (fun (_, (rows, m, tbl)) ->
              Meter.add ctx.meter m;
              (match (ctx.analyze, tbl) with
              | Some main, Some sub ->
                  Ptbl.iter
                    (fun node st ->
                      let dst = node_stat_of main node in
                      dst.ns_calls <- dst.ns_calls + st.ns_calls;
                      dst.ns_rows <- dst.ns_rows + st.ns_rows;
                      Meter.add dst.ns_meter st.ns_meter;
                      dst.ns_engine <- st.ns_engine;
                      dst.ns_sel_in <- dst.ns_sel_in + st.ns_sel_in)
                    sub
              | _ -> ());
              Vec.iter (Vec.push out) rows)
            results;
          out)

and prepare_window ctx scopes child wins =
  let cat = ctx.db.Db.cat in
  let meter = ctx.meter in
  let binds = ctx.binds in
  let child_layout = Plan.layout child cat in
  let inner = child_layout :: scopes in
  let cchild = prepare ctx scopes child in
  let fwins =
    List.map
      (fun (_, a, eo, (w : A.win)) ->
        ( a,
          Option.map (Eval.compile_expr ~meter ~binds inner) eo,
          List.map (Eval.compile_expr ~meter ~binds inner) w.w_pby,
          List.map (fun (e, _) -> Eval.compile_expr ~meter ~binds inner e)
            w.w_oby,
          Array.of_list (List.map snd w.w_oby) ))
      wins
  in
  breaker (fun orows ->
      let v = drain cchild orows in
      (* For each window function, compute per-row values; RANGE
         UNBOUNDED PRECEDING .. CURRENT ROW cumulative semantics with
         peer rows (equal ORDER BY keys) sharing the same result. *)
      let n = Vec.length v in
      let results = List.map (fun _ -> Array.make n Value.Null) fwins in
      List.iteri
        (fun wi (a, feo, fpby, foby, dirs) ->
          let store = List.nth results wi in
          (* partition *)
          let parts = ref Vkey.empty in
          for i = 0 to n - 1 do
            let r = Vec.get v i in
            meter.agg_rows <- meter.agg_rows + 1;
            let pk = List.map (fun f -> f (r :: orows)) fpby in
            let cur = try Vkey.find pk !parts with Not_found -> [] in
            parts := Vkey.add pk ((i, r) :: cur) !parts
          done;
          Vkey.iter
            (fun _ members ->
              let members = List.rev members in
              (* decorate-sort-undecorate over the partition: ORDER BY
                 keys are computed once per row *)
              let deco =
                List.map
                  (fun ((_, r) as m) ->
                    ( Array.of_list
                        (List.map (fun f -> f (r :: orows)) foby),
                      m ))
                  members
              in
              charge_sort ctx (List.length deco);
              let sorted =
                List.stable_sort
                  (fun (k1, _) (k2, _) -> cmp_keys_dirs dirs k1 k2)
                  deco
              in
              (* walk peer groups cumulatively *)
              let acc = acc_create () in
              let rows_so_far = ref 0 in
              let rec walk = function
                | [] -> ()
                | ((k1, _) :: _ as rest) ->
                    let peers, others =
                      List.partition (fun (k, _) -> cmp_keys k k1 = 0) rest
                    in
                    List.iter
                      (fun (_, (_, r)) ->
                        incr rows_so_far;
                        match feo with
                        | None -> ()
                        | Some f -> acc_add false acc (f (r :: orows)))
                      peers;
                    let value = acc_result a acc ~rows_in_group:!rows_so_far in
                    List.iter (fun (_, (i, _)) -> store.(i) <- value) peers;
                    walk others
              in
              walk sorted)
            !parts)
        fwins;
      let result = Vec.create ~cap:(max 1 n) () in
      for i = 0 to n - 1 do
        Vec.push result
          (Array.append (Vec.get v i)
             (Array.of_list (List.map (fun store -> store.(i)) results)))
      done;
      result)

(* --------------------------------------------------------------- *)
(* Entry points                                                      *)
(* --------------------------------------------------------------- *)

let default_batch_size = 256

(** [Auto] vectorizes a pipeline when the planner's cardinality
    estimate for its source scan reaches this. Tiny pipelines — the
    re-opened inner sides of nested-loop joins, subquery plans over
    small tables — stay on the row path, whose per-execution constant
    is lower than a chain's segment setup. *)
let default_vector_threshold = 256.

let run_root (ctx : ctx) (plan : Plan.t) : row list =
  let acc = ref [] in
  iter_rows (prepare ctx [] plan) [] (fun r -> acc := r :: !acc);
  List.rev !acc

(** Execute a complete (uncorrelated) plan against [db]. Returns the
    output layout and rows; work is charged to [meter]. [batch_size]
    (default {!default_batch_size}) sets the rows-per-block capacity;
    results and meter totals do not depend on it — nor on the engine
    choice. [engine] picks the execution engine ([Auto] consults
    [card_of], the planner's per-node cardinality hint, against
    [vector_threshold]); [engine_stats] receives per-pipeline choice
    counts when provided. *)
let execute ?meter ?(binds = [||]) ?(batch_size = default_batch_size)
    ?(engine = Auto) ?(card_of = fun _ -> None)
    ?(vector_threshold = default_vector_threshold) ?engine_stats (db : Db.t)
    (plan : Plan.t) : layout * row list * Meter.t =
  let meter = match meter with Some m -> m | None -> Meter.create () in
  let ctx =
    {
      db;
      meter;
      analyze = None;
      binds;
      size = batch_size;
      engine;
      card_of;
      vector_threshold;
      estats = engine_stats;
      restrict = None;
    }
  in
  let rows = run_root ctx plan in
  (Plan.layout plan db.Db.cat, rows, meter)

(** Like {!execute} but with per-operator instrumentation (EXPLAIN
    ANALYZE). The returned lookup maps a plan node (by physical
    identity) to its accumulated {!node_stat}; nodes the execution
    never reached have no entry. *)
let execute_analyzed ?meter ?(binds = [||])
    ?(batch_size = default_batch_size) ?(engine = Auto)
    ?(card_of = fun _ -> None)
    ?(vector_threshold = default_vector_threshold) ?engine_stats (db : Db.t)
    (plan : Plan.t) :
    layout * row list * Meter.t * (Plan.t -> node_stat option) =
  let meter = match meter with Some m -> m | None -> Meter.create () in
  let tbl = Ptbl.create 64 in
  let ctx =
    {
      db;
      meter;
      analyze = Some tbl;
      binds;
      size = batch_size;
      engine;
      card_of;
      vector_threshold;
      estats = engine_stats;
      restrict = None;
    }
  in
  let rows = run_root ctx plan in
  (Plan.layout plan db.Db.cat, rows, meter, fun p -> Ptbl.find_opt tbl p)

(** Multiset equality of result sets, used by the equivalence tests:
    transformations must preserve the bag of result rows (row order is
    only significant beneath an ORDER BY, which our comparisons sort
    away). *)
let rows_equal_multiset (r1 : row list) (r2 : row list) : bool =
  let norm rows =
    List.sort
      (fun a b ->
        List.compare Value.compare_total (Array.to_list a) (Array.to_list b))
      rows
  in
  List.length r1 = List.length r2
  && List.for_all2
       (fun a b ->
         List.compare Value.compare_total (Array.to_list a) (Array.to_list b)
         = 0)
       (norm r1) (norm r2)
