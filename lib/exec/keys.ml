(** Cache-key construction for the TIS subquery-filter and
    nested-loop-inner result caches (Section 2.1.1).

    A cached sub-plan is a deterministic function of the correlation
    values it reads from the current candidate row plus the full outer
    correlation stack, so its cache key is the concatenation of those
    values. The previous executor built this with
    [List.concat_map Array.to_list], allocating an intermediate list per
    row per array; here the key is built in one right fold with no
    intermediates, and the number of values copied is charged to the
    meter's [key_build] field so the key-build cost of the caches is
    visible in EXPLAIN ANALYZE. Both the batch executor and the
    list-at-a-time {!Baseline} charge through these helpers, keeping
    their accounting comparable. *)

type row = Sqlir.Value.t array

(** Flatten the outer correlation stack into a key suffix. *)
let value_key (m : Meter.t) (rows : row list) : Sqlir.Value.t list =
  let n = ref 0 in
  let key =
    List.fold_right
      (fun (r : row) acc ->
        n := !n + Array.length r;
        Array.fold_right (fun v acc -> v :: acc) r acc)
      rows []
  in
  m.Meter.key_build <- m.Meter.key_build + !n;
  key

(** [corr m positions r orows] — the cache key of a sub-plan correlated
    to positions [positions] of the candidate row [r] under outer rows
    [orows]: the projected positions followed by the flattened outer
    stack. *)
let corr (m : Meter.t) (positions : int list) (r : row) (orows : row list) :
    Sqlir.Value.t list =
  let tail = value_key m orows in
  let npos = ref 0 in
  let key =
    List.fold_right
      (fun i acc ->
        incr npos;
        r.(i) :: acc)
      positions tail
  in
  m.Meter.key_build <- m.Meter.key_build + !npos;
  key
