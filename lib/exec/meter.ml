(** Work metering.

    Every executor operator charges work units to a meter while it runs.
    The weighted total plays the role of execution time in the
    evaluation: it is hardware-independent, perfectly repeatable, and —
    crucially for reproducing Section 4 — it is the {e true} cost that
    the optimizer's {e estimated} cost approximates, so cost
    mis-estimation shows up as real regressions. *)

type t = {
  mutable rows_scanned : int;  (** tuples read by scans *)
  mutable pages_read : int;  (** heap pages touched by full scans *)
  mutable idx_probes : int;  (** B-tree descents *)
  mutable idx_entries : int;  (** index entries touched *)
  mutable rows_joined : int;  (** join-pair evaluations *)
  mutable hash_build : int;
  mutable hash_probe : int;
  mutable sort_compares : int;
  mutable agg_rows : int;  (** rows consumed by aggregation *)
  mutable rows_out : int;  (** rows produced by operators *)
  mutable subq_execs : int;  (** TIS subquery executions *)
  mutable subq_cache_hits : int;
  mutable expensive_calls : int;
      (** invocations of expensive (procedural / user-defined) functions,
          the subject of predicate pullup (Section 2.2.6) *)
  mutable key_build : int;
      (** values copied into TIS / NL-inner cache keys; the key-build
          cost of the subquery-filter caches (Section 2.1.1) *)
}

let create () =
  {
    rows_scanned = 0;
    pages_read = 0;
    idx_probes = 0;
    idx_entries = 0;
    rows_joined = 0;
    hash_build = 0;
    hash_probe = 0;
    sort_compares = 0;
    agg_rows = 0;
    rows_out = 0;
    subq_execs = 0;
    subq_cache_hits = 0;
    expensive_calls = 0;
    key_build = 0;
  }

let reset t =
  t.rows_scanned <- 0;
  t.pages_read <- 0;
  t.idx_probes <- 0;
  t.idx_entries <- 0;
  t.rows_joined <- 0;
  t.hash_build <- 0;
  t.hash_probe <- 0;
  t.sort_compares <- 0;
  t.agg_rows <- 0;
  t.rows_out <- 0;
  t.subq_execs <- 0;
  t.subq_cache_hits <- 0;
  t.expensive_calls <- 0;
  t.key_build <- 0

(* Weights chosen to mirror the cost model's relative charges: a page
   read costs about as much as processing the tuples on it; an index
   probe costs a few page reads' worth of pointer chasing. *)
let w_page = 50.
let w_row = 1.
let w_probe = 6.
let w_entry = 0.5
let w_join = 0.6
let w_hash_build = 1.5
let w_hash_probe = 0.8
let w_cmp = 0.35
let w_agg = 0.9
let w_out = 0.2
let w_expensive = 250.
let w_key = 0.05

(** Total work units charged so far. *)
let work t =
  (w_page *. float_of_int t.pages_read)
  +. (w_row *. float_of_int t.rows_scanned)
  +. (w_probe *. float_of_int t.idx_probes)
  +. (w_entry *. float_of_int t.idx_entries)
  +. (w_join *. float_of_int t.rows_joined)
  +. (w_hash_build *. float_of_int t.hash_build)
  +. (w_hash_probe *. float_of_int t.hash_probe)
  +. (w_cmp *. float_of_int t.sort_compares)
  +. (w_agg *. float_of_int t.agg_rows)
  +. (w_out *. float_of_int t.rows_out)
  +. (w_expensive *. float_of_int t.expensive_calls)
  +. (w_key *. float_of_int t.key_build)

let copy t =
  {
    rows_scanned = t.rows_scanned;
    pages_read = t.pages_read;
    idx_probes = t.idx_probes;
    idx_entries = t.idx_entries;
    rows_joined = t.rows_joined;
    hash_build = t.hash_build;
    hash_probe = t.hash_probe;
    sort_compares = t.sort_compares;
    agg_rows = t.agg_rows;
    rows_out = t.rows_out;
    subq_execs = t.subq_execs;
    subq_cache_hits = t.subq_cache_hits;
    expensive_calls = t.expensive_calls;
    key_build = t.key_build;
  }

(** [diff cur before] — the charges accrued between the [before]
    snapshot and [cur], as a fresh meter. Field-wise subtraction, so
    [work (diff cur before) = work cur - work before] exactly (the
    weighted total is linear in the fields). *)
let diff cur before =
  {
    rows_scanned = cur.rows_scanned - before.rows_scanned;
    pages_read = cur.pages_read - before.pages_read;
    idx_probes = cur.idx_probes - before.idx_probes;
    idx_entries = cur.idx_entries - before.idx_entries;
    rows_joined = cur.rows_joined - before.rows_joined;
    hash_build = cur.hash_build - before.hash_build;
    hash_probe = cur.hash_probe - before.hash_probe;
    sort_compares = cur.sort_compares - before.sort_compares;
    agg_rows = cur.agg_rows - before.agg_rows;
    rows_out = cur.rows_out - before.rows_out;
    subq_execs = cur.subq_execs - before.subq_execs;
    subq_cache_hits = cur.subq_cache_hits - before.subq_cache_hits;
    expensive_calls = cur.expensive_calls - before.expensive_calls;
    key_build = cur.key_build - before.key_build;
  }

(** [add acc d] accumulates [d] into [acc] in place. *)
let add acc d =
  acc.rows_scanned <- acc.rows_scanned + d.rows_scanned;
  acc.pages_read <- acc.pages_read + d.pages_read;
  acc.idx_probes <- acc.idx_probes + d.idx_probes;
  acc.idx_entries <- acc.idx_entries + d.idx_entries;
  acc.rows_joined <- acc.rows_joined + d.rows_joined;
  acc.hash_build <- acc.hash_build + d.hash_build;
  acc.hash_probe <- acc.hash_probe + d.hash_probe;
  acc.sort_compares <- acc.sort_compares + d.sort_compares;
  acc.agg_rows <- acc.agg_rows + d.agg_rows;
  acc.rows_out <- acc.rows_out + d.rows_out;
  acc.subq_execs <- acc.subq_execs + d.subq_execs;
  acc.subq_cache_hits <- acc.subq_cache_hits + d.subq_cache_hits;
  acc.expensive_calls <- acc.expensive_calls + d.expensive_calls;
  acc.key_build <- acc.key_build + d.key_build

(** The single canonical ordering of meter field names. Everything that
    renders or keys meter fields — {!to_fields}, EXPLAIN ANALYZE
    columns, trace sinks, the metrics registry, the query store — must
    derive from this list so a newly added field cannot silently drift
    out of one surface (a sync unit test enforces it). *)
let field_names =
  [
    "rows_scanned";
    "pages_read";
    "idx_probes";
    "idx_entries";
    "rows_joined";
    "hash_build";
    "hash_probe";
    "sort_compares";
    "agg_rows";
    "rows_out";
    "subq_execs";
    "subq_cache_hits";
    "expensive_calls";
    "key_build";
  ]

(** Field values in the canonical {!field_names} order, as one flat
    array. The allocation-light accessor for per-execution accounting
    (metrics registry, query store): one unboxed int array, no pairs. *)
let values t =
  [|
    t.rows_scanned;
    t.pages_read;
    t.idx_probes;
    t.idx_entries;
    t.rows_joined;
    t.hash_build;
    t.hash_probe;
    t.sort_compares;
    t.agg_rows;
    t.rows_out;
    t.subq_execs;
    t.subq_cache_hits;
    t.expensive_calls;
    t.key_build;
  |]

(** Field name / value pairs, for structured sinks and for tests that
    check meter algebra field by field. Built by zipping the canonical
    {!field_names} with {!values} — [List.combine] raises if the two
    ever disagree in length, so a field added to {!t} without a name
    (or vice versa) fails loudly. *)
let to_fields t = List.combine field_names (Array.to_list (values t))

let pp ppf t =
  Fmt.pf ppf
    "scan=%d pages=%d probes=%d entries=%d join=%d hb=%d hp=%d cmp=%d agg=%d \
     out=%d subq=%d cache=%d key=%d work=%.0f"
    t.rows_scanned t.pages_read t.idx_probes t.idx_entries t.rows_joined
    t.hash_build t.hash_probe t.sort_compares t.agg_rows t.rows_out
    t.subq_execs t.subq_cache_hits t.key_build (work t)

(* ------------------------------------------------------------------ *)
(* Columnar buffer accounting                                           *)
(* ------------------------------------------------------------------ *)

(** Words allocated for columnar buffers — typed column vectors, null
    bitmaps, selection vectors — since process start. Deliberately kept
    {e outside} {!t}: the row and vectorized engines must stay
    meter-equal field by field (the differential oracle the test suite
    checks), and buffer allocation is an engine artifact, not query
    work. The bench reads this counter to report honest bytes/row under
    the struct-of-arrays layout: [Gc.allocated_bytes] already includes
    these buffers, and the explicit counter shows how much of the total
    they are (and would keep counting them if the buffers ever moved
    off the OCaml heap). *)
let vec_alloc_words = ref 0

let charge_vec_alloc words = vec_alloc_words := !vec_alloc_words + words
let vec_alloc_bytes () = !vec_alloc_words * (Sys.word_size / 8)
