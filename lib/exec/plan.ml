(** The physical-plan algebra.

    This is the {e operator tree} the paper contrasts with query trees: a
    query block loses its declarativeness here and becomes an explicit
    composition of scans, joins, filters and aggregation. Plans are
    produced by the physical optimizer and interpreted by
    {!Executor}. Expressions inside plans are ordinary IR expressions;
    any column they reference must be visible either in the node's input
    layout or in an enclosing correlation scope (index nested-loop
    probes and TIS subquery filters use the latter). *)

open Sqlir

type jmethod = Nested_loop | Hash | Merge

type jrole = Inner | Semi | Anti | Anti_na | Left_outer

(** Bound of an index range scan; the expression may reference
    correlation scopes but not the scanned table. *)
type rbound = R_unbounded | R_incl of Ast.expr | R_excl of Ast.expr

(** Partition-pruning spec of a {!Part_scan}: the restriction of the
    scan's WHERE conjuncts to the partition key, {e evaluated at open
    time} against the actual bind values — a cached plan must prune
    correctly for binds other than the ones it was compiled under, so
    the plan carries the pruning {e predicate}, never a baked partition
    list. The expressions must be uncorrelated (constants and binds).
    Pruning is pure optimization: the originating conjunct always stays
    in the scan's [filter], so a pruned scan returns exactly the rows
    the unpruned scan would. *)
type prune =
  | Pr_none  (** scan every partition *)
  | Pr_eq of Ast.expr  (** key = e: at most one surviving partition *)
  | Pr_range of rbound * rbound
      (** lo <= key <= hi: contiguous surviving range (range scheme
          only; hash-partitioned tables cannot range-prune) *)

type t =
  | Table_scan of { table : string; alias : string; filter : Ast.pred list }
  | Part_scan of {
      table : string;
      alias : string;
      filter : Ast.pred list;
      prune : prune;
    }
      (** full scan of a partitioned table, partition by partition in
          ascending partition order, skipping pruned partitions. Pages
          are charged as the {e sum of per-partition ceilings} of the
          surviving partitions (see {!Storage.Relation.part_pages}) —
          a deliberately different charging contract from [Table_scan],
          interpreted identically by every engine. Under an
          {!Exchange}, the executor restricts the scan to the domain's
          assigned partition. *)
  | Exchange of { child : t; dop : int }
      (** partition-parallel execution of [child] across [dop] OCaml
          domains: each surviving partition of the child's partitioned
          scans becomes one task, a domain executes the child with its
          scans restricted to that partition, and the coordinator
          concatenates the per-partition results in ascending partition
          order — making rows {e and} merged meters bit-identical to
          serial execution of the same plan at every dop. *)
  | Partial_agg of {
      child : t;
      alias : string;
      keys : (Ast.expr * string) list;
      aggs : (string * Ast.agg * Ast.expr option) list;
          (** non-DISTINCT aggregates only; hash strategy *)
    }
      (** per-partition aggregation emitting accumulator-state rows
          (see {!partial_state_cols}); combined by a {!Final_agg} above
          the exchange *)
  | Final_agg of {
      child : t;
      alias : string;
      keys : string list;  (** output names of the group keys *)
      aggs : (string * Ast.agg) list;
    }
      (** combines {!Partial_agg} state rows into final aggregate
          values; groups by the key positions of the partial layout *)
  | Index_scan of {
      table : string;
      alias : string;
      index : string;
      prefix : Ast.expr list;  (** equality-bound leading key columns *)
      lo : rbound;
      hi : rbound;
      filter : Ast.pred list;  (** residual predicates *)
    }
  | Join of {
      meth : jmethod;
      role : jrole;
      left : t;
      right : t;
      cond : Ast.pred list;
          (** all join conjuncts; hash/merge require at least one
              equi-conjunct between the sides *)
    }
  | Filter of { child : t; preds : Ast.pred list }
  | Subq_filter of { child : t; preds : subq_pred list }
      (** tuple-iteration-semantics evaluation of non-unnested
          subqueries, with correlation-value caching *)
  | Project of { child : t; alias : string; items : (Ast.expr * string) list }
  | Aggregate of {
      child : t;
      strategy : [ `Hash | `Sort ];
      alias : string;  (** output alias for keys and aggregates *)
      keys : (Ast.expr * string) list;
      aggs : (string * Ast.agg * Ast.expr option * bool) list;
          (** output name, aggregate, argument, DISTINCT *)
    }
  | Window of {
      child : t;
      alias : string;
      wins : (string * Ast.agg * Ast.expr option * Ast.win) list;
    }
  | Distinct of t
  | Sort of { child : t; keys : (Ast.expr * Ast.dir) list }
  | Limit of { child : t; n : int }
  | Limit_filter of { child : t; preds : Ast.pred list; n : int }
      (** streaming filter + ROWNUM: evaluates [preds] row by row and
          stops as soon as [n] rows qualify — the operator predicate
          pullup (Section 2.2.6) relies on: expensive predicates pulled
          above a blocking operator only run until the quota fills *)
  | Union_all of t list
  | Setop_exec of { op : [ `Intersect | `Minus ]; left : t; right : t }
      (** untransformed INTERSECT / MINUS (Section 2.2.7): set
          semantics, NULL matches NULL *)

and subq_pred =
  | SP_exists of { negated : bool; plan : t }
  | SP_in of { negated : bool; lhs : Ast.expr list; plan : t }
      (** NOT IN uses null-aware (ALL) semantics *)
  | SP_cmp of { op : Ast.cmp; lhs : Ast.expr; quant : Ast.quant option; plan : t }

(** Column names of a {!Partial_agg}'s accumulator-state output, after
    the group keys: one column per aggregate, except [Avg] which
    decomposes into a running sum and a non-null count (recombined by
    the {!Final_agg}; [sum/count] is the only decomposition that merges
    exactly across partitions). *)
let partial_state_cols (aggs : (string * Ast.agg * Ast.expr option) list) :
    string list =
  List.concat_map
    (fun (n, a, _) ->
      match a with Ast.Avg -> [ n ^ "$sum"; n ^ "$cnt" ] | _ -> [ n ])
    aggs

(** Output layout of a plan: the (alias, column) pair at each row
    position. *)
let rec layout (p : t) (cat : Catalog.t) : (string * string) array =
  match p with
  | Table_scan { table; alias; _ } | Part_scan { table; alias; _ } ->
      let def = Catalog.find_table cat table in
      Array.of_list
        (List.map (fun c -> (alias, c.Catalog.c_name)) def.t_cols)
  | Exchange { child; _ } -> layout child cat
  | Partial_agg { alias; keys; aggs; _ } ->
      Array.of_list
        (List.map (fun (_, n) -> (alias, n)) keys
        @ List.map (fun n -> (alias, n)) (partial_state_cols aggs))
  | Final_agg { alias; keys; aggs; _ } ->
      Array.of_list
        (List.map (fun n -> (alias, n)) keys
        @ List.map (fun (n, _) -> (alias, n)) aggs)
  | Index_scan { table; alias; _ } ->
      let def = Catalog.find_table cat table in
      Array.of_list
        (List.map (fun c -> (alias, c.Catalog.c_name)) def.t_cols)
  | Join { role = Semi | Anti | Anti_na; left; _ } -> layout left cat
  | Join { left; right; _ } -> Array.append (layout left cat) (layout right cat)
  | Filter { child; _ } | Subq_filter { child; _ } -> layout child cat
  | Project { alias; items; _ } ->
      Array.of_list (List.map (fun (_, n) -> (alias, n)) items)
  | Aggregate { alias; keys; aggs; _ } ->
      Array.of_list
        (List.map (fun (_, n) -> (alias, n)) keys
        @ List.map (fun (n, _, _, _) -> (alias, n)) aggs)
  | Window { child; alias; wins } ->
      Array.append (layout child cat)
        (Array.of_list (List.map (fun (n, _, _, _) -> (alias, n)) wins))
  | Distinct c | Sort { child = c; _ } | Limit { child = c; _ }
  | Limit_filter { child = c; _ } ->
      layout c cat
  | Union_all [] -> [||]
  | Union_all (c :: _) -> layout c cat
  | Setop_exec { left; _ } -> layout left cat

let jmethod_str = function
  | Nested_loop -> "NESTED LOOPS"
  | Hash -> "HASH JOIN"
  | Merge -> "MERGE JOIN"

let jrole_str = function
  | Inner -> ""
  | Semi -> " SEMI"
  | Anti -> " ANTI"
  | Anti_na -> " ANTI NA"
  | Left_outer -> " OUTER"

(** Explain-style rendering; used by tests, the CLI, and as the plan
    fingerprint for detecting plan changes when CBQT is toggled. *)
let rec pp ?(indent = 0) ppf (p : t) =
  let pad = String.make (indent * 2) ' ' in
  let child = indent + 1 in
  match p with
  | Table_scan { table; alias; filter } ->
      Fmt.pf ppf "%sTABLE SCAN %s %s%a@." pad table alias pp_filter filter
  | Part_scan { table; alias; filter; prune } ->
      Fmt.pf ppf "%sPART SCAN %s %s%a%a@." pad table alias pp_prune prune
        pp_filter filter
  | Exchange { child = c; dop } ->
      Fmt.pf ppf "%sEXCHANGE dop=%d@.%a" pad dop (pp ~indent:child) c
  | Partial_agg { child = c; alias; keys; aggs } ->
      Fmt.pf ppf "%sPARTIAL GROUP BY %s keys=[%a] aggs=[%a]@.%a" pad alias
        (Fmt.list ~sep:Fmt.comma (fun ppf (e, n) ->
             Fmt.pf ppf "%a AS %s" Pp.pp_expr e n))
        keys
        (Fmt.list ~sep:Fmt.comma (fun ppf (n, a, _) ->
             Fmt.pf ppf "%s:%s" n (Pp.agg_str a)))
        aggs (pp ~indent:child) c
  | Final_agg { child = c; alias; keys; aggs } ->
      Fmt.pf ppf "%sFINAL GROUP BY %s keys=[%a] aggs=[%a]@.%a" pad alias
        (Fmt.list ~sep:Fmt.comma Fmt.string)
        keys
        (Fmt.list ~sep:Fmt.comma (fun ppf (n, a) ->
             Fmt.pf ppf "%s:%s" n (Pp.agg_str a)))
        aggs (pp ~indent:child) c
  | Index_scan { table; alias; index; prefix; filter; _ } ->
      Fmt.pf ppf "%sINDEX SCAN %s(%s) %s prefix=[%a]%a@." pad table index
        alias
        (Fmt.list ~sep:Fmt.comma Pp.pp_expr)
        prefix pp_filter filter
  | Join { meth; role; left; right; cond } ->
      Fmt.pf ppf "%s%s%s on [%a]@.%a%a" pad (jmethod_str meth) (jrole_str role)
        (Fmt.list ~sep:(Fmt.any " AND ") Pp.pp_pred)
        cond (pp ~indent:child) left (pp ~indent:child) right
  | Filter { child = c; preds } ->
      Fmt.pf ppf "%sFILTER [%a]@.%a" pad
        (Fmt.list ~sep:(Fmt.any " AND ") Pp.pp_pred)
        preds (pp ~indent:child) c
  | Subq_filter { child = c; preds } ->
      Fmt.pf ppf "%sSUBQUERY FILTER (%d subqueries)@.%a" pad
        (List.length preds) (pp ~indent:child) c;
      List.iter
        (fun sp ->
          let plan =
            match sp with
            | SP_exists { plan; _ } | SP_in { plan; _ } | SP_cmp { plan; _ } ->
                plan
          in
          pp ~indent:(child + 1) ppf plan)
        preds
  | Project { child = c; alias; items } ->
      Fmt.pf ppf "%sPROJECT %s [%a]@.%a" pad alias
        (Fmt.list ~sep:Fmt.comma (fun ppf (e, n) ->
             Fmt.pf ppf "%a AS %s" Pp.pp_expr e n))
        items (pp ~indent:child) c
  | Aggregate { child = c; strategy; keys; aggs; alias } ->
      Fmt.pf ppf "%sGROUP BY (%s) %s keys=[%a] aggs=[%a]@.%a" pad
        (match strategy with `Hash -> "HASH" | `Sort -> "SORT")
        alias
        (Fmt.list ~sep:Fmt.comma (fun ppf (e, n) ->
             Fmt.pf ppf "%a AS %s" Pp.pp_expr e n))
        keys
        (Fmt.list ~sep:Fmt.comma (fun ppf (n, a, _, _) ->
             Fmt.pf ppf "%s:%s" n (Pp.agg_str a)))
        aggs (pp ~indent:child) c
  | Window { child = c; wins; alias } ->
      Fmt.pf ppf "%sWINDOW %s [%a]@.%a" pad alias
        (Fmt.list ~sep:Fmt.comma (fun ppf (n, a, _, _) ->
             Fmt.pf ppf "%s:%s" n (Pp.agg_str a)))
        wins (pp ~indent:child) c
  | Distinct c -> Fmt.pf ppf "%sDISTINCT@.%a" pad (pp ~indent:child) c
  | Sort { child = c; keys } ->
      Fmt.pf ppf "%sSORT [%a]@.%a" pad
        (Fmt.list ~sep:Fmt.comma (fun ppf (e, d) ->
             Fmt.pf ppf "%a %s" Pp.pp_expr e (Pp.dir_str d)))
        keys (pp ~indent:child) c
  | Limit { child = c; n } ->
      Fmt.pf ppf "%sROWNUM <= %d@.%a" pad n (pp ~indent:child) c
  | Limit_filter { child = c; preds; n } ->
      Fmt.pf ppf "%sFILTER+ROWNUM <= %d [%a]@.%a" pad n
        (Fmt.list ~sep:(Fmt.any " AND ") Pp.pp_pred)
        preds (pp ~indent:child) c
  | Union_all cs ->
      Fmt.pf ppf "%sUNION ALL@." pad;
      List.iter (pp ~indent:child ppf) cs
  | Setop_exec { op; left; right } ->
      Fmt.pf ppf "%s%s@.%a%a" pad
        (match op with `Intersect -> "INTERSECT" | `Minus -> "MINUS")
        (pp ~indent:child) left (pp ~indent:child) right

and pp_filter ppf = function
  | [] -> ()
  | ps ->
      Fmt.pf ppf " filter=[%a]" (Fmt.list ~sep:(Fmt.any " AND ") Pp.pp_pred) ps

and pp_prune ppf = function
  | Pr_none -> ()
  | Pr_eq e -> Fmt.pf ppf " prune=(key = %a)" Pp.pp_expr e
  | Pr_range (lo, hi) ->
      let b name ppf = function
        | R_unbounded -> ()
        | R_incl e -> Fmt.pf ppf " %s= %a" name Pp.pp_expr e
        | R_excl e -> Fmt.pf ppf " %s %a" name Pp.pp_expr e
      in
      Fmt.pf ppf " prune=(key%a%a)" (b ">") lo (b "<") hi

let to_string p = Fmt.str "%a" (pp ~indent:0) p

(** Fingerprint used by the workload runner's plan differ. *)
let fingerprint p = Digest.to_hex (Digest.string (to_string p))

(** One-line label for a node (no children), for EXPLAIN ANALYZE rows
    and trace span names. *)
let node_label (p : t) : string =
  match p with
  | Table_scan { table; alias; _ } ->
      Printf.sprintf "TABLE SCAN %s %s" table alias
  | Part_scan { table; alias; prune; _ } ->
      Printf.sprintf "PART SCAN %s %s%s" table alias
        (match prune with Pr_none -> "" | _ -> " (pruned)")
  | Exchange { dop; _ } -> Printf.sprintf "EXCHANGE (dop %d)" dop
  | Partial_agg { alias; keys; _ } ->
      Printf.sprintf "PARTIAL GROUP BY %s (%d keys)" alias (List.length keys)
  | Final_agg { alias; keys; _ } ->
      Printf.sprintf "FINAL GROUP BY %s (%d keys)" alias (List.length keys)
  | Index_scan { table; alias; index; _ } ->
      Printf.sprintf "INDEX SCAN %s(%s) %s" table index alias
  | Join { meth; role; _ } -> jmethod_str meth ^ jrole_str role
  | Filter { preds; _ } -> Printf.sprintf "FILTER (%d preds)" (List.length preds)
  | Subq_filter { preds; _ } ->
      Printf.sprintf "SUBQUERY FILTER (%d subqueries)" (List.length preds)
  | Project { alias; items; _ } ->
      Printf.sprintf "PROJECT %s (%d cols)" alias (List.length items)
  | Aggregate { strategy; alias; keys; _ } ->
      Printf.sprintf "GROUP BY (%s) %s (%d keys)"
        (match strategy with `Hash -> "HASH" | `Sort -> "SORT")
        alias (List.length keys)
  | Window { alias; wins; _ } ->
      Printf.sprintf "WINDOW %s (%d fns)" alias (List.length wins)
  | Distinct _ -> "DISTINCT"
  | Sort { keys; _ } -> Printf.sprintf "SORT (%d keys)" (List.length keys)
  | Limit { n; _ } -> Printf.sprintf "ROWNUM <= %d" n
  | Limit_filter { n; preds; _ } ->
      Printf.sprintf "FILTER+ROWNUM <= %d (%d preds)" n (List.length preds)
  | Union_all cs -> Printf.sprintf "UNION ALL (%d branches)" (List.length cs)
  | Setop_exec { op; _ } -> (
      match op with `Intersect -> "INTERSECT" | `Minus -> "MINUS")

(** Direct children of a node. Subquery plans embedded in a
    [Subq_filter]'s predicates count as children: they do real metered
    work during execution, so any accounting walk must visit them. *)
let children (p : t) : t list =
  match p with
  | Table_scan _ | Part_scan _ | Index_scan _ -> []
  | Join { left; right; _ } -> [ left; right ]
  | Filter { child; _ }
  | Project { child; _ }
  | Aggregate { child; _ }
  | Window { child; _ }
  | Sort { child; _ }
  | Limit { child; _ }
  | Limit_filter { child; _ }
  | Exchange { child; _ }
  | Partial_agg { child; _ }
  | Final_agg { child; _ } ->
      [ child ]
  | Subq_filter { child; preds } ->
      child
      :: List.map
           (function
             | SP_exists { plan; _ } | SP_in { plan; _ } | SP_cmp { plan; _ }
               ->
                 plan)
           preds
  | Distinct c -> [ c ]
  | Union_all cs -> cs
  | Setop_exec { left; right; _ } -> [ left; right ]

(** Every [Part_scan] of [p], in preorder — the scans an enclosing
    {!Exchange} derives its partition task list from (the union of
    their pruning survivors). Includes subquery plans: an exchange may
    not legally contain one over a partitioned table (the restriction
    would change subquery semantics — {!Analysis.Plan_check} rejects
    it), but accounting walks must still see the scan. *)
let rec part_scans (p : t) : (string * prune) list =
  (match p with
  | Part_scan { table; prune; _ } -> [ (table, prune) ]
  | _ -> [])
  @ List.concat_map part_scans (children p)

(** All column references embedded anywhere in a plan (scan filters,
    probe expressions, join conditions, projections, aggregates, nested
    subquery plans). Used to determine a sub-plan's correlation
    columns: the references that resolve to an enclosing scope rather
    than to the plan's own outputs. *)
let all_cols (p : t) : Ast.col list =
  let add acc c = if List.mem c acc then acc else c :: acc in
  let expr acc e = Walk.fold_expr_cols add acc e in
  let pred acc p = Walk.fold_pred_cols ~deep:true add acc p in
  let rec go acc p =
    match p with
    | Table_scan { filter; _ } -> List.fold_left pred acc filter
    | Part_scan { filter; prune; _ } ->
        let acc = List.fold_left pred acc filter in
        (match prune with
        | Pr_none -> acc
        | Pr_eq e -> expr acc e
        | Pr_range (lo, hi) ->
            let bound acc = function
              | R_unbounded -> acc
              | R_incl e | R_excl e -> expr acc e
            in
            bound (bound acc lo) hi)
    | Exchange { child; _ } -> go acc child
    | Partial_agg { child; keys; aggs; _ } ->
        let acc = go acc child in
        let acc = List.fold_left (fun acc (e, _) -> expr acc e) acc keys in
        List.fold_left
          (fun acc (_, _, eo) ->
            match eo with Some e -> expr acc e | None -> acc)
          acc aggs
    | Final_agg { child; _ } -> go acc child
    | Index_scan { prefix; lo; hi; filter; _ } ->
        let acc = List.fold_left expr acc prefix in
        let acc =
          match lo with R_unbounded -> acc | R_incl e | R_excl e -> expr acc e
        in
        let acc =
          match hi with R_unbounded -> acc | R_incl e | R_excl e -> expr acc e
        in
        List.fold_left pred acc filter
    | Join { left; right; cond; _ } ->
        List.fold_left pred (go (go acc left) right) cond
    | Filter { child; preds } -> List.fold_left pred (go acc child) preds
    | Subq_filter { child; preds } ->
        List.fold_left
          (fun acc sp ->
            match sp with
            | SP_exists { plan; _ } -> go acc plan
            | SP_in { lhs; plan; _ } -> go (List.fold_left expr acc lhs) plan
            | SP_cmp { lhs; plan; _ } -> go (expr acc lhs) plan)
          (go acc child) preds
    | Project { child; items; _ } ->
        List.fold_left (fun acc (e, _) -> expr acc e) (go acc child) items
    | Aggregate { child; keys; aggs; _ } ->
        let acc = go acc child in
        let acc = List.fold_left (fun acc (e, _) -> expr acc e) acc keys in
        List.fold_left
          (fun acc (_, _, eo, _) ->
            match eo with Some e -> expr acc e | None -> acc)
          acc aggs
    | Window { child; wins; _ } ->
        List.fold_left
          (fun acc (_, _, eo, w) ->
            let acc = match eo with Some e -> expr acc e | None -> acc in
            let acc = List.fold_left expr acc w.Ast.w_pby in
            List.fold_left (fun acc (e, _) -> expr acc e) acc w.Ast.w_oby)
          (go acc child) wins
    | Distinct c | Sort { child = c; _ } | Limit { child = c; _ } ->
        (match p with
        | Sort { keys; _ } ->
            List.fold_left (fun acc (e, _) -> expr acc e) (go acc c) keys
        | _ -> go acc c)
    | Limit_filter { child = c; preds; _ } ->
        List.fold_left pred (go acc c) preds
    | Union_all cs -> List.fold_left go acc cs
    | Setop_exec { left; right; _ } -> go (go acc left) right
  in
  List.rev (go [] p)

(** Positions in [layout] referenced by [plan] — its correlation
    bindings into that scope. *)
let corr_positions (plan : t) (layout : (string * string) array) : int list =
  let cols = all_cols plan in
  let hits = ref [] in
  Array.iteri
    (fun i (a, c) ->
      if List.exists (fun col -> col.Ast.c_alias = a && col.Ast.c_col = c) cols
      then hits := i :: !hits)
    layout;
  List.rev !hits

(** Count of expensive (procedural-function) conjuncts, used by the
    cost model to charge per-row function invocations. *)
let n_expensive_preds (preds : Ast.pred list) : int =
  let rec expr_expensive (e : Ast.expr) =
    match e with
    | Ast.Fn (n, args) ->
        Funcs.is_expensive n || List.exists expr_expensive args
    | Ast.Binop (_, a, b) -> expr_expensive a || expr_expensive b
    | Ast.Neg a -> expr_expensive a
    | Ast.Case (arms, els) ->
        List.exists (fun (_, e) -> expr_expensive e) arms
        || (match els with Some e -> expr_expensive e | None -> false)
    | _ -> false
  and pred_expensive (p : Ast.pred) =
    match p with
    | Ast.Pred_fn (n, args) ->
        Funcs.is_expensive n || List.exists expr_expensive args
    | Ast.Cmp (_, a, b) -> expr_expensive a || expr_expensive b
    | Ast.Not a | Ast.Lnnvl a -> pred_expensive a
    | Ast.And (a, b) | Ast.Or (a, b) -> pred_expensive a || pred_expensive b
    | Ast.Between (a, b, c) ->
        expr_expensive a || expr_expensive b || expr_expensive c
    | _ -> false
  in
  List.length (List.filter pred_expensive preds)

(** Order conjuncts cheap-first so short-circuit evaluation touches
    expensive predicates as late as possible. Stable otherwise. *)
let order_preds (preds : Ast.pred list) : Ast.pred list =
  let cheap, expensive =
    List.partition
      (fun p -> n_expensive_preds [ p ] = 0)
      preds
  in
  cheap @ expensive
