(** Partition-pruning survivor computation, shared by every consumer of
    a {!Plan.Part_scan}'s prune spec: the row engine and the baseline
    engine (at open time, against the actual bind vector), the exchange
    operator (to derive its task list), the planner's cost model
    (at plan time, against peeked binds) and the static plan checker.
    One definition of "which partitions survive" is what makes pruning
    a pure optimization — every consumer agrees on the same partition
    set for the same values, so a pruned scan, a parallel scan and the
    cost estimate all describe the same rows.

    Pruning is always {e conservative}: whenever a value cannot be
    determined the affected restriction is dropped (scan everything),
    never tightened. The originating conjunct stays in the scan's
    filter, so over-inclusion costs pages, not correctness. *)

open Sqlir

(** Evaluate an uncorrelated prune operand — constants and binds only,
    the grammar {!Plan.prune} admits. [None] for anything else (the
    conservative fallback). Bind markers out of the vector's range fall
    back to their peeked value, exactly as {!Eval} does. *)
let value_of ~(binds : Value.t array) (e : Ast.expr) : Value.t option =
  match e with
  | Ast.Const v -> Some v
  | Ast.Bind (i, peek) ->
      Some (if i >= 0 && i < Array.length binds then binds.(i) else peek)
  | _ -> None

(** The ascending list of partitions of [ps] that can hold rows
    satisfying [pr], under [value_of] (callers pick the evaluation
    environment: actual binds at run time, peeked binds at plan time).

    [Pr_eq e]: the single home partition of the value — both schemes
    route a value to exactly one partition. [key = NULL] is
    unsatisfiable (3VL), so {e no} partition survives. [Pr_range]:
    the contiguous run of range partitions intersecting the bound
    interval; hash partitioning scatters order, so a range prunes
    nothing there. A bound that is NULL makes the comparison UNKNOWN
    for every row — nothing survives. *)
let survivors ~(value_of : Ast.expr -> Value.t option)
    (ps : Catalog.part_spec) (pr : Plan.prune) : int list =
  let all = List.init ps.ps_n (fun i -> i) in
  match pr with
  | Plan.Pr_none -> all
  | Plan.Pr_eq e -> (
      match value_of e with
      | None -> all
      | Some v when Value.is_null v -> []
      | Some v -> [ Catalog.part_route ps v ])
  | Plan.Pr_range (lo, hi) -> (
      if ps.ps_scheme <> `Range then all
      else
        (* [Ok None] = unrestricted end; [Ok (Some v)] = bounded by [v]
           (inclusive vs exclusive is irrelevant to partition-level
           pruning: the partition containing [v] always survives);
           [Error ()] = NULL bound, unsatisfiable *)
        let bound_val = function
          | Plan.R_unbounded -> Ok None
          | Plan.R_incl e | Plan.R_excl e -> (
              match value_of e with
              | None -> Ok None
              | Some v when Value.is_null v -> Error ()
              | Some v -> Ok (Some v))
        in
        match (bound_val lo, bound_val hi) with
        | Error (), _ | _, Error () -> []
        | Ok lo_v, Ok hi_v ->
            let plo =
              match lo_v with None -> 0 | Some v -> Catalog.part_route ps v
            in
            let phi =
              match hi_v with
              | None -> ps.ps_n - 1
              | Some v -> Catalog.part_route ps v
            in
            if phi < plo then []
            else List.init (phi - plo + 1) (fun i -> plo + i))

(** {!survivors} under the actual bind vector — the run-time
    environment every engine prunes in. *)
let survivors_runtime ~(binds : Value.t array) (ps : Catalog.part_spec)
    (pr : Plan.prune) : int list =
  survivors ~value_of:(value_of ~binds) ps pr
