(** Vectorized (columnar) pipeline engine.

    Executes scan → filter* → (project | scalar aggregate) pipeline
    chains over the struct-of-arrays images of {!Colbatch}: each
    [c_next] processes one segment of the table through a selection
    vector, applying every predicate conjunct as a tight monomorphic
    loop over its column vector (or, for predicates the typed loops
    cannot express, over the retained base rows), then materializes the
    surviving selection at the pipeline edge — for identity pipelines
    by handing out the original row pointers, allocation-free.
    Everything outside this grammar (joins, grouped aggregation, sorts,
    set operators, index scans) stays on the row path of {!Executor};
    the conversion happens only at pipeline edges, where breakers
    materialize rows anyway.

    {b Meter parity is exact.} Charges are accounted field by field as
    the row engine does: [pages_read] per open, [rows_scanned] per
    segment row, [rows_out] per operator per surviving row, [agg_rows]
    per aggregated row, sort charges for sort-strategy aggregation —
    and conjuncts are applied in original order, one selection
    refinement per conjunct, so generic (possibly expensive) predicates
    are evaluated on exactly the rows that survive the preceding
    conjuncts, preserving short-circuit [expensive_calls] counts. The
    test suite runs forced-engine differential comparisons (vector vs
    row vs {!Baseline}) on randomized plans to hold this.

    The engine choice is hybrid and cost-driven: {!try_root} consults
    the planner's estimated pipeline cardinality (threaded through
    {!Cursor.ctx.card_of}) and vectorizes only pipelines whose source
    scan is estimated above {!Cursor.ctx.vector_threshold}; tiny
    pipelines — nested-loop inner sides, subquery plans over small
    tables — keep the row path's lower per-execution constant. *)

open Sqlir
module A = Ast
module Db = Storage.Db
module Relation = Storage.Relation
module B = Batch
module C = Colbatch
open Cursor

(** Test knob: when set, scans materialize an explicit selection vector
    even while it is still the dense identity, so properties can check
    that dense and sparse selections are indistinguishable in results,
    meters and analyze stats. *)
let force_sparse = ref false

(* ------------------------------------------------------------------ *)
(* Selection blocks                                                     *)
(* ------------------------------------------------------------------ *)

(** One in-flight segment: absolute row ids [lo, hi) of the scanned
    table, narrowed by a selection. While [dense], the selection is the
    identity over the segment and [sel] is untouched; the first
    filtering conjunct switches to the explicit selection vector. *)
type vblock = {
  mutable lo : int;
  mutable hi : int;
  sel : int array;  (** selected absolute row ids, valid [0, n) when sparse *)
  mutable n : int;
  mutable dense : bool;
}

(* Narrow the selection in place to the rows passing [keep]. *)
let refine vb (keep : int -> bool) =
  let sel = vb.sel in
  let k = ref 0 in
  if vb.dense then begin
    for i = vb.lo to vb.hi - 1 do
      if keep i then begin
        Array.unsafe_set sel !k i;
        incr k
      end
    done;
    vb.dense <- false
  end
  else
    for s = 0 to vb.n - 1 do
      let i = Array.unsafe_get sel s in
      if keep i then begin
        Array.unsafe_set sel !k i;
        incr k
      end
    done;
  vb.n <- !k

(* ------------------------------------------------------------------ *)
(* Conjunct compilation                                                 *)
(* ------------------------------------------------------------------ *)

(* Monomorphic comparison tests: the signature specializes the
   polymorphic operators to unboxed ints. *)
let int_test : A.cmp -> int -> int -> bool = function
  | A.Eq -> ( = )
  | A.Ne -> ( <> )
  | A.Lt -> ( < )
  | A.Le -> ( <= )
  | A.Gt -> ( > )
  | A.Ge -> ( >= )

(* Floats go through [Stdlib.compare] so NaN orders exactly as
   [Value.compare_total] orders it. *)
let float_test op =
  let t = Eval.cmp_test op in
  fun (x : float) (y : float) -> t (Stdlib.compare x y)

(* [a op b] = [b (flip op) a] *)
let flip : A.cmp -> A.cmp = function
  | A.Eq -> A.Eq
  | A.Ne -> A.Ne
  | A.Lt -> A.Gt
  | A.Gt -> A.Lt
  | A.Le -> A.Ge
  | A.Ge -> A.Le

(** A conjunct compiled at prepare time. Typed conjuncts bind to the
    column vectors of a concrete columnar image at open time (the image
    changes when the relation is mutated between executions); the
    fallbacks are image-independent. *)
type pconj =
  | P_typed of A.cmp * pop * pop  (** simple operands, at least one column *)
  | P_fast of bool  (** constant comparison outcome *)
  | P_slow of (row list -> bool option)  (** generic 3VL closure *)

and pop = PO_col of int | PO_const of Value.t

(** A conjunct bound to a columnar image, ready to refine selections. *)
type conj =
  | K_all
  | K_none  (** drops every row (e.g. comparison against NULL) *)
  | K_col of (int -> bool)  (** row-id test over the column vectors *)
  | K_slow of (row list -> bool option)

let compile_pred ~meter ~binds (layout : layout) scopes (p : A.pred) : pconj =
  let operand e =
    match e with
    | A.Const v -> Some (PO_const v)
    | A.Bind (i, peek) ->
        Some
          (PO_const
             (if i >= 0 && i < Array.length binds then binds.(i) else peek))
    | A.Col c -> Option.map (fun j -> PO_col j) (Eval.find_col layout c)
    | _ -> None
  in
  match p with
  | A.Cmp (op, a, b) -> (
      match (operand a, operand b) with
      | Some (PO_const va), Some (PO_const vb) ->
          (* charge-free constant conjunct in both engines *)
          P_fast
            ((not (Value.is_null va || Value.is_null vb))
            && Eval.cmp_test op (Value.compare_total va vb))
      | Some pa, Some pb -> P_typed (op, pa, pb)
      | _ -> P_slow (Eval.compile_pred ~meter ~binds (layout :: scopes) p))
  | _ -> P_slow (Eval.compile_pred ~meter ~binds (layout :: scopes) p)

let col_const op (c : C.col) (v : Value.t) : conj =
  if Value.is_null v then K_none
  else
    let nulls = c.C.c_nulls in
    match (c.C.c_vec, v) with
    | C.V_int a, Value.Int k ->
        let t = int_test op in
        K_col
          (fun i -> (not (C.bitmap_get nulls i)) && t (Array.unsafe_get a i) k)
    | C.V_int a, Value.Float k ->
        let t = float_test op in
        K_col
          (fun i ->
            (not (C.bitmap_get nulls i))
            && t (float_of_int (Array.unsafe_get a i)) k)
    | C.V_float a, Value.Float k ->
        let t = float_test op in
        K_col
          (fun i -> (not (C.bitmap_get nulls i)) && t (Array.unsafe_get a i) k)
    | C.V_float a, Value.Int k ->
        let kf = float_of_int k in
        let t = float_test op in
        K_col
          (fun i -> (not (C.bitmap_get nulls i)) && t (Array.unsafe_get a i) kf)
    | C.V_date a, Value.Date k ->
        let t = int_test op in
        K_col
          (fun i -> (not (C.bitmap_get nulls i)) && t (Array.unsafe_get a i) k)
    | C.V_str a, Value.Str k ->
        let t = Eval.cmp_test op in
        K_col
          (fun i ->
            (not (C.bitmap_get nulls i))
            && t (String.compare (Array.unsafe_get a i) k))
    | C.V_bool a, Value.Bool k ->
        let t = Eval.cmp_test op in
        K_col
          (fun i ->
            (not (C.bitmap_get nulls i))
            && t (Stdlib.compare (Array.unsafe_get a i : bool) k))
    | C.V_mixed a, _ ->
        let t = Eval.cmp_test op in
        K_col
          (fun i ->
            let x = Array.unsafe_get a i in
            (not (Value.is_null x)) && t (Value.compare_total x v))
    | (C.V_int _ | C.V_float _ | C.V_str _ | C.V_bool _ | C.V_date _), _ ->
        (* cross-type comparison outside the numeric tower:
           [Value.compare_total] then depends only on the constructors,
           so the non-null outcome is one constant *)
        let sample =
          match c.C.c_vec with
          | C.V_int _ -> Value.Int 0
          | C.V_float _ -> Value.Float 0.
          | C.V_str _ -> Value.Str ""
          | C.V_bool _ -> Value.Bool false
          | C.V_date _ -> Value.Date 0
          | C.V_mixed _ -> assert false
        in
        if Eval.cmp_test op (Value.compare_total sample v) then
          K_col (fun i -> not (C.bitmap_get nulls i))
        else K_none

let col_col (cb : C.t) op ja jb : conj =
  let ca = cb.C.cols.(ja) and cb2 = cb.C.cols.(jb) in
  let na = ca.C.c_nulls and nb = cb2.C.c_nulls in
  match (ca.C.c_vec, cb2.C.c_vec) with
  | C.V_int a, C.V_int b | C.V_date a, C.V_date b ->
      let t = int_test op in
      K_col
        (fun i ->
          (not (C.bitmap_get na i))
          && (not (C.bitmap_get nb i))
          && t (Array.unsafe_get a i) (Array.unsafe_get b i))
  | C.V_float a, C.V_float b ->
      let t = float_test op in
      K_col
        (fun i ->
          (not (C.bitmap_get na i))
          && (not (C.bitmap_get nb i))
          && t (Array.unsafe_get a i) (Array.unsafe_get b i))
  | C.V_int a, C.V_float b ->
      let t = float_test op in
      K_col
        (fun i ->
          (not (C.bitmap_get na i))
          && (not (C.bitmap_get nb i))
          && t (float_of_int (Array.unsafe_get a i)) (Array.unsafe_get b i))
  | C.V_float a, C.V_int b ->
      let t = float_test op in
      K_col
        (fun i ->
          (not (C.bitmap_get na i))
          && (not (C.bitmap_get nb i))
          && t (Array.unsafe_get a i) (float_of_int (Array.unsafe_get b i)))
  | C.V_str a, C.V_str b ->
      let t = Eval.cmp_test op in
      K_col
        (fun i ->
          (not (C.bitmap_get na i))
          && (not (C.bitmap_get nb i))
          && t (String.compare (Array.unsafe_get a i) (Array.unsafe_get b i)))
  | _ ->
      (* bool pairs, mixed columns, cross-type: through the base rows,
         exactly the row engine's specialized path *)
      let base = cb.C.base in
      let t = Eval.cmp_test op in
      K_col
        (fun i ->
          let r = Array.unsafe_get base i in
          let va = Array.unsafe_get r ja and vb = Array.unsafe_get r jb in
          (not (Value.is_null va || Value.is_null vb))
          && t (Value.compare_total va vb))

let bind_conj (cb : C.t) (pc : pconj) : conj =
  match pc with
  | P_fast true -> K_all
  | P_fast false -> K_none
  | P_slow f -> K_slow f
  | P_typed (op, pa, pb) -> (
      match (pa, pb) with
      | PO_col j, PO_const v -> col_const op cb.C.cols.(j) v
      | PO_const v, PO_col j -> col_const (flip op) cb.C.cols.(j) v
      | PO_col ja, PO_col jb -> col_col cb op ja jb
      | PO_const _, PO_const _ -> assert false)

let apply_conj vb (base : row array) (orows : row list) = function
  | K_all -> ()
  | K_none ->
      vb.n <- 0;
      vb.dense <- false
  | K_col keep -> refine vb keep
  | K_slow g ->
      refine vb (fun i -> g (Array.unsafe_get base i :: orows) = Some true)

(* ------------------------------------------------------------------ *)
(* Chain recognition                                                    *)
(* ------------------------------------------------------------------ *)

type root_kind =
  | R_pipe  (** chain top is the scan or a filter: emit the base rows *)
  | R_project of (A.expr * string) list
  | R_agg of [ `Hash | `Sort ] * (string * A.agg * A.expr option * bool) list

type chain_desc = {
  cd_scan : Plan.t;  (** the [Table_scan] source *)
  cd_table : string;
  cd_nodes : (Plan.t * A.pred list) list;
      (** scan first, then each [Filter] above it, bottom-up *)
  cd_root_plan : Plan.t;
  cd_root : root_kind;
}

let rec pipe_of (p : Plan.t) =
  match p with
  | Plan.Table_scan { table; filter; _ } -> Some (p, table, [ (p, filter) ])
  | Plan.Filter { child; preds } ->
      Option.map
        (fun (sp, t, nodes) -> (sp, t, nodes @ [ (p, preds) ]))
        (pipe_of child)
  | _ -> None

(** The vectorizable grammar, v1:
    [(Project | scalar non-DISTINCT Aggregate)? · Filter* · Table_scan].
    Index scans, joins, grouped aggregation and all breakers stay on
    the row path, converting at the pipeline edge. *)
let chain_of (p : Plan.t) : chain_desc option =
  let mk child root =
    Option.map
      (fun (sp, table, nodes) ->
        {
          cd_scan = sp;
          cd_table = table;
          cd_nodes = nodes;
          cd_root_plan = p;
          cd_root = root;
        })
      (pipe_of child)
  in
  match p with
  | Plan.Project { child; items; _ } -> mk child (R_project items)
  | Plan.Aggregate { child; keys = []; strategy; aggs; _ }
    when List.for_all (fun (_, _, _, dist) -> not dist) aggs ->
      mk child (R_agg (strategy, aggs))
  | Plan.Table_scan _ | Plan.Filter _ -> mk p R_pipe
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Aggregate fast paths                                                 *)
(* ------------------------------------------------------------------ *)

(* Aggregate argument source, compiled at prepare time. *)
type aggsrc =
  | AS_none
  | AS_col of int
  | AS_expr of (row list -> Value.t)

(* Per-execution accumulator, bound to the columnar image at open.
   Typed runs keep unboxed running state; [AR_col]/[AR_expr] go through
   the shared generic accumulator, so semantics (and [Value.arith]
   corner cases like date addition) cannot drift from the row engine. *)
type arun =
  | AR_unit
  | AR_int of int array * Bytes.t * istate
  | AR_float of float array * Bytes.t * fstate
  | AR_col of int * acc
  | AR_expr of (row list -> Value.t) * acc

and istate = {
  mutable ic : int;
  mutable isum : int;
  mutable imn : int;
  mutable imx : int;
}

and fstate = {
  mutable fc : int;
  mutable fsum : float;
  mutable fmn : float;
  mutable fmx : float;
}

let mk_run (cb : C.t) = function
  | AS_none -> AR_unit
  | AS_expr f -> AR_expr (f, acc_create ())
  | AS_col j -> (
      let c = cb.C.cols.(j) in
      match c.C.c_vec with
      | C.V_int a -> AR_int (a, c.C.c_nulls, { ic = 0; isum = 0; imn = 0; imx = 0 })
      | C.V_float a ->
          AR_float (a, c.C.c_nulls, { fc = 0; fsum = 0.; fmn = 0.; fmx = 0. })
      | _ -> AR_col (j, acc_create ()))

(* Fold the run back into a generic accumulator and let [acc_result]
   produce the value — COUNT/SUM/MIN/MAX/AVG semantics (including the
   empty-input NULLs and integer-average promotion) stay shared. *)
let run_result (a : A.agg) (ar : arun) ~rows_in_group : Value.t =
  let acc =
    match ar with
    | AR_unit -> acc_create ()
    | AR_col (_, acc) | AR_expr (_, acc) -> acc
    | AR_int (_, _, st) ->
        {
          a_count = st.ic;
          a_sum = (if st.ic = 0 then Value.Null else Value.Int st.isum);
          a_min = (if st.ic = 0 then Value.Null else Value.Int st.imn);
          a_max = (if st.ic = 0 then Value.Null else Value.Int st.imx);
          a_seen = Vkey.empty;
        }
    | AR_float (_, _, st) ->
        {
          a_count = st.fc;
          a_sum = (if st.fc = 0 then Value.Null else Value.Float st.fsum);
          a_min = (if st.fc = 0 then Value.Null else Value.Float st.fmn);
          a_max = (if st.fc = 0 then Value.Null else Value.Float st.fmx);
          a_seen = Vkey.empty;
        }
  in
  acc_result a acc ~rows_in_group

(* ------------------------------------------------------------------ *)
(* Chain construction                                                   *)
(* ------------------------------------------------------------------ *)

(* One chain node (the scan or a filter above it): its conjuncts and,
   in analyze mode, its stat record. [sg_charge] is false for the
   pipeline root, which the executor's standard wrapper charges. *)
type stage = {
  sg_preds : pconj array;
  mutable sg_conjs : conj array;  (* rebound per columnar image *)
  sg_charge : bool;
  sg_stat : node_stat option;
}

let build (ctx : ctx) (scopes : layout list) (cd : chain_desc) : cursor =
  let meter = ctx.meter in
  let binds = ctx.binds in
  let rel = Db.relation ctx.db cd.cd_table in
  let scan_layout = Plan.layout cd.cd_scan ctx.db.Db.cat in
  let width = Array.length scan_layout in
  let seg = ctx.size in
  let vb =
    { lo = 0; hi = 0; sel = Array.make (max 1 seg) 0; n = 0; dense = true }
  in
  Meter.charge_vec_alloc (max 1 seg);
  let stat_of p =
    match ctx.analyze with
    | None -> None
    | Some tbl ->
        let st = node_stat_of tbl p in
        st.ns_engine <- "vector";
        Some st
  in
  let n_nodes = List.length cd.cd_nodes in
  let is_pipe = match cd.cd_root with R_pipe -> true | _ -> false in
  let stages =
    List.mapi
      (fun k (p, preds) ->
        let is_root = is_pipe && k = n_nodes - 1 in
        {
          sg_preds =
            Array.of_list
              (List.map (compile_pred ~meter ~binds scan_layout scopes) preds);
          sg_conjs = [||];
          sg_charge = not is_root;
          sg_stat = stat_of p;
        })
      cd.cd_nodes
  in
  let root_stat =
    if is_pipe then (List.nth stages (n_nodes - 1)).sg_stat
    else stat_of cd.cd_root_plan
  in
  (* per-open chain state *)
  let base = ref rel.Relation.r_rows in
  let cbref : C.t option ref = ref None in
  let pos = ref 0 in
  let orows_r = ref [] in
  let rebind () =
    let rows = rel.Relation.r_rows in
    let stale =
      match !cbref with Some cb -> cb.C.base != rows | None -> true
    in
    if stale then begin
      let cb = C.of_rows_cached rows ~width in
      cbref := Some cb;
      base := rows;
      List.iter
        (fun sg -> sg.sg_conjs <- Array.map (bind_conj cb) sg.sg_preds)
        stages
    end
  in
  let open_chain orows =
    orows_r := orows;
    pos := 0;
    rebind ();
    match ctx.analyze with
    | None -> meter.Meter.pages_read <- meter.Meter.pages_read + Relation.pages rel
    | Some _ ->
        (* every charging chain node counts one execution and absorbs
           the open charges, as the nested row wrappers would *)
        let m0 = Meter.copy meter in
        meter.Meter.pages_read <- meter.Meter.pages_read + Relation.pages rel;
        let d = Meter.diff meter m0 in
        List.iter
          (fun sg ->
            match sg.sg_stat with
            | Some st when sg.sg_charge ->
                st.ns_calls <- st.ns_calls + 1;
                Meter.add st.ns_meter d
            | _ -> ())
          stages
  in
  (* Advance one segment through every chain node; false at exhaustion.
     Stage k's analyze meter gets the cumulative segment delta after
     its conjuncts ran — i.e. its own work plus everything below it,
     exactly the nesting of the row engine's per-node measures. *)
  let step () =
    let rows = !base in
    let nrows = Array.length rows in
    if !pos >= nrows then false
    else begin
      let lo = !pos in
      let hi = min nrows (lo + seg) in
      pos := hi;
      vb.lo <- lo;
      vb.hi <- hi;
      vb.n <- hi - lo;
      vb.dense <- true;
      if !force_sparse then begin
        let sel = vb.sel in
        for s = 0 to hi - lo - 1 do
          Array.unsafe_set sel s (lo + s)
        done;
        vb.dense <- false
      end;
      let orows = !orows_r in
      let m0 =
        match ctx.analyze with
        | Some _ -> Some (Meter.copy meter)
        | None -> None
      in
      List.iteri
        (fun k sg ->
          let sel_in = if k = 0 then hi - lo else vb.n in
          if k = 0 then
            meter.Meter.rows_scanned <- meter.Meter.rows_scanned + (hi - lo);
          Array.iter (fun cj -> apply_conj vb rows orows cj) sg.sg_conjs;
          if sg.sg_charge then
            meter.Meter.rows_out <- meter.Meter.rows_out + vb.n;
          match sg.sg_stat with
          | Some st ->
              st.ns_sel_in <- st.ns_sel_in + sel_in;
              if sg.sg_charge then begin
                st.ns_rows <- st.ns_rows + vb.n;
                match m0 with
                | Some m0 -> Meter.add st.ns_meter (Meter.diff meter m0)
                | None -> ()
              end
          | None -> ())
        stages;
      true
    end
  in
  let close_chain () = () in
  let out = B.create (max 1 seg) in
  match cd.cd_root with
  | R_pipe ->
      (* identity edge: the surviving selection materializes as the
         original base-row pointers, no copying or re-boxing *)
      let rec next () =
        if step () then
          if vb.n = 0 then next ()
          else begin
            let data = out.B.data in
            let rows = !base in
            (if vb.dense then begin
               let k = ref 0 in
               for i = vb.lo to vb.hi - 1 do
                 Array.unsafe_set data !k (Array.unsafe_get rows i);
                 incr k
               done
             end
             else
               let sel = vb.sel in
               for s = 0 to vb.n - 1 do
                 Array.unsafe_set data s
                   (Array.unsafe_get rows (Array.unsafe_get sel s))
               done);
            out.B.len <- vb.n;
            Some out
          end
        else None
      in
      { c_open = open_chain; c_next = next; c_close = close_chain }
  | R_project items ->
      let fitems =
        Array.of_list
          (List.map
             (fun (e, _) ->
               match e with
               | A.Col c -> (
                   match Eval.find_col scan_layout c with
                   | Some j -> `Col j
                   | None ->
                       `Expr
                         (Eval.compile_expr ~meter ~binds
                            (scan_layout :: scopes) e))
               | A.Const v -> `Const v
               | A.Bind (i, peek) ->
                   `Const
                     (if i >= 0 && i < Array.length binds then binds.(i)
                      else peek)
               | _ ->
                   `Expr
                     (Eval.compile_expr ~meter ~binds (scan_layout :: scopes) e))
             items)
      in
      let ni = Array.length fitems in
      let emit_row r orows =
        let o = Array.make ni Value.Null in
        for k = 0 to ni - 1 do
          Array.unsafe_set o k
            (match Array.unsafe_get fitems k with
            | `Col j -> Array.unsafe_get r j
            | `Const v -> v
            | `Expr f -> f (r :: orows))
        done;
        o
      in
      let rec next () =
        if step () then
          if vb.n = 0 then next ()
          else begin
            (match root_stat with
            | Some st -> st.ns_sel_in <- st.ns_sel_in + vb.n
            | None -> ());
            let data = out.B.data in
            let rows = !base in
            let orows = !orows_r in
            (if vb.dense then begin
               let k = ref 0 in
               for i = vb.lo to vb.hi - 1 do
                 Array.unsafe_set data !k
                   (emit_row (Array.unsafe_get rows i) orows);
                 incr k
               done
             end
             else
               let sel = vb.sel in
               for s = 0 to vb.n - 1 do
                 Array.unsafe_set data s
                   (emit_row (Array.unsafe_get rows (Array.unsafe_get sel s))
                      orows)
               done);
            out.B.len <- vb.n;
            Some out
          end
        else None
      in
      { c_open = open_chain; c_next = next; c_close = close_chain }
  | R_agg (strategy, aggs) ->
      let srcs =
        Array.of_list
          (List.map
             (fun (_, _, eo, _) ->
               match eo with
               | None -> AS_none
               | Some (A.Col c as e) -> (
                   match Eval.find_col scan_layout c with
                   | Some j -> AS_col j
                   | None ->
                       AS_expr
                         (Eval.compile_expr ~meter ~binds
                            (scan_layout :: scopes) e))
               | Some e ->
                   AS_expr
                     (Eval.compile_expr ~meter ~binds (scan_layout :: scopes) e))
             aggs)
      in
      let kinds = Array.of_list (List.map (fun (_, a, _, _) -> a) aggs) in
      let runs = ref [||] in
      let ntot = ref 0 in
      let emitted = ref false in
      let accumulate orows =
        let rows = !base in
        Array.iter
          (fun ar ->
            match ar with
            | AR_unit -> ()
            | AR_int (a, nulls, st) ->
                let add i =
                  if not (C.bitmap_get nulls i) then begin
                    let v = Array.unsafe_get a i in
                    if st.ic = 0 then begin
                      st.isum <- v;
                      st.imn <- v;
                      st.imx <- v
                    end
                    else begin
                      st.isum <- st.isum + v;
                      if v < st.imn then st.imn <- v;
                      if v > st.imx then st.imx <- v
                    end;
                    st.ic <- st.ic + 1
                  end
                in
                if vb.dense then
                  for i = vb.lo to vb.hi - 1 do
                    add i
                  done
                else
                  for s = 0 to vb.n - 1 do
                    add (Array.unsafe_get vb.sel s)
                  done
            | AR_float (a, nulls, st) ->
                (* sum in selection order, min/max via [compare] — the
                   float image of the generic accumulator, bit-exact *)
                let add i =
                  if not (C.bitmap_get nulls i) then begin
                    let v = Array.unsafe_get a i in
                    if st.fc = 0 then begin
                      st.fsum <- v;
                      st.fmn <- v;
                      st.fmx <- v
                    end
                    else begin
                      st.fsum <- st.fsum +. v;
                      if Stdlib.compare v st.fmn < 0 then st.fmn <- v;
                      if Stdlib.compare v st.fmx > 0 then st.fmx <- v
                    end;
                    st.fc <- st.fc + 1
                  end
                in
                if vb.dense then
                  for i = vb.lo to vb.hi - 1 do
                    add i
                  done
                else
                  for s = 0 to vb.n - 1 do
                    add (Array.unsafe_get vb.sel s)
                  done
            | AR_col (j, acc) ->
                let add i =
                  acc_add false acc (Array.unsafe_get (Array.unsafe_get rows i) j)
                in
                if vb.dense then
                  for i = vb.lo to vb.hi - 1 do
                    add i
                  done
                else
                  for s = 0 to vb.n - 1 do
                    add (Array.unsafe_get vb.sel s)
                  done
            | AR_expr (f, acc) ->
                let add i =
                  acc_add false acc (f (Array.unsafe_get rows i :: orows))
                in
                if vb.dense then
                  for i = vb.lo to vb.hi - 1 do
                    add i
                  done
                else
                  for s = 0 to vb.n - 1 do
                    add (Array.unsafe_get vb.sel s)
                  done)
          !runs
      in
      let c_open orows =
        open_chain orows;
        ntot := 0;
        emitted := false;
        let cb = match !cbref with Some cb -> cb | None -> assert false in
        runs := Array.map (mk_run cb) srcs
      in
      let c_next () =
        if !emitted then None
        else begin
          let orows = !orows_r in
          while step () do
            meter.Meter.agg_rows <- meter.Meter.agg_rows + vb.n;
            (match root_stat with
            | Some st -> st.ns_sel_in <- st.ns_sel_in + vb.n
            | None -> ());
            ntot := !ntot + vb.n;
            accumulate orows
          done;
          (match strategy with
          | `Sort -> charge_sort ctx !ntot
          | `Hash -> ());
          emitted := true;
          let o =
            Array.init (Array.length kinds) (fun k ->
                run_result kinds.(k) !runs.(k) ~rows_in_group:!ntot)
          in
          out.B.data.(0) <- o;
          out.B.len <- 1;
          Some out
        end
      in
      { c_open; c_next; c_close = close_chain }

(* ------------------------------------------------------------------ *)
(* The hybrid choice                                                    *)
(* ------------------------------------------------------------------ *)

(* Estimated rows entering the pipeline. The planner hint (threaded by
   callers that ran {!Planner.Plan_est}) takes precedence; without one
   the table's cardinality stands in. *)
let pipeline_card (ctx : ctx) (cd : chain_desc) : float =
  match ctx.card_of cd.cd_scan with
  | Some c -> c
  | None ->
      float_of_int (Relation.cardinality (Db.relation ctx.db cd.cd_table))

(** Vectorize [p] if it is a vectorizable pipeline chain and the engine
    mode (plus, under [Auto], the estimated pipeline cardinality
    against {!Cursor.ctx.vector_threshold}) selects the columnar path.
    Returns the {e unwrapped} root cursor — the executor's standard
    prepare wrapper charges the root node, exactly as for a row
    cursor. *)
let try_root (ctx : ctx) (scopes : layout list) (p : Plan.t) : cursor option =
  match chain_of p with
  | None -> None
  | Some cd ->
      let use =
        match ctx.engine with
        | Row -> false
        | Vector -> true
        | Auto -> pipeline_card ctx cd >= ctx.vector_threshold
      in
      if not use then None
      else begin
        dispatch_vector ctx.estats;
        Some (build ctx scopes cd)
      end
