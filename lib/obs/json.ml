(** Minimal JSON: emission for the trace sinks and a small parser used
    by the JSON-Lines schema check.

    Deliberately zero-dependency (stdlib only) so {!Obs} can sit below
    every other library in the build graph. Emission covers exactly the
    subset the sinks produce; the parser accepts standard JSON with the
    usual escapes and is only meant to re-read our own output and
    validate it, not to be a general-purpose parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                             *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(** Floats must stay valid JSON: non-finite values are emitted as
    [null] (they only arise from aborted spans / infinite costs). *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string (j : t) : string =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then (
      pos := !pos + String.length word;
      value)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* decode to UTF-8; the sinks only emit control chars *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then (
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
              else (
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))));
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          List [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* accessors used by the schema checks *)
let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let as_int = function Int i -> Some i | _ -> None
let as_string = function Str s -> Some s | _ -> None

let as_number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
