(** Metrics registry: named counters, gauges and log-bucketed
    histograms with JSON and Prometheus exporters.

    The registry is the always-on complement of {!Trace}: traces record
    {e one} run in full detail, the registry accumulates {e every} run
    into constant-memory aggregates that survive a whole [serve]
    session. Metrics are created once (find-or-create by name + label
    set) and then updated by direct field mutation, so the hot-path
    cost of a counter bump is one load and one store; call sites that
    sit inside per-batch loops additionally gate on {!enabled} so the
    bench can measure the on/off delta honestly.

    Histograms are log-bucketed at a fixed ~1.2x ratio: bucket [i >= 1]
    covers [(lo*r^(i-1), lo*r^i]] with [lo = 1e-9] and [r = 1.2],
    bucket [0] is the underflow bucket ([v <= lo]), and the last bucket
    absorbs overflow. One histogram is a fixed [int array] (constant
    memory, no per-observation allocation) plus exact count / sum /
    min / max, so any quantile readout is within one bucket ratio
    (~20%) of the exact sorted-order quantile — the property the test
    suite checks — and two histograms merge by field-wise addition into
    exactly the histogram that would have recorded both value streams.

    Deliberately dependency-free (stdlib + {!Json}) so every layer of
    the system, including the executor's inner loops, can charge
    metrics without a dependency cycle. *)

(* ------------------------------------------------------------------ *)
(* Bucket scheme                                                        *)
(* ------------------------------------------------------------------ *)

let bucket_ratio = 1.2
let bucket_lo = 1e-9

(** Bucket count: [lo * ratio^(n-2)] must clear the largest values we
    ever record (row counts up to ~1e12, seconds up to ~1e3). 268 log
    buckets reach [1e-9 * 1.2^267 ~ 1.4e12]. *)
let n_buckets = 268

let inv_log_ratio = 1. /. Float.log bucket_ratio

(** Upper edge of bucket [i] (the value reported for quantiles landing
    in it). *)
let bucket_upper i =
  if i <= 0 then bucket_lo else bucket_lo *. (bucket_ratio ** float_of_int i)

let bucket_of (v : float) : int =
  if not (v > bucket_lo) then 0
  else
    let i =
      1 + int_of_float (Float.floor (Float.log (v /. bucket_lo) *. inv_log_ratio))
    in
    if i >= n_buckets then n_buckets - 1 else i

(* ------------------------------------------------------------------ *)
(* Metric records                                                       *)
(* ------------------------------------------------------------------ *)

type counter = {
  c_name : string;
  c_labels : (string * string) list;
  mutable c_value : int;
}

type gauge = {
  g_name : string;
  g_labels : (string * string) list;
  mutable g_value : float;
}

type histogram = {
  h_name : string;
  h_labels : (string * string) list;
  h_buckets : int array;  (** per-bucket observation counts *)
  mutable h_count : int;
  h_stats : float array;
      (** [sum; min; max] — exact; min is [infinity] and max
          [neg_infinity] while empty. A flat float array rather than
          mutable float fields: in a mixed record every float store
          boxes, so the hot [observe] path would allocate per
          observation. *)
}

let hist_sum h = h.h_stats.(0)
let hist_min h = h.h_stats.(1)
let hist_max h = h.h_stats.(2)

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

(** Process-wide switch for call sites inside hot loops (per-batch,
    per-pipeline). Registry bookkeeping itself is always available;
    this only gates the highest-frequency observation points so the
    bench can measure metrics-on vs metrics-off. *)
let enabled = ref true

let inc c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let set g v = g.g_value <- v

let observe h v =
  let i = bucket_of v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1;
  h.h_count <- h.h_count + 1;
  let s = h.h_stats in
  s.(0) <- s.(0) +. v;
  if v < s.(1) then s.(1) <- v;
  if v > s.(2) then s.(2) <- v

(* small non-negative ints (batch fills, row counts) hit a precomputed
   bucket table instead of paying a [Float.log] per observation — the
   integer observation points sit in per-batch loops. Kept as [Bytes]
   (4 KB, one page) rather than an int array (32 KB) to limit cache
   footprint on the hot path; bucket_of 4095. = 160 so every index
   fits a byte with current bucket constants (checked at build). *)
let int_bucket_table =
  lazy
    (Bytes.init 4096 (fun i ->
         let b = bucket_of (float_of_int i) in
         assert (b < 256);
         Char.chr b))

let observe_int h n =
  if n >= 0 && n < 4096 then begin
    let v = float_of_int n in
    let i = Char.code (Bytes.unsafe_get (Lazy.force int_bucket_table) n) in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1;
    h.h_count <- h.h_count + 1;
    let s = h.h_stats in
    s.(0) <- s.(0) +. v;
    if v < s.(1) then s.(1) <- v;
    if v > s.(2) then s.(2) <- v
  end
  else observe h (float_of_int n)

(** [quantile h q] for [q] in [[0,1]]: the upper edge of the bucket
    holding the rank-[ceil(q*count)] observation, clamped into
    [[h_min, h_max]]. For any observation stream of values above
    {!bucket_lo} this is within one bucket ratio {e above} the exact
    sorted-order quantile; the underflow bucket carries no bound.
    [nan] while empty. *)
let quantile h q =
  if h.h_count = 0 then nan
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int h.h_count)) in
    let rank = max 1 (min rank h.h_count) in
    let i = ref 0 and cum = ref 0 in
    while !cum < rank && !i < n_buckets do
      cum := !cum + h.h_buckets.(!i);
      if !cum < rank then incr i
    done;
    Float.max (hist_min h) (Float.min (bucket_upper !i) (hist_max h))
  end

let hist_mean h =
  if h.h_count = 0 then nan else hist_sum h /. float_of_int h.h_count

(** Merge [src] into [dst] field-wise: afterwards [dst] is exactly the
    histogram that would have recorded both observation streams. *)
let merge_into ~dst (src : histogram) =
  Array.iteri (fun i n -> dst.h_buckets.(i) <- dst.h_buckets.(i) + n) src.h_buckets;
  dst.h_count <- dst.h_count + src.h_count;
  dst.h_stats.(0) <- dst.h_stats.(0) +. src.h_stats.(0);
  if src.h_stats.(1) < dst.h_stats.(1) then dst.h_stats.(1) <- src.h_stats.(1);
  if src.h_stats.(2) > dst.h_stats.(2) then dst.h_stats.(2) <- src.h_stats.(2)

(** Standalone histogram, not attached to any registry (the query
    store embeds one per entry). *)
let hist_create ?(labels = []) name =
  {
    h_name = name;
    h_labels = labels;
    h_buckets = Array.make n_buckets 0;
    h_count = 0;
    h_stats = [| 0.; infinity; neg_infinity |];
  }

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

type t = { tbl : (string, metric) Hashtbl.t }

let create () : t = { tbl = Hashtbl.create 64 }

(** The process-wide default registry. Everything in the system charges
    here unless handed an explicit registry; exporters snapshot it. *)
let default : t = create ()

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=%S" k v)
             (List.sort compare labels))
      ^ "}"

let key name labels = name ^ render_labels labels

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let find_or_create t name labels (make : unit -> metric) (extract : metric -> 'a)
    : 'a =
  let k = key name labels in
  match Hashtbl.find_opt t.tbl k with
  | Some m -> extract m
  | None ->
      let m = make () in
      Hashtbl.replace t.tbl k m;
      extract m

(** Find-or-create a counter. Raises [Invalid_argument] if the name is
    already registered as a different metric kind. *)
let counter ?(labels = []) t name : counter =
  find_or_create t name labels
    (fun () -> Counter { c_name = name; c_labels = labels; c_value = 0 })
    (function
      | Counter c -> c
      | m ->
          invalid_arg
            (Printf.sprintf "Metrics.counter: %s is a %s" name (kind_name m)))

let gauge ?(labels = []) t name : gauge =
  find_or_create t name labels
    (fun () -> Gauge { g_name = name; g_labels = labels; g_value = 0. })
    (function
      | Gauge g -> g
      | m ->
          invalid_arg
            (Printf.sprintf "Metrics.gauge: %s is a %s" name (kind_name m)))

let histogram ?(labels = []) t name : histogram =
  find_or_create t name labels
    (fun () -> Histogram (hist_create ~labels name))
    (function
      | Histogram h -> h
      | m ->
          invalid_arg
            (Printf.sprintf "Metrics.histogram: %s is a %s" name (kind_name m)))

(** Zero every metric in place. Registrations (and any handles call
    sites cached) stay valid — only the accumulated values drop. *)
let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.
      | Histogram h ->
          Array.fill h.h_buckets 0 n_buckets 0;
          h.h_count <- 0;
          h.h_stats.(0) <- 0.;
          h.h_stats.(1) <- infinity;
          h.h_stats.(2) <- neg_infinity)
    t.tbl

(** Snapshot in deterministic (sorted-key) order. *)
let sorted_bindings t : (string * metric) list =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun k m acc -> (k, m) :: acc) t.tbl [])

(* ------------------------------------------------------------------ *)
(* Exporters                                                            *)
(* ------------------------------------------------------------------ *)

let jfloat f = if Float.is_finite f then Json.Float f else Json.Null

(** Histogram summary object: exact count/sum/min/max, the standard
    quantile readouts, and the sparse bucket array (index, count). *)
let hist_to_json h : Json.t =
  let buckets =
    Array.to_list h.h_buckets
    |> List.mapi (fun i n -> (i, n))
    |> List.filter (fun (_, n) -> n > 0)
    |> List.map (fun (i, n) -> Json.List [ Json.Int i; Json.Int n ])
  in
  Json.Obj
    [
      ("count", Json.Int h.h_count);
      ("sum", jfloat (hist_sum h));
      ("min", jfloat (hist_min h));
      ("max", jfloat (hist_max h));
      ("p50", jfloat (quantile h 0.5));
      ("p90", jfloat (quantile h 0.9));
      ("p99", jfloat (quantile h 0.99));
      ("buckets", Json.List buckets);
    ]

(** JSON snapshot of the whole registry, grouped by metric kind, keys
    sorted (deterministic for identical metric values). *)
let to_json t : Json.t =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (fun (k, m) ->
      match m with
      | Counter c -> counters := (k, Json.Int c.c_value) :: !counters
      | Gauge g -> gauges := (k, jfloat g.g_value) :: !gauges
      | Histogram h -> hists := (k, hist_to_json h) :: !hists)
    (List.rev (sorted_bindings t));
  Json.Obj
    [
      ("counters", Json.Obj !counters);
      ("gauges", Json.Obj !gauges);
      ("histograms", Json.Obj !hists);
    ]

let prom_escape v =
  String.concat ""
    (List.map
       (function
         | '\\' -> "\\\\" | '"' -> "\\\"" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length v) (String.get v)))

let prom_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v))
             (List.sort compare labels))
      ^ "}"

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

(** Prometheus text exposition (version 0.0.4): one [# TYPE] line per
    metric family, histograms as cumulative [_bucket{le=...}] series
    (up to the last occupied bucket, then [+Inf]) plus [_sum] and
    [_count]. *)
let to_prometheus t : string =
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.replace typed name ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (_, m) ->
      match m with
      | Counter c ->
          type_line c.c_name "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" c.c_name (prom_labels c.c_labels)
               c.c_value)
      | Gauge g ->
          type_line g.g_name "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" g.g_name (prom_labels g.g_labels)
               (prom_float g.g_value))
      | Histogram h ->
          type_line h.h_name "histogram";
          let last =
            let l = ref (-1) in
            Array.iteri (fun i n -> if n > 0 then l := i) h.h_buckets;
            !l
          in
          let cum = ref 0 in
          for i = 0 to last do
            cum := !cum + h.h_buckets.(i);
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" h.h_name
                 (prom_labels (("le", prom_float (bucket_upper i)) :: h.h_labels))
                 !cum)
          done;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" h.h_name
               (prom_labels (("le", "+Inf") :: h.h_labels))
               h.h_count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" h.h_name (prom_labels h.h_labels)
               (prom_float (hist_sum h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" h.h_name (prom_labels h.h_labels)
               h.h_count))
    (sorted_bindings t);
  Buffer.contents buf

(** Aligned console rendering: counters and gauges one per line,
    histograms with count / mean / p50 / p90 / p99 / max. *)
let to_text t : string =
  let buf = Buffer.create 1024 in
  let bindings = sorted_bindings t in
  let width =
    List.fold_left (fun w (k, _) -> max w (String.length k)) 8 bindings
  in
  List.iter
    (fun (k, m) ->
      match m with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "%-*s %d\n" width k c.c_value)
      | Gauge g ->
          Buffer.add_string buf (Printf.sprintf "%-*s %.3f\n" width k g.g_value)
      | Histogram h ->
          Buffer.add_string buf
            (Printf.sprintf
               "%-*s count=%d mean=%.3g p50=%.3g p90=%.3g p99=%.3g max=%.3g\n"
               width k h.h_count (hist_mean h) (quantile h 0.5) (quantile h 0.9)
               (quantile h 0.99)
               (if h.h_count = 0 then nan else hist_max h)))
    bindings;
  Buffer.contents buf
