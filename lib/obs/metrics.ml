(** Metrics registry: named counters, gauges and log-bucketed
    histograms with JSON and Prometheus exporters.

    The registry is the always-on complement of {!Trace}: traces record
    {e one} run in full detail, the registry accumulates {e every} run
    into constant-memory aggregates that survive a whole [serve]
    session. Metrics are created once (find-or-create by name + label
    set) and then updated through their handle, so the hot-path cost of
    a counter bump is one atomic add; call sites that sit inside
    per-batch loops additionally gate on {!enabled} so the bench can
    measure the on/off delta honestly.

    {b Domain safety.} Every metric is safe to update concurrently from
    multiple domains and loses no observations:

    - counters and gauges are a single [Atomic.t] cell;
    - histograms are {e lock-striped}: a registry histogram holds a
      small power-of-two array of independently-locked accumulators and
      an observation locks only the stripe indexed by the observing
      domain's id, so concurrent workers almost never contend. Readouts
      merge the stripes field-wise under their locks, which is exact —
      the merged histogram is precisely the one a single-domain run of
      the same observation stream would have produced (the property the
      test suite checks with concurrent observers);
    - registration (find-or-create) and snapshotting take the
      registry's mutex; handles themselves are lock-free to use.

    Histograms are log-bucketed at a fixed ~1.2x ratio: bucket [i >= 1]
    covers [(lo*r^(i-1), lo*r^i]] with [lo = 1e-9] and [r = 1.2],
    bucket [0] is the underflow bucket ([v <= lo]), and the last bucket
    absorbs overflow. One stripe is a fixed [int array] (constant
    memory, no per-observation allocation) plus exact count / sum /
    min / max, so any quantile readout is within one bucket ratio
    (~20%) of the exact sorted-order quantile — and two histograms
    merge by field-wise addition into exactly the histogram that would
    have recorded both value streams.

    Deliberately dependency-free (stdlib + {!Json}) so every layer of
    the system, including the executor's inner loops, can charge
    metrics without a dependency cycle. *)

(* ------------------------------------------------------------------ *)
(* Bucket scheme                                                        *)
(* ------------------------------------------------------------------ *)

let bucket_ratio = 1.2
let bucket_lo = 1e-9

(** Bucket count: [lo * ratio^(n-2)] must clear the largest values we
    ever record (row counts up to ~1e12, seconds up to ~1e3). 268 log
    buckets reach [1e-9 * 1.2^267 ~ 1.4e12]. *)
let n_buckets = 268

let inv_log_ratio = 1. /. Float.log bucket_ratio

(** Upper edge of bucket [i] (the value reported for quantiles landing
    in it). *)
let bucket_upper i =
  if i <= 0 then bucket_lo else bucket_lo *. (bucket_ratio ** float_of_int i)

let bucket_of (v : float) : int =
  if not (v > bucket_lo) then 0
  else
    let i =
      1 + int_of_float (Float.floor (Float.log (v /. bucket_lo) *. inv_log_ratio))
    in
    if i >= n_buckets then n_buckets - 1 else i

(* ------------------------------------------------------------------ *)
(* Metric records                                                       *)
(* ------------------------------------------------------------------ *)

type counter = {
  c_name : string;
  c_labels : (string * string) list;
  c_cell : int Atomic.t;
}

type gauge = {
  g_name : string;
  g_labels : (string * string) list;
  g_cell : float Atomic.t;
}

(** One histogram stripe: an independently-locked accumulator. All
    mutation happens under [p_mu]; [p_stats] is [sum; min; max] kept as
    a flat float array (in a mixed record every float store boxes, so
    the hot observe path would allocate per observation). *)
type stripe = {
  p_mu : Mutex.t;
  p_buckets : int array;  (** per-bucket observation counts *)
  mutable p_count : int;
  p_stats : float array;
}

type histogram = {
  h_name : string;
  h_labels : (string * string) list;
  h_stripes : stripe array;  (** power-of-two length *)
  h_smask : int;  (** [Array.length h_stripes - 1] *)
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

(** Process-wide switch for call sites inside hot loops (per-batch,
    per-pipeline). Registry bookkeeping itself is always available;
    this only gates the highest-frequency observation points so the
    bench can measure metrics-on vs metrics-off. A plain [ref]: the
    only writer is the bench's single-threaded toggle, and a stale read
    merely delays the gate by one observation (word-sized reads never
    tear under the OCaml memory model). *)
let enabled = ref true

let inc c = Atomic.incr c.c_cell
let add c n = ignore (Atomic.fetch_and_add c.c_cell n)
let set g v = Atomic.set g.g_cell v
let counter_value c = Atomic.get c.c_cell
let gauge_value g = Atomic.get g.g_cell

(** The stripe an observation on this domain goes to. Domain ids are
    small consecutive ints, so workers spread across stripes; two
    domains sharing a stripe is only a (rare) contention cost, never a
    lost update. *)
let stripe_of h = Array.unsafe_get h.h_stripes ((Domain.self () :> int) land h.h_smask)

let observe h v =
  let s = stripe_of h in
  Mutex.lock s.p_mu;
  let i = bucket_of v in
  s.p_buckets.(i) <- s.p_buckets.(i) + 1;
  s.p_count <- s.p_count + 1;
  let st = s.p_stats in
  st.(0) <- st.(0) +. v;
  if v < st.(1) then st.(1) <- v;
  if v > st.(2) then st.(2) <- v;
  Mutex.unlock s.p_mu

(* small non-negative ints (batch fills, row counts) hit a precomputed
   bucket table instead of paying a [Float.log] per observation — the
   integer observation points sit in per-batch loops. Kept as [Bytes]
   (4 KB, one page) rather than an int array (32 KB) to limit cache
   footprint on the hot path; bucket_of 4095. = 160 so every index
   fits a byte with current bucket constants (checked at build). Built
   eagerly at module init: a [lazy] here would race when the first
   observation comes from two domains at once. *)
let int_bucket_table =
  Bytes.init 4096 (fun i ->
      let b = bucket_of (float_of_int i) in
      assert (b < 256);
      Char.chr b)

let observe_int h n =
  if n >= 0 && n < 4096 then begin
    let v = float_of_int n in
    let i = Char.code (Bytes.unsafe_get int_bucket_table n) in
    let s = stripe_of h in
    Mutex.lock s.p_mu;
    s.p_buckets.(i) <- s.p_buckets.(i) + 1;
    s.p_count <- s.p_count + 1;
    let st = s.p_stats in
    st.(0) <- st.(0) +. v;
    if v < st.(1) then st.(1) <- v;
    if v > st.(2) then st.(2) <- v;
    Mutex.unlock s.p_mu
  end
  else observe h (float_of_int n)

(* ------------------------------------------------------------------ *)
(* Histogram readouts (stripe merges)                                   *)
(* ------------------------------------------------------------------ *)

(** A merged point-in-time copy of a histogram: what a single
    accumulator would hold had it recorded every stripe's stream. *)
type hist_snapshot = {
  sn_count : int;
  sn_buckets : int array;
  sn_sum : float;
  sn_min : float;  (** [infinity] while empty *)
  sn_max : float;  (** [neg_infinity] while empty *)
}

(** Merge every stripe under its lock. Concurrent observations landing
    while the merge walks the stripes appear in the next snapshot. *)
let hist_snapshot h : hist_snapshot =
  let buckets = Array.make n_buckets 0 in
  let count = ref 0 and sum = ref 0. in
  let mn = ref infinity and mx = ref neg_infinity in
  Array.iter
    (fun s ->
      Mutex.lock s.p_mu;
      Array.iteri (fun i n -> if n > 0 then buckets.(i) <- buckets.(i) + n) s.p_buckets;
      count := !count + s.p_count;
      sum := !sum +. s.p_stats.(0);
      if s.p_stats.(1) < !mn then mn := s.p_stats.(1);
      if s.p_stats.(2) > !mx then mx := s.p_stats.(2);
      Mutex.unlock s.p_mu)
    h.h_stripes;
  { sn_count = !count; sn_buckets = buckets; sn_sum = !sum; sn_min = !mn; sn_max = !mx }

let hist_count h = (hist_snapshot h).sn_count
let hist_sum h = (hist_snapshot h).sn_sum
let hist_min h = (hist_snapshot h).sn_min
let hist_max h = (hist_snapshot h).sn_max

(** Merged copy of the per-bucket counts (for tests and tooling). *)
let hist_buckets h = (hist_snapshot h).sn_buckets

let quantile_of_snapshot (s : hist_snapshot) q =
  if s.sn_count = 0 then nan
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int s.sn_count)) in
    let rank = max 1 (min rank s.sn_count) in
    let i = ref 0 and cum = ref 0 in
    while !cum < rank && !i < n_buckets do
      cum := !cum + s.sn_buckets.(!i);
      if !cum < rank then incr i
    done;
    Float.max s.sn_min (Float.min (bucket_upper !i) s.sn_max)
  end

(** [quantile h q] for [q] in [[0,1]]: the upper edge of the bucket
    holding the rank-[ceil(q*count)] observation, clamped into
    [[min, max]]. For any observation stream of values above
    {!bucket_lo} this is within one bucket ratio {e above} the exact
    sorted-order quantile; the underflow bucket carries no bound.
    [nan] while empty. *)
let quantile h q = quantile_of_snapshot (hist_snapshot h) q

let hist_mean h =
  let s = hist_snapshot h in
  if s.sn_count = 0 then nan else s.sn_sum /. float_of_int s.sn_count

(** Merge [src] into [dst] field-wise: afterwards [dst] reads exactly
    like the histogram that would have recorded both observation
    streams. The merge lands in [dst]'s first stripe. *)
let merge_into ~dst (src : histogram) =
  let s = hist_snapshot src in
  let d = dst.h_stripes.(0) in
  Mutex.lock d.p_mu;
  Array.iteri (fun i n -> if n > 0 then d.p_buckets.(i) <- d.p_buckets.(i) + n) s.sn_buckets;
  d.p_count <- d.p_count + s.sn_count;
  d.p_stats.(0) <- d.p_stats.(0) +. s.sn_sum;
  if s.sn_min < d.p_stats.(1) then d.p_stats.(1) <- s.sn_min;
  if s.sn_max > d.p_stats.(2) then d.p_stats.(2) <- s.sn_max;
  Mutex.unlock d.p_mu

let stripe_create () =
  {
    p_mu = Mutex.create ();
    p_buckets = Array.make n_buckets 0;
    p_count = 0;
    p_stats = [| 0.; infinity; neg_infinity |];
  }

(** Registry histograms spread observers over this many stripes; small
    enough that a full merge stays cheap, large enough that a worker
    pool rarely shares one. *)
let default_stripes = 8

(** Standalone histogram, not attached to any registry. [stripes]
    defaults to 1 — the embedded use case ({!Query_store} holds one per
    entry, already under the store's shard lock) should not pay 8
    bucket arrays per entry. *)
let hist_create ?(labels = []) ?(stripes = 1) name =
  let n =
    let rec np2 k = if k >= stripes then k else np2 (k * 2) in
    np2 1
  in
  {
    h_name = name;
    h_labels = labels;
    h_stripes = Array.init n (fun _ -> stripe_create ());
    h_smask = n - 1;
  }

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

type t = {
  tbl : (string, metric) Hashtbl.t;
  mu : Mutex.t;  (** guards [tbl]: registration and snapshots *)
}

let create () : t = { tbl = Hashtbl.create 64; mu = Mutex.create () }

(** The process-wide default registry. Everything in the system charges
    here unless handed an explicit registry; exporters snapshot it. *)
let default : t = create ()

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=%S" k v)
             (List.sort compare labels))
      ^ "}"

let key name labels = name ^ render_labels labels

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let find_or_create t name labels (make : unit -> metric) (extract : metric -> 'a)
    : 'a =
  let k = key name labels in
  Mutex.lock t.mu;
  let m =
    match Hashtbl.find_opt t.tbl k with
    | Some m -> m
    | None ->
        let m = make () in
        Hashtbl.replace t.tbl k m;
        m
  in
  Mutex.unlock t.mu;
  extract m

(** Find-or-create a counter. Raises [Invalid_argument] if the name is
    already registered as a different metric kind. *)
let counter ?(labels = []) t name : counter =
  find_or_create t name labels
    (fun () ->
      Counter { c_name = name; c_labels = labels; c_cell = Atomic.make 0 })
    (function
      | Counter c -> c
      | m ->
          invalid_arg
            (Printf.sprintf "Metrics.counter: %s is a %s" name (kind_name m)))

let gauge ?(labels = []) t name : gauge =
  find_or_create t name labels
    (fun () ->
      Gauge { g_name = name; g_labels = labels; g_cell = Atomic.make 0. })
    (function
      | Gauge g -> g
      | m ->
          invalid_arg
            (Printf.sprintf "Metrics.gauge: %s is a %s" name (kind_name m)))

let histogram ?(labels = []) t name : histogram =
  find_or_create t name labels
    (fun () -> Histogram (hist_create ~labels ~stripes:default_stripes name))
    (function
      | Histogram h -> h
      | m ->
          invalid_arg
            (Printf.sprintf "Metrics.histogram: %s is a %s" name (kind_name m)))

(** Zero every metric in place. Registrations (and any handles call
    sites cached) stay valid — only the accumulated values drop. *)
let reset t =
  Mutex.lock t.mu;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> Atomic.set c.c_cell 0
      | Gauge g -> Atomic.set g.g_cell 0.
      | Histogram h ->
          Array.iter
            (fun s ->
              Mutex.lock s.p_mu;
              Array.fill s.p_buckets 0 n_buckets 0;
              s.p_count <- 0;
              s.p_stats.(0) <- 0.;
              s.p_stats.(1) <- infinity;
              s.p_stats.(2) <- neg_infinity;
              Mutex.unlock s.p_mu)
            h.h_stripes)
    t.tbl;
  Mutex.unlock t.mu

(** Snapshot in deterministic (sorted-key) order. *)
let sorted_bindings t : (string * metric) list =
  Mutex.lock t.mu;
  let bs = Hashtbl.fold (fun k m acc -> (k, m) :: acc) t.tbl [] in
  Mutex.unlock t.mu;
  List.sort (fun (a, _) (b, _) -> compare a b) bs

(* ------------------------------------------------------------------ *)
(* Exporters                                                            *)
(* ------------------------------------------------------------------ *)

let jfloat f = if Float.is_finite f then Json.Float f else Json.Null

(** Histogram summary object: exact count/sum/min/max, the standard
    quantile readouts, and the sparse bucket array (index, count). *)
let hist_to_json h : Json.t =
  let s = hist_snapshot h in
  let buckets =
    Array.to_list s.sn_buckets
    |> List.mapi (fun i n -> (i, n))
    |> List.filter (fun (_, n) -> n > 0)
    |> List.map (fun (i, n) -> Json.List [ Json.Int i; Json.Int n ])
  in
  Json.Obj
    [
      ("count", Json.Int s.sn_count);
      ("sum", jfloat s.sn_sum);
      ("min", jfloat s.sn_min);
      ("max", jfloat s.sn_max);
      ("p50", jfloat (quantile_of_snapshot s 0.5));
      ("p90", jfloat (quantile_of_snapshot s 0.9));
      ("p99", jfloat (quantile_of_snapshot s 0.99));
      ("buckets", Json.List buckets);
    ]

(** JSON snapshot of the whole registry, grouped by metric kind, keys
    sorted (deterministic for identical metric values). *)
let to_json t : Json.t =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (fun (k, m) ->
      match m with
      | Counter c -> counters := (k, Json.Int (counter_value c)) :: !counters
      | Gauge g -> gauges := (k, jfloat (gauge_value g)) :: !gauges
      | Histogram h -> hists := (k, hist_to_json h) :: !hists)
    (List.rev (sorted_bindings t));
  Json.Obj
    [
      ("counters", Json.Obj !counters);
      ("gauges", Json.Obj !gauges);
      ("histograms", Json.Obj !hists);
    ]

let prom_escape v =
  String.concat ""
    (List.map
       (function
         | '\\' -> "\\\\" | '"' -> "\\\"" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length v) (String.get v)))

let prom_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v))
             (List.sort compare labels))
      ^ "}"

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

(** Prometheus text exposition (version 0.0.4): one [# TYPE] line per
    metric family, histograms as cumulative [_bucket{le=...}] series
    (up to the last occupied bucket, then [+Inf]) plus [_sum] and
    [_count]. *)
let to_prometheus t : string =
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.replace typed name ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (_, m) ->
      match m with
      | Counter c ->
          type_line c.c_name "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" c.c_name (prom_labels c.c_labels)
               (counter_value c))
      | Gauge g ->
          type_line g.g_name "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" g.g_name (prom_labels g.g_labels)
               (prom_float (gauge_value g)))
      | Histogram h ->
          type_line h.h_name "histogram";
          let s = hist_snapshot h in
          let last =
            let l = ref (-1) in
            Array.iteri (fun i n -> if n > 0 then l := i) s.sn_buckets;
            !l
          in
          let cum = ref 0 in
          for i = 0 to last do
            cum := !cum + s.sn_buckets.(i);
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" h.h_name
                 (prom_labels (("le", prom_float (bucket_upper i)) :: h.h_labels))
                 !cum)
          done;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" h.h_name
               (prom_labels (("le", "+Inf") :: h.h_labels))
               s.sn_count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" h.h_name (prom_labels h.h_labels)
               (prom_float s.sn_sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" h.h_name (prom_labels h.h_labels)
               s.sn_count))
    (sorted_bindings t);
  Buffer.contents buf

(** Aligned console rendering: counters and gauges one per line,
    histograms with count / mean / p50 / p90 / p99 / max. *)
let to_text t : string =
  let buf = Buffer.create 1024 in
  let bindings = sorted_bindings t in
  let width =
    List.fold_left (fun w (k, _) -> max w (String.length k)) 8 bindings
  in
  List.iter
    (fun (k, m) ->
      match m with
      | Counter c ->
          Buffer.add_string buf
            (Printf.sprintf "%-*s %d\n" width k (counter_value c))
      | Gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "%-*s %.3f\n" width k (gauge_value g))
      | Histogram h ->
          let s = hist_snapshot h in
          Buffer.add_string buf
            (Printf.sprintf
               "%-*s count=%d mean=%.3g p50=%.3g p90=%.3g p99=%.3g max=%.3g\n"
               width k s.sn_count
               (if s.sn_count = 0 then nan
                else s.sn_sum /. float_of_int s.sn_count)
               (quantile_of_snapshot s 0.5)
               (quantile_of_snapshot s 0.9)
               (quantile_of_snapshot s 0.99)
               (if s.sn_count = 0 then nan else s.sn_max)))
    bindings;
  Buffer.contents buf
