(** Per-fingerprint query store: an AWR-style workload repository.

    One entry per {e Generic} structural fingerprint — the same key the
    plan cache uses, so every literal variant of a query shape
    accumulates into one record. Each entry carries execution and
    parse counts, a latency histogram ({!Metrics.histogram},
    constant-memory), rows returned, per-field meter totals, the
    engine mix (row vs vectorized pipelines), transformation
    attempt/accept counts from the optimizer report of every hard
    parse, and per-operator Q-error aggregates from EXPLAIN-ANALYZE
    feedback. This is the data foundation adaptive reoptimization
    needs: which shapes dominate total time, where estimates go wrong,
    and whether the cost-based transformations pay off per shape.

    The store is bounded: when a {e new} fingerprint would exceed the
    capacity, the least-recently-executed entry is evicted (and
    counted). Hash collisions are disambiguated by the canonical query
    text, mirroring {!Plan_cache}'s verified probes.

    {b Domain safety.} Sharded exactly like the plan cache: the
    fingerprint picks one of a power-of-two number of shards, each an
    independent hashtable behind its own mutex. [observe] performs
    {e every} mutation of the entry — counts, meters, the embedded
    latency histogram, and the optional hard-parse transformation and
    Q-error attachments — inside the one shard lock, so an entry's
    fields never tear apart under concurrent executions of the same
    query shape and no observation is lost. The default [shards = 1]
    keeps the single-lock behavior (and one global LRU order) of a
    private store. The bare [record_tx] / [record_qerr] helpers mutate
    an entry directly and are for single-domain use only; concurrent
    callers pass [~txs] / [~qerrs] to [observe] instead.

    Deliberately generic (fingerprint [int] + rendered text) so it can
    live below {!Sqlir} in the build graph; the service layer owns the
    fingerprinting and rendering. The JSON snapshot separates
    wall-clock-derived fields under a per-entry ["wall"] object so
    that, for a fixed workload and seed, the rest of the snapshot is
    bit-identical across runs — the determinism property the test
    suite checks. *)

module M = Metrics

type entry = {
  qe_fp : int;  (** Generic fingerprint hash *)
  qe_text : string;  (** canonical parameterized query, one line *)
  mutable qe_execs : int;
  mutable qe_soft : int;  (** soft parses (cache hits) *)
  mutable qe_hard : int;  (** hard parses (miss / invalidated / revalidated) *)
  mutable qe_reval : int;  (** hard parses kept by the cost-delta guard *)
  mutable qe_inval : int;  (** hard parses that replaced the plan *)
  mutable qe_rows : int;  (** total rows returned *)
  qe_secs : float array;
      (** [exec; parse] total wall seconds. A flat float array rather
          than mutable float fields so accumulating them in the mixed
          record does not box per execution. *)
  qe_latency : M.histogram;  (** per-execution wall seconds *)
  mutable qe_meter_names : string array;  (** canonical meter field names *)
  mutable qe_meter : int array;  (** meter field totals, same order *)
  mutable qe_vec_pipelines : int;
  mutable qe_row_pipelines : int;
  mutable qe_dop_max : int;
      (** max effective exchange worker count observed; 0 = serial *)
  mutable qe_parts_scanned : int;  (** partitions actually read *)
  mutable qe_parts_pruned : int;  (** partitions skipped by pruning *)
  qe_tx : (string, int * int) Hashtbl.t;  (** tx -> (attempts, accepts) *)
  mutable qe_qerr_max : float;  (** worst per-operator Q-error observed *)
  mutable qe_qerr_sum : float;
  mutable qe_qerr_n : int;  (** per-operator Q-error samples *)
  mutable qe_last_used : int;  (** logical clock of the last execution *)
}

(** Total execution / parse wall seconds accumulated by an entry. *)
let qe_exec_s e = e.qe_secs.(0)

let qe_parse_s e = e.qe_secs.(1)

type shard = {
  mu : Mutex.t;
  tbl : (int, entry list) Hashtbl.t;
  mutable clock : int;
  mutable evictions : int;
  mutable entries : int;  (** live entry count (O(1) capacity check) *)
}

type t = {
  shards : shard array;  (** power-of-two length *)
  smask : int;
  shard_capacity : int;  (** per-shard entry bound *)
}

let create ?(capacity = 256) ?(shards = 1) () : t =
  let capacity = max 1 capacity in
  let n =
    let rec np2 k = if k >= shards || k >= 256 then k else np2 (k * 2) in
    np2 1
  in
  let shard_capacity = (capacity + n - 1) / n in
  {
    shards =
      Array.init n (fun _ ->
          {
            mu = Mutex.create ();
            tbl = Hashtbl.create (max 16 shard_capacity);
            clock = 0;
            evictions = 0;
            entries = 0;
          });
    smask = n - 1;
    shard_capacity;
  }

let shard_of t (fp : int) = Array.unsafe_get t.shards (fp land t.smask)

let length t =
  Array.fold_left
    (fun n s ->
      Mutex.lock s.mu;
      let e = s.entries in
      Mutex.unlock s.mu;
      n + e)
    0 t.shards

let evictions t =
  Array.fold_left
    (fun n s ->
      Mutex.lock s.mu;
      let e = s.evictions in
      Mutex.unlock s.mu;
      n + e)
    0 t.shards

let entries t : entry list =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.mu;
      let es = Hashtbl.fold (fun _ es acc -> es @ acc) s.tbl acc in
      Mutex.unlock s.mu;
      es)
    [] t.shards

(* caller holds [s.mu] *)
let evict_lru_locked s =
  let victim =
    Hashtbl.fold
      (fun _ es acc ->
        List.fold_left
          (fun acc e ->
            match acc with
            | Some best when best.qe_last_used <= e.qe_last_used -> acc
            | _ -> Some e)
          acc es)
      s.tbl None
  in
  match victim with
  | None -> ()
  | Some e ->
      (match Hashtbl.find_opt s.tbl e.qe_fp with
      | None -> ()
      | Some es -> (
          match List.filter (fun e' -> e' != e) es with
          | [] -> Hashtbl.remove s.tbl e.qe_fp
          | es' -> Hashtbl.replace s.tbl e.qe_fp es'));
      s.entries <- s.entries - 1;
      s.evictions <- s.evictions + 1

(* caller holds the entry's shard lock *)
let record_tx_locked (e : entry) ~(name : string) ~(accepted : bool) : unit =
  let att, acc =
    match Hashtbl.find_opt e.qe_tx name with Some p -> p | None -> (0, 0)
  in
  Hashtbl.replace e.qe_tx name (att + 1, if accepted then acc + 1 else acc)

(* caller holds the entry's shard lock *)
let record_qerr_locked (e : entry) (qerrs : float list) : unit =
  List.iter
    (fun q ->
      if Float.is_finite q then begin
        if Float.is_nan e.qe_qerr_max || q > e.qe_qerr_max then
          e.qe_qerr_max <- q;
        e.qe_qerr_sum <- e.qe_qerr_sum +. q;
        e.qe_qerr_n <- e.qe_qerr_n + 1
      end)
    qerrs

(** One execution observed for fingerprint [fp]. [text] is evaluated
    only when the entry is created (rendering the canonical query is
    not hot-path work). [meter] is the execution's meter delta in the
    canonical order named by [meter_names] ([Exec.Meter.field_names]
    upstream); callers pass one shared physically-equal [meter_names]
    array, which keeps accumulation a positional unboxed loop on the
    hot path. [txs] (transformation attempts of a hard parse) and
    [qerrs] (per-operator Q-errors of an EXPLAIN-ANALYZE run) are
    folded in under the same shard lock as the rest of the update.
    Returns the (created or updated) entry for single-domain callers
    that want to attach more data. *)
let observe ?(txs : (string * bool) list = []) ?(qerrs : float list = [])
    ?(dop = 0) ?(parts_scanned = 0) ?(parts_pruned = 0) t ~(fp : int)
    ~(text : unit -> string) ~(outcome : string) ~(rows : int)
    ~(exec_s : float) ~(parse_s : float) ~(meter_names : string array)
    ~(meter : int array) ~(vec_pipelines : int) ~(row_pipelines : int) : entry
    =
  let s = shard_of t fp in
  Mutex.lock s.mu;
  let e =
    let bucket =
      match Hashtbl.find_opt s.tbl fp with None -> [] | Some es -> es
    in
    match
      match bucket with
      | [ e ] -> Some e (* common case: no collision, skip rendering *)
      | [] -> None
      | es ->
          let txt = text () in
          List.find_opt (fun e -> e.qe_text = txt) es
    with
    | Some e -> e
    | None ->
        while s.entries >= t.shard_capacity do
          evict_lru_locked s
        done;
        let e =
          {
            qe_fp = fp;
            qe_text = text ();
            qe_execs = 0;
            qe_soft = 0;
            qe_hard = 0;
            qe_reval = 0;
            qe_inval = 0;
            qe_rows = 0;
            qe_secs = [| 0.; 0. |];
            qe_latency = M.hist_create "latency_seconds";
            qe_meter_names = meter_names;
            qe_meter = Array.make (Array.length meter_names) 0;
            qe_vec_pipelines = 0;
            qe_row_pipelines = 0;
            qe_dop_max = 0;
            qe_parts_scanned = 0;
            qe_parts_pruned = 0;
            qe_tx = Hashtbl.create 8;
            qe_qerr_max = nan;
            qe_qerr_sum = 0.;
            qe_qerr_n = 0;
            qe_last_used = 0;
          }
        in
        Hashtbl.replace s.tbl fp
          (e :: (match Hashtbl.find_opt s.tbl fp with None -> [] | Some es -> es));
        s.entries <- s.entries + 1;
        e
  in
  s.clock <- s.clock + 1;
  e.qe_last_used <- s.clock;
  e.qe_execs <- e.qe_execs + 1;
  (match outcome with
  | "hit" -> e.qe_soft <- e.qe_soft + 1
  | "miss" -> e.qe_hard <- e.qe_hard + 1
  | "revalidated" ->
      e.qe_hard <- e.qe_hard + 1;
      e.qe_reval <- e.qe_reval + 1
  | "invalidated" ->
      e.qe_hard <- e.qe_hard + 1;
      e.qe_inval <- e.qe_inval + 1
  | _ -> e.qe_hard <- e.qe_hard + 1);
  e.qe_rows <- e.qe_rows + rows;
  e.qe_secs.(0) <- e.qe_secs.(0) +. exec_s;
  e.qe_secs.(1) <- e.qe_secs.(1) +. parse_s;
  M.observe e.qe_latency exec_s;
  (if
     e.qe_meter_names == meter_names
     && Array.length meter = Array.length e.qe_meter
   then
     (* common case: one shared canonical name array per process, so
        accumulation is a positional unboxed add — no allocation, no
        string compares, no write barrier *)
     Array.iteri (fun i v -> e.qe_meter.(i) <- e.qe_meter.(i) + v) meter
   else
     (* name array drifted (a second canonical list in one process —
        should not happen) — merge by name, appending unknown fields *)
     Array.iteri
       (fun i v ->
         let name = meter_names.(i) in
         match
           Array.find_index (String.equal name) e.qe_meter_names
         with
         | Some j -> e.qe_meter.(j) <- e.qe_meter.(j) + v
         | None ->
             e.qe_meter_names <-
               Array.append e.qe_meter_names [| name |];
             e.qe_meter <- Array.append e.qe_meter [| v |])
       meter);
  e.qe_vec_pipelines <- e.qe_vec_pipelines + vec_pipelines;
  e.qe_row_pipelines <- e.qe_row_pipelines + row_pipelines;
  if dop > e.qe_dop_max then e.qe_dop_max <- dop;
  e.qe_parts_scanned <- e.qe_parts_scanned + parts_scanned;
  e.qe_parts_pruned <- e.qe_parts_pruned + parts_pruned;
  List.iter (fun (name, accepted) -> record_tx_locked e ~name ~accepted) txs;
  if qerrs <> [] then record_qerr_locked e qerrs;
  Mutex.unlock s.mu;
  e

(** Record one transformation attempt (and whether its rewrite was
    accepted) from a hard parse's optimizer report. Single-domain use
    only — concurrent callers pass [~txs] to {!observe}. *)
let record_tx (e : entry) ~(name : string) ~(accepted : bool) : unit =
  record_tx_locked e ~name ~accepted

(** Fold per-operator Q-errors of one EXPLAIN-ANALYZE run into the
    entry's max / mean aggregates. Single-domain use only — concurrent
    callers pass [~qerrs] to {!observe}. *)
let record_qerr (e : entry) (qerrs : float list) : unit =
  record_qerr_locked e qerrs

let qerr_mean e =
  if e.qe_qerr_n = 0 then nan else e.qe_qerr_sum /. float_of_int e.qe_qerr_n

(* ------------------------------------------------------------------ *)
(* Top-N reports                                                        *)
(* ------------------------------------------------------------------ *)

type order = By_time | By_qerr | By_execs

let order_name = function
  | By_time -> "total time"
  | By_qerr -> "q-error"
  | By_execs -> "executions"

(** Sort key: the requested measure descending, then (fp, text) for a
    deterministic total order. *)
let top t (order : order) (n : int) : entry list =
  let measure e =
    match order with
    | By_time -> qe_exec_s e +. qe_parse_s e
    | By_qerr -> if Float.is_nan e.qe_qerr_max then neg_infinity else e.qe_qerr_max
    | By_execs -> float_of_int e.qe_execs
  in
  let sorted =
    List.sort
      (fun a b ->
        match compare (measure b) (measure a) with
        | 0 -> compare (a.qe_fp, a.qe_text) (b.qe_fp, b.qe_text)
        | c -> c)
      (entries t)
  in
  List.filteri (fun i _ -> i < n) sorted

let truncate_text n s =
  if String.length s <= n then s else String.sub s 0 (n - 1) ^ "~"

let meter_field e name =
  match Array.find_index (String.equal name) e.qe_meter_names with
  | Some i -> e.qe_meter.(i)
  | None -> 0

(** One aligned top-N table. *)
let top_table t (order : order) (n : int) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "top %d by %s\n" n (order_name order));
  Buffer.add_string buf
    (Printf.sprintf "  %-16s %6s %5s %5s %9s %9s %8s %7s %7s  %s\n"
       "fingerprint" "execs" "soft" "hard" "rows" "time_ms" "p99_ms" "qe_max"
       "qe_mean" "query");
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  %016x %6d %5d %5d %9d %9.2f %8.2f %7s %7s  %s\n"
           e.qe_fp e.qe_execs e.qe_soft e.qe_hard e.qe_rows
           (1000. *. (qe_exec_s e +. qe_parse_s e))
           (1000. *. M.quantile e.qe_latency 0.99)
           (if Float.is_nan e.qe_qerr_max then "-"
            else Printf.sprintf "%.2f" e.qe_qerr_max)
           (if e.qe_qerr_n = 0 then "-"
            else Printf.sprintf "%.2f" (qerr_mean e))
           (truncate_text 48 e.qe_text)))
    (top t order n);
  Buffer.contents buf

(** The standard three-table report: by total time, by worst Q-error,
    by executions. *)
let report_string ?(top_n = 10) t : string =
  String.concat "\n"
    [
      Printf.sprintf "query store: %d fingerprints, %d evictions" (length t)
        (evictions t);
      top_table t By_time top_n;
      top_table t By_qerr top_n;
      top_table t By_execs top_n;
    ]

(* ------------------------------------------------------------------ *)
(* JSON snapshot                                                        *)
(* ------------------------------------------------------------------ *)

let jfloat f = if Float.is_finite f then Json.Float f else Json.Null

(** Snapshot of one entry. Deterministic for a fixed workload and
    seed, except the fields under ["wall"] (wall-clock derived:
    timings and the latency histogram); [wall:false] drops them. *)
let entry_to_json ?(wall = true) (e : entry) : Json.t =
  let tx =
    Hashtbl.fold (fun name (att, acc) l -> (name, att, acc) :: l) e.qe_tx []
    |> List.sort compare
    |> List.map (fun (name, att, acc) ->
           ( name,
             Json.Obj [ ("attempts", Json.Int att); ("accepts", Json.Int acc) ]
           ))
  in
  let base =
    [
      ("fingerprint", Json.Str (Printf.sprintf "%016x" e.qe_fp));
      ("query", Json.Str e.qe_text);
      ("executions", Json.Int e.qe_execs);
      ("soft_parses", Json.Int e.qe_soft);
      ("hard_parses", Json.Int e.qe_hard);
      ("revalidated", Json.Int e.qe_reval);
      ("invalidated", Json.Int e.qe_inval);
      ("rows", Json.Int e.qe_rows);
      ( "meter",
        Json.Obj
          (List.map2
             (fun n v -> (n, Json.Int v))
             (Array.to_list e.qe_meter_names)
             (Array.to_list e.qe_meter)) );
      ("vec_pipelines", Json.Int e.qe_vec_pipelines);
      ("row_pipelines", Json.Int e.qe_row_pipelines);
      ("dop_max", Json.Int e.qe_dop_max);
      ("parts_scanned", Json.Int e.qe_parts_scanned);
      ("parts_pruned", Json.Int e.qe_parts_pruned);
      ("transformations", Json.Obj tx);
      ("qerr_max", jfloat e.qe_qerr_max);
      ("qerr_mean", jfloat (qerr_mean e));
      ("qerr_samples", Json.Int e.qe_qerr_n);
    ]
  in
  if not wall then Json.Obj base
  else
    Json.Obj
      (base
      @ [
          ( "wall",
            Json.Obj
              [
                ("exec_s", jfloat (qe_exec_s e));
                ("parse_s", jfloat (qe_parse_s e));
                ("latency", M.hist_to_json e.qe_latency);
              ] );
        ])

(** Whole-store snapshot, entries sorted by (fingerprint, text) so two
    runs of the same workload produce the same document (modulo the
    per-entry ["wall"] objects; [wall:false] makes it bit-identical). *)
let to_json ?(wall = true) t : Json.t =
  let es =
    List.sort
      (fun a b -> compare (a.qe_fp, a.qe_text) (b.qe_fp, b.qe_text))
      (entries t)
  in
  Json.Obj
    [
      ("fingerprints", Json.Int (length t));
      ("evictions", Json.Int (evictions t));
      ("entries", Json.List (List.map (entry_to_json ~wall) es));
    ]
