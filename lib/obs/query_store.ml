(** Per-fingerprint query store: an AWR-style workload repository.

    One entry per {e Generic} structural fingerprint — the same key the
    plan cache uses, so every literal variant of a query shape
    accumulates into one record. Each entry carries execution and
    parse counts, a latency histogram ({!Metrics.histogram},
    constant-memory), rows returned, per-field meter totals, the
    engine mix (row vs vectorized pipelines), transformation
    attempt/accept counts from the optimizer report of every hard
    parse, and per-operator Q-error aggregates from EXPLAIN-ANALYZE
    feedback. This is the data foundation adaptive reoptimization
    needs: which shapes dominate total time, where estimates go wrong,
    and whether the cost-based transformations pay off per shape.

    The store is bounded: when a {e new} fingerprint would exceed the
    capacity, the least-recently-executed entry is evicted (and
    counted). Hash collisions are disambiguated by the canonical query
    text, mirroring {!Plan_cache}'s verified probes.

    Deliberately generic (fingerprint [int] + rendered text) so it can
    live below {!Sqlir} in the build graph; the service layer owns the
    fingerprinting and rendering. The JSON snapshot separates
    wall-clock-derived fields under a per-entry ["wall"] object so
    that, for a fixed workload and seed, the rest of the snapshot is
    bit-identical across runs — the determinism property the test
    suite checks. *)

module M = Metrics

type entry = {
  qe_fp : int;  (** Generic fingerprint hash *)
  qe_text : string;  (** canonical parameterized query, one line *)
  mutable qe_execs : int;
  mutable qe_soft : int;  (** soft parses (cache hits) *)
  mutable qe_hard : int;  (** hard parses (miss / invalidated / revalidated) *)
  mutable qe_reval : int;  (** hard parses kept by the cost-delta guard *)
  mutable qe_inval : int;  (** hard parses that replaced the plan *)
  mutable qe_rows : int;  (** total rows returned *)
  qe_secs : float array;
      (** [exec; parse] total wall seconds. A flat float array rather
          than mutable float fields so accumulating them in the mixed
          record does not box per execution. *)
  qe_latency : M.histogram;  (** per-execution wall seconds *)
  mutable qe_meter_names : string array;  (** canonical meter field names *)
  mutable qe_meter : int array;  (** meter field totals, same order *)
  mutable qe_vec_pipelines : int;
  mutable qe_row_pipelines : int;
  qe_tx : (string, int * int) Hashtbl.t;  (** tx -> (attempts, accepts) *)
  mutable qe_qerr_max : float;  (** worst per-operator Q-error observed *)
  mutable qe_qerr_sum : float;
  mutable qe_qerr_n : int;  (** per-operator Q-error samples *)
  mutable qe_last_used : int;  (** logical clock of the last execution *)
}

(** Total execution / parse wall seconds accumulated by an entry. *)
let qe_exec_s e = e.qe_secs.(0)

let qe_parse_s e = e.qe_secs.(1)

type t = {
  tbl : (int, entry list) Hashtbl.t;
  capacity : int;
  mutable clock : int;
  mutable evictions : int;
}

let create ?(capacity = 256) () : t =
  {
    tbl = Hashtbl.create (max 16 capacity);
    capacity = max 1 capacity;
    clock = 0;
    evictions = 0;
  }

let length t = Hashtbl.fold (fun _ es n -> n + List.length es) t.tbl 0
let evictions t = t.evictions

let entries t : entry list =
  Hashtbl.fold (fun _ es acc -> es @ acc) t.tbl []

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ es acc ->
        List.fold_left
          (fun acc e ->
            match acc with
            | Some best when best.qe_last_used <= e.qe_last_used -> acc
            | _ -> Some e)
          acc es)
      t.tbl None
  in
  match victim with
  | None -> ()
  | Some e ->
      (match Hashtbl.find_opt t.tbl e.qe_fp with
      | None -> ()
      | Some es -> (
          match List.filter (fun e' -> e' != e) es with
          | [] -> Hashtbl.remove t.tbl e.qe_fp
          | es' -> Hashtbl.replace t.tbl e.qe_fp es'));
      t.evictions <- t.evictions + 1

(** One execution observed for fingerprint [fp]. [text] is evaluated
    only when the entry is created (rendering the canonical query is
    not hot-path work). [meter] is the execution's meter delta in the
    canonical order named by [meter_names] ([Exec.Meter.field_names]
    upstream); callers pass one shared physically-equal [meter_names]
    array, which keeps accumulation a positional unboxed loop on the
    hot path. Returns the (created or updated) entry so the caller can
    attach hard-parse and feedback data. *)
let observe t ~(fp : int) ~(text : unit -> string) ~(outcome : string)
    ~(rows : int) ~(exec_s : float) ~(parse_s : float)
    ~(meter_names : string array) ~(meter : int array)
    ~(vec_pipelines : int) ~(row_pipelines : int) : entry =
  let bucket =
    match Hashtbl.find_opt t.tbl fp with None -> [] | Some es -> es
  in
  let e =
    match
      match bucket with
      | [ e ] -> Some e (* common case: no collision, skip rendering *)
      | [] -> None
      | es ->
          let txt = text () in
          List.find_opt (fun e -> e.qe_text = txt) es
    with
    | Some e -> e
    | None ->
        while length t >= t.capacity do
          evict_lru t
        done;
        let e =
          {
            qe_fp = fp;
            qe_text = text ();
            qe_execs = 0;
            qe_soft = 0;
            qe_hard = 0;
            qe_reval = 0;
            qe_inval = 0;
            qe_rows = 0;
            qe_secs = [| 0.; 0. |];
            qe_latency = M.hist_create "latency_seconds";
            qe_meter_names = meter_names;
            qe_meter = Array.make (Array.length meter_names) 0;
            qe_vec_pipelines = 0;
            qe_row_pipelines = 0;
            qe_tx = Hashtbl.create 8;
            qe_qerr_max = nan;
            qe_qerr_sum = 0.;
            qe_qerr_n = 0;
            qe_last_used = 0;
          }
        in
        Hashtbl.replace t.tbl fp
          (e :: (match Hashtbl.find_opt t.tbl fp with None -> [] | Some es -> es));
        e
  in
  t.clock <- t.clock + 1;
  e.qe_last_used <- t.clock;
  e.qe_execs <- e.qe_execs + 1;
  (match outcome with
  | "hit" -> e.qe_soft <- e.qe_soft + 1
  | "miss" -> e.qe_hard <- e.qe_hard + 1
  | "revalidated" ->
      e.qe_hard <- e.qe_hard + 1;
      e.qe_reval <- e.qe_reval + 1
  | "invalidated" ->
      e.qe_hard <- e.qe_hard + 1;
      e.qe_inval <- e.qe_inval + 1
  | _ -> e.qe_hard <- e.qe_hard + 1);
  e.qe_rows <- e.qe_rows + rows;
  e.qe_secs.(0) <- e.qe_secs.(0) +. exec_s;
  e.qe_secs.(1) <- e.qe_secs.(1) +. parse_s;
  M.observe e.qe_latency exec_s;
  (if
     e.qe_meter_names == meter_names
     && Array.length meter = Array.length e.qe_meter
   then
     (* common case: one shared canonical name array per process, so
        accumulation is a positional unboxed add — no allocation, no
        string compares, no write barrier *)
     Array.iteri (fun i v -> e.qe_meter.(i) <- e.qe_meter.(i) + v) meter
   else
     (* name array drifted (a second canonical list in one process —
        should not happen) — merge by name, appending unknown fields *)
     Array.iteri
       (fun i v ->
         let name = meter_names.(i) in
         match
           Array.find_index (String.equal name) e.qe_meter_names
         with
         | Some j -> e.qe_meter.(j) <- e.qe_meter.(j) + v
         | None ->
             e.qe_meter_names <-
               Array.append e.qe_meter_names [| name |];
             e.qe_meter <- Array.append e.qe_meter [| v |])
       meter);
  e.qe_vec_pipelines <- e.qe_vec_pipelines + vec_pipelines;
  e.qe_row_pipelines <- e.qe_row_pipelines + row_pipelines;
  e

(** Record one transformation attempt (and whether its rewrite was
    accepted) from a hard parse's optimizer report. *)
let record_tx (e : entry) ~(name : string) ~(accepted : bool) : unit =
  let att, acc =
    match Hashtbl.find_opt e.qe_tx name with Some p -> p | None -> (0, 0)
  in
  Hashtbl.replace e.qe_tx name (att + 1, if accepted then acc + 1 else acc)

(** Fold per-operator Q-errors of one EXPLAIN-ANALYZE run into the
    entry's max / mean aggregates. *)
let record_qerr (e : entry) (qerrs : float list) : unit =
  List.iter
    (fun q ->
      if Float.is_finite q then begin
        if Float.is_nan e.qe_qerr_max || q > e.qe_qerr_max then
          e.qe_qerr_max <- q;
        e.qe_qerr_sum <- e.qe_qerr_sum +. q;
        e.qe_qerr_n <- e.qe_qerr_n + 1
      end)
    qerrs

let qerr_mean e =
  if e.qe_qerr_n = 0 then nan else e.qe_qerr_sum /. float_of_int e.qe_qerr_n

(* ------------------------------------------------------------------ *)
(* Top-N reports                                                        *)
(* ------------------------------------------------------------------ *)

type order = By_time | By_qerr | By_execs

let order_name = function
  | By_time -> "total time"
  | By_qerr -> "q-error"
  | By_execs -> "executions"

(** Sort key: the requested measure descending, then (fp, text) for a
    deterministic total order. *)
let top t (order : order) (n : int) : entry list =
  let measure e =
    match order with
    | By_time -> qe_exec_s e +. qe_parse_s e
    | By_qerr -> if Float.is_nan e.qe_qerr_max then neg_infinity else e.qe_qerr_max
    | By_execs -> float_of_int e.qe_execs
  in
  let sorted =
    List.sort
      (fun a b ->
        match compare (measure b) (measure a) with
        | 0 -> compare (a.qe_fp, a.qe_text) (b.qe_fp, b.qe_text)
        | c -> c)
      (entries t)
  in
  List.filteri (fun i _ -> i < n) sorted

let truncate_text n s =
  if String.length s <= n then s else String.sub s 0 (n - 1) ^ "~"

let meter_field e name =
  match Array.find_index (String.equal name) e.qe_meter_names with
  | Some i -> e.qe_meter.(i)
  | None -> 0

(** One aligned top-N table. *)
let top_table t (order : order) (n : int) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "top %d by %s\n" n (order_name order));
  Buffer.add_string buf
    (Printf.sprintf "  %-16s %6s %5s %5s %9s %9s %8s %7s %7s  %s\n"
       "fingerprint" "execs" "soft" "hard" "rows" "time_ms" "p99_ms" "qe_max"
       "qe_mean" "query");
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  %016x %6d %5d %5d %9d %9.2f %8.2f %7s %7s  %s\n"
           e.qe_fp e.qe_execs e.qe_soft e.qe_hard e.qe_rows
           (1000. *. (qe_exec_s e +. qe_parse_s e))
           (1000. *. M.quantile e.qe_latency 0.99)
           (if Float.is_nan e.qe_qerr_max then "-"
            else Printf.sprintf "%.2f" e.qe_qerr_max)
           (if e.qe_qerr_n = 0 then "-"
            else Printf.sprintf "%.2f" (qerr_mean e))
           (truncate_text 48 e.qe_text)))
    (top t order n);
  Buffer.contents buf

(** The standard three-table report: by total time, by worst Q-error,
    by executions. *)
let report_string ?(top_n = 10) t : string =
  String.concat "\n"
    [
      Printf.sprintf "query store: %d fingerprints, %d evictions" (length t)
        t.evictions;
      top_table t By_time top_n;
      top_table t By_qerr top_n;
      top_table t By_execs top_n;
    ]

(* ------------------------------------------------------------------ *)
(* JSON snapshot                                                        *)
(* ------------------------------------------------------------------ *)

let jfloat f = if Float.is_finite f then Json.Float f else Json.Null

(** Snapshot of one entry. Deterministic for a fixed workload and
    seed, except the fields under ["wall"] (wall-clock derived:
    timings and the latency histogram); [wall:false] drops them. *)
let entry_to_json ?(wall = true) (e : entry) : Json.t =
  let tx =
    Hashtbl.fold (fun name (att, acc) l -> (name, att, acc) :: l) e.qe_tx []
    |> List.sort compare
    |> List.map (fun (name, att, acc) ->
           ( name,
             Json.Obj [ ("attempts", Json.Int att); ("accepts", Json.Int acc) ]
           ))
  in
  let base =
    [
      ("fingerprint", Json.Str (Printf.sprintf "%016x" e.qe_fp));
      ("query", Json.Str e.qe_text);
      ("executions", Json.Int e.qe_execs);
      ("soft_parses", Json.Int e.qe_soft);
      ("hard_parses", Json.Int e.qe_hard);
      ("revalidated", Json.Int e.qe_reval);
      ("invalidated", Json.Int e.qe_inval);
      ("rows", Json.Int e.qe_rows);
      ( "meter",
        Json.Obj
          (List.map2
             (fun n v -> (n, Json.Int v))
             (Array.to_list e.qe_meter_names)
             (Array.to_list e.qe_meter)) );
      ("vec_pipelines", Json.Int e.qe_vec_pipelines);
      ("row_pipelines", Json.Int e.qe_row_pipelines);
      ("transformations", Json.Obj tx);
      ("qerr_max", jfloat e.qe_qerr_max);
      ("qerr_mean", jfloat (qerr_mean e));
      ("qerr_samples", Json.Int e.qe_qerr_n);
    ]
  in
  if not wall then Json.Obj base
  else
    Json.Obj
      (base
      @ [
          ( "wall",
            Json.Obj
              [
                ("exec_s", jfloat (qe_exec_s e));
                ("parse_s", jfloat (qe_parse_s e));
                ("latency", M.hist_to_json e.qe_latency);
              ] );
        ])

(** Whole-store snapshot, entries sorted by (fingerprint, text) so two
    runs of the same workload produce the same document (modulo the
    per-entry ["wall"] objects; [wall:false] makes it bit-identical). *)
let to_json ?(wall = true) t : Json.t =
  let es =
    List.sort
      (fun a b -> compare (a.qe_fp, a.qe_text) (b.qe_fp, b.qe_text))
      (entries t)
  in
  Json.Obj
    [
      ("fingerprints", Json.Int (length t));
      ("evictions", Json.Int t.evictions);
      ("entries", Json.List (List.map (entry_to_json ~wall) es));
    ]
