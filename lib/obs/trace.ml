(** Structured tracing for the CBQT search (the observability layer of
    the reproduction).

    A trace is a tree of {e spans} with stable, deterministic IDs
    (sequential in creation order, root = 1). The span taxonomy mirrors
    the paper's search structure:

    - {b Driver}: one root span per {!Cbqt.Driver.optimize} run;
    - {b Attempt}: one span per transformation attempt in the pipeline
      (applied / not-applicable / cost-rejected / heuristic / off);
    - {b State}: one span per costed search state (one per distinct
      mask — the unit the paper's Table 2 counts);
    - {b Cost}: one span per [cost_of] invocation (plus the final plan
      optimization), carrying the {!Opt_stats} counter deltas under
      ["d_"]-prefixed integer attributes, so cut-off and
      annotation-reuse savings are attributable to the exact call that
      earned them;
    - {b Block}: one span per query-block optimization actually entered
      by the physical optimizer (cache hits produce no span — they are
      the work that {e didn't} happen);
    - {b Cache}: one span per plan-cache probe in the service layer
      ({!Service}), carrying the hit/miss/invalidation outcome and the
      soft/hard parse timings.

    Spans carry wall-clock start/duration plus free-form attributes.
    Levels gate collection: [Off] records nothing (and is within noise
    of no tracing at all), [Steps] records Driver + Attempt + Cache
    spans, [Full] records everything. Sinks: a pretty console tree, JSON-Lines
    (one span object per line), and the Chrome trace-event format
    loadable in [chrome://tracing] / [ui.perfetto.dev]. *)

type level = Off | Steps | Full

let level_name = function Off -> "off" | Steps -> "steps" | Full -> "full"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "" | "0" | "off" | "none" | "false" -> Some Off
  | "1" | "steps" | "step" | "summary" -> Some Steps
  | "2" | "full" | "all" | "on" | "true" -> Some Full
  | _ -> None

(** Default trace level from the [CBQT_TRACE] environment variable
    ([0]/[off], [1]/[steps], [2]/[full]); [Off] when unset. *)
let level_of_env () =
  match Sys.getenv_opt "CBQT_TRACE" with
  | None -> Off
  | Some v -> ( match level_of_string v with Some l -> l | None -> Off)

type kind = Driver | Attempt | State | Cost | Block | Cache

let kind_name = function
  | Driver -> "driver"
  | Attempt -> "attempt"
  | State -> "state"
  | Cost -> "cost"
  | Block -> "block"
  | Cache -> "cache"

let kind_of_string = function
  | "driver" -> Some Driver
  | "attempt" -> Some Attempt
  | "state" -> Some State
  | "cost" -> Some Cost
  | "block" -> Some Block
  | "cache" -> Some Cache
  | _ -> None

(* minimum level at which a kind is recorded *)
let kind_level = function
  | Driver | Attempt | Cache -> Steps
  | State | Cost | Block -> Full

let level_geq a b =
  let rank = function Off -> 0 | Steps -> 1 | Full -> 2 in
  rank a >= rank b

type value = S of string | I of int | F of float | B of bool

type span = {
  sp_id : int;  (** stable: sequential in creation order, root = 1 *)
  sp_parent : int;  (** 0 = no parent (root span) *)
  sp_kind : kind;
  sp_name : string;
  sp_start : float;  (** seconds since the trace epoch *)
  mutable sp_dur : float;  (** seconds; negative while still open *)
  mutable sp_attrs : (string * value) list;
}

type t = {
  tr_level : level;
  tr_epoch : float;  (** [Unix.gettimeofday] at {!create} *)
  mutable tr_next : int;
  mutable tr_spans : span list;  (** reverse creation order *)
  mutable tr_stack : span list;  (** currently open spans, innermost first *)
}

let create (level : level) : t =
  {
    tr_level = level;
    tr_epoch = Unix.gettimeofday ();
    tr_next = 1;
    tr_spans = [];
    tr_stack = [];
  }

(** A shared always-off trace for call sites that need a [t] but were
    not handed one (e.g. a bare {!Planner.Optimizer.create}). *)
let disabled : t =
  { tr_level = Off; tr_epoch = 0.; tr_next = 1; tr_spans = []; tr_stack = [] }

let enabled t = t.tr_level <> Off
let level t = t.tr_level

(** Spans in creation order (root first). *)
let spans t = List.rev t.tr_spans

let now t = Unix.gettimeofday () -. t.tr_epoch

(* ------------------------------------------------------------------ *)
(* Recording                                                            *)
(* ------------------------------------------------------------------ *)

let enter (t : t) (kind : kind) (name : string) : span option =
  if not (level_geq t.tr_level (kind_level kind)) then None
  else
    let parent = match t.tr_stack with [] -> 0 | sp :: _ -> sp.sp_id in
    let sp =
      {
        sp_id = t.tr_next;
        sp_parent = parent;
        sp_kind = kind;
        sp_name = name;
        sp_start = now t;
        sp_dur = -1.;
        sp_attrs = [];
      }
    in
    t.tr_next <- t.tr_next + 1;
    t.tr_spans <- sp :: t.tr_spans;
    t.tr_stack <- sp :: t.tr_stack;
    Some sp

let add_attrs (sp : span option) (attrs : (string * value) list) : unit =
  match sp with
  | None -> ()
  | Some sp -> sp.sp_attrs <- sp.sp_attrs @ attrs

let exit_ (t : t) (sp : span option) : unit =
  match sp with
  | None -> ()
  | Some sp ->
      sp.sp_dur <- Float.max 0. (now t -. sp.sp_start);
      (* pop up to and including [sp]; defensively closes any child a
         non-local exit skipped *)
      let rec pop = function
        | [] -> []
        | top :: rest ->
            if top == sp then rest
            else (
              if top.sp_dur < 0. then
                top.sp_dur <- Float.max 0. (now t -. top.sp_start);
              pop rest)
      in
      t.tr_stack <- pop t.tr_stack

(** [wrap t kind name f] runs [f ()] inside a span. On exception the
    span is closed with attribute [aborted=true] and the exception is
    re-raised. *)
let wrap (t : t) (kind : kind) (name : string) (f : unit -> 'a) : 'a =
  match enter t kind name with
  | None -> f ()
  | Some sp -> (
      match f () with
      | r ->
          exit_ t (Some sp);
          r
      | exception e ->
          add_attrs (Some sp) [ ("aborted", B true) ];
          exit_ t (Some sp);
          raise e)

(** Like {!wrap} but passes the open span to [f] so it can attach
    result attributes before the span closes. *)
let wrap_with (t : t) (kind : kind) (name : string) (f : span option -> 'a) :
    'a =
  match enter t kind name with
  | None -> f None
  | Some sp -> (
      match f (Some sp) with
      | r ->
          exit_ t (Some sp);
          r
      | exception e ->
          add_attrs (Some sp) [ ("aborted", B true) ];
          exit_ t (Some sp);
          raise e)

(* ------------------------------------------------------------------ *)
(* Queries over a finished trace                                        *)
(* ------------------------------------------------------------------ *)

let attr sp key = List.assoc_opt key sp.sp_attrs

let attr_string sp key =
  match attr sp key with Some (S s) -> Some s | _ -> None

let count_kind t kind =
  List.length (List.filter (fun sp -> sp.sp_kind = kind) (spans t))

(** Count spans of [kind] whose string attribute [key] equals [v]. *)
let count_kind_attr t kind key v =
  List.length
    (List.filter
       (fun sp -> sp.sp_kind = kind && attr_string sp key = Some v)
       (spans t))

(** Sum an integer attribute over all spans of [kind] (missing = 0). *)
let sum_int_attr t kind key =
  List.fold_left
    (fun acc sp ->
      if sp.sp_kind = kind then
        match attr sp key with Some (I n) -> acc + n | _ -> acc
      else acc)
    0 (spans t)

let roots t = List.filter (fun sp -> sp.sp_parent = 0) (spans t)
let children_of t id = List.filter (fun sp -> sp.sp_parent = id) (spans t)

(** Share of the root spans' wall-clock covered by their direct child
    spans — the acceptance metric "per-transformation spans account for
    >= 95% of total optimization wall-clock". Children never overlap
    (spans are strictly nested and sequential within a parent), so the
    plain sum is the covered time. Returns 1.0 for an empty trace. *)
let root_coverage t =
  let total, covered =
    List.fold_left
      (fun (total, covered) root ->
        let kids = children_of t root.sp_id in
        ( total +. Float.max 0. root.sp_dur,
          covered
          +. List.fold_left (fun acc sp -> acc +. Float.max 0. sp.sp_dur) 0. kids
        ))
      (0., 0.) (roots t)
  in
  if total <= 0. then 1. else Float.min 1. (covered /. total)

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                      *)
(* ------------------------------------------------------------------ *)

(** Structural invariants of a finished trace; returns human-readable
    violations (empty = well-formed):

    - span IDs are unique, strictly increasing, and start at 1;
    - every parent exists, precedes its child, and the child's
      [start, start+dur] interval nests inside the parent's;
    - every span is closed with a non-negative duration;
    - every [State] span's parent is an [Attempt] or [Driver] span;
    - every ["d_"]-prefixed (counter delta) integer attribute is
      non-negative. *)
let validate (t : t) : string list =
  let sps = spans t in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let by_id = Hashtbl.create 64 in
  List.iteri
    (fun i sp ->
      if sp.sp_id <> i + 1 then
        err "span %d: id not sequential (expected %d)" sp.sp_id (i + 1);
      if Hashtbl.mem by_id sp.sp_id then err "span %d: duplicate id" sp.sp_id;
      Hashtbl.replace by_id sp.sp_id sp)
    sps;
  List.iter
    (fun sp ->
      if sp.sp_dur < 0. then err "span %d (%s): never closed" sp.sp_id sp.sp_name;
      (if sp.sp_parent <> 0 then
         match Hashtbl.find_opt by_id sp.sp_parent with
         | None -> err "span %d: unknown parent %d" sp.sp_id sp.sp_parent
         | Some parent ->
             if parent.sp_id >= sp.sp_id then
               err "span %d: parent %d does not precede it" sp.sp_id
                 parent.sp_id;
             let eps = 1e-6 in
             if
               sp.sp_start +. eps < parent.sp_start
               || sp.sp_start +. Float.max 0. sp.sp_dur
                  > parent.sp_start +. Float.max 0. parent.sp_dur +. eps
             then
               err "span %d (%s): not nested inside parent %d" sp.sp_id
                 sp.sp_name parent.sp_id);
      (if sp.sp_kind = State then
         match
           if sp.sp_parent = 0 then None else Hashtbl.find_opt by_id sp.sp_parent
         with
         | Some { sp_kind = Attempt | Driver; _ } -> ()
         | _ ->
             err "state span %d (%s): parent is not an attempt-or-root span"
               sp.sp_id sp.sp_name);
      List.iter
        (fun (k, v) ->
          match v with
          | I n when String.length k >= 2 && String.sub k 0 2 = "d_" && n < 0 ->
              err "span %d: negative counter delta %s=%d" sp.sp_id k n
          | _ -> ())
        sp.sp_attrs)
    sps;
  List.rev !errs

(* ------------------------------------------------------------------ *)
(* Sinks                                                                *)
(* ------------------------------------------------------------------ *)

let value_to_json = function
  | S s -> Json.Str s
  | I n -> Json.Int n
  | F f -> Json.Float f
  | B b -> Json.Bool b

let span_to_json sp =
  Json.Obj
    [
      ("id", Json.Int sp.sp_id);
      ("parent", Json.Int sp.sp_parent);
      ("kind", Json.Str (kind_name sp.sp_kind));
      ("name", Json.Str sp.sp_name);
      ("t0_us", Json.Float (sp.sp_start *. 1e6));
      ("dur_us", Json.Float (Float.max 0. sp.sp_dur *. 1e6));
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) sp.sp_attrs));
    ]

(** JSON-Lines: one span object per line, creation order, root first. *)
let to_jsonl (t : t) : string =
  String.concat ""
    (List.map (fun sp -> Json.to_string (span_to_json sp) ^ "\n") (spans t))

(** Chrome trace-event format over several traces (e.g. one per
    workload query); each trace becomes one "process" so the runs stack
    vertically in the viewer. Timestamps are offset to a common zero. *)
let to_chrome_many (ts : t list) : string =
  let epoch0 =
    List.fold_left (fun acc t -> Float.min acc t.tr_epoch) infinity ts
  in
  let epoch0 = if Float.is_finite epoch0 then epoch0 else 0. in
  let events =
    List.concat
      (List.mapi
         (fun pid t ->
           let base_us = (t.tr_epoch -. epoch0) *. 1e6 in
           List.map
             (fun sp ->
               Json.Obj
                 [
                   ("name", Json.Str sp.sp_name);
                   ("cat", Json.Str (kind_name sp.sp_kind));
                   ("ph", Json.Str "X");
                   ("ts", Json.Float (base_us +. (sp.sp_start *. 1e6)));
                   ("dur", Json.Float (Float.max 0. sp.sp_dur *. 1e6));
                   ("pid", Json.Int (pid + 1));
                   ("tid", Json.Int 1);
                   ( "args",
                     Json.Obj
                       (("id", Json.Int sp.sp_id)
                       :: List.map
                            (fun (k, v) -> (k, value_to_json v))
                            sp.sp_attrs) );
                 ])
             (spans t))
         ts)
  in
  Json.to_string
    (Json.Obj
       [ ("traceEvents", Json.List events); ("displayTimeUnit", Json.Str "ms") ])

let to_chrome (t : t) : string = to_chrome_many [ t ]

(* pretty console tree *)
let pp_value ppf = function
  | S s -> Format.pp_print_string ppf s
  | I n -> Format.pp_print_int ppf n
  | F f -> Format.fprintf ppf "%.1f" f
  | B b -> Format.pp_print_bool ppf b

let pp_tree ppf (t : t) =
  let sps = spans t in
  let rec render indent sp =
    let pad = String.make (indent * 2) ' ' in
    let attrs =
      match sp.sp_attrs with
      | [] -> ""
      | kvs ->
          " "
          ^ String.concat " "
              (List.map
                 (fun (k, v) -> Format.asprintf "%s=%a" k pp_value v)
                 kvs)
    in
    Format.fprintf ppf "%s[%d] %-7s %-28s %8.3fms%s@." pad sp.sp_id
      (kind_name sp.sp_kind) sp.sp_name
      (Float.max 0. sp.sp_dur *. 1000.)
      attrs;
    List.iter (render (indent + 1))
      (List.filter (fun c -> c.sp_parent = sp.sp_id) sps)
  in
  List.iter (render 0) (List.filter (fun sp -> sp.sp_parent = 0) sps)

(* ------------------------------------------------------------------ *)
(* JSON-Lines schema check                                              *)
(* ------------------------------------------------------------------ *)

(** Schema-check one JSON-Lines trace document (as written by
    {!to_jsonl}; IDs restart at 1 per traced run, so a file holding
    several concatenated runs is still valid). Checks per line: valid
    JSON object; required fields with the right types ([id] positive
    int, [parent] non-negative int preceding [id], [kind] from the span
    taxonomy, [name] string, [t0_us]/[dur_us] non-negative numbers,
    [attrs] object); and per run: sequential IDs from 1 and no
    ["d_"]-counter attribute below zero. *)
let validate_jsonl (doc : string) : string list =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let expected_id = ref 1 in
  let lines =
    List.filteri
      (fun _ l -> String.trim l <> "")
      (String.split_on_char '\n' doc)
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match Json.parse line with
      | Error msg -> err "line %d: invalid JSON (%s)" lineno msg
      | Ok j -> (
          let field name = Json.member name j in
          let int_field name =
            match Option.bind (field name) Json.as_int with
            | Some v -> Some v
            | None ->
                err "line %d: missing or non-integer %S" lineno name;
                None
          in
          let num_field name =
            match Option.bind (field name) Json.as_number with
            | Some v -> Some v
            | None ->
                err "line %d: missing or non-numeric %S" lineno name;
                None
          in
          (match Option.bind (field "name") Json.as_string with
          | Some _ -> ()
          | None -> err "line %d: missing or non-string \"name\"" lineno);
          (match Option.bind (field "kind") Json.as_string with
          | Some k when kind_of_string k <> None -> ()
          | Some k -> err "line %d: unknown kind %S" lineno k
          | None -> err "line %d: missing or non-string \"kind\"" lineno);
          (match field "attrs" with
          | Some (Json.Obj kvs) ->
              List.iter
                (fun (k, v) ->
                  match v with
                  | Json.Int n
                    when String.length k >= 2 && String.sub k 0 2 = "d_"
                         && n < 0 ->
                      err "line %d: negative counter delta %s=%d" lineno k n
                  | _ -> ())
                kvs
          | Some _ -> err "line %d: \"attrs\" is not an object" lineno
          | None -> err "line %d: missing \"attrs\"" lineno);
          (match num_field "t0_us" with
          | Some v when v < 0. -> err "line %d: negative t0_us" lineno
          | _ -> ());
          (match num_field "dur_us" with
          | Some v when v < 0. -> err "line %d: negative dur_us" lineno
          | _ -> ());
          match (int_field "id", int_field "parent") with
          | Some id, Some parent ->
              if id < 1 then err "line %d: id %d < 1" lineno id;
              if parent < 0 then err "line %d: parent %d < 0" lineno parent;
              if parent >= id then
                err "line %d: parent %d does not precede id %d" lineno parent
                  id;
              (* ids restart at 1 on each new root span *)
              if id = 1 then expected_id := 2
              else if id <> !expected_id then (
                err "line %d: id %d not sequential (expected %d)" lineno id
                  !expected_id;
                expected_id := id + 1)
              else incr expected_id
          | _ -> ()))
    lines;
  if lines = [] then err "empty trace document";
  List.rev !errs
