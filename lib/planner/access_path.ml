(** Access-path selection and single-step join extension.

    FROM entries are analysed into {!entry} values (with views already
    costed into an {!Annotation.t} by {!Block_cost}); this module
    chooses the physical access path for a table entry (full scan vs.
    B-tree index probe), builds the initial single-entry partial plans,
    and extends a partial plan by one entry with every applicable join
    method (nested loops per access path, hash, sort-merge). The join
    {e order} search over these building blocks lives in {!Join_enum}. *)

open Sqlir
module A = Ast
module Info = Cost.Info
module Sel = Cost.Selectivity
module Model = Cost.Model
module Plan = Exec.Plan
module Sset = Walk.Sset
module Ctx = Opt_ctx

type entry = {
  e_idx : int;
  e_alias : string;
  e_kind : A.jkind;
  e_cond : A.pred list;  (* ON conjuncts for non-inner roles *)
  e_source : esource;
  e_info : Info.rel_info;  (* raw (pre-filter) info, bound to e_alias *)
  e_rows : float;
  e_single : A.pred list;  (* WHERE conjuncts local to this alias *)
  e_single_sel : float;
  e_prereq : Sset.t;  (* local aliases that must precede this entry *)
}

and esource =
  | E_table of string
  | E_view of Annotation.t * bool  (* annotation, correlated? *)

type partial = {
  p_set : int;
  p_aliases : Sset.t;
  p_plan : Plan.t;
  p_cost : float;
  p_rows : float;
  p_info : Info.rel_info;
}

let bit i = 1 lsl i

(** Equality bindings available for [e]: (column of e, binding expr)
    pairs where the binding does not reference [e] itself and references
    only aliases in [avail] (or outer scopes). *)
let eq_bindings ~(local : Sset.t) ~(avail : Sset.t) ~(alias : string)
    (preds : A.pred list) : (string * A.expr) list =
  List.filter_map
    (fun p ->
      match p with
      | A.Cmp (A.Eq, A.Col c, rhs)
        when String.equal c.A.c_alias alias
             && (not (Sset.mem alias (Walk.expr_aliases rhs)))
             && Sset.subset (Sset.inter (Walk.expr_aliases rhs) local) avail ->
          Some (c.A.c_col, rhs)
      | A.Cmp (A.Eq, rhs, A.Col c)
        when String.equal c.A.c_alias alias
             && (not (Sset.mem alias (Walk.expr_aliases rhs)))
             && Sset.subset (Sset.inter (Walk.expr_aliases rhs) local) avail ->
          Some (c.A.c_col, rhs)
      | _ -> None)
    preds

(** The predicates consumed by binding [cols] via the index prefix. *)
let consumed_preds ~alias (cols : string list) (preds : A.pred list) :
    A.pred list * A.pred list =
  List.partition
    (fun p ->
      match p with
      | A.Cmp (A.Eq, A.Col c, rhs) | A.Cmp (A.Eq, rhs, A.Col c) ->
          String.equal c.A.c_alias alias
          && List.mem c.A.c_col cols
          && not (Sset.mem alias (Walk.expr_aliases rhs))
      | _ -> false)
    preds

(* ------------------------------------------------------------------ *)
(* Partition pruning                                                    *)
(* ------------------------------------------------------------------ *)

(** Plan-time prune derivation: fold the scan's conjuncts on the
    partition key into a {!Plan.prune} spec. Operands are restricted to
    constants and binds — only those can be routed to a partition at
    cursor-open time (a correlated column has no value yet). The
    originating conjuncts always stay in the scan filter, which is what
    makes the pruning provably disjoint ([PL008]). *)
let derive_prune (ps : Catalog.part_spec) ~(alias : string)
    (preds : A.pred list) : Plan.prune =
  let key e =
    match e with
    | A.Col { A.c_alias; c_col } ->
        String.equal c_alias alias && String.equal c_col ps.Catalog.ps_col
    | _ -> false
  in
  let routable e =
    match e with A.Const _ | A.Bind _ -> true | _ -> false
  in
  let eq =
    List.find_map
      (fun p ->
        match p with
        | A.Cmp (A.Eq, l, r) when key l && routable r -> Some r
        | A.Cmp (A.Eq, l, r) when key r && routable l -> Some l
        | _ -> None)
      preds
  in
  match eq with
  | Some e -> Plan.Pr_eq e
  | None ->
      if ps.Catalog.ps_scheme <> `Range then Plan.Pr_none
        (* hash partitions carry no order: only equality prunes *)
      else begin
        let lo = ref Plan.R_unbounded and hi = ref Plan.R_unbounded in
        let set r b =
          match !r with Plan.R_unbounded -> r := b | _ -> ()
        in
        List.iter
          (fun p ->
            match p with
            | A.Cmp (A.Ge, l, r) when key l && routable r ->
                set lo (Plan.R_incl r)
            | A.Cmp (A.Gt, l, r) when key l && routable r ->
                set lo (Plan.R_excl r)
            | A.Cmp (A.Le, l, r) when key l && routable r ->
                set hi (Plan.R_incl r)
            | A.Cmp (A.Lt, l, r) when key l && routable r ->
                set hi (Plan.R_excl r)
            | A.Cmp (A.Ge, l, r) when key r && routable l ->
                set hi (Plan.R_incl l)
            | A.Cmp (A.Gt, l, r) when key r && routable l ->
                set hi (Plan.R_excl l)
            | A.Cmp (A.Le, l, r) when key r && routable l ->
                set lo (Plan.R_incl l)
            | A.Cmp (A.Lt, l, r) when key r && routable l ->
                set lo (Plan.R_excl l)
            | A.Between (e, b1, b2) when key e && routable b1 && routable b2
              ->
                set lo (Plan.R_incl b1);
                set hi (Plan.R_incl b2)
            | _ -> ())
          preds;
        match (!lo, !hi) with
        | Plan.R_unbounded, Plan.R_unbounded -> Plan.Pr_none
        | lo, hi -> Plan.Pr_range (lo, hi)
      end

(** Statically estimated pruning outcome: surviving partition count and
    their summed rows and page ceilings. Bind peeks stand in for the
    runtime values, so a prepared query is costed with the values of
    its first binding — the classic peeked-bind gamble. *)
let prune_estimate (cat : Catalog.t) (ps : Catalog.part_spec)
    ~(table : string) (prune : Plan.prune) : int * float * float =
  let surv =
    Exec.Prune.survivors ~value_of:(Exec.Prune.value_of ~binds:[||]) ps prune
  in
  let total_rows =
    match Catalog.stats cat table with
    | Some s -> float_of_int s.Catalog.s_rows
    | None -> float_of_int (ps.Catalog.ps_n * Catalog.rows_per_page)
  in
  let pstats = Catalog.part_stats cat table in
  let rows_of i =
    match pstats with
    | Some a when i < Array.length a -> float_of_int a.(i).Catalog.pp_rows
    | _ -> total_rows /. float_of_int ps.Catalog.ps_n
  in
  let rows = List.fold_left (fun acc i -> acc +. rows_of i) 0. surv in
  let pages =
    List.fold_left
      (fun acc i ->
        acc
        +. Float.max 1.
             (ceil (rows_of i /. float_of_int Catalog.rows_per_page)))
      0. surv
  in
  (List.length surv, rows, pages)

(** Best access path for table entry [e], given available bindings from
    [avail] aliases (join side) and its single-table predicates.
    Returns (plan, per-execution cost, output rows, consumed preds). *)
let table_access_path (t : Ctx.t) ~env ~(local : Sset.t) ~(avail : Sset.t)
    (e : entry) ~table ~(extra_preds : A.pred list) :
    (Plan.t * float * float * A.pred list) list =
  let alias = e.e_alias in
  let all_preds = e.e_single @ extra_preds in
  let bindings = eq_bindings ~local ~avail ~alias all_preds in
  let pages =
    match Catalog.stats t.Ctx.cat table with
    | Some s -> float_of_int s.s_pages
    | None -> Float.max 1. (e.e_rows /. float_of_int Catalog.rows_per_page)
  in
  let all_preds = Plan.order_preds all_preds in
  let full_sel = Sel.conj_sel env all_preds in
  let out_rows = Float.max 0.5 (e.e_rows *. full_sel) in
  let scan =
    ( Plan.Table_scan { table; alias; filter = all_preds },
      Model.table_scan ~pages ~rows:e.e_rows ~out:out_rows
      +. Ctx.filter_cost env ~rows:e.e_rows all_preds,
      out_rows,
      all_preds )
  in
  (* partitioned scan with costed pruning: worth a row only when the
     derived prune spec is estimated to drop at least one partition —
     an unpruned partitioned scan reads the same heap as the full scan
     but pays per-partition page ceilings *)
  let part_paths =
    match Catalog.part_spec t.Ctx.cat table with
    | None -> []
    | Some ps -> (
        let prune = derive_prune ps ~alias all_preds in
        match prune with
        | Plan.Pr_none -> []
        | _ ->
            let scanned, prows, ppages =
              prune_estimate t.Ctx.cat ps ~table prune
            in
            if scanned >= ps.Catalog.ps_n then []
            else
              let prows = Float.max 0.5 prows in
              let out = Float.min out_rows prows in
              [
                ( Plan.Part_scan { table; alias; filter = all_preds; prune },
                  Model.table_scan ~pages:ppages ~rows:prows ~out
                  +. Ctx.filter_cost env ~rows:prows all_preds,
                  out,
                  all_preds );
              ])
  in
  let index_paths =
    List.filter_map
      (fun (ix : Catalog.index) ->
        (* longest binding prefix of the index columns *)
        let rec prefix cols =
          match cols with
          | [] -> []
          | c :: rest -> (
              match List.assoc_opt c bindings with
              | Some rhs -> (c, rhs) :: prefix rest
              | None -> [])
        in
        let pfx = prefix ix.ix_cols in
        if pfx = [] then None
        else
          let pfx_cols = List.map fst pfx in
          let consumed, residual = consumed_preds ~alias pfx_cols all_preds in
          let consumed_sel = Sel.conj_sel env consumed in
          let matched = Float.max 0.5 (e.e_rows *. consumed_sel) in
          let residual_sel = Sel.conj_sel env residual in
          let rows_out = Float.max 0.5 (matched *. residual_sel) in
          let height =
            max 1
              (int_of_float
                 (ceil (log (Float.max 2. e.e_rows) /. log 64.)))
          in
          let residual = Plan.order_preds residual in
          let cost =
            Model.index_probe ~height ~entries:matched ~rows:matched
              ~out:rows_out
            +. Ctx.filter_cost env ~rows:matched residual
          in
          Some
            ( Plan.Index_scan
                {
                  table;
                  alias;
                  index = ix.ix_name;
                  prefix = List.map snd pfx;
                  lo = Plan.R_unbounded;
                  hi = Plan.R_unbounded;
                  filter = residual;
                },
              cost,
              rows_out,
              consumed @ residual ))
      (Catalog.indexes_on t.Ctx.cat table)
  in
  (scan :: part_paths) @ index_paths

(** Initial partial plan over a single entry (no joins yet). *)
let initial_partial (t : Ctx.t) ~outer ~env ~local (e : entry) : partial =
  ignore outer;
  let plan, cost, rows =
    match e.e_source with
    | E_table table ->
        let paths =
          table_access_path t ~env ~local ~avail:Sset.empty e ~table
            ~extra_preds:[]
        in
        let best =
          List.fold_left
            (fun acc (p, c, r, _) ->
              match acc with
              | Some (_, bc, _) when bc <= c -> acc
              | _ -> Some (p, c, r))
            None paths
        in
        Option.get best
    | E_view (ann, correlated) ->
        if correlated then
          raise (Ctx.Unsupported "correlated view cannot lead the join order");
        let rows = Float.max 0.5 (ann.Annotation.an_rows *. e.e_single_sel) in
        let singles = Plan.order_preds e.e_single in
        let plan =
          if singles = [] then ann.Annotation.an_plan
          else Plan.Filter { child = ann.Annotation.an_plan; preds = singles }
        in
        ( plan,
          ann.an_cost
          +. Ctx.filter_cost env ~rows:ann.an_rows singles
          +. Model.out_tax rows,
          rows )
  in
  {
    p_set = bit e.e_idx;
    p_aliases = Sset.singleton e.e_alias;
    p_plan = plan;
    p_cost = cost;
    p_rows = rows;
    p_info = Info.filter ~sel:e.e_single_sel e.e_info;
  }

(* ------------------------------------------------------------------ *)
(* Extending a partial plan with one more entry                          *)
(* ------------------------------------------------------------------ *)

let extend (t : Ctx.t) ~env ~local ~(join_preds : A.pred list) (lp : partial)
    (e : entry) : partial list =
  let avail = lp.p_aliases in
  let now_aliases = Sset.add e.e_alias avail in
  (* join conjuncts that become applicable when e joins *)
  let applicable, _remaining =
    List.partition
      (fun p ->
        let locs = Sset.inter (Walk.pred_aliases ~deep:true p) local in
        Sset.mem e.e_alias locs && Sset.subset locs now_aliases)
      join_preds
  in
  (* closing conjuncts: all aliases in lp but applicable only now?
     cannot happen: they were applied when their last alias joined. *)
  let conds =
    match e.e_kind with
    | A.J_inner -> applicable
    | _ -> e.e_cond @ applicable
  in
  let jsel = Sel.conj_sel env conds in
  let eff_rows = Float.max 0.5 (e.e_rows *. e.e_single_sel) in
  let inner_out = Float.max 0.5 (lp.p_rows *. eff_rows *. jsel) in
  let match_prob = Float.min 1. (eff_rows *. jsel) in
  let out_rows =
    match e.e_kind with
    | A.J_inner -> inner_out
    | A.J_semi -> Float.max 0.5 (lp.p_rows *. match_prob)
    | A.J_anti | A.J_anti_na ->
        Float.max 0.5 (lp.p_rows *. (1. -. match_prob))
    | A.J_left -> Float.max lp.p_rows inner_out
  in
  let role : Plan.jrole =
    match e.e_kind with
    | A.J_inner -> Plan.Inner
    | A.J_semi -> Plan.Semi
    | A.J_anti -> Plan.Anti
    | A.J_anti_na -> Plan.Anti_na
    | A.J_left -> Plan.Left_outer
  in
  let out_info =
    match role with
    | Plan.Semi | Plan.Anti | Plan.Anti_na ->
        { lp.p_info with ri_rows = out_rows }
    | _ ->
        Info.join ~rows:out_rows lp.p_info
          (Info.filter ~sel:e.e_single_sel e.e_info)
  in
  let mk plan cost =
    {
      p_set = lp.p_set lor bit e.e_idx;
      p_aliases = now_aliases;
      p_plan = plan;
      p_cost = cost;
      p_rows = out_rows;
      p_info = out_info;
    }
  in
  (* The executor caches the right side of a nested loop on the
     correlation values it reads from the left row; the number of right
     executions is therefore the number of distinct combinations of
     those values (capped by the left cardinality), not the left
     cardinality itself. *)
  let probes_for_plan rplan =
    let corr =
      List.filter
        (fun c -> Sset.mem c.A.c_alias avail)
        (Plan.all_cols rplan)
    in
    if corr = [] then 1.
    else
      Float.min lp.p_rows
        (Sel.distinct_count env ~rows:lp.p_rows
           (List.map (fun c -> A.Col c) corr))
  in
  let alternatives = ref [] in
  let add alt = alternatives := alt :: !alternatives in
  (match e.e_source with
  | E_table table ->
      (* nested loops over each access path of e *)
      let paths =
        table_access_path t ~env ~local ~avail e ~table ~extra_preds:conds
      in
      List.iter
        (fun (rplan, rcost, rrows_probe, consumed) ->
          let residual_conds =
            List.filter (fun p -> not (List.memq p consumed)) conds
          in
          let pairs =
            match role with
            | Plan.Semi | Plan.Anti | Plan.Anti_na ->
                lp.p_rows *. Float.max 1. (rrows_probe /. 2.)
            | _ -> lp.p_rows *. rrows_probe
          in
          let probes = probes_for_plan rplan in
          let cost =
            lp.p_cost
            +. (probes *. rcost)
            +. (Model.w_join *. pairs)
            +. Model.out_tax out_rows
          in
          add
            (mk
               (Plan.Join
                  {
                    meth = Plan.Nested_loop;
                    role;
                    left = lp.p_plan;
                    right = rplan;
                    cond = residual_conds;
                  })
               cost))
        paths;
      (* hash / merge require at least one local equi-conjunct *)
      let has_equi =
        List.exists
          (fun p ->
            match p with
            | A.Cmp (A.Eq, a, bb) ->
                let aa = Walk.expr_aliases a and ab = Walk.expr_aliases bb in
                let a_left = Sset.subset (Sset.inter aa now_aliases) avail
                and a_right = Sset.mem e.e_alias ab in
                let b_left = Sset.subset (Sset.inter ab now_aliases) avail
                and b_right = Sset.mem e.e_alias aa in
                (a_left && a_right && not (Sset.mem e.e_alias aa))
                || (b_left && b_right && not (Sset.mem e.e_alias ab))
            | _ -> false)
          conds
      in
      if has_equi then (
        let pages =
          match Catalog.stats t.Ctx.cat table with
          | Some s -> float_of_int s.s_pages
          | None -> Float.max 1. (e.e_rows /. float_of_int Catalog.rows_per_page)
        in
        let rrows = Float.max 0.5 (e.e_rows *. e.e_single_sel) in
        let rcost =
          Model.table_scan ~pages ~rows:e.e_rows ~out:rrows
        in
        let rplan = Plan.Table_scan { table; alias = e.e_alias; filter = e.e_single } in
        if t.Ctx.cfg.Ctx.enable_hash_join then
          add
            (mk
               (Plan.Join
                  { meth = Plan.Hash; role; left = lp.p_plan; right = rplan; cond = conds })
               (Model.hash_join ~lcost:lp.p_cost ~rcost ~lrows:lp.p_rows
                  ~rrows ~pairs:inner_out ~out:out_rows));
        if
          t.Ctx.cfg.Ctx.enable_merge_join
          && match role with
             | Plan.Inner | Plan.Semi | Plan.Anti -> true
             | _ -> false
        then
          add
            (mk
               (Plan.Join
                  { meth = Plan.Merge; role; left = lp.p_plan; right = rplan; cond = conds })
               (Model.merge_join ~lcost:lp.p_cost ~rcost ~lrows:lp.p_rows
                  ~rrows ~pairs:inner_out ~out:out_rows)))
  | E_view (ann, correlated) ->
      let rrows = Float.max 0.5 (ann.Annotation.an_rows *. e.e_single_sel) in
      let singles = Plan.order_preds e.e_single in
      let rplan =
        if singles = [] then ann.Annotation.an_plan
        else Plan.Filter { child = ann.Annotation.an_plan; preds = singles }
      in
      let rcost =
        ann.an_cost
        +. Ctx.filter_cost env ~rows:ann.an_rows singles
        +. Model.out_tax rrows
      in
      (* nested loops: re-executes the view per probe (this is how a
         join-predicate-pushed-down view runs, with its correlations
         bound from the left row) *)
      let pairs = lp.p_rows *. rrows in
      let probes = probes_for_plan rplan in
      add
        (mk
           (Plan.Join
              {
                meth = Plan.Nested_loop;
                role;
                left = lp.p_plan;
                right = rplan;
                cond = conds;
              })
           (lp.p_cost +. (probes *. rcost) +. (Model.w_join *. pairs)
           +. Model.out_tax out_rows));
      if not correlated then (
        let has_equi =
          List.exists
            (fun p ->
              match p with A.Cmp (A.Eq, _, _) -> true | _ -> false)
            conds
        in
        if has_equi && t.Ctx.cfg.Ctx.enable_hash_join then
          add
            (mk
               (Plan.Join
                  { meth = Plan.Hash; role; left = lp.p_plan; right = rplan; cond = conds })
               (Model.hash_join ~lcost:lp.p_cost ~rcost ~lrows:lp.p_rows
                  ~rrows ~pairs:inner_out ~out:out_rows))));
  !alternatives

(* ------------------------------------------------------------------ *)
(* Join-order admissibility                                             *)
(* ------------------------------------------------------------------ *)

let can_follow (e : entry) (aliases : Sset.t) =
  Sset.subset e.e_prereq aliases

let can_start (e : entry) =
  e.e_kind = A.J_inner && Sset.is_empty e.e_prereq
  &&
  match e.e_source with E_view (_, correlated) -> not correlated | _ -> true
