(** Per-query-block costing and the annotation store.

    The recursive heart of the physical optimizer: costs a query
    bottom-up per block (views and subqueries first), delegating join
    ordering to {!Join_enum} and access paths to {!Access_path}.

    Annotation lookup for a (sub)query runs a three-step chain
    (Section 3.4.2, extended with block-granular incremental costing):

    + {b identity}: if this exact node was costed before (any earlier
      state, same output alias), reuse without re-walking it. Because
      transformations preserve sharing, every block a search state did
      not touch hits here at O(1);
    + {b fingerprint}: structurally-equal but freshly allocated trees
      (e.g. a view two masks generate identically) hit the string cache
      at the cost of one pretty-print of the subtree;
    + {b optimize}: full per-block optimization, counted in
      {!Opt_stats} at {e completion} — an optimization aborted by the
      cost cut-off counts as started, not optimized.

    The transformation's dirty set ([Opt_ctx.dirty]) is advisory: a
    block it reports clean that still misses the identity cache is
    counted as a [dirty_miss] (a transformation is over-copying), then
    costed through the normal chain — never mis-costed. *)

open Sqlir
module A = Ast
module Info = Cost.Info
module Sel = Cost.Selectivity
module Model = Cost.Model
module Plan = Exec.Plan
module Sset = Walk.Sset
module Ctx = Opt_ctx
module Ap = Access_path
open Ap

let qb_name_of (q : A.query) : string option =
  match q with A.Block b -> Some b.A.qb_name | A.Setop _ -> None

let rec optimize_query (t : Ctx.t) ~(outer : Info.rel_info)
    ~(out_alias : string) (q : A.query) : Annotation.t =
  match
    if Ctx.memo_enabled t then Ctx.ident_find t ~out_alias q else None
  with
  | Some ann ->
      t.Ctx.stats.Opt_stats.ident_hits <-
        t.Ctx.stats.Opt_stats.ident_hits + 1;
      ann
  | None ->
      (* advisory dirty-set accounting: a block the transformation
         reported untouched should have hit the identity cache *)
      (match (t.Ctx.dirty, qb_name_of q) with
      | Some dirty, Some name
        when Ctx.memo_enabled t && not (Sset.mem name dirty) ->
          t.Ctx.stats.Opt_stats.dirty_misses <-
            t.Ctx.stats.Opt_stats.dirty_misses + 1
      | _ -> ());
      let fp =
        match t.Ctx.annot_cache with
        | Some _ -> Some (Ctx.fp_key ~out_alias q)
        | None -> None
      in
      let cached =
        match fp with
        | Some (h, kq) -> Ctx.fp_find t ~out_alias ~h ~kq
        | None -> None
      in
      (match cached with
      | Some ann ->
          t.Ctx.stats.Opt_stats.fp_hits <- t.Ctx.stats.Opt_stats.fp_hits + 1;
          Ctx.ident_store t ~out_alias q ann;
          ann
      | None ->
          let ann =
            match q with
            | A.Block b -> optimize_block t ~outer ~out_alias b
            | A.Setop (op, l, r) -> optimize_setop t ~outer ~out_alias op l r
          in
          (match t.Ctx.block_hook with
          | Some hook -> hook q ann
          | None -> ());
          (match fp with
          | Some (h, kq) -> Ctx.fp_store t ~out_alias ~h ~kq ann
          | None -> ());
          Ctx.ident_store t ~out_alias q ann;
          (match t.Ctx.cost_cap with
          | Some cap when ann.Annotation.an_cost > cap ->
              raise Ctx.Cost_cap_exceeded
          | _ -> ());
          ann)

and optimize_setop t ~outer ~out_alias op l r : Annotation.t =
  let al = optimize_query t ~outer ~out_alias l in
  let ar = optimize_query t ~outer ~out_alias r in
  match op with
  | A.Union_all ->
      let rows = al.Annotation.an_rows +. ar.Annotation.an_rows in
      {
        Annotation.an_plan = Plan.Union_all [ al.an_plan; ar.an_plan ];
        an_cost = al.an_cost +. ar.an_cost +. Model.out_tax rows;
        an_rows = rows;
        an_info = { al.an_info with ri_rows = rows };
      }
  | A.Union ->
      let rows = al.Annotation.an_rows +. ar.Annotation.an_rows in
      let groups = Float.max 1. (rows *. 0.7) in
      {
        Annotation.an_plan =
          Plan.Distinct (Plan.Union_all [ al.an_plan; ar.an_plan ]);
        an_cost = al.an_cost +. ar.an_cost +. Model.distinct ~rows ~groups;
        an_rows = groups;
        an_info = { al.an_info with ri_rows = groups };
      }
  | A.Intersect | A.Minus ->
      let sop = match op with A.Intersect -> `Intersect | _ -> `Minus in
      let rows =
        match op with
        | A.Intersect ->
            Float.max 1.
              (Float.min al.Annotation.an_rows ar.Annotation.an_rows /. 2.)
        | _ -> Float.max 1. (al.Annotation.an_rows /. 2.)
      in
      {
        Annotation.an_plan =
          Plan.Setop_exec { op = sop; left = al.an_plan; right = ar.an_plan };
        an_cost =
          al.an_cost +. ar.an_cost
          +. Model.setop ~lrows:al.an_rows ~rrows:ar.an_rows ~out:rows;
        an_rows = rows;
        an_info = { al.an_info with ri_rows = rows };
      }

and optimize_block t ~outer ~out_alias (b : A.block) : Annotation.t =
  (* one Block span per optimization actually entered: cache hits in
     {!optimize_query} never reach this point, so the spans measure
     exactly the work annotation reuse did not save *)
  Obs.Trace.wrap_with t.Ctx.tracer Obs.Trace.Block
    (if out_alias = "" then b.A.qb_name else out_alias ^ ":" ^ b.A.qb_name)
    (fun sp ->
      t.Ctx.stats.Opt_stats.blocks_started <-
        t.Ctx.stats.Opt_stats.blocks_started + 1;
      if b.from = [] then raise (Ctx.Unsupported "empty FROM clause");
      let ann =
        match rownum_fusion t ~outer ~out_alias b with
        | Some ann -> ann
        | None -> optimize_block_general t ~outer ~out_alias b
      in
      (* completion-counted: an abort (cost cut-off, unsupported shape)
         unwinds past this point and does not count as a block optimized *)
      t.Ctx.stats.Opt_stats.blocks_optimized <-
        t.Ctx.stats.Opt_stats.blocks_optimized + 1;
      Obs.Trace.add_attrs sp
        [
          ("cost", Obs.Trace.F ann.Annotation.an_cost);
          ("rows", Obs.Trace.F ann.Annotation.an_rows);
        ];
      ann)

(** ROWNUM short-circuit: a simple single-source block with a row limit
    and expensive predicates evaluates the predicates streaming, row by
    row, stopping when the quota fills (Section 2.2.6's pulled-up
    expensive predicates only pay for the rows actually examined). *)
and rownum_fusion t ~outer ~out_alias (b : A.block) : Annotation.t option =
  match (b.A.limit, b.A.from) with
  | Some k, [ fe ]
    when fe.A.fe_kind = A.J_inner && fe.A.fe_cond = []
         && b.A.group_by = [] && b.A.having = []
         && (not b.A.distinct)
         && b.A.order_by = []
         && (not (Walk.block_has_agg b))
         && (not (Walk.block_has_win b))
         && b.A.where <> []
         && List.for_all (fun p -> not (Walk.pred_has_subquery p)) b.A.where
         && Plan.n_expensive_preds b.A.where > 0 ->
      let child_ann =
        match fe.A.fe_source with
        | A.S_view vq -> optimize_query t ~outer ~out_alias:fe.A.fe_alias vq
        | A.S_table tbl ->
            let info = Ctx.table_info t ~table:tbl ~alias:fe.A.fe_alias in
            let pages =
              match Catalog.stats t.Ctx.cat tbl with
              | Some st -> float_of_int st.s_pages
              | None -> Float.max 1. (info.Info.ri_rows /. 64.)
            in
            {
              Annotation.an_plan =
                Plan.Table_scan { table = tbl; alias = fe.A.fe_alias; filter = [] };
              an_cost =
                Model.table_scan ~pages ~rows:info.Info.ri_rows
                  ~out:info.Info.ri_rows;
              an_rows = info.Info.ri_rows;
              an_info = info;
            }
      in
      let env = Ctx.merge_env [ outer; child_ann.an_info ] in
      let preds =
        Plan.order_preds (List.concat_map A.conjuncts b.A.where)
      in
      let sel = Sel.conj_sel env preds in
      let examined =
        Float.min child_ann.an_rows (float_of_int k /. Float.max sel 1e-3)
      in
      let rows =
        Float.min (float_of_int k)
          (Float.max 0.5 (child_ann.an_rows *. sel))
      in
      let items =
        List.map (fun si -> (si.A.si_expr, si.A.si_name)) b.A.select
      in
      let out_info =
        Info.project ~alias:out_alias ~rows
          (List.map
             (fun (e, nm) -> (nm, Ctx.default_expr_info env ~rows e))
             items)
      in
      Some
        {
          Annotation.an_plan =
            Plan.Project
              {
                child =
                  Plan.Limit_filter
                    { child = child_ann.an_plan; preds; n = k };
                alias = out_alias;
                items;
              };
          an_cost =
            child_ann.an_cost
            +. Ctx.filter_cost env ~rows:examined preds
            +. Model.project ~rows;
          an_rows = rows;
          an_info = out_info;
        }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Semijoin -> distinct inner join (Section 2.1.1)                       *)
(* ------------------------------------------------------------------ *)

(* "We can convert this semijoin into an inner join by applying a sort
   distinct operator on the selected rows [of the right table] and by
   relaxing the partial join order restriction. This allows both the
   join orders ... to be considered by the optimizer. In Oracle, this
   transformation has been incorporated into the physical optimizer."

   Eligibility: a base-table semijoin entry whose ON condition is pure
   equality with separable sides and which the block references nowhere
   else. The entry becomes an inner join against SELECT DISTINCT of the
   table-side expressions (the table's single-table predicates move
   inside), which is commutative and can therefore lead the join
   order. *)
and semi_distinct_variants (b : A.block) : A.block list =
  let local = Walk.defined_aliases b in
  List.filter_map
    (fun fe ->
      match (fe.A.fe_kind, fe.A.fe_source) with
      | A.J_semi, A.S_table table ->
          let alias = fe.A.fe_alias in
          (* every ON conjunct must be an equality with the table on
             exactly one side *)
          let sides =
            List.map
              (fun p ->
                match p with
                | A.Cmp (A.Eq, x, y) ->
                    let xa = Walk.expr_aliases x and ya = Walk.expr_aliases y in
                    if
                      Sset.equal xa (Sset.singleton alias)
                      && not (Sset.mem alias ya)
                    then Some (x, y)
                    else if
                      Sset.equal ya (Sset.singleton alias)
                      && not (Sset.mem alias xa)
                    then Some (y, x)
                    else None
                | _ -> None)
              fe.A.fe_cond
          in
          if sides = [] || not (List.for_all Option.is_some sides) then None
          else
            let sides = List.map Option.get sides in
            (* single-table predicates on the entry move into the view *)
            let singles, rest_where =
              List.partition
                (fun p ->
                  (not (Walk.pred_has_subquery p))
                  && Sset.equal
                       (Sset.inter (Walk.pred_aliases ~deep:false p) local)
                       (Sset.singleton alias))
                b.A.where
            in
            (* no other references to the entry allowed *)
            let residual_block =
              { b with A.from =
                  List.filter (fun o -> not (String.equal o.A.fe_alias alias)) b.A.from;
                where = rest_where }
            in
            let still_referenced =
              Walk.fold_block_cols
                (fun acc c -> acc || String.equal c.A.c_alias alias)
                false residual_block
            in
            if still_referenced then None
            else
              let inner_alias = alias ^ "$sd" in
              let ren e =
                Walk.map_expr_cols
                  (fun c ->
                    if String.equal c.A.c_alias alias then
                      A.Col { c with A.c_alias = inner_alias }
                    else A.Col c)
                  e
              in
              let ren_p p =
                Walk.map_pred_cols
                  (fun c ->
                    if String.equal c.A.c_alias alias then
                      A.Col { c with A.c_alias = inner_alias }
                    else A.Col c)
                  p
              in
              let view =
                A.Block
                  {
                    (A.empty_block (b.A.qb_name ^ "_sd")) with
                    A.select =
                      List.mapi
                        (fun i (tside, _) ->
                          { A.si_expr = ren tside; si_name = Printf.sprintf "d%d" i })
                        sides;
                    distinct = true;
                    from =
                      [
                        {
                          A.fe_alias = inner_alias;
                          fe_source = A.S_table table;
                          fe_kind = A.J_inner;
                          fe_cond = [];
                        };
                      ];
                    where = List.map ren_p singles;
                  }
              in
              let new_entry =
                {
                  A.fe_alias = alias;
                  fe_source = A.S_view view;
                  fe_kind = A.J_inner;
                  fe_cond = [];
                }
              in
              let join_preds =
                List.mapi
                  (fun i (_, other) ->
                    A.Cmp (A.Eq, A.col alias (Printf.sprintf "d%d" i), other))
                  sides
              in
              Some
                {
                  b with
                  A.from =
                    List.map
                      (fun o ->
                        if String.equal o.A.fe_alias alias then new_entry else o)
                      b.A.from;
                  where = rest_where @ join_preds;
                }
      | _ -> None)
    b.A.from

and optimize_block_general t ~outer ~out_alias (b : A.block) : Annotation.t =
  match semi_distinct_variants b with
  | [] -> optimize_block_core t ~outer ~out_alias b
  | variants ->
      let base = optimize_block_core t ~outer ~out_alias b in
      List.fold_left
        (fun (best : Annotation.t) b' ->
          match optimize_block_core t ~outer ~out_alias b' with
          | ann when ann.Annotation.an_cost < best.Annotation.an_cost -> ann
          | _ -> best
          | exception (Ctx.Unsupported _ | Ctx.Cost_cap_exceeded) -> best)
        base variants

and optimize_block_core t ~outer ~out_alias (b : A.block) : Annotation.t =
  let local_aliases = Walk.defined_aliases b in
  (* --- classify WHERE conjuncts (flattening nested ANDs first) --- *)
  let where = List.concat_map A.conjuncts b.where in
  let subq_preds, plain = List.partition Walk.pred_has_subquery where in
  let local_of p = Sset.inter (Walk.pred_aliases ~deep:true p) local_aliases in
  let single_tbl : (string, A.pred list) Hashtbl.t = Hashtbl.create 8 in
  let join_preds = ref [] in
  let zero_preds = ref [] in
  List.iter
    (fun p ->
      let locs = local_of p in
      match Sset.cardinal locs with
      | 0 -> zero_preds := p :: !zero_preds
      | 1 ->
          let a = Sset.choose locs in
          Hashtbl.replace single_tbl a
            ((try Hashtbl.find single_tbl a with Not_found -> []) @ [ p ])
      | _ -> join_preds := p :: !join_preds)
    plain;
  let join_preds = List.rev !join_preds in
  let zero_preds = List.rev !zero_preds in
  (* --- build entries --- *)
  let base_infos =
    List.filter_map
      (fun fe ->
        match fe.A.fe_source with
        | A.S_table tbl ->
            Some (Ctx.table_info t ~table:tbl ~alias:fe.A.fe_alias)
        | A.S_view _ -> None)
      b.from
  in
  let sibling_env = Ctx.merge_env (outer :: base_infos) in
  let entries =
    List.mapi
      (fun i fe ->
        let singles =
          try Hashtbl.find single_tbl fe.A.fe_alias with Not_found -> []
        in
        let source, info, correlated_prereq =
          match fe.A.fe_source with
          | A.S_table tbl ->
              ( E_table tbl,
                Ctx.table_info t ~table:tbl ~alias:fe.A.fe_alias,
                Sset.empty )
          | A.S_view vq ->
              let free = Sset.inter (Walk.free_aliases vq) local_aliases in
              let correlated = not (Sset.is_empty free) in
              let ann =
                optimize_query t ~outer:sibling_env ~out_alias:fe.A.fe_alias vq
              in
              (E_view (ann, correlated), ann.Annotation.an_info, free)
        in
        let cond_prereq =
          List.fold_left
            (fun s p -> Sset.union s (Sset.inter (Walk.pred_aliases ~deep:true p) local_aliases))
            Sset.empty fe.A.fe_cond
        in
        let prereq =
          Sset.remove fe.A.fe_alias (Sset.union correlated_prereq cond_prereq)
        in
        let env_for_sel = Ctx.merge_env [ outer; sibling_env; info ] in
        let ssel = Sel.conj_sel env_for_sel singles in
        {
          e_idx = i;
          e_alias = fe.A.fe_alias;
          e_kind = fe.A.fe_kind;
          e_cond = fe.A.fe_cond;
          e_source = source;
          e_info = info;
          e_rows = info.Info.ri_rows;
          e_single = singles;
          e_single_sel = ssel;
          e_prereq = prereq;
        })
      b.from
  in
  let n = List.length entries in
  let entries_arr = Array.of_list entries in
  let full_env =
    Ctx.merge_env (outer :: List.map (fun e -> e.e_info) entries)
  in
  (* --- join enumeration --- *)
  let joined =
    if n = 1 then
      Ap.initial_partial t ~outer ~env:full_env ~local:local_aliases
        (List.hd entries)
    else if n <= t.Ctx.cfg.Ctx.dp_threshold then
      Join_enum.dp_join t ~outer ~env:full_env ~local:local_aliases
        ~entries:entries_arr ~join_preds
    else
      Join_enum.greedy_join t ~outer ~env:full_env ~local:local_aliases
        ~entries:entries_arr ~join_preds
  in
  (* --- residual zero-alias predicates --- *)
  let joined =
    if zero_preds = [] then joined
    else
      let zero_preds = Plan.order_preds zero_preds in
      let sel = Sel.conj_sel full_env zero_preds in
      let rows = Float.max 1. (joined.p_rows *. sel) in
      {
        joined with
        p_plan = Plan.Filter { child = joined.p_plan; preds = zero_preds };
        p_cost =
          joined.p_cost
          +. Ctx.filter_cost full_env ~rows:joined.p_rows zero_preds
          +. Model.out_tax rows;
        p_rows = rows;
        p_info = Info.filter ~sel joined.p_info;
      }
  in
  (* --- TIS subquery filters (non-unnested subqueries) --- *)
  let joined =
    if subq_preds = [] then joined
    else apply_subq_filters t ~outer ~env:full_env joined subq_preds
  in
  (* --- aggregation --- *)
  let has_agg = Walk.block_has_agg b in
  let post_agg, rewrite1 =
    if not has_agg then (joined, fun e -> e)
    else lower_aggregation t ~env:full_env joined b
  in
  (* --- window functions --- *)
  let post_win, rewrite2 =
    if not (Walk.block_has_win b) then (post_agg, rewrite1)
    else lower_windows t ~env:full_env post_agg b ~rewrite:rewrite1
  in
  (* --- ORDER BY (pre-projection; row order survives projection) --- *)
  let post_sort =
    match b.order_by with
    | [] -> post_win
    | keys ->
        let keys = List.map (fun (e, d) -> (rewrite2 e, d)) keys in
        {
          post_win with
          p_plan = Plan.Sort { child = post_win.p_plan; keys };
          p_cost = post_win.p_cost +. Model.sort ~rows:post_win.p_rows;
        }
  in
  (* --- projection --- *)
  let items =
    List.map (fun si -> (rewrite2 si.A.si_expr, si.A.si_name)) b.select
  in
  let out_info =
    Info.project ~alias:out_alias ~rows:post_sort.p_rows
      (List.map
         (fun (e, nm) ->
           (nm, Ctx.default_expr_info (Ctx.merge_env [ full_env; post_sort.p_info ]) ~rows:post_sort.p_rows e))
         items)
  in
  let projected =
    {
      post_sort with
      p_plan = Plan.Project { child = post_sort.p_plan; alias = out_alias; items };
      p_cost = post_sort.p_cost +. Model.project ~rows:post_sort.p_rows;
      p_info = out_info;
    }
  in
  (* --- DISTINCT --- *)
  let distincted =
    if not b.distinct then projected
    else
      let groups =
        Float.max 1.
          (Sel.distinct_count
             (Ctx.merge_env [ projected.p_info ])
             ~rows:projected.p_rows
             (List.map (fun (_, nm) -> A.col out_alias nm) items))
      in
      {
        projected with
        p_plan = Plan.Distinct projected.p_plan;
        p_cost =
          projected.p_cost +. Model.distinct ~rows:projected.p_rows ~groups;
        p_rows = groups;
        p_info = { projected.p_info with ri_rows = groups };
      }
  in
  (* --- ROWNUM limit --- *)
  let limited =
    match b.limit with
    | None -> distincted
    | Some k ->
        let rows = Float.min distincted.p_rows (float_of_int k) in
        {
          distincted with
          p_plan = Plan.Limit { child = distincted.p_plan; n = k };
          p_rows = rows;
          p_info = { distincted.p_info with ri_rows = rows };
        }
  in
  {
    Annotation.an_plan = limited.p_plan;
    an_cost = limited.p_cost;
    an_rows = limited.p_rows;
    an_info = limited.p_info;
  }

(* ------------------------------------------------------------------ *)
(* TIS subquery filters                                                 *)
(* ------------------------------------------------------------------ *)

and apply_subq_filters t ~outer ~env (joined : partial)
    (preds : A.pred list) : partial =
  let sub_env = Ctx.merge_env [ outer; env ] in
  let compiled, total_cost, sel =
    List.fold_left
      (fun (acc, cost, sel) p ->
        let mk_sub q = optimize_query t ~outer:sub_env ~out_alias:"" q in
        let sp, subq_cost =
          match p with
          | A.Exists q ->
              let ann = mk_sub q in
              (Plan.SP_exists { negated = false; plan = ann.Annotation.an_plan }, ann.an_cost)
          | A.Not_exists q ->
              let ann = mk_sub q in
              (Plan.SP_exists { negated = true; plan = ann.Annotation.an_plan }, ann.an_cost)
          | A.In_subq (es, q) ->
              let ann = mk_sub q in
              (Plan.SP_in { negated = false; lhs = es; plan = ann.Annotation.an_plan }, ann.an_cost)
          | A.Not_in_subq (es, q) ->
              let ann = mk_sub q in
              (Plan.SP_in { negated = true; lhs = es; plan = ann.Annotation.an_plan }, ann.an_cost)
          | A.Cmp_subq (op, lhs, quant, q) ->
              let ann = mk_sub q in
              (Plan.SP_cmp { op; lhs; quant; plan = ann.Annotation.an_plan }, ann.an_cost)
          | _ ->
              raise
                (Ctx.Unsupported
                   "subquery predicate under OR / NOT cannot be executed")
        in
        let q =
          match p with
          | A.Exists q | A.Not_exists q | A.In_subq (_, q) | A.Not_in_subq (_, q)
          | A.Cmp_subq (_, _, _, q) ->
              q
          | _ -> assert false
        in
        (* cache misses: distinct combinations of the correlation values
           drawn from the current block's stream *)
        let corr_cols =
          List.filter
            (fun c -> Info.find_col joined.p_info c <> None)
            (Walk.free_cols q)
        in
        let execs =
          if corr_cols = [] then 1.
          else
            Sel.distinct_count joined.p_info ~rows:joined.p_rows
              (List.map (fun c -> A.Col c) corr_cols)
        in
        let psel = Sel.pred_sel sub_env p in
        (acc @ [ sp ], cost +. (execs *. subq_cost), sel *. psel))
      ([], 0., 1.) preds
  in
  let rows = Float.max 0.5 (joined.p_rows *. sel) in
  {
    joined with
    p_plan = Plan.Subq_filter { child = joined.p_plan; preds = compiled };
    p_cost =
      joined.p_cost +. total_cost
      +. Model.subq_filter ~rows:joined.p_rows ~execs:0. ~subq_cost:0. ~out:rows;
    p_rows = rows;
    p_info = Info.filter ~sel joined.p_info;
  }

(* ------------------------------------------------------------------ *)
(* Aggregation lowering                                                 *)
(* ------------------------------------------------------------------ *)

(** Collect the distinct aggregate terms appearing in an expression. *)
and collect_aggs acc (e : A.expr) : A.expr list =
  match e with
  | A.Agg _ -> if List.mem e acc then acc else acc @ [ e ]
  | A.Const _ | A.Bind _ | A.Col _ -> acc
  | A.Binop (_, a, b) -> collect_aggs (collect_aggs acc a) b
  | A.Neg a -> collect_aggs acc a
  | A.Win (_, eo, _) -> (
      match eo with None -> acc | Some a -> collect_aggs acc a)
  | A.Fn (_, args) -> List.fold_left collect_aggs acc args
  | A.Case (arms, els) ->
      let acc = List.fold_left (fun acc (_, e) -> collect_aggs acc e) acc arms in
      (match els with None -> acc | Some e -> collect_aggs acc e)

and collect_aggs_pred acc (p : A.pred) : A.expr list =
  let r = ref acc in
  ignore
    (Walk.map_pred_exprs
       (fun e ->
         r := collect_aggs !r e;
         e)
       p);
  !r

and lower_aggregation t ~env (joined : partial) (b : A.block) :
    partial * (A.expr -> A.expr) =
  let agg_alias = Ctx.gensym t "$agg" in
  let agg_terms =
    let acc = List.fold_left (fun acc si -> collect_aggs acc si.A.si_expr) [] b.select in
    let acc = List.fold_left collect_aggs_pred acc b.having in
    List.fold_left (fun acc (e, _) -> collect_aggs acc e) acc b.order_by
  in
  let keys = List.mapi (fun i e -> (e, Printf.sprintf "k%d" i)) b.group_by in
  let aggs =
    List.mapi
      (fun i e ->
        match e with
        | A.Agg (a, arg, dist) -> (Printf.sprintf "a%d" i, a, arg, dist)
        | _ -> assert false)
      agg_terms
  in
  let rewrite e =
    let rec go e =
      match List.find_opt (fun (k, _) -> k = e) keys with
      | Some (_, nm) -> A.col agg_alias nm
      | None -> (
          match e with
          | A.Agg _ -> (
              match
                List.find_opt
                  (fun (i, _) -> List.nth agg_terms i = e)
                  (List.mapi (fun i a -> (i, a)) agg_terms)
              with
              | Some (i, _) -> A.col agg_alias (Printf.sprintf "a%d" i)
              | None -> e)
          | A.Const _ | A.Bind _ | A.Col _ -> e
          | A.Binop (op, a, bb) -> A.Binop (op, go a, go bb)
          | A.Neg a -> A.Neg (go a)
          | A.Win (a, eo, w) -> A.Win (a, Option.map go eo, w)
          | A.Fn (n, args) -> A.Fn (n, List.map go args)
          | A.Case (arms, els) ->
              A.Case
                ( List.map (fun (p, e) -> (Walk.map_pred_exprs go p, go e)) arms,
                  Option.map go els ))
    in
    go e
  in
  let groups =
    if b.group_by = [] then 1.
    else Sel.distinct_count env ~rows:joined.p_rows b.group_by
  in
  let agg_plan =
    Plan.Aggregate
      { child = joined.p_plan; strategy = `Hash; alias = agg_alias; keys; aggs }
  in
  let agg_cost =
    joined.p_cost
    +. Model.aggregate ~strategy:`Hash ~rows:joined.p_rows ~groups
  in
  let agg_info =
    Info.project ~alias:agg_alias ~rows:groups
      (List.map
         (fun (e, nm) -> (nm, Ctx.default_expr_info env ~rows:groups e))
         keys
      @ List.map
          (fun (nm, _, _, _) ->
            (nm, { Info.default_colinfo with ci_ndv = Float.max 1. (groups /. 2.) }))
          aggs)
  in
  let post =
    {
      joined with
      p_plan = agg_plan;
      p_cost = agg_cost;
      p_rows = groups;
      p_info = agg_info;
    }
  in
  (* HAVING: filter over the aggregate output *)
  let post =
    if b.having = [] then post
    else
      let having = List.map (Walk.map_pred_exprs rewrite) b.having in
      let sel = Sel.conj_sel agg_info having in
      let rows = Float.max 0.5 (post.p_rows *. sel) in
      {
        post with
        p_plan = Plan.Filter { child = post.p_plan; preds = having };
        p_cost = post.p_cost +. Model.filter ~rows:post.p_rows ~out:rows;
        p_rows = rows;
        p_info = Info.filter ~sel post.p_info;
      }
  in
  (post, rewrite)

(* ------------------------------------------------------------------ *)
(* Window lowering                                                      *)
(* ------------------------------------------------------------------ *)

and collect_wins acc (e : A.expr) : A.expr list =
  match e with
  | A.Win _ -> if List.mem e acc then acc else acc @ [ e ]
  | A.Const _ | A.Bind _ | A.Col _ | A.Agg _ -> acc
  | A.Binop (_, a, b) -> collect_wins (collect_wins acc a) b
  | A.Neg a -> collect_wins acc a
  | A.Fn (_, args) -> List.fold_left collect_wins acc args
  | A.Case (arms, els) ->
      let acc = List.fold_left (fun acc (_, e) -> collect_wins acc e) acc arms in
      (match els with None -> acc | Some e -> collect_wins acc e)

and lower_windows t ~env (input : partial) (b : A.block)
    ~(rewrite : A.expr -> A.expr) : partial * (A.expr -> A.expr) =
  let win_alias = Ctx.gensym t "$win" in
  let win_terms =
    List.fold_left (fun acc si -> collect_wins acc si.A.si_expr) [] b.select
  in
  let wins =
    List.mapi
      (fun i e ->
        match e with
        | A.Win (a, arg, w) ->
            (Printf.sprintf "w%d" i, a, Option.map rewrite arg,
             {
               A.w_pby = List.map rewrite w.A.w_pby;
               w_oby = List.map (fun (e, d) -> (rewrite e, d)) w.A.w_oby;
             })
        | _ -> assert false)
      win_terms
  in
  let rewrite2 e =
    let rec go e =
      match e with
      | A.Win _ -> (
          match
            List.find_opt (fun (i, _) -> List.nth win_terms i = e)
              (List.mapi (fun i w -> (i, w)) win_terms)
          with
          | Some (i, _) -> A.col win_alias (Printf.sprintf "w%d" i)
          | None -> rewrite e)
      | A.Const _ | A.Bind _ | A.Col _ -> rewrite e
      | A.Agg _ -> rewrite e
      | A.Binop (op, a, bb) -> A.Binop (op, go a, go bb)
      | A.Neg a -> A.Neg (go a)
      | A.Fn (n, args) -> A.Fn (n, List.map go args)
      | A.Case (arms, els) ->
          A.Case
            ( List.map (fun (p, e) -> (Walk.map_pred_exprs go p, go e)) arms,
              Option.map go els )
    in
    go e
  in
  ignore env;
  let plan = Plan.Window { child = input.p_plan; alias = win_alias; wins } in
  let cost = input.p_cost +. Model.window ~rows:input.p_rows in
  let info =
    {
      input.p_info with
      Info.ri_cols =
        input.p_info.Info.ri_cols
        @ List.map
            (fun (nm, _, _, _) ->
              ((win_alias, nm),
               { Info.default_colinfo with ci_ndv = Float.max 1. input.p_rows }))
            wins;
    }
  in
  ({ input with p_plan = plan; p_cost = cost; p_info = info }, rewrite2)
