(** Join-order search: left-deep dynamic programming with partial-order
    constraints (Sections 2.1.1 and 2.2.3), greedy ordering beyond the
    DP threshold.

    The state-level cost cap ([Opt_ctx.cost_cap], Section 3.4.1) is
    pushed {e into} the enumeration as branch-and-bound pruning: a
    partial plan already costing more than the cap cannot lead to a
    final plan under the cap (every extension only adds nonnegative
    cost), so it is discarded immediately instead of being carried to a
    post-hoc check. Pruned entries are counted in
    {!Opt_stats.t.dp_pruned}; when pruning eliminates every complete
    join order the block's optimization aborts with
    {!Opt_ctx.Cost_cap_exceeded} — and, with completion-based counting,
    does not count as a block optimized. *)

module Ap = Access_path
module Ctx = Opt_ctx

(** Does [cost] exceed the active cost cap? *)
let over_cap (t : Ctx.t) (cost : float) =
  match t.Ctx.cost_cap with Some cap -> cost > cap | None -> false

let dp_join (t : Ctx.t) ~outer ~env ~local ~(entries : Ap.entry array)
    ~join_preds : Ap.partial =
  let n = Array.length entries in
  let full = (1 lsl n) - 1 in
  let best : (int, Ap.partial) Hashtbl.t = Hashtbl.create 64 in
  let pruned_here = ref false in
  let consider (p : Ap.partial) =
    if over_cap t p.Ap.p_cost then (
      pruned_here := true;
      t.Ctx.stats.Opt_stats.dp_pruned <-
        t.Ctx.stats.Opt_stats.dp_pruned + 1)
    else
      match Hashtbl.find_opt best p.Ap.p_set with
      | Some q when q.Ap.p_cost <= p.Ap.p_cost -> ()
      | _ -> Hashtbl.replace best p.Ap.p_set p
  in
  Array.iter
    (fun e ->
      if Ap.can_start e then
        consider (Ap.initial_partial t ~outer ~env ~local e))
    entries;
  (* iterate by subset size *)
  for _size = 1 to n - 1 do
    let snapshot = Hashtbl.fold (fun k v acc -> (k, v) :: acc) best [] in
    List.iter
      (fun (set, lp) ->
        Array.iter
          (fun e ->
            if set land Ap.bit e.Ap.e_idx = 0 && Ap.can_follow e lp.Ap.p_aliases
            then List.iter consider (Ap.extend t ~env ~local ~join_preds lp e))
          entries)
      snapshot
  done;
  match Hashtbl.find_opt best full with
  | Some p -> p
  | None ->
      if !pruned_here then raise Ctx.Cost_cap_exceeded
      else raise (Ctx.Unsupported "no valid join order (cyclic partial order?)")

let greedy_join (t : Ctx.t) ~outer ~env ~local ~(entries : Ap.entry array)
    ~join_preds : Ap.partial =
  let n = Array.length entries in
  let start =
    Array.to_list entries
    |> List.filter Ap.can_start
    |> List.map (Ap.initial_partial t ~outer ~env ~local)
    |> List.sort (fun a b -> Float.compare a.Ap.p_cost b.Ap.p_cost)
  in
  match start with
  | [] -> raise (Ctx.Unsupported "no startable FROM entry")
  | first :: _ ->
      let current = ref first in
      let remaining = ref (n - 1) in
      while !remaining > 0 do
        let lp = !current in
        (* branch-and-bound: the greedy walk is monotone in cost, so a
           partial already over the cap can only get worse *)
        if over_cap t lp.Ap.p_cost then (
          t.Ctx.stats.Opt_stats.dp_pruned <-
            t.Ctx.stats.Opt_stats.dp_pruned + 1;
          raise Ctx.Cost_cap_exceeded);
        let candidates =
          Array.to_list entries
          |> List.filter (fun e ->
                 lp.Ap.p_set land Ap.bit e.Ap.e_idx = 0
                 && Ap.can_follow e lp.Ap.p_aliases)
          |> List.concat_map (fun e -> Ap.extend t ~env ~local ~join_preds lp e)
        in
        match
          List.sort (fun a b -> Float.compare a.Ap.p_cost b.Ap.p_cost)
            candidates
        with
        | [] -> raise (Ctx.Unsupported "greedy join ordering got stuck")
        | best :: _ ->
            current := best;
            decr remaining
      done;
      !current
