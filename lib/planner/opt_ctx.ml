(** Shared optimizer context: catalog, configuration, caches and
    counters, threaded through the split planner modules
    ({!Access_path}, {!Join_enum}, {!Block_cost}) behind the
    {!Optimizer} façade.

    Two annotation caches implement the cost-annotation reuse of
    Section 3.4.2:

    - the {e identity cache} keys on the physical identity of the query
      node (plus the output alias). Transformations preserve sharing
      ({!Transform.Tx.map_blocks_bottom_up}), so a block untouched by a
      search state is the {e same} node across states and its annotation
      is found without re-fingerprinting or re-walking the subtree;
    - the {e fingerprint cache} keys on the structural fingerprint hash
      ({!Sqlir.Fingerprint}, [With_peeks] mode — bind-peek values
      matter for costing) mixed with the output alias, and catches
      structurally-equal blocks that are not physically shared (e.g. a
      view regenerated identically by two different masks). Hash
      buckets are verified by full structural comparison against the
      canonical form; a bucket entry that fails the comparison is a
      true hash collision and is counted
      ({!Opt_stats.t.fp_collisions}). Both caches deliberately ignore
      the outer environment, like the pre-split implementation.

    The [dirty] set is the transformation's report of which blocks the
    current state rebuilt ([qb_name]s). It is advisory: identity is the
    correctness guard; a clean block that misses the identity cache is
    only counted ({!Opt_stats.t.dirty_misses}), never mis-costed. *)

open Sqlir
module Info = Cost.Info
module Model = Cost.Model
module Sel = Cost.Selectivity
module Plan = Exec.Plan

exception Unsupported of string
exception Cost_cap_exceeded

type config = {
  dp_threshold : int;
      (** maximum number of FROM entries for exhaustive left-deep DP;
          larger blocks use a greedy ordering *)
  enable_merge_join : bool;
  enable_hash_join : bool;
}

let default_config =
  { dp_threshold = 9; enable_merge_join = true; enable_hash_join = true }

(** Hashing on the physical identity of a query node. [Hashtbl.hash] is
    depth-bounded, so hashing is O(1) in the subtree size; [( == )]
    makes structural collisions harmless. *)
module Qtbl = Hashtbl.Make (struct
  type t = Ast.query

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type t = {
  cat : Catalog.t;
  cfg : config;
  stats : Opt_stats.t;
  annot_cache :
    (int, (string * Ast.query * Annotation.t) list) Hashtbl.t option;
      (** fingerprint-keyed annotation cache, shared across every state
          of every transformation of one driver run: structural hash ->
          [(out_alias, canonical query, annotation)] bucket *)
  ident_cache : (string * Annotation.t) list Qtbl.t;
      (** identity-keyed annotation cache: query node -> annotations by
          output alias; only populated when [annot_cache] is present *)
  mutable dirty : Walk.Sset.t option;
      (** block names the current search state rebuilt ([None] = no
          dirty information; everything may be new) *)
  mutable cost_cap : float option;
      (** abort optimization when a block's cost exceeds this (cost
          cut-off, Section 3.4.1); also drives branch-and-bound pruning
          inside {!Join_enum} *)
  mutable fresh : int;
  info_cache : (string, (string * Cost.Info.colinfo) list) Hashtbl.t;
      (** per-table column properties, derived from catalog statistics
          once per optimizer and reused across every state of every
          transformation — the analogue of the paper's caching of
          expensive optimizer computations such as dynamic sampling
          (Section 3.4.4) *)
  tracer : Obs.Trace.t;
      (** observability spans ({!Obs.Trace.disabled} unless the driver
          threads a live trace through) — block-level spans are emitted
          by {!Block_cost} for every optimization actually entered *)
  mutable block_hook : (Ast.query -> Annotation.t -> unit) option;
      (** invoked by {!Block_cost} on every freshly computed (non-cached)
          per-block annotation; the sanitizer installs the CB002/CB003
          cost cross-checks here. Exceptions propagate. *)
}

let create ?(cfg = default_config) ?annot_cache ?(tracer = Obs.Trace.disabled)
    cat =
  {
    cat;
    cfg;
    stats = Opt_stats.create ();
    annot_cache;
    ident_cache = Qtbl.create 64;
    dirty = None;
    cost_cap = None;
    fresh = 0;
    info_cache = Hashtbl.create 32;
    tracer;
    block_hook = None;
  }

(** Annotation reuse is on iff a fingerprint cache was supplied. *)
let memo_enabled t = t.annot_cache <> None

let gensym t base =
  t.fresh <- t.fresh + 1;
  Printf.sprintf "%s%d" base t.fresh

(* ------------------------------------------------------------------ *)
(* Identity cache                                                       *)
(* ------------------------------------------------------------------ *)

let ident_find t ~(out_alias : string) (q : Ast.query) : Annotation.t option =
  match Qtbl.find_opt t.ident_cache q with
  | None -> None
  | Some entries -> List.assoc_opt out_alias entries

let ident_store t ~(out_alias : string) (q : Ast.query) (ann : Annotation.t) :
    unit =
  if memo_enabled t then
    let entries =
      match Qtbl.find_opt t.ident_cache q with None -> [] | Some es -> es
    in
    Qtbl.replace t.ident_cache q ((out_alias, ann) :: entries)

(* ------------------------------------------------------------------ *)
(* Fingerprint cache                                                    *)
(* ------------------------------------------------------------------ *)

(** Cache key of [q] under output alias [out_alias]: the [With_peeks]
    structural hash mixed with the alias, plus the canonical query the
    bucket entry is verified against. Computed once per probe/store
    pair. *)
let fp_key ~(out_alias : string) (q : Ast.query) : int * Ast.query =
  let kq = Fingerprint.canonical ~mode:With_peeks q in
  (Fingerprint.hash ~mode:With_peeks kq lxor Hashtbl.hash out_alias, kq)

let fp_find t ~(out_alias : string) ~(h : int) ~(kq : Ast.query) :
    Annotation.t option =
  match t.annot_cache with
  | None -> None
  | Some c -> (
      match Hashtbl.find_opt c h with
      | None -> None
      | Some entries ->
          let rec scan = function
            | [] -> None
            | (a, q', ann) :: rest ->
                if String.equal a out_alias && q' = kq then Some ann
                else (
                  (* same hash, different structure: a true collision *)
                  t.stats.Opt_stats.fp_collisions <-
                    t.stats.Opt_stats.fp_collisions + 1;
                  scan rest)
          in
          scan entries)

let fp_store t ~(out_alias : string) ~(h : int) ~(kq : Ast.query)
    (ann : Annotation.t) : unit =
  match t.annot_cache with
  | None -> ()
  | Some c ->
      let entries =
        match Hashtbl.find_opt c h with None -> [] | Some es -> es
      in
      Hashtbl.replace c h ((out_alias, kq, ann) :: entries)

(* ------------------------------------------------------------------ *)
(* Statistics helpers shared by the split modules                       *)
(* ------------------------------------------------------------------ *)

(** Table info with the Section 3.4.4 cache: the (alias-independent)
    per-column derivation happens once per optimizer instance. *)
let table_info t ~table ~alias : Info.rel_info =
  let cols =
    match Hashtbl.find_opt t.info_cache table with
    | Some cols -> cols
    | None ->
        let info = Info.of_table t.cat ~table ~alias:"$t" in
        let cols = List.map (fun ((_, c), ci) -> (c, ci)) info.Info.ri_cols in
        Hashtbl.replace t.info_cache table cols;
        cols
  in
  let rows =
    match Catalog.stats t.cat table with
    | Some s -> float_of_int (max 1 s.s_rows)
    | None -> 1000.
  in
  {
    Info.ri_rows = rows;
    ri_cols = List.map (fun (c, ci) -> ((alias, c), ci)) cols;
  }

let merge_env (infos : Info.rel_info list) : Info.rel_info =
  {
    Info.ri_rows = 1.;
    ri_cols = List.concat_map (fun i -> i.Info.ri_cols) infos;
  }

(** Filter-evaluation cost of [preds] over [rows] input rows, charging
    expensive procedural predicates per surviving row (cheap conjuncts
    are ordered first, both here and in the built plans). *)
let filter_cost env ~rows (preds : Ast.pred list) : float =
  let cheap = List.filter (fun p -> Plan.n_expensive_preds [ p ] = 0) preds in
  Model.pred_eval_cost ~rows
    ~cheap_sel:(Sel.conj_sel env cheap)
    ~n_expensive:(Plan.n_expensive_preds preds)

let default_expr_info env ~rows (e : Ast.expr) : Info.colinfo =
  match e with
  | Ast.Col c -> (
      match Info.find_col env c with
      | Some ci -> ci
      | None -> { Info.default_colinfo with ci_ndv = Float.max 1. rows })
  | Ast.Const v ->
      { Info.default_colinfo with ci_ndv = 1.; ci_min = v; ci_max = v }
  | Ast.Bind (_, v) when not (Value.is_null v) ->
      (* execution-constant; the peeked value steers the estimate *)
      { Info.default_colinfo with ci_ndv = 1.; ci_min = v; ci_max = v }
  | Ast.Agg ((Ast.Count | Ast.Count_star), _, _) ->
      { Info.default_colinfo with ci_ndv = Float.max 1. (rows /. 2.) }
  | _ -> { Info.default_colinfo with ci_ndv = Float.max 1. (rows /. 3.) }
