(** Optimizer observability counters (Section 3.4 accounting).

    One record per optimizer instance, shared by reference across the
    split planner modules ({!Opt_ctx}, {!Block_cost}, {!Join_enum}) and
    surfaced through [Driver.report] and the bench JSON.

    [blocks_optimized] is counted at {e completion} of a query-block
    optimization — a block whose optimization is aborted mid-way by the
    cost cut-off (branch-and-bound pruning in {!Join_enum}, or a nested
    block exceeding the cap) counts as started but not optimized, which
    is exactly the work the cut-off saves. *)

type t = {
  mutable blocks_started : int;
      (** query-block optimizations entered (cache misses) *)
  mutable blocks_optimized : int;
      (** query-block optimizations completed — the unit of Table 1 /
          Table 2 accounting *)
  mutable fp_hits : int;
      (** annotation reuse via the fingerprint-keyed cache
          (Section 3.4.2) *)
  mutable ident_hits : int;
      (** annotation reuse via physical identity of the query node —
          no re-fingerprinting, no re-walking *)
  mutable dp_pruned : int;
      (** partial join orders discarded by branch-and-bound against the
          state cost cap (Section 3.4.1 pushed into the DP) *)
  mutable dirty_misses : int;
      (** blocks reported clean by the transformation's dirty set that
          nevertheless missed the identity cache (advisory: indicates a
          transformation over-copying untouched blocks) *)
  mutable fp_collisions : int;
      (** fingerprint-hash bucket entries whose full structural
          comparison failed on probe — true hash collisions, expected to
          stay at (or very near) zero *)
}

let create () =
  {
    blocks_started = 0;
    blocks_optimized = 0;
    fp_hits = 0;
    ident_hits = 0;
    dp_pruned = 0;
    dirty_misses = 0;
    fp_collisions = 0;
  }

let reset s =
  s.blocks_started <- 0;
  s.blocks_optimized <- 0;
  s.fp_hits <- 0;
  s.ident_hits <- 0;
  s.dp_pruned <- 0;
  s.dirty_misses <- 0;
  s.fp_collisions <- 0

(** Block optimizations entered but aborted by the cost cut-off. *)
let blocks_aborted s = s.blocks_started - s.blocks_optimized

(** Total annotation reuse, identity and fingerprint combined (the
    pre-split [cache_hits] figure). *)
let cache_hits s = s.fp_hits + s.ident_hits

let copy s =
  {
    blocks_started = s.blocks_started;
    blocks_optimized = s.blocks_optimized;
    fp_hits = s.fp_hits;
    ident_hits = s.ident_hits;
    dp_pruned = s.dp_pruned;
    dirty_misses = s.dirty_misses;
    fp_collisions = s.fp_collisions;
  }

(** [delta ~before ~after] — counter increments between two snapshots,
    as trace attributes. Keys carry the ["d_"] prefix the trace
    validator checks for non-negativity (counters only ever grow). *)
let delta ~before ~after : (string * int) list =
  [
    ("d_blocks_started", after.blocks_started - before.blocks_started);
    ("d_blocks_optimized", after.blocks_optimized - before.blocks_optimized);
    ("d_fp_hits", after.fp_hits - before.fp_hits);
    ("d_ident_hits", after.ident_hits - before.ident_hits);
    ("d_dp_pruned", after.dp_pruned - before.dp_pruned);
    ("d_dirty_misses", after.dirty_misses - before.dirty_misses);
    ("d_fp_collisions", after.fp_collisions - before.fp_collisions);
  ]

let pp ppf s =
  Fmt.pf ppf
    "blocks optimized %d (aborted %d), reuse ident %d + fp %d, dp pruned %d, \
     dirty misses %d, fp collisions %d"
    s.blocks_optimized (blocks_aborted s) s.ident_hits s.fp_hits s.dp_pruned
    s.dirty_misses s.fp_collisions
