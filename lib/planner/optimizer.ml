(** Public façade of the physical optimizer.

    A System-R style per-query-block optimizer: it chooses access paths
    (full scan vs. B-tree index), join order (left-deep dynamic
    programming, greedy beyond a size threshold) and join methods
    (nested loops with or without index, hash, sort-merge), honouring
    the partial orders that semijoin, antijoin, outerjoin and
    correlated (join-predicate-pushed-down) views impose on the join
    sequence (Sections 2.1.1 and 2.2.3).

    The implementation is split by layer:

    - {!Opt_ctx} — catalog, configuration, annotation caches (identity +
      fingerprint), cost cap, dirty set, counters;
    - {!Access_path} — per-table access-path choice and join methods;
    - {!Join_enum} — left-deep DP with partial-order constraints and
      branch-and-bound pruning against the state cost cap;
    - {!Block_cost} — per-block costing recursion and the annotation
      store;
    - {!Opt_stats} — observability counters.

    Callers keep compiling against [Opt.*]: the context record, its
    exceptions and the configuration are re-exported here. *)

exception Unsupported = Opt_ctx.Unsupported
exception Cost_cap_exceeded = Opt_ctx.Cost_cap_exceeded

type config = Opt_ctx.config = {
  dp_threshold : int;
  enable_merge_join : bool;
  enable_hash_join : bool;
}

let default_config = Opt_ctx.default_config

type t = Opt_ctx.t = {
  cat : Catalog.t;
  cfg : config;
  stats : Opt_stats.t;
  annot_cache :
    (int, (string * Sqlir.Ast.query * Annotation.t) list) Hashtbl.t option;
  ident_cache : (string * Annotation.t) list Opt_ctx.Qtbl.t;
  mutable dirty : Sqlir.Walk.Sset.t option;
  mutable cost_cap : float option;
  mutable fresh : int;
  info_cache : (string, (string * Cost.Info.colinfo) list) Hashtbl.t;
  tracer : Obs.Trace.t;
  mutable block_hook : (Sqlir.Ast.query -> Annotation.t -> unit) option;
}

let create = Opt_ctx.create

(* --- counters (see {!Opt_stats} for the full set) --- *)

let blocks_optimized (t : t) = t.stats.Opt_stats.blocks_optimized
let cache_hits (t : t) = Opt_stats.cache_hits t.stats
let stats (t : t) = t.stats

(* --- incremental-costing controls --- *)

let set_cost_cap (t : t) cap = t.cost_cap <- cap

(** Declare which blocks the next query to be optimized rebuilt
    ([None] = no information; everything may be new). Advisory — see
    {!Opt_ctx}. *)
let set_dirty (t : t) dirty = t.dirty <- dirty

(** Install (or clear) the per-block annotation hook — called on every
    freshly computed block annotation; the driver's check mode wires the
    CB-series cost cross-checks through it. *)
let set_block_hook (t : t) hook = t.block_hook <- hook

let optimize (t : t) (q : Sqlir.Ast.query) : Annotation.t =
  Block_cost.optimize_query t ~outer:Cost.Info.empty ~out_alias:"" q
