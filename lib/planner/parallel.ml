(** Degree-of-parallelism post-pass.

    Runs {e after} the cost-based optimizer has settled the plan shape:
    it finds partition-local regions — chains of filters over one
    partitioned scan, co-located hash joins of two identically
    partitioned tables, hash aggregations over such regions — and wraps
    them in {!Exec.Plan.Exchange} operators, splitting aggregations
    into partial/final pairs so each domain aggregates its own
    partitions and only accumulator-state rows cross the exchange.

    The pass is shape-preserving outside the rewritten regions and
    never rewrites inside a nested-loop inner side (the exchange would
    re-spawn domains per probe row) or inside subquery plans (an
    enclosing exchange task restriction must not leak into them —
    [PL009]).

    Degree choice: [Serial] leaves the plan untouched; [Fixed n] wraps
    every eligible region at exactly [n] (including [n = 1], which is
    how the determinism tests pin the exchange path itself);
    [Auto] parallelizes only regions whose estimated scanned rows clear
    {!startup_rows} — below that, domain startup dominates — at a
    degree clamped by [Domain.recommended_domain_count]. *)

open Sqlir
module A = Ast
module Plan = Exec.Plan

type dop = Serial | Fixed of int | Auto

let dop_to_string = function
  | Serial -> "serial"
  | Fixed n -> string_of_int n
  | Auto -> "auto"

let dop_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "serial" | "0" -> Some Serial
  | "auto" -> Some Auto
  | s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> Some (Fixed n)
      | _ -> None)

(** Estimated scanned rows below which [Auto] keeps a region serial:
    spawning a domain costs ~tens of microseconds, worth paying only
    when each worker has real scan work. *)
let startup_rows = 8_192.

let clamp n = max 1 (min n (Domain.recommended_domain_count ()))

(* ------------------------------------------------------------------ *)
(* Partition-local regions                                              *)
(* ------------------------------------------------------------------ *)

type chain = {
  ch_plan : Plan.t;  (* scan converted to Part_scan *)
  ch_spec : Catalog.part_spec;
  ch_alias : string;
  ch_table : string;
  ch_prune : Plan.prune;
}

(** A partition-local chain: filters over exactly one scan of a
    partitioned table. Converts a [Table_scan] to a [Part_scan] with
    the prune spec derived from its own filter. *)
let rec chain_of (cat : Catalog.t) (p : Plan.t) : chain option =
  match p with
  | Plan.Table_scan { table; alias; filter } ->
      Option.map
        (fun ps ->
          let prune = Access_path.derive_prune ps ~alias filter in
          {
            ch_plan = Plan.Part_scan { table; alias; filter; prune };
            ch_spec = ps;
            ch_alias = alias;
            ch_table = table;
            ch_prune = prune;
          })
        (Catalog.part_spec cat table)
  | Plan.Part_scan { table; alias; prune; _ } ->
      Option.map
        (fun ps ->
          {
            ch_plan = p;
            ch_spec = ps;
            ch_alias = alias;
            ch_table = table;
            ch_prune = prune;
          })
        (Catalog.part_spec cat table)
  | Plan.Filter { child; preds } ->
      Option.map
        (fun ch -> { ch with ch_plan = Plan.Filter { child = ch.ch_plan; preds } })
        (chain_of cat child)
  | _ -> None

let spec_eq (a : Catalog.part_spec) (b : Catalog.part_spec) =
  a.Catalog.ps_scheme = b.Catalog.ps_scheme
  && a.Catalog.ps_n = b.Catalog.ps_n
  && a.Catalog.ps_bounds = b.Catalog.ps_bounds

(** Do [cond]'s conjuncts equate the two partition keys? Required for a
    co-located join: only then is every matching pair confined to one
    partition index. *)
let keys_equated ~(l : chain) ~(r : chain) (cond : A.pred list) : bool =
  let is c alias key =
    String.equal c.A.c_alias alias && String.equal c.A.c_col key
  in
  let lk = l.ch_spec.Catalog.ps_col and rk = r.ch_spec.Catalog.ps_col in
  List.exists
    (fun p ->
      match p with
      | A.Cmp (A.Eq, A.Col a, A.Col b) ->
          (is a l.ch_alias lk && is b r.ch_alias rk)
          || (is a r.ch_alias rk && is b l.ch_alias lk)
      | _ -> false)
    cond

(** Estimated rows the region will scan (the parallel work volume),
    honouring the statically estimable part of the prune spec. *)
let scanned_rows (cat : Catalog.t) (ch : chain) : float =
  let _, rows, _ =
    Access_path.prune_estimate cat ch.ch_spec ~table:ch.ch_table ch.ch_prune
  in
  Float.max rows 0.

(* ------------------------------------------------------------------ *)
(* The rewrite                                                          *)
(* ------------------------------------------------------------------ *)

(** [apply cat ~dop plan] — wrap eligible partition-local regions in
    exchanges at the requested degree. *)
let apply (cat : Catalog.t) ~(dop : dop) (plan : Plan.t) : Plan.t =
  match dop with
  | Serial -> plan
  | _ ->
      let degree ~rows =
        match dop with
        | Serial -> None
        | Fixed n -> Some (clamp n)
        | Auto ->
            let d = clamp max_int in
            if d >= 2 && rows >= startup_rows then Some d else None
      in
      (* wrap a region if the degree gate passes *)
      let wrap ~rows child =
        match degree ~rows with
        | Some d -> Some (Plan.Exchange { child; dop = d })
        | None -> None
      in
      let rec go (p : Plan.t) : Plan.t =
        match chain_of cat p with
        | Some ch -> (
            match wrap ~rows:(scanned_rows cat ch) ch.ch_plan with
            | Some e -> e
            | None -> p)
        | None -> (
            match p with
            | Plan.Aggregate { child; strategy = `Hash; alias; keys; aggs }
              when List.for_all (fun (_, _, _, d) -> not d) aggs -> (
                (* two-phase split: domains aggregate their own
                   partitions, only state rows cross the exchange *)
                match chain_of cat child with
                | Some ch -> (
                    let paggs =
                      List.map (fun (n, a, e, _) -> (n, a, e)) aggs
                    in
                    let partial =
                      Plan.Partial_agg
                        { child = ch.ch_plan; alias; keys; aggs = paggs }
                    in
                    match wrap ~rows:(scanned_rows cat ch) partial with
                    | Some e ->
                        Plan.Final_agg
                          {
                            child = e;
                            alias;
                            keys = List.map snd keys;
                            aggs = List.map (fun (n, a, _, _) -> (n, a)) aggs;
                          }
                    | None -> p)
                | None ->
                    let c' = go child in
                    if c' == child then p
                    else
                      Plan.Aggregate
                        { child = c'; strategy = `Hash; alias; keys; aggs })
            | Plan.Join { meth = Plan.Hash; role; left; right; cond }
              when role <> Plan.Anti_na -> (
                (* co-located partitioned hash join: both sides
                   identically partitioned and the join equates the
                   partition keys, so restricting both sides to the
                   same partition index loses no pairs ([Anti_na] is
                   excluded: a NULL key must see every partition) *)
                match (chain_of cat left, chain_of cat right) with
                | Some l, Some r
                  when spec_eq l.ch_spec r.ch_spec && keys_equated ~l ~r cond
                  -> (
                    let joined =
                      Plan.Join
                        {
                          meth = Plan.Hash;
                          role;
                          left = l.ch_plan;
                          right = r.ch_plan;
                          cond;
                        }
                    in
                    let rows =
                      scanned_rows cat l +. scanned_rows cat r
                    in
                    match wrap ~rows joined with
                    | Some e -> e
                    | None -> p)
                | _ ->
                    let l' = go left and r' = go right in
                    if l' == left && r' == right then p
                    else
                      Plan.Join
                        {
                          meth = Plan.Hash;
                          role;
                          left = l';
                          right = r';
                          cond;
                        })
            | Plan.Join { meth; role; left; right; cond } ->
                (* a nested-loop inner side re-executes per probe row —
                   never put an exchange there *)
                let right' =
                  match meth with
                  | Plan.Nested_loop -> right
                  | Plan.Hash | Plan.Merge -> go right
                in
                let left' = go left in
                if left' == left && right' == right then p
                else
                  Plan.Join { meth; role; left = left'; right = right'; cond }
            | Plan.Filter { child; preds } ->
                let c' = go child in
                if c' == child then p else Plan.Filter { child = c'; preds }
            | Plan.Subq_filter { child; preds } ->
                (* subquery plans stay serial: an enclosing exchange
                   restriction must never apply inside them *)
                let c' = go child in
                if c' == child then p
                else Plan.Subq_filter { child = c'; preds }
            | Plan.Project { child; alias; items } ->
                let c' = go child in
                if c' == child then p
                else Plan.Project { child = c'; alias; items }
            | Plan.Aggregate { child; strategy; alias; keys; aggs } ->
                let c' = go child in
                if c' == child then p
                else Plan.Aggregate { child = c'; strategy; alias; keys; aggs }
            | Plan.Window { child; alias; wins } ->
                let c' = go child in
                if c' == child then p
                else Plan.Window { child = c'; alias; wins }
            | Plan.Distinct child ->
                let c' = go child in
                if c' == child then p else Plan.Distinct c'
            | Plan.Sort { child; keys } ->
                let c' = go child in
                if c' == child then p else Plan.Sort { child = c'; keys }
            | Plan.Limit { child; n } ->
                let c' = go child in
                if c' == child then p else Plan.Limit { child = c'; n }
            | Plan.Limit_filter { child; preds; n } ->
                let c' = go child in
                if c' == child then p
                else Plan.Limit_filter { child = c'; preds; n }
            | Plan.Union_all children ->
                let cs' = List.map go children in
                if List.for_all2 ( == ) cs' children then p
                else Plan.Union_all cs'
            | Plan.Setop_exec { op; left; right } ->
                let l' = go left and r' = go right in
                if l' == left && r' == right then p
                else Plan.Setop_exec { op; left = l'; right = r' }
            | Plan.Table_scan _ | Plan.Part_scan _ | Plan.Index_scan _
            | Plan.Exchange _ | Plan.Partial_agg _ | Plan.Final_agg _ ->
                (* unpartitioned scans; already-parallel regions *)
                p)
      in
      go plan
