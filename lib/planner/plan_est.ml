(** Post-hoc per-operator cardinality estimation over a {e physical}
    plan.

    The optimizer's annotations carry estimated rows only for whole
    query blocks; EXPLAIN ANALYZE needs an estimate {e per operator} to
    compute Q-error against actual row counts. Rather than threading
    estimates through every plan-construction site, this module re-runs
    the cost model's cardinality logic ({!Cost.Info},
    {!Cost.Selectivity}) bottom-up over the finished plan — which also
    works for plans the current optimizer instance never costed
    (heuristic-only modes, annotation-cache hits, plans loaded from a
    differ).

    Estimates are per {e invocation} of the operator: a nested-loop
    inner side estimated at 10 rows is expected to yield ~10 rows each
    time the outer row probes it, which is exactly how the analyzed
    actuals are normalized before the Q-error comparison. *)

open Sqlir
module A = Ast
module Info = Cost.Info
module Sel = Cost.Selectivity
module Plan = Exec.Plan

module Ptbl = Hashtbl.Make (struct
  type t = Plan.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let cols_as_exprs (info : Info.rel_info) : A.expr list =
  List.map (fun ((a, c), _) -> A.col a c) info.Info.ri_cols

(* estimated rows + column statistics of one node, memoizing per
   physical identity so shared subtrees are walked once *)
let rec est (cat : Catalog.t) (tbl : float Ptbl.t) (p : Plan.t) :
    Info.rel_info =
  let info = est_node cat tbl p in
  if not (Ptbl.mem tbl p) then Ptbl.add tbl p info.Info.ri_rows;
  info

and est_node cat tbl (p : Plan.t) : Info.rel_info =
  match p with
  | Plan.Table_scan { table; alias; filter } ->
      let info = Info.of_table cat ~table ~alias in
      Info.filter ~sel:(Sel.conj_sel info filter) info
  | Plan.Part_scan { table; alias; filter; prune = _ } ->
      (* pruning changes the pages read, never the output rows: the
         originating conjunct always stays in [filter], and the
         selectivity below already accounts for it *)
      let info = Info.of_table cat ~table ~alias in
      Info.filter ~sel:(Sel.conj_sel info filter) info
  | Plan.Exchange { child; _ } ->
      (* concatenation of the per-partition results: the child's total *)
      est cat tbl child
  | Plan.Partial_agg { child; alias; keys; aggs } ->
      let ci = est cat tbl child in
      let nparts =
        match Plan.part_scans child with
        | (table, prune) :: _ -> (
            match Catalog.part_spec cat table with
            | Some ps ->
                float_of_int
                  (max 1 (List.length (Exec.Prune.survivors
                        ~value_of:(Exec.Prune.value_of ~binds:[||])
                        ps prune)))
            | None -> 1.)
        | [] -> 1.
      in
      let groups =
        if keys = [] then 1.
        else
          Float.max 1.
            (Sel.distinct_count ci ~rows:ci.Info.ri_rows (List.map fst keys))
      in
      (* every surviving partition contributes up to [groups] state
         rows (exactly one for the scalar form), capped by the input *)
      let rows =
        if keys = [] then nparts
        else
          Float.min
            (Float.max 1. ci.Info.ri_rows)
            (Float.max 1. (groups *. nparts))
      in
      Info.project ~alias ~rows
        (List.map
           (fun (e, nm) -> (nm, Opt_ctx.default_expr_info ci ~rows e))
           keys
        @ List.map
            (fun nm ->
              ( nm,
                { Info.default_colinfo with ci_ndv = Float.max 1. (rows /. 2.) }
              ))
            (Plan.partial_state_cols aggs))
  | Plan.Final_agg { child; alias; keys; aggs } ->
      let ci = est cat tbl child in
      let groups =
        if keys = [] then 1.
        else
          Float.max 1.
            (Sel.distinct_count ci ~rows:ci.Info.ri_rows
               (List.map (fun k -> A.col alias k) keys))
      in
      Info.project ~alias ~rows:groups
        (List.map
           (fun k ->
             ( k,
               Opt_ctx.default_expr_info ci ~rows:groups (A.col alias k) ))
           keys
        @ List.map
            (fun (nm, _) ->
              ( nm,
                {
                  Info.default_colinfo with
                  ci_ndv = Float.max 1. (groups /. 2.);
                } ))
            aggs)
  | Plan.Index_scan { table; alias; index; prefix; lo; hi; filter } ->
      let info = Info.of_table cat ~table ~alias in
      let ix =
        List.find_opt
          (fun ix -> String.equal ix.Catalog.ix_name index)
          (Catalog.indexes_on cat table)
      in
      let key_sel =
        match ix with
        | None -> Sel.default_eq ** float_of_int (List.length prefix)
        | Some ix ->
            List.fold_left
              (fun sel key_col ->
                match
                  Info.find_col info { A.c_alias = alias; A.c_col = key_col }
                with
                | Some ci -> sel /. Float.max 1. ci.Info.ci_ndv
                | None -> sel *. Sel.default_eq)
              1.
              (List.filteri
                 (fun i _ -> i < List.length prefix)
                 ix.Catalog.ix_cols)
      in
      let range_sel =
        match (lo, hi) with
        | Plan.R_unbounded, Plan.R_unbounded -> 1.
        | _ -> Sel.default_range
      in
      let sel = key_sel *. range_sel *. Sel.conj_sel info filter in
      Info.filter ~sel info
  | Plan.Join { role; left; right; cond; _ } -> (
      let li = est cat tbl left in
      let ri = est cat tbl right in
      let l = li.Info.ri_rows and r = ri.Info.ri_rows in
      (* selectivity env keeps the children's NDVs ({!Info.join} would
         cap them at the given row count, flattening every equality
         selectivity to 1) *)
      let env =
        { Info.ri_rows = l *. r; ri_cols = li.Info.ri_cols @ ri.Info.ri_cols }
      in
      let sel = Sel.conj_sel env cond in
      let inner = Float.max 1. (l *. r *. sel) in
      match role with
      | Plan.Inner -> Info.join ~rows:inner li ri
      | Plan.Left_outer -> Info.join ~rows:(Float.max l inner) li ri
      | Plan.Semi ->
          let rows = Float.min l inner in
          Info.filter ~sel:(rows /. Float.max 1. l) li
      | Plan.Anti | Plan.Anti_na ->
          let semi = Float.min l inner in
          let rows = Float.max 1. (l -. semi) in
          Info.filter ~sel:(rows /. Float.max 1. l) li)
  | Plan.Filter { child; preds } ->
      let ci = est cat tbl child in
      Info.filter ~sel:(Sel.conj_sel ci preds) ci
  | Plan.Subq_filter { child; preds } ->
      let ci = est cat tbl child in
      (* walk the embedded subquery plans so they get estimates too *)
      List.iter
        (fun sp ->
          let plan =
            match sp with
            | Plan.SP_exists { plan; _ }
            | Plan.SP_in { plan; _ }
            | Plan.SP_cmp { plan; _ } ->
                plan
          in
          ignore (est cat tbl plan))
        preds;
      let sel = Sel.default_other ** float_of_int (List.length preds) in
      Info.filter ~sel ci
  | Plan.Project { child; alias; items } ->
      let ci = est cat tbl child in
      let rows = ci.Info.ri_rows in
      Info.project ~alias ~rows
        (List.map
           (fun (e, nm) -> (nm, Opt_ctx.default_expr_info ci ~rows e))
           items)
  | Plan.Aggregate { child; alias; keys; aggs; _ } ->
      let ci = est cat tbl child in
      let groups =
        if keys = [] then 1.
        else
          Float.max 1.
            (Sel.distinct_count ci ~rows:ci.Info.ri_rows (List.map fst keys))
      in
      Info.project ~alias ~rows:groups
        (List.map
           (fun (e, nm) -> (nm, Opt_ctx.default_expr_info ci ~rows:groups e))
           keys
        @ List.map
            (fun (nm, _, _, _) ->
              ( nm,
                {
                  Info.default_colinfo with
                  ci_ndv = Float.max 1. (groups /. 2.);
                } ))
            aggs)
  | Plan.Window { child; alias; wins } ->
      let ci = est cat tbl child in
      {
        ci with
        Info.ri_cols =
          ci.Info.ri_cols
          @ List.map
              (fun (nm, _, _, _) ->
                ( (alias, nm),
                  {
                    Info.default_colinfo with
                    ci_ndv = Float.max 1. ci.Info.ri_rows;
                  } ))
              wins;
      }
  | Plan.Distinct child ->
      let ci = est cat tbl child in
      let groups =
        Float.max 1.
          (Sel.distinct_count ci ~rows:ci.Info.ri_rows (cols_as_exprs ci))
      in
      { ci with Info.ri_rows = groups }
  | Plan.Sort { child; _ } -> est cat tbl child
  | Plan.Limit { child; n } ->
      let ci = est cat tbl child in
      { ci with Info.ri_rows = Float.min ci.Info.ri_rows (float_of_int n) }
  | Plan.Limit_filter { child; preds; n } ->
      let ci = est cat tbl child in
      let filtered = Info.filter ~sel:(Sel.conj_sel ci preds) ci in
      {
        filtered with
        Info.ri_rows = Float.min filtered.Info.ri_rows (float_of_int n);
      }
  | Plan.Union_all children ->
      let infos = List.map (est cat tbl) children in
      let rows =
        List.fold_left (fun acc i -> acc +. i.Info.ri_rows) 0. infos
      in
      (match infos with
      | [] -> { Info.ri_rows = 0.; ri_cols = [] }
      | i :: _ -> { i with Info.ri_rows = rows })
  | Plan.Setop_exec { op; left; right } ->
      let li = est cat tbl left in
      let ri = est cat tbl right in
      let rows =
        match op with
        | `Intersect ->
            Float.max 1. (Float.min li.Info.ri_rows ri.Info.ri_rows /. 2.)
        | `Minus -> Float.max 1. (li.Info.ri_rows /. 2.)
      in
      { li with Info.ri_rows = rows }

(** Estimate every operator of [plan]. Returns the root estimate and a
    lookup from plan node (by physical identity) to its estimated
    output rows per invocation. *)
let estimate (cat : Catalog.t) (plan : Plan.t) :
    float * (Plan.t -> float option) =
  let tbl = Ptbl.create 64 in
  let root = est cat tbl plan in
  (root.Info.ri_rows, fun p -> Ptbl.find_opt tbl p)

(** Per-node cardinality hints for the executor's hybrid engine choice:
    estimated output rows per invocation, keyed by physical identity —
    the shape of [Exec.Executor.execute]'s [card_of] callback. The
    executor consults the hint of each pipeline's source scan when
    deciding between the row and vectorized interpretations. *)
let pipeline_hints (cat : Catalog.t) (plan : Plan.t) : Plan.t -> float option =
  snd (estimate cat plan)
