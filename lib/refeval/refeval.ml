(** Reference evaluator: a naive, direct interpreter of query trees.

    This module defines the semantics of the IR. It performs no
    optimization whatsoever — subqueries always run with tuple iteration
    semantics, joins are nested loops over cross products, and nothing
    is indexed or cached. It exists so that the physical optimizer, the
    executor and every transformation can be validated against an
    independent, obviously-correct implementation: for any query [q] and
    any transformation [T], [eval q = eval (T q)] and
    [eval q = execute (optimize q)] must hold as multisets.

    Do not use it for anything but testing: it is exponential in the
    number of FROM entries. *)

open Sqlir
module A = Ast
module V = Value

exception Eval_error of string

(** A binding environment: alias -> (column -> value). *)
type env = (string * (string * V.t) list) list

type result = { cols : string list; rows : V.t list list }

let lookup (env : env) (c : A.col) : V.t =
  match List.assoc_opt c.A.c_alias env with
  | None -> raise (Eval_error (Printf.sprintf "unbound alias %s" c.A.c_alias))
  | Some cols -> (
      match List.assoc_opt c.A.c_col cols with
      | None ->
          raise
            (Eval_error
               (Printf.sprintf "unbound column %s.%s" c.A.c_alias c.A.c_col))
      | Some v -> v)

let not3 = function None -> None | Some b -> Some (not b)

let and3 a b =
  match (a, b) with
  | Some false, _ | _, Some false -> Some false
  | Some true, x | x, Some true -> x
  | None, None -> None

let or3 a b =
  match (a, b) with
  | Some true, _ | _, Some true -> Some true
  | Some false, x | x, Some false -> x
  | None, None -> None

let cmp_test : A.cmp -> int -> bool = function
  | A.Eq -> fun c -> c = 0
  | A.Ne -> fun c -> c <> 0
  | A.Lt -> fun c -> c < 0
  | A.Le -> fun c -> c <= 0
  | A.Gt -> fun c -> c > 0
  | A.Ge -> fun c -> c >= 0

let arith_op : A.arith -> _ = function
  | A.Add -> `Add
  | A.Sub -> `Sub
  | A.Mul -> `Mul
  | A.Div -> `Div

(* Rows of a group, for aggregate evaluation: list of envs. *)
let rec eval_expr (db : Storage.Db.t) (env : env) ?(group : env list option)
    (e : A.expr) : V.t =
  match e with
  | A.Const v -> v
  (* the reference evaluator runs one execution at a time, so a bind's
     peeked value IS its value for that execution *)
  | A.Bind (_, v) -> v
  | A.Col c -> lookup env c
  | A.Binop (op, a, b) ->
      V.arith (arith_op op) (eval_expr db env ?group a) (eval_expr db env ?group b)
  | A.Neg a -> V.neg (eval_expr db env ?group a)
  | A.Fn (n, args) ->
      let def = Exec.Funcs.find_exn n in
      def.f_eval (List.map (eval_expr db env ?group) args)
  | A.Case (arms, els) -> (
      let rec go = function
        | [] -> (
            match els with None -> V.Null | Some e -> eval_expr db env ?group e)
        | (p, e) :: rest -> (
            match eval_pred db env ?group p with
            | Some true -> eval_expr db env ?group e
            | _ -> go rest)
      in
      go arms)
  | A.Agg (a, arg, dist) -> (
      match group with
      | None -> raise (Eval_error "aggregate outside grouping context")
      | Some members -> eval_agg db a arg dist members)
  | A.Win _ -> raise (Eval_error "window function in scalar context")

and eval_agg db (a : A.agg) (arg : A.expr option) (dist : bool)
    (members : env list) : V.t =
  match a with
  | A.Count_star -> V.Int (List.length members)
  | _ ->
      let arg =
        match arg with
        | Some e -> e
        | None -> raise (Eval_error "aggregate without argument")
      in
      let vals =
        List.filter
          (fun v -> not (V.is_null v))
          (List.map (fun env -> eval_expr db env arg) members)
      in
      let vals =
        if not dist then vals
        else
          List.sort_uniq V.compare_total vals
      in
      let fold op init =
        match vals with
        | [] -> V.Null
        | v :: rest -> List.fold_left op (init v) rest
      in
      (match a with
      | A.Count -> V.Int (List.length vals)
      | A.Sum -> fold (fun acc v -> V.arith `Add acc v) Fun.id
      | A.Min ->
          fold (fun acc v -> if V.compare_total v acc < 0 then v else acc) Fun.id
      | A.Max ->
          fold (fun acc v -> if V.compare_total v acc > 0 then v else acc) Fun.id
      | A.Avg -> (
          match vals with
          | [] -> V.Null
          | _ ->
              let sum =
                List.fold_left (fun acc v -> V.arith `Add acc v) (List.hd vals)
                  (List.tl vals)
              in
              V.arith `Div sum (V.Int (List.length vals)))
      | A.Count_star -> assert false)

and eval_pred db (env : env) ?(group : env list option) (p : A.pred) :
    bool option =
  match p with
  | A.True -> Some true
  | A.False -> Some false
  | A.Cmp (op, a, b) ->
      Option.map (cmp_test op)
        (V.compare_sql (eval_expr db env ?group a) (eval_expr db env ?group b))
  | A.Between (a, lo, hi) ->
      let v = eval_expr db env ?group a in
      and3
        (Option.map (fun c -> c >= 0) (V.compare_sql v (eval_expr db env ?group lo)))
        (Option.map (fun c -> c <= 0) (V.compare_sql v (eval_expr db env ?group hi)))
  | A.Is_null a -> Some (V.is_null (eval_expr db env ?group a))
  | A.Not a -> not3 (eval_pred db env ?group a)
  | A.Lnnvl a -> Some (eval_pred db env ?group a <> Some true)
  | A.And (a, b) -> and3 (eval_pred db env ?group a) (eval_pred db env ?group b)
  | A.Or (a, b) -> or3 (eval_pred db env ?group a) (eval_pred db env ?group b)
  | A.In_list (a, vs) ->
      let v = eval_expr db env ?group a in
      if V.is_null v then None
      else if List.exists (fun w -> V.compare_sql v w = Some 0) vs then Some true
      else if List.exists V.is_null vs then None
      else Some false
  | A.Pred_fn (n, args) -> (
      let def = Exec.Funcs.find_exn n in
      match def.f_eval (List.map (eval_expr db env ?group) args) with
      | V.Bool b -> Some b
      | V.Null -> None
      | _ -> Some false)
  | A.Exists q -> Some ((eval_query db env q).rows <> [])
  | A.Not_exists q -> Some ((eval_query db env q).rows = [])
  | A.In_subq (es, q) ->
      let lvals = List.map (eval_expr db env ?group) es in
      in_semantics lvals (eval_query db env q).rows
  | A.Not_in_subq (es, q) ->
      let lvals = List.map (eval_expr db env ?group) es in
      not3 (in_semantics lvals (eval_query db env q).rows)
  | A.Cmp_subq (op, lhs, quant, q) -> (
      let lval = eval_expr db env ?group lhs in
      let inner = (eval_query db env q).rows in
      let cmp1 row =
        match row with
        | v :: _ -> Option.map (cmp_test op) (V.compare_sql lval v)
        | [] -> raise (Eval_error "empty subquery row")
      in
      match quant with
      | None -> (
          match inner with
          | [] -> None
          | [ r ] -> cmp1 r
          | _ -> raise (Eval_error "scalar subquery returned more than one row"))
      | Some A.Q_any ->
          List.fold_left (fun acc r -> or3 acc (cmp1 r)) (Some false) inner
      | Some A.Q_all ->
          List.fold_left (fun acc r -> and3 acc (cmp1 r)) (Some true) inner)

and in_semantics (lvals : V.t list) (rows : V.t list list) : bool option =
  let match3 (row : V.t list) : bool option =
    let rec go ls rs =
      match (ls, rs) with
      | [], _ -> Some true
      | l :: ls', r :: rs' -> (
          match V.compare_sql l r with
          | Some 0 -> go ls' rs'
          | Some _ -> Some false
          | None -> ( match go ls' rs' with Some false -> Some false | _ -> None))
      | _, [] -> Some false
    in
    go lvals row
  in
  List.fold_left (fun acc r -> or3 acc (match3 r)) (Some false) rows

(* ------------------------------------------------------------------ *)
(* FROM evaluation                                                      *)
(* ------------------------------------------------------------------ *)

and source_rows db (env : env) (s : A.source) : (string * V.t) list list =
  match s with
  | A.S_table tname ->
      let rel = Storage.Db.relation db tname in
      let schema = Array.to_list rel.Storage.Relation.r_schema in
      List.map
        (fun tup -> List.combine schema (Array.to_list tup))
        (Array.to_list rel.Storage.Relation.r_rows)
  | A.S_view q ->
      let r = eval_query db env q in
      List.map (fun row -> List.combine r.cols row) r.rows

and eval_from db (env : env) (entries : A.from_entry list) : env list =
  List.fold_left
    (fun (bindings : env list) (fe : A.from_entry) ->
      let kind = fe.A.fe_kind in
      List.concat_map
        (fun (b : env) ->
          let rows = source_rows db (b @ env) fe.A.fe_source in
          let with_row row = (fe.A.fe_alias, row) :: b in
          let cond_holds row =
            List.for_all
              (fun p -> eval_pred db (with_row row @ env) p = Some true)
              fe.A.fe_cond
          in
          match kind with
          | A.J_inner -> List.map with_row rows
          | A.J_left ->
              let matches = List.filter cond_holds rows in
              if matches = [] then
                let null_row =
                  match rows with
                  | r :: _ -> List.map (fun (c, _) -> (c, V.Null)) r
                  | [] ->
                      (* need the view schema even when empty *)
                      (match fe.A.fe_source with
                      | A.S_table tname ->
                          let rel = Storage.Db.relation db tname in
                          List.map
                            (fun c -> (c, V.Null))
                            (Array.to_list rel.Storage.Relation.r_schema)
                      | A.S_view q ->
                          List.map
                            (fun c -> (c, V.Null))
                            (eval_query db (b @ env) q).cols)
                in
                [ with_row null_row ]
              else List.map with_row matches
          | A.J_semi -> if List.exists cond_holds rows then [ b ] else []
          | A.J_anti -> if List.exists cond_holds rows then [] else [ b ]
          | A.J_anti_na ->
              (* NOT IN semantics: survive only if every row definitely
                 fails the condition *)
              let possible row =
                List.for_all
                  (fun p ->
                    match eval_pred db (with_row row @ env) p with
                    | Some false -> false
                    | _ -> true)
                  fe.A.fe_cond
              in
              if List.exists possible rows then [] else [ b ])
        bindings)
    [ [] ] entries

(* ------------------------------------------------------------------ *)
(* Query evaluation                                                     *)
(* ------------------------------------------------------------------ *)

and eval_block db (env : env) (b : A.block) : result =
  let bindings = eval_from db env b.A.from in
  let bindings =
    List.filter
      (fun bd ->
        List.for_all (fun p -> eval_pred db (bd @ env) p = Some true) b.A.where)
      bindings
  in
  let cols = List.map (fun si -> si.A.si_name) b.A.select in
  let has_agg = Walk.block_has_agg b in
  let rows_with_sortkeys =
    if has_agg then (
      (* group *)
      let keyed =
        List.map
          (fun bd ->
            (List.map (fun e -> eval_expr db (bd @ env) e) b.A.group_by, bd))
          bindings
      in
      let groups : (V.t list * env list) list =
        List.fold_left
          (fun acc (k, bd) ->
            let rec add = function
              | [] -> [ (k, [ bd ]) ]
              | (k', bds) :: rest ->
                  if List.compare V.compare_total k k' = 0 then
                    (k', bds @ [ bd ]) :: rest
                  else (k', bds) :: add rest
            in
            add acc)
          [] keyed
      in
      let groups =
        if b.A.group_by = [] && groups = [] then [ ([], []) ] else groups
      in
      List.filter_map
        (fun (_, members) ->
          let repr_env =
            match members with bd :: _ -> bd @ env | [] -> env
          in
          let genv = List.map (fun bd -> bd @ env) members in
          let having_ok =
            List.for_all
              (fun p -> eval_pred db repr_env ~group:genv p = Some true)
              b.A.having
          in
          if not having_ok then None
          else
            let row =
              List.map
                (fun si -> eval_expr db repr_env ~group:genv si.A.si_expr)
                b.A.select
            in
            let keys =
              List.map
                (fun (e, _) -> eval_expr db repr_env ~group:genv e)
                b.A.order_by
            in
            Some (row, keys))
        groups)
    else if Walk.block_has_win b then eval_with_windows db env b bindings
    else
      List.map
        (fun bd ->
          ( List.map (fun si -> eval_expr db (bd @ env) si.A.si_expr) b.A.select,
            List.map (fun (e, _) -> eval_expr db (bd @ env) e) b.A.order_by ))
        bindings
  in
  (* order by *)
  let sorted =
    if b.A.order_by = [] then List.map fst rows_with_sortkeys
    else
      let dirs = List.map snd b.A.order_by in
      List.map fst
        (List.stable_sort
           (fun (_, k1) (_, k2) ->
             let rec go ks1 ks2 ds =
               match (ks1, ks2, ds) with
               | [], [], _ -> 0
               | v1 :: t1, v2 :: t2, d :: ds' ->
                   let c = V.compare_total v1 v2 in
                   let c = match d with A.Asc -> c | A.Desc -> -c in
                   if c <> 0 then c else go t1 t2 ds'
               | v1 :: t1, v2 :: t2, [] ->
                   let c = V.compare_total v1 v2 in
                   if c <> 0 then c else go t1 t2 []
               | _ -> 0
             in
             go k1 k2 dirs)
           rows_with_sortkeys)
  in
  let distincted =
    if not b.A.distinct then sorted
    else
      let seen = Hashtbl.create 16 in
      List.filter
        (fun row ->
          let key =
            String.concat "|" (List.map V.to_string row)
          in
          if Hashtbl.mem seen key then false
          else (
            Hashtbl.add seen key ();
            true))
        sorted
  in
  let limited =
    match b.A.limit with
    | None -> distincted
    | Some n -> List.filteri (fun i _ -> i < n) distincted
  in
  { cols; rows = limited }

and eval_with_windows db env (b : A.block) (bindings : env list) :
    (V.t list * V.t list) list =
  (* Evaluate window terms per binding, then select items with window
     occurrences replaced. *)
  let win_terms =
    List.fold_left
      (fun acc si ->
        let rec collect acc e =
          match e with
          | A.Win _ -> if List.mem e acc then acc else acc @ [ e ]
          | A.Binop (_, a, b) -> collect (collect acc a) b
          | A.Neg a -> collect acc a
          | A.Fn (_, args) -> List.fold_left collect acc args
          | A.Case (arms, els) ->
              let acc =
                List.fold_left (fun acc (_, e) -> collect acc e) acc arms
              in
              (match els with None -> acc | Some e -> collect acc e)
          | _ -> acc
        in
        collect acc si.A.si_expr)
      [] b.A.select
  in
  let indexed = List.mapi (fun i bd -> (i, bd)) bindings in
  let values : (A.expr * V.t array) list =
    List.map
      (fun term ->
        match term with
        | A.Win (a, arg, w) ->
            let store = Array.make (List.length bindings) V.Null in
            (* partition *)
            let parts : (V.t list * (int * env) list) list =
              List.fold_left
                (fun acc (i, bd) ->
                  let pk =
                    List.map (fun e -> eval_expr db (bd @ env) e) w.A.w_pby
                  in
                  let rec add = function
                    | [] -> [ (pk, [ (i, bd) ]) ]
                    | (pk', ms) :: rest ->
                        if List.compare V.compare_total pk pk' = 0 then
                          (pk', ms @ [ (i, bd) ]) :: rest
                        else (pk', ms) :: add rest
                  in
                  add acc)
                [] indexed
            in
            List.iter
              (fun (_, members) ->
                let okeys (_, bd) =
                  List.map (fun (e, _) -> eval_expr db (bd @ env) e) w.A.w_oby
                in
                let dirs = List.map snd w.A.w_oby in
                let sorted =
                  List.stable_sort
                    (fun m1 m2 ->
                      let rec go ks1 ks2 ds =
                        match (ks1, ks2, ds) with
                        | [], [], _ -> 0
                        | v1 :: t1, v2 :: t2, d :: ds' ->
                            let c = V.compare_total v1 v2 in
                            let c = match d with A.Asc -> c | A.Desc -> -c in
                            if c <> 0 then c else go t1 t2 ds'
                        | v1 :: t1, v2 :: t2, [] ->
                            let c = V.compare_total v1 v2 in
                            if c <> 0 then c else go t1 t2 []
                        | _ -> 0
                      in
                      go (okeys m1) (okeys m2) dirs)
                    members
                in
                (* cumulative with peers *)
                let rec walk seen rest =
                  match rest with
                  | [] -> ()
                  | ((_, _) :: _ as all) -> (
                      let k1 = okeys (List.hd all) in
                      let peers, others =
                        List.partition
                          (fun m ->
                            List.compare V.compare_total (okeys m) k1 = 0)
                          all
                      in
                      let upto = seen @ peers in
                      let genv = List.map (fun (_, bd) -> bd @ env) upto in
                      let v = eval_agg db a arg false genv in
                      let v =
                        match (a, arg) with
                        | A.Count_star, _ -> V.Int (List.length upto)
                        | _ -> v
                      in
                      List.iter (fun (i, _) -> store.(i) <- v) peers;
                      walk upto others)
                in
                walk [] sorted)
              parts;
            (term, store)
        | _ -> assert false)
      win_terms
  in
  List.map
    (fun (i, bd) ->
      let rec subst e =
        match List.assoc_opt e values with
        | Some store -> A.Const store.(i)
        | None -> (
            match e with
            | A.Binop (op, a, b) -> A.Binop (op, subst a, subst b)
            | A.Neg a -> A.Neg (subst a)
            | A.Fn (n, args) -> A.Fn (n, List.map subst args)
            | A.Case (arms, els) ->
                A.Case
                  ( List.map (fun (p, e) -> (p, subst e)) arms,
                    Option.map subst els )
            | e -> e)
      in
      ( List.map (fun si -> eval_expr db (bd @ env) (subst si.A.si_expr)) b.A.select,
        List.map (fun (e, _) -> eval_expr db (bd @ env) (subst e)) b.A.order_by ))
    indexed

and eval_query db (env : env) (q : A.query) : result =
  match q with
  | A.Block b -> eval_block db env b
  | A.Setop (op, l, r) -> (
      let rl = eval_query db env l in
      let rr = eval_query db env r in
      let dedup rows =
        List.rev
          (List.fold_left
             (fun acc row ->
               if List.exists (fun r -> List.compare V.compare_total r row = 0) acc
               then acc
               else row :: acc)
             [] rows)
      in
      let mem rows row =
        List.exists (fun r -> List.compare V.compare_total r row = 0) rows
      in
      match op with
      | A.Union_all -> { rl with rows = rl.rows @ rr.rows }
      | A.Union -> { rl with rows = dedup (rl.rows @ rr.rows) }
      | A.Intersect ->
          { rl with rows = dedup (List.filter (mem rr.rows) rl.rows) }
      | A.Minus ->
          {
            rl with
            rows = dedup (List.filter (fun r -> not (mem rr.rows r)) rl.rows);
          })

(** Evaluate a top-level query. *)
let eval (db : Storage.Db.t) (q : A.query) : result = eval_query db [] q

(** Multiset equality of two results (ignoring column names and any
    final ordering). *)
let rows_equal (r1 : result) (r2 : result) : bool =
  let norm r = List.sort (List.compare V.compare_total) r.rows in
  List.length r1.rows = List.length r2.rows
  && List.compare (List.compare V.compare_total) (norm r1) (norm r2) = 0
