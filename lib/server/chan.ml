(** Re-export of the shared bounded MPMC channel.

    The ring buffer was born here as the server's request queue (PR 8)
    and later hoisted into {!Concur.Chan} so the parallel executor
    ({!Exec}) can fan work across domains without depending on the
    server tier. This alias keeps every existing [Server.Chan] caller
    and test source-compatible. *)

include Concur.Chan
