(** Concurrent multi-session query server: a domain worker pool over
    the {!Service} layer.

    This is the shared-server shape the paper assumes around the
    optimizer: cost-based transformation pays for itself because one
    hard parse is amortized across {e many} sessions hitting the same
    cursor cache concurrently. The pieces:

    - {b Sessions} ({!session}) carry client state: an id, default
      binds, an optional engine choice overriding the pool default, and
      per-session outcome counters.
    - {b One bounded MPMC request queue} ({!Chan}) feeds {b N domain
      workers} ([Domain.spawn] each). Admission control is explicit:
      a full queue {e rejects} immediately ([Rejected] — the client can
      back off), and each request carries an absolute deadline checked
      when a worker picks it up, so requests that sat queued past their
      deadline are {e timed out} without executing ([Timed_out]).
      Overload therefore degrades into fast, accounted failures instead
      of unbounded queueing — and under saturation every submitted
      request still gets exactly one outcome (the accounting identity
      the tests check).
    - {b Shared plan cache and query store}: all workers' services are
      created over one sharded {!Service.Plan_cache} and
      {!Obs.Query_store}, so a hard parse by any worker is a soft parse
      for every other — the whole point of the shared server. Catalog
      stats epochs publish through an atomic map
      ({!Catalog.epochs_snapshot}), so a stats refresh during traffic
      invalidates cleanly across workers.
    - {b Everything else is per-worker}: each worker owns its services
      (one per engine variant a session demands), whose parse counters,
      hint memos and meter accumulators stay single-domain. Pool-level
      reporting merges the per-worker reports and snapshots the shared
      cache once.

    Before spawning, {!create} calls {!Service.prewarm}: the service
    layer caches its registry handles in [lazy] cells, and concurrent
    [Lazy.force] of one suspension raises [Lazy.Undefined]. *)

open Sqlir
module A = Ast
module Svc = Service
module Pc = Service.Plan_cache
module Qs = Obs.Query_store
module Mx = Obs.Metrics
module Db = Storage.Db

module Chan = Chan
(** Re-export: [Server] is the library's toplevel module. *)

(* ------------------------------------------------------------------ *)
(* Requests and outcomes                                                *)
(* ------------------------------------------------------------------ *)

(** A statement to execute: SQL text (parsed on the worker, off the
    submitting thread) or an already-parsed query. *)
type stmt = Sql of string | Ir of A.query

(** Exactly one outcome per submitted request. *)
type outcome =
  | Done of Svc.exec_result
  | Failed of string  (** the execution raised (e.g. a [--check] diagnostic) *)
  | Rejected  (** admission control: queue full (or server shut down) *)
  | Timed_out  (** sat queued past its deadline; never executed *)

let outcome_name = function
  | Done _ -> "done"
  | Failed _ -> "failed"
  | Rejected -> "rejected"
  | Timed_out -> "timed_out"

(** The client's side of one request: await fills in the outcome. *)
type handle = {
  h_mu : Mutex.t;
  h_cond : Condition.t;
  mutable h_outcome : outcome option;
}

let handle_create () =
  { h_mu = Mutex.create (); h_cond = Condition.create (); h_outcome = None }

let fulfill (h : handle) (o : outcome) =
  Mutex.lock h.h_mu;
  h.h_outcome <- Some o;
  Condition.broadcast h.h_cond;
  Mutex.unlock h.h_mu

(** Block until the request's outcome is available. *)
let await (h : handle) : outcome =
  Mutex.lock h.h_mu;
  let rec wait () =
    match h.h_outcome with
    | Some o -> o
    | None ->
        Condition.wait h.h_cond h.h_mu;
        wait ()
  in
  let o = wait () in
  Mutex.unlock h.h_mu;
  o

(** Non-blocking peek at the outcome. *)
let poll (h : handle) : outcome option =
  Mutex.lock h.h_mu;
  let o = h.h_outcome in
  Mutex.unlock h.h_mu;
  o

(* ------------------------------------------------------------------ *)
(* Sessions                                                             *)
(* ------------------------------------------------------------------ *)

(** Per-session outcome counters, updated atomically by whichever
    domain resolves the request. *)
type session_stats = {
  ss_submitted : int Atomic.t;
  ss_done : int Atomic.t;
  ss_failed : int Atomic.t;
  ss_rejected : int Atomic.t;
  ss_timed_out : int Atomic.t;
  ss_rows : int Atomic.t;
}

type session = {
  se_id : int;
  se_engine : Exec.Executor.engine option;
      (** engine override for this session; [None] = pool default *)
  se_binds : Value.t list;  (** default bind vector *)
  se_stats : session_stats;
}

type request = {
  rq_session : session;
  rq_stmt : stmt;
  rq_binds : Value.t list;
  rq_deadline : float;  (** absolute [gettimeofday]; [infinity] = none *)
  rq_handle : handle;
}

(* ------------------------------------------------------------------ *)
(* Pool                                                                 *)
(* ------------------------------------------------------------------ *)

type config = {
  workers : int;  (** domain workers ([>= 1]) *)
  queue_depth : int;  (** request-queue bound (admission control) *)
  deadline_s : float;
      (** per-request deadline in seconds from submission; [<= 0.] =
          none. Checked when a worker dequeues the request. *)
  shards : int;
      (** plan-cache / query-store shards; [0] = auto ([4 x workers],
          rounded up to a power of two) *)
  svc : Svc.config;  (** per-worker service configuration *)
}

let default_config =
  {
    workers = 1;
    queue_depth = 64;
    deadline_s = 0.;
    shards = 0;
    svc = Svc.default_config;
  }

(** One worker's single-domain state. [w_services] is touched only by
    the owning domain (and by reporting after the pool is drained). *)
type worker = {
  w_id : int;
  mutable w_services : (Exec.Executor.engine * Svc.t) list;
      (** one service per engine variant sessions demanded, all over
          the shared cache and store *)
}

type t = {
  cfg : config;
  db : Db.t;
  cache : Pc.t;  (** shared, sharded *)
  store : Qs.t;  (** shared, sharded *)
  queue : request Chan.t;
  workers : worker array;
  mutable domains : unit Domain.t array;
  next_session : int Atomic.t;
  (* pool accounting: every submitted request ends in exactly one of
     done/failed/rejected/timed_out *)
  c_submitted : int Atomic.t;
  c_done : int Atomic.t;
  c_failed : int Atomic.t;
  c_rejected : int Atomic.t;
  c_timed_out : int Atomic.t;
  g_inflight : int Atomic.t;  (** requests currently executing *)
  pub_mu : Mutex.t;
  published : int array;
      (** counter values already pushed to the registry (delta
          publication, under [pub_mu]) *)
}

(** The worker's service for [engine] (pool default when [None]),
    created on first use over the shared cache and store. *)
let service_for t (w : worker) (engine : Exec.Executor.engine option) : Svc.t =
  let engine = Option.value ~default:t.cfg.svc.Svc.engine engine in
  match List.assoc_opt engine w.w_services with
  | Some svc -> svc
  | None ->
      let svc =
        Svc.create
          ~config:{ t.cfg.svc with Svc.engine }
          ~cache:t.cache ~store:t.store t.db
      in
      w.w_services <- (engine, svc) :: w.w_services;
      svc

let exec_request t (w : worker) (rq : request) : outcome =
  let svc = service_for t w rq.rq_session.se_engine in
  match
    match rq.rq_stmt with
    | Ir q -> Svc.exec_ir svc q rq.rq_binds
    | Sql sql -> Svc.exec svc sql rq.rq_binds
  with
  | r -> Done r
  | exception e -> Failed (Printexc.to_string e)

let resolve_session (rq : request) (o : outcome) =
  let st = rq.rq_session.se_stats in
  (match o with
  | Done r ->
      Atomic.incr st.ss_done;
      ignore (Atomic.fetch_and_add st.ss_rows r.Svc.r_nrows)
  | Failed _ -> Atomic.incr st.ss_failed
  | Rejected -> Atomic.incr st.ss_rejected
  | Timed_out -> Atomic.incr st.ss_timed_out);
  fulfill rq.rq_handle o

let worker_loop t (w : worker) () =
  let rec loop () =
    match Chan.pop t.queue with
    | None -> ()  (* closed and drained: exit *)
    | Some rq ->
        (if Unix.gettimeofday () > rq.rq_deadline then begin
           (* expired while queued: never execute it *)
           Atomic.incr t.c_timed_out;
           resolve_session rq Timed_out
         end
         else begin
           Atomic.incr t.g_inflight;
           let o = exec_request t w rq in
           Atomic.decr t.g_inflight;
           (match o with
           | Done _ -> Atomic.incr t.c_done
           | Failed _ -> Atomic.incr t.c_failed
           | _ -> ());
           resolve_session rq o
         end);
        loop ()
  in
  loop ()

(** Build the pool and spawn its workers. The shared plan cache and
    query store are sharded [4 x workers] by default so concurrent
    probes rarely meet on a lock. *)
let create ?(config = default_config) (db : Db.t) : t =
  let config = { config with workers = max 1 config.workers } in
  (* force every lazy registry handle on the query path before any
     domain can race a suspension *)
  Svc.prewarm ();
  let shards =
    if config.shards > 0 then config.shards else 4 * config.workers
  in
  let t =
    {
      cfg = config;
      db;
      cache = Pc.create ~capacity:config.svc.Svc.capacity ~shards ();
      store = Qs.create ~capacity:config.svc.Svc.store_capacity ~shards ();
      queue = Chan.create ~capacity:config.queue_depth;
      workers =
        Array.init config.workers (fun i -> { w_id = i; w_services = [] });
      domains = [||];
      next_session = Atomic.make 0;
      c_submitted = Atomic.make 0;
      c_done = Atomic.make 0;
      c_failed = Atomic.make 0;
      c_rejected = Atomic.make 0;
      c_timed_out = Atomic.make 0;
      g_inflight = Atomic.make 0;
      pub_mu = Mutex.create ();
      published = Array.make 5 0;
    }
  in
  t.domains <-
    Array.map (fun w -> Domain.spawn (worker_loop t w)) t.workers;
  t

let cache t = t.cache
let query_store t = t.store
let queue_length t = Chan.length t.queue

(** Open a session. [engine] overrides the pool's execution engine for
    this session's requests; [binds] is the default bind vector used
    when a submission does not pass its own. *)
let session ?engine ?(binds = []) t : session =
  {
    se_id = Atomic.fetch_and_add t.next_session 1;
    se_engine = engine;
    se_binds = binds;
    se_stats =
      {
        ss_submitted = Atomic.make 0;
        ss_done = Atomic.make 0;
        ss_failed = Atomic.make 0;
        ss_rejected = Atomic.make 0;
        ss_timed_out = Atomic.make 0;
        ss_rows = Atomic.make 0;
      };
  }

let make_request t (se : session) ?binds (stmt : stmt) : request =
  {
    rq_session = se;
    rq_stmt = stmt;
    rq_binds = (match binds with Some b -> b | None -> se.se_binds);
    rq_deadline =
      (if t.cfg.deadline_s > 0. then Unix.gettimeofday () +. t.cfg.deadline_s
       else infinity);
    rq_handle = handle_create ();
  }

(** Submit without blocking: a full queue (or a shut-down server)
    resolves the handle to [Rejected] immediately. *)
let submit ?binds t (se : session) (stmt : stmt) : handle =
  let rq = make_request t se ?binds stmt in
  Atomic.incr t.c_submitted;
  Atomic.incr se.se_stats.ss_submitted;
  if not (Chan.try_push t.queue rq) then begin
    Atomic.incr t.c_rejected;
    resolve_session rq Rejected
  end;
  rq.rq_handle

(** Submit with backpressure: blocks while the queue is full. Still
    resolves to [Rejected] if the server shuts down while waiting. *)
let submit_wait ?binds t (se : session) (stmt : stmt) : handle =
  let rq = make_request t se ?binds stmt in
  Atomic.incr t.c_submitted;
  Atomic.incr se.se_stats.ss_submitted;
  if not (Chan.push t.queue rq) then begin
    Atomic.incr t.c_rejected;
    resolve_session rq Rejected
  end;
  rq.rq_handle

(** Run a whole batch through the pool with backpressure and return the
    outcomes in submission order. *)
let run_batch ?binds t (se : session) (stmts : stmt list) : outcome list =
  let handles = List.map (fun s -> submit_wait ?binds t se s) stmts in
  List.map await handles

(** Close the queue, drain it, and join every worker. Requests already
    accepted still execute; later submissions are rejected. *)
let shutdown t =
  Chan.close t.queue;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

(** Every service the pool's workers created. Call only when the pool
    is quiescent (after {!shutdown}, or with no traffic in flight). *)
let services t : Svc.t list =
  Array.to_list t.workers
  |> List.concat_map (fun w -> List.map snd w.w_services)

(* ------------------------------------------------------------------ *)
(* Result digests                                                       *)
(* ------------------------------------------------------------------ *)

(** Order-insensitive digest of a result's row multiset (row hashes
    summed, wrapped into 61 bits), seeded with the row count. Two
    results digest equal iff their row multisets agree (modulo hash
    collisions), whatever order the rows came back in. *)
let result_digest (r : Svc.exec_result) : int =
  List.fold_left
    (fun acc row -> (acc + Hashtbl.hash_param 256 256 row) land 0x1FFFFFFFFFFFFFFF)
    r.Svc.r_nrows r.Svc.r_rows

(** Order-insensitive digest of a batch: per-outcome digests summed, so
    two runs of one workload digest equal iff they produced the same
    multiset of per-request results — the 1-worker vs N-worker
    correctness check. Failures fold in their message, rejections and
    timeouts a marker. *)
let outcomes_digest (os : outcome list) : int =
  List.fold_left
    (fun acc o ->
      let d =
        match o with
        | Done r -> result_digest r
        | Failed msg -> Hashtbl.hash ("failed", msg)
        | Rejected -> Hashtbl.hash "rejected"
        | Timed_out -> Hashtbl.hash "timed_out"
      in
      (acc + d) land 0x1FFFFFFFFFFFFFFF)
    0 os

(* ------------------------------------------------------------------ *)
(* Reporting                                                            *)
(* ------------------------------------------------------------------ *)

type report = {
  rp_workers : int;
  rp_submitted : int;
  rp_done : int;
  rp_failed : int;
  rp_rejected : int;
  rp_timed_out : int;
  rp_queued : int;  (** waiting in the queue right now *)
  rp_inflight : int;  (** executing right now *)
  rp_soft_parses : int;  (** summed over the workers' services *)
  rp_hard_parses : int;
  rp_parts_scanned : int;  (** partitions read, summed over workers *)
  rp_parts_pruned : int;  (** partitions pruned, summed over workers *)
  rp_dop_max : int;  (** max exchange worker count observed; 0 = serial *)
  rp_cache : Pc.stats;  (** shared-cache snapshot *)
  rp_hit_rate : float;
  rp_entries : int;
  rp_memory_words : int;
}

let report t : report =
  let soft = ref 0 and hard = ref 0 in
  let scanned = ref 0 and pruned = ref 0 and dop = ref 0 in
  List.iter
    (fun svc ->
      let r = Svc.report svc in
      soft := !soft + r.Svc.sv_soft_parses;
      hard := !hard + r.Svc.sv_hard_parses;
      let es = Svc.engine_stats svc in
      scanned := !scanned + es.Exec.Executor.es_parts_scanned;
      pruned := !pruned + es.Exec.Executor.es_parts_pruned;
      if es.Exec.Executor.es_dop > !dop then dop := es.Exec.Executor.es_dop)
    (services t);
  {
    rp_workers = t.cfg.workers;
    rp_submitted = Atomic.get t.c_submitted;
    rp_done = Atomic.get t.c_done;
    rp_failed = Atomic.get t.c_failed;
    rp_rejected = Atomic.get t.c_rejected;
    rp_timed_out = Atomic.get t.c_timed_out;
    rp_queued = Chan.length t.queue;
    rp_inflight = Atomic.get t.g_inflight;
    rp_soft_parses = !soft;
    rp_hard_parses = !hard;
    rp_parts_scanned = !scanned;
    rp_parts_pruned = !pruned;
    rp_dop_max = !dop;
    rp_cache = Pc.stats t.cache;
    rp_hit_rate = Pc.hit_rate t.cache;
    rp_entries = Pc.length t.cache;
    rp_memory_words = Pc.memory_words t.cache;
  }

(** Push the pool gauges and outcome counters to the process-wide
    registry: gauges [srv_queue_depth] / [srv_inflight], counters
    [srv_requests_total{outcome=...}] (delta-published so repeated
    reports do not double count). *)
let publish_metrics t =
  if !Mx.enabled then begin
    Mx.set (Mx.gauge Mx.default "srv_queue_depth")
      (float_of_int (Chan.length t.queue));
    Mx.set (Mx.gauge Mx.default "srv_inflight")
      (float_of_int (Atomic.get t.g_inflight));
    Mutex.lock t.pub_mu;
    List.iteri
      (fun i (name, cell) ->
        let v = Atomic.get cell in
        let d = v - t.published.(i) in
        if d <> 0 then begin
          Mx.add
            (Mx.counter ~labels:[ ("outcome", name) ] Mx.default
               "srv_requests_total")
            d;
          t.published.(i) <- v
        end)
      [
        ("submitted", t.c_submitted);
        ("done", t.c_done);
        ("failed", t.c_failed);
        ("rejected", t.c_rejected);
        ("timed_out", t.c_timed_out);
      ];
    Mutex.unlock t.pub_mu
  end

let pp_report ppf (r : report) =
  let line label pp_v = Fmt.pf ppf "  %-18s %t@." label pp_v in
  Fmt.pf ppf "server report@.";
  line "workers" (fun ppf -> Fmt.pf ppf "%d" r.rp_workers);
  line "submitted" (fun ppf -> Fmt.pf ppf "%d" r.rp_submitted);
  line "done" (fun ppf -> Fmt.pf ppf "%d" r.rp_done);
  line "failed" (fun ppf -> Fmt.pf ppf "%d" r.rp_failed);
  line "rejected" (fun ppf -> Fmt.pf ppf "%d" r.rp_rejected);
  line "timed out" (fun ppf -> Fmt.pf ppf "%d" r.rp_timed_out);
  line "queued" (fun ppf -> Fmt.pf ppf "%d" r.rp_queued);
  line "in flight" (fun ppf -> Fmt.pf ppf "%d" r.rp_inflight);
  line "soft parses" (fun ppf -> Fmt.pf ppf "%d" r.rp_soft_parses);
  line "hard parses" (fun ppf -> Fmt.pf ppf "%d" r.rp_hard_parses);
  line "parts scanned" (fun ppf -> Fmt.pf ppf "%d" r.rp_parts_scanned);
  line "parts pruned" (fun ppf -> Fmt.pf ppf "%d" r.rp_parts_pruned);
  line "max dop" (fun ppf -> Fmt.pf ppf "%d" r.rp_dop_max);
  line "cache hits" (fun ppf -> Fmt.pf ppf "%d" r.rp_cache.Pc.hits);
  line "cache misses" (fun ppf -> Fmt.pf ppf "%d" r.rp_cache.Pc.misses);
  line "hit rate" (fun ppf -> Fmt.pf ppf "%.2f" r.rp_hit_rate);
  line "evictions" (fun ppf -> Fmt.pf ppf "%d" r.rp_cache.Pc.evictions);
  line "invalidations" (fun ppf -> Fmt.pf ppf "%d" r.rp_cache.Pc.invalidations);
  line "entries" (fun ppf -> Fmt.pf ppf "%d" r.rp_entries);
  line "memory words" (fun ppf -> Fmt.pf ppf "%d" r.rp_memory_words)
